package sabre

import (
	"testing"

	"repro/internal/workloads"
)

// TestFullSuiteCompiles is the end-to-end acceptance test: every one of
// the paper's 26 benchmarks compiles onto the Q20 Tokyo model under the
// paper's configuration, the result is hardware-compliant, and the
// headline shapes hold (0 added gates on the small and ising classes,
// g_op ≤ g_la on aggregate). Gated on -short because the biggest rows
// take ~1s each.
func TestFullSuiteCompiles(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dev := IBMQ20Tokyo()
	opts := DefaultOptions()

	var sumFirst, sumFinal int
	for _, b := range Benchmarks() {
		circ := b.Build()
		res, err := Compile(circ, dev, opts)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if err := VerifyCompliant(res.Circuit, dev); err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		rep := CompareCircuits(circ, res.Circuit)
		if rep.AddedGates != res.AddedGates {
			t.Fatalf("%s: metrics/result disagree (%d vs %d)", b.Name, rep.AddedGates, res.AddedGates)
		}
		switch b.Class {
		case workloads.ClassSmall, workloads.ClassSim:
			if res.AddedGates > 9 {
				t.Errorf("%s: %d added gates; the paper's shape is ~0 for class %s",
					b.Name, res.AddedGates, b.Class)
			}
		}
		sumFirst += res.FirstTraversalAdded
		sumFinal += res.AddedGates
	}
	if sumFinal > sumFirst {
		t.Errorf("reverse traversal hurt on aggregate: g_op sum %d > g_la sum %d", sumFinal, sumFirst)
	}
}

// TestSuiteOtherTopologies routes a representative subset onto the
// catalogue's other devices, checking flexibility (§III-B objective 1:
// arbitrary symmetric coupling).
func TestSuiteOtherTopologies(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	devices := []*Device{IBMQX5(), IBMFalcon27(), RigettiAspen(2), Sycamore(4, 5), GridDevice(4, 5)}
	names := []string{"qft_10", "ising_model_13", "rd84_142", "4gt13_92"}
	opts := DefaultOptions()
	opts.Trials = 2
	for _, dev := range devices {
		for _, name := range names {
			b, ok := BenchmarkByName(name)
			if !ok {
				t.Fatalf("missing benchmark %s", name)
			}
			if b.N > dev.NumQubits() {
				continue
			}
			res, err := Compile(b.Build(), dev, opts)
			if err != nil {
				t.Fatalf("%s on %s: %v", name, dev.Name(), err)
			}
			if err := VerifyCompliant(res.Circuit, dev); err != nil {
				t.Fatalf("%s on %s: %v", name, dev.Name(), err)
			}
		}
	}
}

// TestPipelineOptimizeSchedule exercises the post-processing stages on
// routed output end to end.
func TestPipelineOptimizeSchedule(t *testing.T) {
	dev := IBMQ20Tokyo()
	res, err := Compile(QFT(10), dev, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	routed := res.Circuit.DecomposeSwaps()
	o := Optimize(routed)
	if o.GatesOut > o.GatesIn {
		t.Fatal("optimizer grew the circuit")
	}
	if err := VerifyCompliant(o.Circuit, dev); err != nil {
		t.Fatal(err)
	}
	s := ScheduleASAP(o.Circuit)
	if err := s.Valid(); err != nil {
		t.Fatal(err)
	}
	if s.Depth() != o.Circuit.Depth() {
		t.Fatal("schedule depth mismatch")
	}
	l := ScheduleALAP(o.Circuit)
	if err := l.Valid(); err != nil {
		t.Fatal(err)
	}
}
