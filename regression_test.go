package sabre

import "testing"

// Regression pins: exact outputs for fixed seeds under the default
// configuration. math/rand's top-level generator sequence is frozen by
// the Go 1 compatibility promise, so these values are stable; a change
// here means the algorithm's behaviour changed and EXPERIMENTS.md needs
// re-measuring.
func TestRegressionPinnedResults(t *testing.T) {
	dev := IBMQ20Tokyo()
	cases := []struct {
		n     int
		added int
		swaps int
	}{
		{6, 6, 2},
		{8, 21, 7},
		{10, 36, 12},
	}
	for _, tc := range cases {
		res, err := Compile(QFT(tc.n), dev, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if res.AddedGates != tc.added || res.SwapCount != tc.swaps {
			t.Errorf("qft_%d: added=%d swaps=%d, pinned added=%d swaps=%d (algorithm behaviour changed; re-measure EXPERIMENTS.md)",
				tc.n, res.AddedGates, res.SwapCount, tc.added, tc.swaps)
		}
	}
}

// The accounting identity must hold on every compile: the routed
// circuit's decomposed gate count equals the input count plus the
// reported overhead.
func TestRegressionAccountingIdentity(t *testing.T) {
	dev := IBMQ20Tokyo()
	for _, n := range []int{5, 9, 13} {
		c := QFT(n)
		res, err := Compile(c, dev, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		got := res.Circuit.DecomposeSwaps().NumGates()
		if got != c.NumGates()+res.AddedGates {
			t.Fatalf("qft_%d: %d gates out, want %d + %d", n, got, c.NumGates(), res.AddedGates)
		}
	}
}
