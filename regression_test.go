package sabre

import "testing"

// Regression pins: exact outputs for fixed seeds under the default
// configuration. math/rand's top-level generator sequence is frozen by
// the Go 1 compatibility promise, so these values are stable; a change
// here means the algorithm's behaviour changed and EXPERIMENTS.md needs
// re-measuring. (Last re-pinned for the bitset round-scoring PR, which
// switched candidate iteration to ascending dense edge id and thereby
// re-rolled the tie-break stream: qft_8 went 21→18 added gates, qft_10
// 36→30.)
func TestRegressionPinnedResults(t *testing.T) {
	dev := IBMQ20Tokyo()
	cases := []struct {
		n     int
		added int
		swaps int
	}{
		{6, 6, 2},
		{8, 18, 6},
		{10, 30, 10},
	}
	for _, tc := range cases {
		res, err := Compile(QFT(tc.n), dev, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if res.AddedGates != tc.added || res.SwapCount != tc.swaps {
			t.Errorf("qft_%d: added=%d swaps=%d, pinned added=%d swaps=%d (algorithm behaviour changed; re-measure EXPERIMENTS.md)",
				tc.n, res.AddedGates, res.SwapCount, tc.added, tc.swaps)
		}
	}
}

// The accounting identity must hold on every compile: the routed
// circuit's decomposed gate count equals the input count plus the
// reported overhead.
func TestRegressionAccountingIdentity(t *testing.T) {
	dev := IBMQ20Tokyo()
	for _, n := range []int{5, 9, 13} {
		c := QFT(n)
		res, err := Compile(c, dev, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		got := res.Circuit.DecomposeSwaps().NumGates()
		if got != c.NumGates()+res.AddedGates {
			t.Fatalf("qft_%d: %d gates out, want %d + %d", n, got, c.NumGates(), res.AddedGates)
		}
	}
}
