# Tier-1 verification plus the race-enabled suite. `make check` is the
# gate CI runs on every push. `make help` lists every target.

GO ?= go

.PHONY: check build test vet lint race bench bench-smoke bench-json bench-guard sabred-smoke crash-smoke stream-smoke clean help

check: vet lint build race

vet:
	$(GO) vet ./...

# Static analysis beyond vet: the sabrelint multichecker (see
# internal/analysis and ARCHITECTURE.md § Static analysis) proves the
# repo's determinism, zero-alloc, and calibration-snapshot invariants
# and folds in staticcheck when the pinned binary is on PATH (CI
# installs honnef.co/go/tools/cmd/staticcheck@2025.1; a bare toolchain
# still lints). `make vet` covers go vet, so sabrelint's own vet stage
# is skipped here. LINT_JSON=file.json additionally writes the
# machine-readable report CI uploads as an artifact.
LINT_JSON ?=
lint:
	$(GO) run ./cmd/sabrelint -novet $(if $(LINT_JSON),-json $(LINT_JSON),) ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench BenchmarkBatchCompile -benchtime=2x .

# End-to-end routing smoke: two small workloads through the batch
# engine with a 4-trial fan-out and the verify pass in the job
# pipeline, so any routing-validity error fails the target (exit 1),
# plus one workload through each registry heuristic (anneal,
# tokenswap) under the same verify gate, plus the async job queue
# (submit/poll/webhook/cancel/drain) over the same workloads. The
# final step runs the routing hot-path benchmarks once with allocation
# reporting — the TestScoreRoundZeroAllocs guard in the same package
# fails the suite if a heap allocation creeps back into the
# steady-state SWAP round.
bench-smoke:
	$(GO) run ./cmd/benchtab -batch -names 4mod5-v1_22,qft_10 -trials 4 -passes verify -rounds 1 -workers 2
	$(GO) run ./cmd/benchtab -batch -names 4mod5-v1_22 -route anneal -trials 2 -passes verify -rounds 1 -workers 2
	$(GO) run ./cmd/benchtab -batch -names 4mod5-v1_22 -route tokenswap -trials 4 -passes verify -rounds 1 -workers 2
	$(GO) run ./cmd/benchtab -async -names 4mod5-v1_22,qft_10 -passes verify -workers 2
	$(GO) test ./internal/core -run TestScoreRoundZeroAllocs -count=1 \
		-bench 'BenchmarkScoreRound|BenchmarkRoutePass/qft_20' -benchtime=1x -benchmem

# Perf-trajectory snapshot: workload × router ns/op, allocs/op and
# added gates, plus the score_round microbenchmark rows (one per
# scoring engine) and the stream_throughput streaming rows (gates/sec
# and bytes/gate for the windowed path and its materialized oracle),
# written as JSON so future PRs have a baseline to beat. Compare
# against the committed BENCH_PR10.json.
bench-json:
	$(GO) run ./cmd/benchtab -json BENCH_PR10.json

# CI perf-regression gate: re-measure the committed baseline and fail
# on ns/op regression (>25% on baseline routers, >15% on the strict
# sabre/score_round rows), any allocs/op growth on the strict rows, or
# added-gates drift. BENCH_GUARD_NAMES bounds the wall-clock (empty =
# every baseline row, ~1 min + the two large workloads); CI restricts
# it to the fast rows so the gate stays snappy and scheduler noise on
# the big circuits doesn't flake it.
BENCH_GUARD_NAMES ?=
bench-guard:
	$(GO) run ./cmd/benchtab -compare BENCH_PR10.json -tolerance 25 -sabre-tolerance 15 -names '$(BENCH_GUARD_NAMES)'

# End-to-end daemon smoke: build sabred, boot it, submit an async job,
# long-poll to completion, assert the verify pass succeeded and the
# output is byte-identical to POST /compile, receive the webhook,
# cancel a heavy job, and SIGTERM into a clean graceful drain.
# SMOKE_RACE=1 builds the daemon with the race detector (CI does).
sabred-smoke:
	$(GO) run ./cmd/sabredsmoke $(if $(SMOKE_RACE),-race,)

# Crash-recovery drill: boot sabred on a durable job log, SIGKILL it
# with one job running and two queued, restart it on the same log
# directory, and require every job to replay under its original ID
# with byte-identical results — then absorb a scripted router panic
# without losing the daemon. Always race-built: the kill/replay path
# is exactly where a data race would hide.
crash-smoke:
	$(GO) run ./cmd/sabredsmoke -race -crash

# Streaming-compilation smoke: stream a million-gate QASM trace
# through POST /compile?stream=1 (bounded memory end to end), assert
# the trailer accounting and run-to-run byte determinism, hold the
# windowed arm byte-identical to the materialized oracle, and deliver
# the same compilation as a /jobs?stream=1 per-chunk webhook job.
# STREAM_FIXTURE=path reuses a pre-generated trace (CI caches
# `genbench -stream-gates 1000000 -stream-only` output); empty
# generates one on the fly (~1s). SMOKE_RACE=1 race-builds the daemon.
stream-smoke:
	$(GO) run ./cmd/sabredsmoke $(if $(SMOKE_RACE),-race,) -stream $(if $(STREAM_FIXTURE),-stream-fixture $(STREAM_FIXTURE),)

clean:
	$(GO) clean ./...

help:
	@echo "check        tier-1 gate CI runs per push: vet + lint + build + race"
	@echo "vet          go vet ./..."
	@echo "lint         sabrelint multichecker: determinism / zero-alloc / snapshot"
	@echo "             invariant analyzers + staticcheck (LINT_JSON=f writes a report)"
	@echo "build        go build ./..."
	@echo "test         go test ./..."
	@echo "race         go test -race ./..."
	@echo "bench        batch-compile benchmark, 2 rounds"
	@echo "bench-smoke  end-to-end routing smoke incl. the zero-alloc guard"
	@echo "bench-json   write the perf baseline (BENCH_PR10.json)"
	@echo "bench-guard  fail on perf regression vs the committed baseline"
	@echo "sabred-smoke daemon end-to-end smoke (SMOKE_RACE=1 for -race)"
	@echo "crash-smoke  SIGKILL + durable-log replay drill (always race-built)"
	@echo "stream-smoke million-gate chunked /compile + webhook-chunk job smoke"
	@echo "             (STREAM_FIXTURE=f reuses a cached trace, SMOKE_RACE=1 for -race)"
	@echo "clean        go clean ./..."
