# Tier-1 verification plus the race-enabled suite. `make check` is the
# gate CI runs on every push.

GO ?= go

.PHONY: check build test vet race bench clean

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench BenchmarkBatchCompile -benchtime=2x .

clean:
	$(GO) clean ./...
