# Tier-1 verification plus the race-enabled suite. `make check` is the
# gate CI runs on every push.

GO ?= go

.PHONY: check build test vet race bench bench-smoke bench-json clean

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench BenchmarkBatchCompile -benchtime=2x .

# End-to-end routing smoke: two small workloads through the batch
# engine with a 4-trial fan-out and the verify pass in the job
# pipeline, so any routing-validity error fails the target (exit 1),
# plus one workload through each registry heuristic (anneal,
# tokenswap) under the same verify gate. The final step runs the
# routing hot-path benchmarks once with allocation reporting — the
# TestScoreRoundZeroAllocs guard in the same package fails the suite
# if a heap allocation creeps back into the steady-state SWAP round.
bench-smoke:
	$(GO) run ./cmd/benchtab -batch -names 4mod5-v1_22,qft_10 -trials 4 -passes verify -rounds 1 -workers 2
	$(GO) run ./cmd/benchtab -batch -names 4mod5-v1_22 -route anneal -trials 2 -passes verify -rounds 1 -workers 2
	$(GO) run ./cmd/benchtab -batch -names 4mod5-v1_22 -route tokenswap -trials 4 -passes verify -rounds 1 -workers 2
	$(GO) test ./internal/core -run TestScoreRoundZeroAllocs -count=1 \
		-bench 'BenchmarkScoreRound|BenchmarkRoutePass/qft_20' -benchtime=1x -benchmem

# Perf-trajectory snapshot: workload × router ns/op, allocs/op and
# added gates, written as JSON so future PRs have a baseline to beat.
# Compare against the committed BENCH_PR4.json.
bench-json:
	$(GO) run ./cmd/benchtab -json BENCH_PR4.json

clean:
	$(GO) clean ./...
