# Tier-1 verification plus the race-enabled suite. `make check` is the
# gate CI runs on every push.

GO ?= go

.PHONY: check build test vet race bench bench-smoke clean

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench BenchmarkBatchCompile -benchtime=2x .

# End-to-end routing smoke: two small workloads through the batch
# engine with a 4-trial fan-out and the verify pass in the job
# pipeline, so any routing-validity error fails the target (exit 1),
# plus one workload through each registry heuristic (anneal,
# tokenswap) under the same verify gate.
bench-smoke:
	$(GO) run ./cmd/benchtab -batch -names 4mod5-v1_22,qft_10 -trials 4 -passes verify -rounds 1 -workers 2
	$(GO) run ./cmd/benchtab -batch -names 4mod5-v1_22 -route anneal -trials 2 -passes verify -rounds 1 -workers 2
	$(GO) run ./cmd/benchtab -batch -names 4mod5-v1_22 -route tokenswap -trials 4 -passes verify -rounds 1 -workers 2

clean:
	$(GO) clean ./...
