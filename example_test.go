package sabre_test

import (
	"fmt"

	sabre "repro"
)

// Compiling a GHZ ladder onto a line: the CNOT chain embeds perfectly,
// so SABRE inserts no SWAPs.
func ExampleCompile() {
	dev := sabre.LineDevice(6)
	circ := sabre.GHZ(6)
	res, err := sabre.Compile(circ, dev, sabre.DefaultOptions())
	if err != nil {
		panic(err)
	}
	fmt.Println("swaps inserted:", res.SwapCount)
	fmt.Println("compliant:", sabre.VerifyCompliant(res.Circuit, dev) == nil)
	// Output:
	// swaps inserted: 0
	// compliant: true
}

// Parsing OpenQASM 2.0 and inspecting the circuit.
func ExampleParseQASM() {
	circ, err := sabre.ParseQASM(`OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
`)
	if err != nil {
		panic(err)
	}
	fmt.Println("qubits:", circ.NumQubits())
	fmt.Println("gates:", circ.NumGates())
	fmt.Println("depth:", circ.Depth())
	// Output:
	// qubits: 3
	// gates: 3
	// depth: 3
}

// Peephole optimization cancels self-inverse pairs.
func ExampleOptimize() {
	c := sabre.NewCircuit(2)
	c.Append(
		sabre.G1(sabre.KindH, 0),
		sabre.G1(sabre.KindH, 0), // cancels with the previous H
		sabre.CX(0, 1),
	)
	res := sabre.Optimize(c)
	fmt.Println("gates:", res.GatesIn, "->", res.GatesOut)
	// Output:
	// gates: 3 -> 1
}

// A custom device is just an edge list.
func ExampleNewDevice() {
	dev, err := sabre.NewDevice("T-shape", 4, []sabre.Edge{
		sabre.CouplingEdge(0, 1),
		sabre.CouplingEdge(1, 2),
		sabre.CouplingEdge(1, 3),
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(dev)
	fmt.Println("distance 0-3:", dev.Distance(0, 3))
	// Output:
	// T-shape(N=4, |E|=3)
	// distance 0-3: 2
}
