package sabre

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// The facade tests exercise the public API end to end, the way a
// downstream user would.

func TestQuickstartFlow(t *testing.T) {
	dev := IBMQ20Tokyo()
	circ := QFT(8)
	res, err := Compile(circ, dev, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyCompliant(res.Circuit, dev); err != nil {
		t.Fatal(err)
	}
	if res.Circuit.NumQubits() != dev.NumQubits() {
		t.Fatal("routed circuit not device-wide")
	}
	rep := CompareCircuits(circ, res.Circuit)
	if rep.AddedGates != res.AddedGates {
		t.Fatalf("metrics (%d) disagree with result (%d)", rep.AddedGates, res.AddedGates)
	}
}

func TestBuildCompileVerifyLinear(t *testing.T) {
	c := NewCircuit(4)
	c.Append(CX(0, 1), CX(0, 2), CX(0, 3), CX(2, 3))
	dev := LineDevice(5)
	res, err := Compile(c, dev, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyRouted(c, res); err != nil {
		t.Fatal(err)
	}
}

func TestStateVerification(t *testing.T) {
	c := NewCircuit(4)
	c.Append(G1(KindH, 0), CX(0, 1), CX(1, 2), G1(KindT, 2), CX(2, 3))
	dev := RingDevice(5)
	res, err := Compile(c, dev, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyRoutedStates(c, res, 2, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
}

func TestQASMRoundTripThroughCompile(t *testing.T) {
	src := `OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
h q[0];
cx q[0],q[3];
cx q[1],q[2];
cx q[0],q[2];
`
	c, err := ParseQASM(src)
	if err != nil {
		t.Fatal(err)
	}
	dev := GridDevice(2, 2)
	res, err := Compile(c, dev, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	text := FormatQASM(res.Circuit.DecomposeSwaps())
	back, err := ParseQASM(text)
	if err != nil {
		t.Fatalf("emitted QASM does not reparse: %v\n%s", err, text)
	}
	if back.NumGates() != res.Circuit.DecomposeSwaps().NumGates() {
		t.Fatal("QASM round trip lost gates")
	}
	if !strings.Contains(text, "OPENQASM 2.0;") {
		t.Fatal("missing header")
	}
}

func TestCustomDevice(t *testing.T) {
	dev, err := NewDevice("T", 4, []Edge{CouplingEdge(0, 1), CouplingEdge(1, 2), CouplingEdge(1, 3)})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCircuit(4)
	c.Append(CX(0, 3), CX(2, 3))
	res, err := Compile(c, dev, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyRouted(c, res); err != nil {
		t.Fatal(err)
	}
}

func TestBaselinesExposed(t *testing.T) {
	c := RandomCircuit("pub", 6, 40, 0.6, 3)
	dev := GridDevice(2, 3)
	g, err := GreedyCompile(c, dev)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyCompliant(g.Circuit, dev); err != nil {
		t.Fatal(err)
	}
}

func TestFidelityAndDuration(t *testing.T) {
	em := Q20ErrorModel()
	c := GHZ(5)
	f := EstimateFidelity(c, em)
	if f <= 0 || f >= 1 {
		t.Fatalf("fidelity %g out of range", f)
	}
	if EstimateDuration(c, em) <= 0 {
		t.Fatal("duration missing")
	}
}

func TestSimulateGHZ(t *testing.T) {
	amps := Simulate(GHZ(3))
	w := 1 / math.Sqrt2
	if math.Abs(real(amps[0])-w) > 1e-9 || math.Abs(real(amps[7])-w) > 1e-9 {
		t.Fatal("GHZ amplitudes wrong")
	}
}

func TestBenchmarkSuiteExposed(t *testing.T) {
	if len(Benchmarks()) != 26 {
		t.Fatal("suite size wrong")
	}
	b, ok := BenchmarkByName("qft_10")
	if !ok || b.N != 10 {
		t.Fatal("lookup broken")
	}
	if b.Build().NumQubits() != 10 {
		t.Fatal("build broken")
	}
}

func TestFindInitialMapping(t *testing.T) {
	dev := IBMQ20Tokyo()
	c := Ising(8, 3)
	l, err := FindInitialMapping(c, dev, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := CompileWithLayout(c, dev, l, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapCount != 0 {
		t.Fatalf("ising with reverse-traversal layout used %d swaps", res.SwapCount)
	}
}

func TestOptimizeExposed(t *testing.T) {
	c := NewCircuit(2)
	c.Append(G1(KindH, 0), G1(KindH, 0), CX(0, 1))
	res := Optimize(c)
	if res.Circuit.NumGates() != 1 || res.Removed != 2 {
		t.Fatalf("optimize wrong: %+v", res)
	}
}

func TestScheduleExposed(t *testing.T) {
	c := GHZ(4)
	s := ScheduleASAP(c)
	if s.Depth() != c.Depth() {
		t.Fatal("schedule depth mismatch")
	}
	if err := s.Valid(); err != nil {
		t.Fatal(err)
	}
	l := ScheduleALAP(c)
	if l.Depth() != c.Depth() {
		t.Fatal("ALAP depth mismatch")
	}
	if s.Render() == "" {
		t.Fatal("render empty")
	}
}

func TestNewDevicesExposed(t *testing.T) {
	for _, d := range []*Device{IBMFalcon27(), RigettiAspen(2), Sycamore(3, 4)} {
		if d.NumQubits() == 0 {
			t.Fatalf("%s empty", d.Name())
		}
		c := GHZ(4)
		res, err := Compile(c, d, DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		if err := VerifyCompliant(res.Circuit, d); err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
	}
}

func TestNoiseExposed(t *testing.T) {
	dev := IBMQ20Tokyo()
	noise := RandomNoise(dev, 0.005, 0.05, rand.New(rand.NewSource(1)))
	opts := DefaultOptions()
	opts.Trials = 2
	opts.Noise = noise
	opts.MaxEdgeError = 0.04
	res, err := Compile(QFT(8), dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyCompliant(res.Circuit, dev); err != nil {
		t.Fatal(err)
	}
	if UniformNoise(0.01).Error(CouplingEdge(0, 1)) != 0.01 {
		t.Fatal("uniform noise wrong")
	}
}

func TestBreakdownExposed(t *testing.T) {
	dev := LineDevice(5)
	c := QFT(5)
	res, err := Compile(c, dev, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b := BreakdownCircuits(c, res.Circuit)
	if b.AddedGates != res.AddedGates {
		t.Fatalf("breakdown disagrees with result: %d vs %d", b.AddedGates, res.AddedGates)
	}
	u := QubitUtilization(res.Circuit)
	if len(u) != 5 {
		t.Fatal("utilization width wrong")
	}
}

func TestToffoliExposed(t *testing.T) {
	gates := Toffoli(0, 1, 2)
	if len(gates) != 15 {
		t.Fatal("toffoli decomposition wrong")
	}
	c := NewCircuit(3)
	c.Append(gates...)
	if c.CountKind(KindCX) != 6 {
		t.Fatal("CNOT count wrong")
	}
}
