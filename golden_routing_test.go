// Golden determinism suite for the delta-scoring routing core: delta
// scoring must route byte-identically to the exhaustive reference
// scorer (the pre-optimization behavior) over the entire Table II
// workload suite — same output circuits, same layouts, same pass
// statistics — at any trial worker count, including under a noise
// model (float-weighted distances) and with bridges enabled.
package sabre_test

import (
	"context"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/workloads"
)

// assertSameResult fails unless a and b are byte-identical routing
// outcomes: gate-for-gate equal circuits, equal layouts, and equal
// instrumentation.
func assertSameResult(t *testing.T, label string, a, b *core.Result) {
	t.Helper()
	if !a.Circuit.Equal(b.Circuit) {
		t.Fatalf("%s: routed circuits differ (%d vs %d gates)", label, a.Circuit.NumGates(), b.Circuit.NumGates())
	}
	if len(a.InitialLayout) != len(b.InitialLayout) {
		t.Fatalf("%s: initial layout sizes differ", label)
	}
	for i := range a.InitialLayout {
		if a.InitialLayout[i] != b.InitialLayout[i] || a.FinalLayout[i] != b.FinalLayout[i] {
			t.Fatalf("%s: layouts differ at qubit %d", label, i)
		}
	}
	if a.SwapCount != b.SwapCount || a.BridgeCount != b.BridgeCount || a.AddedGates != b.AddedGates {
		t.Fatalf("%s: counts differ: swaps %d/%d bridges %d/%d", label,
			a.SwapCount, b.SwapCount, a.BridgeCount, b.BridgeCount)
	}
	if a.Stats != b.Stats {
		t.Fatalf("%s: pass stats differ: %+v vs %+v", label, a.Stats, b.Stats)
	}
}

// TestGoldenDeltaMatchesExhaustiveFullSuite routes every Table II
// benchmark twice — delta scoring and old-style exhaustive scoring —
// and asserts byte-identical outputs.
func TestGoldenDeltaMatchesExhaustiveFullSuite(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	for _, b := range workloads.All() {
		circ := b.Build()
		opts := core.DefaultOptions()
		opts.Trials = 2 // keeps the full-suite sweep inside tier-1 budget

		delta, err := core.Compile(circ, dev, opts)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		opts.ExhaustiveScoring = true
		exhaustive, err := core.Compile(circ, dev, opts)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		assertSameResult(t, b.Name, delta, exhaustive)
	}
}

// TestGoldenNoiseAndBridgeConfigs covers the two scoring paths the
// plain suite does not reach: float-weighted distances (noise model +
// coupler pruning) and the 4-CNOT bridge transformation.
func TestGoldenNoiseAndBridgeConfigs(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	circ := workloads.RandomCircuit("golden", 14, 300, 0.6, 5)

	for _, tc := range []struct {
		name string
		mut  func(*core.Options)
	}{
		{"bridge", func(o *core.Options) { o.UseBridge = true }},
		{"noise", func(o *core.Options) {
			o.Noise = arch.RandomNoise(dev, 1e-3, 1e-1, rand.New(rand.NewSource(7)))
			o.MaxEdgeError = 0.05
		}},
		{"noise+bridge", func(o *core.Options) {
			o.Noise = arch.RandomNoise(dev, 1e-3, 1e-1, rand.New(rand.NewSource(11)))
			o.UseBridge = true
		}},
		{"basic", func(o *core.Options) { o.Heuristic = core.HeuristicBasic }},
		{"lookahead", func(o *core.Options) { o.Heuristic = core.HeuristicLookahead }},
	} {
		opts := core.DefaultOptions()
		opts.Trials = 2
		tc.mut(&opts)

		delta, err := core.Compile(circ, dev, opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		opts.ExhaustiveScoring = true
		exhaustive, err := core.Compile(circ, dev, opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		assertSameResult(t, tc.name, delta, exhaustive)
		if tc.name == "bridge" && delta.BridgeCount == 0 {
			t.Fatal("bridge config routed zero bridges; the golden test is not exercising the bridge path")
		}
	}
}

// TestGoldenTrialRunnerWorkerInvariance runs the best-of-N trial
// protocol at several worker counts, in both scoring modes, and
// asserts every combination selects the byte-identical winner. This is
// the "any worker count" half of the determinism contract: per-worker
// scratch reuse must never leak state between trials.
func TestGoldenTrialRunnerWorkerInvariance(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	workerCounts := []int{1, 3, runtime.GOMAXPROCS(0)}
	for _, name := range []string{"qft_13", "rd84_142", "ising_model_13"} {
		b, ok := workloads.ByName(name)
		if !ok {
			t.Fatalf("unknown benchmark %s", name)
		}
		circ := b.Build()
		var ref *core.Result
		for _, exhaustive := range []bool{false, true} {
			opts := core.DefaultOptions()
			opts.Trials = 6
			opts.ExhaustiveScoring = exhaustive
			for _, workers := range workerCounts {
				tr := pipeline.TrialRunner{Trials: 6, Workers: workers}
				res, err := tr.Route(context.Background(), circ, dev, opts)
				if err != nil {
					t.Fatalf("%s workers=%d: %v", name, workers, err)
				}
				if ref == nil {
					ref = res
					continue
				}
				assertSameResult(t, name, ref, res)
			}
		}
	}
}

// TestBridgeSharesExtendedSetPerRound is the regression test for the
// double-computation bug: tryBridge used to build the extended set and
// insertBestSwap immediately rebuilt it within the same round. With
// the front-generation cache, one round triggers at most one rebuild,
// so the rebuild count is bounded by the number of rounds that consult
// the set (swap rounds + bridge executions); the old behavior was ~2×
// the swap rounds and trips the bound.
func TestBridgeSharesExtendedSetPerRound(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	circ := workloads.RandomCircuit("bridge-regress", 14, 300, 0.6, 5)
	opts := core.DefaultOptions()
	opts.Trials = 2
	opts.UseBridge = true
	res, err := core.Compile(circ, dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SwapRounds == 0 || res.BridgeCount == 0 {
		t.Fatalf("workload does not exercise bridge+swap rounds: %+v", res.Stats)
	}
	limit := res.Stats.SwapRounds + res.BridgeCount
	if res.Stats.ExtendedRebuilds > limit {
		t.Fatalf("extended set rebuilt %d times for %d swap rounds + %d bridges — recomputed more than once per round",
			res.Stats.ExtendedRebuilds, res.Stats.SwapRounds, res.BridgeCount)
	}
}

// TestRoutedOutputStillValid spot-checks that a delta-scored routing
// remains hardware-compliant: every two-qubit gate of the decomposed
// output acts on coupled physical qubits.
func TestRoutedOutputStillValid(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	b, _ := workloads.ByName("qft_16")
	res, err := core.Compile(b.Build(), dev, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range res.Circuit.DecomposeSwaps().Gates() {
		if g.TwoQubit() && !dev.Connected(g.Q0, g.Q1) {
			t.Fatalf("gate %d (%v %d,%d) on uncoupled qubits", i, g.Kind, g.Q0, g.Q1)
		}
	}
}
