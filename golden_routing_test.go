// Golden determinism suite for the routing core's scoring engines:
// the branch-free bitset engine (the default), the delta oracle, and
// the exhaustive reference must route byte-identically over the
// entire Table II workload suite — same output circuits, same
// layouts, same pass statistics — at any trial worker count,
// including under a noise model (float-weighted distances) and with
// bridges enabled. All three share one candidate order (ascending
// dense edge id) and one tie-break comparison sequence, so they
// consume the same RNG stream; this suite is the proof.
package sabre_test

import (
	"context"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/workloads"
)

// assertSameResult fails unless a and b are byte-identical routing
// outcomes: gate-for-gate equal circuits, equal layouts, and equal
// instrumentation.
func assertSameResult(t *testing.T, label string, a, b *core.Result) {
	t.Helper()
	if !a.Circuit.Equal(b.Circuit) {
		t.Fatalf("%s: routed circuits differ (%d vs %d gates)", label, a.Circuit.NumGates(), b.Circuit.NumGates())
	}
	if len(a.InitialLayout) != len(b.InitialLayout) {
		t.Fatalf("%s: initial layout sizes differ", label)
	}
	for i := range a.InitialLayout {
		if a.InitialLayout[i] != b.InitialLayout[i] || a.FinalLayout[i] != b.FinalLayout[i] {
			t.Fatalf("%s: layouts differ at qubit %d", label, i)
		}
	}
	if a.SwapCount != b.SwapCount || a.BridgeCount != b.BridgeCount || a.AddedGates != b.AddedGates {
		t.Fatalf("%s: counts differ: swaps %d/%d bridges %d/%d", label,
			a.SwapCount, b.SwapCount, a.BridgeCount, b.BridgeCount)
	}
	if a.Stats != b.Stats {
		t.Fatalf("%s: pass stats differ: %+v vs %+v", label, a.Stats, b.Stats)
	}
}

// goldenEngines is the three-way engine set every golden test sweeps.
var goldenEngines = []struct {
	name    string
	scoring core.Scoring
}{
	{"bitset", core.ScoringBitset},
	{"delta", core.ScoringDelta},
	{"exhaustive", core.ScoringExhaustive},
}

// TestGoldenScoringEnginesFullSuite routes every Table II benchmark
// under all three scoring engines at trial worker counts 1, 2, 4 and
// 8, and asserts every combination produces the byte-identical result
// (circuits, layouts, pass statistics). This is the full determinism
// contract in one sweep: engine-independence (shared candidate order
// and tie-break RNG stream) and worker-count-independence (per-worker
// scratch isolation) at once.
func TestGoldenScoringEnginesFullSuite(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	workerCounts := []int{1, 2, 4, 8}
	for _, b := range workloads.All() {
		circ := b.Build()
		var ref *core.Result
		for _, eng := range goldenEngines {
			opts := core.DefaultOptions()
			opts.Trials = 2 // keeps the full-suite sweep inside tier-1 budget
			opts.Scoring = eng.scoring
			for _, workers := range workerCounts {
				tr := pipeline.TrialRunner{Trials: 2, Workers: workers}
				res, err := tr.Route(context.Background(), circ, dev, opts)
				if err != nil {
					t.Fatalf("%s/%s workers=%d: %v", b.Name, eng.name, workers, err)
				}
				if ref == nil {
					ref = res
					continue
				}
				assertSameResult(t, b.Name+"/"+eng.name, ref, res)
			}
		}
	}
}

// TestGoldenNoiseAndBridgeConfigs covers the two scoring paths the
// plain suite does not reach: float-weighted distances (noise model +
// coupler pruning) and the 4-CNOT bridge transformation.
func TestGoldenNoiseAndBridgeConfigs(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	circ := workloads.RandomCircuit("golden", 14, 300, 0.6, 5)

	for _, tc := range []struct {
		name string
		mut  func(*core.Options)
	}{
		{"bridge", func(o *core.Options) { o.UseBridge = true }},
		{"noise", func(o *core.Options) {
			o.Noise = arch.RandomNoise(dev, 1e-3, 1e-1, rand.New(rand.NewSource(7)))
			o.MaxEdgeError = 0.05
		}},
		{"noise+bridge", func(o *core.Options) {
			o.Noise = arch.RandomNoise(dev, 1e-3, 1e-1, rand.New(rand.NewSource(11)))
			o.UseBridge = true
		}},
		{"basic", func(o *core.Options) { o.Heuristic = core.HeuristicBasic }},
		{"lookahead", func(o *core.Options) { o.Heuristic = core.HeuristicLookahead }},
	} {
		var ref *core.Result
		for _, eng := range goldenEngines {
			opts := core.DefaultOptions()
			opts.Trials = 2
			opts.Scoring = eng.scoring
			tc.mut(&opts)

			res, err := core.Compile(circ, dev, opts)
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.name, eng.name, err)
			}
			if ref == nil {
				ref = res
				continue
			}
			assertSameResult(t, tc.name+"/"+eng.name, ref, res)
		}
		if tc.name == "bridge" && ref.BridgeCount == 0 {
			t.Fatal("bridge config routed zero bridges; the golden test is not exercising the bridge path")
		}
	}
}

// TestGoldenTrialRunnerWorkerInvariance runs the best-of-N trial
// protocol at several worker counts (including an odd count and the
// machine's own GOMAXPROCS) with a deeper trial budget than the
// full-suite sweep, across all three scoring engines, and asserts
// every combination selects the byte-identical winner: per-worker
// scratch reuse must never leak state between trials.
func TestGoldenTrialRunnerWorkerInvariance(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	workerCounts := []int{1, 3, runtime.GOMAXPROCS(0)}
	for _, name := range []string{"qft_13", "rd84_142", "ising_model_13"} {
		b, ok := workloads.ByName(name)
		if !ok {
			t.Fatalf("unknown benchmark %s", name)
		}
		circ := b.Build()
		var ref *core.Result
		for _, eng := range goldenEngines {
			opts := core.DefaultOptions()
			opts.Trials = 6
			opts.Scoring = eng.scoring
			for _, workers := range workerCounts {
				tr := pipeline.TrialRunner{Trials: 6, Workers: workers}
				res, err := tr.Route(context.Background(), circ, dev, opts)
				if err != nil {
					t.Fatalf("%s/%s workers=%d: %v", name, eng.name, workers, err)
				}
				if ref == nil {
					ref = res
					continue
				}
				assertSameResult(t, name+"/"+eng.name, ref, res)
			}
		}
	}
}

// TestBridgeSharesExtendedSetPerRound is the regression test for the
// double-computation bug: tryBridge used to build the extended set and
// insertBestSwap immediately rebuilt it within the same round. With
// the front-generation cache, one round triggers at most one rebuild,
// so the rebuild count is bounded by the number of rounds that consult
// the set (swap rounds + bridge executions); the old behavior was ~2×
// the swap rounds and trips the bound.
func TestBridgeSharesExtendedSetPerRound(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	circ := workloads.RandomCircuit("bridge-regress", 14, 300, 0.6, 5)
	opts := core.DefaultOptions()
	opts.Trials = 2
	opts.UseBridge = true
	res, err := core.Compile(circ, dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SwapRounds == 0 || res.BridgeCount == 0 {
		t.Fatalf("workload does not exercise bridge+swap rounds: %+v", res.Stats)
	}
	limit := res.Stats.SwapRounds + res.BridgeCount
	if res.Stats.ExtendedRebuilds > limit {
		t.Fatalf("extended set rebuilt %d times for %d swap rounds + %d bridges — recomputed more than once per round",
			res.Stats.ExtendedRebuilds, res.Stats.SwapRounds, res.BridgeCount)
	}
}

// TestRoutedOutputStillValid spot-checks that a delta-scored routing
// remains hardware-compliant: every two-qubit gate of the decomposed
// output acts on coupled physical qubits.
func TestRoutedOutputStillValid(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	b, _ := workloads.ByName("qft_16")
	res, err := core.Compile(b.Build(), dev, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range res.Circuit.DecomposeSwaps().Gates() {
		if g.TwoQubit() && !dev.Connected(g.Q0, g.Q1) {
			t.Fatalf("gate %d (%v %d,%d) on uncoupled qubits", i, g.Kind, g.Q0, g.Q1)
		}
	}
}
