package sabre

import (
	"context"
	"testing"
)

// These tests pin the acceptance contract of the pass-pipeline facade:
// CompileN is deterministic at any worker count, never worse than a
// single trial, and BuildPipeline composes instrumented pipelines.

func TestCompileNDeterministicAndNoWorseThanSingleTrial(t *testing.T) {
	dev := IBMQ20Tokyo()
	opts := DefaultOptions()
	opts.Seed = 17

	for name, circ := range map[string]*Circuit{
		"qft_16":    QFT(16),
		"rnd_tokyo": RandomCircuit("rnd", 14, 160, 0.6, 23),
	} {
		single, err := Compile(circ, dev, func() Options { o := opts; o.Trials = 1; return o }())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var ref string
		for _, workers := range []int{1, 4} {
			tr := TrialRunner{Trials: 8, Workers: workers}
			res, err := tr.Route(context.Background(), circ, dev, opts)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if res.AddedGates > single.AddedGates {
				t.Errorf("%s: CompileN(8) added %d gates, single trial %d",
					name, res.AddedGates, single.AddedGates)
			}
			q := FormatQASM(res.Circuit)
			if ref == "" {
				ref = q
			} else if q != ref {
				t.Errorf("%s: CompileN not deterministic across worker counts", name)
			}
		}
		// The facade entry point agrees with the explicit runner.
		res, err := CompileN(circ, dev, opts, 8)
		if err != nil {
			t.Fatal(err)
		}
		if FormatQASM(res.Circuit) != ref {
			t.Errorf("%s: CompileN diverged from TrialRunner", name)
		}
		if err := VerifyCompliant(res.Circuit, dev); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestBuildPipelineExposed(t *testing.T) {
	pm, err := BuildPipeline("route", "peephole", "basis", "schedule", "verify")
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Seed = 2
	pc, err := pm.Compile(context.Background(), QFT(8), IBMQ20Tokyo(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(pc.Metrics) != 5 {
		t.Fatalf("expected 5 pass metrics, got %d", len(pc.Metrics))
	}
	if pc.Result == nil || pc.Schedule == nil {
		t.Fatal("pipeline context missing route/schedule outputs")
	}
	if _, err := BuildPipeline("warp-drive"); err == nil {
		t.Fatal("unknown pass accepted")
	}
}

// customPass doubles as the ARCHITECTURE.md example: a user-defined
// pass only needs Name and Run.
type customPass struct{ ran *bool }

func (customPass) Name() string                    { return "custom" }
func (p customPass) Run(pc *PipelineContext) error { *p.ran = true; return nil }

func TestCustomPassViaNewPipeline(t *testing.T) {
	ran := false
	pm := NewPipeline(customPass{ran: &ran})
	if _, err := pm.Compile(context.Background(), GHZ(3), LineDevice(3), DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("custom pass did not run")
	}
}
