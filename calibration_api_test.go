package sabre

import (
	"context"
	"testing"
)

// TestCalibrationFacade: the public calibration surface — apply a
// snapshot, read it back, and see a calibration-aware batch job pick
// it up with a fresh cache key.
func TestCalibrationFacade(t *testing.T) {
	dev := LineDevice(4)
	if DeviceCalibration(dev) != nil {
		t.Fatal("fresh device reports a calibration")
	}

	snap, err := ApplyCalibration(dev, UniformNoise(0.02))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != 1 || DeviceCalibration(dev) != snap {
		t.Fatalf("snapshot = %+v, want version 1 and readable back", snap)
	}
	if _, err := ApplyCalibration(dev, UniformNoise(1.5)); err == nil {
		t.Fatal("out-of-range rate accepted")
	}

	eng := NewEngine(BatchConfig{Workers: 2})
	defer eng.Close()
	job := BatchJob{Circuit: QFT(4), Device: dev, UseCalibration: true}
	res := <-eng.Submit(job)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.CalVersion != 1 {
		t.Fatalf("CalVersion = %d, want 1", res.CalVersion)
	}

	key1 := BatchKeyOf(job)
	if _, err := ApplyCalibration(dev, UniformNoise(0.04)); err != nil {
		t.Fatal(err)
	}
	if key2 := BatchKeyOf(job); key2 == key1 {
		t.Fatal("cache key unchanged after recalibration")
	}
}

// TestFleetFacade: score a circuit across a fleet and dispatch through
// the load-tracking scheduler.
func TestFleetFacade(t *testing.T) {
	line := LineDevice(6)
	full := FullDevice(6)
	if _, err := ApplyCalibration(line, UniformNoise(0.02)); err != nil {
		t.Fatal(err)
	}
	if _, err := ApplyCalibration(full, UniformNoise(0.02)); err != nil {
		t.Fatal(err)
	}

	circ := GHZ(6)
	dec, err := ScheduleFleet(circ, []FleetCandidate{{Device: line}, {Device: full}}, FleetWeights{})
	if err != nil {
		t.Fatal(err)
	}
	// All-to-all coupling routes GHZ with zero SWAPs; it must beat the
	// line on predicted error.
	if dec.Device != full {
		t.Fatalf("winner = %s, want %s (scores %+v)", dec.Winner.Device, full.Name(), dec.Scores)
	}
	if len(dec.Scores) != 2 || dec.Winner.CalVersion != 1 {
		t.Fatalf("decision = %+v", dec)
	}

	eng := NewEngine(BatchConfig{Workers: 2})
	defer eng.Close()
	sched, err := NewFleetScheduler(eng, []*Device{line, full}, FleetWeights{})
	if err != nil {
		t.Fatal(err)
	}
	res, dec2, err := sched.Compile(context.Background(), BatchJob{Circuit: circ})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if dec2.Device != full || res.CalVersion != 1 {
		t.Fatalf("scheduler compiled on %s at cal version %d, want %s at 1",
			dec2.Winner.Device, res.CalVersion, full.Name())
	}
}
