// Golden determinism suite for the streaming compilation mode: the
// windowed slot-arena path (RouteStream) must produce byte-identical
// output — same gate sequence, same layouts, same instrumentation —
// as the materialized-DAG oracle (RouteStreamMaterialized) over the
// entire Table II workload suite, and that output must be invariant
// under concurrency: many streams routed in parallel on per-worker
// warm Scratches yield exactly the single-threaded result. Together
// with the core package's parity tests this is the streaming
// determinism contract in one sweep.
package sabre_test

import (
	"bytes"
	"context"
	"sync"
	"testing"

	sabre "repro"
	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/qasm"
	"repro/internal/workloads"
)

// gateSink accumulates emitted chunks into one gate slice, copying
// because Emit's buffer is reused.
type gateSink struct {
	gates []circuit.Gate
}

func (g *gateSink) Emit(chunk []circuit.Gate) error {
	g.gates = append(g.gates, chunk...)
	return nil
}

// streamOutcome is everything the parity assertion compares.
type streamOutcome struct {
	gates []circuit.Gate
	res   *core.StreamResult
}

func assertSameStream(t *testing.T, label string, a, b *streamOutcome) {
	t.Helper()
	if len(a.gates) != len(b.gates) {
		t.Fatalf("%s: emitted %d vs %d gates", label, len(a.gates), len(b.gates))
	}
	for i := range a.gates {
		x, y := a.gates[i], b.gates[i]
		if x.Kind != y.Kind || x.Q0 != y.Q0 || x.Q1 != y.Q1 || len(x.Params) != len(y.Params) {
			t.Fatalf("%s: gate %d differs: %v vs %v", label, i, x, y)
		}
		for j := range x.Params {
			if x.Params[j] != y.Params[j] {
				t.Fatalf("%s: gate %d param %d differs", label, i, j)
			}
		}
	}
	for i := range a.res.InitialLayout {
		if a.res.InitialLayout[i] != b.res.InitialLayout[i] || a.res.FinalLayout[i] != b.res.FinalLayout[i] {
			t.Fatalf("%s: layouts differ at qubit %d", label, i)
		}
	}
	as, bs := a.res.Stats, b.res.Stats
	if as.SwapCount != bs.SwapCount || as.BridgeCount != bs.BridgeCount ||
		as.SwapRounds != bs.SwapRounds || as.ForcedRoutes != bs.ForcedRoutes ||
		as.GatesIn != bs.GatesIn || as.GatesOut != bs.GatesOut {
		t.Fatalf("%s: stream stats differ: %+v vs %+v", label, as, bs)
	}
}

// TestGoldenStreamingFullSuite streams every Table II benchmark
// through the windowed path and asserts byte-parity against the
// materialized oracle, then repeats the whole windowed sweep on
// worker pools of 1, 2, 4 and 8 goroutines (per-worker warm Scratch,
// workloads pulled off a shared queue) and asserts every worker
// count reproduces the same bytes — per-worker scratch reuse must
// never leak state between streams.
func TestGoldenStreamingFullSuite(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	opts := core.DefaultOptions()
	sopts := core.DefaultStreamOptions()
	suite := workloads.All()

	// Materialized-oracle reference, one per workload.
	ref := make(map[string]*streamOutcome, len(suite))
	for _, b := range suite {
		sink := &gateSink{}
		res, err := core.RouteStreamMaterialized(context.Background(), b.Build(), dev, opts, sopts, sink)
		if err != nil {
			t.Fatalf("%s: materialized: %v", b.Name, err)
		}
		ref[b.Name] = &streamOutcome{gates: sink.gates, res: res}
	}

	for _, workers := range []int{1, 2, 4, 8} {
		queue := make(chan workloads.Benchmark, len(suite))
		for _, b := range suite {
			queue <- b
		}
		close(queue)

		var wg sync.WaitGroup
		errs := make(chan error, workers)
		outs := make([]map[string]*streamOutcome, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				scratch := core.NewScratch() // warm across this worker's streams
				got := make(map[string]*streamOutcome)
				outs[w] = got
				for b := range queue {
					sink := &gateSink{}
					res, err := core.RouteStream(context.Background(),
						core.NewCircuitSource(b.Build()), dev, opts, sopts, sink, scratch)
					if err != nil {
						errs <- err
						return
					}
					got[b.Name] = &streamOutcome{gates: sink.gates, res: res}
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatalf("workers=%d: %v", workers, err)
		}

		routed := 0
		for w := range outs {
			for name, got := range outs[w] {
				assertSameStream(t, name, ref[name], got)
				routed++
			}
		}
		if routed != len(suite) {
			t.Fatalf("workers=%d: routed %d workloads, want %d", workers, routed, len(suite))
		}
	}
}

// TestFacadeCompileStream drives the whole public streaming surface:
// QASM in through a GateScanner, routed through CompileStream with a
// verifying sink, serialized back out through a QASMStreamWriter —
// and the bytes must match the core-level materialized oracle.
func TestFacadeCompileStream(t *testing.T) {
	dev := sabre.IBMQ20Tokyo()
	circ := workloads.RandomCircuit("facade-stream", 15, 2000, 0.5, 9)
	var src bytes.Buffer
	if err := qasm.Write(&src, circ); err != nil {
		t.Fatal(err)
	}
	opts := sabre.DefaultOptions()
	sopts := sabre.DefaultStreamOptions()

	var out bytes.Buffer
	sw := sabre.NewQASMStreamWriter(&out, dev.NumQubits())
	sink := sabre.NewVerifySink(sw, dev)
	res, err := sabre.CompileStream(context.Background(),
		sabre.NewGateScanner(&src), dev, opts, sopts, sink)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	if res.Stats.GatesIn != 2000 || res.Stats.GatesOut < res.Stats.GatesIn {
		t.Fatalf("stats gates in/out = %d/%d", res.Stats.GatesIn, res.Stats.GatesOut)
	}
	if res.Stats.GatesPerSec <= 0 {
		t.Fatalf("gates/sec = %v", res.Stats.GatesPerSec)
	}

	// Core-level oracle over the same circuit, serialized identically.
	var want bytes.Buffer
	ow := qasm.NewStreamWriter(&want, dev.NumQubits())
	if _, err := core.RouteStreamMaterialized(context.Background(), circ, dev, opts, sopts, ow); err != nil {
		t.Fatal(err)
	}
	if err := ow.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want.Bytes()) {
		t.Fatalf("facade stream differs from materialized oracle (%d vs %d bytes)", out.Len(), want.Len())
	}
}
