package sabre

import (
	"context"
	"strings"
	"testing"
)

// Facade tests for the router registry and adaptive trials, exercised
// the way a downstream user would.

func TestRouterRegistryExposed(t *testing.T) {
	names := RouterNames()
	for _, want := range []string{"sabre", "greedy", "astar", "anneal", "tokenswap"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("RouterNames() = %v, missing %q", names, want)
		}
	}

	dev := IBMQ20Tokyo()
	circ := QFT(5)
	opts := DefaultOptions()
	opts.Trials = 2
	for _, name := range names {
		r, err := NewRouter(name)
		if err != nil {
			t.Fatalf("NewRouter(%q): %v", name, err)
		}
		res, err := r.Route(context.Background(), circ, dev, opts)
		if err != nil {
			t.Fatalf("%s.Route: %v", name, err)
		}
		if err := VerifyCompliant(res.Circuit, dev); err != nil {
			t.Fatalf("%s output not compliant: %v", name, err)
		}
	}

	if _, err := NewRouter("bogus"); err == nil || !strings.Contains(err.Error(), "tokenswap") {
		t.Fatalf("NewRouter(bogus) err = %v, want a listing of registered routers", err)
	}
}

func TestBuildPipelineWithRegistryRouters(t *testing.T) {
	dev := IBMQ20Tokyo()
	for _, stage := range []string{"route:anneal", "route:tokenswap"} {
		pm, err := BuildPipeline(stage, "verify")
		if err != nil {
			t.Fatal(err)
		}
		opts := DefaultOptions()
		opts.Trials = 2
		if _, err := pm.Compile(context.Background(), GHZ(8), dev, opts); err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
	}
}

func TestCompileAdaptive(t *testing.T) {
	dev := IBMQ20Tokyo()
	circ := QFT(7)
	opts := DefaultOptions()
	res, err := CompileAdaptive(context.Background(), circ, dev, opts, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrialsRun < 1 || res.TrialsRun > 16 {
		t.Fatalf("TrialsRun = %d", res.TrialsRun)
	}
	if err := VerifyCompliant(res.Circuit, dev); err != nil {
		t.Fatal(err)
	}
	// Adaptive never selects a worse result than exhaustive search over
	// the same prefix: re-running exhaustively with the population it
	// chose must reproduce the identical winner.
	exhaustive, err := CompileN(circ, dev, opts, res.TrialsRun)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Circuit.Equal(exhaustive.Circuit) {
		t.Fatal("adaptive winner differs from exhaustive best-of-TrialsRun")
	}
}
