package sabre_test

import (
	"context"
	"testing"
	"time"

	sabre "repro"
)

// TestAsyncEngineLifecycle drives the facade's async surface end to
// end: submit, long-poll wait, result parity with the synchronous
// engine path, cancel, stats.
func TestAsyncEngineLifecycle(t *testing.T) {
	ae := sabre.NewAsyncEngine(sabre.BatchConfig{Workers: 2}, sabre.JobQueueConfig{Workers: 2})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = ae.Close(ctx)
	}()

	dev := sabre.IBMQ20Tokyo()
	job := sabre.BatchJob{Circuit: sabre.QFT(8), Device: dev, Tag: "qft8"}

	snap, err := ae.SubmitAsync(job, "")
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != sabre.JobQueued {
		t.Fatalf("state after submit = %s", snap.State)
	}
	snap, err = ae.WaitJob(context.Background(), snap.ID, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != sabre.JobDone || snap.Result == nil {
		t.Fatalf("job finished as %s (%s)", snap.State, snap.Err)
	}

	// Parity with the synchronous engine path for the identical job.
	sync := <-ae.Batch().Submit(job)
	if sync.Err != nil {
		t.Fatal(sync.Err)
	}
	if sabre.FormatQASM(snap.Result.Final) != sabre.FormatQASM(sync.Final) {
		t.Fatal("async result differs from synchronous result")
	}

	if _, err := ae.JobStatus(snap.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := ae.JobStatus("job-unknown"); err == nil {
		t.Fatal("unknown job id must error")
	}

	// Cancel a fresh submission (it may finish first on a fast box;
	// both terminal states are legal, hanging is not).
	again, err := ae.SubmitAsync(job, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ae.CancelJob(again.ID); err != nil {
		t.Fatal(err)
	}
	final, err := ae.WaitJob(context.Background(), again.ID, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !final.State.Terminal() {
		t.Fatalf("cancelled job stuck in %s", final.State)
	}

	if st := ae.JobStats(); st.Submitted != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if got := len(ae.Jobs()); got != 2 {
		t.Fatalf("jobs list = %d entries, want 2", got)
	}
}
