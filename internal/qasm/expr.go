package qasm

import (
	"math"
	"strconv"
)

// expr is a parsed parameter expression. Expressions appear in gate
// parameter lists and inside gate bodies, where they may reference the
// gate's formal parameters; eval resolves formals through env.
type expr interface {
	eval(env map[string]float64) (float64, error)
}

type numExpr float64

func (n numExpr) eval(map[string]float64) (float64, error) { return float64(n), nil }

type varExpr struct {
	name string
	line int
	col  int
}

func (v varExpr) eval(env map[string]float64) (float64, error) {
	if v.name == "pi" {
		return math.Pi, nil
	}
	if env != nil {
		if val, ok := env[v.name]; ok {
			return val, nil
		}
	}
	return 0, errf(v.line, v.col, "unknown parameter %q", v.name)
}

type unaryExpr struct {
	op        string // "-" or a function name
	arg       expr
	line, col int
}

func (u unaryExpr) eval(env map[string]float64) (float64, error) {
	v, err := u.arg.eval(env)
	if err != nil {
		return 0, err
	}
	switch u.op {
	case "-":
		return -v, nil
	case "sin":
		return math.Sin(v), nil
	case "cos":
		return math.Cos(v), nil
	case "tan":
		return math.Tan(v), nil
	case "exp":
		return math.Exp(v), nil
	case "ln":
		return math.Log(v), nil
	case "sqrt":
		return math.Sqrt(v), nil
	default:
		return 0, errf(u.line, u.col, "unknown function %q", u.op)
	}
}

type binExpr struct {
	op        tokenKind
	l, r      expr
	line, col int
}

func (b binExpr) eval(env map[string]float64) (float64, error) {
	l, err := b.l.eval(env)
	if err != nil {
		return 0, err
	}
	r, err := b.r.eval(env)
	if err != nil {
		return 0, err
	}
	switch b.op {
	case tokPlus:
		return l + r, nil
	case tokMinus:
		return l - r, nil
	case tokStar:
		return l * r, nil
	case tokSlash:
		if r == 0 {
			return 0, errf(b.line, b.col, "division by zero in parameter expression")
		}
		return l / r, nil
	case tokCaret:
		return math.Pow(l, r), nil
	default:
		return 0, errf(b.line, b.col, "unknown operator")
	}
}

// parseExpr parses an additive expression (lowest precedence).
func (p *parser) parseExpr() (expr, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokPlus || p.tok.kind == tokMinus {
		op, line, col := p.tok.kind, p.tok.line, p.tok.col
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		left = binExpr{op: op, l: left, r: right, line: line, col: col}
	}
	return left, nil
}

func (p *parser) parseTerm() (expr, error) {
	left, err := p.parsePower()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokStar || p.tok.kind == tokSlash {
		op, line, col := p.tok.kind, p.tok.line, p.tok.col
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parsePower()
		if err != nil {
			return nil, err
		}
		left = binExpr{op: op, l: left, r: right, line: line, col: col}
	}
	return left, nil
}

// parsePower handles '^' with right associativity.
func (p *parser) parsePower() (expr, error) {
	base, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokCaret {
		line, col := p.tok.line, p.tok.col
		if err := p.advance(); err != nil {
			return nil, err
		}
		exp, err := p.parsePower()
		if err != nil {
			return nil, err
		}
		return binExpr{op: tokCaret, l: base, r: exp, line: line, col: col}, nil
	}
	return base, nil
}

func (p *parser) parseUnary() (expr, error) {
	switch p.tok.kind {
	case tokMinus:
		line, col := p.tok.line, p.tok.col
		if err := p.advance(); err != nil {
			return nil, err
		}
		arg, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unaryExpr{op: "-", arg: arg, line: line, col: col}, nil
	case tokPlus:
		if err := p.advance(); err != nil {
			return nil, err
		}
		return p.parseUnary()
	case tokNumber:
		v, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return nil, errf(p.tok.line, p.tok.col, "invalid number %q", p.tok.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return numExpr(v), nil
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tokIdent:
		name, line, col := p.tok.text, p.tok.line, p.tok.col
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind == tokLParen { // function call
			if err := p.advance(); err != nil {
				return nil, err
			}
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			return unaryExpr{op: name, arg: arg, line: line, col: col}, nil
		}
		return varExpr{name: name, line: line, col: col}, nil
	default:
		return nil, errf(p.tok.line, p.tok.col, "expected expression, found %v %q", p.tok.kind, p.tok.text)
	}
}
