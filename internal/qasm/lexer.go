// Package qasm implements a reader and writer for the OpenQASM 2.0
// subset needed by the paper's benchmark suites (RevLib, QISKit,
// Quipper and ScaffCC exports all ship as QASM built on qelib1.inc).
//
// Supported: OPENQASM/include headers, qreg/creg declarations (multiple
// registers are flattened into one wire space), the qelib1 standard
// gates, user gate definitions (inlined at parse time), parameter
// expressions over pi with + - * / ^ and the usual unary functions,
// whole-register broadcast, measure, barrier and comments.
package qasm

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSemicolon
	tokComma
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokLBrace
	tokRBrace
	tokArrow
	tokPlus
	tokMinus
	tokStar
	tokSlash
	tokCaret
	tokEquals
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokSemicolon:
		return "';'"
	case tokComma:
		return "','"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokArrow:
		return "'->'"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokStar:
		return "'*'"
	case tokSlash:
		return "'/'"
	case tokCaret:
		return "'^'"
	case tokEquals:
		return "'=='"
	default:
		return "unknown token"
	}
}

// token is one lexical unit with its source position.
type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

// lexer converts QASM source into a token stream.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

// Error is a QASM syntax or semantic error with source position.
type Error struct {
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("qasm:%d:%d: %s", e.Line, e.Col, e.Msg)
}

func errf(line, col int, format string, args ...any) *Error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() (byte, bool) {
	if l.pos >= len(l.src) {
		return 0, false
	}
	return l.src[l.pos], true
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

// next returns the next token, skipping whitespace and comments.
func (l *lexer) next() (token, error) {
	for {
		c, ok := l.peekByte()
		if !ok {
			return token{kind: tokEOF, line: l.line, col: l.col}, nil
		}
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for {
				c, ok := l.peekByte()
				if !ok || c == '\n' {
					break
				}
				l.advance()
			}
		default:
			return l.lexToken()
		}
	}
}

func (l *lexer) lexToken() (token, error) {
	line, col := l.line, l.col
	c := l.advance()
	switch {
	case c == ';':
		return token{tokSemicolon, ";", line, col}, nil
	case c == ',':
		return token{tokComma, ",", line, col}, nil
	case c == '(':
		return token{tokLParen, "(", line, col}, nil
	case c == ')':
		return token{tokRParen, ")", line, col}, nil
	case c == '[':
		return token{tokLBracket, "[", line, col}, nil
	case c == ']':
		return token{tokRBracket, "]", line, col}, nil
	case c == '{':
		return token{tokLBrace, "{", line, col}, nil
	case c == '}':
		return token{tokRBrace, "}", line, col}, nil
	case c == '+':
		return token{tokPlus, "+", line, col}, nil
	case c == '*':
		return token{tokStar, "*", line, col}, nil
	case c == '/':
		return token{tokSlash, "/", line, col}, nil
	case c == '^':
		return token{tokCaret, "^", line, col}, nil
	case c == '-':
		if nc, ok := l.peekByte(); ok && nc == '>' {
			l.advance()
			return token{tokArrow, "->", line, col}, nil
		}
		return token{tokMinus, "-", line, col}, nil
	case c == '=':
		if nc, ok := l.peekByte(); ok && nc == '=' {
			l.advance()
			return token{tokEquals, "==", line, col}, nil
		}
		return token{}, errf(line, col, "unexpected character %q", c)
	case c == '"':
		var sb strings.Builder
		for {
			nc, ok := l.peekByte()
			if !ok {
				return token{}, errf(line, col, "unterminated string literal")
			}
			l.advance()
			if nc == '"' {
				return token{tokString, sb.String(), line, col}, nil
			}
			sb.WriteByte(nc)
		}
	case isDigit(c) || c == '.':
		var sb strings.Builder
		sb.WriteByte(c)
		seenExp := false
		for {
			nc, ok := l.peekByte()
			if !ok {
				break
			}
			if isDigit(nc) || nc == '.' {
				sb.WriteByte(nc)
				l.advance()
				continue
			}
			if (nc == 'e' || nc == 'E') && !seenExp {
				seenExp = true
				sb.WriteByte(nc)
				l.advance()
				if sc, ok := l.peekByte(); ok && (sc == '+' || sc == '-') {
					sb.WriteByte(sc)
					l.advance()
				}
				continue
			}
			break
		}
		return token{tokNumber, sb.String(), line, col}, nil
	case isIdentStart(c):
		var sb strings.Builder
		sb.WriteByte(c)
		for {
			nc, ok := l.peekByte()
			if !ok || !isIdentPart(nc) {
				break
			}
			sb.WriteByte(nc)
			l.advance()
		}
		return token{tokIdent, sb.String(), line, col}, nil
	default:
		return token{}, errf(line, col, "unexpected character %q", c)
	}
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || unicode.IsLetter(rune(c)) }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) }
