package qasm

import (
	"math"
	"testing"

	"repro/internal/circuit"
)

func TestParseFileAdder(t *testing.T) {
	c, err := ParseFile("testdata/adder4.qasm")
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "adder4" {
		t.Fatalf("name = %q", c.Name())
	}
	if c.NumQubits() != 5 {
		t.Fatalf("qubits = %d", c.NumQubits())
	}
	// 3 ccx (15 gates each) + 4 cx + 5 measures.
	if got := c.NumGates(); got != 3*15+4+5 {
		t.Fatalf("gates = %d", got)
	}
	if c.CountKind(circuit.KindCX) != 3*6+4 {
		t.Fatalf("CX count = %d", c.CountKind(circuit.KindCX))
	}
	if c.CountKind(circuit.KindMeasure) != 5 {
		t.Fatal("broadcast measure lost")
	}
}

func TestParseFileVQE(t *testing.T) {
	c, err := ParseFile("testdata/vqe_fragment.qasm")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits() != 4 {
		t.Fatalf("qubits = %d", c.NumQubits())
	}
	// 4 h + 3 entangle (3 gates each) + 1 u3 + 4 barrier.
	if got := c.NumGates(); got != 4+9+1+4 {
		t.Fatalf("gates = %d: %v", got, c.Gates())
	}
	// The third entangle's rz carries -pi/16.
	var rzs []float64
	for _, g := range c.Gates() {
		if g.Kind == circuit.KindRZ {
			rzs = append(rzs, g.Params[0])
		}
	}
	if len(rzs) != 3 || math.Abs(rzs[2]+math.Pi/16) > 1e-15 {
		t.Fatalf("rz params = %v", rzs)
	}
}

func TestParseFileMissing(t *testing.T) {
	if _, err := ParseFile("testdata/nonexistent.qasm"); err == nil {
		t.Fatal("missing file accepted")
	}
}
