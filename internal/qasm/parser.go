package qasm

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/circuit"
)

// gateDef is a user-defined gate (OpenQASM `gate` statement) that the
// parser inlines at application sites.
type gateDef struct {
	params []string   // formal parameter names
	args   []string   // formal qubit argument names
	body   []gateCall // calls in terms of formals
}

// gateCall is one statement inside a gate body, unresolved.
type gateCall struct {
	name   string
	params []expr
	args   []string
	line   int
	col    int
}

// parser consumes tokens and emits a circuit.
type parser struct {
	lex    *lexer
	tok    token
	peeked *token

	regOffset map[string]int // qreg name -> first flat wire index
	regSize   map[string]int
	cregSize  map[string]int
	numWires  int

	defs  map[string]*gateDef
	gates []circuit.Gate
}

// Parse reads OpenQASM 2.0 source and returns the flattened circuit.
// Measurements and barriers are preserved as gates; classical registers
// are validated but carry no data in this IR.
func Parse(src string) (*circuit.Circuit, error) {
	p := &parser{
		lex:       newLexer(src),
		regOffset: make(map[string]int),
		regSize:   make(map[string]int),
		cregSize:  make(map[string]int),
		defs:      make(map[string]*gateDef),
	}
	if err := p.run(); err != nil {
		return nil, err
	}
	c := circuit.New(p.numWires)
	c.Append(p.gates...)
	return c, nil
}

// ParseFile reads and parses a QASM file; the circuit is named after
// the file's base name without extension.
func ParseFile(path string) (*circuit.Circuit, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	c, err := Parse(string(data))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	c.SetName(strings.TrimSuffix(base, ".qasm"))
	return c, nil
}

// ParseReader parses QASM from r.
func ParseReader(r io.Reader) (*circuit.Circuit, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return Parse(string(data))
}

func (p *parser) run() error {
	if err := p.advance(); err != nil {
		return err
	}
	for p.tok.kind != tokEOF {
		if err := p.statement(); err != nil {
			return err
		}
	}
	return nil
}

func (p *parser) advance() error {
	if p.peeked != nil {
		p.tok = *p.peeked
		p.peeked = nil
		return nil
	}
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) peek() (token, error) {
	if p.peeked == nil {
		t, err := p.lex.next()
		if err != nil {
			return token{}, err
		}
		p.peeked = &t
	}
	return *p.peeked, nil
}

func (p *parser) expect(k tokenKind) (token, error) {
	if p.tok.kind != k {
		return token{}, errf(p.tok.line, p.tok.col, "expected %v, found %v %q", k, p.tok.kind, p.tok.text)
	}
	t := p.tok
	return t, p.advance()
}

func (p *parser) statement() error {
	if p.tok.kind != tokIdent {
		return errf(p.tok.line, p.tok.col, "expected statement, found %v %q", p.tok.kind, p.tok.text)
	}
	switch p.tok.text {
	case "OPENQASM":
		return p.header()
	case "include":
		return p.include()
	case "qreg":
		return p.qreg()
	case "creg":
		return p.creg()
	case "gate":
		return p.gateDefStmt()
	case "opaque":
		return p.opaque()
	case "measure":
		return p.measure()
	case "barrier":
		return p.barrier()
	case "reset":
		return p.reset()
	case "if":
		return errf(p.tok.line, p.tok.col, "classical control (if) is not supported by this subset")
	default:
		return p.application()
	}
}

func (p *parser) header() error {
	if err := p.advance(); err != nil {
		return err
	}
	v, err := p.expect(tokNumber)
	if err != nil {
		return err
	}
	if v.text != "2.0" && v.text != "2" {
		return errf(v.line, v.col, "unsupported OPENQASM version %q (want 2.0)", v.text)
	}
	_, err = p.expect(tokSemicolon)
	return err
}

func (p *parser) include() error {
	if err := p.advance(); err != nil {
		return err
	}
	name, err := p.expect(tokString)
	if err != nil {
		return err
	}
	if name.text != "qelib1.inc" {
		return errf(name.line, name.col, "unsupported include %q (only qelib1.inc)", name.text)
	}
	_, err = p.expect(tokSemicolon)
	return err
}

func (p *parser) qreg() error {
	if err := p.advance(); err != nil {
		return err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if _, dup := p.regSize[name.text]; dup {
		return errf(name.line, name.col, "qreg %q redeclared", name.text)
	}
	size, err := p.bracketSize()
	if err != nil {
		return err
	}
	p.regOffset[name.text] = p.numWires
	p.regSize[name.text] = size
	p.numWires += size
	_, err = p.expect(tokSemicolon)
	return err
}

func (p *parser) creg() error {
	if err := p.advance(); err != nil {
		return err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	size, err := p.bracketSize()
	if err != nil {
		return err
	}
	p.cregSize[name.text] = size
	_, err = p.expect(tokSemicolon)
	return err
}

func (p *parser) bracketSize() (int, error) {
	if _, err := p.expect(tokLBracket); err != nil {
		return 0, err
	}
	n, err := p.expect(tokNumber)
	if err != nil {
		return 0, err
	}
	size, convErr := strconv.Atoi(n.text)
	if convErr != nil || size <= 0 {
		return 0, errf(n.line, n.col, "invalid register size %q", n.text)
	}
	if _, err := p.expect(tokRBracket); err != nil {
		return 0, err
	}
	return size, nil
}

// opaque declarations are parsed and ignored (no body to inline).
func (p *parser) opaque() error {
	for p.tok.kind != tokSemicolon && p.tok.kind != tokEOF {
		if err := p.advance(); err != nil {
			return err
		}
	}
	_, err := p.expect(tokSemicolon)
	return err
}

func (p *parser) gateDefStmt() error {
	if err := p.advance(); err != nil {
		return err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	def := &gateDef{}
	if p.tok.kind == tokLParen {
		if err := p.advance(); err != nil {
			return err
		}
		for p.tok.kind != tokRParen {
			id, err := p.expect(tokIdent)
			if err != nil {
				return err
			}
			def.params = append(def.params, id.text)
			if p.tok.kind == tokComma {
				if err := p.advance(); err != nil {
					return err
				}
			}
		}
		if err := p.advance(); err != nil { // consume ')'
			return err
		}
	}
	for p.tok.kind == tokIdent {
		def.args = append(def.args, p.tok.text)
		if err := p.advance(); err != nil {
			return err
		}
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return err
			}
		}
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return err
	}
	for p.tok.kind != tokRBrace {
		if p.tok.kind == tokEOF {
			return errf(p.tok.line, p.tok.col, "unterminated gate body for %q", name.text)
		}
		if p.tok.kind == tokIdent && p.tok.text == "barrier" {
			// Barriers inside gate bodies are scheduling hints; skip.
			for p.tok.kind != tokSemicolon && p.tok.kind != tokEOF {
				if err := p.advance(); err != nil {
					return err
				}
			}
			if _, err := p.expect(tokSemicolon); err != nil {
				return err
			}
			continue
		}
		call, err := p.gateBodyCall(def)
		if err != nil {
			return err
		}
		def.body = append(def.body, call)
	}
	if err := p.advance(); err != nil { // consume '}'
		return err
	}
	p.defs[name.text] = def
	return nil
}

func (p *parser) gateBodyCall(def *gateDef) (gateCall, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return gateCall{}, err
	}
	call := gateCall{name: name.text, line: name.line, col: name.col}
	if p.tok.kind == tokLParen {
		if err := p.advance(); err != nil {
			return gateCall{}, err
		}
		for p.tok.kind != tokRParen {
			e, err := p.parseExpr()
			if err != nil {
				return gateCall{}, err
			}
			call.params = append(call.params, e)
			if p.tok.kind == tokComma {
				if err := p.advance(); err != nil {
					return gateCall{}, err
				}
			}
		}
		if err := p.advance(); err != nil {
			return gateCall{}, err
		}
	}
	for p.tok.kind == tokIdent {
		arg := p.tok.text
		found := false
		for _, a := range def.args {
			if a == arg {
				found = true
				break
			}
		}
		if !found {
			return gateCall{}, errf(p.tok.line, p.tok.col, "unknown qubit argument %q in gate body", arg)
		}
		call.args = append(call.args, arg)
		if err := p.advance(); err != nil {
			return gateCall{}, err
		}
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return gateCall{}, err
			}
		}
	}
	if _, err := p.expect(tokSemicolon); err != nil {
		return gateCall{}, err
	}
	return call, nil
}

// operand is a parsed qubit operand: either one wire or a whole register.
type operand struct {
	wires []int
	line  int
	col   int
}

func (p *parser) operand() (operand, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return operand{}, err
	}
	off, ok := p.regOffset[name.text]
	if !ok {
		return operand{}, errf(name.line, name.col, "unknown quantum register %q", name.text)
	}
	size := p.regSize[name.text]
	if p.tok.kind == tokLBracket {
		idx, err := p.bracketSize2()
		if err != nil {
			return operand{}, err
		}
		if idx < 0 || idx >= size {
			return operand{}, errf(name.line, name.col, "index %d out of range for %s[%d]", idx, name.text, size)
		}
		return operand{wires: []int{off + idx}, line: name.line, col: name.col}, nil
	}
	wires := make([]int, size)
	for i := range wires {
		wires[i] = off + i
	}
	return operand{wires: wires, line: name.line, col: name.col}, nil
}

// bracketSize2 parses "[n]" allowing zero.
func (p *parser) bracketSize2() (int, error) {
	if _, err := p.expect(tokLBracket); err != nil {
		return 0, err
	}
	n, err := p.expect(tokNumber)
	if err != nil {
		return 0, err
	}
	idx, convErr := strconv.Atoi(n.text)
	if convErr != nil {
		return 0, errf(n.line, n.col, "invalid index %q", n.text)
	}
	if _, err := p.expect(tokRBracket); err != nil {
		return 0, err
	}
	return idx, nil
}

func (p *parser) measure() error {
	if err := p.advance(); err != nil {
		return err
	}
	src, err := p.operand()
	if err != nil {
		return err
	}
	if _, err := p.expect(tokArrow); err != nil {
		return err
	}
	// Classical target: ident with optional index; validated only.
	name, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if _, ok := p.cregSize[name.text]; !ok {
		return errf(name.line, name.col, "unknown classical register %q", name.text)
	}
	if p.tok.kind == tokLBracket {
		if _, err := p.bracketSize2(); err != nil {
			return err
		}
	}
	if _, err := p.expect(tokSemicolon); err != nil {
		return err
	}
	for _, w := range src.wires {
		p.gates = append(p.gates, circuit.G1(circuit.KindMeasure, w))
	}
	return nil
}

func (p *parser) barrier() error {
	if err := p.advance(); err != nil {
		return err
	}
	var wires []int
	for {
		op, err := p.operand()
		if err != nil {
			return err
		}
		wires = append(wires, op.wires...)
		if p.tok.kind != tokComma {
			break
		}
		if err := p.advance(); err != nil {
			return err
		}
	}
	if _, err := p.expect(tokSemicolon); err != nil {
		return err
	}
	for _, w := range wires {
		p.gates = append(p.gates, circuit.G1(circuit.KindBarrier, w))
	}
	return nil
}

func (p *parser) reset() error {
	return errf(p.tok.line, p.tok.col, "reset is not supported by this subset")
}

// application parses a gate application statement and appends the
// resulting elementary gates.
func (p *parser) application() error {
	name := p.tok
	if err := p.advance(); err != nil {
		return err
	}
	var params []float64
	if p.tok.kind == tokLParen {
		if err := p.advance(); err != nil {
			return err
		}
		for p.tok.kind != tokRParen {
			e, err := p.parseExpr()
			if err != nil {
				return err
			}
			v, err := e.eval(nil)
			if err != nil {
				return err
			}
			params = append(params, v)
			if p.tok.kind == tokComma {
				if err := p.advance(); err != nil {
					return err
				}
			}
		}
		if err := p.advance(); err != nil {
			return err
		}
	}
	var ops []operand
	for {
		op, err := p.operand()
		if err != nil {
			return err
		}
		ops = append(ops, op)
		if p.tok.kind != tokComma {
			break
		}
		if err := p.advance(); err != nil {
			return err
		}
	}
	if _, err := p.expect(tokSemicolon); err != nil {
		return err
	}
	return p.broadcast(name, params, ops)
}

// broadcast expands whole-register operands: all register operands must
// have equal length; single-wire operands are repeated.
func (p *parser) broadcast(name token, params []float64, ops []operand) error {
	length := 1
	for _, op := range ops {
		if len(op.wires) > 1 {
			if length > 1 && len(op.wires) != length {
				return errf(name.line, name.col, "mismatched register lengths in %q application", name.text)
			}
			length = len(op.wires)
		}
	}
	for i := 0; i < length; i++ {
		wires := make([]int, len(ops))
		for j, op := range ops {
			if len(op.wires) == 1 {
				wires[j] = op.wires[0]
			} else {
				wires[j] = op.wires[i]
			}
		}
		if err := p.emit(name, params, wires); err != nil {
			return err
		}
	}
	return nil
}

// emit appends one elementary gate (or an inlined definition) acting on
// resolved wires.
func (p *parser) emit(name token, params []float64, wires []int) error {
	switch name.text {
	case "id", "u0":
		return nil // identity
	case "ccx":
		if len(wires) != 3 {
			return errf(name.line, name.col, "ccx needs 3 qubits, got %d", len(wires))
		}
		p.gates = append(p.gates, ToffoliDecomposition(wires[0], wires[1], wires[2])...)
		return nil
	case "cu1":
		if len(wires) != 2 || len(params) != 1 {
			return errf(name.line, name.col, "cu1 needs 1 param and 2 qubits")
		}
		p.gates = append(p.gates, CU1Decomposition(params[0], wires[0], wires[1])...)
		return nil
	case "cy":
		if len(wires) != 2 || len(params) != 0 {
			return errf(name.line, name.col, "cy needs 2 qubits and no params")
		}
		p.gates = append(p.gates, circuit.CYDecomposition(wires[0], wires[1])...)
		return nil
	case "ch":
		if len(wires) != 2 || len(params) != 0 {
			return errf(name.line, name.col, "ch needs 2 qubits and no params")
		}
		p.gates = append(p.gates, circuit.CHDecomposition(wires[0], wires[1])...)
		return nil
	case "crz":
		if len(wires) != 2 || len(params) != 1 {
			return errf(name.line, name.col, "crz needs 1 param and 2 qubits")
		}
		p.gates = append(p.gates, circuit.CRZDecomposition(params[0], wires[0], wires[1])...)
		return nil
	case "cu3":
		if len(wires) != 2 || len(params) != 3 {
			return errf(name.line, name.col, "cu3 needs 3 params and 2 qubits")
		}
		p.gates = append(p.gates, circuit.CU3Decomposition(params[0], params[1], params[2], wires[0], wires[1])...)
		return nil
	case "cswap":
		if len(wires) != 3 || len(params) != 0 {
			return errf(name.line, name.col, "cswap needs 3 qubits and no params")
		}
		p.gates = append(p.gates, circuit.CSwapDecomposition(wires[0], wires[1], wires[2])...)
		return nil
	case "rzz":
		if len(wires) != 2 || len(params) != 1 {
			return errf(name.line, name.col, "rzz needs 1 param and 2 qubits")
		}
		p.gates = append(p.gates, circuit.RZZDecomposition(params[0], wires[0], wires[1])...)
		return nil
	case "u", "U":
		name.text = "u3"
	}
	if k, ok := circuit.KindByName(name.text); ok && name.text != "measure" && name.text != "barrier" {
		if len(wires) != k.Arity() {
			return errf(name.line, name.col, "%s needs %d qubits, got %d", name.text, k.Arity(), len(wires))
		}
		if len(params) != k.NumParams() {
			return errf(name.line, name.col, "%s needs %d params, got %d", name.text, k.NumParams(), len(params))
		}
		if k.Arity() == 1 {
			p.gates = append(p.gates, circuit.G1(k, wires[0], params...))
		} else {
			if wires[0] == wires[1] {
				return errf(name.line, name.col, "%s applied to the same qubit twice", name.text)
			}
			p.gates = append(p.gates, circuit.Gate{Kind: k, Q0: wires[0], Q1: wires[1]})
		}
		return nil
	}
	def, ok := p.defs[name.text]
	if !ok {
		return errf(name.line, name.col, "unknown gate %q", name.text)
	}
	if len(wires) != len(def.args) {
		return errf(name.line, name.col, "%s needs %d qubits, got %d", name.text, len(def.args), len(wires))
	}
	if len(params) != len(def.params) {
		return errf(name.line, name.col, "%s needs %d params, got %d", name.text, len(def.params), len(params))
	}
	env := make(map[string]float64, len(def.params))
	for i, formal := range def.params {
		env[formal] = params[i]
	}
	bind := make(map[string]int, len(def.args))
	for i, formal := range def.args {
		bind[formal] = wires[i]
	}
	for _, call := range def.body {
		callParams := make([]float64, len(call.params))
		for i, e := range call.params {
			v, err := e.eval(env)
			if err != nil {
				return err
			}
			callParams[i] = v
		}
		callWires := make([]int, len(call.args))
		for i, a := range call.args {
			callWires[i] = bind[a]
		}
		sub := token{kind: tokIdent, text: call.name, line: call.line, col: call.col}
		if err := p.emit(sub, callParams, callWires); err != nil {
			return err
		}
	}
	return nil
}

// ToffoliDecomposition re-exports the paper Fig. 1 CCX decomposition.
func ToffoliDecomposition(c1, c2, target int) []circuit.Gate {
	return circuit.ToffoliDecomposition(c1, c2, target)
}

// CU1Decomposition re-exports the controlled-phase decomposition.
func CU1Decomposition(lambda float64, control, target int) []circuit.Gate {
	return circuit.CU1Decomposition(lambda, control, target)
}
