// adder4: one full-adder stage of a ripple-carry adder (the repeating
// cell of the classic 4-bit VBE adder), written over the flat register
// q = [cin, a, b, sum, cout].
//
// The carry-out is computed as the majority MAJ(cin, a, b) with three
// Toffolis before the inputs are disturbed; the sum wire then receives
// a XOR b XOR cin, restoring b in between so a and b survive the stage
// unchanged for the next ripple.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
creg c[5];
// cout = a&b XOR cin&a XOR cin&b = MAJ(cin, a, b)
ccx q[1],q[2],q[4];
ccx q[0],q[1],q[4];
ccx q[0],q[2],q[4];
// sum = a XOR b XOR cin (b computed into, then restored)
cx q[1],q[2];
cx q[2],q[3];
cx q[1],q[2];
cx q[0],q[3];
measure q -> c;
