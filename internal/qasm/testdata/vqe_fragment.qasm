// vqe_fragment: one ansatz layer of a hardware-efficient VQE circuit:
// a Hadamard wall, a linear chain of parameterized ZZ entanglers
// (cx - rz(theta) - cx), one general single-qubit rotation, and a
// final barrier before readout. The entangler is a user-defined gate
// so parsing exercises gate definitions and parameter expressions.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
gate entangle(theta) a,b {
  cx a,b;
  rz(theta) b;
  cx a,b;
}
h q;
entangle(pi/4) q[0],q[1];
entangle(pi/8) q[1],q[2];
entangle(-pi/16) q[2],q[3];
u3(pi/2,0,pi/4) q[0];
barrier q;
