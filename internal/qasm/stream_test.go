package qasm

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/circuit"
)

// drainScanner pulls every gate out of a GateScanner.
func drainScanner(t *testing.T, src string) ([]circuit.Gate, int, error) {
	t.Helper()
	sc := NewGateScanner(strings.NewReader(src))
	var gates []circuit.Gate
	for sc.Scan() {
		gates = append(gates, sc.Gate())
	}
	return gates, sc.NumQubits(), sc.Err()
}

// assertScannerMatchesParse is the scanner's core contract: for any
// source, the streamed gate sequence is element-wise identical to the
// whole-file parse.
func assertScannerMatchesParse(t *testing.T, label, src string) {
	t.Helper()
	want, werr := Parse(src)
	gates, n, serr := drainScanner(t, src)
	if werr != nil {
		if serr == nil {
			t.Fatalf("%s: Parse failed (%v) but scanner succeeded", label, werr)
		}
		return
	}
	if serr != nil {
		t.Fatalf("%s: scanner error %v; Parse succeeded", label, serr)
	}
	if n != want.NumQubits() {
		t.Fatalf("%s: scanner width %d, Parse width %d", label, n, want.NumQubits())
	}
	if len(gates) != want.NumGates() {
		t.Fatalf("%s: scanner yielded %d gates, Parse %d", label, len(gates), want.NumGates())
	}
	for i, g := range gates {
		h := want.Gate(i)
		if g.Kind != h.Kind || g.Q0 != h.Q0 || g.Q1 != h.Q1 || len(g.Params) != len(h.Params) {
			t.Fatalf("%s: gate %d differs: scanner %v, Parse %v", label, i, g, h)
		}
		for j := range g.Params {
			if g.Params[j] != h.Params[j] {
				t.Fatalf("%s: gate %d param %d differs", label, i, j)
			}
		}
	}
}

func TestGateScannerMatchesParseOnPrograms(t *testing.T) {
	for label, src := range map[string]string{
		"tiny": tinyProgram,
		"gate-defs": `OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
gate foo(theta) a, b { cx a, b; rz(theta) b; cx a, b; }
gate bar a, b, c { foo(pi/2) a, b; ccx a, b, c; }
h q[0];
bar q[0], q[1], q[2];
foo(0.25) q[3], q[0];
measure q[1] -> c[1];
creg c[4];
barrier q;
`,
		"comments-and-strings": `// leading comment; with a semicolon
OPENQASM 2.0;
include "qelib1.inc"; // trailing ; comment
qreg q[2];
// cx q[0],q[1]; commented out
cx q[0], q[1];
`,
		"broadcast": `OPENQASM 2.0;
include "qelib1.inc";
qreg a[2];
qreg b[2];
h a;
cx a, b;
measure a -> c;
creg c[2];
`,
		"decompositions": `OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
ccx q[0], q[1], q[2];
cu1(pi/8) q[0], q[1];
cswap q[0], q[1], q[2];
rzz(0.5) q[1], q[2];
ch q[0], q[2];
`,
	} {
		t.Run(label, func(t *testing.T) {
			assertScannerMatchesParse(t, label, src)
		})
	}
}

func TestGateScannerMatchesParseOnTestdata(t *testing.T) {
	for _, name := range []string{"adder4.qasm", "vqe_fragment.qasm"} {
		b, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		assertScannerMatchesParse(t, name, string(b))
	}
}

// TestGateScannerBoundedBuffer: the scanner's statement buffer tracks
// the longest statement, not the file — parsing a program thousands of
// statements long keeps p.gates to the per-statement burst.
func TestGateScannerBoundedBuffer(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[4];\n")
	const statements = 5000
	for i := 0; i < statements; i++ {
		sb.WriteString("cx q[0], q[1];\nh q[2];\n")
	}
	sc := NewGateScanner(strings.NewReader(sb.String()))
	count := 0
	for sc.Scan() {
		count++
		if got := len(sc.p.gates); got > 4 {
			t.Fatalf("parser gate buffer grew to %d entries mid-stream; statements must be drained one at a time", got)
		}
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	if count != 2*statements {
		t.Fatalf("streamed %d gates, want %d", count, 2*statements)
	}
}

func TestGateScannerErrors(t *testing.T) {
	for label, src := range map[string]string{
		"missing-semicolon": "OPENQASM 2.0;\nqreg q[2];\nh q[0]",
		"unknown-gate":      "OPENQASM 2.0;\nqreg q[2];\nwobble q[0];\n",
		"bad-index":         "OPENQASM 2.0;\nqreg q[2];\nh q[9];\n",
		"garbage":           "OPENQASM 2.0;\nqreg q[2];\n@#$;\n",
	} {
		t.Run(label, func(t *testing.T) {
			_, _, err := drainScanner(t, src)
			if err == nil {
				t.Fatalf("scanner accepted %q", src)
			}
			if _, perr := Parse(src); perr == nil {
				t.Fatalf("fixture bug: Parse accepts %q", src)
			}
		})
	}
}

// failReader errors after yielding its prefix — the scanner must
// surface transport errors, not mask them as EOF.
type failReader struct {
	prefix []byte
	err    error
}

func (f *failReader) Read(p []byte) (int, error) {
	if len(f.prefix) == 0 {
		return 0, f.err
	}
	n := copy(p, f.prefix)
	f.prefix = f.prefix[n:]
	return n, nil
}

func TestGateScannerReadError(t *testing.T) {
	boom := errors.New("connection reset")
	sc := NewGateScanner(&failReader{prefix: []byte("OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q["), err: boom})
	for sc.Scan() {
	}
	if !errors.Is(sc.Err(), boom) {
		t.Fatalf("transport error lost: %v", sc.Err())
	}
}

func TestScanGatesCallback(t *testing.T) {
	var kinds []circuit.Kind
	err := ScanGates(strings.NewReader(tinyProgram), func(g circuit.Gate) error {
		kinds = append(kinds, g.Kind)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(kinds) != 4 {
		t.Fatalf("callback saw %d gates, want 4", len(kinds))
	}
	stop := errors.New("stop")
	n := 0
	err = ScanGates(strings.NewReader(tinyProgram), func(circuit.Gate) error {
		n++
		if n == 2 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) || n != 2 {
		t.Fatalf("callback error not honored: err=%v after %d gates", err, n)
	}
}

func TestGateScannerNextAdapter(t *testing.T) {
	sc := NewGateScanner(strings.NewReader(tinyProgram))
	count := 0
	for {
		_, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		count++
	}
	if count != 4 {
		t.Fatalf("Next yielded %d gates, want 4", count)
	}
}

// TestStreamWriterChunksConcatenate: chunked emission through
// StreamWriter produces one valid program whose reparse matches the
// gates written, regardless of chunk boundaries.
func TestStreamWriterChunksConcatenate(t *testing.T) {
	gates := []circuit.Gate{
		circuit.G1(circuit.KindH, 0),
		circuit.CX(0, 1),
		circuit.Swap(1, 2),
		circuit.G1(circuit.KindRZ, 2, 0.25),
		{Kind: circuit.KindMeasure, Q0: 0, Q1: 0},
	}
	for _, chunk := range []int{1, 2, 5} {
		var buf bytes.Buffer
		sw := NewStreamWriter(&buf, 3)
		for i := 0; i < len(gates); i += chunk {
			end := i + chunk
			if end > len(gates) {
				end = len(gates)
			}
			if err := sw.WriteGates(gates[i:end]); err != nil {
				t.Fatal(err)
			}
		}
		if err := sw.Flush(); err != nil {
			t.Fatal(err)
		}
		got, err := Parse(buf.String())
		if err != nil {
			t.Fatalf("chunk %d: reparse: %v\n%s", chunk, err, buf.String())
		}
		// Reparse decomposes SWAPs like the round-trip tests do, so
		// compare against the same writer output re-rendered whole.
		var whole bytes.Buffer
		sw2 := NewStreamWriter(&whole, 3)
		if err := sw2.WriteGates(gates); err != nil {
			t.Fatal(err)
		}
		if buf.String() != whole.String() {
			t.Fatalf("chunk %d: chunked output differs from whole-slice output:\n%s\nvs\n%s", chunk, buf.String(), whole.String())
		}
		if got.NumQubits() != 3 {
			t.Fatalf("chunk %d: reparsed width %d", chunk, got.NumQubits())
		}
	}
}

// TestStreamWriterErrorsSticky: a failed underlying writer poisons
// subsequent calls.
type failWriter struct{ err error }

func (f *failWriter) Write([]byte) (int, error) { return 0, f.err }

func TestStreamWriterErrorsSticky(t *testing.T) {
	boom := errors.New("pipe closed")
	sw := NewStreamWriter(&failWriter{err: boom}, 2)
	err := sw.WriteGates([]circuit.Gate{circuit.CX(0, 1)})
	if err == nil {
		// The header flush may have latched the error already; a write
		// must surface it at the latest.
		t.Fatal("write into failed pipe succeeded")
	}
	if err2 := sw.WriteGates([]circuit.Gate{circuit.CX(1, 0)}); err2 == nil {
		t.Fatal("sticky error cleared")
	}
}

var _ io.Reader = (*failReader)(nil)
