package qasm

import (
	"path/filepath"
	"testing"
)

// TestRoundTripTestdata is the golden round-trip over every fixture:
// parse the file, serialize it with the writer, re-parse the output,
// and require the second parse to reproduce the first circuit exactly
// (same wires, same flattened gate list — hence same gate count, depth
// and per-kind counts). This pins the writer's parameter formatting
// (exact pi fractions) and the parser's handling of its own output.
func TestRoundTripTestdata(t *testing.T) {
	files, err := filepath.Glob("testdata/*.qasm")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no testdata fixtures found")
	}
	for _, path := range files {
		t.Run(filepath.Base(path), func(t *testing.T) {
			orig, err := ParseFile(path)
			if err != nil {
				t.Fatal(err)
			}
			text := Format(orig)
			back, err := Parse(text)
			if err != nil {
				t.Fatalf("re-parse of written QASM failed: %v\n%s", err, text)
			}
			if got, want := back.NumGates(), orig.NumGates(); got != want {
				t.Fatalf("gate count %d after round-trip, want %d", got, want)
			}
			if got, want := back.Depth(), orig.Depth(); got != want {
				t.Fatalf("depth %d after round-trip, want %d", got, want)
			}
			if got, want := back.NumQubits(), orig.NumQubits(); got != want {
				t.Fatalf("qubits %d after round-trip, want %d", got, want)
			}
			if !back.Equal(orig) {
				t.Fatalf("round-trip changed the circuit:\n%s", text)
			}
		})
	}
}
