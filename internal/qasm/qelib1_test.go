package qasm

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// Unitary correctness of the extended qelib1 gates: each parsed
// decomposition is simulated against a directly-constructed
// controlled-U reference on random states.

// fidelityWith compares a simulated state against raw amplitudes up to
// global phase.
func fidelityWith(s *sim.State, amps []complex128) float64 {
	var dot complex128
	for b := range amps {
		dot += cmplx.Conj(amps[b]) * s.Amplitude(uint64(b))
	}
	return real(dot)*real(dot) + imag(dot)*imag(dot)
}

func controlledRef(s *sim.State, u [2][2]complex128, c, t int) []complex128 {
	n := s.NumQubits()
	amps := make([]complex128, 1<<uint(n))
	cm := uint64(1) << uint(c)
	tm := uint64(1) << uint(t)
	for b := uint64(0); b < uint64(len(amps)); b++ {
		a := s.Amplitude(b)
		if a == 0 {
			continue
		}
		if b&cm == 0 {
			amps[b] += a
			continue
		}
		if b&tm == 0 {
			amps[b] += u[0][0] * a
			amps[b|tm] += u[1][0] * a
		} else {
			amps[b&^tm] += u[0][1] * a
			amps[b] += u[1][1] * a
		}
	}
	return amps
}

func TestQelib1ControlledGates(t *testing.T) {
	isq := complex(1/math.Sqrt2, 0)
	cases := []struct {
		src string
		u   [2][2]complex128
	}{
		{"cy q[0],q[1];", [2][2]complex128{{0, -1i}, {1i, 0}}},
		{"ch q[0],q[1];", [2][2]complex128{{isq, isq}, {isq, -isq}}},
		{"crz(0.7) q[0],q[1];", [2][2]complex128{
			{cmplx.Exp(complex(0, -0.35)), 0}, {0, cmplx.Exp(complex(0, 0.35))}}},
		{"cu1(0.9) q[0],q[1];", [2][2]complex128{{1, 0}, {0, cmplx.Exp(complex(0, 0.9))}}},
		{"cu3(0.5,0.6,0.7) q[0],q[1];", u3Matrix(0.5, 0.6, 0.7)},
	}
	for _, tc := range cases {
		circ, err := Parse("OPENQASM 2.0;\nqreg q[2];\n" + tc.src)
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		rng := rand.New(rand.NewSource(1))
		for trial := 0; trial < 3; trial++ {
			psi := sim.NewRandomState(2, rng)
			want := controlledRef(psi, tc.u, 0, 1)
			got := psi.Clone()
			got.ApplyCircuit(circ)
			if f := fidelityWith(got, want); math.Abs(1-f) > 1e-9 {
				t.Fatalf("%s: fidelity %g with reference", tc.src, f)
			}
		}
	}
}

func u3Matrix(theta, phi, lambda float64) [2][2]complex128 {
	c := complex(math.Cos(theta/2), 0)
	s := complex(math.Sin(theta/2), 0)
	return [2][2]complex128{
		{c, -s * cmplx.Exp(complex(0, lambda))},
		{s * cmplx.Exp(complex(0, phi)), c * cmplx.Exp(complex(0, phi+lambda))},
	}
}

func TestQelib1CSwap(t *testing.T) {
	circ, err := Parse("OPENQASM 2.0;\nqreg q[3];\ncswap q[0],q[1],q[2];\n")
	if err != nil {
		t.Fatal(err)
	}
	// Truth table: swap bits 1,2 iff bit 0 set.
	for b := uint64(0); b < 8; b++ {
		s := sim.NewBasisState(3, b)
		s.ApplyCircuit(circ)
		want := b
		if b&1 != 0 {
			b1 := (b >> 1) & 1
			b2 := (b >> 2) & 1
			want = (b & 1) | (b2 << 1) | (b1 << 2)
		}
		ref := sim.NewBasisState(3, want)
		if !s.EqualUpToGlobalPhase(ref, 1e-9) {
			t.Fatalf("cswap |%03b>: fidelity %g with |%03b>", b, s.Fidelity(ref), want)
		}
	}
}

func TestQelib1RZZ(t *testing.T) {
	circ, err := Parse("OPENQASM 2.0;\nqreg q[2];\nrzz(0.8) q[0],q[1];\n")
	if err != nil {
		t.Fatal(err)
	}
	// rzz(θ) = diag(1, e^{iθ}, e^{iθ}, 1) up to global phase (qelib1
	// convention: cx; u1(θ) on target; cx).
	rng := rand.New(rand.NewSource(2))
	psi := sim.NewRandomState(2, rng)
	want := make([]complex128, 4)
	phase := cmplx.Exp(complex(0, 0.8))
	want[0] = psi.Amplitude(0)
	want[1] = psi.Amplitude(1) * phase
	want[2] = psi.Amplitude(2) * phase
	want[3] = psi.Amplitude(3)
	got := psi.Clone()
	got.ApplyCircuit(circ)
	if f := fidelityWith(got, want); math.Abs(1-f) > 1e-9 {
		t.Fatalf("rzz fidelity %g", f)
	}
}

func TestQelib1ArityErrors(t *testing.T) {
	cases := []string{
		"cy q[0];",
		"ch q[0],q[1],q[0];",
		"crz q[0],q[1];",
		"cu3(1,2) q[0],q[1];",
		"cswap q[0],q[1];",
		"rzz(1,2) q[0],q[1];",
	}
	for _, src := range cases {
		full := "OPENQASM 2.0;\nqreg q[3];\n" + src
		if _, err := Parse(full); err == nil {
			t.Errorf("%s: accepted", src)
		}
	}
}
