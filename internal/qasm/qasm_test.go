package qasm

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
)

const tinyProgram = `
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
cx q[0],q[1];
rz(pi/4) q[2];
measure q[0] -> c[0];
`

func TestParseTinyProgram(t *testing.T) {
	c, err := Parse(tinyProgram)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits() != 3 {
		t.Fatalf("qubits = %d", c.NumQubits())
	}
	gs := c.Gates()
	if len(gs) != 4 {
		t.Fatalf("gates = %d: %v", len(gs), gs)
	}
	if gs[0].Kind != circuit.KindH || gs[0].Q0 != 0 {
		t.Fatalf("gate0 = %v", gs[0])
	}
	if gs[1].Kind != circuit.KindCX || gs[1].Q0 != 0 || gs[1].Q1 != 1 {
		t.Fatalf("gate1 = %v", gs[1])
	}
	if gs[2].Kind != circuit.KindRZ || math.Abs(gs[2].Params[0]-math.Pi/4) > 1e-15 {
		t.Fatalf("gate2 = %v", gs[2])
	}
	if gs[3].Kind != circuit.KindMeasure {
		t.Fatalf("gate3 = %v", gs[3])
	}
}

func TestParseMultipleRegisters(t *testing.T) {
	c, err := Parse(`OPENQASM 2.0;
qreg a[2];
qreg b[3];
cx a[1],b[0];
`)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits() != 5 {
		t.Fatalf("qubits = %d", c.NumQubits())
	}
	g := c.Gate(0)
	if g.Q0 != 1 || g.Q1 != 2 {
		t.Fatalf("flattening wrong: %v", g)
	}
}

func TestBroadcast(t *testing.T) {
	c, err := Parse(`OPENQASM 2.0;
qreg q[3];
h q;
`)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 3 {
		t.Fatalf("broadcast produced %d gates", c.NumGates())
	}
	// Two-register broadcast: cx q,r applies pairwise.
	c2, err := Parse(`OPENQASM 2.0;
qreg q[2];
qreg r[2];
cx q,r;
`)
	if err != nil {
		t.Fatal(err)
	}
	if c2.NumGates() != 2 || c2.Gate(0).Q1 != 2 || c2.Gate(1).Q1 != 3 {
		t.Fatalf("pairwise broadcast wrong: %v", c2.Gates())
	}
	// Mixed: single control against register of targets.
	c3, err := Parse(`OPENQASM 2.0;
qreg q[3];
cx q[0],q;
`)
	if err == nil && c3.NumGates() == 3 {
		t.Fatal("cx q[0],q must fail or skip self-pair; got 3 gates including cx q0,q0")
	}
}

func TestParamExpressions(t *testing.T) {
	cases := []struct {
		src  string
		want float64
	}{
		{"rz(pi) q[0];", math.Pi},
		{"rz(-pi/2) q[0];", -math.Pi / 2},
		{"rz(2*pi/3) q[0];", 2 * math.Pi / 3},
		{"rz(1.5e-1) q[0];", 0.15},
		{"rz(3+4*2) q[0];", 11},
		{"rz((3+4)*2) q[0];", 14},
		{"rz(2^3) q[0];", 8},
		{"rz(2^3^2) q[0];", 512}, // right assoc
		{"rz(sin(pi/2)) q[0];", 1},
		{"rz(cos(0)) q[0];", 1},
		{"rz(sqrt(4)) q[0];", 2},
		{"rz(ln(exp(1))) q[0];", 1},
		{"rz(-(-2)) q[0];", 2},
		{"rz(+5) q[0];", 5},
		{"rz(10-2-3) q[0];", 5}, // left assoc
	}
	for _, tc := range cases {
		c, err := Parse("OPENQASM 2.0;\nqreg q[1];\n" + tc.src)
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		got := c.Gate(0).Params[0]
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: got %g, want %g", tc.src, got, tc.want)
		}
	}
}

func TestGateDefinitionInlining(t *testing.T) {
	src := `OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
gate mygate(theta) a,b {
  h a;
  cx a,b;
  rz(theta/2) b;
}
mygate(pi) q[1],q[0];
`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	gs := c.Gates()
	if len(gs) != 3 {
		t.Fatalf("inline produced %d gates", len(gs))
	}
	if gs[0].Kind != circuit.KindH || gs[0].Q0 != 1 {
		t.Fatalf("gate0 = %v", gs[0])
	}
	if gs[1].Q0 != 1 || gs[1].Q1 != 0 {
		t.Fatalf("gate1 = %v", gs[1])
	}
	if math.Abs(gs[2].Params[0]-math.Pi/2) > 1e-15 {
		t.Fatalf("gate2 = %v", gs[2])
	}
}

func TestNestedGateDefinitions(t *testing.T) {
	src := `OPENQASM 2.0;
qreg q[2];
gate inner a,b { cx a,b; }
gate outer a,b { inner b,a; inner a,b; }
outer q[0],q[1];
`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 2 || c.Gate(0).Q0 != 1 || c.Gate(1).Q0 != 0 {
		t.Fatalf("nested inline wrong: %v", c.Gates())
	}
}

func TestCCXDecomposition(t *testing.T) {
	c, err := Parse(`OPENQASM 2.0;
qreg q[3];
ccx q[0],q[1],q[2];
`)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 15 {
		t.Fatalf("ccx expanded to %d gates, want 15", c.NumGates())
	}
	if c.CountKind(circuit.KindCX) != 6 {
		t.Fatalf("ccx has %d CNOTs, want 6", c.CountKind(circuit.KindCX))
	}
}

func TestCU1Decomposition(t *testing.T) {
	c, err := Parse(`OPENQASM 2.0;
qreg q[2];
cu1(pi/2) q[0],q[1];
`)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 5 || c.CountKind(circuit.KindCX) != 2 {
		t.Fatalf("cu1 decomposition wrong: %v", c.Gates())
	}
}

func TestBarrierAndIdIgnored(t *testing.T) {
	c, err := Parse(`OPENQASM 2.0;
qreg q[2];
id q[0];
barrier q;
u0 q[1];
`)
	if err != nil {
		t.Fatal(err)
	}
	if c.CountKind(circuit.KindBarrier) != 2 || c.NumGates() != 2 {
		t.Fatalf("barrier/id handling wrong: %v", c.Gates())
	}
}

func TestOpaqueIgnored(t *testing.T) {
	_, err := Parse(`OPENQASM 2.0;
qreg q[1];
opaque mystery(a,b) x;
h q[0];
`)
	if err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"bad version", "OPENQASM 3.0;\n", "version"},
		{"bad include", "OPENQASM 2.0;\ninclude \"other.inc\";\n", "include"},
		{"unknown gate", "OPENQASM 2.0;\nqreg q[1];\nfoo q[0];\n", "unknown gate"},
		{"unknown reg", "OPENQASM 2.0;\nqreg q[1];\nh r[0];\n", "unknown quantum register"},
		{"oob index", "OPENQASM 2.0;\nqreg q[1];\nh q[5];\n", "out of range"},
		{"same qubit", "OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[0];\n", "same qubit"},
		{"arity", "OPENQASM 2.0;\nqreg q[2];\ncx q[0];\n", "needs 2 qubits"},
		{"params", "OPENQASM 2.0;\nqreg q[1];\nrz q[0];\n", "needs 1 params"},
		{"missing semicolon", "OPENQASM 2.0;\nqreg q[1];\nh q[0]\n", "expected"},
		{"unterminated string", "OPENQASM 2.0;\ninclude \"qelib1.inc\n", "unterminated"},
		{"redeclared qreg", "OPENQASM 2.0;\nqreg q[1];\nqreg q[2];\n", "redeclared"},
		{"zero-size reg", "OPENQASM 2.0;\nqreg q[0];\n", "invalid register size"},
		{"if unsupported", "OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\nif (c==1) x q[0];\n", "not supported"},
		{"reset unsupported", "OPENQASM 2.0;\nqreg q[1];\nreset q[0];\n", "not supported"},
		{"measure unknown creg", "OPENQASM 2.0;\nqreg q[1];\nmeasure q[0] -> c[0];\n", "unknown classical register"},
		{"division by zero", "OPENQASM 2.0;\nqreg q[1];\nrz(1/0) q[0];\n", "division by zero"},
		{"stray char", "OPENQASM 2.0;\nqreg q[1];\n@ q[0];\n", "unexpected character"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil {
			t.Errorf("%s: expected error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.want)
		}
	}
}

func TestErrorPositions(t *testing.T) {
	_, err := Parse("OPENQASM 2.0;\nqreg q[1];\nfoo q[0];\n")
	qerr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if qerr.Line != 3 || qerr.Col != 1 {
		t.Fatalf("error at %d:%d, want 3:1", qerr.Line, qerr.Col)
	}
}

func TestWriteRoundTrip(t *testing.T) {
	c := circuit.New(4)
	c.Append(
		circuit.G1(circuit.KindH, 0),
		circuit.CX(0, 1),
		circuit.G1(circuit.KindU3, 2, math.Pi/2, 0, math.Pi),
		circuit.Swap(2, 3),
		circuit.G1(circuit.KindRZ, 3, 0.12345),
		circuit.G1(circuit.KindMeasure, 0),
	)
	text := Format(c)
	back, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, text)
	}
	if !back.Equal(c) {
		t.Fatalf("round trip mismatch:\n%s\ngot  %v\nwant %v", text, back.Gates(), c.Gates())
	}
}

// Property: random circuits survive a QASM round trip bit-exactly.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		c := circuit.New(n)
		kinds := []circuit.Kind{
			circuit.KindH, circuit.KindX, circuit.KindT, circuit.KindTdg,
			circuit.KindS, circuit.KindSdg, circuit.KindRZ, circuit.KindRX,
			circuit.KindU1, circuit.KindU3,
		}
		for i := 0; i < 30; i++ {
			switch rng.Intn(3) {
			case 0:
				k := kinds[rng.Intn(len(kinds))]
				params := make([]float64, k.NumParams())
				for j := range params {
					params[j] = rng.NormFloat64()
				}
				c.Append(circuit.G1(k, rng.Intn(n), params...))
			case 1:
				a, b := rng.Intn(n), rng.Intn(n-1)
				if b >= a {
					b++
				}
				c.Append(circuit.CX(a, b))
			default:
				a, b := rng.Intn(n), rng.Intn(n-1)
				if b >= a {
					b++
				}
				c.Append(circuit.Swap(a, b))
			}
		}
		back, err := Parse(Format(c))
		return err == nil && back.Equal(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFormatParam(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{math.Pi, "pi"},
		{-math.Pi, "-pi"},
		{math.Pi / 2, "pi/2"},
		{-math.Pi / 4, "-pi/4"},
		{3 * math.Pi, "3*pi"},
		{3 * math.Pi / 4, "3*pi/4"},
	}
	for _, tc := range cases {
		if got := formatParam(tc.v); got != tc.want {
			t.Errorf("formatParam(%g) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	c, err := Parse(`// leading comment
OPENQASM 2.0; // trailing
   qreg q[2];
// full line
cx q[0],q[1];`)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 1 {
		t.Fatal("comments broke parsing")
	}
}

func TestParseReader(t *testing.T) {
	c, err := ParseReader(strings.NewReader(tinyProgram))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 4 {
		t.Fatal("ParseReader wrong")
	}
}
