package qasm

import "testing"

func lexAll(t *testing.T, src string) []token {
	t.Helper()
	lx := newLexer(src)
	var out []token
	for {
		tok, err := lx.next()
		if err != nil {
			t.Fatalf("lex %q: %v", src, err)
		}
		if tok.kind == tokEOF {
			return out
		}
		out = append(out, tok)
	}
}

func TestLexerTokens(t *testing.T) {
	toks := lexAll(t, `cx q[0],q[1];`)
	wantKinds := []tokenKind{tokIdent, tokIdent, tokLBracket, tokNumber, tokRBracket, tokComma, tokIdent, tokLBracket, tokNumber, tokRBracket, tokSemicolon}
	if len(toks) != len(wantKinds) {
		t.Fatalf("got %d tokens", len(toks))
	}
	for i, k := range wantKinds {
		if toks[i].kind != k {
			t.Fatalf("token %d: kind %v, want %v", i, toks[i].kind, k)
		}
	}
}

func TestLexerNumbers(t *testing.T) {
	cases := map[string]string{
		"42":     "42",
		"3.14":   "3.14",
		".5":     ".5",
		"1e10":   "1e10",
		"1.5e-3": "1.5e-3",
		"2E+4":   "2E+4",
	}
	for src, want := range cases {
		toks := lexAll(t, src)
		if len(toks) != 1 || toks[0].kind != tokNumber || toks[0].text != want {
			t.Fatalf("%q lexed to %+v", src, toks)
		}
	}
}

func TestLexerOperators(t *testing.T) {
	toks := lexAll(t, "+-*/^() ->")
	want := []tokenKind{tokPlus, tokMinus, tokStar, tokSlash, tokCaret, tokLParen, tokRParen, tokArrow}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens: %+v", len(toks), toks)
	}
	for i, k := range want {
		if toks[i].kind != k {
			t.Fatalf("token %d: %v, want %v", i, toks[i].kind, k)
		}
	}
}

func TestLexerMinusVsArrow(t *testing.T) {
	toks := lexAll(t, "a - b -> c -5")
	kinds := []tokenKind{tokIdent, tokMinus, tokIdent, tokArrow, tokIdent, tokMinus, tokNumber}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Fatalf("token %d: %v, want %v", i, toks[i].kind, k)
		}
	}
}

func TestLexerPositions(t *testing.T) {
	toks := lexAll(t, "ab\n  cd")
	if toks[0].line != 1 || toks[0].col != 1 {
		t.Fatalf("first token at %d:%d", toks[0].line, toks[0].col)
	}
	if toks[1].line != 2 || toks[1].col != 3 {
		t.Fatalf("second token at %d:%d", toks[1].line, toks[1].col)
	}
}

func TestLexerCommentsSkipped(t *testing.T) {
	toks := lexAll(t, "a // trailing comment\n// whole line\nb")
	if len(toks) != 2 || toks[0].text != "a" || toks[1].text != "b" {
		t.Fatalf("comments mishandled: %+v", toks)
	}
}

func TestLexerStrings(t *testing.T) {
	toks := lexAll(t, `include "qelib1.inc";`)
	if toks[1].kind != tokString || toks[1].text != "qelib1.inc" {
		t.Fatalf("string token wrong: %+v", toks[1])
	}
}

func TestLexerIdentifiers(t *testing.T) {
	toks := lexAll(t, "q_0 Abc _x a1b2")
	for i, want := range []string{"q_0", "Abc", "_x", "a1b2"} {
		if toks[i].kind != tokIdent || toks[i].text != want {
			t.Fatalf("ident %d = %+v, want %q", i, toks[i], want)
		}
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"@", "#", "=x", `"unterminated`} {
		lx := newLexer(src)
		var err error
		for {
			var tok token
			tok, err = lx.next()
			if err != nil || tok.kind == tokEOF {
				break
			}
		}
		if err == nil {
			t.Errorf("%q: expected lex error", src)
		}
	}
}

func TestTokenKindStrings(t *testing.T) {
	for k := tokEOF; k <= tokEquals; k++ {
		if k.String() == "unknown token" {
			t.Fatalf("kind %d has no name", k)
		}
	}
}

func TestLexerDoubleEquals(t *testing.T) {
	toks := lexAll(t, "a == b")
	if toks[1].kind != tokEquals {
		t.Fatalf("== lexed as %v", toks[1].kind)
	}
}
