package qasm

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/circuit"
)

// Write serializes a circuit as OpenQASM 2.0. All wires are emitted as
// a single register q[n]; measurements target a matching creg c[n].
// SWAP gates are emitted with the qelib1 `swap` mnemonic (callers that
// need pure {1q, CX} output should DecomposeSwaps first).
func Write(w io.Writer, c *circuit.Circuit) error {
	bw := bufio.NewWriter(w)
	n := c.NumQubits()
	fmt.Fprintln(bw, "OPENQASM 2.0;")
	fmt.Fprintln(bw, "include \"qelib1.inc\";")
	fmt.Fprintf(bw, "qreg q[%d];\n", maxInt(n, 1))
	if c.CountKind(circuit.KindMeasure) > 0 {
		fmt.Fprintf(bw, "creg c[%d];\n", maxInt(n, 1))
	}
	for _, g := range c.Gates() {
		if err := writeGate(bw, g); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Format returns the QASM text of the circuit.
func Format(c *circuit.Circuit) string {
	var sb strings.Builder
	// strings.Builder never fails.
	_ = Write(&sb, c)
	return sb.String()
}

func writeGate(w io.Writer, g circuit.Gate) error {
	switch g.Kind {
	case circuit.KindMeasure:
		_, err := fmt.Fprintf(w, "measure q[%d] -> c[%d];\n", g.Q0, g.Q0)
		return err
	case circuit.KindBarrier:
		_, err := fmt.Fprintf(w, "barrier q[%d];\n", g.Q0)
		return err
	}
	var sb strings.Builder
	sb.WriteString(g.Kind.String())
	if len(g.Params) > 0 {
		sb.WriteByte('(')
		for i, p := range g.Params {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(formatParam(p))
		}
		sb.WriteByte(')')
	}
	fmt.Fprintf(&sb, " q[%d]", g.Q0)
	if g.TwoQubit() {
		fmt.Fprintf(&sb, ",q[%d]", g.Q1)
	}
	sb.WriteString(";\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// formatParam renders an angle, using exact multiples of pi when the
// value is one (pi/2, -pi/4, ...) so round-trips stay bit-exact for
// the common cases.
func formatParam(v float64) string {
	if v == 0 {
		return "0"
	}
	ratio := v / math.Pi
	for _, den := range []float64{1, 2, 3, 4, 8, 16, 32, 64, 128, 256, 512, 1024} {
		num := ratio * den
		if num == math.Trunc(num) && math.Abs(num) <= 1024 {
			n := int64(num)
			switch {
			case den == 1 && n == 1:
				return "pi"
			case den == 1 && n == -1:
				return "-pi"
			case den == 1:
				return fmt.Sprintf("%d*pi", n)
			case n == 1:
				return fmt.Sprintf("pi/%d", int64(den))
			case n == -1:
				return fmt.Sprintf("-pi/%d", int64(den))
			default:
				return fmt.Sprintf("%d*pi/%d", n, int64(den))
			}
		}
	}
	return fmt.Sprintf("%.17g", v)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
