package qasm

import (
	"bufio"
	"io"

	"repro/internal/circuit"
)

// GateScanner is an incremental OpenQASM 2.0 gate-stream parser: it
// pulls statements off an io.Reader one at a time and yields the
// flattened elementary gates, never materializing the whole file or a
// whole-circuit gate slice. Steady-state memory is bounded by the
// longest single statement (plus the persistent register/gate-def
// tables), so a multi-gigabyte trace streams in O(1).
//
// The scanner accepts exactly the dialect Parse accepts and yields
// exactly the gates Parse would put in the circuit, in the same order:
// for any source, draining a GateScanner and Parse(src).Gates() are
// element-wise identical. Header statements (OPENQASM, include, qreg,
// creg, gate, opaque) yield no gates but mutate parser state;
// NumQubits grows as qreg declarations arrive and is final once the
// first gate is yielded (declarations after the first application are
// legal QASM and handled, so callers that need the final width up
// front should size to the device instead).
//
// Usage follows bufio.Scanner:
//
//	sc := qasm.NewGateScanner(r)
//	for sc.Scan() {
//		g := sc.Gate()
//		...
//	}
//	if err := sc.Err(); err != nil { ... }
type GateScanner struct {
	r *bufio.Reader
	p *parser

	stmt []byte // reusable statement buffer
	line int    // 1-based line number at the read head

	idx  int // next unread gate in p.gates
	gate circuit.Gate
	err  error
	eof  bool
}

// NewGateScanner returns a scanner reading QASM statements from r.
func NewGateScanner(r io.Reader) *GateScanner {
	return &GateScanner{
		r: bufio.NewReader(r),
		p: &parser{
			regOffset: make(map[string]int),
			regSize:   make(map[string]int),
			cregSize:  make(map[string]int),
			defs:      make(map[string]*gateDef),
		},
		line: 1,
	}
}

// Scan advances to the next gate, parsing further statements as
// needed. It returns false at end of input or on the first error
// (check Err to distinguish).
func (s *GateScanner) Scan() bool {
	for s.idx >= len(s.p.gates) {
		if s.err != nil || s.eof {
			return false
		}
		s.p.gates = s.p.gates[:0]
		s.idx = 0
		stmt, startLine, ok, err := s.nextStatement()
		if err != nil {
			s.err = err
			return false
		}
		if !ok {
			s.eof = true
			return false
		}
		if err := s.parseStatement(stmt, startLine); err != nil {
			s.err = err
			return false
		}
	}
	s.gate = s.p.gates[s.idx]
	s.idx++
	return true
}

// Gate returns the gate produced by the last successful Scan.
func (s *GateScanner) Gate() circuit.Gate { return s.gate }

// Err returns the first error encountered (nil on clean EOF).
func (s *GateScanner) Err() error { return s.err }

// NumQubits returns the total width declared by the qreg statements
// parsed so far (flattened across registers, like Parse).
func (s *GateScanner) NumQubits() int { return s.p.numWires }

// Next adapts the scanner to the pull-source shape the streaming
// router consumes (core.GateSource): it returns the next gate and
// ok=true, or ok=false at clean EOF, or the parse error.
func (s *GateScanner) Next() (circuit.Gate, bool, error) {
	if s.Scan() {
		return s.gate, true, nil
	}
	return circuit.Gate{}, false, s.err
}

// parseStatement runs the persistent parser over one statement's text.
// The lexer is rebased to the statement's source line so errors point
// at the original file position.
func (s *GateScanner) parseStatement(stmt string, startLine int) error {
	p := s.p
	p.lex = &lexer{src: stmt, line: startLine, col: 1}
	p.peeked = nil
	if err := p.advance(); err != nil {
		return err
	}
	for p.tok.kind != tokEOF {
		if err := p.statement(); err != nil {
			return err
		}
	}
	return nil
}

// nextStatement scans the raw byte stream up to the next statement
// boundary: a ';' at brace depth zero, or the '}' closing a top-level
// brace block (gate definitions carry no trailing semicolon). Line
// comments and string literals are tracked so their contents never
// count as structure. Leading whitespace is skipped so startLine is
// the statement's first significant line. ok=false reports clean EOF
// (possibly after trailing trivia).
func (s *GateScanner) nextStatement() (stmt string, startLine int, ok bool, err error) {
	s.stmt = s.stmt[:0]
	startLine = s.line
	depth := 0
	sawBrace := false
	inComment := false
	inString := false
	for {
		b, rerr := s.r.ReadByte()
		if rerr != nil {
			if rerr == io.EOF {
				if len(s.stmt) == 0 {
					return "", startLine, false, nil
				}
				// Unterminated trailing statement: hand it to the
				// parser, which reports the missing semicolon with a
				// real position.
				return string(s.stmt), startLine, true, nil
			}
			return "", startLine, false, rerr
		}
		if b == '\n' {
			s.line++
			inComment = false
		}
		if len(s.stmt) == 0 && (b == ' ' || b == '\t' || b == '\r' || b == '\n') {
			startLine = s.line
			continue
		}
		s.stmt = append(s.stmt, b)
		if inComment {
			continue
		}
		switch b {
		case '"':
			inString = !inString
		case '/':
			if !inString && len(s.stmt) >= 2 && s.stmt[len(s.stmt)-2] == '/' {
				inComment = true
			}
		case '{':
			if !inString {
				depth++
				sawBrace = true
			}
		case '}':
			if !inString {
				depth--
				if depth <= 0 && sawBrace {
					return string(s.stmt), startLine, true, nil
				}
			}
		case ';':
			if !inString && depth == 0 {
				return string(s.stmt), startLine, true, nil
			}
		}
	}
}

// ScanGates streams the gates of QASM source r into fn, stopping on
// the first parse error or the first error fn returns. It is the
// callback flavor of GateScanner for callers that do not need the
// iterator shape.
func ScanGates(r io.Reader, fn func(circuit.Gate) error) error {
	sc := NewGateScanner(r)
	for sc.Scan() {
		if err := fn(sc.Gate()); err != nil {
			return err
		}
	}
	return sc.Err()
}

// StreamWriter serializes routed gates as OpenQASM 2.0 incrementally:
// the header is written up front, gates are appended chunk by chunk,
// and the concatenation of all chunks is a complete program. Because
// a streaming writer cannot look ahead to count measurements, the
// classical register line is emitted unconditionally — unlike Write,
// which omits it from measurement-free circuits. Both streaming
// compilation paths (windowed and materialized) share this writer, so
// their outputs stay byte-comparable by construction.
type StreamWriter struct {
	w   *bufio.Writer
	err error
}

// NewStreamWriter writes the program header (version, include, qreg
// and creg of width max(numQubits,1)) to w and returns the writer.
func NewStreamWriter(w io.Writer, numQubits int) *StreamWriter {
	sw := &StreamWriter{w: bufio.NewWriter(w)}
	n := maxInt(numQubits, 1)
	sw.w.WriteString("OPENQASM 2.0;\n")
	sw.w.WriteString("include \"qelib1.inc\";\n")
	writeRegLine(sw.w, "qreg q", n)
	writeRegLine(sw.w, "creg c", n)
	sw.err = sw.w.Flush()
	return sw
}

// WriteGates appends one chunk of gates. Errors are sticky.
func (sw *StreamWriter) WriteGates(gates []circuit.Gate) error {
	if sw.err != nil {
		return sw.err
	}
	for _, g := range gates {
		if err := writeGate(sw.w, g); err != nil {
			sw.err = err
			return err
		}
	}
	sw.err = sw.w.Flush()
	return sw.err
}

// Emit is WriteGates under the name core.StreamSink expects, so a
// StreamWriter plugs directly into the streaming router as its sink.
func (sw *StreamWriter) Emit(gates []circuit.Gate) error { return sw.WriteGates(gates) }

// Flush forces buffered output through to the underlying writer.
func (sw *StreamWriter) Flush() error {
	if sw.err != nil {
		return sw.err
	}
	sw.err = sw.w.Flush()
	return sw.err
}

// writeRegLine writes "<prefix>[<n>];\n" without fmt overhead.
func writeRegLine(w *bufio.Writer, prefix string, n int) {
	w.WriteString(prefix)
	w.WriteByte('[')
	var buf [20]byte
	w.Write(appendInt(buf[:0], n))
	w.WriteString("];\n")
}

// appendInt appends the decimal form of non-negative n.
func appendInt(dst []byte, n int) []byte {
	if n == 0 {
		return append(dst, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for n > 0 {
		i--
		tmp[i] = byte('0' + n%10)
		n /= 10
	}
	return append(dst, tmp[i:]...)
}
