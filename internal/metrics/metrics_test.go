package metrics

import (
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/circuit"
)

func fig3Original() *circuit.Circuit {
	c := circuit.NewNamed("fig3", 4)
	c.Append(
		circuit.CX(0, 1), circuit.CX(2, 3), circuit.CX(1, 3),
		circuit.CX(1, 2), circuit.CX(2, 3), circuit.CX(0, 3),
	)
	return c
}

func fig3Routed() *circuit.Circuit {
	c := circuit.NewNamed("fig3-routed", 4)
	c.Append(
		circuit.CX(0, 1), circuit.CX(2, 3), circuit.CX(1, 3),
		circuit.Swap(0, 1),
		circuit.CX(1, 2), circuit.CX(2, 3), circuit.CX(0, 3),
	)
	return c
}

func TestMeasureFig3(t *testing.T) {
	r := Measure(fig3Original())
	if r.Gates != 6 || r.Depth != 5 || r.TwoQubitGates != 6 {
		t.Fatalf("fig3 original: %+v", r)
	}
}

func TestCompareFig3(t *testing.T) {
	// Paper §III-A: gates 6 -> 9, depth 5 -> 8 after one SWAP.
	r := Compare(fig3Original(), fig3Routed())
	if r.RefGates != 6 || r.Gates != 9 || r.AddedGates != 3 {
		t.Fatalf("gate accounting: %+v", r)
	}
	if r.RefDepth != 5 || r.Depth != 8 {
		t.Fatalf("depth accounting: %+v", r)
	}
}

func TestEstimateFidelity(t *testing.T) {
	em := arch.Q20ErrorModel()
	c := circuit.New(2)
	c.Append(circuit.G1(circuit.KindH, 0), circuit.CX(0, 1), circuit.G1(circuit.KindMeasure, 0))
	want := (1 - em.SingleQubitError) * (1 - em.TwoQubitError) * (1 - em.MeasurementError)
	if got := EstimateFidelity(c, em); math.Abs(got-want) > 1e-12 {
		t.Fatalf("fidelity = %g, want %g", got, want)
	}
	// A SWAP costs 3 CNOTs of error.
	s := circuit.New(2)
	s.Append(circuit.Swap(0, 1))
	want = math.Pow(1-em.TwoQubitError, 3)
	if got := EstimateFidelity(s, em); math.Abs(got-want) > 1e-12 {
		t.Fatalf("swap fidelity = %g, want %g", got, want)
	}
	// Barrier is free.
	b := circuit.New(1)
	b.Append(circuit.G1(circuit.KindBarrier, 0))
	if EstimateFidelity(b, em) != 1 {
		t.Fatal("barrier should not cost fidelity")
	}
}

func TestFidelityMonotoneInGates(t *testing.T) {
	em := arch.Q20ErrorModel()
	short := fig3Original()
	long := fig3Routed()
	if EstimateFidelity(long, em) >= EstimateFidelity(short, em) {
		t.Fatal("more gates should mean lower fidelity")
	}
}

func TestEstimateDuration(t *testing.T) {
	em := arch.ErrorModel{SingleQubitNanos: 10, TwoQubitNanos: 100, T2Microseconds: 1}
	c := circuit.New(2)
	c.Append(circuit.G1(circuit.KindH, 0), circuit.G1(circuit.KindH, 1), circuit.CX(0, 1))
	// Both H in parallel (10ns) then CX (100ns).
	if got := EstimateDuration(c, em); got != 110 {
		t.Fatalf("duration = %g, want 110", got)
	}
	if EstimateDuration(circuit.New(0), em) != 0 {
		t.Fatal("empty circuit duration")
	}
}

func TestCoherenceBudget(t *testing.T) {
	em := arch.ErrorModel{SingleQubitNanos: 10, TwoQubitNanos: 100, T2Microseconds: 1} // 1000ns budget
	c := circuit.New(2)
	c.Append(circuit.CX(0, 1)) // 100ns
	if !CoherenceBudgetOK(c, em, 0.5) {
		t.Fatal("100ns should fit in 500ns")
	}
	for i := 0; i < 9; i++ {
		c.Append(circuit.CX(0, 1))
	}
	if CoherenceBudgetOK(c, em, 0.5) { // 1000ns > 500ns
		t.Fatal("1000ns should not fit in 500ns")
	}
}

func TestDecoherenceFactor(t *testing.T) {
	em := arch.ErrorModel{TwoQubitNanos: 1000, T2Microseconds: 1} // one gate = full T2
	c := circuit.New(2)
	c.Append(circuit.CX(0, 1))
	if got := DecoherenceFactor(c, em); math.Abs(got-math.Exp(-1)) > 1e-12 {
		t.Fatalf("decoherence = %g", got)
	}
	if DecoherenceFactor(c, arch.ErrorModel{}) != 0 {
		t.Fatal("zero T2 should yield 0")
	}
}

func TestQubitUtilization(t *testing.T) {
	c := circuit.New(3)
	c.Append(circuit.CX(0, 1), circuit.G1(circuit.KindH, 0), circuit.Swap(1, 2))
	u := QubitUtilization(c)
	// Swap decomposes to 3 CX: q1 and q2 each get 3 touches.
	if u[0] != 2 || u[1] != 4 || u[2] != 3 {
		t.Fatalf("utilization %v", u)
	}
}

func TestBreakdown(t *testing.T) {
	b := Breakdown(fig3Original(), fig3Routed())
	if b.OriginalGates != 6 || b.RoutedGates != 9 || b.AddedGates != 3 {
		t.Fatalf("breakdown %+v", b)
	}
	if b.AddedCNOTs != 3 || b.SwapsInserted != 1 {
		t.Fatalf("breakdown %+v", b)
	}
	if b.OverheadRatio != 1.5 || b.TwoQubitShare != 1 {
		t.Fatalf("breakdown %+v", b)
	}
}

func TestBreakdownEmpty(t *testing.T) {
	e := circuit.New(2)
	b := Breakdown(e, e)
	if b.OverheadRatio != 0 || b.TwoQubitShare != 0 {
		t.Fatalf("empty breakdown %+v", b)
	}
}

func TestReportString(t *testing.T) {
	r := Compare(fig3Original(), fig3Routed())
	if r.String() == "" {
		t.Fatal("empty report string")
	}
	m := Measure(fig3Original())
	if m.String() == "" {
		t.Fatal("empty measure string")
	}
}
