// Package metrics computes the evaluation metrics of paper §III-B —
// total gate count and circuit depth of the hardware-compliant circuit
// — plus the NISQ-motivated derived quantities (estimated fidelity
// under the Fig. 2 error model and execution time against the qubit
// coherence budget) that motivate minimizing them.
package metrics

import (
	"fmt"
	"math"

	"repro/internal/arch"
	"repro/internal/circuit"
)

// Report summarizes a circuit against an optional reference ("original")
// circuit, in the shape of the paper's Table II columns.
type Report struct {
	Name          string
	NumQubits     int
	Gates         int // g_tot
	TwoQubitGates int
	Depth         int // d
	AddedGates    int // g_add relative to the reference (-1 if none)
	RefGates      int // g_ori
	RefDepth      int
}

// Measure computes a Report for c. SWAP gates are decomposed into 3
// CNOTs first, matching the paper's gate accounting (a SWAP costs 3
// CNOTs, §III-A).
func Measure(c *circuit.Circuit) Report {
	d := c.DecomposeSwaps()
	return Report{
		Name:          c.Name(),
		NumQubits:     c.NumQubits(),
		Gates:         d.NumGates(),
		TwoQubitGates: d.CountTwoQubit(),
		Depth:         d.Depth(),
		AddedGates:    -1,
	}
}

// Compare computes a Report for routed relative to the original circuit.
func Compare(orig, routed *circuit.Circuit) Report {
	r := Measure(routed)
	o := Measure(orig)
	r.Name = orig.Name()
	r.RefGates = o.Gates
	r.RefDepth = o.Depth
	r.AddedGates = r.Gates - o.Gates
	return r
}

// String renders the report as one human-readable line.
func (r Report) String() string {
	if r.AddedGates >= 0 {
		return fmt.Sprintf("%s: n=%d g_ori=%d g_add=%d g_tot=%d depth=%d (ref depth %d)",
			r.Name, r.NumQubits, r.RefGates, r.AddedGates, r.Gates, r.Depth, r.RefDepth)
	}
	return fmt.Sprintf("%s: n=%d g=%d depth=%d", r.Name, r.NumQubits, r.Gates, r.Depth)
}

// QubitUtilization returns, per wire, the number of gates touching it
// (SWAPs decomposed first). Hot qubits accumulate error fastest; the
// spread diagnoses how evenly a router distributes traffic.
func QubitUtilization(c *circuit.Circuit) []int {
	d := c.DecomposeSwaps()
	out := make([]int, d.NumQubits())
	for _, g := range d.Gates() {
		out[g.Q0]++
		if g.TwoQubit() {
			out[g.Q1]++
		}
	}
	return out
}

// OverheadBreakdown decomposes a routed circuit's gate count into the
// original gates and the routing overhead, per kind.
type OverheadBreakdown struct {
	OriginalGates int
	RoutedGates   int // after SWAP decomposition
	AddedGates    int
	AddedCNOTs    int
	SwapsInserted int // symbolic SWAPs before decomposition
	OverheadRatio float64
	TwoQubitShare float64 // fraction of routed gates that are 2-qubit
}

// Breakdown computes the overhead decomposition of routed vs orig.
func Breakdown(orig, routed *circuit.Circuit) OverheadBreakdown {
	d := routed.DecomposeSwaps()
	b := OverheadBreakdown{
		OriginalGates: orig.DecomposeSwaps().NumGates(),
		RoutedGates:   d.NumGates(),
		SwapsInserted: routed.CountKind(circuit.KindSwap),
	}
	b.AddedGates = b.RoutedGates - b.OriginalGates
	b.AddedCNOTs = d.CountKind(circuit.KindCX) - orig.DecomposeSwaps().CountKind(circuit.KindCX)
	if b.OriginalGates > 0 {
		b.OverheadRatio = float64(b.RoutedGates) / float64(b.OriginalGates)
	}
	if d.NumGates() > 0 {
		b.TwoQubitShare = float64(d.CountTwoQubit()) / float64(d.NumGates())
	}
	return b
}

// EstimateFidelity returns the product of per-gate success
// probabilities under the error model: (1-e1)^s · (1-e2)^t · (1-em)^m
// for s single-qubit gates, t two-qubit gates and m measurements.
// SWAPs are decomposed first. This is the standard first-order model
// behind the paper's fidelity objective (§III-B).
func EstimateFidelity(c *circuit.Circuit, em arch.ErrorModel) float64 {
	d := c.DecomposeSwaps()
	f := 1.0
	for _, g := range d.Gates() {
		switch {
		case g.Kind == circuit.KindMeasure:
			f *= 1 - em.MeasurementError
		case g.Kind == circuit.KindBarrier:
			// no physical operation
		case g.TwoQubit():
			f *= 1 - em.TwoQubitError
		default:
			f *= 1 - em.SingleQubitError
		}
	}
	return f
}

// EstimateDuration returns the critical-path execution time in
// nanoseconds under ASAP scheduling with per-kind gate durations.
func EstimateDuration(c *circuit.Circuit, em arch.ErrorModel) float64 {
	d := c.DecomposeSwaps()
	if d.NumQubits() == 0 {
		return 0
	}
	finish := make([]float64, d.NumQubits())
	var makespan float64
	for _, g := range d.Gates() {
		var dur float64
		switch {
		case g.Kind == circuit.KindBarrier:
			dur = 0
		case g.TwoQubit():
			dur = em.TwoQubitNanos
		default:
			dur = em.SingleQubitNanos
		}
		start := finish[g.Q0]
		if g.TwoQubit() && finish[g.Q1] > start {
			start = finish[g.Q1]
		}
		end := start + dur
		finish[g.Q0] = end
		if g.TwoQubit() {
			finish[g.Q1] = end
		}
		if end > makespan {
			makespan = end
		}
	}
	return makespan
}

// CoherenceBudgetOK reports whether the estimated duration fits within
// frac of the device's T2 dephasing time (the paper's "fraction of
// qubit coherence time" constraint, §II-B). frac is typically ≪ 1.
func CoherenceBudgetOK(c *circuit.Circuit, em arch.ErrorModel, frac float64) bool {
	t2nanos := em.T2Microseconds * 1000
	return EstimateDuration(c, em) <= frac*t2nanos
}

// DecoherenceFactor returns exp(-t/T2) for the circuit's critical path,
// a crude bound on coherence surviving execution.
func DecoherenceFactor(c *circuit.Circuit, em arch.ErrorModel) float64 {
	t2nanos := em.T2Microseconds * 1000
	if t2nanos == 0 {
		return 0
	}
	return math.Exp(-EstimateDuration(c, em) / t2nanos)
}
