// Package opt implements post-routing peephole optimization. Routing
// inserts SWAPs mechanically; simple local rewrites then reclaim gates:
// adjacent self-inverse pairs cancel (CX·CX, H·H, X·X, SWAP·SWAP),
// inverse pairs cancel (S·S†, T·T†), and consecutive rotations about
// the same axis merge. The paper's gate-count objective (§III-B) makes
// every reclaimed gate a direct fidelity win.
//
// The optimizer preserves circuit semantics exactly (tests verify over
// GF(2) and by state-vector simulation) and never reorders gates across
// dependencies: cancellation only fires when two gates are adjacent on
// all of their qubits' timelines.
package opt

import (
	"math"

	"repro/internal/circuit"
)

// Options configures the peephole optimizer.
type Options struct {
	// MaxPasses bounds the fixpoint iteration (each pass scans the
	// whole circuit once). 0 selects a default of 10; the fixpoint is
	// normally reached in 2-3 passes.
	MaxPasses int

	// MergeRotations merges consecutive same-axis rotations (RZ/RZ,
	// RX/RX, RY/RY, U1/U1) into one gate, dropping it entirely when the
	// combined angle is a multiple of 2π.
	MergeRotations bool
}

// DefaultOptions enables all rewrites.
func DefaultOptions() Options {
	return Options{MaxPasses: 10, MergeRotations: true}
}

// Result reports what the optimizer did.
type Result struct {
	Circuit  *circuit.Circuit
	Removed  int // gates removed by cancellation
	Merged   int // rotation pairs merged
	Passes   int // passes until fixpoint
	GatesIn  int
	GatesOut int
}

// Optimize applies peephole rewrites until fixpoint (or MaxPasses) and
// returns the optimized circuit. The input circuit is not modified.
func Optimize(c *circuit.Circuit, opts Options) Result {
	if opts.MaxPasses <= 0 {
		opts.MaxPasses = 10
	}
	res := Result{GatesIn: c.NumGates()}
	gates := append([]circuit.Gate(nil), c.Gates()...)
	for pass := 0; pass < opts.MaxPasses; pass++ {
		var removed, merged int
		gates, removed, merged = onePass(c.NumQubits(), gates, opts)
		res.Passes = pass + 1
		res.Removed += removed
		res.Merged += merged
		if removed == 0 && merged == 0 {
			break
		}
	}
	out := circuit.NewNamed(c.Name(), c.NumQubits())
	out.Append(gates...)
	res.Circuit = out
	res.GatesOut = out.NumGates()
	return res
}

// onePass scans once, cancelling/merging adjacent pairs. Two gates are
// "adjacent" when the earlier one is the most recent gate on every
// qubit of the later one (nothing touched any shared qubit between
// them) — then the rewrite is sound regardless of what happens on
// other qubits.
func onePass(n int, gates []circuit.Gate, opts Options) (out []circuit.Gate, removed, merged int) {
	// lastIdx[q] is the index (into out) of the last surviving gate on
	// wire q, or -1.
	lastIdx := make([]int, n)
	for i := range lastIdx {
		lastIdx[i] = -1
	}
	dead := make([]bool, len(gates))
	out = make([]circuit.Gate, 0, len(gates))

	prevOn := func(g circuit.Gate) (int, bool) {
		// The candidate predecessor must be the last gate on ALL of g's
		// qubits, and alive.
		p := lastIdx[g.Q0]
		if g.TwoQubit() {
			if lastIdx[g.Q1] != p {
				return -1, false
			}
		}
		if p < 0 || dead[p] {
			return -1, false
		}
		return p, true
	}

	push := func(g circuit.Gate, srcIdx int) {
		out = append(out, g)
		idx := len(out) - 1
		lastIdx[g.Q0] = idx
		if g.TwoQubit() {
			lastIdx[g.Q1] = idx
		}
		_ = srcIdx
	}

	// dead is indexed over `out` after this point: simpler to track a
	// parallel slice.
	dead = make([]bool, 0, len(gates))
	pushAlive := func(g circuit.Gate) {
		push(g, 0)
		dead = append(dead, false)
	}

	for _, g := range gates {
		if p, ok := prevOn(g); ok {
			prev := out[p]
			switch {
			case cancels(prev, g):
				dead[p] = true
				removed += 2
				// Roll lastIdx back is unnecessary: dead gates are
				// skipped by prevOn and filtered at the end; but the
				// wires' "last gate" should become whatever preceded.
				// Conservatively reset to -1 (prevents further rewrites
				// through the hole this pass; later passes catch them).
				lastIdx[g.Q0] = -1
				if g.TwoQubit() {
					lastIdx[g.Q1] = -1
				}
				continue
			case opts.MergeRotations && sameAxisRotation(prev, g):
				angle := prev.Params[0] + g.Params[0]
				if wrapsToIdentity(angle) {
					dead[p] = true
					removed += 2
				} else {
					out[p] = circuit.G1(prev.Kind, prev.Q0, angle)
					merged++
				}
				continue
			}
		}
		pushAlive(g)
	}

	kept := out[:0]
	for i, g := range out {
		if !dead[i] {
			kept = append(kept, g)
		}
	}
	return kept, removed, merged
}

// cancels reports whether b immediately after a is the identity.
func cancels(a, b circuit.Gate) bool {
	switch {
	case a.Kind == circuit.KindCX && b.Kind == circuit.KindCX:
		return a.Q0 == b.Q0 && a.Q1 == b.Q1
	case a.Kind == circuit.KindCZ && b.Kind == circuit.KindCZ:
		// CZ is symmetric.
		return (a.Q0 == b.Q0 && a.Q1 == b.Q1) || (a.Q0 == b.Q1 && a.Q1 == b.Q0)
	case a.Kind == circuit.KindSwap && b.Kind == circuit.KindSwap:
		return (a.Q0 == b.Q0 && a.Q1 == b.Q1) || (a.Q0 == b.Q1 && a.Q1 == b.Q0)
	case a.Q0 != b.Q0:
		return false
	case a.Kind == circuit.KindH && b.Kind == circuit.KindH,
		a.Kind == circuit.KindX && b.Kind == circuit.KindX,
		a.Kind == circuit.KindY && b.Kind == circuit.KindY,
		a.Kind == circuit.KindZ && b.Kind == circuit.KindZ:
		return true
	case a.Kind == circuit.KindS && b.Kind == circuit.KindSdg,
		a.Kind == circuit.KindSdg && b.Kind == circuit.KindS,
		a.Kind == circuit.KindT && b.Kind == circuit.KindTdg,
		a.Kind == circuit.KindTdg && b.Kind == circuit.KindT:
		return true
	default:
		return false
	}
}

// sameAxisRotation reports whether a and b are mergeable rotations on
// the same qubit and axis.
func sameAxisRotation(a, b circuit.Gate) bool {
	if a.Q0 != b.Q0 || a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case circuit.KindRZ, circuit.KindRX, circuit.KindRY, circuit.KindU1:
		return true
	default:
		return false
	}
}

// wrapsToIdentity reports whether the merged angle is a multiple of 2π
// (the merged rotation is the identity up to global phase).
func wrapsToIdentity(angle float64) bool {
	m := math.Mod(angle, 2*math.Pi)
	if m < 0 {
		m += 2 * math.Pi
	}
	const eps = 1e-12
	return m < eps || 2*math.Pi-m < eps
}
