package opt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/sim"
	"repro/internal/verify"
	"repro/internal/workloads"
)

func optimize(t *testing.T, c *circuit.Circuit) Result {
	t.Helper()
	res := Optimize(c, DefaultOptions())
	if res.GatesOut != res.Circuit.NumGates() {
		t.Fatalf("accounting wrong: %d != %d", res.GatesOut, res.Circuit.NumGates())
	}
	return res
}

func TestCancelAdjacentCX(t *testing.T) {
	c := circuit.New(2)
	c.Append(circuit.CX(0, 1), circuit.CX(0, 1))
	res := optimize(t, c)
	if res.Circuit.NumGates() != 0 || res.Removed != 2 {
		t.Fatalf("CX pair not cancelled: %v", res.Circuit.Gates())
	}
}

func TestNoCancelReversedCX(t *testing.T) {
	c := circuit.New(2)
	c.Append(circuit.CX(0, 1), circuit.CX(1, 0))
	if res := optimize(t, c); res.Circuit.NumGates() != 2 {
		t.Fatal("reversed CX pair wrongly cancelled")
	}
}

func TestCancelSelfInverses(t *testing.T) {
	pairs := [][2]circuit.Gate{
		{circuit.G1(circuit.KindH, 0), circuit.G1(circuit.KindH, 0)},
		{circuit.G1(circuit.KindX, 1), circuit.G1(circuit.KindX, 1)},
		{circuit.G1(circuit.KindS, 0), circuit.G1(circuit.KindSdg, 0)},
		{circuit.G1(circuit.KindTdg, 1), circuit.G1(circuit.KindT, 1)},
		{circuit.Swap(0, 1), circuit.Swap(1, 0)},
		{circuit.CZ(0, 1), circuit.CZ(1, 0)},
	}
	for _, p := range pairs {
		c := circuit.New(2)
		c.Append(p[0], p[1])
		if res := optimize(t, c); res.Circuit.NumGates() != 0 {
			t.Fatalf("%v then %v not cancelled", p[0], p[1])
		}
	}
}

func TestInterveningGateBlocksCancellation(t *testing.T) {
	c := circuit.New(2)
	c.Append(circuit.G1(circuit.KindH, 0), circuit.G1(circuit.KindT, 0), circuit.G1(circuit.KindH, 0))
	if res := optimize(t, c); res.Circuit.NumGates() != 3 {
		t.Fatal("cancelled across an intervening gate")
	}
}

func TestBarrierAndMeasureBlockCancellation(t *testing.T) {
	c := circuit.New(1)
	c.Append(circuit.G1(circuit.KindH, 0), circuit.G1(circuit.KindBarrier, 0), circuit.G1(circuit.KindH, 0))
	if res := optimize(t, c); res.Circuit.CountKind(circuit.KindH) != 2 {
		t.Fatal("cancelled across a barrier")
	}
	m := circuit.New(1)
	m.Append(circuit.G1(circuit.KindX, 0), circuit.G1(circuit.KindMeasure, 0), circuit.G1(circuit.KindX, 0))
	if res := optimize(t, m); res.Circuit.CountKind(circuit.KindX) != 2 {
		t.Fatal("cancelled across a measurement")
	}
}

func TestSpectatorGateDoesNotBlock(t *testing.T) {
	// A gate on an unrelated wire must not block cancellation.
	c := circuit.New(3)
	c.Append(circuit.CX(0, 1), circuit.G1(circuit.KindH, 2), circuit.CX(0, 1))
	res := optimize(t, c)
	if res.Circuit.NumGates() != 1 || res.Circuit.Gate(0).Kind != circuit.KindH {
		t.Fatalf("spectator handling wrong: %v", res.Circuit.Gates())
	}
}

func TestPartialOverlapBlocksCXCancellation(t *testing.T) {
	// CX(0,1) CX(1,2) CX(0,1): the middle gate shares qubit 1, so the
	// outer pair is NOT adjacent and must survive.
	c := circuit.New(3)
	c.Append(circuit.CX(0, 1), circuit.CX(1, 2), circuit.CX(0, 1))
	if res := optimize(t, c); res.Circuit.NumGates() != 3 {
		t.Fatalf("unsound cancellation: %v", res.Circuit.Gates())
	}
}

func TestRotationMerging(t *testing.T) {
	c := circuit.New(1)
	c.Append(circuit.G1(circuit.KindRZ, 0, 0.3), circuit.G1(circuit.KindRZ, 0, 0.5))
	res := optimize(t, c)
	if res.Circuit.NumGates() != 1 || res.Merged != 1 {
		t.Fatalf("rotations not merged: %v", res.Circuit.Gates())
	}
	if math.Abs(res.Circuit.Gate(0).Params[0]-0.8) > 1e-15 {
		t.Fatalf("merged angle %g", res.Circuit.Gate(0).Params[0])
	}
}

func TestRotationMergeToIdentity(t *testing.T) {
	c := circuit.New(1)
	c.Append(circuit.G1(circuit.KindRX, 0, 1.1), circuit.G1(circuit.KindRX, 0, 2*math.Pi-1.1))
	if res := optimize(t, c); res.Circuit.NumGates() != 0 {
		t.Fatalf("2π rotation survived: %v", res.Circuit.Gates())
	}
}

func TestRotationMergeDisabled(t *testing.T) {
	c := circuit.New(1)
	c.Append(circuit.G1(circuit.KindRZ, 0, 0.3), circuit.G1(circuit.KindRZ, 0, 0.5))
	opts := DefaultOptions()
	opts.MergeRotations = false
	if res := Optimize(c, opts); res.Circuit.NumGates() != 2 {
		t.Fatal("merge happened while disabled")
	}
}

func TestFixpointCascade(t *testing.T) {
	// T Tdg cancellation exposes an H H pair; both must go (multi-pass).
	c := circuit.New(1)
	c.Append(
		circuit.G1(circuit.KindH, 0),
		circuit.G1(circuit.KindT, 0),
		circuit.G1(circuit.KindTdg, 0),
		circuit.G1(circuit.KindH, 0),
	)
	res := optimize(t, c)
	if res.Circuit.NumGates() != 0 {
		t.Fatalf("cascade incomplete: %v", res.Circuit.Gates())
	}
	if res.Passes < 2 {
		t.Fatalf("expected multiple passes, got %d", res.Passes)
	}
}

func TestInputNotMutated(t *testing.T) {
	c := circuit.New(1)
	c.Append(circuit.G1(circuit.KindH, 0), circuit.G1(circuit.KindH, 0))
	Optimize(c, DefaultOptions())
	if c.NumGates() != 2 {
		t.Fatal("Optimize mutated its input")
	}
}

// Property: optimization preserves the GF(2) function of CNOT/SWAP
// circuits exactly.
func TestOptimizePreservesLinearFunction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		c := circuit.New(n)
		for i := 0; i < 60; i++ {
			a := rng.Intn(n)
			b := rng.Intn(n - 1)
			if b >= a {
				b++
			}
			if rng.Intn(4) == 0 {
				c.Append(circuit.Swap(a, b))
			} else {
				c.Append(circuit.CX(a, b))
			}
		}
		res := Optimize(c, DefaultOptions())
		before, err1 := verify.FromCircuit(c)
		after, err2 := verify.FromCircuit(res.Circuit)
		return err1 == nil && err2 == nil && before.Equal(after)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: optimization preserves full quantum semantics on random
// mixed circuits (state-vector check).
func TestOptimizePreservesStates(t *testing.T) {
	f := func(seed int64) bool {
		c := workloads.RandomCircuit("opt", 4, 50, 0.4, seed)
		res := Optimize(c, DefaultOptions())
		rng := rand.New(rand.NewSource(seed))
		psi := sim.NewRandomState(4, rng)
		a := psi.Clone()
		a.ApplyCircuit(c)
		b := psi.Clone()
		b.ApplyCircuit(res.Circuit)
		return a.EqualUpToGlobalPhase(b, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the optimizer is idempotent (running twice = running once).
func TestOptimizeIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		c := workloads.RandomCircuit("idem", 5, 80, 0.5, seed)
		once := Optimize(c, DefaultOptions())
		twice := Optimize(once.Circuit, DefaultOptions())
		return twice.Removed == 0 && twice.Merged == 0 && twice.Circuit.Equal(once.Circuit)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizeReclaimsRoutingOverhead(t *testing.T) {
	// Routed circuits contain decomposed SWAPs adjacent to CNOTs; the
	// optimizer should reclaim some gates on a dense workload.
	c := workloads.RandomCircuit("reclaim", 8, 300, 0.8, 3)
	res := Optimize(c, DefaultOptions())
	if res.GatesOut > res.GatesIn {
		t.Fatal("optimizer grew the circuit")
	}
}
