package batch

import (
	"container/list"
	"encoding/binary"
	"sync"
)

// resultCache is a sharded LRU cache from job Key to compile Result.
// Sharding bounds lock contention: concurrent workers touching
// different keys almost always lock different shards, so a hot cache
// does not serialize the pool (the same reason NDN-DPDK partitions its
// forwarder tables per-core). Each shard holds its own lock, map and
// recency list; a key's shard is fixed by its first byte.
type resultCache struct {
	shards []cacheShard
	mask   uint32
}

type cacheShard struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent
	items map[Key]*list.Element
}

type cacheEntry struct {
	key Key
	res *outcome
}

// newResultCache builds a cache with the given total entry capacity
// spread over nShards shards. nShards is rounded up to a power of two
// so shard selection is a mask, not a modulo. Returns nil when
// capacity <= 0 (caching disabled).
func newResultCache(capacity, nShards int) *resultCache {
	if capacity <= 0 {
		return nil
	}
	if nShards <= 0 {
		nShards = defaultCacheShards
	}
	pow := 1
	for pow < nShards {
		pow <<= 1
	}
	if pow > capacity {
		// No point having more shards than entries.
		pow = 1
		for pow*2 <= capacity {
			pow <<= 1
		}
	}
	perShard := (capacity + pow - 1) / pow
	c := &resultCache{shards: make([]cacheShard, pow), mask: uint32(pow - 1)}
	for i := range c.shards {
		c.shards[i].cap = perShard
		c.shards[i].order = list.New()
		c.shards[i].items = make(map[Key]*list.Element, perShard)
	}
	return c
}

func (c *resultCache) shard(k Key) *cacheShard {
	// The key is a cryptographic digest: any prefix is uniform. Four
	// bytes address every permitted shard count, not just 256.
	return &c.shards[binary.LittleEndian.Uint32(k[:4])&c.mask]
}

// get returns the cached result for k, promoting it to most-recent.
func (c *resultCache) get(k Key) (*outcome, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[k]
	if !ok {
		return nil, false
	}
	s.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// add inserts (or refreshes) k, evicting the shard's least-recently
// used entry on overflow.
func (c *resultCache) add(k Key, res *outcome) {
	if c == nil {
		return
	}
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[k]; ok {
		el.Value.(*cacheEntry).res = res
		s.order.MoveToFront(el)
		return
	}
	s.items[k] = s.order.PushFront(&cacheEntry{key: k, res: res})
	if s.order.Len() > s.cap {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.items, oldest.Value.(*cacheEntry).key)
	}
}

// len returns the total number of cached entries across shards.
func (c *resultCache) len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}
