package batch

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/faults"
	"repro/internal/workloads"
)

// TestPipelinePanicBecomesError: a panic anywhere inside a job's
// pipeline run is recovered into a typed PanicError carrying the
// panicking goroutine's stack — the job fails, the engine (and its
// worker pool) keeps compiling.
func TestPipelinePanicBecomesError(t *testing.T) {
	faults.RegisterPanicRouter()
	eng := NewEngine(Config{Workers: 2})
	defer eng.Close()

	res := <-eng.SubmitContext(context.Background(), Job{
		Circuit: workloads.GHZ(6), Device: arch.IBMQ20Tokyo(), Route: "panic",
	})
	var pe *PanicError
	if !errors.As(res.Err, &pe) {
		t.Fatalf("panicking job error = %v (%T), want *PanicError", res.Err, res.Err)
	}
	if len(pe.Stack) == 0 || !strings.Contains(pe.Error(), "goroutine") {
		t.Fatalf("PanicError carries no stack: %v", pe)
	}
	if !strings.Contains(pe.Error(), "scripted router panic") {
		t.Fatalf("PanicError lost the panic value: %v", pe)
	}

	// The pool survived: an ordinary job still compiles.
	after := <-eng.SubmitContext(context.Background(), Job{
		Circuit: workloads.GHZ(6), Device: arch.IBMQ20Tokyo(),
	})
	if after.Err != nil {
		t.Fatalf("engine broken after panic: %v", after.Err)
	}
	// Panics, like errors, are never cached.
	again := <-eng.SubmitContext(context.Background(), Job{
		Circuit: workloads.GHZ(6), Device: arch.IBMQ20Tokyo(), Route: "panic",
	})
	if !errors.As(again.Err, &pe) {
		t.Fatalf("second panicking job = %v, want *PanicError", again.Err)
	}
}
