package batch

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/qasm"
	"repro/internal/verify"
	"repro/internal/workloads"
)

// testJobs returns a small mixed workload: several circuits, two
// devices, all with Seed left at zero so the engine derives seeds.
func testJobs() []Job {
	tokyo := arch.IBMQ20Tokyo()
	line := arch.Line(8)
	return []Job{
		{Circuit: workloads.GHZ(6), Device: tokyo, Tag: "ghz6"},
		{Circuit: workloads.QFT(6), Device: tokyo, Tag: "qft6"},
		{Circuit: workloads.QFT(5), Device: line, Tag: "qft5-line"},
		{Circuit: workloads.Ising(6, 2), Device: tokyo, Tag: "ising6"},
		{Circuit: workloads.RandomCircuit("rnd", 7, 60, 0.5, 11), Device: tokyo, Tag: "rnd7"},
	}
}

func TestCompileBatchOrderAndCompliance(t *testing.T) {
	e := NewEngine(Config{Workers: 4})
	defer e.Close()
	jobs := testJobs()
	results := e.CompileBatch(jobs)
	if len(results) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(results), len(jobs))
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("job %d (%s): %v", i, jobs[i].Tag, res.Err)
		}
		if res.Tag != jobs[i].Tag {
			t.Fatalf("job %d: tag %q, want %q (results out of order)", i, res.Tag, jobs[i].Tag)
		}
		if err := verify.HardwareCompliant(res.Circuit.DecomposeSwaps(), jobs[i].Device.Connected); err != nil {
			t.Fatalf("job %d (%s): non-compliant output: %v", i, jobs[i].Tag, err)
		}
	}

	// Exact GF(2) equivalence needs a CX-only circuit.
	linear := circuit.NewNamed("cnot-chain", 6)
	for i := 0; i < 5; i++ {
		linear.Append(circuit.CX(i, i+1), circuit.CX((i+2)%6, i))
	}
	res := e.CompileBatch([]Job{{Circuit: linear, Device: arch.IBMQ20Tokyo()}})[0]
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if err := verify.CheckRouted(linear, res.Circuit, res.InitialLayout, res.FinalLayout); err != nil {
		t.Fatalf("routed CX circuit not equivalent: %v", err)
	}
}

func TestCacheHitReturnsIdenticalResult(t *testing.T) {
	e := NewEngine(Config{Workers: 2})
	defer e.Close()
	job := Job{Circuit: workloads.QFT(6), Device: arch.IBMQ20Tokyo()}

	first := e.CompileBatch([]Job{job})[0]
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	if first.CacheHit {
		t.Fatal("first compile reported a cache hit")
	}
	second := e.CompileBatch([]Job{job})[0]
	if second.Err != nil {
		t.Fatal(second.Err)
	}
	if !second.CacheHit {
		t.Fatal("second compile missed the cache")
	}
	if first.Result != second.Result {
		t.Fatal("cache hit returned a different *core.Result")
	}
	if first.Key != second.Key {
		t.Fatalf("key changed between submissions: %x vs %x", first.Key, second.Key)
	}
}

// TestOverlappingBatches hammers one engine from many goroutines with
// shuffled copies of the same job list and asserts exact bookkeeping:
// every unique job compiles exactly once, everything else is served by
// the cache or joins the in-flight compile, and all results for a key
// are the very same shared *core.Result. Run with -race.
func TestOverlappingBatches(t *testing.T) {
	e := NewEngine(Config{Workers: 4})
	defer e.Close()
	jobs := testJobs()
	const goroutines = 8

	var mu sync.Mutex
	byKey := make(map[Key][]*core.Result)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			shuffled := append([]Job(nil), jobs...)
			rng := rand.New(rand.NewSource(seed))
			rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
			for _, res := range e.CompileBatch(shuffled) {
				if res.Err != nil {
					t.Errorf("batch job %s: %v", res.Tag, res.Err)
					return
				}
				mu.Lock()
				byKey[res.Key] = append(byKey[res.Key], res.Result)
				mu.Unlock()
			}
		}(int64(g))
	}
	wg.Wait()

	if len(byKey) != len(jobs) {
		t.Fatalf("saw %d unique keys, want %d", len(byKey), len(jobs))
	}
	for key, results := range byKey {
		if len(results) != goroutines {
			t.Fatalf("key %x: %d results, want %d", key[:4], len(results), goroutines)
		}
		for _, r := range results[1:] {
			if r != results[0] {
				t.Fatalf("key %x: results not shared (distinct pointers)", key[:4])
			}
		}
	}

	stats := e.Stats()
	total := int64(goroutines * len(jobs))
	if stats.Jobs != total {
		t.Fatalf("stats.Jobs = %d, want %d", stats.Jobs, total)
	}
	if stats.Compiles != int64(len(jobs)) {
		t.Fatalf("stats.Compiles = %d, want %d (each unique job compiles once)", stats.Compiles, len(jobs))
	}
	if stats.Hits+stats.Shared != total-int64(len(jobs)) {
		t.Fatalf("hits(%d)+shared(%d) != %d", stats.Hits, stats.Shared, total-int64(len(jobs)))
	}
	if stats.Errors != 0 {
		t.Fatalf("stats.Errors = %d", stats.Errors)
	}
}

// TestDeterminism asserts the reproducibility contract: the same batch
// compiled by engines with different worker counts, in different job
// orders, yields byte-identical routed QASM per job.
func TestDeterminism(t *testing.T) {
	jobs := testJobs()

	qasmOf := func(e *Engine, js []Job) map[string]string {
		out := make(map[string]string)
		for _, res := range e.CompileBatch(js) {
			if res.Err != nil {
				t.Fatalf("%s: %v", res.Tag, res.Err)
			}
			out[res.Tag] = qasm.Format(res.Circuit)
		}
		return out
	}

	serial := NewEngine(Config{Workers: 1, CacheEntries: -1})
	defer serial.Close()
	parallel := NewEngine(Config{Workers: 8, CacheEntries: -1})
	defer parallel.Close()

	want := qasmOf(serial, jobs)

	reversed := make([]Job, len(jobs))
	for i, j := range jobs {
		reversed[len(jobs)-1-i] = j
	}
	got := qasmOf(parallel, reversed)

	for tag, w := range want {
		if got[tag] != w {
			t.Fatalf("%s: routed QASM differs between 1-worker in-order and 8-worker reversed-order runs", tag)
		}
	}

	// Same engine, same batch again (cache disabled, so this re-runs
	// the full search): still byte-identical.
	again := qasmOf(parallel, jobs)
	for tag, w := range want {
		if again[tag] != w {
			t.Fatalf("%s: routed QASM differs between repeated runs", tag)
		}
	}
}

// TestBaseSeedChangesDerivedSeeds checks that BaseSeed feeds the
// derived seed (the search may or may not find a different result, so
// only the seed derivation itself is asserted) and that explicit seeds
// are left alone.
func TestBaseSeedChangesDerivedSeeds(t *testing.T) {
	job := Job{Circuit: workloads.QFT(6), Device: arch.IBMQ20Tokyo()}
	key := KeyOf(job)

	a := deriveSeed(key, 1, job.Options)
	b := deriveSeed(key, 2, job.Options)
	if a.Seed == 0 || b.Seed == 0 {
		t.Fatal("derived seed is zero")
	}
	if a.Seed == b.Seed {
		t.Fatalf("base seeds 1 and 2 derived the same job seed %d", a.Seed)
	}
	if again := deriveSeed(key, 1, job.Options); again.Seed != a.Seed {
		t.Fatal("seed derivation is not deterministic")
	}

	explicit := job.Options
	explicit.Seed = 42
	if got := deriveSeed(key, 7, explicit); got.Seed != 42 {
		t.Fatalf("explicit seed overridden: %d", got.Seed)
	}
}

func TestKeyCanonicalization(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	base := Job{Circuit: workloads.QFT(6), Device: dev, Options: core.DefaultOptions()}
	key := KeyOf(base)

	if KeyOf(base) != key {
		t.Fatal("KeyOf is not stable")
	}

	// Tag and circuit name are metadata, not identity.
	tagged := base
	tagged.Tag = "other"
	named := base
	named.Circuit = base.Circuit.Clone()
	named.Circuit.SetName("renamed")
	if KeyOf(tagged) != key || KeyOf(named) != key {
		t.Fatal("metadata leaked into the cache key")
	}

	// ParallelTrials returns bit-identical results and must share keys.
	par := base
	par.Options.ParallelTrials = true
	if KeyOf(par) != key {
		t.Fatal("ParallelTrials changed the cache key")
	}

	// Anything result-affecting must change the key.
	variants := []Job{
		{Circuit: workloads.QFT(7), Device: dev, Options: base.Options},
		{Circuit: base.Circuit, Device: arch.Line(20), Options: base.Options},
	}
	seedled := base
	seedled.Options.Seed = 99
	variants = append(variants, seedled)
	bridged := base
	bridged.Options.UseBridge = true
	variants = append(variants, bridged)
	noisy := base
	noisy.Options.Noise = arch.UniformNoise(0.01)
	variants = append(variants, noisy)
	for i, v := range variants {
		if KeyOf(v) == key {
			t.Fatalf("variant %d did not change the key", i)
		}
	}

	// Noise models hash their (sorted) edge maps, not pointer identity.
	n1 := base
	n1.Options.Noise = &arch.NoiseModel{Default: 0.01, EdgeError: map[arch.Edge]float64{arch.NewEdge(0, 1): 0.2}}
	n2 := base
	n2.Options.Noise = &arch.NoiseModel{Default: 0.01, EdgeError: map[arch.Edge]float64{arch.NewEdge(0, 1): 0.2}}
	if KeyOf(n1) != KeyOf(n2) {
		t.Fatal("equal noise models hashed differently")
	}
	n2.Options.Noise.EdgeError[arch.NewEdge(1, 6)] = 0.3
	if KeyOf(n1) == KeyOf(n2) {
		t.Fatal("different noise models share a key")
	}
}

// TestZeroOptionsMeansPaperDefaults pins the Job contract: an all-zero
// Options compiles with the paper's defaults (decay heuristic, 5
// trials), not with core's literal zero values (HeuristicBasic, zero
// decay) — so it must share a cache entry with explicitly-default
// options whose seed is left for derivation.
func TestZeroOptionsMeansPaperDefaults(t *testing.T) {
	e := NewEngine(Config{Workers: 2})
	defer e.Close()
	circ, dev := workloads.QFT(6), arch.IBMQ20Tokyo()

	zero := e.CompileBatch([]Job{{Circuit: circ, Device: dev}})[0]
	if zero.Err != nil {
		t.Fatal(zero.Err)
	}
	explicit := core.DefaultOptions()
	explicit.Seed = 0
	def := e.CompileBatch([]Job{{Circuit: circ, Device: dev, Options: explicit}})[0]
	if def.Err != nil {
		t.Fatal(def.Err)
	}
	if !def.CacheHit || def.Result != zero.Result {
		t.Fatal("zero Options did not normalize to the paper defaults")
	}

	// A deliberately-basic heuristic is a different job.
	basic := explicit
	basic.Heuristic = core.HeuristicBasic
	if res := e.CompileBatch([]Job{{Circuit: circ, Device: dev, Options: basic}})[0]; res.CacheHit {
		t.Fatal("explicit HeuristicBasic shared the defaults' cache entry")
	}
}

func TestSubmitAsync(t *testing.T) {
	e := NewEngine(Config{Workers: 2})
	defer e.Close()
	dev := arch.IBMQ20Tokyo()
	chans := []<-chan Result{
		e.Submit(Job{Circuit: workloads.GHZ(5), Device: dev, Tag: "a"}),
		e.Submit(Job{Circuit: workloads.QFT(5), Device: dev, Tag: "b"}),
	}
	for _, ch := range chans {
		res := <-ch
		if res.Err != nil {
			t.Fatalf("%s: %v", res.Tag, res.Err)
		}
		if res.Circuit == nil {
			t.Fatalf("%s: nil circuit", res.Tag)
		}
	}
}

func TestJobErrors(t *testing.T) {
	e := NewEngine(Config{Workers: 2})
	defer e.Close()

	// A circuit wider than the device fails cleanly and is not cached.
	big := Job{Circuit: workloads.QFT(10), Device: arch.Line(4)}
	for i := 0; i < 2; i++ {
		res := e.CompileBatch([]Job{big})[0]
		if res.Err == nil {
			t.Fatal("oversized circuit compiled")
		}
		if res.CacheHit {
			t.Fatal("error result served from cache")
		}
	}
	if got := e.Stats().Errors; got != 2 {
		t.Fatalf("stats.Errors = %d, want 2", got)
	}
	if got := e.Stats().Cached; got != 0 {
		t.Fatalf("error result cached (%d entries)", got)
	}

	res := e.CompileBatch([]Job{{Device: arch.Line(4)}})[0]
	if !errors.Is(res.Err, errNilJob) {
		t.Fatalf("nil circuit: err = %v", res.Err)
	}
}

func TestClosedEngine(t *testing.T) {
	e := NewEngine(Config{Workers: 2})
	job := Job{Circuit: workloads.GHZ(4), Device: arch.Line(4)}
	if res := e.CompileBatch([]Job{job})[0]; res.Err != nil {
		t.Fatal(res.Err)
	}
	e.Close()
	e.Close() // idempotent
	res := e.CompileBatch([]Job{job})[0]
	if !errors.Is(res.Err, ErrClosed) {
		t.Fatalf("after Close: err = %v, want ErrClosed", res.Err)
	}
}

func TestFingerprint(t *testing.T) {
	a := workloads.QFT(6)
	if Fingerprint(a) != Fingerprint(workloads.QFT(6)) {
		t.Fatal("identical circuits fingerprint differently")
	}
	if Fingerprint(a) == Fingerprint(workloads.QFT(7)) {
		t.Fatal("different circuits share a fingerprint")
	}
	b := a.Clone()
	b.Append(circuit.CX(0, 1))
	if Fingerprint(a) == Fingerprint(b) {
		t.Fatal("appending a gate kept the fingerprint")
	}
}
