package batch

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/core"
)

// calScenario runs the recalibration freshness scenario on a fresh
// device/engine pair and returns the fingerprints of the routed
// circuits before and after the calibration swap (for cross-worker
// determinism checks), plus the device for further probing.
func calScenario(t *testing.T, workers int) (before, after uint64) {
	t.Helper()
	dev := arch.Ring(4)
	c := circuit.New(4)
	for i := 0; i < 6; i++ {
		c.Append(circuit.CX(0, 2))
	}
	eng := NewEngine(Config{Workers: workers, BaseSeed: 42})
	defer eng.Close()
	job := Job{Circuit: c, Device: dev, UseCalibration: true}

	// Uncalibrated: UseCalibration is a no-op, CalVersion stays zero.
	r0 := <-eng.Submit(job)
	if r0.Err != nil {
		t.Fatalf("uncalibrated route: %v", r0.Err)
	}
	if r0.CalVersion != 0 {
		t.Fatalf("uncalibrated CalVersion = %d, want 0", r0.CalVersion)
	}
	// Identical resubmission hits the cache.
	if r := <-eng.Submit(job); !r.CacheHit {
		t.Fatal("identical resubmission missed the cache")
	}

	// Recalibrate: edge (0,1) degrades catastrophically, all others
	// are near-perfect — a noise-aware route must go around it.
	snap, err := dev.ApplyCalibration(&arch.NoiseModel{EdgeError: map[arch.Edge]float64{
		arch.NewEdge(0, 1): 0.4,
		arch.NewEdge(1, 2): 0.001,
		arch.NewEdge(2, 3): 0.001,
		arch.NewEdge(0, 3): 0.001,
	}})
	if err != nil {
		t.Fatalf("ApplyCalibration: %v", err)
	}

	r1 := <-eng.Submit(job)
	if r1.Err != nil {
		t.Fatalf("post-calibration route: %v", r1.Err)
	}
	if r1.CacheHit {
		t.Fatal("stale cache entry served after recalibration")
	}
	if r1.CalVersion != snap.Version {
		t.Fatalf("CalVersion = %d, want %d", r1.CalVersion, snap.Version)
	}
	if r1.Key == r0.Key {
		t.Fatal("cache key unchanged by recalibration")
	}
	// The new result actually reflects the new weights: the degraded
	// edge is avoided entirely.
	for _, g := range r1.Final.DecomposeSwaps().Gates() {
		if g.TwoQubit() && arch.NewEdge(g.Q0, g.Q1) == arch.NewEdge(0, 1) {
			t.Fatalf("post-calibration route used the degraded edge: %v", g)
		}
	}
	// Byte-identical to an explicit compile under the snapshot's model
	// — UseCalibration is pure plumbing, not a different code path.
	explicit := job
	explicit.UseCalibration = false
	explicit.CalVersion = snap.Version
	explicit.Options = core.DefaultOptions()
	explicit.Options.Seed = 0
	explicit.Options.Noise = snap.Model
	re := <-eng.Submit(explicit)
	if re.Err != nil {
		t.Fatalf("explicit-noise route: %v", re.Err)
	}
	if re.Key != r1.Key {
		t.Fatal("resolved job and explicit-noise job must share a cache key")
	}
	if !re.CacheHit {
		t.Fatal("explicit-noise job should hit the calibrated job's cache entry")
	}
	if Fingerprint(re.Final) != Fingerprint(r1.Final) {
		t.Fatal("calibrated and explicit-noise results differ")
	}

	// And the calibrated entry itself is served on resubmission.
	if r := <-eng.Submit(job); !r.CacheHit || r.CalVersion != snap.Version {
		t.Fatalf("calibrated resubmission: hit=%v version=%d", r.CacheHit, r.CalVersion)
	}
	return Fingerprint(r0.Final), Fingerprint(r1.Final)
}

// TestRecalibrationFreshness is the PR's acceptance test: route, apply
// a degraded calibration, re-route — the new result reflects the new
// weights, the old cached entry is not served, and the whole scenario
// is byte-deterministic at any worker count (run with -race).
func TestRecalibrationFreshness(t *testing.T) {
	b1, a1 := calScenario(t, 1)
	for _, workers := range []int{2, 4, 8} {
		b, a := calScenario(t, workers)
		if b != b1 || a != a1 {
			t.Fatalf("results differ at %d workers: (%x,%x) vs (%x,%x)", workers, b, a, b1, a1)
		}
	}
}

func TestResolveCalibration(t *testing.T) {
	dev := arch.Line(3)
	c := circuit.New(3)
	c.Append(circuit.CX(0, 2))
	job := Job{Circuit: c, Device: dev, UseCalibration: true}

	// No snapshot: flag consumed, nothing pinned.
	r := job.ResolveCalibration()
	if r.UseCalibration || r.CalVersion != 0 || r.Options.Noise != nil {
		t.Fatal("resolution on an uncalibrated device must be a no-op")
	}

	snap, err := dev.ApplyCalibration(arch.UniformNoise(0.01))
	if err != nil {
		t.Fatal(err)
	}
	r = job.ResolveCalibration()
	if r.UseCalibration {
		t.Fatal("flag must be consumed")
	}
	if r.CalVersion != snap.Version || r.Options.Noise != snap.Model {
		t.Fatal("resolution did not pin the snapshot")
	}

	// KeyOf resolves defensively: hashing the unresolved job equals
	// hashing the resolved one.
	if KeyOf(job) != KeyOf(r) {
		t.Fatal("KeyOf must resolve calibration before hashing")
	}
	// And differs from the uncalibrated key.
	plain := job
	plain.UseCalibration = false
	if KeyOf(job) == KeyOf(plain) {
		t.Fatal("calibrated and uncalibrated jobs must not share keys")
	}
}
