package batch

import (
	"context"
	"errors"
	"io"
	"sync"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/qasm"
)

// StreamJob is one streaming compilation request: route the gates
// pulled from Source onto Device, emitting the routed gates through
// the caller's sink as they retire. Unlike Job there is no circuit
// value anywhere — the engine never materializes the stream — which
// is also why streaming jobs are uncacheable: the output leaves
// through the sink, so there is nothing to keep.
type StreamJob struct {
	Source  core.GateSource
	Device  *arch.Device
	Options core.Options
	Stream  core.StreamOptions

	// Tag is an optional caller label, echoed nowhere but useful to
	// implementations wrapping the engine.
	Tag string
}

// errNilStreamJob is reported for stream jobs missing a source or
// device.
var errNilStreamJob = errors.New("batch: stream job needs a non-nil Source and Device")

// streamScratches recycles warm routing scratches across streaming
// calls so a daemon serving many streams reaches the zero-alloc
// steady state of a dedicated worker.
var streamScratches = sync.Pool{New: func() any { return core.NewScratch() }}

// CompileStream routes one gate stream through the windowed streaming
// router, emitting routed chunks to sink as gates retire. It runs
// inline on the caller's goroutine — a stream is coupled to its
// caller's connection for its whole lifetime, so parking it on the
// batch worker pool would only add a queue in front of the same
// blocking wait; the pool stays free for cacheable unit jobs.
// Streaming results are never cached (the output is gone through the
// sink) and never deduplicated. Cancellation via ctx is honored at
// round granularity, exactly like the materialized router.
//
// A fully zero Options selects the paper's defaults, mirroring Job
// handling; the streaming router then pins the options to streaming
// semantics (single trial, bitset scoring) itself.
func (e *Engine) CompileStream(ctx context.Context, job StreamJob, sink core.StreamSink) (*core.StreamResult, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	if job.Source == nil || job.Device == nil {
		return nil, errNilStreamJob
	}
	if job.Options == (core.Options{}) {
		job.Options = core.DefaultOptions()
		job.Options.Seed = 0
	}
	e.streams.Add(1)
	scratch := streamScratches.Get().(*core.Scratch)
	defer streamScratches.Put(scratch)
	res, err := core.RouteStream(ctx, job.Source, job.Device, job.Options, job.Stream, sink, scratch)
	if err != nil {
		e.errs.Add(1)
		return nil, err
	}
	return res, nil
}

// CompileQASMStream is CompileStream over QASM text transport: gates
// are parsed incrementally from r (no whole-file AST) and the routed
// output is serialized incrementally to w as a complete OpenQASM 2.0
// program, flushed after every chunk. The emitted register width is
// the device width — routed gates address physical qubits. This is
// the full bytes-to-bytes streaming path cmd/sabred serves; peak
// memory is O(device + window) regardless of input length. The
// chunk callback, when non-nil, runs after each flushed chunk with
// the cumulative emitted-gate count (webhook and progress hooks).
func (e *Engine) CompileQASMStream(ctx context.Context, r io.Reader, job StreamJob, w io.Writer, onChunk func(emitted int64) error) (*core.StreamResult, error) {
	if job.Device == nil {
		return nil, errNilStreamJob
	}
	job.Source = qasm.NewGateScanner(r)
	sink := &qasmSink{w: qasm.NewStreamWriter(w, job.Device.NumQubits()), onChunk: onChunk}
	res, err := e.CompileStream(ctx, job, sink)
	if err != nil {
		return nil, err
	}
	return res, sink.w.Flush()
}

// qasmSink serializes routed chunks through a qasm.StreamWriter and
// notifies the optional per-chunk callback.
type qasmSink struct {
	w       *qasm.StreamWriter
	onChunk func(emitted int64) error
	emitted int64
}

func (s *qasmSink) Emit(gates []circuit.Gate) error {
	if err := s.w.WriteGates(gates); err != nil {
		return err
	}
	s.emitted += int64(len(gates))
	if s.onChunk != nil {
		return s.onChunk(s.emitted)
	}
	return nil
}
