// Package batch provides a concurrent batch-compilation engine on top
// of the core SABRE compiler: a bounded worker pool that keeps every
// core busy across many circuit/device/options jobs, a sharded LRU
// result cache keyed by a canonical structural hash so repeated
// workloads hit memory instead of re-running the search, and
// deterministic per-job seed derivation so a batch compiles to
// byte-identical results regardless of worker count or scheduling
// order.
//
// The engine is long-lived and safe for concurrent use: a service can
// share one Engine across all request handlers, and overlapping
// batches naturally deduplicate — identical jobs in flight at the same
// time are compiled once and the result shared (single-flight).
package batch

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/core"
)

// Job is one compilation request: route Circuit onto Device under
// Options. The zero Options value selects the paper's defaults
// (including the decay heuristic) with a seed derived from the job's
// content (see Config.BaseSeed); partially-filled Options are used as
// given, with core's usual zero-field normalization.
type Job struct {
	Circuit *circuit.Circuit
	Device  *arch.Device
	Options core.Options

	// Tag is an optional caller label carried into the Result. It is
	// not part of the cache key.
	Tag string
}

// Result is the outcome of one Job. On cache or single-flight hits the
// embedded *core.Result is shared between callers and must be treated
// as read-only (Results are never mutated by the engine).
type Result struct {
	*core.Result

	// Tag echoes Job.Tag.
	Tag string
	// Key is the job's canonical cache key.
	Key Key
	// CacheHit reports that the result was served from the cache or
	// joined an identical in-flight compilation.
	CacheHit bool
	// Err is the compile error, if any; the embedded Result is nil
	// when Err is non-nil.
	Err error
}

// Stats is a snapshot of engine counters.
type Stats struct {
	Jobs     int64 // jobs processed
	Compiles int64 // jobs that ran the SABRE search
	Hits     int64 // jobs served from the result cache
	Shared   int64 // jobs that joined an identical in-flight compile
	Errors   int64 // jobs that failed
	Cached   int   // entries currently in the cache
}

// Config configures an Engine; the zero value picks sensible defaults.
type Config struct {
	// Workers bounds the number of concurrent compilations
	// (default GOMAXPROCS).
	Workers int

	// CacheEntries is the total result-cache capacity in entries
	// (default 1024). Negative disables caching; zero selects the
	// default.
	CacheEntries int

	// CacheShards is the shard count of the result cache, rounded up
	// to a power of two (default 16). More shards means less lock
	// contention between workers.
	CacheShards int

	// BaseSeed is mixed into the derived seed of every job whose
	// Options.Seed is zero. Two engines with the same BaseSeed produce
	// identical results for identical jobs; changing it re-randomizes
	// the whole batch while staying deterministic. Jobs with an
	// explicit Options.Seed ignore it.
	BaseSeed int64
}

const (
	defaultCacheEntries = 1024
	defaultCacheShards  = 16
)

// ErrClosed is reported by jobs submitted after Close.
var ErrClosed = errors.New("batch: engine closed")

// errNilJob is reported for jobs missing a circuit or device.
var errNilJob = errors.New("batch: job needs a non-nil Circuit and Device")

// Engine is a concurrent compilation engine. Create one with
// NewEngine, share it freely between goroutines, and Close it when
// done to release the worker pool.
type Engine struct {
	cfg   Config
	tasks chan task
	wg    sync.WaitGroup
	cache *resultCache

	closeOnce sync.Once
	closed    atomic.Bool

	// inflight deduplicates concurrent identical jobs (single-flight).
	mu       sync.Mutex
	inflight map[Key]*flight

	jobs     atomic.Int64
	compiles atomic.Int64
	hits     atomic.Int64
	shared   atomic.Int64
	errs     atomic.Int64
}

type task struct {
	job  Job
	out  *Result
	done func()
}

type flight struct {
	wg  sync.WaitGroup
	res *core.Result
	err error
}

// NewEngine starts an engine with cfg.Workers worker goroutines.
func NewEngine(cfg Config) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = defaultCacheEntries
	}
	if cfg.CacheShards <= 0 {
		cfg.CacheShards = defaultCacheShards
	}
	e := &Engine{
		cfg:      cfg,
		tasks:    make(chan task),
		cache:    newResultCache(cfg.CacheEntries, cfg.CacheShards),
		inflight: make(map[Key]*flight),
	}
	e.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go e.worker()
	}
	return e
}

// Workers returns the pool size.
func (e *Engine) Workers() int { return e.cfg.Workers }

// Close drains the pool. Jobs already accepted complete; jobs
// submitted afterwards fail with ErrClosed. Close is idempotent and
// safe to call concurrently with submissions.
func (e *Engine) Close() {
	e.closeOnce.Do(func() {
		e.closed.Store(true)
		close(e.tasks)
		e.wg.Wait()
	})
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Jobs:     e.jobs.Load(),
		Compiles: e.compiles.Load(),
		Hits:     e.hits.Load(),
		Shared:   e.shared.Load(),
		Errors:   e.errs.Load(),
		Cached:   e.cache.len(),
	}
}

// CompileBatch compiles all jobs concurrently on the worker pool and
// returns results in job order. It blocks until every job finishes.
// Safe to call from many goroutines at once; overlapping batches share
// the pool, the cache, and in-flight compilations.
func (e *Engine) CompileBatch(jobs []Job) []Result {
	results := make([]Result, len(jobs))
	var wg sync.WaitGroup
	wg.Add(len(jobs))
	for i := range jobs {
		e.enqueue(task{job: jobs[i], out: &results[i], done: wg.Done})
	}
	wg.Wait()
	return results
}

// Submit enqueues one job and returns a channel that yields its Result
// exactly once. The channel is buffered: the caller may drop it
// without leaking a goroutine.
func (e *Engine) Submit(job Job) <-chan Result {
	ch := make(chan Result, 1)
	out := new(Result)
	e.enqueue(task{job: job, out: out, done: func() { ch <- *out }})
	return ch
}

// enqueue hands a task to the pool, failing fast when the engine is
// closed. The closed check plus the send race is resolved by the
// recover: a send on the closed channel can only happen during
// shutdown, where ErrClosed is the correct answer.
func (e *Engine) enqueue(t task) {
	if e.closed.Load() {
		t.out.Err = ErrClosed
		t.done()
		return
	}
	defer func() {
		if recover() != nil {
			t.out.Err = ErrClosed
			t.done()
		}
	}()
	e.tasks <- t
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for t := range e.tasks {
		e.process(t)
	}
}

// process executes one job: cache lookup, single-flight join, or a
// real compile with the job's derived seed.
func (e *Engine) process(t task) {
	defer t.done()
	e.jobs.Add(1)

	job := t.job
	t.out.Tag = job.Tag
	if job.Circuit == nil || job.Device == nil {
		t.out.Err = errNilJob
		e.errs.Add(1)
		return
	}

	// A fully zero Options means "the paper's defaults": substitute
	// them before hashing. core's normalized() cannot do this — the
	// zero Heuristic and zero DecayDelta are valid non-default
	// settings — so only the all-zero struct is rewritten; the seed
	// stays zero to request content-derived seeding.
	if job.Options == (core.Options{}) {
		job.Options = core.DefaultOptions()
		job.Options.Seed = 0
	}

	key := KeyOf(job)
	t.out.Key = key

	if res, ok := e.cache.get(key); ok {
		t.out.Result = res
		t.out.CacheHit = true
		e.hits.Add(1)
		return
	}

	// Single-flight: the first goroutine in compiles; the rest wait on
	// its flight and share the outcome. Progress is guaranteed because
	// a leader never waits — it is the one running the compile.
	e.mu.Lock()
	if f, ok := e.inflight[key]; ok {
		e.mu.Unlock()
		f.wg.Wait()
		t.out.Result, t.out.Err = f.res, f.err
		t.out.CacheHit = t.out.Err == nil
		e.shared.Add(1)
		if t.out.Err != nil {
			e.errs.Add(1)
		}
		return
	}
	// Re-check the cache before becoming leader: a previous leader
	// publishes to the cache before leaving the inflight map, so this
	// closes the window where a job misses both and recompiles.
	if res, ok := e.cache.get(key); ok {
		e.mu.Unlock()
		t.out.Result = res
		t.out.CacheHit = true
		e.hits.Add(1)
		return
	}
	f := new(flight)
	f.wg.Add(1)
	e.inflight[key] = f
	e.mu.Unlock()

	opts := deriveSeed(key, e.cfg.BaseSeed, job.Options)
	res, err := core.Compile(job.Circuit, job.Device, opts)
	e.compiles.Add(1)

	f.res, f.err = res, err
	if err == nil {
		e.cache.add(key, res)
	} else {
		e.errs.Add(1)
	}
	e.mu.Lock()
	delete(e.inflight, key)
	e.mu.Unlock()
	f.wg.Done()

	t.out.Result, t.out.Err = res, err
}
