// Package batch provides a concurrent batch-compilation engine on top
// of the core SABRE compiler: a bounded worker pool that keeps every
// core busy across many circuit/device/options jobs, a sharded LRU
// result cache keyed by a canonical structural hash so repeated
// workloads hit memory instead of re-running the search, and
// deterministic per-job seed derivation so a batch compiles to
// byte-identical results regardless of worker count or scheduling
// order.
//
// The engine is long-lived and safe for concurrent use: a service can
// share one Engine across all request handlers, and overlapping
// batches naturally deduplicate — identical jobs in flight at the same
// time are compiled once and the result shared (single-flight).
package batch

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/route"
)

// Job is one compilation request: route Circuit onto Device under
// Options, then run the requested post-routing passes. The zero
// Options value selects the paper's defaults (including the decay
// heuristic) with a seed derived from the job's content (see
// Config.BaseSeed); partially-filled Options are used as given, with
// core's usual zero-field normalization.
type Job struct {
	Circuit *circuit.Circuit
	Device  *arch.Device
	Options core.Options

	// Trials, when positive, overrides Options.Trials — the best-of-N
	// fan-out width of the routing stage. It joins the cache key (via
	// the effective trial count), so jobs differing only in trials
	// never share a cached result.
	Trials int

	// Route names the routing backend from the router registry
	// (sabre, greedy, astar, anneal, tokenswap, ...); empty selects
	// the default sabre trial runner. The canonical name joins the
	// cache key, so jobs differing only in backend never share a
	// cached result. Unknown names fail the job.
	Route string

	// Passes names post-routing pipeline passes to run on the routed
	// circuit, in order: basis, peephole, schedule, verify. The list
	// joins the cache key. Unknown or non-post-routing names fail the
	// job.
	Passes []string

	// Tag is an optional caller label carried into the Result. It is
	// not part of the cache key.
	//sabre:nokey caller label echoed into Result; never affects compilation
	Tag string

	// UseCalibration routes the job under the device's live calibration
	// snapshot (arch.Device.Calibration): the engine resolves the
	// snapshot once per job, substitutes its noise model for
	// Options.Noise, and records the snapshot version in CalVersion —
	// which joins the cache key, so cached results stop being served
	// the moment the device is recalibrated. On a never-calibrated
	// device this is a no-op. Mutually overriding with an explicit
	// Options.Noise: the snapshot wins.
	UseCalibration bool

	// CalVersion is the calibration snapshot version the job is pinned
	// to (zero = no calibration). It joins the cache key. Callers
	// normally leave it zero and set UseCalibration; the fleet
	// scheduler sets it (with Options.Noise) to pin a job to the exact
	// snapshot it scored.
	CalVersion uint64
}

// ResolveCalibration pins the job to its device's current calibration
// snapshot: when UseCalibration is set and the device has one, the
// snapshot's noise model replaces Options.Noise and CalVersion records
// the version. The flag is consumed so resolution is idempotent — the
// engine resolves once per job, before hashing, and KeyOf resolves
// defensively for callers hashing jobs themselves.
func (j Job) ResolveCalibration() Job {
	if !j.UseCalibration {
		return j
	}
	j.UseCalibration = false
	if j.Device == nil {
		return j
	}
	if snap := j.Device.Calibration(); snap != nil {
		j.Options.Noise = snap.Model
		j.CalVersion = snap.Version
	}
	return j
}

// Result is the outcome of one Job. On cache or single-flight hits the
// embedded *core.Result, Final circuit, and PassMetrics are shared
// between callers and must be treated as read-only (the engine never
// mutates them).
type Result struct {
	*core.Result

	// Final is the circuit after all requested passes ran (equal to
	// Result.Circuit when no post-routing passes were requested).
	Final *circuit.Circuit

	// PassMetrics records per-pass timing and circuit snapshots for
	// the route stage and every requested pass, in execution order.
	PassMetrics []pipeline.PassMetric

	// Tag echoes Job.Tag.
	Tag string
	// Key is the job's canonical cache key.
	Key Key
	// CalVersion is the calibration snapshot version the job compiled
	// under (zero = no calibration pinned).
	CalVersion uint64
	// CacheHit reports that the result was served from the cache or
	// joined an identical in-flight compilation.
	CacheHit bool
	// Err is the compile error, if any; the embedded Result is nil
	// when Err is non-nil.
	Err error
}

// outcome is the shareable product of one pipeline run — what the
// cache stores and single-flight followers receive.
type outcome struct {
	res     *core.Result
	final   *circuit.Circuit
	metrics []pipeline.PassMetric
}

// fill copies an outcome into a caller-visible Result.
func (r *Result) fill(o *outcome) {
	r.Result = o.res
	r.Final = o.final
	r.PassMetrics = o.metrics
}

// Stats is a snapshot of engine counters.
type Stats struct {
	Jobs     int64 // jobs processed
	Compiles int64 // jobs that ran the SABRE search
	Hits     int64 // jobs served from the result cache
	Shared   int64 // jobs that joined an identical in-flight compile
	Errors   int64 // jobs that failed
	Streams  int64 // streaming compilations served (CompileStream)
	Cached   int   // entries currently in the cache
}

// Config configures an Engine; the zero value picks sensible defaults.
type Config struct {
	// Workers bounds the number of concurrent compilations
	// (default GOMAXPROCS).
	Workers int

	// CacheEntries is the total result-cache capacity in entries
	// (default 1024). Negative disables caching; zero selects the
	// default.
	CacheEntries int

	// CacheShards is the shard count of the result cache, rounded up
	// to a power of two (default 16). More shards means less lock
	// contention between workers.
	CacheShards int

	// BaseSeed is mixed into the derived seed of every job whose
	// Options.Seed is zero. Two engines with the same BaseSeed produce
	// identical results for identical jobs; changing it re-randomizes
	// the whole batch while staying deterministic. Jobs with an
	// explicit Options.Seed ignore it.
	BaseSeed int64

	// TrialWorkers bounds the per-job routing-trial fan-out (default
	// 1: jobs are the engine's unit of parallelism, so a saturated
	// batch should not oversubscribe). A daemon serving sparse
	// single-job traffic sets this higher to parallelise each job's
	// best-of-N trials instead. Results are identical either way.
	TrialWorkers int

	// TrialPatience, when positive, runs the default sabre backend's
	// trials in adaptive mode: stop fanning out seeds after this many
	// consecutive non-improving trials. Like BaseSeed it is engine
	// configuration that affects results without joining the cache
	// key — every job in the engine compiles under the same patience,
	// and the outcome is still deterministic at any worker count.
	TrialPatience int
}

const (
	defaultCacheEntries = 1024
	defaultCacheShards  = 16
)

// ErrClosed is reported by jobs submitted after Close.
var ErrClosed = errors.New("batch: engine closed")

// errNilJob is reported for jobs missing a circuit or device.
var errNilJob = errors.New("batch: job needs a non-nil Circuit and Device")

// Engine is a concurrent compilation engine. Create one with
// NewEngine, share it freely between goroutines, and Close it when
// done to release the worker pool.
type Engine struct {
	cfg   Config
	tasks chan task
	wg    sync.WaitGroup
	cache *resultCache

	closeOnce sync.Once
	closed    atomic.Bool

	// inflight deduplicates concurrent identical jobs (single-flight).
	mu       sync.Mutex
	inflight map[Key]*flight

	jobs     atomic.Int64
	compiles atomic.Int64
	hits     atomic.Int64
	shared   atomic.Int64
	errs     atomic.Int64
	streams  atomic.Int64
}

type task struct {
	ctx  context.Context
	job  Job
	out  *Result
	done func()
}

type flight struct {
	wg  sync.WaitGroup
	res *outcome
	err error
}

// NewEngine starts an engine with cfg.Workers worker goroutines.
func NewEngine(cfg Config) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.TrialWorkers <= 0 {
		cfg.TrialWorkers = 1
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = defaultCacheEntries
	}
	if cfg.CacheShards <= 0 {
		cfg.CacheShards = defaultCacheShards
	}
	e := &Engine{
		cfg:      cfg,
		tasks:    make(chan task),
		cache:    newResultCache(cfg.CacheEntries, cfg.CacheShards),
		inflight: make(map[Key]*flight),
	}
	e.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go e.worker()
	}
	return e
}

// Workers returns the pool size.
func (e *Engine) Workers() int { return e.cfg.Workers }

// Close drains the pool. Jobs already accepted complete; jobs
// submitted afterwards fail with ErrClosed. Close is idempotent and
// safe to call concurrently with submissions.
func (e *Engine) Close() {
	e.closeOnce.Do(func() {
		e.closed.Store(true)
		close(e.tasks)
		e.wg.Wait()
	})
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Jobs:     e.jobs.Load(),
		Compiles: e.compiles.Load(),
		Hits:     e.hits.Load(),
		Shared:   e.shared.Load(),
		Errors:   e.errs.Load(),
		Streams:  e.streams.Load(),
		Cached:   e.cache.len(),
	}
}

// CompileBatch compiles all jobs concurrently on the worker pool and
// returns results in job order. It blocks until every job finishes.
// Safe to call from many goroutines at once; overlapping batches share
// the pool, the cache, and in-flight compilations.
func (e *Engine) CompileBatch(jobs []Job) []Result {
	return e.CompileBatchContext(context.Background(), jobs)
}

// CompileBatchContext is CompileBatch with cancellation: jobs not yet
// started when ctx is cancelled fail fast with ctx's error, and
// running compilations stop at their next trial boundary. It still
// blocks until every job has settled.
func (e *Engine) CompileBatchContext(ctx context.Context, jobs []Job) []Result {
	results := make([]Result, len(jobs))
	var wg sync.WaitGroup
	wg.Add(len(jobs))
	for i := range jobs {
		e.enqueue(task{ctx: ctx, job: jobs[i], out: &results[i], done: wg.Done})
	}
	wg.Wait()
	return results
}

// Submit enqueues one job and returns a channel that yields its Result
// exactly once. The channel is buffered: the caller may drop it
// without leaking a goroutine.
func (e *Engine) Submit(job Job) <-chan Result {
	return e.SubmitContext(context.Background(), job)
}

// SubmitContext is Submit with cancellation. A job whose ctx is
// cancelled before a worker picks it up fails with ctx's error without
// compiling; a cancelled in-flight compilation stops at its next trial
// boundary — a disconnected client stops burning workers.
func (e *Engine) SubmitContext(ctx context.Context, job Job) <-chan Result {
	ch := make(chan Result, 1)
	out := new(Result)
	e.enqueue(task{ctx: ctx, job: job, out: out, done: func() { ch <- *out }})
	return ch
}

// enqueue hands a task to the pool, failing fast when the engine is
// closed. The closed check plus the send race is resolved by the
// recover: a send on the closed channel can only happen during
// shutdown, where ErrClosed is the correct answer.
func (e *Engine) enqueue(t task) {
	if e.closed.Load() {
		t.out.Err = ErrClosed
		t.done()
		return
	}
	defer func() {
		if recover() != nil {
			t.out.Err = ErrClosed
			t.done()
		}
	}()
	e.tasks <- t
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for t := range e.tasks {
		e.process(t)
	}
}

// process executes one job: cache lookup, single-flight join, or a
// real pipeline run with the job's derived seed.
func (e *Engine) process(t task) {
	defer t.done()
	e.jobs.Add(1)

	ctx := t.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	job := t.job
	t.out.Tag = job.Tag
	if job.Circuit == nil || job.Device == nil {
		t.out.Err = errNilJob
		e.errs.Add(1)
		return
	}
	// A cancelled job fails before compiling: the submitter is gone.
	if err := ctx.Err(); err != nil {
		t.out.Err = err
		e.errs.Add(1)
		return
	}

	// A fully zero Options means "the paper's defaults": substitute
	// them before hashing. core's normalized() cannot do this — the
	// zero Heuristic and zero DecayDelta are valid non-default
	// settings — so only the all-zero struct is rewritten; the seed
	// stays zero to request content-derived seeding.
	if job.Options == (core.Options{}) {
		job.Options = core.DefaultOptions()
		job.Options.Seed = 0
	}
	// The trial override folds into Options before hashing, so the
	// effective trial count is part of the cache identity.
	if job.Trials > 0 {
		job.Options.Trials = job.Trials
	}
	// Pin the job to the device's live calibration before hashing: the
	// snapshot version joins the cache key, so a recalibrated device
	// can never serve results routed under old noise data.
	job = job.ResolveCalibration()
	t.out.CalVersion = job.CalVersion
	job.Passes = normalizePasses(job.Passes)
	if err := pipeline.PostRouting(job.Passes); err != nil {
		t.out.Err = err
		e.errs.Add(1)
		return
	}
	// Resolve the routing backend up front: an unknown name fails the
	// job before it can poison the cache key space, and the canonical
	// name is what KeyOf hashes (aliases share cache entries).
	canonicalRoute, err := route.Canonical(job.Route)
	if err != nil {
		t.out.Err = err
		e.errs.Add(1)
		return
	}
	job.Route = canonicalRoute

	key := KeyOf(job)
	t.out.Key = key

	// Single-flight: the first goroutine in compiles; the rest wait on
	// its flight and share the outcome. Progress is guaranteed because
	// a leader never waits — it is the one running the compile. A
	// follower whose leader was cancelled by its *own* caller retries
	// (the dead flight is out of the inflight map by then), so one
	// client's disconnect never fails another client's identical
	// request; any other leader error is shared as-is, and errors are
	// never cached, so the next identical job recompiles.
	var f *flight
	for {
		if o, ok := e.cache.get(key); ok {
			t.out.fill(o)
			t.out.CacheHit = true
			e.hits.Add(1)
			return
		}
		e.mu.Lock()
		if lead, ok := e.inflight[key]; ok {
			e.mu.Unlock()
			lead.wg.Wait()
			if lead.err != nil {
				if isContextErr(lead.err) && ctx.Err() == nil {
					continue // leader's caller bailed; ours did not
				}
				t.out.Err = lead.err
				e.shared.Add(1)
				e.errs.Add(1)
				return
			}
			t.out.fill(lead.res)
			t.out.CacheHit = true
			e.shared.Add(1)
			return
		}
		// Re-check the cache before becoming leader: a previous leader
		// publishes to the cache before leaving the inflight map, so
		// this closes the window where a job misses both and
		// recompiles. (The loop-top get runs unlocked and can race a
		// departing leader; this one cannot.)
		if o, ok := e.cache.get(key); ok {
			e.mu.Unlock()
			t.out.fill(o)
			t.out.CacheHit = true
			e.hits.Add(1)
			return
		}
		f = new(flight)
		f.wg.Add(1)
		e.inflight[key] = f
		e.mu.Unlock()
		break
	}

	opts := deriveSeed(key, e.cfg.BaseSeed, job.Options)
	o, err := e.runPipeline(ctx, job, opts)
	e.compiles.Add(1)

	f.res, f.err = o, err
	if err == nil {
		e.cache.add(key, o)
	} else {
		e.errs.Add(1)
	}
	e.mu.Lock()
	delete(e.inflight, key)
	e.mu.Unlock()
	f.wg.Done()

	if err != nil {
		t.out.Err = err
		return
	}
	t.out.fill(o)
}

// PanicError is a panic recovered from a job's pipeline run: the
// panic value plus the goroutine stack at the point of the panic. The
// engine converts pipeline/router panics into this error instead of
// letting one poisoned circuit kill the process — the job fails, the
// worker (and every other job) keeps running. It is never cached, so
// a subsequent identical job recompiles.
type PanicError struct {
	// Value is what was passed to panic().
	Value any
	// Stack is the formatted goroutine stack captured in the deferred
	// recover.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("batch: pipeline panic: %v\n%s", e.Value, e.Stack)
}

// runPipeline builds and runs the job's pass pipeline: the routing
// stage (the bounded trial runner by default, or any registry backend
// the job names) plus the requested post-routing passes. A panic
// anywhere inside the pipeline — a router bug, a poisoned circuit —
// is recovered into a PanicError: it fails this job only, never the
// worker.
func (e *Engine) runPipeline(ctx context.Context, job Job, opts core.Options) (o *outcome, err error) {
	defer func() {
		if r := recover(); r != nil {
			o, err = nil, &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return e.runPipelineNoRecover(ctx, job, opts)
}

func (e *Engine) runPipelineNoRecover(ctx context.Context, job Job, opts core.Options) (*outcome, error) {
	rp := pipeline.RoutePass{Workers: e.cfg.TrialWorkers, Patience: e.cfg.TrialPatience}
	if job.Route != "" && job.Route != "sabre" {
		r, err := route.New(job.Route)
		if err != nil {
			return nil, err
		}
		rp = pipeline.RoutePass{Router: r}
	}
	passes := []pipeline.Pass{rp}
	for _, name := range job.Passes {
		p, err := pipeline.ByName(name)
		if err != nil {
			return nil, err
		}
		passes = append(passes, p)
	}
	pc, err := pipeline.New(passes...).Compile(ctx, job.Circuit, job.Device, opts)
	if err != nil {
		return nil, err
	}
	return &outcome{res: pc.Result, final: pc.Circuit, metrics: pc.Metrics}, nil
}

// normalizePasses lowercases, trims, drops empty pass names, and
// canonicalizes aliases (opt→peephole, sched→schedule) so spelling
// variations of the same pipeline share cache entries.
func normalizePasses(names []string) []string {
	var out []string
	for _, name := range names {
		name = strings.ToLower(strings.TrimSpace(name))
		switch name {
		case "":
			continue
		case "opt":
			name = "peephole"
		case "sched":
			name = "schedule"
		}
		out = append(out, name)
	}
	return out
}

// isContextErr reports whether err is a cancellation/deadline error.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
