package batch

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/route"
	"repro/internal/verify"
	"repro/internal/workloads"
)

// TestRouteRoundTripsThroughCacheKey asserts the registry/cache-key
// contract: every registered router yields a distinct key on an
// otherwise identical job (no collisions), aliases and the implicit
// default collapse onto their canonical key (full sharing), and the
// key is stable across calls.
func TestRouteRoundTripsThroughCacheKey(t *testing.T) {
	base := Job{Circuit: workloads.GHZ(4), Device: arch.Line(5), Options: core.DefaultOptions()}

	seen := map[Key]string{}
	for _, name := range route.Names() {
		job := base
		job.Route = name
		key := KeyOf(job)
		if prev, dup := seen[key]; dup {
			t.Fatalf("router %q collides with %q in the cache key", name, prev)
		}
		seen[key] = name
		if again := KeyOf(job); again != key {
			t.Fatalf("router %q: key not stable across calls", name)
		}
	}

	// The implicit default and the spelled-out aliases share the
	// canonical entry.
	def := base
	sabre := base
	sabre.Route = "sabre"
	trialsAlias := base
	trialsAlias.Route = "trials"
	if KeyOf(def) != KeyOf(sabre) || KeyOf(def) != KeyOf(trialsAlias) {
		t.Fatal(`"", "sabre" and "trials" must share one cache entry`)
	}
	bka := base
	bka.Route = "bka"
	astar := base
	astar.Route = "astar"
	if KeyOf(bka) != KeyOf(astar) {
		t.Fatal(`"bka" and "astar" must share one cache entry`)
	}
}

// TestEngineRunsEveryRegisteredRouter drives one tiny job per backend
// through a shared engine: every result must be hardware-compliant,
// and none may be served from another backend's cache entry.
func TestEngineRunsEveryRegisteredRouter(t *testing.T) {
	eng := NewEngine(Config{Workers: 2})
	defer eng.Close()

	dev := arch.IBMQ20Tokyo()
	circ := workloads.QFT(5)
	var names []string
	for _, name := range route.Names() {
		// The scripted fault router (registered by other tests in this
		// package, and by sabred -fault-routes) panics by design; its
		// isolation has its own test.
		if name == "panic" {
			continue
		}
		names = append(names, name)
	}
	jobs := make([]Job, len(names))
	for i, name := range names {
		jobs[i] = Job{Circuit: circ, Device: dev, Route: name, Tag: name}
	}
	results := eng.CompileBatch(jobs)
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("%s: %v", names[i], res.Err)
		}
		if res.CacheHit {
			t.Fatalf("%s: cold compile served from cache (key collision?)", names[i])
		}
		if err := verify.HardwareCompliant(res.Final.DecomposeSwaps(), dev.Connected); err != nil {
			t.Fatalf("%s: %v", names[i], err)
		}
	}
	if st := eng.Stats(); st.Compiles != int64(len(names)) {
		t.Fatalf("compiles = %d, want %d", st.Compiles, len(names))
	}
}

func TestEngineRejectsUnknownRouter(t *testing.T) {
	eng := NewEngine(Config{Workers: 1})
	defer eng.Close()
	res := <-eng.Submit(Job{Circuit: workloads.GHZ(3), Device: arch.Line(3), Route: "warp-drive"})
	if res.Err == nil {
		t.Fatal("unknown router accepted")
	}
	if st := eng.Stats(); st.Compiles != 0 {
		t.Fatal("unknown router reached the compiler")
	}
}
