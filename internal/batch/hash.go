package batch

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sort"
	"strings"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/route"
)

// Key is the canonical identity of a compilation job: a digest of the
// circuit structure, the device, and every Options field that can
// change the compile result. Two jobs with equal Keys produce
// byte-identical routed circuits, which is what lets the engine share
// cached results safely.
type Key [sha256.Size]byte

// keyVersion is bumped whenever the encoding below changes, so stale
// digests can never alias across engine versions (relevant once keys
// are persisted or exchanged between processes). Version 2 added the
// post-routing pass list; version 3 added the routing-backend name;
// version 4 added the calibration snapshot version, so results routed
// under one calibration are never served after a recalibration.
const keyVersion = 4

// KeyOf computes the cache key of a job. The encoding is canonical:
// field order is fixed, floats are encoded by their IEEE-754 bits, and
// map-backed structures (the noise model) are sorted before hashing.
// Options.ParallelTrials is deliberately excluded — the sequential and
// parallel trial paths return bit-identical results, so they must
// share cache entries.
func KeyOf(job Job) Key {
	// Defensive for callers hashing unresolved jobs directly; inside
	// the engine this is a no-op (process resolves before hashing).
	job = job.ResolveCalibration()
	h := sha256.New()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	i64 := func(v int64) { u64(uint64(v)) }
	f64 := func(v float64) { u64(math.Float64bits(v)) }

	u64(keyVersion)

	// Device: name alone is not unique (custom devices may collide), so
	// the size and full edge list are folded in. Edges() is canonical:
	// construction order with each edge normalized to A < B. Every
	// variable-length section carries a length prefix so distinct
	// (device, circuit) byte streams can never alias each other.
	name := job.Device.Name()
	u64(uint64(len(name)))
	h.Write([]byte(name))
	i64(int64(job.Device.NumQubits()))
	u64(uint64(len(job.Device.Edges())))
	for _, e := range job.Device.Edges() {
		i64(int64(e.A))
		i64(int64(e.B))
	}

	// Circuit structure. The name is excluded: it is reporting metadata
	// and does not affect routing.
	c := job.Circuit
	i64(int64(c.NumQubits()))
	i64(int64(c.NumGates()))
	for _, g := range c.Gates() {
		u64(uint64(g.Kind))
		i64(int64(g.Q0))
		i64(int64(g.Q1))
		for _, p := range g.Params {
			f64(p)
		}
	}

	// Options, every result-affecting field. The Trials override is
	// folded in first so it is always part of the cache identity.
	o := job.Options
	if job.Trials > 0 {
		o.Trials = job.Trials
	}
	u64(uint64(o.Heuristic))
	i64(int64(o.ExtendedSetSize))
	f64(o.ExtendedSetWeight)
	f64(o.DecayDelta)
	i64(int64(o.DecayResetInterval))
	i64(int64(o.Trials))
	i64(int64(o.Traversals))
	i64(o.Seed)
	i64(int64(o.MaxStall))
	if o.UseBridge {
		u64(1)
	} else {
		u64(0)
	}
	f64(o.MaxEdgeError)
	hashNoise(h, u64, f64, o.Noise)
	// Calibration snapshot version: distinguishes results routed under
	// successive recalibrations even beyond the noise content above
	// (and is what lets a service observe the expected cache miss after
	// a recalibration lands).
	u64(job.CalVersion)

	// Routing backend, in canonical registry form so aliases (bka,
	// trials) and the implicit default ("" = sabre) share cache
	// entries. An unregistered name hashes as spelled — the job fails
	// before compiling, and errors are never cached, so the entry can
	// never be served.
	routeName, err := route.Canonical(job.Route)
	if err != nil {
		routeName = strings.ToLower(strings.TrimSpace(job.Route))
	}
	u64(uint64(len(routeName)))
	h.Write([]byte(routeName))

	// Post-routing pass list, normalized so spelling variants share
	// cache entries. The effective trial count is covered above via
	// o.Trials; callers overriding Job.Trials must fold it in first
	// (the engine does).
	passes := normalizePasses(job.Passes)
	u64(uint64(len(passes)))
	for _, name := range passes {
		u64(uint64(len(name)))
		h.Write([]byte(name))
	}

	var k Key
	h.Sum(k[:0])
	return k
}

// hashNoise folds a noise model into the digest with its edge map in
// sorted order (Go map iteration order is randomized).
func hashNoise(h interface{ Write([]byte) (int, error) }, u64 func(uint64), f64 func(float64), m *arch.NoiseModel) {
	if m == nil {
		u64(0)
		return
	}
	u64(1)
	f64(m.Default)
	u64(uint64(len(m.EdgeError)))
	edges := make([]arch.Edge, 0, len(m.EdgeError))
	//sabre:nondeterm-ok keys collected then sorted below
	for e := range m.EdgeError {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].A != edges[j].A {
			return edges[i].A < edges[j].A
		}
		return edges[i].B < edges[j].B
	})
	for _, e := range edges {
		u64(uint64(e.A)<<32 | uint64(uint32(e.B)))
		f64(m.EdgeError[e])
	}
}

// deriveSeed returns the effective SABRE seed for a job: an explicit
// caller seed is kept, while the zero seed is replaced by a value
// derived from the job's structural key mixed with the engine's base
// seed. The derived seed depends only on job content — never on
// submission index, worker id, or scheduling — so batch results are
// reproducible under any worker count and any job order.
func deriveSeed(key Key, base int64, opts core.Options) core.Options {
	if opts.Seed != 0 {
		return opts
	}
	mixed := binary.LittleEndian.Uint64(key[:8]) ^ uint64(base)*0x9e3779b97f4a7c15
	seed := int64(mixed &^ (1 << 63)) // keep it positive for readability in logs
	if seed == 0 {
		seed = 1
	}
	opts.Seed = seed
	return opts
}

// Fingerprint is a cheap structural digest of a circuit alone (no
// device or options), handy for logging and for tests that assert two
// routed circuits are structurally identical without formatting QASM.
func Fingerprint(c *circuit.Circuit) uint64 {
	h := sha256.New()
	var buf [8]byte
	w := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	w(uint64(c.NumQubits()))
	for _, g := range c.Gates() {
		w(uint64(g.Kind))
		w(uint64(uint32(g.Q0))<<32 | uint64(uint32(g.Q1)))
		for _, p := range g.Params {
			w(math.Float64bits(p))
		}
	}
	return binary.LittleEndian.Uint64(h.Sum(nil)[:8])
}
