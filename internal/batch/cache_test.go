package batch

import (
	"encoding/binary"
	"sync"
	"testing"
)

// fakeKey builds a key that lands in a chosen shard (the shard is
// selected by the first byte) with a distinct identity.
func fakeKey(shard byte, id uint64) Key {
	var k Key
	k[0] = shard
	binary.LittleEndian.PutUint64(k[1:9], id)
	return k
}

func TestCacheLRUEviction(t *testing.T) {
	// 4 entries over 1 shard: inserting 5 keys into the same shard
	// evicts exactly the least-recently-used one.
	c := newResultCache(4, 1)
	results := make([]*outcome, 5)
	for i := range results {
		results[i] = &outcome{}
		c.add(fakeKey(0, uint64(i)), results[i])
	}
	if c.len() != 4 {
		t.Fatalf("len = %d, want 4", c.len())
	}
	if _, ok := c.get(fakeKey(0, 0)); ok {
		t.Fatal("oldest entry survived eviction")
	}
	for i := 1; i < 5; i++ {
		got, ok := c.get(fakeKey(0, uint64(i)))
		if !ok || got != results[i] {
			t.Fatalf("entry %d lost or wrong", i)
		}
	}

	// Touching an entry protects it: get(1) then add(5) evicts 2.
	c.get(fakeKey(0, 1))
	c.add(fakeKey(0, 5), &outcome{})
	if _, ok := c.get(fakeKey(0, 1)); !ok {
		t.Fatal("recently-used entry evicted")
	}
	if _, ok := c.get(fakeKey(0, 2)); ok {
		t.Fatal("LRU entry survived")
	}
}

func TestCacheSharding(t *testing.T) {
	c := newResultCache(64, 4)
	if len(c.shards) != 4 {
		t.Fatalf("shards = %d, want 4", len(c.shards))
	}
	// Keys differing only in their first byte land in different shards.
	seen := make(map[*cacheShard]bool)
	for b := 0; b < 4; b++ {
		seen[c.shard(fakeKey(byte(b), 1))] = true
	}
	if len(seen) != 4 {
		t.Fatalf("4 distinct lead bytes hit %d shards", len(seen))
	}

	// With more than 256 shards, selection must use more than the
	// first key byte or shards past 255 would never be addressed.
	wide := newResultCache(4096, 1024)
	if len(wide.shards) != 1024 {
		t.Fatalf("shards = %d, want 1024", len(wide.shards))
	}
	var k Key
	k[1] = 1 // second byte only: lands past shard 255 iff >1 byte is used
	if wide.shard(k) == wide.shard(Key{}) {
		t.Fatal("shard selection ignores everything but the first key byte")
	}

	// Shard counts round up to a power of two and never exceed capacity.
	if got := len(newResultCache(64, 3).shards); got != 4 {
		t.Fatalf("3 shards rounded to %d, want 4", got)
	}
	if got := len(newResultCache(2, 16).shards); got != 2 {
		t.Fatalf("capacity 2 with 16 shards produced %d shards", got)
	}
}

func TestCacheDisabled(t *testing.T) {
	var c *resultCache // capacity <= 0 yields a nil cache
	if newResultCache(0, 4) != nil || newResultCache(-1, 4) != nil {
		t.Fatal("zero/negative capacity should disable the cache")
	}
	// All operations are nil-safe no-ops.
	c.add(fakeKey(0, 1), &outcome{})
	if _, ok := c.get(fakeKey(0, 1)); ok {
		t.Fatal("nil cache returned a hit")
	}
	if c.len() != 0 {
		t.Fatal("nil cache has entries")
	}
}

// TestCacheConcurrent exercises the shard locks under -race: many
// goroutines adding and getting overlapping keys across shards.
func TestCacheConcurrent(t *testing.T) {
	c := newResultCache(256, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fakeKey(byte(i%16), uint64(i%32))
				if i%3 == 0 {
					c.add(k, &outcome{})
				} else {
					c.get(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.len() > 256 {
		t.Fatalf("cache overflowed: %d entries", c.len())
	}
}
