package batch

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/qasm"
	"repro/internal/workloads"
)

type collectStreamSink struct{ gates []circuit.Gate }

func (s *collectStreamSink) Emit(chunk []circuit.Gate) error {
	s.gates = append(s.gates, chunk...)
	return nil
}

func TestCompileStreamMatchesMaterialized(t *testing.T) {
	eng := NewEngine(Config{Workers: 2})
	defer eng.Close()
	dev := arch.IBMQ20Tokyo()
	circ := workloads.RandomCircuit("batch-stream", 16, 4000, 0.55, 3)

	opts := core.DefaultOptions()
	var want collectStreamSink
	ref, err := core.RouteStreamMaterialized(context.Background(), circ, dev,
		opts, core.StreamOptions{}, &want)
	if err != nil {
		t.Fatal(err)
	}

	var got collectStreamSink
	res, err := eng.CompileStream(context.Background(), StreamJob{
		Source:  core.NewCircuitSource(circ),
		Device:  dev,
		Options: opts,
	}, &got)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.gates) != len(want.gates) {
		t.Fatalf("engine stream emitted %d gates, oracle %d", len(got.gates), len(want.gates))
	}
	for i := range got.gates {
		a, b := got.gates[i], want.gates[i]
		if a.Kind != b.Kind || a.Q0 != b.Q0 || a.Q1 != b.Q1 {
			t.Fatalf("gate %d differs: %v vs %v", i, a, b)
		}
	}
	if res.Stats.SwapCount != ref.Stats.SwapCount || res.Stats.GatesOut != ref.Stats.GatesOut {
		t.Fatalf("stats differ: %+v vs %+v", res.Stats, ref.Stats)
	}
	if s := eng.Stats(); s.Streams != 1 {
		t.Fatalf("Streams counter = %d, want 1", s.Streams)
	}
}

// TestCompileQASMStreamBytesToBytes drives the full text transport:
// QASM in, routed QASM out, chunk callbacks observed, output parses
// and is hardware compliant.
func TestCompileQASMStreamBytesToBytes(t *testing.T) {
	eng := NewEngine(Config{Workers: 1})
	defer eng.Close()
	dev := arch.IBMQ20Tokyo()
	circ := workloads.RandomCircuit("batch-qasm-stream", 12, 600, 0.5, 9)
	var src bytes.Buffer
	if err := qasm.Write(&src, circ); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	var chunkCalls int
	var lastEmitted int64
	res, err := eng.CompileQASMStream(context.Background(), strings.NewReader(src.String()),
		StreamJob{Device: dev, Stream: core.StreamOptions{ChunkGates: 128}}, &out,
		func(emitted int64) error {
			chunkCalls++
			if emitted <= lastEmitted {
				t.Fatalf("chunk callback emitted count not increasing: %d then %d", lastEmitted, emitted)
			}
			lastEmitted = emitted
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if chunkCalls < 2 {
		t.Fatalf("expected multiple chunk callbacks, got %d", chunkCalls)
	}
	if lastEmitted != res.Stats.GatesOut {
		t.Fatalf("final callback saw %d gates, stats say %d", lastEmitted, res.Stats.GatesOut)
	}
	routed, err := qasm.Parse(out.String())
	if err != nil {
		t.Fatalf("streamed output does not parse: %v", err)
	}
	if routed.NumQubits() != dev.NumQubits() {
		t.Fatalf("streamed output width %d, want device width %d", routed.NumQubits(), dev.NumQubits())
	}
	for i, g := range routed.Gates() {
		if g.TwoQubit() && !dev.Connected(g.Q0, g.Q1) {
			t.Fatalf("gate %d (%v %d,%d) on uncoupled qubits", i, g.Kind, g.Q0, g.Q1)
		}
	}
}

func TestCompileQASMStreamChunkCallbackAborts(t *testing.T) {
	eng := NewEngine(Config{Workers: 1})
	defer eng.Close()
	dev := arch.IBMQ20Tokyo()
	circ := workloads.RandomCircuit("batch-abort", 12, 2000, 0.5, 5)
	var src bytes.Buffer
	if err := qasm.Write(&src, circ); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("subscriber gone")
	var out bytes.Buffer
	_, err := eng.CompileQASMStream(context.Background(), &src,
		StreamJob{Device: dev, Stream: core.StreamOptions{ChunkGates: 64}}, &out,
		func(int64) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("chunk callback error not propagated: %v", err)
	}
}

func TestCompileStreamValidation(t *testing.T) {
	eng := NewEngine(Config{Workers: 1})
	dev := arch.IBMQ20Tokyo()
	if _, err := eng.CompileStream(context.Background(), StreamJob{Device: dev}, &collectStreamSink{}); err == nil {
		t.Fatal("nil source accepted")
	}
	if _, err := eng.CompileStream(context.Background(), StreamJob{
		Source: core.NewCircuitSource(circuit.New(2)),
	}, &collectStreamSink{}); err == nil {
		t.Fatal("nil device accepted")
	}
	eng.Close()
	if _, err := eng.CompileStream(context.Background(), StreamJob{
		Source: core.NewCircuitSource(circuit.New(2)),
		Device: dev,
	}, &collectStreamSink{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed engine: %v", err)
	}
}
