package batch

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/qasm"
	"repro/internal/transpile"
	"repro/internal/workloads"
)

func TestJobPassesRunAndJoinCacheKey(t *testing.T) {
	e := NewEngine(Config{Workers: 2})
	defer e.Close()
	dev := arch.IBMQ20Tokyo()

	plain := Job{Circuit: workloads.QFT(6), Device: dev}
	piped := Job{Circuit: workloads.QFT(6), Device: dev, Passes: []string{"peephole", "basis", "verify"}}

	rp := e.CompileBatch([]Job{plain})[0]
	pp := e.CompileBatch([]Job{piped})[0]
	if rp.Err != nil || pp.Err != nil {
		t.Fatal(rp.Err, pp.Err)
	}
	if rp.Key == pp.Key {
		t.Fatal("pass list did not change the cache key")
	}
	if pp.CacheHit {
		t.Fatal("different pass list was served from the plain job's cache entry")
	}
	if !transpile.InBasis(pp.Final) {
		t.Fatal("basis pass did not lower the final circuit")
	}
	if rp.Final == nil || qasm.Format(rp.Final) != qasm.Format(rp.Result.Circuit) {
		t.Fatal("plain job's Final must equal the routed circuit")
	}
	// Metrics: route stage plus one entry per requested pass, in order.
	want := []string{"route", "peephole", "basis", "verify"}
	if len(pp.PassMetrics) != len(want) {
		t.Fatalf("got %d pass metrics, want %d", len(pp.PassMetrics), len(want))
	}
	for i, m := range pp.PassMetrics {
		if m.Pass != want[i] {
			t.Fatalf("metric %d is %q, want %q", i, m.Pass, want[i])
		}
	}

	// Identical piped job: cache hit sharing the same outcome.
	again := e.CompileBatch([]Job{piped})[0]
	if !again.CacheHit || again.Final != pp.Final {
		t.Fatal("identical piped job did not share the cached outcome")
	}
}

func TestJobTrialsJoinCacheKey(t *testing.T) {
	e := NewEngine(Config{Workers: 2})
	defer e.Close()
	dev := arch.IBMQ20Tokyo()
	// Explicit options: the zero-Options default substitution happens
	// inside the engine, so only a concrete Options value lets KeyOf
	// agree with the processed key.
	base := Job{Circuit: workloads.QFT(6), Device: dev, Options: core.DefaultOptions()}
	boosted := base
	boosted.Trials = 9

	a := e.CompileBatch([]Job{base})[0]
	b := e.CompileBatch([]Job{boosted})[0]
	if a.Err != nil || b.Err != nil {
		t.Fatal(a.Err, b.Err)
	}
	if a.Key == b.Key {
		t.Fatal("trial count did not join the cache key")
	}
	if b.TrialsRun != 9 {
		t.Fatalf("boosted job ran %d trials, want 9", b.TrialsRun)
	}
	if KeyOf(boosted) != b.Key {
		t.Fatal("KeyOf does not fold the Trials override like the engine does")
	}
}

func TestJobRejectsNonPostRoutingPasses(t *testing.T) {
	e := NewEngine(Config{Workers: 1})
	defer e.Close()
	res := e.CompileBatch([]Job{{
		Circuit: workloads.GHZ(4),
		Device:  arch.IBMQ20Tokyo(),
		Passes:  []string{"route"},
	}})[0]
	if res.Err == nil {
		t.Fatal("expected error for a route pass in Job.Passes")
	}
}

func TestCancelledContextFailsFast(t *testing.T) {
	e := NewEngine(Config{Workers: 1})
	defer e.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	res := <-e.SubmitContext(ctx, Job{Circuit: workloads.QFT(10), Device: arch.IBMQ20Tokyo()})
	if !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", res.Err)
	}
	if e.Stats().Compiles != 0 {
		t.Fatal("cancelled job still compiled")
	}
}

func TestPassAliasesShareCacheKey(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	a := Job{Circuit: workloads.QFT(5), Device: dev, Options: core.DefaultOptions(), Passes: []string{"peephole", "schedule"}}
	b := Job{Circuit: workloads.QFT(5), Device: dev, Options: core.DefaultOptions(), Passes: []string{"Opt", " sched "}}
	if KeyOf(a) != KeyOf(b) {
		t.Fatal("alias pass names (opt/sched) hash to a different key than peephole/schedule")
	}
}

func TestFollowerSurvivesLeaderCancellation(t *testing.T) {
	// Two identical jobs in flight: the one whose context is cancelled
	// must fail, but it must not poison the healthy one — whichever of
	// them led, the healthy submitter retries and gets a real result.
	e := NewEngine(Config{Workers: 2})
	defer e.Close()

	job := Job{Circuit: workloads.QFT(16), Device: arch.IBMQ20Tokyo(), Options: core.DefaultOptions()}
	job.Options.Trials = 20
	job.Options.Seed = 77

	ctxA, cancelA := context.WithCancel(context.Background())
	chA := e.SubmitContext(ctxA, job)
	time.Sleep(15 * time.Millisecond) // let A start compiling
	chB := e.SubmitContext(context.Background(), job)
	time.Sleep(15 * time.Millisecond) // let B join the flight
	cancelA()

	resB := <-chB
	if resB.Err != nil {
		t.Fatalf("healthy submitter failed with the cancelled peer's error: %v", resB.Err)
	}
	resA := <-chA
	if resA.Err == nil && resA.Result == nil {
		t.Fatal("cancelled submitter got neither a result nor an error")
	}
}

func TestCancellationStopsQueuedJobs(t *testing.T) {
	// One worker, many jobs: cancel mid-batch and check the tail fails
	// with the context error instead of compiling.
	e := NewEngine(Config{Workers: 1})
	defer e.Close()
	ctx, cancel := context.WithCancel(context.Background())

	jobs := make([]Job, 16)
	for i := range jobs {
		// Distinct seeds defeat the cache and single-flight; qft_16 at
		// 5 trials keeps the single worker busy long past the cancel.
		job := Job{Circuit: workloads.QFT(16), Device: arch.IBMQ20Tokyo(), Options: core.DefaultOptions()}
		job.Options.Seed = int64(i + 1)
		jobs[i] = job
	}
	done := make(chan []Result, 1)
	go func() { done <- e.CompileBatchContext(ctx, jobs) }()
	time.Sleep(25 * time.Millisecond)
	cancel()
	results := <-done
	var cancelled int
	for _, res := range results {
		if errors.Is(res.Err, context.Canceled) {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Fatal("no job observed the cancellation")
	}
}
