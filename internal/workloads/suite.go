package workloads

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/circuit"
)

// Class partitions the suite the way Table II does.
type Class string

const (
	ClassSmall Class = "small" // small quantum arithmetic
	ClassSim   Class = "sim"   // quantum simulation (ising model)
	ClassQFT   Class = "qft"   // quantum fourier transform
	ClassLarge Class = "large" // large quantum arithmetic
)

// Benchmark is one row of the paper's Table II workload description:
// the benchmark name, its class, logical qubit count n and original
// gate count g_ori, plus a deterministic generator.
type Benchmark struct {
	Name  string
	Class Class
	N     int // logical qubits
	Gori  int // original gate count in Table II

	// PaperGadd is g_add reported for BKA in Table II (-1 where the
	// paper reports Out of Memory). Kept for EXPERIMENTS.md comparison.
	PaperGadd int
	// PaperGop is SABRE's g_op in Table II (-1 where unavailable).
	PaperGop int

	seed int64
}

// Build generates the benchmark circuit. Deterministic: the same
// Benchmark always yields the same circuit.
func (b Benchmark) Build() *circuit.Circuit {
	switch b.Class {
	case ClassQFT:
		return QFT(b.N)
	case ClassSim:
		return Ising(b.N, isingSteps(b.N, b.Gori))
	case ClassSmall:
		return smallArithmetic(b.Name, b.N, b.Gori, rand.New(rand.NewSource(b.seed)))
	case ClassLarge:
		return toffoliNetwork(b.Name, b.N, b.Gori, nil, rand.New(rand.NewSource(b.seed)))
	default:
		panic(fmt.Sprintf("workloads: unknown class %q", b.Class))
	}
}

// suite lists the paper's 26 benchmarks with (n, g_ori, BKA g_add,
// SABRE g_op) transcribed from Table II.
var suite = []Benchmark{
	{Name: "4mod5-v1_22", Class: ClassSmall, N: 5, Gori: 21, PaperGadd: 15, PaperGop: 0, seed: 101},
	{Name: "mod5mils_65", Class: ClassSmall, N: 5, Gori: 35, PaperGadd: 18, PaperGop: 0, seed: 102},
	{Name: "alu-v0_27", Class: ClassSmall, N: 5, Gori: 36, PaperGadd: 33, PaperGop: 3, seed: 103},
	{Name: "decod24-v2_43", Class: ClassSmall, N: 4, Gori: 52, PaperGadd: 27, PaperGop: 0, seed: 104},
	{Name: "4gt13_92", Class: ClassSmall, N: 5, Gori: 66, PaperGadd: 42, PaperGop: 0, seed: 105},

	{Name: "ising_model_10", Class: ClassSim, N: 10, Gori: 480, PaperGadd: 18, PaperGop: 0, seed: 0},
	{Name: "ising_model_13", Class: ClassSim, N: 13, Gori: 633, PaperGadd: 60, PaperGop: 0, seed: 0},
	{Name: "ising_model_16", Class: ClassSim, N: 16, Gori: 786, PaperGadd: -1, PaperGop: 0, seed: 0},

	{Name: "qft_10", Class: ClassQFT, N: 10, Gori: 200, PaperGadd: 66, PaperGop: 54, seed: 0},
	{Name: "qft_13", Class: ClassQFT, N: 13, Gori: 403, PaperGadd: 177, PaperGop: 93, seed: 0},
	{Name: "qft_16", Class: ClassQFT, N: 16, Gori: 512, PaperGadd: 267, PaperGop: 186, seed: 0},
	{Name: "qft_20", Class: ClassQFT, N: 20, Gori: 970, PaperGadd: -1, PaperGop: 372, seed: 0},

	{Name: "rd84_142", Class: ClassLarge, N: 15, Gori: 343, PaperGadd: 138, PaperGop: 105, seed: 201},
	{Name: "adr4_197", Class: ClassLarge, N: 13, Gori: 3439, PaperGadd: 1722, PaperGop: 1614, seed: 202},
	{Name: "radd_250", Class: ClassLarge, N: 13, Gori: 3213, PaperGadd: 1434, PaperGop: 1275, seed: 203},
	{Name: "z4_268", Class: ClassLarge, N: 11, Gori: 3073, PaperGadd: 1383, PaperGop: 1365, seed: 204},
	{Name: "sym6_145", Class: ClassLarge, N: 14, Gori: 3888, PaperGadd: 1806, PaperGop: 1272, seed: 205},
	{Name: "misex1_241", Class: ClassLarge, N: 15, Gori: 4813, PaperGadd: 2097, PaperGop: 1521, seed: 206},
	{Name: "rd73_252", Class: ClassLarge, N: 10, Gori: 5321, PaperGadd: 2160, PaperGop: 2133, seed: 207},
	{Name: "cycle10_2_110", Class: ClassLarge, N: 12, Gori: 6050, PaperGadd: 2802, PaperGop: 2622, seed: 208},
	{Name: "square_root_7", Class: ClassLarge, N: 15, Gori: 7630, PaperGadd: 3132, PaperGop: 2598, seed: 209},
	{Name: "sqn_258", Class: ClassLarge, N: 10, Gori: 10223, PaperGadd: 4737, PaperGop: 4344, seed: 210},
	{Name: "rd84_253", Class: ClassLarge, N: 12, Gori: 13658, PaperGadd: 6483, PaperGop: 6147, seed: 211},
	{Name: "co14_215", Class: ClassLarge, N: 15, Gori: 17936, PaperGadd: 9183, PaperGop: 8982, seed: 212},
	{Name: "sym9_193", Class: ClassLarge, N: 10, Gori: 34881, PaperGadd: 17496, PaperGop: 16653, seed: 213},
	{Name: "9symml_195", Class: ClassLarge, N: 11, Gori: 34881, PaperGadd: 17496, PaperGop: 17268, seed: 214},
}

// All returns the full 26-benchmark suite in Table II order.
func All() []Benchmark {
	out := make([]Benchmark, len(suite))
	copy(out, suite)
	return out
}

// ByClass returns the benchmarks of one class, preserving order.
func ByClass(c Class) []Benchmark {
	var out []Benchmark
	for _, b := range suite {
		if b.Class == c {
			out = append(out, b)
		}
	}
	return out
}

// ByName looks a benchmark up by its Table II name.
func ByName(name string) (Benchmark, bool) {
	for _, b := range suite {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// Names returns all benchmark names, sorted.
func Names() []string {
	out := make([]string, len(suite))
	for i, b := range suite {
		out[i] = b.Name
	}
	sort.Strings(out)
	return out
}
