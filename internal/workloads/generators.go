// Package workloads regenerates the paper's 26-benchmark evaluation
// suite (Table II) plus auxiliary circuit generators used by tests and
// examples.
//
// The original suite mixes QASM exports from IBM QISKit, RevLib,
// Quipper and ScaffCC. Those files are not redistributable here, so —
// per the substitution policy in DESIGN.md — each class is rebuilt from
// its defining structure:
//
//   - qft_n:    exact quantum Fourier transform (all-to-all long-range
//     CNOT structure; the paper's scalability stress test).
//   - ising_model_n: Trotterized 1-D transverse-field Ising evolution
//     (nearest-neighbour-only interactions; a perfect mapping exists).
//   - small/large arithmetic: seeded Toffoli/CNOT/NOT networks with the
//     qubit count n and original gate count g_ori of Table II; small
//     benchmarks draw interactions from a Q20-embeddable sparse graph,
//     large ones from dense random triples.
package workloads

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/circuit"
)

// QFT returns the n-qubit quantum Fourier transform with controlled
// phases decomposed into {u1, CX} (circuit.CU1Decomposition), the IBM
// elementary gate set. Gate count: n + 5·n(n-1)/2.
func QFT(n int) *circuit.Circuit {
	c := circuit.NewNamed(fmt.Sprintf("qft_%d", n), n)
	for i := 0; i < n; i++ {
		c.Append(circuit.G1(circuit.KindH, i))
		for j := i + 1; j < n; j++ {
			lambda := math.Pi / float64(int(1)<<uint(j-i))
			c.Append(circuit.CU1Decomposition(lambda, j, i)...)
		}
	}
	return c
}

// Ising returns a Trotterized 1-D transverse-field Ising simulation on
// n qubits with the given number of Trotter steps: an initial H layer,
// then per step a ZZ(i, i+1) interaction (CX·RZ·CX) along the chain and
// an RX layer. All two-qubit gates are nearest-neighbour on the chain,
// which is why the paper's ising benchmarks admit a trivially optimal
// mapping on any device with a Hamiltonian path (§V-A1).
func Ising(n, steps int) *circuit.Circuit {
	c := circuit.NewNamed(fmt.Sprintf("ising_model_%d", n), n)
	for q := 0; q < n; q++ {
		c.Append(circuit.G1(circuit.KindH, q))
	}
	for s := 0; s < steps; s++ {
		for q := 0; q+1 < n; q++ {
			c.Append(
				circuit.CX(q, q+1),
				circuit.G1(circuit.KindRZ, q+1, 0.3),
				circuit.CX(q, q+1),
			)
		}
		for q := 0; q < n; q++ {
			c.Append(circuit.G1(circuit.KindRX, q, 0.7))
		}
	}
	return c
}

// isingSteps chooses the Trotter step count that brings Ising(n, steps)
// closest to the target gate count.
func isingSteps(n, targetGates int) int {
	perStep := 3*(n-1) + n
	steps := (targetGates - n + perStep/2) / perStep
	if steps < 1 {
		steps = 1
	}
	return steps
}

// GHZ returns the n-qubit GHZ-state preparation circuit: H then a CNOT
// ladder. Used by examples.
func GHZ(n int) *circuit.Circuit {
	c := circuit.NewNamed(fmt.Sprintf("ghz_%d", n), n)
	c.Append(circuit.G1(circuit.KindH, 0))
	for q := 0; q+1 < n; q++ {
		c.Append(circuit.CX(q, q+1))
	}
	return c
}

// BernsteinVazirani returns the BV circuit for the given hidden bit
// string (LSB = qubit 0), with the phase-oracle form that needs no
// ancilla: H layer, Z-oracle via CZ ... simplified to CX onto an
// ancilla qubit n for a textbook n+1 wire version.
func BernsteinVazirani(secret uint64, n int) *circuit.Circuit {
	c := circuit.NewNamed(fmt.Sprintf("bv_%d", n), n+1)
	anc := n
	c.Append(circuit.G1(circuit.KindX, anc), circuit.G1(circuit.KindH, anc))
	for q := 0; q < n; q++ {
		c.Append(circuit.G1(circuit.KindH, q))
	}
	for q := 0; q < n; q++ {
		if secret&(1<<uint(q)) != 0 {
			c.Append(circuit.CX(q, anc))
		}
	}
	for q := 0; q < n; q++ {
		c.Append(circuit.G1(circuit.KindH, q))
	}
	return c
}

// RandomCircuit returns a seeded random circuit with the given fraction
// of CNOTs (in [0,1]); the rest are random single-qubit Cliffords+T.
// Deterministic per seed. Used widely in tests.
func RandomCircuit(name string, n, gates int, cxFrac float64, seed int64) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := circuit.NewNamed(name, n)
	singles := []circuit.Kind{
		circuit.KindH, circuit.KindX, circuit.KindT,
		circuit.KindTdg, circuit.KindS, circuit.KindSdg,
	}
	for i := 0; i < gates; i++ {
		if n >= 2 && rng.Float64() < cxFrac {
			a := rng.Intn(n)
			b := rng.Intn(n - 1)
			if b >= a {
				b++
			}
			c.Append(circuit.CX(a, b))
		} else {
			c.Append(circuit.G1(singles[rng.Intn(len(singles))], rng.Intn(n)))
		}
	}
	return c
}

// toffoliNetwork emits seeded Toffoli/CNOT/NOT blocks over the allowed
// triples/pairs until exactly `gates` elementary gates are produced
// (the tail block is truncated). pairs constrains CNOT endpoints; nil
// means any pair. This is the RevLib-arithmetic stand-in.
func toffoliNetwork(name string, n, gates int, pairs [][2]int, rng *rand.Rand) *circuit.Circuit {
	c := circuit.NewNamed(name, n)
	var buf []circuit.Gate
	for len(buf) < gates {
		switch r := rng.Float64(); {
		case r < 0.55 && n >= 3 && pairs == nil:
			// Toffoli block on a random distinct triple.
			p := rng.Perm(n)
			buf = append(buf, circuit.ToffoliDecomposition(p[0], p[1], p[2])...)
		case r < 0.85:
			var a, b int
			if pairs != nil {
				pr := pairs[rng.Intn(len(pairs))]
				a, b = pr[0], pr[1]
				if rng.Intn(2) == 0 {
					a, b = b, a
				}
			} else {
				a = rng.Intn(n)
				b = rng.Intn(n - 1)
				if b >= a {
					b++
				}
			}
			buf = append(buf, circuit.CX(a, b))
		default:
			kinds := []circuit.Kind{circuit.KindX, circuit.KindH, circuit.KindT, circuit.KindTdg}
			buf = append(buf, circuit.G1(kinds[rng.Intn(len(kinds))], rng.Intn(n)))
		}
	}
	c.Append(buf[:gates]...)
	return c
}

// smallArithmetic builds an n-qubit circuit with exactly `gates` gates
// whose interaction graph is drawn from a sparse, Q20-embeddable pair
// set (a path plus one chord forming a triangle). This preserves the
// property §V-A1 depends on: a perfect initial mapping exists, so a
// good mapper adds zero (or almost zero) SWAPs.
func smallArithmetic(name string, n, gates int, rng *rand.Rand) *circuit.Circuit {
	pairs := make([][2]int, 0, n)
	for i := 0; i+1 < n; i++ {
		pairs = append(pairs, [2]int{i, i + 1})
	}
	if n >= 3 {
		pairs = append(pairs, [2]int{0, 2}) // chord: triangle 0-1-2
	}
	return toffoliNetwork(name, n, gates, pairs, rng)
}
