package workloads

import (
	"fmt"
	"math/rand"

	"repro/internal/arch"
	"repro/internal/circuit"
)

// KnownOptimal generates a QUEKO-style benchmark: a circuit constructed
// so that a zero-SWAP mapping onto dev provably exists. Construction:
// fix a hidden random logical→physical assignment, emit `gates` CNOTs
// only between logical qubits whose hidden images are coupled, then
// return the circuit (the hidden assignment is also returned so tests
// can inspect the optimum). A perfect mapper adds 0 gates on these; the
// measured overhead of a real mapper is its optimality gap.
//
// (After Tan & Cong's QUEKO suite, which was built to benchmark
// mappers against known-optimal depth; our variant fixes optimal added
// gates = 0 instead.)
func KnownOptimal(dev *arch.Device, gates int, seed int64) (*circuit.Circuit, []int) {
	rng := rand.New(rand.NewSource(seed))
	n := dev.NumQubits()
	hidden := rng.Perm(n) // hidden[q] = physical home of logical q
	// Inverse: logical qubit living on each physical node.
	logAt := make([]int, n)
	for q, p := range hidden {
		logAt[p] = q
	}
	edges := dev.Edges()
	c := circuit.NewNamed(fmt.Sprintf("queko_%s_%d", dev.Name(), seed), n)
	for i := 0; i < gates; i++ {
		e := edges[rng.Intn(len(edges))]
		a, b := logAt[e.A], logAt[e.B]
		if rng.Intn(2) == 0 {
			a, b = b, a
		}
		c.Append(circuit.CX(a, b))
	}
	return c, hidden
}

// QAOAMaxCut returns a depth-p QAOA circuit for MaxCut on a random
// graph with n vertices and the given edge probability: per round, a
// ZZ-phase separator on every graph edge followed by an RX mixer layer.
// QAOA is the canonical NISQ application the paper's motivation points
// at; its interaction graph equals the problem graph, so mapping
// difficulty tracks graph density.
func QAOAMaxCut(n, rounds int, edgeProb float64, seed int64) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < edgeProb {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	c := circuit.NewNamed(fmt.Sprintf("qaoa_n%d_p%d", n, rounds), n)
	for q := 0; q < n; q++ {
		c.Append(circuit.G1(circuit.KindH, q))
	}
	for r := 0; r < rounds; r++ {
		gamma := 0.4 + 0.1*float64(r)
		beta := 0.7 - 0.1*float64(r)
		for _, e := range edges {
			c.Append(circuit.RZZDecomposition(gamma, e[0], e[1])...)
		}
		for q := 0; q < n; q++ {
			c.Append(circuit.G1(circuit.KindRX, q, 2*beta))
		}
	}
	return c
}

// Grover returns an n-qubit Grover iteration count times: the phase
// oracle marks the all-ones state (a CZ cascade via Toffoli
// decompositions for n=2,3; falls back to a CZ chain for larger n), and
// the diffusion operator inverts about the mean. Exercises deep
// sequential structure with a repeated interaction pattern.
func Grover(n, iterations int) *circuit.Circuit {
	c := circuit.NewNamed(fmt.Sprintf("grover_%d", n), n)
	for q := 0; q < n; q++ {
		c.Append(circuit.G1(circuit.KindH, q))
	}
	markAllOnes := func() {
		switch {
		case n == 2:
			c.Append(circuit.CZ(0, 1))
		default:
			// Multi-controlled Z via H·CCX·H on the last qubit, chaining
			// Toffolis through the wires (exact for n=3; a standard
			// ancilla-free ladder approximation otherwise, adequate as a
			// routing workload).
			c.Append(circuit.G1(circuit.KindH, n-1))
			for i := 0; i+2 < n; i++ {
				c.Append(circuit.ToffoliDecomposition(i, i+1, i+2)...)
			}
			c.Append(circuit.ToffoliDecomposition(n-3, n-2, n-1)...)
			for i := n - 4; i >= 0; i-- {
				c.Append(circuit.ToffoliDecomposition(i, i+1, i+2)...)
			}
			c.Append(circuit.G1(circuit.KindH, n-1))
		}
	}
	for it := 0; it < iterations; it++ {
		markAllOnes()
		// Diffusion: H X (mark) X H on all qubits.
		for q := 0; q < n; q++ {
			c.Append(circuit.G1(circuit.KindH, q), circuit.G1(circuit.KindX, q))
		}
		markAllOnes()
		for q := 0; q < n; q++ {
			c.Append(circuit.G1(circuit.KindX, q), circuit.G1(circuit.KindH, q))
		}
	}
	return c
}
