package workloads

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/circuit"
)

func TestKnownOptimalRespectsHiddenMapping(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	c, hidden := KnownOptimal(dev, 300, 42)
	if c.NumQubits() != dev.NumQubits() {
		t.Fatalf("width %d", c.NumQubits())
	}
	if c.NumGates() != 300 {
		t.Fatalf("gates %d", c.NumGates())
	}
	// Every CNOT must act on a coupled pair under the hidden mapping —
	// i.e. the hidden mapping is a 0-SWAP witness.
	for _, g := range c.Gates() {
		if !dev.Connected(hidden[g.Q0], hidden[g.Q1]) {
			t.Fatalf("gate %v not executable under the hidden mapping", g)
		}
	}
}

func TestKnownOptimalDeterministic(t *testing.T) {
	dev := arch.Grid(3, 3)
	a, ha := KnownOptimal(dev, 50, 7)
	b, hb := KnownOptimal(dev, 50, 7)
	if !a.Equal(b) {
		t.Fatal("not deterministic")
	}
	for i := range ha {
		if ha[i] != hb[i] {
			t.Fatal("hidden mappings differ")
		}
	}
	c, _ := KnownOptimal(dev, 50, 8)
	if a.Equal(c) {
		t.Fatal("different seeds identical")
	}
}

func TestQAOAStructure(t *testing.T) {
	c := QAOAMaxCut(8, 2, 0.5, 3)
	if c.NumQubits() != 8 {
		t.Fatal("width wrong")
	}
	// Two rounds: every interaction pair appears an even number of
	// times ≥ 2 (each ZZ block has 2 CNOTs, repeated per round).
	for pair, count := range c.InteractionPairs() {
		if count%4 != 0 {
			t.Fatalf("pair %v count %d not a multiple of 4 (2 CNOT per ZZ x 2 rounds)", pair, count)
		}
	}
	if c.CountKind(circuit.KindRX) != 16 {
		t.Fatalf("mixer layer wrong: %d RX", c.CountKind(circuit.KindRX))
	}
	if c.CountKind(circuit.KindH) != 8 {
		t.Fatal("initial layer wrong")
	}
}

func TestQAOADensityScalesEdges(t *testing.T) {
	sparse := QAOAMaxCut(10, 1, 0.2, 5)
	dense := QAOAMaxCut(10, 1, 0.9, 5)
	if len(dense.InteractionPairs()) <= len(sparse.InteractionPairs()) {
		t.Fatal("edge probability had no effect")
	}
}

func TestGroverShapes(t *testing.T) {
	for _, n := range []int{2, 3, 5} {
		c := Grover(n, 2)
		if c.NumQubits() != n {
			t.Fatalf("grover(%d) width", n)
		}
		if c.NumGates() == 0 || c.CountTwoQubit() == 0 {
			t.Fatalf("grover(%d) empty", n)
		}
	}
	// Iterations scale the size linearly (minus the initial H layer).
	one := Grover(4, 1).NumGates()
	two := Grover(4, 2).NumGates()
	if two-one != one-4 {
		t.Fatalf("iteration scaling wrong: %d vs %d", one, two)
	}
}
