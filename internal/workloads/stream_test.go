package workloads

import (
	"bytes"
	"testing"

	"repro/internal/qasm"
)

// TestWriteRandomQASMMatchesRandomCircuit: the streaming fixture
// generator must produce the exact gate sequence of the in-memory
// RandomCircuit for the same parameters — same RNG draw order, chunk
// boundaries invisible.
func TestWriteRandomQASMMatchesRandomCircuit(t *testing.T) {
	const n, gates, frac, seed = 9, 9000, 0.5, 42 // spans multiple chunks
	var buf bytes.Buffer
	if err := WriteRandomQASM(&buf, n, gates, frac, seed); err != nil {
		t.Fatal(err)
	}
	got, err := qasm.Parse(buf.String())
	if err != nil {
		t.Fatalf("generated QASM does not parse: %v", err)
	}
	want := RandomCircuit("oracle", n, gates, frac, seed)
	if got.NumQubits() != n {
		t.Fatalf("width %d, want %d", got.NumQubits(), n)
	}
	gg, wg := got.Gates(), want.Gates()
	if len(gg) != len(wg) {
		t.Fatalf("%d gates, want %d", len(gg), len(wg))
	}
	for i := range gg {
		if gg[i].Kind != wg[i].Kind || gg[i].Q0 != wg[i].Q0 || gg[i].Q1 != wg[i].Q1 {
			t.Fatalf("gate %d: %+v != %+v", i, gg[i], wg[i])
		}
	}
}
