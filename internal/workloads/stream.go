package workloads

import (
	"io"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/qasm"
)

// streamGenChunk is the gate-buffer size WriteRandomQASM reuses
// between flushes; it bounds the generator's memory regardless of the
// requested trace length.
const streamGenChunk = 4096

// WriteRandomQASM streams a seeded random OpenQASM 2.0 program to w
// without ever materializing the circuit: gates are generated and
// serialized in fixed-size chunks, so a hundred-million-gate trace
// costs the same memory as a hundred-gate one. The gate sequence is
// exactly RandomCircuit's for the same (n, gates, cxFrac, seed) —
// same RNG, same distribution — making small instances directly
// comparable against the in-memory generator in tests. This is the
// fixture generator behind `genbench -stream-gates` and the streaming
// daemon smoke.
func WriteRandomQASM(w io.Writer, n, gates int, cxFrac float64, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	sw := qasm.NewStreamWriter(w, n)
	singles := []circuit.Kind{
		circuit.KindH, circuit.KindX, circuit.KindT,
		circuit.KindTdg, circuit.KindS, circuit.KindSdg,
	}
	buf := make([]circuit.Gate, 0, streamGenChunk)
	for i := 0; i < gates; i++ {
		if n >= 2 && rng.Float64() < cxFrac {
			a := rng.Intn(n)
			b := rng.Intn(n - 1)
			if b >= a {
				b++
			}
			buf = append(buf, circuit.CX(a, b))
		} else {
			buf = append(buf, circuit.G1(singles[rng.Intn(len(singles))], rng.Intn(n)))
		}
		if len(buf) == streamGenChunk {
			if err := sw.WriteGates(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if err := sw.WriteGates(buf); err != nil {
		return err
	}
	return sw.Flush()
}
