package workloads

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/sim"
)

func TestQFTStructure(t *testing.T) {
	for _, n := range []int{2, 5, 10} {
		c := QFT(n)
		wantGates := n + 5*n*(n-1)/2
		if c.NumGates() != wantGates {
			t.Fatalf("QFT(%d): %d gates, want %d", n, c.NumGates(), wantGates)
		}
		if c.CountKind(circuit.KindCX) != n*(n-1) {
			t.Fatalf("QFT(%d): %d CNOTs, want %d", n, c.CountKind(circuit.KindCX), n*(n-1))
		}
		// All-to-all interaction graph: every pair interacts.
		if got := len(c.InteractionPairs()); got != n*(n-1)/2 {
			t.Fatalf("QFT(%d): %d interacting pairs, want %d", n, got, n*(n-1)/2)
		}
	}
}

func TestQFTUnitaryOnSmallCase(t *testing.T) {
	// QFT maps |0...0> to the uniform superposition.
	c := QFT(3)
	s := sim.NewState(3)
	s.ApplyCircuit(c)
	want := 1 / math.Sqrt(8)
	for b := uint64(0); b < 8; b++ {
		a := s.Amplitude(b)
		if math.Abs(real(a)-want) > 1e-9 || math.Abs(imag(a)) > 1e-9 {
			t.Fatalf("QFT|000> amplitude %d = %v, want %g", b, a, want)
		}
	}
}

func TestIsingStructure(t *testing.T) {
	c := Ising(10, 12)
	// Nearest-neighbour interactions only.
	for pair := range c.InteractionPairs() {
		if pair[1]-pair[0] != 1 {
			t.Fatalf("ising has non-NN interaction %v", pair)
		}
	}
	wantGates := 10 + 12*(3*9+10)
	if c.NumGates() != wantGates {
		t.Fatalf("Ising(10,12): %d gates, want %d", c.NumGates(), wantGates)
	}
}

func TestIsingStepsTargets(t *testing.T) {
	for _, tc := range []struct{ n, target int }{{10, 480}, {13, 633}, {16, 786}} {
		c := Ising(tc.n, isingSteps(tc.n, tc.target))
		got := c.NumGates()
		// Within one Trotter step of the Table II count.
		perStep := 3*(tc.n-1) + tc.n
		if got < tc.target-perStep || got > tc.target+perStep {
			t.Fatalf("ising_model_%d: %d gates, target %d±%d", tc.n, got, tc.target, perStep)
		}
	}
}

func TestGHZ(t *testing.T) {
	c := GHZ(4)
	s := sim.NewState(4)
	s.ApplyCircuit(c)
	w := 1 / math.Sqrt2
	if math.Abs(real(s.Amplitude(0))-w) > 1e-9 || math.Abs(real(s.Amplitude(15))-w) > 1e-9 {
		t.Fatal("GHZ state wrong")
	}
}

func TestBernsteinVazirani(t *testing.T) {
	secret := uint64(0b1011)
	c := BernsteinVazirani(secret, 4)
	s := sim.NewState(5)
	s.ApplyCircuit(c)
	// Data qubits must read the secret with certainty.
	for q := 0; q < 4; q++ {
		want := 0.0
		if secret&(1<<uint(q)) != 0 {
			want = 1.0
		}
		if got := s.Probability(q); math.Abs(got-want) > 1e-9 {
			t.Fatalf("BV qubit %d: P(1)=%g, want %g", q, got, want)
		}
	}
}

func TestRandomCircuitDeterministic(t *testing.T) {
	a := RandomCircuit("a", 6, 100, 0.5, 42)
	b := RandomCircuit("a", 6, 100, 0.5, 42)
	if !a.Equal(b) {
		t.Fatal("RandomCircuit not deterministic")
	}
	c := RandomCircuit("a", 6, 100, 0.5, 43)
	if a.Equal(c) {
		t.Fatal("different seeds gave identical circuits")
	}
	if a.NumGates() != 100 {
		t.Fatal("gate count wrong")
	}
}

func TestRandomCircuitCXFraction(t *testing.T) {
	c := RandomCircuit("frac", 8, 2000, 0.4, 7)
	frac := float64(c.CountKind(circuit.KindCX)) / 2000
	if frac < 0.35 || frac > 0.45 {
		t.Fatalf("CX fraction %.3f, want ~0.4", frac)
	}
	all1q := RandomCircuit("all1q", 8, 100, 0, 7)
	if all1q.CountTwoQubit() != 0 {
		t.Fatal("cxFrac=0 still produced CNOTs")
	}
}

func TestSuiteComplete(t *testing.T) {
	all := All()
	if len(all) != 26 {
		t.Fatalf("suite has %d benchmarks, want 26", len(all))
	}
	counts := map[Class]int{}
	for _, b := range all {
		counts[b.Class]++
	}
	if counts[ClassSmall] != 5 || counts[ClassSim] != 3 || counts[ClassQFT] != 4 || counts[ClassLarge] != 14 {
		t.Fatalf("class counts wrong: %v", counts)
	}
}

func TestSuiteBuildMatchesSpec(t *testing.T) {
	for _, b := range All() {
		if b.Class == ClassLarge && b.Gori > 8000 {
			continue // keep the test fast; covered by TestLargestBenchmarks
		}
		c := b.Build()
		if c.NumQubits() != b.N {
			t.Fatalf("%s: %d qubits, want %d", b.Name, c.NumQubits(), b.N)
		}
		if c.Name() != b.Name {
			t.Fatalf("%s: circuit named %q", b.Name, c.Name())
		}
		switch b.Class {
		case ClassSmall, ClassLarge:
			if c.NumGates() != b.Gori {
				t.Fatalf("%s: %d gates, want exactly %d", b.Name, c.NumGates(), b.Gori)
			}
		case ClassSim:
			if d := c.NumGates() - b.Gori; d > 60 || d < -60 {
				t.Fatalf("%s: %d gates, target %d", b.Name, c.NumGates(), b.Gori)
			}
		case ClassQFT:
			// Exact QFT; count is structural, not Table II's export count.
			if c.CountKind(circuit.KindCX) != b.N*(b.N-1) {
				t.Fatalf("%s: CX count wrong", b.Name)
			}
		}
		// Every benchmark must actually use two-qubit gates.
		if c.CountTwoQubit() == 0 {
			t.Fatalf("%s: no two-qubit gates", b.Name)
		}
	}
}

func TestLargestBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, name := range []string{"sym9_193", "9symml_195", "co14_215", "rd84_253", "sqn_258"} {
		b, ok := ByName(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		c := b.Build()
		if c.NumGates() != b.Gori || c.NumQubits() != b.N {
			t.Fatalf("%s: got (n=%d,g=%d), want (n=%d,g=%d)", name, c.NumQubits(), c.NumGates(), b.N, b.Gori)
		}
	}
}

func TestSmallBenchmarksAreSparse(t *testing.T) {
	// Small benchmarks must have Q20-embeddable (sparse) interaction
	// graphs: at most n pairs (path + one chord).
	for _, b := range ByClass(ClassSmall) {
		c := b.Build()
		if got := len(c.InteractionPairs()); got > b.N {
			t.Fatalf("%s: %d interaction pairs, want <= %d", b.Name, got, b.N)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	b, _ := ByName("rd84_142")
	if !b.Build().Equal(b.Build()) {
		t.Fatal("benchmark build not deterministic")
	}
}

func TestByNameAndNames(t *testing.T) {
	if _, ok := ByName("qft_16"); !ok {
		t.Fatal("qft_16 missing")
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Fatal("bogus name found")
	}
	names := Names()
	if len(names) != 26 {
		t.Fatal("Names() incomplete")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("Names() not sorted")
		}
	}
}

func TestByClassPreservesOrder(t *testing.T) {
	qfts := ByClass(ClassQFT)
	if len(qfts) != 4 || qfts[0].Name != "qft_10" || qfts[3].Name != "qft_20" {
		t.Fatalf("qft class wrong: %v", qfts)
	}
}

func TestToffoliNetworkTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := toffoliNetwork("trunc", 5, 7, nil, rng)
	if c.NumGates() != 7 {
		t.Fatalf("truncation failed: %d gates", c.NumGates())
	}
}
