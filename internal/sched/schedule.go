// Package sched turns a circuit into an explicit time-step schedule —
// the "moments" view behind the paper's depth metric (§III-B) and its
// parallelism objective: gates on disjoint qubits share a time step,
// and the number of steps is the circuit depth that determines
// execution time against the qubit coherence budget (§II-B).
package sched

import (
	"fmt"
	"strings"

	"repro/internal/arch"
	"repro/internal/circuit"
)

// Schedule assigns every gate of a circuit to a time step.
type Schedule struct {
	circ  *circuit.Circuit
	steps [][]int // steps[t] lists gate indices at time t
	at    []int   // at[g] is gate g's time step
}

// ASAP schedules every gate as soon as its qubits are free (the
// standard as-soon-as-possible policy; its step count equals
// Circuit.Depth()).
func ASAP(c *circuit.Circuit) *Schedule {
	s := &Schedule{circ: c, at: make([]int, c.NumGates())}
	level := make([]int, c.NumQubits())
	for i, g := range c.Gates() {
		t := level[g.Q0]
		if g.TwoQubit() && level[g.Q1] > t {
			t = level[g.Q1]
		}
		s.place(i, t)
		level[g.Q0] = t + 1
		if g.TwoQubit() {
			level[g.Q1] = t + 1
		}
	}
	return s
}

// ALAP schedules every gate as late as possible without growing the
// ASAP depth — the mirror policy, useful for slack analysis.
func ALAP(c *circuit.Circuit) *Schedule {
	depth := c.Depth()
	s := &Schedule{circ: c, at: make([]int, c.NumGates())}
	level := make([]int, c.NumQubits())
	for i := range level {
		level[i] = depth
	}
	// Walk backwards; a gate ends at the earliest deadline of its qubits.
	times := make([]int, c.NumGates())
	for i := c.NumGates() - 1; i >= 0; i-- {
		g := c.Gate(i)
		t := level[g.Q0]
		if g.TwoQubit() && level[g.Q1] < t {
			t = level[g.Q1]
		}
		times[i] = t - 1
		level[g.Q0] = t - 1
		if g.TwoQubit() {
			level[g.Q1] = t - 1
		}
	}
	s.steps = make([][]int, depth)
	for i, t := range times {
		s.at[i] = t
		s.steps[t] = append(s.steps[t], i)
	}
	return s
}

func (s *Schedule) place(g, t int) {
	for len(s.steps) <= t {
		s.steps = append(s.steps, nil)
	}
	s.steps[t] = append(s.steps[t], g)
	s.at[g] = t
}

// Depth returns the number of time steps.
func (s *Schedule) Depth() int { return len(s.steps) }

// Step returns the gate indices scheduled at time t, in program order.
// The returned slice must not be modified.
func (s *Schedule) Step(t int) []int { return s.steps[t] }

// TimeOf returns gate g's time step.
func (s *Schedule) TimeOf(g int) int { return s.at[g] }

// Valid checks the schedule's structural invariants: every gate placed
// exactly once, no two gates in a step share a qubit, and dependencies
// (program order per qubit) are respected.
func (s *Schedule) Valid() error {
	seen := make([]bool, s.circ.NumGates())
	for t, step := range s.steps {
		occupied := map[int]int{}
		for _, gi := range step {
			if seen[gi] {
				return fmt.Errorf("sched: gate %d scheduled twice", gi)
			}
			seen[gi] = true
			g := s.circ.Gate(gi)
			for _, q := range g.Qubits() {
				if other, ok := occupied[q]; ok {
					return fmt.Errorf("sched: step %d has gates %d and %d on qubit %d", t, other, gi, q)
				}
				occupied[q] = gi
			}
		}
	}
	for i := range seen {
		if !seen[i] {
			return fmt.Errorf("sched: gate %d unscheduled", i)
		}
	}
	// Program order per qubit implies dependency order.
	last := make([]int, s.circ.NumQubits())
	for i := range last {
		last[i] = -1
	}
	for i := 0; i < s.circ.NumGates(); i++ {
		g := s.circ.Gate(i)
		for _, q := range g.Qubits() {
			if p := last[q]; p >= 0 && s.at[p] >= s.at[i] {
				return fmt.Errorf("sched: gate %d at t=%d not after predecessor %d at t=%d", i, s.at[i], p, s.at[p])
			}
			last[q] = i
		}
	}
	return nil
}

// Parallelism returns the mean number of gates per time step — the
// quantity the decay effect (§IV-C3) raises by preferring
// non-overlapping SWAPs.
func (s *Schedule) Parallelism() float64 {
	if len(s.steps) == 0 {
		return 0
	}
	return float64(s.circ.NumGates()) / float64(len(s.steps))
}

// Slack returns, per gate, the difference between its ALAP and ASAP
// times — zero-slack gates form the critical path.
func Slack(c *circuit.Circuit) []int {
	asap := ASAP(c)
	alap := ALAP(c)
	out := make([]int, c.NumGates())
	for i := range out {
		out[i] = alap.at[i] - asap.at[i]
	}
	return out
}

// CriticalPath returns the gate indices with zero slack, in order.
func CriticalPath(c *circuit.Circuit) []int {
	var out []int
	for i, s := range Slack(c) {
		if s == 0 {
			out = append(out, i)
		}
	}
	return out
}

// Duration returns the schedule's wall-clock length under the error
// model's per-kind gate durations, stepping each moment by its slowest
// gate (a tighter model than metrics.EstimateDuration's per-wire ASAP
// when gate times differ).
func (s *Schedule) Duration(em arch.ErrorModel) float64 {
	var total float64
	for _, step := range s.steps {
		var longest float64
		for _, gi := range step {
			g := s.circ.Gate(gi)
			var d float64
			switch {
			case g.Kind == circuit.KindBarrier:
				d = 0
			case g.TwoQubit():
				d = em.TwoQubitNanos
			default:
				d = em.SingleQubitNanos
			}
			if d > longest {
				longest = d
			}
		}
		total += longest
	}
	return total
}

// Render draws the schedule as a text timeline: one row per qubit, one
// column per time step.
func (s *Schedule) Render() string {
	n := s.circ.NumQubits()
	depth := len(s.steps)
	cells := make([][]string, n)
	for q := range cells {
		cells[q] = make([]string, depth)
		for t := range cells[q] {
			cells[q][t] = "--"
		}
	}
	for t, step := range s.steps {
		for _, gi := range step {
			g := s.circ.Gate(gi)
			switch {
			case g.Kind == circuit.KindCX:
				cells[g.Q0][t] = "C "
				cells[g.Q1][t] = "X "
			case g.Kind == circuit.KindSwap:
				cells[g.Q0][t] = "s "
				cells[g.Q1][t] = "s "
			case g.TwoQubit():
				cells[g.Q0][t] = "o "
				cells[g.Q1][t] = "o "
			default:
				mn := g.Kind.String()
				if len(mn) > 2 {
					mn = mn[:2]
				}
				for len(mn) < 2 {
					mn += " "
				}
				cells[g.Q0][t] = mn
			}
		}
	}
	var sb strings.Builder
	for q := 0; q < n; q++ {
		fmt.Fprintf(&sb, "q%-3d|", q)
		for t := 0; t < depth; t++ {
			sb.WriteString(cells[q][t])
			sb.WriteByte('|')
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
