package sched

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/workloads"
)

func ghz3() *circuit.Circuit {
	c := circuit.New(3)
	c.Append(circuit.G1(circuit.KindH, 0), circuit.CX(0, 1), circuit.CX(1, 2))
	return c
}

func TestASAPDepthMatchesCircuitDepth(t *testing.T) {
	for _, c := range []*circuit.Circuit{ghz3(), workloads.QFT(6), workloads.Ising(5, 3)} {
		s := ASAP(c)
		if s.Depth() != c.Depth() {
			t.Fatalf("%s: ASAP depth %d != circuit depth %d", c.Name(), s.Depth(), c.Depth())
		}
		if err := s.Valid(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestASAPPlacesParallelGatesTogether(t *testing.T) {
	c := circuit.New(4)
	c.Append(circuit.CX(0, 1), circuit.CX(2, 3))
	s := ASAP(c)
	if s.Depth() != 1 || len(s.Step(0)) != 2 {
		t.Fatalf("parallel CNOTs not co-scheduled: %v", s.steps)
	}
}

func TestALAPValidAndSameDepth(t *testing.T) {
	for _, c := range []*circuit.Circuit{ghz3(), workloads.QFT(6)} {
		a := ALAP(c)
		if a.Depth() != c.Depth() {
			t.Fatalf("ALAP depth %d != %d", a.Depth(), c.Depth())
		}
		if err := a.Valid(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestALAPDelaysIndependentGate(t *testing.T) {
	// H on a free qubit: ASAP puts it at t=0, ALAP at the end.
	c := circuit.New(2)
	c.Append(circuit.G1(circuit.KindH, 1), circuit.G1(circuit.KindT, 0), circuit.G1(circuit.KindT, 0), circuit.G1(circuit.KindT, 0))
	if got := ASAP(c).TimeOf(0); got != 0 {
		t.Fatalf("ASAP time %d", got)
	}
	if got := ALAP(c).TimeOf(0); got != c.Depth()-1 {
		t.Fatalf("ALAP time %d, want %d", got, c.Depth()-1)
	}
}

func TestSlackAndCriticalPath(t *testing.T) {
	c := circuit.New(2)
	c.Append(circuit.G1(circuit.KindH, 1), circuit.G1(circuit.KindT, 0), circuit.G1(circuit.KindT, 0))
	slack := Slack(c)
	if slack[0] != 1 { // the lone H can slide one step
		t.Fatalf("slack[0] = %d", slack[0])
	}
	if slack[1] != 0 || slack[2] != 0 {
		t.Fatalf("critical chain has slack: %v", slack)
	}
	cp := CriticalPath(c)
	if len(cp) != 2 || cp[0] != 1 || cp[1] != 2 {
		t.Fatalf("critical path %v", cp)
	}
}

func TestParallelism(t *testing.T) {
	c := circuit.New(4)
	c.Append(circuit.CX(0, 1), circuit.CX(2, 3)) // 2 gates, 1 step
	if p := ASAP(c).Parallelism(); p != 2 {
		t.Fatalf("parallelism %g", p)
	}
	if ASAP(circuit.New(2)).Parallelism() != 0 {
		t.Fatal("empty circuit parallelism")
	}
}

func TestDuration(t *testing.T) {
	em := arch.ErrorModel{SingleQubitNanos: 10, TwoQubitNanos: 100}
	c := circuit.New(2)
	c.Append(circuit.G1(circuit.KindH, 0), circuit.G1(circuit.KindH, 1), circuit.CX(0, 1))
	// Step 0: two H in parallel (10ns); step 1: CX (100ns).
	if d := ASAP(c).Duration(em); d != 110 {
		t.Fatalf("duration %g", d)
	}
}

func TestRender(t *testing.T) {
	out := ASAP(ghz3()).Render()
	if !strings.Contains(out, "q0") || !strings.Contains(out, "C ") || !strings.Contains(out, "X ") {
		t.Fatalf("render missing markers:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected 3 rows, got %d", len(lines))
	}
}

// Property: ASAP and ALAP are always valid and agree on depth.
func TestSchedulesValidProperty(t *testing.T) {
	f := func(seed int64) bool {
		c := workloads.RandomCircuit("sched", 6, 60, 0.5, seed)
		a := ASAP(c)
		l := ALAP(c)
		if a.Valid() != nil || l.Valid() != nil {
			return false
		}
		if a.Depth() != c.Depth() || l.Depth() != c.Depth() {
			return false
		}
		// Slack is non-negative everywhere.
		for _, s := range Slack(c) {
			if s < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
