package baseline

import (
	"fmt"
	"time"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/mapping"
)

// GreedyResult is the outcome of GreedyCompile.
type GreedyResult struct {
	Circuit       *circuit.Circuit
	InitialLayout []int
	FinalLayout   []int
	SwapCount     int
	AddedGates    int
	Elapsed       time.Duration
}

// GreedyCompile is the naive router in the style of Siraichi et al.'s
// heuristic (paper §VII): it processes two-qubit gates one at a time in
// program order and, when a gate's qubits are not coupled, swaps the
// control along a shortest path until they are. Its initial mapping
// matches interaction degree to physical degree with no temporal
// information — the paper's example of a local, myopic policy.
//
// It is fast, deterministic and always succeeds, but typically inserts
// far more SWAPs than SABRE; the gap quantifies what SABRE's search
// and initial mapping buy.
func GreedyCompile(circ *circuit.Circuit, dev *arch.Device) (*GreedyResult, error) {
	//sabre:nondeterm-ok wall-clock elapsed metric; never feeds routing decisions
	start := time.Now()
	if circ.NumQubits() > dev.NumQubits() {
		return nil, fmt.Errorf("baseline: circuit needs %d qubits but device %s has %d",
			circ.NumQubits(), dev.Name(), dev.NumQubits())
	}
	wide := circ
	if circ.NumQubits() < dev.NumQubits() {
		wide = circ.Widen(dev.NumQubits())
	}
	layout := degreeMatchedLayout(wide, dev)
	initial := layout.Clone()

	out := circuit.NewNamed(circ.Name(), dev.NumQubits())
	res := &GreedyResult{}
	for _, g := range wide.Gates() {
		if g.TwoQubit() {
			pa, pb := layout.Phys(g.Q0), layout.Phys(g.Q1)
			if !dev.Connected(pa, pb) {
				path := dev.ShortestPath(pa, pb)
				for i := 0; i+2 < len(path); i++ {
					out.Append(circuit.Swap(path[i], path[i+1]))
					layout.SwapPhysical(path[i], path[i+1])
					res.SwapCount++
				}
			}
		}
		out.Append(g.Remap(layout.Phys))
	}

	res.Circuit = out
	res.InitialLayout = initial.LogicalToPhysical()
	res.FinalLayout = layout.LogicalToPhysical()
	res.AddedGates = 3 * res.SwapCount
	res.Elapsed = time.Since(start)
	return res, nil
}

// degreeMatchedLayout pairs the most-interacting logical qubits with
// the best-connected physical qubits (Siraichi et al.'s initial
// mapping: outdegree matching, no temporal information).
func degreeMatchedLayout(c *circuit.Circuit, dev *arch.Device) mapping.Layout {
	n := dev.NumQubits()
	interact := make([]int, n)
	//sabre:nondeterm-ok commutative sum per qubit; iteration order cancels out
	for pair, count := range c.InteractionPairs() {
		interact[pair[0]] += count
		interact[pair[1]] += count
	}
	logical := argsortDesc(interact)
	physDeg := make([]int, n)
	for p := 0; p < n; p++ {
		physDeg[p] = dev.Degree(p)
	}
	physical := argsortDesc(physDeg)

	l2p := make([]int, n)
	for i := range logical {
		l2p[logical[i]] = physical[i]
	}
	l, err := mapping.FromLogicalToPhysical(l2p)
	if err != nil {
		panic(err) // unreachable: both sides are permutations
	}
	return l
}

// argsortDesc returns indices ordered by descending value (stable on
// index for determinism).
func argsortDesc(vals []int) []int {
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	// Insertion sort: n is small (device size) and stability by index
	// keeps layouts deterministic.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0; j-- {
			a, b := idx[j-1], idx[j]
			if vals[b] > vals[a] || (vals[b] == vals[a] && b < a) {
				idx[j-1], idx[j] = b, a
			} else {
				break
			}
		}
	}
	return idx
}
