package baseline

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/mapping"
	"repro/internal/verify"
	"repro/internal/workloads"
)

func verifyRouted(t *testing.T, orig, routed *circuit.Circuit, init, final []int, dev *arch.Device) {
	t.Helper()
	if err := verify.HardwareCompliant(routed.DecomposeSwaps(), dev.Connected); err != nil {
		t.Fatal(err)
	}
	onlyLinear := true
	for _, g := range orig.Gates() {
		if g.Kind != circuit.KindCX && g.Kind != circuit.KindSwap {
			onlyLinear = false
			break
		}
	}
	if onlyLinear {
		if err := verify.CheckRouted(orig, routed, init, final); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGreedyAdjacent(t *testing.T) {
	c := circuit.New(2)
	c.Append(circuit.CX(0, 1))
	res, err := GreedyCompile(c, arch.Line(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapCount != 0 {
		t.Fatalf("adjacent CNOT used %d swaps", res.SwapCount)
	}
	verifyRouted(t, c, res.Circuit, res.InitialLayout, res.FinalLayout, arch.Line(2))
}

func TestGreedyRoutesDistantCNOT(t *testing.T) {
	dev := arch.Line(5)
	c := circuit.New(5)
	// Force distance: two hub qubits interacting keeps them central,
	// then an end-to-end CNOT between low-degree qubits.
	c.Append(circuit.CX(0, 1), circuit.CX(2, 3), circuit.CX(0, 4))
	res, err := GreedyCompile(c, dev)
	if err != nil {
		t.Fatal(err)
	}
	verifyRouted(t, c, res.Circuit, res.InitialLayout, res.FinalLayout, dev)
	if res.AddedGates != 3*res.SwapCount {
		t.Fatal("accounting wrong")
	}
}

func TestGreedyTooWide(t *testing.T) {
	if _, err := GreedyCompile(circuit.New(5), arch.Line(3)); err == nil {
		t.Fatal("oversized accepted")
	}
}

// Property: greedy always yields compliant, equivalent circuits.
func TestGreedyProperty(t *testing.T) {
	devices := []*arch.Device{arch.Line(6), arch.Ring(6), arch.Grid(2, 3), arch.IBMQ20Tokyo()}
	f := func(seed int64, devIdx uint8) bool {
		dev := devices[int(devIdx)%len(devices)]
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(min(dev.NumQubits(), 8)-1)
		c := circuit.New(n)
		for i := 0; i < 30; i++ {
			a := rng.Intn(n)
			b := rng.Intn(n - 1)
			if b >= a {
				b++
			}
			c.Append(circuit.CX(a, b))
		}
		res, err := GreedyCompile(c, dev)
		if err != nil {
			return false
		}
		if verify.HardwareCompliant(res.Circuit.DecomposeSwaps(), dev.Connected) != nil {
			return false
		}
		return verify.CheckRouted(c, res.Circuit, res.InitialLayout, res.FinalLayout) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAStarAdjacentNoSwaps(t *testing.T) {
	c := circuit.New(2)
	c.Append(circuit.CX(0, 1))
	res, err := AStarCompile(c, arch.Line(3), DefaultAStarOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapCount != 0 {
		t.Fatalf("trivial case used %d swaps", res.SwapCount)
	}
}

func TestAStarRoutesAndVerifies(t *testing.T) {
	dev := arch.Grid(3, 3)
	c := workloads.RandomCircuit("astar", 9, 60, 1.0, 5)
	res, err := AStarCompile(c, dev, DefaultAStarOptions())
	if err != nil {
		t.Fatal(err)
	}
	verifyRouted(t, c, res.Circuit, res.InitialLayout, res.FinalLayout, dev)
	if res.NodesExpanded == 0 {
		t.Fatal("no search accounting")
	}
}

func TestAStarSingleQubitGatesSurvive(t *testing.T) {
	dev := arch.Line(4)
	c := circuit.New(4)
	c.Append(
		circuit.G1(circuit.KindH, 0),
		circuit.CX(0, 3),
		circuit.G1(circuit.KindT, 3),
		circuit.CX(1, 2),
		circuit.G1(circuit.KindMeasure, 2),
	)
	res, err := AStarCompile(c, dev, DefaultAStarOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Circuit.CountKind(circuit.KindH) != 1 ||
		res.Circuit.CountKind(circuit.KindT) != 1 ||
		res.Circuit.CountKind(circuit.KindMeasure) != 1 {
		t.Fatal("single-qubit gates lost")
	}
	if res.Circuit.CountKind(circuit.KindCX) != 2 {
		t.Fatal("CNOTs lost")
	}
}

// Property: A* output is compliant and equivalent on random circuits.
func TestAStarProperty(t *testing.T) {
	dev := arch.Grid(2, 3)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		c := circuit.New(n)
		for i := 0; i < 25; i++ {
			a := rng.Intn(n)
			b := rng.Intn(n - 1)
			if b >= a {
				b++
			}
			c.Append(circuit.CX(a, b))
		}
		res, err := AStarCompile(c, dev, DefaultAStarOptions())
		if err != nil {
			return false
		}
		if verify.HardwareCompliant(res.Circuit.DecomposeSwaps(), dev.Connected) != nil {
			return false
		}
		return verify.CheckRouted(c, res.Circuit, res.InitialLayout, res.FinalLayout) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestAStarBudgetExceeded(t *testing.T) {
	// A tiny budget on a non-trivial problem must trip ErrBudget.
	dev := arch.IBMQ20Tokyo()
	c := workloads.QFT(12)
	opts := DefaultAStarOptions()
	opts.NodeBudget = 50
	_, err := AStarCompile(c, dev, opts)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("expected ErrBudget, got %v", err)
	}
}

func TestAStarOptimalPerLayerWithoutLookahead(t *testing.T) {
	// Without lookahead the per-layer search is admissible A*: a single
	// distant CNOT on a line must use exactly dist-1 swaps.
	dev := arch.Line(5)
	c := circuit.New(5)
	c.Append(circuit.CX(0, 4))
	// Force a bad initial layout by making the A* initial placement
	// trivial: the first layer IS the gate, so placement puts them on
	// an edge — zero swaps. Instead check a two-layer conflict:
	c2 := circuit.New(5)
	c2.Append(circuit.CX(0, 1), circuit.CX(2, 3), circuit.CX(0, 3), circuit.CX(1, 2))
	opts := AStarOptions{LookaheadWeight: 0, NodeBudget: 100000}
	res, err := AStarCompile(c2, dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	verifyRouted(t, c2, res.Circuit, res.InitialLayout, res.FinalLayout, dev)
	_ = c
}

func TestAStarTooWide(t *testing.T) {
	if _, err := AStarCompile(circuit.New(5), arch.Line(3), DefaultAStarOptions()); err == nil {
		t.Fatal("oversized accepted")
	}
}

func TestAStarNodeGrowthWithSize(t *testing.T) {
	// E3's mechanism: nodes expanded grows steeply with qubit count on
	// QFT workloads (mapping-space search), while SABRE's work grows
	// gently. Here we only assert monotone growth for A*.
	if testing.Short() {
		t.Skip("short mode")
	}
	var prev int
	for _, n := range []int{4, 6, 8} {
		c := workloads.QFT(n)
		res, err := AStarCompile(c, arch.IBMQ20Tokyo(), DefaultAStarOptions())
		if err != nil {
			t.Fatalf("qft_%d: %v", n, err)
		}
		if res.NodesExpanded < prev {
			t.Fatalf("qft_%d expanded %d nodes, fewer than smaller case %d", n, res.NodesExpanded, prev)
		}
		prev = res.NodesExpanded
	}
}

func TestEnumerateMatchingsSmall(t *testing.T) {
	// Path edges {0-1, 1-2, 2-3}: matchings are the 3 singletons plus
	// {0-1, 2-3} = 4 total.
	cands := []arch.Edge{arch.NewEdge(0, 1), arch.NewEdge(1, 2), arch.NewEdge(2, 3)}
	got := enumerateMatchings(cands, 1000)
	if len(got) != 4 {
		t.Fatalf("got %d matchings: %v", len(got), got)
	}
	// Every matching must be pairwise disjoint.
	for _, m := range got {
		for i := 0; i < len(m); i++ {
			for j := i + 1; j < len(m); j++ {
				if m[i].A == m[j].A || m[i].A == m[j].B || m[i].B == m[j].A || m[i].B == m[j].B {
					t.Fatalf("matching %v not disjoint", m)
				}
			}
		}
	}
}

func TestEnumerateMatchingsGrowsExponentially(t *testing.T) {
	// A perfect matching structure: k disjoint edges have 2^k - 1
	// nonempty sub-matchings — the combinatorial blow-up BKA's search
	// rides on.
	for _, k := range []int{2, 4, 6, 8} {
		cands := make([]arch.Edge, k)
		for i := range cands {
			cands[i] = arch.NewEdge(2*i, 2*i+1)
		}
		got := enumerateMatchings(cands, 1<<20)
		want := 1<<uint(k) - 1
		if len(got) != want {
			t.Fatalf("k=%d: %d matchings, want %d", k, len(got), want)
		}
	}
}

func TestEnumerateMatchingsLimitKeepsSingletons(t *testing.T) {
	cands := make([]arch.Edge, 10)
	for i := range cands {
		cands[i] = arch.NewEdge(2*i, 2*i+1)
	}
	got := enumerateMatchings(cands, 12)
	if len(got) > 12+len(cands) {
		t.Fatalf("limit overshot: %d", len(got))
	}
	// All 10 singletons must be present (completeness guarantee).
	singles := 0
	for _, m := range got {
		if len(m) == 1 {
			singles++
		}
	}
	if singles != 10 {
		t.Fatalf("%d singletons, want 10", singles)
	}
}

func TestCandidateEdgesTouchLayerQubits(t *testing.T) {
	dev := arch.Grid(3, 3)
	l := mapping.Identity(9)
	layer := [][2]int{{0, 8}}
	cands := candidateEdges(dev, l, layer)
	for _, e := range cands {
		if e.A != 0 && e.B != 0 && e.A != 8 && e.B != 8 {
			t.Fatalf("candidate %v touches neither layer qubit", e)
		}
	}
	// Qubit 0 has 2 neighbours, qubit 8 has 2: expect 4 distinct edges.
	if len(cands) != 4 {
		t.Fatalf("%d candidates, want 4", len(cands))
	}
}

func TestDegreeMatchedLayout(t *testing.T) {
	dev := arch.Star(5)
	c := circuit.New(5)
	// Qubit 3 interacts with everyone: should land on the hub (phys 0).
	c.Append(circuit.CX(3, 0), circuit.CX(3, 1), circuit.CX(3, 2), circuit.CX(3, 4))
	l := degreeMatchedLayout(c.Widen(5), dev)
	if l.Phys(3) != 0 {
		t.Fatalf("most-connected qubit mapped to %d, want hub 0", l.Phys(3))
	}
}

func TestArgsortDesc(t *testing.T) {
	got := argsortDesc([]int{3, 1, 4, 1, 5})
	want := []int{4, 2, 0, 1, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("argsort = %v, want %v", got, want)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
