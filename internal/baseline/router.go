package baseline

import (
	"context"
	"time"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/core"
)

// GreedyRouter adapts GreedyCompile to the core.Router interface so
// the naive shortest-path baseline drops into the pass pipeline as a
// routing backend. Options are ignored (the greedy router has no
// knobs); it is fully deterministic.
type GreedyRouter struct{}

// Name implements core.Router.
func (GreedyRouter) Name() string { return "greedy" }

// Route implements core.Router.
func (GreedyRouter) Route(ctx context.Context, circ *circuit.Circuit, dev *arch.Device, _ core.Options) (*core.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	//sabre:nondeterm-ok wall-clock elapsed metric; never feeds routing decisions
	start := time.Now()
	g, err := GreedyCompile(circ, dev)
	if err != nil {
		return nil, err
	}
	return &core.Result{
		Circuit:             g.Circuit,
		InitialLayout:       g.InitialLayout,
		FinalLayout:         g.FinalLayout,
		SwapCount:           g.SwapCount,
		AddedGates:          g.AddedGates,
		FirstTraversalAdded: g.AddedGates,
		TrialsRun:           1,
		Elapsed:             time.Since(start),
	}, nil
}

// AStarRouter adapts AStarCompile (the paper's BKA baseline) to
// core.Router. The zero value uses DefaultAStarOptions; core.Options
// are ignored, as the search has its own configuration.
type AStarRouter struct {
	Options AStarOptions
}

// Name implements core.Router.
func (AStarRouter) Name() string { return "astar" }

// Route implements core.Router.
func (r AStarRouter) Route(ctx context.Context, circ *circuit.Circuit, dev *arch.Device, _ core.Options) (*core.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	opts := r.Options
	if opts == (AStarOptions{}) {
		opts = DefaultAStarOptions()
	}
	//sabre:nondeterm-ok wall-clock elapsed metric; never feeds routing decisions
	start := time.Now()
	a, err := AStarCompile(circ, dev, opts)
	if err != nil {
		return nil, err
	}
	return &core.Result{
		Circuit:             a.Circuit,
		InitialLayout:       a.InitialLayout,
		FinalLayout:         a.FinalLayout,
		SwapCount:           a.SwapCount,
		AddedGates:          a.AddedGates,
		FirstTraversalAdded: a.AddedGates,
		TrialsRun:           1,
		Elapsed:             time.Since(start),
	}, nil
}
