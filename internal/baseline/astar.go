// Package baseline reimplements the comparison algorithms of the
// paper's evaluation: the Best Known Algorithm (BKA) of Zulehner,
// Paler and Wille — a layer-by-layer A* search over full qubit
// mappings (paper §VII) — and a naive greedy shortest-path router.
//
// BKA's defining property, and the one the paper's scalability argument
// rests on, is that its per-layer search space is the space of
// *mappings*, O(exp(N)); SABRE searches the space of *SWAPs*, O(N).
// We reproduce that faithfully: states are full layouts, successor
// generation applies every coupling-graph SWAP, and the visited set
// grows with the mapping space. The authors' 378 GB server is
// represented by a configurable node budget; exceeding it returns
// ErrBudget, this reproduction's analogue of Table II's "Out of
// Memory".
package baseline

import (
	"container/heap"
	"errors"
	"fmt"
	"time"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/mapping"
)

// ErrBudget is returned when the A* search exceeds its node budget —
// the stand-in for the paper's out-of-memory failures (§V-B2).
var ErrBudget = errors.New("baseline: A* node budget exceeded (the paper's Out of Memory)")

// AStarOptions configures the BKA reimplementation.
type AStarOptions struct {
	// LookaheadWeight weighs the next layer's distance sum into the
	// heuristic (Zulehner et al. use a lookahead of one layer). 0
	// disables lookahead; the search is then admissible per layer.
	LookaheadWeight float64

	// NodeBudget bounds the number of A* nodes *generated* (allocated)
	// within one layer's search — the memory proxy standing in for the
	// authors' 378 GB server (A* memory peaks inside a layer search and
	// is released between layers). 0 selects DefaultNodeBudget.
	NodeBudget int

	// MaxCombos caps the concurrent-SWAP combinations enumerated per
	// expansion (single-SWAP successors always come first, preserving
	// completeness). 0 selects DefaultMaxCombos.
	MaxCombos int
}

// DefaultNodeBudget caps per-layer A* node generation. It is sized so
// the paper's small and large arithmetic benchmarks complete while the
// 20-qubit blow-up case (qft_20's deepest layer needs >2M nodes) trips
// it, mirroring Table II's Out of Memory rows. See EXPERIMENTS.md for
// the measured per-layer node counts behind this constant.
const DefaultNodeBudget = 1_500_000

// DefaultMaxCombos bounds combination enumeration per expanded node.
const DefaultMaxCombos = 4096

// DefaultAStarOptions mirrors the published configuration: one-layer
// lookahead, default budget.
func DefaultAStarOptions() AStarOptions {
	return AStarOptions{LookaheadWeight: 0.5, NodeBudget: DefaultNodeBudget, MaxCombos: DefaultMaxCombos}
}

// AStarResult is the outcome of AStarCompile.
type AStarResult struct {
	Circuit       *circuit.Circuit
	InitialLayout []int
	FinalLayout   []int
	SwapCount     int
	AddedGates    int

	// NodesExpanded and PeakFrontier account the search cost; they are
	// the measured quantities behind the scalability experiment (E3).
	NodesExpanded int
	PeakFrontier  int
	// MaxLayerNodes is the largest single-layer node count — the
	// quantity the per-layer budget (memory) actually gates.
	MaxLayerNodes int
	Elapsed       time.Duration
}

// AStarCompile routes circ onto dev with the layered A* mapping search.
// The initial mapping follows Zulehner et al.: it is determined by the
// gates at the beginning of the circuit only (the first layers are
// placed greedily), with no global lookahead — the weakness SABRE's
// reverse traversal addresses.
func AStarCompile(circ *circuit.Circuit, dev *arch.Device, opts AStarOptions) (*AStarResult, error) {
	//sabre:nondeterm-ok wall-clock elapsed metric; never feeds routing decisions
	start := time.Now()
	if circ.NumQubits() > dev.NumQubits() {
		return nil, fmt.Errorf("baseline: circuit needs %d qubits but device %s has %d",
			circ.NumQubits(), dev.Name(), dev.NumQubits())
	}
	if opts.NodeBudget <= 0 {
		opts.NodeBudget = DefaultNodeBudget
	}
	if opts.MaxCombos <= 0 {
		opts.MaxCombos = DefaultMaxCombos
	}
	wide := circ
	if circ.NumQubits() < dev.NumQubits() {
		wide = circ.Widen(dev.NumQubits())
	}
	dag := circuit.BuildDAG(wide)
	layers := dag.Layers()

	layout := initialLayoutFromFirstLayers(wide, dev, layers)
	initial := layout.Clone()

	s := &scheduler{circ: wide, dag: dag, layers: layers}
	out := circuit.NewNamed(circ.Name(), dev.NumQubits())
	res := &AStarResult{}

	// The node budget applies per layer: A* memory peaks inside one
	// layer's search and is released between layers, so the paper's
	// out-of-memory events are per-layer phenomena.
	for l := range layers {
		swaps, stats, err := solveLayer(dev, layout, gatePairs(wide, layers[l]), nextLayerPairs(wide, layers, l), opts, opts.NodeBudget)
		if err != nil {
			return nil, err
		}
		res.NodesExpanded += stats.nodes
		if stats.nodes > res.MaxLayerNodes {
			res.MaxLayerNodes = stats.nodes
		}
		if stats.frontier > res.PeakFrontier {
			res.PeakFrontier = stats.frontier
		}
		for _, e := range swaps {
			out.Append(circuit.Swap(e.A, e.B))
			layout.SwapPhysical(e.A, e.B)
			res.SwapCount++
		}
		s.emitThroughLayer(l, layout, out)
	}
	s.emitTail(layout, out)

	res.Circuit = out
	res.InitialLayout = initial.LogicalToPhysical()
	res.FinalLayout = layout.LogicalToPhysical()
	res.AddedGates = 3 * res.SwapCount
	res.Elapsed = time.Since(start)
	return res, nil
}

// gatePairs extracts the logical qubit pairs of the given gate indices.
func gatePairs(c *circuit.Circuit, gates []int) [][2]int {
	out := make([][2]int, len(gates))
	for i, g := range gates {
		gate := c.Gate(g)
		out[i] = [2]int{gate.Q0, gate.Q1}
	}
	return out
}

func nextLayerPairs(c *circuit.Circuit, layers [][]int, l int) [][2]int {
	if l+1 >= len(layers) {
		return nil
	}
	return gatePairs(c, layers[l+1])
}

// initialLayoutFromFirstLayers places the qubit pairs of the earliest
// layers onto free coupled edges greedily (Zulehner-style: only the
// beginning of the circuit is considered), then fills the rest with the
// identity.
func initialLayoutFromFirstLayers(c *circuit.Circuit, dev *arch.Device, layers [][]int) mapping.Layout {
	n := dev.NumQubits()
	l2p := make([]int, n)
	for i := range l2p {
		l2p[i] = -1
	}
	usedPhys := make([]bool, n)

	place := func(q, p int) {
		l2p[q] = p
		usedPhys[p] = true
	}
	// Greedy, first layer only — Zulehner et al.'s initial mapping is
	// "determined by only those two-qubit gates at the beginning of the
	// circuit without global consideration" (paper §VII), which is the
	// weakness SABRE's reverse traversal targets. For each first-layer
	// gate: if neither qubit is placed, claim a free edge; if one is
	// placed, claim a free neighbour.
	if len(layers) > 0 {
		for _, gi := range layers[0] {
			g := c.Gate(gi)
			a, b := g.Q0, g.Q1
			switch {
			case l2p[a] == -1 && l2p[b] == -1:
				for _, e := range dev.Edges() {
					if !usedPhys[e.A] && !usedPhys[e.B] {
						place(a, e.A)
						place(b, e.B)
						break
					}
				}
			case l2p[a] == -1:
				for _, nb := range dev.Neighbors(l2p[b]) {
					if !usedPhys[nb] {
						place(a, nb)
						break
					}
				}
			case l2p[b] == -1:
				for _, nb := range dev.Neighbors(l2p[a]) {
					if !usedPhys[nb] {
						place(b, nb)
						break
					}
				}
			}
		}
	}
	// Fill the remaining logical qubits with the free physical qubits.
	free := make([]int, 0, n)
	for p := 0; p < n; p++ {
		if !usedPhys[p] {
			free = append(free, p)
		}
	}
	fi := 0
	for q := 0; q < n; q++ {
		if l2p[q] == -1 {
			l2p[q] = free[fi]
			fi++
		}
	}
	l, err := mapping.FromLogicalToPhysical(l2p)
	if err != nil {
		// Unreachable: construction is a bijection by design.
		panic(err)
	}
	return l
}

// searchStats accounts one layer's search cost.
type searchStats struct {
	nodes    int
	frontier int
}

// node is an A* search node: a full mapping plus the swap path that
// produced it — the exponential state representation that limits BKA.
type node struct {
	layout mapping.Layout
	swaps  []arch.Edge
	g      int     // cost so far (swaps)
	f      float64 // g + h
	index  int     // heap bookkeeping
}

type nodeHeap []*node

func (h nodeHeap) Len() int           { return len(h) }
func (h nodeHeap) Less(i, j int) bool { return h[i].f < h[j].f }
func (h nodeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *nodeHeap) Push(x any)        { n := x.(*node); n.index = len(*h); *h = append(*h, n) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// solveLayer runs A* from the current layout until every pair in the
// layer is coupled, returning the swap sequence.
func solveLayer(dev *arch.Device, start mapping.Layout, layer, next [][2]int, opts AStarOptions, budget int) ([]arch.Edge, searchStats, error) {
	var stats searchStats
	if len(layer) == 0 || satisfied(dev, start, layer) {
		return nil, stats, nil
	}
	open := &nodeHeap{}
	heap.Init(open)
	root := &node{layout: start.Clone(), f: h(dev, start, layer, next, opts)}
	heap.Push(open, root)
	visited := map[string]int{start.Key(): 0}

	for open.Len() > 0 {
		cur := heap.Pop(open).(*node)
		if satisfied(dev, cur.layout, layer) {
			return cur.swaps, stats, nil
		}
		// Zulehner et al. expand by "all possible combinations of SWAP
		// gates that can be applied concurrently" on qubits relevant to
		// the layer. Enumerating matchings of the candidate edge set is
		// the exponential step that limits BKA's scalability (§IV-C1).
		cands := candidateEdges(dev, cur.layout, layer)
		combos := enumerateMatchings(cands, opts.MaxCombos)
		for _, combo := range combos {
			nl := cur.layout.Clone()
			for _, e := range combo {
				nl.SwapPhysical(e.A, e.B)
			}
			key := nl.Key()
			ng := cur.g + len(combo)
			if prev, ok := visited[key]; ok && prev <= ng {
				continue
			}
			visited[key] = ng
			stats.nodes++
			if stats.nodes >= budget {
				return nil, stats, ErrBudget
			}
			swaps := make([]arch.Edge, len(cur.swaps), len(cur.swaps)+len(combo))
			copy(swaps, cur.swaps)
			swaps = append(swaps, combo...)
			heap.Push(open, &node{
				layout: nl,
				swaps:  swaps,
				g:      ng,
				f:      float64(ng) + h(dev, nl, layer, next, opts),
			})
		}
		if open.Len() > stats.frontier {
			stats.frontier = open.Len()
		}
	}
	return nil, stats, fmt.Errorf("baseline: A* exhausted the search space without satisfying the layer")
}

// candidateEdges returns the coupling edges touching the current
// physical positions of the layer's logical qubits, in deterministic
// order.
func candidateEdges(dev *arch.Device, l mapping.Layout, layer [][2]int) []arch.Edge {
	seen := make(map[arch.Edge]bool)
	var out []arch.Edge
	for _, pr := range layer {
		for _, q := range pr {
			p := l.Phys(q)
			for _, nb := range dev.Neighbors(p) {
				e := arch.NewEdge(p, nb)
				if !seen[e] {
					seen[e] = true
					out = append(out, e)
				}
			}
		}
	}
	return out
}

// enumerateMatchings lists nonempty sets of pairwise-disjoint edges
// drawn from cands, in an order that yields all single edges first
// (preserving search completeness when the limit truncates the list).
func enumerateMatchings(cands []arch.Edge, limit int) [][]arch.Edge {
	var out [][]arch.Edge
	for _, e := range cands {
		out = append(out, []arch.Edge{e})
	}
	// Extend matchings breadth-first: combos of size k spawn size k+1.
	// Each matching keeps the index of its last edge so extensions stay
	// canonical (strictly increasing indices, no duplicates).
	type partial struct {
		edges []arch.Edge
		last  int
	}
	queue := make([]partial, 0, len(cands))
	for i, e := range cands {
		queue = append(queue, partial{edges: []arch.Edge{e}, last: i})
	}
	for len(queue) > 0 && len(out) < limit {
		p := queue[0]
		queue = queue[1:]
		for j := p.last + 1; j < len(cands); j++ {
			e := cands[j]
			if conflicts(p.edges, e) {
				continue
			}
			ext := make([]arch.Edge, len(p.edges)+1)
			copy(ext, p.edges)
			ext[len(p.edges)] = e
			out = append(out, ext)
			queue = append(queue, partial{edges: ext, last: j})
			if len(out) >= limit {
				break
			}
		}
	}
	return out
}

func conflicts(edges []arch.Edge, e arch.Edge) bool {
	for _, x := range edges {
		if x.A == e.A || x.A == e.B || x.B == e.A || x.B == e.B {
			return true
		}
	}
	return false
}

func satisfied(dev *arch.Device, l mapping.Layout, layer [][2]int) bool {
	for _, pr := range layer {
		if !dev.Connected(l.Phys(pr[0]), l.Phys(pr[1])) {
			return false
		}
	}
	return true
}

// h is the layer heuristic: an admissible bound on remaining swaps
// (each SWAP shortens the summed distance of disjoint layer gates by at
// most 2) plus the non-admissible lookahead term over the next layer.
func h(dev *arch.Device, l mapping.Layout, layer, next [][2]int, opts AStarOptions) float64 {
	sum := 0
	for _, pr := range layer {
		sum += dev.Distance(l.Phys(pr[0]), l.Phys(pr[1])) - 1
	}
	est := float64((sum + 1) / 2)
	if opts.LookaheadWeight > 0 && len(next) > 0 {
		nsum := 0
		for _, pr := range next {
			nsum += dev.Distance(l.Phys(pr[0]), l.Phys(pr[1])) - 1
		}
		est += opts.LookaheadWeight * float64(nsum) / 2
	}
	return est
}

// scheduler emits gates in program order as their layer becomes routed.
type scheduler struct {
	circ     *circuit.Circuit
	dag      *circuit.DAG
	layers   [][]int
	layerOf  map[int]int
	emitted  []bool
	prepared bool
}

func (s *scheduler) prepare() {
	if s.prepared {
		return
	}
	s.layerOf = make(map[int]int)
	for l, gates := range s.layers {
		for _, g := range gates {
			s.layerOf[g] = l
		}
	}
	s.emitted = make([]bool, s.circ.NumGates())
	s.prepared = true
}

// emitThroughLayer emits, in program order, every not-yet-emitted gate
// whose dependencies are emitted and which is either single-qubit or a
// two-qubit gate of layer ≤ maxLayer (those are executable after the
// layer's A* solution).
func (s *scheduler) emitThroughLayer(maxLayer int, layout mapping.Layout, out *circuit.Circuit) {
	s.prepare()
	for {
		progress := false
		for gi := 0; gi < s.circ.NumGates(); gi++ {
			if s.emitted[gi] {
				continue
			}
			g := s.circ.Gate(gi)
			if g.TwoQubit() && s.layerOf[gi] > maxLayer {
				continue
			}
			depsOK := true
			for _, p := range s.dag.Predecessors(gi) {
				if !s.emitted[p] {
					depsOK = false
					break
				}
			}
			if !depsOK {
				continue
			}
			out.Append(g.Remap(layout.Phys))
			s.emitted[gi] = true
			progress = true
		}
		if !progress {
			return
		}
	}
}

// emitTail flushes trailing single-qubit gates after the last layer.
func (s *scheduler) emitTail(layout mapping.Layout, out *circuit.Circuit) {
	s.emitThroughLayer(len(s.layers), layout, out)
}
