package arch

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// NoiseModel captures per-edge two-qubit gate error rates — the
// "variability-aware" hardware model the paper's §VI calls for (after
// Tannu & Qureshi): on real chips the CNOT error differs per qubit
// pair, so a router that counts SWAPs uniformly can pick reliably-bad
// paths. Edges absent from EdgeError fall back to Default.
type NoiseModel struct {
	// EdgeError maps a coupling edge to its CNOT error rate in (0, 1).
	EdgeError map[Edge]float64
	// Default is the error rate assumed for unlisted edges.
	Default float64
}

// UniformNoise returns a model where every edge has error rate e.
func UniformNoise(e float64) *NoiseModel {
	return &NoiseModel{Default: e}
}

// RandomNoise returns a model with per-edge error rates drawn
// log-uniformly from [lo, hi] — the spread reported for real devices
// (roughly 10× between best and worst pair). Deterministic per rng.
func RandomNoise(d *Device, lo, hi float64, rng *rand.Rand) *NoiseModel {
	if lo <= 0 || hi >= 1 || lo > hi {
		panic(fmt.Sprintf("arch: invalid noise range [%g, %g]", lo, hi))
	}
	m := &NoiseModel{EdgeError: make(map[Edge]float64, len(d.Edges())), Default: hi}
	logLo, logHi := math.Log(lo), math.Log(hi)
	for _, e := range d.Edges() {
		m.EdgeError[e] = math.Exp(logLo + rng.Float64()*(logHi-logLo))
	}
	return m
}

// Error returns the CNOT error rate of edge e under the model.
func (m *NoiseModel) Error(e Edge) float64 {
	if m.EdgeError != nil {
		if v, ok := m.EdgeError[NewEdge(e.A, e.B)]; ok {
			return v
		}
	}
	return m.Default
}

// EdgeWeight returns the routing cost of traversing edge e: the
// negative log success probability of one CNOT, -ln(1-err). Summing
// weights along a path gives the -ln success probability of a CNOT
// chain, so shortest weighted paths are most-reliable paths.
func (m *NoiseModel) EdgeWeight(e Edge) float64 {
	err := m.Error(e)
	if err <= 0 {
		return 0
	}
	if err >= 1 {
		return math.Inf(1)
	}
	return -math.Log(1 - err)
}

// PruneUnreliableEdges returns a copy of the device without the
// couplers whose error rate exceeds maxErr. If removing them would
// disconnect the chip, the best (lowest-error) removed edges are added
// back until connectivity is restored, so routing always remains
// possible. The result's edge set is a subset of the original's, so
// circuits compliant with the pruned device are compliant with the
// real one.
func PruneUnreliableEdges(d *Device, m *NoiseModel, maxErr float64) *Device {
	var keep, dropped []Edge
	for _, e := range d.Edges() {
		if m.Error(e) <= maxErr {
			keep = append(keep, e)
		} else {
			dropped = append(dropped, e)
		}
	}
	if len(dropped) == 0 {
		return d
	}
	// Best dropped edges first, for the reconnection loop.
	sort.Slice(dropped, func(i, j int) bool { return m.Error(dropped[i]) < m.Error(dropped[j]) })
	for !connected(d.NumQubits(), keep) {
		if len(dropped) == 0 {
			return d // cannot happen: the original device is connected
		}
		keep = append(keep, dropped[0])
		dropped = dropped[1:]
	}
	pruned, err := New(d.Name()+"-pruned", d.NumQubits(), keep)
	if err != nil {
		// Unreachable: keep is a connected subset of a valid edge set.
		panic(err)
	}
	return pruned
}

// connected reports whether the edge set spans all n qubits.
func connected(n int, edges []Edge) bool {
	if n <= 1 {
		return true
	}
	dist := BFSDistances(n, edges, 0)
	for _, v := range dist {
		if v < 0 {
			return false
		}
	}
	return true
}

// WeightedDistances computes all-pairs most-reliable-path costs on the
// device under the noise model (Floyd–Warshall over -ln(1-err) edge
// weights). The matrix is flat row-major like Device.Distances: entry
// i*n+j is 0 on the diagonal and the summed weight of the most
// reliable path otherwise. A noise-aware router substitutes this
// matrix for hop counts in its heuristic cost function.
func WeightedDistances(d *Device, m *NoiseModel) []float64 {
	n := d.NumQubits()
	dist := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				dist[i*n+j] = math.Inf(1)
			}
		}
	}
	for _, e := range d.Edges() {
		w := m.EdgeWeight(e)
		if w < dist[e.A*n+e.B] {
			dist[e.A*n+e.B] = w
			dist[e.B*n+e.A] = w
		}
	}
	for k := 0; k < n; k++ {
		dk := dist[k*n : k*n+n]
		for i := 0; i < n; i++ {
			dik := dist[i*n+k]
			if math.IsInf(dik, 1) {
				continue
			}
			di := dist[i*n : i*n+n]
			for j := 0; j < n; j++ {
				if v := dik + dk[j]; v < di[j] {
					di[j] = v
				}
			}
		}
	}
	return dist
}
