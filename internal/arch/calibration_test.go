package arch

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCalibrationSnapshotLifecycle(t *testing.T) {
	dev := Grid(3, 3)
	if dev.Calibration() != nil {
		t.Fatal("fresh device must have nil calibration")
	}

	m1 := &NoiseModel{Default: 0.01, EdgeError: map[Edge]float64{NewEdge(0, 1): 0.05}}
	s1, err := dev.ApplyCalibration(m1)
	if err != nil {
		t.Fatalf("ApplyCalibration: %v", err)
	}
	if s1.Version != 1 {
		t.Fatalf("first snapshot version = %d, want 1", s1.Version)
	}
	if got := dev.Calibration(); got != s1 {
		t.Fatal("Calibration() did not return the installed snapshot")
	}
	if s1.Model == m1 {
		t.Fatal("snapshot must hold a clone, not the caller's model")
	}
	if s1.Model.Error(NewEdge(0, 1)) != 0.05 || s1.Model.Default != 0.01 {
		t.Fatal("clone does not match the applied model")
	}

	// The snapshot is immune to later mutation of the caller's model.
	m1.EdgeError[NewEdge(0, 1)] = 0.9
	m1.Default = 0.5
	if s1.Model.Error(NewEdge(0, 1)) != 0.05 || s1.Model.Default != 0.01 {
		t.Fatal("mutating the applied model leaked into the snapshot")
	}

	s2, err := dev.ApplyCalibration(&NoiseModel{Default: 0.02})
	if err != nil {
		t.Fatalf("second ApplyCalibration: %v", err)
	}
	if s2.Version != 2 {
		t.Fatalf("second snapshot version = %d, want 2", s2.Version)
	}
	if dev.Calibration() != s2 {
		t.Fatal("swap did not install the new snapshot")
	}
	if s2.Applied.Before(s1.Applied) {
		t.Fatal("snapshot timestamps out of order")
	}
}

func TestApplyCalibrationValidation(t *testing.T) {
	dev := Line(4)
	good, err := dev.ApplyCalibration(UniformNoise(0.01))
	if err != nil {
		t.Fatalf("valid calibration rejected: %v", err)
	}
	cases := []struct {
		name string
		m    *NoiseModel
		want string
	}{
		{"nil model", nil, "nil calibration"},
		{"nan default", &NoiseModel{Default: math.NaN()}, "not finite"},
		{"default too high", &NoiseModel{Default: 1.0}, "outside [0, 1)"},
		{"negative edge rate", &NoiseModel{EdgeError: map[Edge]float64{NewEdge(0, 1): -0.1}}, "outside [0, 1)"},
		{"unknown edge", &NoiseModel{EdgeError: map[Edge]float64{NewEdge(0, 3): 0.1}}, "no coupler (0,3)"},
	}
	for _, tc := range cases {
		if _, err := dev.ApplyCalibration(tc.m); err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name the problem (want %q)", tc.name, err, tc.want)
		}
	}
	if dev.Calibration() != good {
		t.Fatal("rejected calibrations must leave the current snapshot in place")
	}
}

// TestValidateCalibrationDeterministicError pins the validation walk
// to sorted edge order: the checker used to range the EdgeError map
// directly, so a model with several problems produced a randomly
// chosen error message — the same bad request could 400 with
// different bodies on consecutive submissions.
func TestValidateCalibrationDeterministicError(t *testing.T) {
	dev := Line(4)
	m := &NoiseModel{EdgeError: map[Edge]float64{
		NewEdge(0, 2): 0.1,
		NewEdge(1, 3): 0.1,
		NewEdge(0, 3): 0.1,
	}}
	for i := 0; i < 32; i++ {
		err := dev.ValidateCalibration(m)
		if err == nil {
			t.Fatal("model with three unknown couplers accepted")
		}
		if !strings.Contains(err.Error(), "no coupler (0,2)") {
			t.Fatalf("round %d: error %q must name the first offending edge in sorted order, (0,2)", i, err)
		}
	}
}

// TestWeightedDistancesFreshAfterMutation is the stale-memo regression:
// memoization used to key on *NoiseModel, so editing a model in place
// kept serving the matrix of its old contents. Content-digest keys make
// the edited model a different memo entry by construction.
func TestWeightedDistancesFreshAfterMutation(t *testing.T) {
	dev := Ring(6)
	m := &NoiseModel{Default: 0.001, EdgeError: map[Edge]float64{NewEdge(0, 1): 0.001}}
	before := dev.WeightedDistancesFor(m)

	m.EdgeError[NewEdge(0, 1)] = 0.4 // in-place recalibration
	after := dev.WeightedDistancesFor(m)

	want := WeightedDistances(dev, m)
	for i := range want {
		if after[i] != want[i] {
			t.Fatalf("stale matrix served after in-place mutation (flat index %d: got %g, want %g)", i, after[i], want[i])
		}
	}
	n := dev.NumQubits()
	if !(after[0*n+1] > before[0*n+1]) {
		t.Fatal("degraded edge did not increase its weighted distance")
	}
}

// TestWeightedDistancesMemoLRU is the eviction regression: overflow
// used to delete an arbitrary map entry, which could evict the hottest
// model while a cold one stayed pinned. Eviction must be least-recently
// -used: a just-touched entry survives overflow.
func TestWeightedDistancesMemoLRU(t *testing.T) {
	dev := Line(6)
	rng := rand.New(rand.NewSource(3))
	models := make([]*NoiseModel, maxWeightedDistanceMemos+1)
	for i := range models {
		models[i] = RandomNoise(dev, 1e-3, 1e-1, rng)
	}

	var computes atomic.Int64
	wdistComputeHook = func(*Device, *NoiseModel) { computes.Add(1) }
	defer func() { wdistComputeHook = nil }()

	for _, m := range models[:maxWeightedDistanceMemos] {
		dev.WeightedDistancesFor(m) // fill the memo to capacity
	}
	dev.WeightedDistancesFor(models[0])                        // touch: most recently used now
	dev.WeightedDistancesFor(models[maxWeightedDistanceMemos]) // overflow

	before := computes.Load()
	dev.WeightedDistancesFor(models[0])
	if computes.Load() != before {
		t.Fatal("most recently used entry was evicted on overflow")
	}
	dev.WeightedDistancesFor(models[1]) // LRU victim: must recompute
	if computes.Load() != before+1 {
		t.Fatal("least recently used entry survived overflow")
	}

	dev.wdistMu.Lock()
	n, ord := len(dev.wdist), len(dev.wdistOrder)
	dev.wdistMu.Unlock()
	if n > maxWeightedDistanceMemos || n != ord {
		t.Fatalf("memo bookkeeping inconsistent: %d entries, %d order slots, cap %d", n, ord, maxWeightedDistanceMemos)
	}
}

// TestWeightedDistancesSingleFlight: concurrent cold lookups of one
// model must run the O(N³) computation exactly once (run with -race).
func TestWeightedDistancesSingleFlight(t *testing.T) {
	dev := Grid(4, 4)
	m := RandomNoise(dev, 1e-3, 1e-1, rand.New(rand.NewSource(11)))

	var computes atomic.Int64
	wdistComputeHook = func(*Device, *NoiseModel) { computes.Add(1) }
	defer func() { wdistComputeHook = nil }()

	const goroutines = 16
	mats := make([][]float64, goroutines)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			mats[i] = dev.WeightedDistancesFor(m)
		}(i)
	}
	close(start)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("%d concurrent cold lookups computed %d times, want 1 (single-flight)", goroutines, got)
	}
	for i := 1; i < goroutines; i++ {
		if &mats[i][0] != &mats[0][0] {
			t.Fatal("concurrent lookups returned different matrices")
		}
	}
}

// TestCalibrationConcurrentSwap exercises the reader-mostly contract
// under -race: readers take atomic snapshot loads and memoized
// distance lookups while a writer recalibrates.
func TestCalibrationConcurrentSwap(t *testing.T) {
	dev := Grid(3, 3)
	rng := rand.New(rand.NewSource(5))
	models := make([]*NoiseModel, 8)
	for i := range models {
		models[i] = RandomNoise(dev, 1e-3, 1e-1, rng)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if snap := dev.Calibration(); snap != nil {
					w := dev.WeightedDistancesFor(snap.Model)
					if len(w) != dev.NumQubits()*dev.NumQubits() {
						t.Error("bad matrix size")
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 64; i++ {
		if _, err := dev.ApplyCalibration(models[i%len(models)]); err != nil {
			t.Errorf("ApplyCalibration: %v", err)
			break
		}
	}
	close(stop)
	wg.Wait()

	if got := dev.Calibration().Version; got != 64 {
		t.Fatalf("final version = %d, want 64", got)
	}
}

func TestNoiseDigestCanonical(t *testing.T) {
	a := &NoiseModel{Default: 0.01, EdgeError: map[Edge]float64{NewEdge(0, 1): 0.1, NewEdge(1, 2): 0.2}}
	b := &NoiseModel{Default: 0.01, EdgeError: map[Edge]float64{NewEdge(1, 2): 0.2, NewEdge(0, 1): 0.1}}
	if a.digest() != b.digest() {
		t.Fatal("equal models must hash equal regardless of map order")
	}
	c := &NoiseModel{Default: 0.01, EdgeError: map[Edge]float64{NewEdge(0, 1): 0.1, NewEdge(1, 2): 0.21}}
	if a.digest() == c.digest() {
		t.Fatal("differing edge rates must change the digest")
	}
	d := &NoiseModel{Default: 0.02, EdgeError: map[Edge]float64{NewEdge(0, 1): 0.1, NewEdge(1, 2): 0.2}}
	if a.digest() == d.digest() {
		t.Fatal("differing default rates must change the digest")
	}
}

func TestFromSpec(t *testing.T) {
	for spec, wantQubits := range map[string]int{
		"tokyo": 20, "QX5": 16, "falcon27": 27,
		"grid:3x4": 12, "line:7": 7, "ring:5": 5, "star:4": 4,
		"full:3": 3, "sycamore:3x3": 9, "aspen:2": 16,
	} {
		d, err := FromSpec(spec)
		if err != nil {
			t.Errorf("FromSpec(%q): %v", spec, err)
			continue
		}
		if d.NumQubits() != wantQubits {
			t.Errorf("FromSpec(%q) = %d qubits, want %d", spec, d.NumQubits(), wantQubits)
		}
	}
	for _, bad := range []string{"", "nope", "grid:0x4", "line:-1", "ring:2", "grid:64x64"} {
		if _, err := FromSpec(bad); err == nil {
			t.Errorf("FromSpec(%q) accepted", bad)
		}
	}
}
