package arch

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the coupling graph in Graphviz format. When a layout is
// provided (logical→physical, may be nil) each node is labelled with
// the logical qubit it hosts; when a noise model is provided, edges are
// annotated with their error rates.
func (d *Device) DOT(l2p []int, noise *NoiseModel) string {
	p2l := map[int]int{}
	for q, p := range l2p {
		p2l[p] = q
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "graph %q {\n", d.name)
	sb.WriteString("  node [shape=circle];\n")
	for p := 0; p < d.n; p++ {
		label := fmt.Sprintf("Q%d", p)
		if q, ok := p2l[p]; ok {
			label = fmt.Sprintf("Q%d\\nq%d", p, q)
		}
		fmt.Fprintf(&sb, "  %d [label=%q];\n", p, label)
	}
	for _, e := range d.edges {
		if noise != nil {
			fmt.Fprintf(&sb, "  %d -- %d [label=%q];\n", e.A, e.B, fmt.Sprintf("%.3f", noise.Error(e)))
		} else {
			fmt.Fprintf(&sb, "  %d -- %d;\n", e.A, e.B)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// AdjacencySummary returns a one-line-per-qubit text description of the
// coupling graph, for CLI display.
func (d *Device) AdjacencySummary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %d qubits, %d couplers, diameter %d\n", d.name, d.n, len(d.edges), d.Diameter())
	for p := 0; p < d.n; p++ {
		nbs := make([]string, 0, len(d.adj[p]))
		for _, nb := range d.adj[p] {
			nbs = append(nbs, fmt.Sprintf("Q%d", nb))
		}
		fmt.Fprintf(&sb, "  Q%-3d ~ %s\n", p, strings.Join(nbs, " "))
	}
	return sb.String()
}

// DegreeHistogram returns counts of qubits by coupler degree, sorted by
// degree — a quick fingerprint of a topology.
func (d *Device) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for p := 0; p < d.n; p++ {
		h[len(d.adj[p])]++
	}
	return h
}

// Degrees returns the sorted distinct degrees present on the device.
func (d *Device) Degrees() []int {
	h := d.DegreeHistogram()
	out := make([]int, 0, len(h))
	//sabre:nondeterm-ok keys collected then sorted below
	for deg := range h {
		out = append(out, deg)
	}
	sort.Ints(out)
	return out
}
