package arch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		edges []Edge
	}{
		{"zero qubits", 0, nil},
		{"negative", -3, nil},
		{"self loop", 2, []Edge{{1, 1}}},
		{"out of range", 2, []Edge{{0, 2}}},
		{"negative endpoint", 2, []Edge{{-1, 0}}},
		{"disconnected", 4, []Edge{{0, 1}, {2, 3}}},
		{"isolated qubit", 3, []Edge{{0, 1}}},
	}
	for _, c := range cases {
		if _, err := New(c.name, c.n, c.edges); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestDuplicateEdgesMerged(t *testing.T) {
	d, err := New("dup", 2, []Edge{{0, 1}, {1, 0}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Edges()) != 1 {
		t.Fatalf("got %d edges, want 1", len(d.Edges()))
	}
}

func TestSingleQubitDevice(t *testing.T) {
	d, err := New("single", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumQubits() != 1 || d.Distance(0, 0) != 0 {
		t.Fatalf("single-qubit device wrong: %v", d)
	}
}

func TestIBMQ20Tokyo(t *testing.T) {
	d := IBMQ20Tokyo()
	if d.NumQubits() != 20 {
		t.Fatalf("Q20 has %d qubits", d.NumQubits())
	}
	if got := len(d.Edges()); got != 43 {
		t.Fatalf("Q20 has %d edges, want 43", got)
	}
	// Spot checks against Fig. 2: Q0-Q1 and Q0-Q5 coupled, Q0-Q6 not.
	if !d.Connected(0, 1) || !d.Connected(0, 5) {
		t.Fatal("Q0 should couple to Q1 and Q5")
	}
	if d.Connected(0, 6) {
		t.Fatal("Q0 should not couple to Q6")
	}
	// Diagonals exist: Q1-Q7 and Q2-Q6.
	if !d.Connected(1, 7) || !d.Connected(2, 6) {
		t.Fatal("missing diagonal couplers")
	}
	// Diameter of Tokyo is small thanks to diagonals.
	if dia := d.Diameter(); dia < 3 || dia > 5 {
		t.Fatalf("suspicious Q20 diameter %d", dia)
	}
}

func TestQ20ContainsK4(t *testing.T) {
	// The crossed square {1,2,6,7} forms a K4; small-benchmark perfect
	// mappings rely on such dense subgraphs.
	d := IBMQ20Tokyo()
	quad := []int{1, 2, 6, 7}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if !d.Connected(quad[i], quad[j]) {
				t.Fatalf("qubits %d,%d of crossed square not connected", quad[i], quad[j])
			}
		}
	}
}

func TestLineDistances(t *testing.T) {
	d := Line(6)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			want := i - j
			if want < 0 {
				want = -want
			}
			if d.Distance(i, j) != want {
				t.Fatalf("line dist(%d,%d) = %d, want %d", i, j, d.Distance(i, j), want)
			}
		}
	}
	if d.Diameter() != 5 {
		t.Fatalf("line(6) diameter = %d", d.Diameter())
	}
}

func TestRing(t *testing.T) {
	d := Ring(6)
	if d.Distance(0, 3) != 3 || d.Distance(0, 5) != 1 {
		t.Fatalf("ring distances wrong: %d %d", d.Distance(0, 3), d.Distance(0, 5))
	}
	if d.Diameter() != 3 {
		t.Fatalf("ring(6) diameter = %d", d.Diameter())
	}
}

func TestGrid(t *testing.T) {
	d := Grid(3, 3)
	if d.NumQubits() != 9 {
		t.Fatal("grid size")
	}
	if d.Distance(0, 8) != 4 { // manhattan
		t.Fatalf("grid dist(0,8) = %d", d.Distance(0, 8))
	}
	if !d.Connected(4, 1) || !d.Connected(4, 3) || !d.Connected(4, 5) || !d.Connected(4, 7) {
		t.Fatal("center of 3x3 grid should have 4 neighbours")
	}
	if d.Degree(4) != 4 || d.Degree(0) != 2 {
		t.Fatalf("grid degrees wrong: %d %d", d.Degree(4), d.Degree(0))
	}
}

func TestFullyConnected(t *testing.T) {
	d := FullyConnected(5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			want := 1
			if i == j {
				want = 0
			}
			if d.Distance(i, j) != want {
				t.Fatal("full graph distance wrong")
			}
		}
	}
}

func TestStar(t *testing.T) {
	d := Star(5)
	if d.Distance(1, 2) != 2 || d.Distance(0, 4) != 1 {
		t.Fatal("star distances wrong")
	}
	if d.Degree(0) != 4 {
		t.Fatal("hub degree wrong")
	}
}

func TestHeavyHex(t *testing.T) {
	d := HeavyHex(3, 9)
	if d.NumQubits() <= 27 {
		t.Fatalf("heavy-hex should add bridge qubits, got %d", d.NumQubits())
	}
	// Must be connected (New enforces) and sparser than the grid.
	grid := Grid(3, 9)
	if len(d.Edges())-(d.NumQubits()-grid.NumQubits())*2 >= len(grid.Edges()) {
		t.Log("heavy-hex density check skipped: construction differs")
	}
}

func TestShortestPath(t *testing.T) {
	d := Grid(3, 3)
	p := d.ShortestPath(0, 8)
	if len(p) != 5 || p[0] != 0 || p[len(p)-1] != 8 {
		t.Fatalf("path %v", p)
	}
	for i := 0; i+1 < len(p); i++ {
		if !d.Connected(p[i], p[i+1]) {
			t.Fatalf("path step %d-%d not an edge", p[i], p[i+1])
		}
	}
	if sp := d.ShortestPath(4, 4); len(sp) != 1 || sp[0] != 4 {
		t.Fatalf("self path %v", sp)
	}
}

// Property: on every catalogue device the Floyd–Warshall matrix agrees
// with an independent BFS, and satisfies metric-space axioms.
func TestDistanceMatrixProperties(t *testing.T) {
	devices := []*Device{
		IBMQ20Tokyo(), IBMQX5(), Line(9), Ring(8), Grid(4, 5), Star(7), FullyConnected(6), HeavyHex(2, 6),
	}
	for _, d := range devices {
		n := d.NumQubits()
		for src := 0; src < n; src++ {
			bfs := BFSDistances(n, d.Edges(), src)
			for j := 0; j < n; j++ {
				if bfs[j] != d.Distance(src, j) {
					t.Fatalf("%s: FW(%d,%d)=%d but BFS=%d", d.Name(), src, j, d.Distance(src, j), bfs[j])
				}
			}
		}
		for i := 0; i < n; i++ {
			if d.Distance(i, i) != 0 {
				t.Fatalf("%s: dist(%d,%d) != 0", d.Name(), i, i)
			}
			for j := 0; j < n; j++ {
				if d.Distance(i, j) != d.Distance(j, i) {
					t.Fatalf("%s: asymmetric distance", d.Name())
				}
				for k := 0; k < n; k++ {
					if d.Distance(i, j) > d.Distance(i, k)+d.Distance(k, j) {
						t.Fatalf("%s: triangle inequality violated", d.Name())
					}
				}
			}
		}
	}
}

// Property: on random connected graphs, distance 1 ⇔ edge.
func TestDistanceOneIffEdge(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		// Random spanning tree + random chords guarantees connectivity.
		var edges []Edge
		for i := 1; i < n; i++ {
			edges = append(edges, NewEdge(i, rng.Intn(i)))
		}
		for k := 0; k < n; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				edges = append(edges, NewEdge(a, b))
			}
		}
		d, err := New("rand", n, edges)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				if (d.Distance(i, j) == 1) != d.Connected(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNeighborsSortedAndConsistent(t *testing.T) {
	d := IBMQ20Tokyo()
	for p := 0; p < d.NumQubits(); p++ {
		nbs := d.Neighbors(p)
		for i, nb := range nbs {
			if i > 0 && nbs[i-1] >= nb {
				t.Fatalf("neighbours of %d not sorted: %v", p, nbs)
			}
			if !d.Connected(p, nb) {
				t.Fatalf("neighbour %d of %d not connected", nb, p)
			}
		}
	}
}

func TestStringer(t *testing.T) {
	got := IBMQ20Tokyo().String()
	if got != "IBM-Q20-Tokyo(N=20, |E|=43)" {
		t.Fatalf("String() = %q", got)
	}
}

func TestErrorModelValues(t *testing.T) {
	m := Q20ErrorModel()
	if m.TwoQubitError != 3.00e-2 || m.SingleQubitError != 4.43e-3 || m.MeasurementError != 8.74e-2 {
		t.Fatal("error model does not match Fig. 2")
	}
	if m.T1Microseconds != 87.29 || m.T2Microseconds != 54.43 {
		t.Fatal("coherence times do not match Fig. 2")
	}
}

// The dense-edge tables added for bitset routing must agree with the
// canonical edge list and adjacency on every catalogue device: the
// endpoints table is the inverse of EdgeIndex, and bit id of incident
// row p is set exactly when edge id touches p.
func TestEdgeBitsetTables(t *testing.T) {
	devices := []*Device{
		IBMQ20Tokyo(),
		Line(5),
		Ring(8),
		Grid(4, 5),
		FullyConnected(6),
		Star(7),
		HeavyHex(2, 2),
		MustNew("single", 1, nil),
	}
	for _, d := range devices {
		wantWords := (len(d.Edges()) + 63) / 64
		if d.EdgeWords() != wantWords {
			t.Errorf("%s: EdgeWords=%d, want %d", d.Name(), d.EdgeWords(), wantWords)
		}
		ends := d.EdgeEndpoints()
		if len(ends) != 2*len(d.Edges()) {
			t.Fatalf("%s: endpoints table has %d entries, want %d", d.Name(), len(ends), 2*len(d.Edges()))
		}
		for id, e := range d.Edges() {
			if int(ends[2*id]) != e.A || int(ends[2*id+1]) != e.B {
				t.Errorf("%s: edge %d endpoints (%d,%d), want (%d,%d)",
					d.Name(), id, ends[2*id], ends[2*id+1], e.A, e.B)
			}
			if e.A >= e.B {
				t.Errorf("%s: edge %d not canonical: (%d,%d)", d.Name(), id, e.A, e.B)
			}
		}
		inc := d.IncidentEdgeWords()
		if len(inc) != d.NumQubits()*d.EdgeWords() {
			t.Fatalf("%s: incident table has %d words, want %d", d.Name(), len(inc), d.NumQubits()*d.EdgeWords())
		}
		for p := 0; p < d.NumQubits(); p++ {
			row := inc[p*d.EdgeWords() : (p+1)*d.EdgeWords()]
			for id, e := range d.Edges() {
				got := row[id/64]&(1<<uint(id%64)) != 0
				want := e.A == p || e.B == p
				if got != want {
					t.Errorf("%s: qubit %d edge %d: bit=%v, touches=%v", d.Name(), p, id, got, want)
				}
			}
			// Bit population of the row equals the qubit's degree.
			pop := 0
			for _, w := range row {
				for ; w != 0; w &= w - 1 {
					pop++
				}
			}
			if pop != d.Degree(p) {
				t.Errorf("%s: qubit %d row popcount %d, want degree %d", d.Name(), p, pop, d.Degree(p))
			}
		}
	}
}
