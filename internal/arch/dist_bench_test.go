package arch

import (
	"math/rand"
	"testing"
)

// The weighted-distance memo exists because SABRE's multi-trial
// protocol used to rerun the O(N³) Floyd–Warshall once per traversal
// (15 times for the paper's 5-trial × 3-traversal configuration).
// These two benchmarks quantify the gap between recomputing and
// serving the memoized matrix.

func BenchmarkWeightedDistancesRecompute(b *testing.B) {
	dev := Sycamore(7, 7)
	noise := RandomNoise(dev, 1e-3, 1e-1, rand.New(rand.NewSource(1)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if w := WeightedDistances(dev, noise); w[1] < 0 {
			b.Fatal("impossible")
		}
	}
}

func BenchmarkWeightedDistancesCached(b *testing.B) {
	dev := Sycamore(7, 7)
	noise := RandomNoise(dev, 1e-3, 1e-1, rand.New(rand.NewSource(1)))
	dev.WeightedDistancesFor(noise) // warm the memo
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if w := dev.WeightedDistancesFor(noise); w[1] < 0 {
			b.Fatal("impossible")
		}
	}
}

func TestWeightedDistancesForMatchesDirect(t *testing.T) {
	dev := Grid(4, 5)
	noise := RandomNoise(dev, 1e-3, 1e-1, rand.New(rand.NewSource(7)))
	direct := WeightedDistances(dev, noise)
	cached := dev.WeightedDistancesFor(noise)
	for i := range direct {
		if direct[i] != cached[i] {
			t.Fatalf("matrix mismatch at flat index %d: %g vs %g", i, direct[i], cached[i])
		}
	}
	if again := dev.WeightedDistancesFor(noise); &again[0] != &cached[0] {
		t.Fatal("second lookup did not return the memoized matrix")
	}
	if dev.WeightedDistancesFor(nil) != nil {
		t.Fatal("nil model must return nil")
	}
}

func TestWeightedDistancesMemoBounded(t *testing.T) {
	dev := Line(6)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 3*maxWeightedDistanceMemos; i++ {
		dev.WeightedDistancesFor(RandomNoise(dev, 1e-3, 1e-1, rng))
	}
	dev.wdistMu.Lock()
	n := len(dev.wdist)
	dev.wdistMu.Unlock()
	if n > maxWeightedDistanceMemos {
		t.Fatalf("memo grew to %d entries, cap is %d", n, maxWeightedDistanceMemos)
	}
}
