package arch

import (
	"math"
	"math/rand"
	"testing"
)

func TestUniformNoise(t *testing.T) {
	m := UniformNoise(0.01)
	e := NewEdge(0, 1)
	if m.Error(e) != 0.01 {
		t.Fatal("uniform error wrong")
	}
	w := m.EdgeWeight(e)
	if math.Abs(w+math.Log(0.99)) > 1e-15 {
		t.Fatalf("weight = %g", w)
	}
}

func TestEdgeWeightExtremes(t *testing.T) {
	if w := UniformNoise(0).EdgeWeight(NewEdge(0, 1)); w != 0 {
		t.Fatalf("zero error weight = %g", w)
	}
	if w := UniformNoise(1).EdgeWeight(NewEdge(0, 1)); !math.IsInf(w, 1) {
		t.Fatalf("unit error weight = %g", w)
	}
}

func TestNoiseErrorCanonicalizesEdges(t *testing.T) {
	m := &NoiseModel{EdgeError: map[Edge]float64{NewEdge(2, 5): 0.2}, Default: 0.01}
	if m.Error(Edge{A: 5, B: 2}) != 0.2 {
		t.Fatal("reversed edge lookup failed")
	}
	if m.Error(NewEdge(0, 1)) != 0.01 {
		t.Fatal("default fallback failed")
	}
}

func TestRandomNoiseRangeAndDeterminism(t *testing.T) {
	d := IBMQ20Tokyo()
	m1 := RandomNoise(d, 0.005, 0.05, rand.New(rand.NewSource(7)))
	m2 := RandomNoise(d, 0.005, 0.05, rand.New(rand.NewSource(7)))
	for _, e := range d.Edges() {
		v := m1.Error(e)
		if v < 0.005 || v > 0.05 {
			t.Fatalf("edge %v error %g out of range", e, v)
		}
		if v != m2.Error(e) {
			t.Fatal("RandomNoise not deterministic per seed")
		}
	}
}

func TestRandomNoisePanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RandomNoise(Line(3), 0.5, 0.1, rand.New(rand.NewSource(1)))
}

func TestWeightedDistancesUniformMatchesHops(t *testing.T) {
	// Under uniform noise, weighted distance = hops × per-edge weight.
	d := Grid(3, 3)
	m := UniformNoise(0.02)
	wd := WeightedDistances(d, m)
	unit := m.EdgeWeight(NewEdge(0, 1))
	for i := 0; i < 9; i++ {
		for j := 0; j < 9; j++ {
			want := float64(d.Distance(i, j)) * unit
			if math.Abs(wd[i*9+j]-want) > 1e-12 {
				t.Fatalf("wd[%d][%d] = %g, want %g", i, j, wd[i*9+j], want)
			}
		}
	}
}

func TestWeightedDistancesPrefersReliableDetour(t *testing.T) {
	// Ring of 4: direct edge 0-1 is terrible; the 3-hop detour 0-3-2-1
	// with good edges must win.
	d := Ring(4)
	m := &NoiseModel{
		EdgeError: map[Edge]float64{
			NewEdge(0, 1): 0.5,
			NewEdge(1, 2): 0.001,
			NewEdge(2, 3): 0.001,
			NewEdge(0, 3): 0.001,
		},
	}
	wd := WeightedDistances(d, m)
	detour := 3 * m.EdgeWeight(NewEdge(1, 2))
	if math.Abs(wd[0*4+1]-detour) > 1e-12 {
		t.Fatalf("wd[0][1] = %g, want detour cost %g", wd[0*4+1], detour)
	}
}

func TestPruneUnreliableEdges(t *testing.T) {
	d := Grid(3, 3)
	m := UniformNoise(0.01)
	m.EdgeError = map[Edge]float64{NewEdge(0, 1): 0.3, NewEdge(4, 5): 0.3}
	p := PruneUnreliableEdges(d, m, 0.1)
	if p.Connected(0, 1) || p.Connected(4, 5) {
		t.Fatal("bad edges survived pruning")
	}
	if len(p.Edges()) != len(d.Edges())-2 {
		t.Fatalf("pruned device has %d edges", len(p.Edges()))
	}
	// Still connected by construction.
	if p.Diameter() <= 0 {
		t.Fatal("pruned device broken")
	}
}

func TestPruneNoOpWhenAllGood(t *testing.T) {
	d := Grid(2, 2)
	if p := PruneUnreliableEdges(d, UniformNoise(0.01), 0.1); p != d {
		t.Fatal("pruning should return the original device untouched")
	}
}

func TestPruneRestoresConnectivity(t *testing.T) {
	// A line where every edge is bad: pruning must re-add the best
	// edges rather than disconnect the chip.
	d := Line(4)
	m := &NoiseModel{EdgeError: map[Edge]float64{
		NewEdge(0, 1): 0.5,
		NewEdge(1, 2): 0.4,
		NewEdge(2, 3): 0.3,
	}, Default: 0.5}
	p := PruneUnreliableEdges(d, m, 0.1)
	if len(p.Edges()) != 3 {
		t.Fatalf("connectivity not restored: %v", p.Edges())
	}
}

func TestPrunePartialRestoreKeepsBest(t *testing.T) {
	// Star with all edges bad except that removing only some would
	// disconnect: the best bad edges must return first.
	d := Star(4)
	m := &NoiseModel{EdgeError: map[Edge]float64{
		NewEdge(0, 1): 0.2,
		NewEdge(0, 2): 0.3,
		NewEdge(0, 3): 0.4,
	}, Default: 0.2}
	p := PruneUnreliableEdges(d, m, 0.1)
	// All three must come back (each leaf has exactly one edge).
	if len(p.Edges()) != 3 {
		t.Fatalf("star pruning wrong: %v", p.Edges())
	}
}

func TestWeightedDistancesMetricProperties(t *testing.T) {
	d := IBMQ20Tokyo()
	m := RandomNoise(d, 0.005, 0.05, rand.New(rand.NewSource(3)))
	wd := WeightedDistances(d, m)
	n := d.NumQubits()
	for i := 0; i < n; i++ {
		if wd[i*n+i] != 0 {
			t.Fatal("nonzero diagonal")
		}
		for j := 0; j < n; j++ {
			if wd[i*n+j] != wd[j*n+i] {
				t.Fatal("asymmetric")
			}
			for k := 0; k < n; k++ {
				if wd[i*n+j] > wd[i*n+k]+wd[k*n+j]+1e-12 {
					t.Fatal("triangle inequality violated")
				}
			}
		}
	}
}
