package arch

// This file is the device catalogue: real chips transcribed from vendor
// data plus parametric synthetic topologies used in tests, examples and
// scaling experiments.

// IBMQ20Tokyo returns the 20-qubit IBM Q20 "Tokyo" coupling graph used
// throughout the paper's evaluation (Fig. 2). Qubits are laid out in a
// 4×5 grid (rows 0-4, 5-9, 10-14, 15-19) with nearest-neighbour
// couplers plus diagonal couplers inside alternating grid squares.
func IBMQ20Tokyo() *Device {
	edges := []Edge{
		// Row 0 horizontal.
		{0, 1}, {1, 2}, {2, 3}, {3, 4},
		// Row 1 horizontal.
		{5, 6}, {6, 7}, {7, 8}, {8, 9},
		// Row 2 horizontal.
		{10, 11}, {11, 12}, {12, 13}, {13, 14},
		// Row 3 horizontal.
		{15, 16}, {16, 17}, {17, 18}, {18, 19},
		// Verticals row0-row1.
		{0, 5}, {1, 6}, {2, 7}, {3, 8}, {4, 9},
		// Verticals row1-row2.
		{5, 10}, {6, 11}, {7, 12}, {8, 13}, {9, 14},
		// Verticals row2-row3.
		{10, 15}, {11, 16}, {12, 17}, {13, 18}, {14, 19},
		// Diagonal couplers (crossed squares), per Fig. 2.
		{1, 7}, {2, 6},
		{3, 9}, {4, 8},
		{5, 11}, {6, 10},
		{7, 13}, {8, 12},
		{11, 17}, {12, 16},
		{13, 19}, {14, 18},
	}
	return MustNew("IBM-Q20-Tokyo", 20, edges)
}

// IBMQX5 returns the 16-qubit IBM QX5 topology (a 2×8 ladder), treated
// as symmetric per the paper's symmetric-coupling model. Used by prior
// work (Zulehner et al.) and by our scaling tests.
func IBMQX5() *Device {
	edges := []Edge{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7},
		{8, 9}, {9, 10}, {10, 11}, {11, 12}, {12, 13}, {13, 14}, {14, 15},
		{0, 15}, {1, 14}, {2, 13}, {3, 12}, {4, 11}, {5, 10}, {6, 9}, {7, 8},
	}
	return MustNew("IBM-QX5", 16, edges)
}

// Line returns an n-qubit 1-D nearest-neighbour chain — the classic
// LNN model from pre-NISQ mapping work (paper §VII).
func Line(n int) *Device {
	edges := make([]Edge, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, Edge{i, i + 1})
	}
	return MustNew("line", n, edges)
}

// Ring returns an n-qubit cycle.
func Ring(n int) *Device {
	edges := make([]Edge, 0, n)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, Edge{i, i + 1})
	}
	if n > 2 {
		edges = append(edges, NewEdge(0, n-1))
	}
	return MustNew("ring", n, edges)
}

// Grid returns a rows×cols 2-D nearest-neighbour lattice, the "2D NN"
// structure of paper §II-B. Qubit (r, c) has index r*cols + c.
func Grid(rows, cols int) *Device {
	var edges []Edge
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			i := r*cols + c
			if c+1 < cols {
				edges = append(edges, Edge{i, i + 1})
			}
			if r+1 < rows {
				edges = append(edges, Edge{i, i + cols})
			}
		}
	}
	return MustNew("grid", rows*cols, edges)
}

// FullyConnected returns the complete graph on n qubits: every CNOT is
// directly executable, so routing must insert zero SWAPs. Useful as a
// degenerate case in tests.
func FullyConnected(n int) *Device {
	var edges []Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, Edge{i, j})
		}
	}
	return MustNew("full", n, edges)
}

// Star returns a hub-and-spoke device: qubit 0 couples to all others.
func Star(n int) *Device {
	edges := make([]Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{0, i})
	}
	return MustNew("star", n, edges)
}

// HeavyHex returns an approximation of IBM's heavy-hexagon lattice with
// the given number of unit rows. It exercises SABRE's "arbitrary
// coupling" flexibility objective on a sparser-than-grid topology.
// The construction: rows of length `width` connected by bridge qubits
// on alternating columns.
func HeavyHex(rows, width int) *Device {
	if rows < 1 || width < 2 {
		panic("arch: HeavyHex requires rows >= 1 and width >= 2")
	}
	var edges []Edge
	n := 0
	rowStart := make([]int, rows)
	for r := 0; r < rows; r++ {
		rowStart[r] = n
		for c := 0; c+1 < width; c++ {
			edges = append(edges, Edge{n + c, n + c + 1})
		}
		n += width
	}
	// Bridge qubits between consecutive rows on alternating columns.
	for r := 0; r+1 < rows; r++ {
		for c := r % 2; c < width; c += 4 {
			bridge := n
			n++
			edges = append(edges, NewEdge(rowStart[r]+c, bridge))
			edges = append(edges, NewEdge(bridge, rowStart[r+1]+c))
		}
	}
	return MustNew("heavy-hex", n, edges)
}

// RigettiAspen returns an approximation of Rigetti's Aspen QPU
// topology: rings of 8 qubits ("octagons") tiled in a row, fused on two
// adjacent qubits per neighbouring pair. With one octagon this is the
// Agave/Aspen-1 8-qubit ring. The paper's §VI names Rigetti's differing
// gate set as a portability target; the topology exercises SABRE on
// sparse high-diameter coupling.
func RigettiAspen(octagons int) *Device {
	if octagons < 1 {
		panic("arch: RigettiAspen needs at least one octagon")
	}
	var edges []Edge
	for o := 0; o < octagons; o++ {
		base := o * 8
		for i := 0; i < 8; i++ {
			edges = append(edges, NewEdge(base+i, base+(i+1)%8))
		}
		if o > 0 {
			// Fuse with the previous octagon: Aspen connects qubits
			// 1,2 of one ring to 6,5 of the next.
			prev := (o - 1) * 8
			edges = append(edges, NewEdge(prev+1, base+6))
			edges = append(edges, NewEdge(prev+2, base+5))
		}
	}
	return MustNew("rigetti-aspen", octagons*8, edges)
}

// Sycamore returns a Google Sycamore-style diagonal grid of the given
// rows×cols logical sites: each qubit couples to up to four diagonal
// neighbours, the pattern of the 54-qubit Sycamore chip (rows=6,
// cols=9 approximates it).
func Sycamore(rows, cols int) *Device {
	if rows < 2 || cols < 2 {
		panic("arch: Sycamore needs at least a 2x2 array")
	}
	idx := func(r, c int) int { return r*cols + c }
	var edges []Edge
	for r := 0; r+1 < rows; r++ {
		for c := 0; c < cols; c++ {
			// Diagonal couplers to the row below; alternate the offset
			// pattern per row to form the brick-wall diagonal lattice.
			if r%2 == 0 {
				edges = append(edges, NewEdge(idx(r, c), idx(r+1, c)))
				if c > 0 {
					edges = append(edges, NewEdge(idx(r, c), idx(r+1, c-1)))
				}
			} else {
				edges = append(edges, NewEdge(idx(r, c), idx(r+1, c)))
				if c+1 < cols {
					edges = append(edges, NewEdge(idx(r, c), idx(r+1, c+1)))
				}
			}
		}
	}
	return MustNew("sycamore", rows*cols, edges)
}

// IBMFalcon27 returns the 27-qubit IBM Falcon heavy-hexagon topology
// (e.g. ibmq_mumbai/montreal) — the successor generation to the Q20
// Tokyo evaluated in the paper, with sparser degree ≤ 3 coupling.
func IBMFalcon27() *Device {
	edges := []Edge{
		{0, 1}, {1, 2}, {2, 3}, {3, 5}, {5, 8}, {8, 9}, {8, 11},
		{11, 14}, {14, 13}, {13, 12}, {12, 10}, {10, 7}, {7, 4},
		{4, 1}, {4, 7}, {6, 7}, {12, 15}, {15, 18}, {18, 17},
		{17, 16}, {16, 14}, {18, 21}, {21, 23}, {23, 24}, {24, 25},
		{25, 22}, {22, 19}, {19, 16}, {19, 20}, {25, 26},
	}
	return MustNew("IBM-Falcon-27", 27, edges)
}

// Q20ErrorModel returns the average chip parameters reported for the
// IBM Q20 Tokyo in paper Fig. 2. These feed the fidelity and
// execution-time estimates in internal/metrics.
type ErrorModel struct {
	SingleQubitError float64 // per single-qubit gate
	TwoQubitError    float64 // per CNOT
	MeasurementError float64 // per measurement
	T1Microseconds   float64 // relaxation time
	T2Microseconds   float64 // dephasing time
	SingleQubitNanos float64 // single-qubit gate duration
	TwoQubitNanos    float64 // CNOT duration
}

// Q20ErrorModel returns the Fig. 2 average parameters. Gate durations
// are representative superconducting values (not given in the figure).
func Q20ErrorModel() ErrorModel {
	return ErrorModel{
		SingleQubitError: 4.43e-3,
		TwoQubitError:    3.00e-2,
		MeasurementError: 8.74e-2,
		T1Microseconds:   87.29,
		T2Microseconds:   54.43,
		SingleQubitNanos: 50,
		TwoQubitNanos:    300,
	}
}
