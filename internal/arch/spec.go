package arch

import (
	"fmt"
	"strconv"
	"strings"
)

// FromSpec constructs a device from its spec string — the shared
// vocabulary of the daemon's device field, benchtab's -fleet list, and
// anything else that names devices textually. Fixed names: tokyo
// (aliases ibmq20, q20), qx5 (ibmqx5), falcon27 (falcon).
// Parameterized families: grid:<r>x<c>, sycamore:<r>x<c>, line:<n>,
// ring:<n>, star:<n>, full:<n>, aspen:<octagons>. Specs are matched
// case-insensitively with surrounding whitespace ignored; sizes are
// capped at 1024 qubits.
func FromSpec(spec string) (*Device, error) {
	spec = strings.ToLower(strings.TrimSpace(spec))
	switch spec {
	case "tokyo", "ibmq20", "q20":
		return IBMQ20Tokyo(), nil
	case "qx5", "ibmqx5":
		return IBMQX5(), nil
	case "falcon", "falcon27":
		return IBMFalcon27(), nil
	}
	kind, arg, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("unknown device %q", spec)
	}
	dims := func() (int, int, error) {
		rs, cs, ok := strings.Cut(arg, "x")
		if !ok {
			return 0, 0, fmt.Errorf("device %q needs <rows>x<cols>", spec)
		}
		r, err1 := strconv.Atoi(rs)
		c, err2 := strconv.Atoi(cs)
		if err1 != nil || err2 != nil || r < 1 || c < 1 {
			return 0, 0, fmt.Errorf("device %q: bad dimensions %q", spec, arg)
		}
		return r, c, nil
	}
	switch kind {
	case "grid", "sycamore":
		r, c, err := dims()
		if err != nil {
			return nil, err
		}
		if r*c > 1024 {
			return nil, fmt.Errorf("device %q too large (max 1024 qubits)", spec)
		}
		if kind == "grid" {
			return Grid(r, c), nil
		}
		return Sycamore(r, c), nil
	case "line", "ring", "star", "full", "aspen":
		n, err := strconv.Atoi(arg)
		if err != nil || n < 1 || n > 1024 {
			return nil, fmt.Errorf("device %q: bad size %q", spec, arg)
		}
		switch kind {
		case "line":
			return Line(n), nil
		case "ring":
			if n < 3 {
				return nil, fmt.Errorf("ring needs at least 3 qubits")
			}
			return Ring(n), nil
		case "star":
			if n < 2 {
				return nil, fmt.Errorf("star needs at least 2 qubits")
			}
			return Star(n), nil
		case "full":
			return FullyConnected(n), nil
		default:
			if n > 16 {
				return nil, fmt.Errorf("aspen supports at most 16 octagons")
			}
			return RigettiAspen(n), nil
		}
	}
	return nil, fmt.Errorf("unknown device %q", spec)
}
