// Package arch models NISQ device connectivity: coupling graphs,
// all-pairs shortest-path distance matrices, and a catalogue of real
// and synthetic device topologies.
//
// A Device is the hardware half of the qubit mapping problem (paper
// §III): an undirected coupling graph G(V,E) whose nodes are physical
// qubits and whose edges are qubit pairs that support a two-qubit gate
// in either direction (the symmetric-coupling model of IBM's 20-qubit
// Tokyo chip, paper Fig. 2). The distance matrix D[i][j] — the minimum
// number of SWAPs needed to bring logical qubits on Qi and Qj adjacent,
// plus one — is computed once per device (paper §IV-A).
package arch

import (
	"fmt"
	"sort"
	"sync"
)

// Edge is an undirected coupling between two physical qubits.
// Invariant: A < B.
type Edge struct {
	A, B int
}

// NewEdge returns the canonical (ordered) form of the edge {a, b}.
func NewEdge(a, b int) Edge {
	if a > b {
		a, b = b, a
	}
	return Edge{A: a, B: b}
}

// Device is an immutable hardware coupling model. Construct with New or
// one of the topology constructors (IBMQ20Tokyo, Grid, Line, ...).
type Device struct {
	name  string
	n     int
	edges []Edge
	adj   [][]int // adjacency lists, sorted

	// edgeID is a flat row-major n×n table: edgeID[a*n+b] is the index
	// of edge {a,b} in edges, or -1 when the qubits are not coupled. It
	// serves both Connected (no map lookup on the routing hot path) and
	// EdgeIndex (dense edge ids for epoch-stamped router scratch).
	edgeID []int32

	// dist is the all-pairs shortest-path matrix, flat row-major:
	// dist[a*n+b] is the hop count from a to b. Flat layout keeps the
	// whole matrix in one allocation and turns the hot-path lookup into
	// pure index arithmetic.
	dist []int

	// wdist memoizes reliability-weighted distance matrices per noise
	// model, so parallel routing trials share one O(N³) computation
	// instead of redoing it every traversal. Guarded by wdistMu; the
	// matrices themselves are read-only once published. Matrices are
	// flat row-major like dist.
	wdistMu sync.Mutex
	wdist   map[*NoiseModel][]float64
}

// New builds a device with n physical qubits and the given undirected
// coupling edges. Duplicate edges are merged. It returns an error for
// self-loops, out-of-range endpoints, or a disconnected graph (routing
// across disconnected components is impossible).
func New(name string, n int, edges []Edge) (*Device, error) {
	if n <= 0 {
		return nil, fmt.Errorf("arch: device %q must have at least one qubit, got %d", name, n)
	}
	d := &Device{
		name:   name,
		n:      n,
		adj:    make([][]int, n),
		edgeID: make([]int32, n*n),
	}
	for i := range d.edgeID {
		d.edgeID[i] = -1
	}
	seen := make(map[Edge]bool, len(edges))
	for _, e := range edges {
		e = NewEdge(e.A, e.B)
		if e.A == e.B {
			return nil, fmt.Errorf("arch: device %q has self-loop on qubit %d", name, e.A)
		}
		if e.A < 0 || e.B >= n {
			return nil, fmt.Errorf("arch: device %q edge (%d,%d) out of range [0,%d)", name, e.A, e.B, n)
		}
		if seen[e] {
			continue
		}
		seen[e] = true
		d.edges = append(d.edges, e)
		d.adj[e.A] = append(d.adj[e.A], e.B)
		d.adj[e.B] = append(d.adj[e.B], e.A)
	}
	sort.Slice(d.edges, func(i, j int) bool {
		if d.edges[i].A != d.edges[j].A {
			return d.edges[i].A < d.edges[j].A
		}
		return d.edges[i].B < d.edges[j].B
	})
	for i, e := range d.edges {
		d.edgeID[e.A*n+e.B] = int32(i)
		d.edgeID[e.B*n+e.A] = int32(i)
	}
	for _, a := range d.adj {
		sort.Ints(a)
	}
	d.dist = floydWarshall(n, d.edges)
	if n > 1 {
		for i := 0; i < n; i++ {
			if d.dist[i] >= unreachable {
				return nil, fmt.Errorf("arch: device %q is disconnected (qubit %d unreachable from 0)", name, i)
			}
		}
	}
	return d, nil
}

// MustNew is New but panics on error; for package-internal catalogue
// constructors whose inputs are known valid.
func MustNew(name string, n int, edges []Edge) *Device {
	d, err := New(name, n, edges)
	if err != nil {
		panic(err)
	}
	return d
}

// Name returns the device's human-readable name.
func (d *Device) Name() string { return d.name }

// NumQubits returns the number of physical qubits N.
func (d *Device) NumQubits() int { return d.n }

// Edges returns the device's coupling edges in canonical sorted order.
// The returned slice must not be modified.
func (d *Device) Edges() []Edge { return d.edges }

// Neighbors returns the sorted physical neighbours of qubit p.
// The returned slice must not be modified.
func (d *Device) Neighbors(p int) []int { return d.adj[p] }

// Degree returns the number of couplers attached to physical qubit p.
func (d *Device) Degree(p int) int { return len(d.adj[p]) }

// Connected reports whether physical qubits a and b share a coupler,
// i.e. whether a CNOT can be applied directly between them.
func (d *Device) Connected(a, b int) bool {
	return d.edgeID[a*d.n+b] >= 0
}

// EdgeIndex returns the dense index of the coupling edge {a, b} in
// Edges(), or -1 when a and b are not coupled. Routers use it to key
// per-edge scratch state (epoch stamps) without map lookups.
func (d *Device) EdgeIndex(a, b int) int { return int(d.edgeID[a*d.n+b]) }

// Distance returns D[a][b], the length of the shortest coupling-graph
// path between physical qubits a and b. Distance(a, a) == 0; adjacent
// qubits have distance 1. The minimum number of SWAPs required to make
// a and b adjacent is Distance(a, b) - 1.
func (d *Device) Distance(a, b int) int { return d.dist[a*d.n+b] }

// Distances returns the flat row-major all-pairs shortest-path matrix:
// entry a*NumQubits()+b is Distance(a, b). The returned slice is the
// device's own matrix and must not be modified. Hot loops that already
// hold the row stride can index it directly instead of calling
// Distance per pair.
func (d *Device) Distances() []int { return d.dist }

// maxWeightedDistanceMemos bounds the per-device memo of weighted
// distance matrices: on overflow an arbitrary old entry is evicted (a
// service cycling through thousands of ad-hoc models must not pin
// O(N²) memory for each, but recent models must keep hitting).
const maxWeightedDistanceMemos = 8

// WeightedDistancesFor returns the all-pairs most-reliable-path cost
// matrix of the device under m (flat row-major, like Distances),
// computing it on first use and serving the same read-only matrix
// afterwards. The model must not be mutated after its first use here
// (memoization is by pointer identity). Returns nil for a nil model so
// callers can branch on "no noise".
//
// The O(N³) computation runs outside the lock, so a memo miss never
// blocks concurrent lookups of other models; two goroutines racing on
// the same new model may both compute, and the first insert wins (both
// then return the same matrix).
func (d *Device) WeightedDistancesFor(m *NoiseModel) []float64 {
	if m == nil {
		return nil
	}
	d.wdistMu.Lock()
	if w, ok := d.wdist[m]; ok {
		d.wdistMu.Unlock()
		return w
	}
	d.wdistMu.Unlock()

	w := WeightedDistances(d, m)

	d.wdistMu.Lock()
	defer d.wdistMu.Unlock()
	if prev, ok := d.wdist[m]; ok {
		return prev // a concurrent computation published first
	}
	if d.wdist == nil {
		d.wdist = make(map[*NoiseModel][]float64)
	}
	for len(d.wdist) >= maxWeightedDistanceMemos {
		for k := range d.wdist { // evict an arbitrary entry
			delete(d.wdist, k)
			break
		}
	}
	d.wdist[m] = w
	return w
}

// Diameter returns the greatest pairwise distance on the device.
func (d *Device) Diameter() int {
	max := 0
	for _, v := range d.dist {
		if v > max {
			max = v
		}
	}
	return max
}

// ShortestPath returns one shortest path of physical qubits from a to b,
// inclusive of both endpoints.
func (d *Device) ShortestPath(a, b int) []int {
	if a == b {
		return []int{a}
	}
	// Walk greedily downhill in the distance matrix.
	path := []int{a}
	cur := a
	for cur != b {
		next := -1
		for _, nb := range d.adj[cur] {
			if d.dist[nb*d.n+b] == d.dist[cur*d.n+b]-1 {
				next = nb
				break
			}
		}
		if next == -1 {
			// Unreachable; cannot happen on a connected device.
			return nil
		}
		path = append(path, next)
		cur = next
	}
	return path
}

// String implements fmt.Stringer.
func (d *Device) String() string {
	return fmt.Sprintf("%s(N=%d, |E|=%d)", d.name, d.n, len(d.edges))
}

const unreachable = 1 << 29

// floydWarshall computes all-pairs shortest paths exactly as the paper
// prescribes (§IV-A, O(N³)); N is at most a few hundred in the NISQ
// era. The result is flat row-major: entry i*n+j is dist(i, j).
func floydWarshall(n int, edges []Edge) []int {
	dist := make([]int, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				dist[i*n+j] = unreachable
			}
		}
	}
	for _, e := range edges {
		dist[e.A*n+e.B] = 1
		dist[e.B*n+e.A] = 1
	}
	for k := 0; k < n; k++ {
		dk := dist[k*n : k*n+n]
		for i := 0; i < n; i++ {
			dik := dist[i*n+k]
			if dik >= unreachable {
				continue
			}
			di := dist[i*n : i*n+n]
			for j := 0; j < n; j++ {
				if v := dik + dk[j]; v < di[j] {
					di[j] = v
				}
			}
		}
	}
	return dist
}

// BFSDistances computes single-source shortest path lengths from src by
// breadth-first search. It exists as an independently-implemented
// cross-check of the Floyd–Warshall matrix (used in tests) and for
// callers that need distances on an ad-hoc edge set.
func BFSDistances(n int, edges []Edge, src int) []int {
	adj := make([][]int, n)
	for _, e := range edges {
		adj[e.A] = append(adj[e.A], e.B)
		adj[e.B] = append(adj[e.B], e.A)
	}
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range adj[cur] {
			if dist[nb] == -1 {
				dist[nb] = dist[cur] + 1
				queue = append(queue, nb)
			}
		}
	}
	return dist
}
