// Package arch models NISQ device connectivity: coupling graphs,
// all-pairs shortest-path distance matrices, and a catalogue of real
// and synthetic device topologies.
//
// A Device is the hardware half of the qubit mapping problem (paper
// §III): an undirected coupling graph G(V,E) whose nodes are physical
// qubits and whose edges are qubit pairs that support a two-qubit gate
// in either direction (the symmetric-coupling model of IBM's 20-qubit
// Tokyo chip, paper Fig. 2). The distance matrix D[i][j] — the minimum
// number of SWAPs needed to bring logical qubits on Qi and Qj adjacent,
// plus one — is computed once per device (paper §IV-A).
package arch

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Edge is an undirected coupling between two physical qubits.
// Invariant: A < B.
type Edge struct {
	A, B int
}

// NewEdge returns the canonical (ordered) form of the edge {a, b}.
func NewEdge(a, b int) Edge {
	if a > b {
		a, b = b, a
	}
	return Edge{A: a, B: b}
}

// Device is an immutable hardware coupling model. Construct with New or
// one of the topology constructors (IBMQ20Tokyo, Grid, Line, ...).
type Device struct {
	name  string
	n     int
	edges []Edge
	adj   [][]int // adjacency lists, sorted

	// edgeID is a flat row-major n×n table: edgeID[a*n+b] is the index
	// of edge {a,b} in edges, or -1 when the qubits are not coupled. It
	// serves both Connected (no map lookup on the routing hot path) and
	// EdgeIndex (dense edge ids for epoch-stamped router scratch).
	edgeID []int32

	// edgeEnds is the dense-edge→endpoints reverse table, flat: entries
	// 2*id and 2*id+1 are the endpoints (A < B) of edge id. Bitset
	// iteration over dense edge ids (bits.TrailingZeros64) recovers the
	// physical pair with two int32 loads instead of indexing []Edge
	// structs.
	edgeEnds []int32

	// incWords holds one incident-edge bitset per physical qubit, flat:
	// row p is incWords[p*edgeWords:(p+1)*edgeWords], and bit id of the
	// row is set iff edge id touches p. OR-ing the rows of a set of
	// qubits yields the bitset of all edges touching any of them — the
	// branch-free form of SWAP-candidate collection.
	incWords  []uint64
	edgeWords int

	// dist is the all-pairs shortest-path matrix, flat row-major:
	// dist[a*n+b] is the hop count from a to b. Flat layout keeps the
	// whole matrix in one allocation and turns the hot-path lookup into
	// pure index arithmetic.
	dist []int

	// wdist memoizes reliability-weighted distance matrices, so
	// parallel routing trials share one O(N³) computation instead of
	// redoing it every traversal. Entries are keyed by the noise
	// model's content digest (never pointer identity, so an in-place
	// model edit can only ever produce a fresh matrix, not resurrect a
	// stale one) and evicted in least-recently-used order via
	// wdistOrder. Guarded by wdistMu; each entry's matrix is computed
	// exactly once (entry.once) outside the lock and is read-only
	// thereafter. Matrices are flat row-major like dist.
	wdistMu    sync.Mutex
	wdist      map[noiseKey]*wdistEntry
	wdistOrder []noiseKey // keys of wdist, least recently used first

	// cal is the device's live calibration: an atomic pointer to an
	// immutable snapshot, so the routing hot path pays one atomic load
	// to observe the current noise data while writers
	// (ApplyCalibration) pay the clone, validation and version bump —
	// the reader-mostly asymmetric-lock discipline. calMu serializes
	// writers so snapshot versions install in order.
	cal   atomic.Pointer[CalSnapshot]
	calMu sync.Mutex
}

// wdistEntry is one memoized weighted-distance matrix. The entry is
// registered in the memo under the lock, but its O(N³) computation
// runs in once.Do outside it — per-key single-flight: concurrent cold
// lookups of the same model block only each other (on the once), never
// lookups of other models, and exactly one of them computes.
type wdistEntry struct {
	once sync.Once
	w    []float64
}

// New builds a device with n physical qubits and the given undirected
// coupling edges. Duplicate edges are merged. It returns an error for
// self-loops, out-of-range endpoints, or a disconnected graph (routing
// across disconnected components is impossible).
func New(name string, n int, edges []Edge) (*Device, error) {
	if n <= 0 {
		return nil, fmt.Errorf("arch: device %q must have at least one qubit, got %d", name, n)
	}
	d := &Device{
		name:   name,
		n:      n,
		adj:    make([][]int, n),
		edgeID: make([]int32, n*n),
	}
	for i := range d.edgeID {
		d.edgeID[i] = -1
	}
	seen := make(map[Edge]bool, len(edges))
	for _, e := range edges {
		e = NewEdge(e.A, e.B)
		if e.A == e.B {
			return nil, fmt.Errorf("arch: device %q has self-loop on qubit %d", name, e.A)
		}
		if e.A < 0 || e.B >= n {
			return nil, fmt.Errorf("arch: device %q edge (%d,%d) out of range [0,%d)", name, e.A, e.B, n)
		}
		if seen[e] {
			continue
		}
		seen[e] = true
		d.edges = append(d.edges, e)
		d.adj[e.A] = append(d.adj[e.A], e.B)
		d.adj[e.B] = append(d.adj[e.B], e.A)
	}
	sort.Slice(d.edges, func(i, j int) bool {
		if d.edges[i].A != d.edges[j].A {
			return d.edges[i].A < d.edges[j].A
		}
		return d.edges[i].B < d.edges[j].B
	})
	for i, e := range d.edges {
		d.edgeID[e.A*n+e.B] = int32(i)
		d.edgeID[e.B*n+e.A] = int32(i)
	}
	for _, a := range d.adj {
		sort.Ints(a)
	}
	d.edgeWords = (len(d.edges) + 63) / 64
	d.edgeEnds = make([]int32, 2*len(d.edges))
	d.incWords = make([]uint64, n*d.edgeWords)
	for i, e := range d.edges {
		d.edgeEnds[2*i] = int32(e.A)
		d.edgeEnds[2*i+1] = int32(e.B)
		word, bit := i/64, uint(i%64)
		d.incWords[e.A*d.edgeWords+word] |= 1 << bit
		d.incWords[e.B*d.edgeWords+word] |= 1 << bit
	}
	d.dist = floydWarshall(n, d.edges)
	if n > 1 {
		for i := 0; i < n; i++ {
			if d.dist[i] >= unreachable {
				return nil, fmt.Errorf("arch: device %q is disconnected (qubit %d unreachable from 0)", name, i)
			}
		}
	}
	return d, nil
}

// MustNew is New but panics on error; for package-internal catalogue
// constructors whose inputs are known valid.
func MustNew(name string, n int, edges []Edge) *Device {
	d, err := New(name, n, edges)
	if err != nil {
		panic(err)
	}
	return d
}

// Name returns the device's human-readable name.
func (d *Device) Name() string { return d.name }

// NumQubits returns the number of physical qubits N.
func (d *Device) NumQubits() int { return d.n }

// Edges returns the device's coupling edges in canonical sorted order.
// The returned slice must not be modified.
func (d *Device) Edges() []Edge { return d.edges }

// Neighbors returns the sorted physical neighbours of qubit p.
// The returned slice must not be modified.
func (d *Device) Neighbors(p int) []int { return d.adj[p] }

// Degree returns the number of couplers attached to physical qubit p.
func (d *Device) Degree(p int) int { return len(d.adj[p]) }

// Connected reports whether physical qubits a and b share a coupler,
// i.e. whether a CNOT can be applied directly between them.
func (d *Device) Connected(a, b int) bool {
	return d.edgeID[a*d.n+b] >= 0
}

// EdgeIndex returns the dense index of the coupling edge {a, b} in
// Edges(), or -1 when a and b are not coupled. Routers use it to key
// per-edge scratch state (epoch stamps) without map lookups.
func (d *Device) EdgeIndex(a, b int) int { return int(d.edgeID[a*d.n+b]) }

// EdgeEndpoints returns the flat dense-edge→endpoints reverse table:
// entries 2*id and 2*id+1 are the endpoints (A < B) of Edges()[id].
// It is the inverse of EdgeIndex in a gather-friendly layout, so
// bitset iteration over edge ids recovers physical pairs with two
// int32 loads. The returned slice must not be modified.
func (d *Device) EdgeEndpoints() []int32 { return d.edgeEnds }

// EdgeWords returns the number of uint64 words needed for a bitset
// over the dense edge-id space: ceil(len(Edges())/64). It is the row
// stride of IncidentEdgeWords.
func (d *Device) EdgeWords() int { return d.edgeWords }

// IncidentEdgeWords returns the per-qubit incident-edge bitsets, flat
// with row stride EdgeWords(): bit id of row p (word id/64, bit id%64
// of incWords[p*EdgeWords():...]) is set iff Edges()[id] touches
// physical qubit p. OR-ing rows of several qubits yields the bitset
// of all edges touching any of them — the branch-free form of SWAP
// candidate collection. The returned slice must not be modified.
func (d *Device) IncidentEdgeWords() []uint64 { return d.incWords }

// Distance returns D[a][b], the length of the shortest coupling-graph
// path between physical qubits a and b. Distance(a, a) == 0; adjacent
// qubits have distance 1. The minimum number of SWAPs required to make
// a and b adjacent is Distance(a, b) - 1.
func (d *Device) Distance(a, b int) int { return d.dist[a*d.n+b] }

// Distances returns the flat row-major all-pairs shortest-path matrix:
// entry a*NumQubits()+b is Distance(a, b). The returned slice is the
// device's own matrix and must not be modified. Hot loops that already
// hold the row stride can index it directly instead of calling
// Distance per pair.
func (d *Device) Distances() []int { return d.dist }

// maxWeightedDistanceMemos bounds the per-device memo of weighted
// distance matrices: on overflow the least recently used entry is
// evicted (a service cycling through thousands of ad-hoc models must
// not pin O(N²) memory for each, but hot models must keep hitting).
const maxWeightedDistanceMemos = 8

// wdistComputeHook, when non-nil, observes every actual O(N³)
// weighted-distance computation (not memo hits). Tests use it to
// assert single-flight: N concurrent cold lookups of one model must
// trigger exactly one call.
var wdistComputeHook func(d *Device, m *NoiseModel)

// WeightedDistancesFor returns the all-pairs most-reliable-path cost
// matrix of the device under m (flat row-major, like Distances),
// computing it on first use and serving the same read-only matrix
// afterwards. Returns nil for a nil model so callers can branch on
// "no noise".
//
// Memoization is by the model's content digest, not pointer identity:
// mutating a model in place changes its digest, so the next lookup
// computes a fresh matrix instead of serving a stale one. When m is
// the current calibration snapshot's model, the snapshot's
// precomputed digest is reused and the lookup does not rehash.
//
// The O(N³) computation runs outside the memo lock with per-key
// single-flight: concurrent cold lookups of the same model compute
// once and block only each other, never lookups of other models.
// Eviction on overflow is least-recently-used.
func (d *Device) WeightedDistancesFor(m *NoiseModel) []float64 {
	if m == nil {
		return nil
	}
	key := d.noiseKeyOf(m)

	d.wdistMu.Lock()
	e, ok := d.wdist[key]
	if ok {
		d.touchMemoLocked(key)
	} else {
		if d.wdist == nil {
			d.wdist = make(map[noiseKey]*wdistEntry, maxWeightedDistanceMemos)
		}
		e = new(wdistEntry)
		d.wdist[key] = e
		d.wdistOrder = append(d.wdistOrder, key)
		for len(d.wdist) > maxWeightedDistanceMemos {
			evicted := d.wdistOrder[0]
			d.wdistOrder = append(d.wdistOrder[:0], d.wdistOrder[1:]...)
			delete(d.wdist, evicted)
		}
	}
	d.wdistMu.Unlock()

	e.once.Do(func() {
		if wdistComputeHook != nil {
			wdistComputeHook(d, m)
		}
		e.w = WeightedDistances(d, m)
	})
	return e.w
}

// noiseKeyOf resolves the memo key for m, reusing the current
// calibration snapshot's precomputed digest when m is its model.
func (d *Device) noiseKeyOf(m *NoiseModel) noiseKey {
	if cur := d.cal.Load(); cur != nil && cur.Model == m {
		return cur.key
	}
	return m.digest()
}

// touchMemoLocked marks key as most recently used. Caller holds
// wdistMu.
func (d *Device) touchMemoLocked(key noiseKey) {
	for i, k := range d.wdistOrder {
		if k == key {
			copy(d.wdistOrder[i:], d.wdistOrder[i+1:])
			d.wdistOrder[len(d.wdistOrder)-1] = key
			return
		}
	}
}

// Diameter returns the greatest pairwise distance on the device.
func (d *Device) Diameter() int {
	max := 0
	for _, v := range d.dist {
		if v > max {
			max = v
		}
	}
	return max
}

// ShortestPath returns one shortest path of physical qubits from a to b,
// inclusive of both endpoints.
func (d *Device) ShortestPath(a, b int) []int {
	if a == b {
		return []int{a}
	}
	// Walk greedily downhill in the distance matrix.
	path := []int{a}
	cur := a
	for cur != b {
		next := -1
		for _, nb := range d.adj[cur] {
			if d.dist[nb*d.n+b] == d.dist[cur*d.n+b]-1 {
				next = nb
				break
			}
		}
		if next == -1 {
			// Unreachable; cannot happen on a connected device.
			return nil
		}
		path = append(path, next)
		cur = next
	}
	return path
}

// String implements fmt.Stringer.
func (d *Device) String() string {
	return fmt.Sprintf("%s(N=%d, |E|=%d)", d.name, d.n, len(d.edges))
}

const unreachable = 1 << 29

// floydWarshall computes all-pairs shortest paths exactly as the paper
// prescribes (§IV-A, O(N³)); N is at most a few hundred in the NISQ
// era. The result is flat row-major: entry i*n+j is dist(i, j).
func floydWarshall(n int, edges []Edge) []int {
	dist := make([]int, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				dist[i*n+j] = unreachable
			}
		}
	}
	for _, e := range edges {
		dist[e.A*n+e.B] = 1
		dist[e.B*n+e.A] = 1
	}
	for k := 0; k < n; k++ {
		dk := dist[k*n : k*n+n]
		for i := 0; i < n; i++ {
			dik := dist[i*n+k]
			if dik >= unreachable {
				continue
			}
			di := dist[i*n : i*n+n]
			for j := 0; j < n; j++ {
				if v := dik + dk[j]; v < di[j] {
					di[j] = v
				}
			}
		}
	}
	return dist
}

// BFSDistances computes single-source shortest path lengths from src by
// breadth-first search. It exists as an independently-implemented
// cross-check of the Floyd–Warshall matrix (used in tests) and for
// callers that need distances on an ad-hoc edge set.
func BFSDistances(n int, edges []Edge, src int) []int {
	adj := make([][]int, n)
	for _, e := range edges {
		adj[e.A] = append(adj[e.A], e.B)
		adj[e.B] = append(adj[e.B], e.A)
	}
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range adj[cur] {
			if dist[nb] == -1 {
				dist[nb] = dist[cur] + 1
				queue = append(queue, nb)
			}
		}
	}
	return dist
}
