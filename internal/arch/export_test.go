package arch

import (
	"strings"
	"testing"
)

func TestDOTPlain(t *testing.T) {
	out := Line(3).DOT(nil, nil)
	for _, want := range []string{"graph \"line\"", "0 -- 1;", "1 -- 2;", "Q2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT missing %q:\n%s", want, out)
		}
	}
}

func TestDOTWithLayoutAndNoise(t *testing.T) {
	d := Line(3)
	noise := UniformNoise(0.025)
	out := d.DOT([]int{2, 0, 1}, noise)
	if !strings.Contains(out, "q0") || !strings.Contains(out, "0.025") {
		t.Fatalf("DOT missing layout/noise annotations:\n%s", out)
	}
	// Logical q0 lives on physical Q2 (label escapes through %q).
	if !strings.Contains(out, `Q2\\nq0`) {
		t.Fatalf("layout label wrong:\n%s", out)
	}
}

func TestAdjacencySummary(t *testing.T) {
	out := IBMQ20Tokyo().AdjacencySummary()
	if !strings.Contains(out, "20 qubits, 43 couplers") {
		t.Fatalf("summary header wrong:\n%s", out)
	}
	if !strings.Contains(out, "Q0   ~ Q1 Q5") {
		t.Fatalf("Q0 adjacency wrong:\n%s", out)
	}
}

func TestDegreeHistogram(t *testing.T) {
	h := Star(5).DegreeHistogram()
	if h[4] != 1 || h[1] != 4 {
		t.Fatalf("star histogram %v", h)
	}
	degs := Star(5).Degrees()
	if len(degs) != 2 || degs[0] != 1 || degs[1] != 4 {
		t.Fatalf("degrees %v", degs)
	}
}

func TestRigettiAspen(t *testing.T) {
	one := RigettiAspen(1)
	if one.NumQubits() != 8 || len(one.Edges()) != 8 {
		t.Fatalf("single octagon wrong: %v", one)
	}
	two := RigettiAspen(2)
	if two.NumQubits() != 16 || len(two.Edges()) != 18 {
		t.Fatalf("double octagon wrong: %v", two)
	}
	// Fusion edges present.
	if !two.Connected(1, 14) || !two.Connected(2, 13) {
		t.Fatal("fusion edges missing")
	}
}

func TestSycamore(t *testing.T) {
	d := Sycamore(6, 9)
	if d.NumQubits() != 54 {
		t.Fatalf("sycamore size %d", d.NumQubits())
	}
	// Diagonal lattice: max degree 4.
	for _, deg := range d.Degrees() {
		if deg > 4 {
			t.Fatalf("degree %d too high for diagonal lattice", deg)
		}
	}
}

func TestIBMFalcon27(t *testing.T) {
	d := IBMFalcon27()
	if d.NumQubits() != 27 {
		t.Fatalf("falcon size %d", d.NumQubits())
	}
	// Heavy-hex property: degree at most 3.
	for _, deg := range d.Degrees() {
		if deg > 3 {
			t.Fatalf("heavy-hex degree %d", deg)
		}
	}
}

func TestTopologyPanics(t *testing.T) {
	for _, f := range []func(){
		func() { RigettiAspen(0) },
		func() { Sycamore(1, 5) },
		func() { HeavyHex(0, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
