package arch

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"time"
)

// CalSnapshot is one immutable calibration of a device: a versioned,
// privately-cloned noise model. Snapshots model what real backends
// publish after each calibration cycle — routers and caches that key
// on (device, Version) are invalidated by construction the moment a
// newer snapshot is installed, which is how the stale weighted-distance
// problem is fixed end to end (the batch cache key and the fleet
// scheduler both carry Version).
type CalSnapshot struct {
	// Version increases by one per ApplyCalibration on the device,
	// starting at 1. It is the identity downstream caches key on.
	Version uint64
	// Model is the calibration's noise model — a clone made at
	// ApplyCalibration time, so no caller holds a reference that could
	// mutate it underneath a memoized distance matrix. Treat as
	// read-only.
	Model *NoiseModel
	// Applied is when the snapshot was installed.
	Applied time.Time

	// key is the precomputed memo digest of Model, so hot-path
	// weighted-distance lookups under the live snapshot skip the hash.
	key noiseKey
}

// Calibration returns the device's current calibration snapshot, or
// nil when the device has never been calibrated. The read is a single
// atomic load — safe and cheap on the routing hot path.
func (d *Device) Calibration() *CalSnapshot { return d.cal.Load() }

// ApplyCalibration validates m, clones it, and atomically installs the
// clone as the device's current calibration snapshot, returning the
// new snapshot. Readers racing the swap see either the old snapshot or
// the new one, never a torn mix; writers are serialized so versions
// install in increasing order. Rejected models (nil, malformed rates,
// edges the device does not have) leave the current snapshot in place.
func (d *Device) ApplyCalibration(m *NoiseModel) (*CalSnapshot, error) {
	if m == nil {
		return nil, fmt.Errorf("arch: nil calibration model for device %s", d.name)
	}
	if err := d.ValidateCalibration(m); err != nil {
		return nil, err
	}
	clone := m.clone()
	d.calMu.Lock()
	defer d.calMu.Unlock()
	version := uint64(1)
	if cur := d.cal.Load(); cur != nil {
		version = cur.Version + 1
	}
	snap := &CalSnapshot{
		Version: version,
		Model:   clone,
		Applied: time.Now(),
		key:     clone.digest(),
	}
	d.cal.Store(snap)
	return snap, nil
}

// ValidateCalibration checks that m is a well-formed calibration for
// this device: every error rate (default and per-edge) must be a
// finite value in [0, 1), and every listed edge must be one of the
// device's couplers. The returned error names the offending edge or
// rate, so HTTP handlers can surface it verbatim as a 400. Edges are
// checked in sorted order so a model with several problems always
// yields the same error (ranging the map directly made the 400 body
// nondeterministic across identical requests).
func (d *Device) ValidateCalibration(m *NoiseModel) error {
	if err := validRate(m.Default); err != nil {
		return fmt.Errorf("arch: device %s: default error rate %v", d.name, err)
	}
	edges := make([]Edge, 0, len(m.EdgeError))
	//sabre:nondeterm-ok keys collected then sorted below
	for e := range m.EdgeError {
		edges = append(edges, e)
	}
	sortEdges(edges)
	for _, e0 := range edges {
		rate := m.EdgeError[e0]
		e := NewEdge(e0.A, e0.B)
		if e.A < 0 || e.B >= d.n || d.EdgeIndex(e.A, e.B) < 0 {
			return fmt.Errorf("arch: device %s has no coupler (%d,%d)", d.name, e.A, e.B)
		}
		if err := validRate(rate); err != nil {
			return fmt.Errorf("arch: device %s: edge (%d,%d) error rate %v", d.name, e.A, e.B, err)
		}
	}
	return nil
}

// validRate checks one error rate: finite, 0 <= r < 1 (1 would make
// every path through the edge infinitely costly and non-comparable).
func validRate(r float64) error {
	if math.IsNaN(r) || math.IsInf(r, 0) {
		return fmt.Errorf("%g is not finite", r)
	}
	if r < 0 || r >= 1 {
		return fmt.Errorf("%g outside [0, 1)", r)
	}
	return nil
}

// sortEdges orders edges (A, then B) — the canonical edge order every
// deterministic walk over an EdgeError map uses.
func sortEdges(edges []Edge) {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].A != edges[j].A {
			return edges[i].A < edges[j].A
		}
		return edges[i].B < edges[j].B
	})
}

// clone deep-copies the model (the edge map is the only reference).
func (m *NoiseModel) clone() *NoiseModel {
	c := &NoiseModel{Default: m.Default}
	if m.EdgeError != nil {
		c.EdgeError = make(map[Edge]float64, len(m.EdgeError))
		//sabre:nondeterm-ok plain map copy; insertion order is invisible
		for e, v := range m.EdgeError {
			c.EdgeError[e] = v
		}
	}
	return c
}

// noiseKey is the content digest a weighted-distance memo entry is
// keyed by: equal models hash equal, and any in-place mutation of a
// model changes its key, so a stale matrix can never be served for
// edited noise data.
type noiseKey [16]byte

// digest canonically hashes the model's content: the default rate plus
// every edge rate in sorted edge order.
func (m *NoiseModel) digest() noiseKey {
	h := sha256.New()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(math.Float64bits(m.Default))
	edges := make([]Edge, 0, len(m.EdgeError))
	//sabre:nondeterm-ok keys collected then sorted below
	for e := range m.EdgeError {
		edges = append(edges, e)
	}
	sortEdges(edges)
	for _, e := range edges {
		put(uint64(uint32(e.A))<<32 | uint64(uint32(e.B)))
		put(math.Float64bits(m.EdgeError[e]))
	}
	var k noiseKey
	copy(k[:], h.Sum(nil))
	return k
}
