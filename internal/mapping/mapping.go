// Package mapping implements the logical-to-physical qubit layout π and
// its inverse π⁻¹ (Table I of the SABRE paper).
//
// A Layout is a bijection between n logical qubits q0..q(n-1) and a
// subset of N physical qubits Q0..Q(N-1), with n ≤ N. Logical qubits
// are the wires of the input circuit; physical qubits are the nodes of
// the device coupling graph. When n < N the layout is padded with
// anonymous ancilla logical qubits so that the bijection is total: this
// mirrors how SABRE treats unused device qubits as swappable storage.
package mapping

import (
	"fmt"
	"math/rand"
	"strings"
)

// Layout is a total bijection between N logical and N physical qubits.
// The zero value is not usable; construct with Identity, Random, or
// FromLogicalToPhysical.
type Layout struct {
	l2p []int // l2p[q]  = physical qubit hosting logical q
	p2l []int // p2l[Qi] = logical qubit hosted on physical Qi
}

// Identity returns the layout mapping logical qubit i to physical qubit i.
func Identity(n int) Layout {
	if n < 0 {
		panic("mapping: negative layout size")
	}
	l := Layout{l2p: make([]int, n), p2l: make([]int, n)}
	for i := 0; i < n; i++ {
		l.l2p[i] = i
		l.p2l[i] = i
	}
	return l
}

// Random returns a uniformly random layout of size n drawn from rng.
func Random(n int, rng *rand.Rand) Layout {
	l := Identity(n)
	perm := rng.Perm(n)
	for q, p := range perm {
		l.l2p[q] = p
		l.p2l[p] = q
	}
	return l
}

// FromLogicalToPhysical builds a layout from an explicit logical→physical
// assignment. It returns an error unless l2p is a permutation of 0..len-1.
func FromLogicalToPhysical(l2p []int) (Layout, error) {
	n := len(l2p)
	l := Layout{l2p: make([]int, n), p2l: make([]int, n)}
	for i := range l.p2l {
		l.p2l[i] = -1
	}
	for q, p := range l2p {
		if p < 0 || p >= n {
			return Layout{}, fmt.Errorf("mapping: physical index %d out of range [0,%d)", p, n)
		}
		if l.p2l[p] != -1 {
			return Layout{}, fmt.Errorf("mapping: physical qubit %d assigned twice", p)
		}
		l.l2p[q] = p
		l.p2l[p] = q
	}
	return l, nil
}

// Size returns the number of qubits in the layout.
func (l Layout) Size() int { return len(l.l2p) }

// Phys returns π(q), the physical qubit hosting logical qubit q.
func (l Layout) Phys(q int) int { return l.l2p[q] }

// Log returns π⁻¹(p), the logical qubit hosted on physical qubit p.
func (l Layout) Log(p int) int { return l.p2l[p] }

// SwapPhysical exchanges the logical qubits hosted on physical qubits
// a and b. This is the state update performed by inserting a SWAP gate
// on the device edge (a, b).
func (l Layout) SwapPhysical(a, b int) {
	qa, qb := l.p2l[a], l.p2l[b]
	l.p2l[a], l.p2l[b] = qb, qa
	l.l2p[qa], l.l2p[qb] = b, a
}

// SwapLogical exchanges the physical locations of logical qubits qa and qb.
func (l Layout) SwapLogical(qa, qb int) {
	l.SwapPhysical(l.l2p[qa], l.l2p[qb])
}

// Clone returns a deep copy of the layout. Mutations of the copy do not
// affect the original.
func (l Layout) Clone() Layout {
	c := Layout{l2p: make([]int, len(l.l2p)), p2l: make([]int, len(l.p2l))}
	copy(c.l2p, l.l2p)
	copy(c.p2l, l.p2l)
	return c
}

// LogicalToPhysical returns a copy of the underlying l2p permutation.
func (l Layout) LogicalToPhysical() []int {
	out := make([]int, len(l.l2p))
	copy(out, l.l2p)
	return out
}

// PhysicalToLogical returns a copy of the underlying p2l permutation.
func (l Layout) PhysicalToLogical() []int {
	out := make([]int, len(l.p2l))
	copy(out, l.p2l)
	return out
}

// Equal reports whether two layouts represent the same bijection.
func (l Layout) Equal(o Layout) bool {
	if len(l.l2p) != len(o.l2p) {
		return false
	}
	for i := range l.l2p {
		if l.l2p[i] != o.l2p[i] {
			return false
		}
	}
	return true
}

// Valid reports whether the layout is internally consistent: l2p and
// p2l are mutually inverse permutations.
func (l Layout) Valid() bool {
	if len(l.l2p) != len(l.p2l) {
		return false
	}
	for q, p := range l.l2p {
		if p < 0 || p >= len(l.p2l) || l.p2l[p] != q {
			return false
		}
	}
	return true
}

// Key returns a compact string key identifying the bijection, suitable
// for use as a map key (e.g. in the baseline A* visited set).
func (l Layout) Key() string {
	var sb strings.Builder
	sb.Grow(3 * len(l.l2p))
	for _, p := range l.l2p {
		sb.WriteByte(byte(p))
		sb.WriteByte(',')
	}
	return sb.String()
}

// String renders the layout as "q0->Q3 q1->Q0 ..." for debugging.
func (l Layout) String() string {
	var sb strings.Builder
	for q, p := range l.l2p {
		if q > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "q%d->Q%d", q, p)
	}
	return sb.String()
}
