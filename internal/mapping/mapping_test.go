package mapping

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIdentity(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5, 20} {
		l := Identity(n)
		if l.Size() != n {
			t.Fatalf("Identity(%d).Size() = %d", n, l.Size())
		}
		for q := 0; q < n; q++ {
			if l.Phys(q) != q || l.Log(q) != q {
				t.Fatalf("Identity(%d): q=%d maps to (%d,%d)", n, q, l.Phys(q), l.Log(q))
			}
		}
		if !l.Valid() {
			t.Fatalf("Identity(%d) not valid", n)
		}
	}
}

func TestIdentityNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Identity(-1) did not panic")
		}
	}()
	Identity(-1)
}

func TestRandomIsBijection(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(30)
		l := Random(n, rng)
		if !l.Valid() {
			t.Fatalf("Random(%d) invalid: %v", n, l)
		}
		seen := make(map[int]bool)
		for q := 0; q < n; q++ {
			p := l.Phys(q)
			if seen[p] {
				t.Fatalf("Random(%d): physical %d used twice", n, p)
			}
			seen[p] = true
			if l.Log(p) != q {
				t.Fatalf("Random(%d): inverse broken at q=%d", n, q)
			}
		}
	}
}

func TestFromLogicalToPhysical(t *testing.T) {
	l, err := FromLogicalToPhysical([]int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if l.Phys(0) != 2 || l.Phys(1) != 0 || l.Phys(2) != 1 {
		t.Fatalf("wrong layout: %v", l)
	}
	if l.Log(2) != 0 || l.Log(0) != 1 || l.Log(1) != 2 {
		t.Fatalf("wrong inverse: %v", l)
	}
}

func TestFromLogicalToPhysicalErrors(t *testing.T) {
	cases := [][]int{
		{0, 0},    // duplicate
		{1, 2},    // out of range
		{-1, 0},   // negative
		{0, 1, 1}, // duplicate
		{3, 0, 1}, // out of range
	}
	for _, c := range cases {
		if _, err := FromLogicalToPhysical(c); err == nil {
			t.Errorf("FromLogicalToPhysical(%v): expected error", c)
		}
	}
}

func TestSwapPhysical(t *testing.T) {
	l := Identity(4)
	l.SwapPhysical(0, 3)
	if l.Phys(0) != 3 || l.Phys(3) != 0 {
		t.Fatalf("after swap: %v", l)
	}
	if l.Log(0) != 3 || l.Log(3) != 0 {
		t.Fatalf("after swap inverse: %v", l)
	}
	if l.Phys(1) != 1 || l.Phys(2) != 2 {
		t.Fatalf("swap disturbed unrelated qubits: %v", l)
	}
	if !l.Valid() {
		t.Fatalf("layout invalid after swap")
	}
}

func TestSwapLogical(t *testing.T) {
	l := Identity(4)
	l.SwapPhysical(1, 2) // q1@Q2, q2@Q1
	l.SwapLogical(1, 2)  // undo via logical indices
	if !l.Equal(Identity(4)) {
		t.Fatalf("SwapLogical did not undo SwapPhysical: %v", l)
	}
}

// Property: SwapPhysical is an involution.
func TestSwapInvolutionProperty(t *testing.T) {
	f := func(seed int64, rawA, rawB uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		l := Random(n, rng)
		orig := l.Clone()
		a, b := int(rawA)%n, int(rawB)%n
		l.SwapPhysical(a, b)
		l.SwapPhysical(a, b)
		return l.Equal(orig) && l.Valid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: any sequence of swaps keeps the layout a valid bijection.
func TestSwapSequencePreservesBijection(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		l := Random(n, rng)
		for i := 0; i < int(steps); i++ {
			l.SwapPhysical(rng.Intn(n), rng.Intn(n))
		}
		return l.Valid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	l := Identity(3)
	c := l.Clone()
	c.SwapPhysical(0, 1)
	if l.Phys(0) != 0 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestAccessorCopies(t *testing.T) {
	l := Identity(3)
	lp := l.LogicalToPhysical()
	lp[0] = 99
	if l.Phys(0) == 99 {
		t.Fatal("LogicalToPhysical returned internal slice")
	}
	pl := l.PhysicalToLogical()
	pl[0] = 99
	if l.Log(0) == 99 {
		t.Fatal("PhysicalToLogical returned internal slice")
	}
}

func TestKeyDistinguishesLayouts(t *testing.T) {
	a := Identity(5)
	b := Identity(5)
	b.SwapPhysical(3, 4)
	if a.Key() == b.Key() {
		t.Fatal("distinct layouts share a key")
	}
	c := Identity(5)
	if a.Key() != c.Key() {
		t.Fatal("equal layouts have different keys")
	}
}

func TestEqualDifferentSizes(t *testing.T) {
	if Identity(3).Equal(Identity(4)) {
		t.Fatal("layouts of different sizes reported equal")
	}
}

func TestStringFormat(t *testing.T) {
	l := Identity(2)
	if got, want := l.String(), "q0->Q0 q1->Q1"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
