package jobqueue

import (
	"context"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/batch"
	"repro/internal/workloads"
)

// TestWebhookShutdownNoLeak: a delivery goroutine parked in a retry
// backoff must exit promptly when Close's deadline expires — not sleep
// out the rest of its (long) backoff, and not outlive Close.
func TestWebhookShutdownNoLeak(t *testing.T) {
	eng := batch.NewEngine(batch.Config{Workers: 2})
	defer eng.Close()
	// Every attempt fails, forcing the retry path.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()

	baseline := runtime.NumGoroutine()

	q := New(eng, Config{
		Workers: 1,
		Webhook: WebhookConfig{
			MaxAttempts: 5,
			Backoff:     time.Minute, // far longer than the test: exit must come from cancellation
			Timeout:     time.Second,
			// Keep-alive connection goroutines (client and server side)
			// would pollute the goroutine count; the leak under test is
			// the retry loop, not the HTTP transport.
			Client: &http.Client{Transport: &http.Transport{DisableKeepAlives: true}},
		},
	})
	snap, err := q.Submit(Request{Job: fastJob("hooked"), Webhook: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, snap.ID, StateDone)

	// Wait for the first (failing) attempt so the delivery goroutine is
	// parked in its backoff sleep.
	deadline := time.Now().Add(30 * time.Second)
	for {
		got, err := q.Get(snap.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.Webhook.Attempts >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first webhook attempt never recorded")
		}
		time.Sleep(2 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := q.Close(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Close = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Close took %v: the retry goroutine slept out its backoff instead of aborting", elapsed)
	}

	got, err := q.Get(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Webhook.Delivered || !strings.Contains(got.Webhook.LastError, "aborted by shutdown") {
		t.Fatalf("webhook status after shutdown: %+v", got.Webhook)
	}

	// No goroutine outlives Close: the count settles back to (at most)
	// what it was before the queue existed, modulo unrelated runtime
	// noise.
	settle := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline+2 {
			break
		}
		if time.Now().After(settle) {
			t.Fatalf("goroutines leaked: %d now vs %d baseline", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestLoads: the per-device congestion signal counts queued + running
// jobs and forgets terminal ones.
func TestLoads(t *testing.T) {
	q, _ := newTestQueue(t, Config{Workers: 1})
	tokyo := arch.IBMQ20Tokyo()
	line := arch.Line(8)

	running, err := q.Submit(Request{Job: slowJob("hog")})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, running.ID, StateRunning)
	q1, err := q.Submit(Request{Job: batch.Job{Circuit: workloads.GHZ(6), Device: line}})
	if err != nil {
		t.Fatal(err)
	}
	q2, err := q.Submit(Request{Job: batch.Job{Circuit: workloads.GHZ(6), Device: line}})
	if err != nil {
		t.Fatal(err)
	}

	loads := q.Loads()
	if loads[tokyo.Name()] != 1 {
		t.Fatalf("running load on %s = %d, want 1 (%v)", tokyo.Name(), loads[tokyo.Name()], loads)
	}
	if loads[line.Name()] != 2 {
		t.Fatalf("queued load on %s = %d, want 2 (%v)", line.Name(), loads[line.Name()], loads)
	}

	for _, id := range []string{running.ID, q1.ID, q2.ID} {
		if _, err := q.Cancel(id); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if len(q.Loads()) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("loads never drained: %v", q.Loads())
		}
		time.Sleep(2 * time.Millisecond)
	}
}
