// Package jobqueue decouples long compilations from request
// lifetimes: an async, durable-in-memory job subsystem on top of the
// batch engine. Callers Submit a compilation and get back a job ID
// immediately; a bounded worker pool drains the backlog onto
// batch.Engine.SubmitContext; the job walks queued → running →
// done/failed/cancelled; results are retained for a TTL and then
// garbage-collected; completion can additionally be pushed to a
// caller-supplied webhook URL with bounded retries.
//
// The queue is the daemon-mode chassis (cmd/sabred's v2 /jobs API):
// synchronous POST /compile cannot serve Table II-scale workloads that
// run for seconds, so the daemon parks them here and the client polls,
// long-polls, or receives the webhook. Every job is individually
// cancellable at any point — while queued (it is skipped before a
// worker picks it up) and while running (its context propagates down
// to the router's SWAP loop, which checks it at round granularity).
//
// A Queue is safe for concurrent use. Results served from a Snapshot
// are shared with the engine's cache and must be treated as read-only.
package jobqueue

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/joblog"
)

// State is a job's lifecycle position.
type State string

// The job lifecycle: queued → running → done | failed | cancelled.
// Cancellation can also strike while queued (queued → cancelled).
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final (done, failed or
// cancelled): the job will never transition again and its retention
// TTL is ticking.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Request is one async submission: the compilation itself plus
// delivery options.
type Request struct {
	// Job is the compilation, exactly as the synchronous engine path
	// takes it — same cache key, same deterministic seed derivation, so
	// an async job compiles to a byte-identical result.
	Job batch.Job

	// Webhook, when non-empty, is POSTed the completion payload once
	// the job reaches a terminal state, with bounded retries (see
	// WebhookConfig).
	Webhook string

	// DeviceSpec names Job.Device in the shared device-spec vocabulary
	// (arch.FromSpec). Durable queues require it: Job.Device.Name() is
	// a display label that does not round-trip through FromSpec, so the
	// spec is what the job log persists and what replay resolves.
	// Ignored (may be empty) on non-durable queues.
	DeviceSpec string

	// Fleet, when non-nil, records the fleet-scheduling decision that
	// chose Job.Device. The queue carries it through snapshots so
	// status responses can report how the device was picked; it does
	// not act on it.
	Fleet *fleet.Decision

	// Stream, when non-nil, makes this a streaming job: Job.Circuit is
	// ignored (the spec's QASM text is the source) and the routed
	// output is pushed to Webhook chunk by chunk. Set via SubmitStream,
	// which enforces the streaming invariants (webhook required,
	// durable queues refuse).
	Stream *StreamSpec
}

// Snapshot is a point-in-time, caller-safe view of one job.
type Snapshot struct {
	ID      string
	State   State
	Request Request

	Created  time.Time
	Started  time.Time // zero until running
	Finished time.Time // zero until terminal

	// Err is the failure message (failed) or cancellation cause
	// (cancelled); empty otherwise.
	Err string

	// Result is the engine outcome, set only in StateDone. It is
	// shared with the engine's result cache: read-only. Nil for
	// streaming jobs, whose output left through the webhook; see
	// StreamResult.
	Result *batch.Result

	// StreamResult carries a completed streaming job's routing
	// statistics and layouts (nil for unit jobs and until the stream
	// finishes).
	StreamResult *core.StreamResult

	// Chunks counts the routed-QASM chunks delivered so far for a
	// streaming job; it advances while the job runs.
	Chunks int

	// Webhook reports delivery progress for jobs that requested one.
	Webhook WebhookStatus
}

// WebhookStatus tracks completion-callback delivery for one job.
type WebhookStatus struct {
	URL       string `json:"url,omitempty"`
	Attempts  int    `json:"attempts,omitempty"`
	Delivered bool   `json:"delivered,omitempty"`
	LastError string `json:"last_error,omitempty"`
}

// Stats is a snapshot of queue counters.
type Stats struct {
	Submitted int64 `json:"submitted"`
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`
	Expired   int64 `json:"expired"` // terminal jobs GC'd after TTL

	Queued  int `json:"queued"`  // waiting for a worker
	Running int `json:"running"` // on the engine right now
	Held    int `json:"held"`    // jobs currently retained (any state)

	WebhooksDelivered int64 `json:"webhooks_delivered"`
	WebhooksFailed    int64 `json:"webhooks_failed"` // retries exhausted

	// Recovery reports what boot-time replay found. Non-nil whenever
	// the queue has a job log (all-zero after a clean boot), nil on
	// non-durable queues.
	Recovery *RecoveryStats `json:"recovery,omitempty"`

	// Log is the job log's own counters; nil on non-durable queues.
	Log *joblog.Stats `json:"log,omitempty"`

	// LogErrors counts fail-open durability faults: transition appends
	// or compactions that failed after the job was already admitted.
	LogErrors int64 `json:"log_errors,omitempty"`
}

// WebhookConfig bounds completion-callback delivery.
type WebhookConfig struct {
	// MaxAttempts caps delivery tries per job (default 3). Anything
	// but a 2xx response counts as a failed attempt; 4xx responses
	// other than 408 and 429 are permanent and settle delivery as
	// failed on the first attempt — a consumer that rejects the
	// payload will keep rejecting it.
	MaxAttempts int

	// Backoff is the base delay before the second attempt, doubling
	// per retry up to MaxBackoff (default 250ms). The actual delay is
	// jittered into [backoff/2, backoff) by a deterministic hash of
	// (job ID, attempt), so a burst of completions does not hammer the
	// consumer in lockstep while tests stay reproducible.
	Backoff time.Duration

	// MaxBackoff caps the exponential growth (default 30s).
	MaxBackoff time.Duration

	// Timeout bounds each POST (default 10s).
	Timeout time.Duration

	// Client overrides the HTTP client (default http.DefaultClient
	// with Timeout applied per request context).
	Client *http.Client
}

// Config configures a Queue; the zero value picks sensible defaults.
type Config struct {
	// Workers bounds concurrent jobs handed to the engine (default
	// GOMAXPROCS). The engine has its own pool; queue workers mostly
	// park in SubmitContext, so this is the async concurrency level,
	// not extra CPU.
	Workers int

	// QueueDepth bounds the backlog of queued jobs (default 1024).
	// Submit fails fast with ErrQueueFull beyond it — backpressure
	// instead of unbounded memory.
	QueueDepth int

	// TTL is how long a terminal job (and its result) is retained for
	// polling before garbage collection (default 15m).
	TTL time.Duration

	// GCInterval is the reaper period (default TTL/4, clamped to
	// [1s, 1m]).
	GCInterval time.Duration

	// Webhook bounds completion-callback delivery.
	Webhook WebhookConfig

	// Payload, when non-nil, builds the webhook body for a terminal
	// job (the daemon uses this to ship its full compile response).
	// Nil selects the default payload: the snapshot's ID/state/error
	// plus summary metrics.
	Payload func(Snapshot) any

	// Durable enables the crash-safe job log (see DurabilityConfig);
	// the zero value keeps the queue purely in-memory. Durable queues
	// must be constructed with Open, not New.
	Durable DurabilityConfig
}

const (
	defaultQueueDepth = 1024
	defaultTTL        = 15 * time.Minute
)

// Errors reported by the queue.
var (
	ErrClosed    = errors.New("jobqueue: queue closed")
	ErrQueueFull = errors.New("jobqueue: backlog full")
	ErrNotFound  = errors.New("jobqueue: no such job")
)

// job is the internal mutable record; all fields are guarded by
// Queue.mu except the immutable id/seq/req.
type job struct {
	id  string
	seq int64
	req Request

	state    State
	created  time.Time
	started  time.Time
	finished time.Time
	err      string
	result   *batch.Result
	webhook  WebhookStatus

	// Streaming-job progress: chunks delivered so far and the final
	// stream statistics (set on the terminal transition).
	chunks       int
	streamResult *core.StreamResult

	// payload is the encoded request as persisted in the job log's
	// accepted record (nil on non-durable queues); compaction rewrites
	// it verbatim.
	payload []byte

	// cancel aborts the running compilation (nil unless running);
	// cancelRequested distinguishes a caller's cancel from an engine
	// error once SubmitContext returns.
	cancel          context.CancelFunc
	cancelRequested bool

	// done is closed on the terminal transition — the long-poll signal.
	done chan struct{}
}

// Queue is the async job subsystem. Create with New, share freely,
// Close when done.
type Queue struct {
	cfg Config
	eng *batch.Engine

	mu     sync.Mutex
	jobs   map[string]*job
	seq    int64
	closed bool

	pending chan *job
	workers sync.WaitGroup
	hooks   sync.WaitGroup

	// hookCtx aborts in-flight webhook deliveries when a drain
	// deadline expires.
	hookCtx    context.Context
	hookCancel context.CancelFunc

	gcStop chan struct{}
	gcDone chan struct{}

	now func() time.Time // injected by tests

	// log is the durability log (nil = in-memory queue); recovery is
	// what boot-time replay found; device resolves persisted device
	// specs; logErrs counts fail-open durability faults (guarded by mu
	// like the other counters).
	log      *joblog.Log
	recovery *RecoveryStats
	device   func(spec string) (*arch.Device, error)
	logErrs  int64

	submitted, doneN, failedN, cancelledN, expiredN int64
	hooksOK, hooksFailed                            int64
}

// New starts a queue draining onto eng. The engine is borrowed, not
// owned: Close drains the queue but leaves eng running. Durable
// configurations (Config.Durable.Dir set) must use Open, which can
// report log-open and replay failures; New panics on them.
func New(eng *batch.Engine, cfg Config) *Queue {
	q, err := Open(eng, cfg)
	if err != nil {
		panic(fmt.Sprintf("jobqueue: New: %v (durable queues must use Open)", err))
	}
	return q
}

// applyDefaults fills the zero Config fields in place.
func applyDefaults(cfg *Config) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = defaultQueueDepth
	}
	if cfg.TTL <= 0 {
		cfg.TTL = defaultTTL
	}
	if cfg.GCInterval <= 0 {
		cfg.GCInterval = cfg.TTL / 4
		if cfg.GCInterval < time.Second {
			cfg.GCInterval = time.Second
		}
		if cfg.GCInterval > time.Minute {
			cfg.GCInterval = time.Minute
		}
	}
	if cfg.Webhook.MaxAttempts <= 0 {
		cfg.Webhook.MaxAttempts = 3
	}
	if cfg.Webhook.Backoff <= 0 {
		cfg.Webhook.Backoff = 250 * time.Millisecond
	}
	if cfg.Webhook.MaxBackoff <= 0 {
		cfg.Webhook.MaxBackoff = 30 * time.Second
	}
	if cfg.Webhook.Timeout <= 0 {
		cfg.Webhook.Timeout = 10 * time.Second
	}
	if cfg.Durable.CompactMinRecords <= 0 {
		cfg.Durable.CompactMinRecords = 512
	}
	if cfg.Durable.CompactFactor <= 1 {
		cfg.Durable.CompactFactor = 4
	}
}

// Submit registers a compilation and returns its job snapshot
// (StateQueued) immediately. It fails fast with ErrQueueFull when the
// backlog is at QueueDepth and ErrClosed after Close.
func (q *Queue) Submit(req Request) (Snapshot, error) {
	if req.Stream != nil {
		if req.Job.Device == nil {
			return Snapshot{}, errors.New("jobqueue: streaming job needs a non-nil Device")
		}
		if req.Webhook == "" {
			return Snapshot{}, errStreamNeedsWebhook
		}
		if q.log != nil {
			return Snapshot{}, errStreamDurable
		}
	} else if req.Job.Circuit == nil || req.Job.Device == nil {
		return Snapshot{}, errors.New("jobqueue: job needs a non-nil Circuit and Device")
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return Snapshot{}, ErrClosed
	}
	q.seq++
	j := &job{
		id:      newID(q.seq),
		seq:     q.seq,
		req:     req,
		state:   StateQueued,
		created: q.now(),
		done:    make(chan struct{}),
		webhook: WebhookStatus{URL: req.Webhook},
	}
	if q.log != nil {
		payload, err := encodeRequest(req)
		if err != nil {
			return Snapshot{}, err
		}
		j.payload = payload
	}
	select {
	case q.pending <- j:
	default:
		return Snapshot{}, fmt.Errorf("%w (depth %d)", ErrQueueFull, q.cfg.QueueDepth)
	}
	if q.log != nil {
		// The accepted record is the one append that must not fail
		// open: a job the log never admitted would silently vanish on
		// replay. The backlog slot is already taken, so mark the job
		// cancelled — the worker that picks it up skips it — and keep
		// it out of the map (never visible, never delivered).
		if err := q.log.Append(acceptedRecord(j)); err != nil {
			q.logErrs++
			j.state = StateCancelled
			return Snapshot{}, fmt.Errorf("jobqueue: durable accept: %w", err)
		}
	}
	q.jobs[j.id] = j
	q.submitted++
	return j.snapshotLocked(), nil
}

// Get returns the job's current snapshot.
func (q *Queue) Get(id string) (Snapshot, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return Snapshot{}, ErrNotFound
	}
	return j.snapshotLocked(), nil
}

// Wait long-polls: it returns the job's snapshot as soon as it is
// terminal, or after `wait` (or ctx cancellation), whichever comes
// first — returning the then-current snapshot either way. wait <= 0
// degenerates to Get.
func (q *Queue) Wait(ctx context.Context, id string, wait time.Duration) (Snapshot, error) {
	q.mu.Lock()
	j, ok := q.jobs[id]
	if !ok {
		q.mu.Unlock()
		return Snapshot{}, ErrNotFound
	}
	snap := j.snapshotLocked()
	done := j.done
	q.mu.Unlock()
	if wait <= 0 || snap.State.Terminal() {
		return snap, nil
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-done:
	case <-timer.C:
	case <-ctx.Done():
	}
	return q.Get(id)
}

// Cancel requests cancellation. A queued job transitions to
// StateCancelled immediately (the worker will skip it); a running
// job's context is cancelled, which the router honors within one SWAP
// round — its terminal transition happens when the engine returns.
// Cancelling an already-terminal job is a no-op. The returned snapshot
// reflects the post-call state.
func (q *Queue) Cancel(id string) (Snapshot, error) {
	q.mu.Lock()
	j, ok := q.jobs[id]
	if !ok {
		q.mu.Unlock()
		return Snapshot{}, ErrNotFound
	}
	q.cancelLocked(j, "cancelled by caller")
	snap := j.snapshotLocked()
	q.mu.Unlock()
	return snap, nil
}

// cancelLocked implements Cancel for one job; the caller holds q.mu.
func (q *Queue) cancelLocked(j *job, cause string) {
	switch j.state {
	case StateQueued:
		j.cancelRequested = true
		q.finishLocked(j, StateCancelled, cause, nil)
	case StateRunning:
		j.cancelRequested = true
		if j.cancel != nil {
			j.cancel()
		}
	}
}

// List returns every retained job, newest first. The order is total:
// jobs admitted in the same clock tick tie-break on the queue's
// admission sequence (later submission first), so repeated listings
// never shuffle — Created alone left equal-timestamp neighbours in
// map-iteration order, which flipped between calls.
func (q *Queue) List() []Snapshot {
	q.mu.Lock()
	defer q.mu.Unlock()
	type row struct {
		snap Snapshot
		seq  int64
	}
	rows := make([]row, 0, len(q.jobs))
	//sabre:nondeterm-ok rows are fully sorted below
	for _, j := range q.jobs {
		rows = append(rows, row{snap: j.snapshotLocked(), seq: j.seq})
	}
	sort.Slice(rows, func(a, b int) bool {
		if !rows[a].snap.Created.Equal(rows[b].snap.Created) {
			return rows[a].snap.Created.After(rows[b].snap.Created)
		}
		return rows[a].seq > rows[b].seq
	})
	out := make([]Snapshot, len(rows))
	for i, r := range rows {
		out[i] = r.snap
	}
	return out
}

// Stats returns a snapshot of the queue counters.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	st := Stats{
		Submitted:         q.submitted,
		Done:              q.doneN,
		Failed:            q.failedN,
		Cancelled:         q.cancelledN,
		Expired:           q.expiredN,
		Held:              len(q.jobs),
		WebhooksDelivered: q.hooksOK,
		WebhooksFailed:    q.hooksFailed,
		LogErrors:         q.logErrs,
	}
	if q.recovery != nil {
		r := *q.recovery
		st.Recovery = &r
	}
	if q.log != nil {
		ls := q.log.Stats()
		st.Log = &ls
	}
	//sabre:nondeterm-ok counter fold; order-insensitive
	for _, j := range q.jobs {
		switch j.state {
		case StateQueued:
			st.Queued++
		case StateRunning:
			st.Running++
		}
	}
	return st
}

// Loads returns the number of non-terminal jobs (queued plus running)
// per device name — the queue-congestion signal the fleet scheduler
// folds into its per-device score.
func (q *Queue) Loads() map[string]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[string]int)
	//sabre:nondeterm-ok per-device counter fold; order-insensitive
	for _, j := range q.jobs {
		if (j.state == StateQueued || j.state == StateRunning) && j.req.Job.Device != nil {
			out[j.req.Job.Device.Name()]++
		}
	}
	return out
}

// Close drains the queue: no new submissions are accepted, jobs
// already accepted (queued and running) run to completion, webhook
// deliveries finish, then Close returns. If ctx expires first, every
// outstanding job and in-flight webhook is cancelled and Close returns
// once they settle (promptly — cancellation reaches the router's SWAP
// loop). Close is idempotent; the borrowed engine stays open.
func (q *Queue) Close(ctx context.Context) error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil
	}
	q.closed = true
	close(q.pending) // workers drain the backlog then exit
	q.mu.Unlock()

	close(q.gcStop)
	<-q.gcDone

	drained := make(chan struct{})
	go func() {
		q.workers.Wait()
		q.hooks.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		q.closeLog()
		return nil
	case <-ctx.Done():
	}
	// Deadline: abort everything still outstanding, then wait for the
	// (now fast) settle so no goroutine outlives Close.
	q.mu.Lock()
	//sabre:nondeterm-ok every job is cancelled; order is invisible
	for _, j := range q.jobs {
		q.cancelLocked(j, "cancelled by shutdown")
	}
	q.mu.Unlock()
	q.hookCancel()
	<-drained
	q.closeLog()
	return ctx.Err()
}

// worker drains the backlog onto the engine.
func (q *Queue) worker() {
	defer q.workers.Done()
	for j := range q.pending {
		q.run(j)
	}
}

// run executes one job end to end.
func (q *Queue) run(j *job) {
	q.mu.Lock()
	if j.state != StateQueued {
		// Cancelled while waiting in the backlog.
		q.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	j.state = StateRunning
	j.started = q.now()
	j.cancel = cancel
	q.appendLocked(startedRecord(j))
	q.mu.Unlock()
	defer cancel()

	var runErr error
	var res batch.Result
	if j.req.Stream != nil {
		sres, err := q.executeStream(ctx, j)
		runErr = err
		q.mu.Lock()
		j.streamResult = sres
		q.mu.Unlock()
	} else {
		res = q.execute(ctx, j)
		runErr = res.Err
	}

	q.mu.Lock()
	j.cancel = nil
	switch {
	case runErr == nil && j.req.Stream != nil:
		q.finishLocked(j, StateDone, "", nil)
	case runErr == nil:
		q.finishLocked(j, StateDone, "", &res)
	case j.cancelRequested:
		q.finishLocked(j, StateCancelled, "cancelled while running", nil)
	default:
		q.finishLocked(j, StateFailed, runErr.Error(), nil)
	}
	q.mu.Unlock()
}

// execute hands the job to the engine behind a panic fence: the
// engine already recovers pipeline panics into batch.PanicError, but
// a panic anywhere else on the submission path (a poisoned option
// set, a broken custom router constructor) must also fail just this
// job — with the stack in the error — and never unwind the worker,
// which would deadlock every job behind it in the backlog.
func (q *Queue) execute(ctx context.Context, j *job) (res batch.Result) {
	defer func() {
		if r := recover(); r != nil {
			res = batch.Result{Err: &batch.PanicError{Value: r, Stack: debug.Stack()}}
		}
	}()
	return <-q.eng.SubmitContext(ctx, j.req.Job)
}

// finishLocked performs the terminal transition: state, counters, the
// long-poll signal, and webhook dispatch. The caller holds q.mu.
func (q *Queue) finishLocked(j *job, s State, errMsg string, res *batch.Result) {
	if j.state.Terminal() {
		return
	}
	j.state = s
	j.err = errMsg
	j.result = res
	j.finished = q.now()
	switch s {
	case StateDone:
		q.doneN++
	case StateFailed:
		q.failedN++
	case StateCancelled:
		q.cancelledN++
	}
	close(j.done)
	q.appendLocked(terminalRecord(j))
	q.maybeCompactLocked()
	if j.req.Webhook != "" {
		q.hooks.Add(1)
		go q.deliver(j, j.snapshotLocked())
	}
}

// reaper garbage-collects expired terminal jobs on a timer.
func (q *Queue) reaper() {
	defer close(q.gcDone)
	tick := time.NewTicker(q.cfg.GCInterval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			q.gc(q.now())
		case <-q.gcStop:
			return
		}
	}
}

// gc drops terminal jobs whose TTL elapsed before now, returning how
// many were expired. Exposed to tests; the reaper calls it on a timer.
func (q *Queue) gc(now time.Time) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	//sabre:nondeterm-ok TTL filter deletes a fixed set; order is invisible
	for id, j := range q.jobs {
		if j.state.Terminal() && now.Sub(j.finished) >= q.cfg.TTL {
			delete(q.jobs, id)
			n++
		}
	}
	q.expiredN += int64(n)
	return n
}

// snapshotLocked copies the job into a caller-safe view; the caller
// holds q.mu.
func (j *job) snapshotLocked() Snapshot {
	return Snapshot{
		ID:           j.id,
		State:        j.state,
		Request:      j.req,
		Created:      j.created,
		Started:      j.started,
		Finished:     j.finished,
		Err:          j.err,
		Result:       j.result,
		StreamResult: j.streamResult,
		Chunks:       j.chunks,
		Webhook:      j.webhook,
	}
}

// newID returns a collision-free job ID: a monotonic sequence number
// (uniqueness) plus random bytes (unguessability across restarts).
func newID(seq int64) string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; the sequence
		// number alone still guarantees in-process uniqueness.
		return fmt.Sprintf("job-%d", seq)
	}
	return fmt.Sprintf("job-%d-%s", seq, hex.EncodeToString(b[:]))
}
