package jobqueue

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"

	"repro/internal/batch"
	"repro/internal/core"
)

// StreamSpec marks a Request as a streaming compilation: the QASM
// source is routed through the windowed streaming router and the
// routed program is pushed to the job's webhook chunk by chunk as
// gates retire, instead of materializing a Result at the end. The
// concatenation of all chunk bodies, in X-Sabre-Chunk order, is one
// complete OpenQASM 2.0 program (the first chunk carries the
// header). Streaming jobs require a webhook — the output leaves
// through it — and are rejected by durable queues: a half-delivered
// stream has no replayable representation in the job log.
type StreamSpec struct {
	// QASM is the gate-stream source text.
	QASM string

	// Options tunes the streaming window and chunk granularity; the
	// zero value selects core.DefaultStreamOptions.
	Options core.StreamOptions
}

// Errors reported for streaming submissions.
var (
	errStreamNeedsWebhook = errors.New("jobqueue: streaming jobs require a webhook (chunks are delivered through it)")
	errStreamDurable      = errors.New("jobqueue: durable queues do not accept streaming jobs")
)

// SubmitStream registers a streaming compilation: the request's
// StreamSpec is routed chunk-by-chunk once a worker picks it up, each
// routed chunk is POSTed to req.Webhook immediately (X-Sabre-Chunk
// numbers them from 0), and the usual terminal webhook delivery
// follows with the stream statistics. The snapshot's StreamResult and
// Chunks fields report progress; Result stays nil for stream jobs.
func (q *Queue) SubmitStream(req Request, spec StreamSpec) (Snapshot, error) {
	if req.Job.Device == nil {
		return Snapshot{}, errors.New("jobqueue: streaming job needs a non-nil Device")
	}
	if req.Webhook == "" {
		return Snapshot{}, errStreamNeedsWebhook
	}
	req.Stream = &spec
	return q.Submit(req)
}

// executeStream runs one streaming job end to end: incremental parse,
// windowed routing, per-chunk webhook delivery. A chunk POST failure
// aborts the stream — the consumer is gone, so finishing the route
// would discard the output anyway. The panic fence mirrors execute:
// a poisoned stream fails this job only, never the worker.
func (q *Queue) executeStream(ctx context.Context, j *job) (res *core.StreamResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, &batch.PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	spec := j.req.Stream
	client := q.cfg.Webhook.Client
	if client == nil {
		client = http.DefaultClient
	}
	var buf bytes.Buffer
	chunk := 0
	onChunk := func(int64) error {
		if err := q.postChunk(ctx, client, j.req.Webhook, buf.Bytes(), j.id, chunk); err != nil {
			return err
		}
		buf.Reset()
		chunk++
		q.mu.Lock()
		j.chunks = chunk
		q.mu.Unlock()
		return nil
	}
	res, err = q.eng.CompileQASMStream(ctx, strings.NewReader(spec.QASM), batch.StreamJob{
		Device:  j.req.Job.Device,
		Options: j.req.Job.Options,
		Stream:  spec.Options,
		Tag:     j.req.Job.Tag,
	}, &buf, onChunk)
	if err != nil {
		return nil, err
	}
	// A gate-free program never fires Emit, leaving the header bytes
	// unsent; deliver them so the chunk concatenation is always a
	// complete program.
	if buf.Len() > 0 {
		if err := q.postChunk(ctx, client, j.req.Webhook, buf.Bytes(), j.id, chunk); err != nil {
			return nil, err
		}
		chunk++
		q.mu.Lock()
		j.chunks = chunk
		q.mu.Unlock()
	}
	return res, nil
}

// postChunk delivers one routed-QASM chunk. Chunks are not retried:
// they are ordered, so a failed delivery cannot be papered over by a
// later attempt without reordering the stream — the job fails
// instead, and the terminal webhook (which does retry) reports it.
func (q *Queue) postChunk(ctx context.Context, client *http.Client, url string, body []byte, id string, chunk int) error {
	ctx, cancel := context.WithTimeout(ctx, q.cfg.Webhook.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "text/plain; charset=utf-8")
	req.Header.Set("X-Sabre-Job", id)
	req.Header.Set("X-Sabre-Chunk", strconv.Itoa(chunk))
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("jobqueue: chunk %d delivery: %w", chunk, err)
	}
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("jobqueue: chunk %d delivery: status %s", chunk, resp.Status)
	}
	return nil
}
