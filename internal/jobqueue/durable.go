package jobqueue

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/arch"
	"repro/internal/batch"
	"repro/internal/joblog"
)

// durable.go wires the queue to internal/joblog: every lifecycle
// transition of every job is appended to an append-only log, and Open
// replays the log on boot so a crash (SIGKILL, OOM, power loss) loses
// no accepted work. Queued jobs re-enter the backlog in their original
// admission order; jobs that were running when the process died are
// re-queued from scratch — the engine recomputes them and, because
// compilation is deterministic, the replayed result is byte-identical
// to what the lost run would have produced.
//
// Transition appends happen under q.mu, inside the same critical
// sections that mutate job state, so the log's record order agrees
// with the state machine. Append failures on started/terminal
// transitions are fail-open (counted in Stats.LogErrors, job
// proceeds): losing a transition record means at worst re-running a
// deterministic job after the next crash. The accepted record is the
// exception — if it cannot be appended, Submit fails, because a job
// the log never admitted would silently vanish on replay.

// DurabilityConfig enables the job log. The zero value (empty Dir)
// disables durability entirely — the queue behaves exactly as before.
type DurabilityConfig struct {
	// Dir is the log directory (created if missing). Empty disables
	// the job log.
	Dir string

	// Fsync is the joblog sync policy (default FsyncAlways: every
	// accepted job survives any crash).
	Fsync joblog.FsyncPolicy

	// FsyncInterval is the background sync period under FsyncInterval
	// (default 100ms).
	FsyncInterval time.Duration

	// CompactMinRecords is the log size below which compaction never
	// triggers (default 512 records).
	CompactMinRecords int

	// CompactFactor triggers compaction when the log holds more than
	// CompactFactor times as many records as the live set needs
	// (default 4).
	CompactFactor int

	// Device resolves a persisted device spec on replay (default
	// arch.FromSpec). The daemon passes its memoized resolver so
	// replayed jobs share calibratable device instances with live
	// traffic.
	Device func(spec string) (*arch.Device, error)

	// Wrap and Rename are joblog test seams (fault injection); nil in
	// production.
	Wrap   func(joblog.File) joblog.File
	Rename func(oldpath, newpath string) error
}

// RecoveryStats reports what boot-time replay found; surfaced in
// Stats.Recovery (and the daemon's /stats) so operators can see that a
// restart recovered work.
type RecoveryStats struct {
	// Replayed counts live jobs found in the log (Queued + Running +
	// Dropped).
	Replayed int `json:"replayed"`
	// Queued counts jobs that were waiting at crash time and re-entered
	// the backlog.
	Queued int `json:"queued"`
	// Running counts jobs that were on the engine at crash time; they
	// are re-queued and recompute deterministically.
	Running int `json:"running"`
	// Dropped counts live records whose payload no longer decodes;
	// they are retained as failed jobs instead of replayed.
	Dropped int `json:"dropped,omitempty"`
	// TornTail reports that the log ended in a truncated or corrupt
	// final record (normal crash residue; the tail was discarded).
	TornTail bool `json:"torn_tail,omitempty"`
	// TornBytes is the size of the discarded tail.
	TornBytes int64 `json:"torn_bytes,omitempty"`
}

// Open starts a queue like New and, when cfg.Durable.Dir is set,
// opens (or creates) the job log there and replays it: live jobs from
// the previous process re-enter the backlog in admission order before
// any new submission is accepted. The error is non-nil only for
// durable configurations — an unreadable log directory or mid-file
// corruption (joblog.CorruptError, with the offending offset) refuses
// to start rather than silently dropping accepted work.
func Open(eng *batch.Engine, cfg Config) (*Queue, error) {
	applyDefaults(&cfg)
	hookCtx, hookCancel := context.WithCancel(context.Background())
	q := &Queue{
		cfg:        cfg,
		eng:        eng,
		jobs:       make(map[string]*job),
		hookCtx:    hookCtx,
		hookCancel: hookCancel,
		gcStop:     make(chan struct{}),
		gcDone:     make(chan struct{}),
		now:        time.Now,
	}
	var replayed []*job
	if cfg.Durable.Dir != "" {
		q.device = cfg.Durable.Device
		if q.device == nil {
			q.device = arch.FromSpec
		}
		l, rec, err := joblog.Open(cfg.Durable.Dir, joblog.Config{
			Fsync:    cfg.Durable.Fsync,
			Interval: cfg.Durable.FsyncInterval,
			Wrap:     cfg.Durable.Wrap,
			Rename:   cfg.Durable.Rename,
		})
		if err != nil {
			hookCancel()
			return nil, err
		}
		q.log = l
		rs := &RecoveryStats{TornTail: rec.TornTail, TornBytes: rec.TornBytes}
		replayed = q.replay(rec.Records, rs)
		q.recovery = rs
	}
	depth := cfg.QueueDepth
	if len(replayed) > depth {
		// The previous process admitted more than this one's configured
		// depth; recovery must not drop accepted work, so the backlog
		// stretches to fit.
		depth = len(replayed)
	}
	q.pending = make(chan *job, depth)
	for _, j := range replayed {
		q.jobs[j.id] = j
		q.pending <- j
	}
	q.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go q.worker()
	}
	go q.reaper()
	return q, nil
}

// replay folds the recovered records into the set of jobs to
// resurrect, in admission (sequence) order. A job is live when its
// accepted record has no matching terminal record. Live records whose
// payload no longer decodes are dropped: retained as failed jobs (so
// pollers learn their fate) and re-terminated in the log (so the next
// boot does not see them again).
func (q *Queue) replay(records []joblog.Record, rs *RecoveryStats) []*job {
	type entry struct {
		acc     joblog.Record
		running bool
		live    bool
	}
	entries := make(map[string]*entry)
	order := make([]string, 0, len(records))
	var maxSeq uint64
	for _, r := range records {
		if r.Seq > maxSeq {
			maxSeq = r.Seq
		}
		switch r.Kind {
		case joblog.KindAccepted:
			if _, ok := entries[r.ID]; !ok {
				entries[r.ID] = &entry{acc: r, live: true}
				order = append(order, r.ID)
			}
		case joblog.KindStarted:
			if e := entries[r.ID]; e != nil {
				e.running = true
			}
		case joblog.KindFinished, joblog.KindCancelled:
			if e := entries[r.ID]; e != nil {
				e.live = false
			}
		}
	}
	q.seq = int64(maxSeq)
	// Accepted records are appended (and compacted) in sequence order,
	// so file order already is admission order; sort defensively so a
	// hand-edited or merged log still replays deterministically.
	sort.SliceStable(order, func(a, b int) bool {
		return entries[order[a]].acc.Seq < entries[order[b]].acc.Seq
	})
	var out []*job
	for _, id := range order {
		e := entries[id]
		if !e.live {
			continue
		}
		rs.Replayed++
		created := time.Unix(0, e.acc.Time)
		req, err := decodeRequest(e.acc.Payload, q.device)
		if err != nil {
			rs.Dropped++
			msg := fmt.Sprintf("replay: %v", err)
			j := &job{
				id:       id,
				seq:      int64(e.acc.Seq),
				state:    StateFailed,
				created:  created,
				finished: q.now(),
				err:      msg,
				done:     make(chan struct{}),
			}
			close(j.done)
			q.jobs[id] = j
			q.failedN++
			// Terminate it in the log too, or the next boot re-drops it.
			q.appendLocked(joblog.Record{
				Kind: joblog.KindFinished, Seq: e.acc.Seq,
				Time: j.finished.UnixNano(), ID: id,
				State: string(StateFailed), Err: msg,
			})
			continue
		}
		j := &job{
			id:      id,
			seq:     int64(e.acc.Seq),
			req:     req,
			state:   StateQueued,
			created: created,
			done:    make(chan struct{}),
			webhook: WebhookStatus{URL: req.Webhook},
			payload: e.acc.Payload,
		}
		if e.running {
			rs.Running++
		} else {
			rs.Queued++
		}
		out = append(out, j)
	}
	return out
}

// appendLocked appends one transition record, fail-open: an append
// error is counted (Stats.LogErrors) and the transition proceeds. The
// caller holds q.mu. No-op on non-durable queues.
func (q *Queue) appendLocked(r joblog.Record) {
	if q.log == nil {
		return
	}
	if err := q.log.Append(r); err != nil {
		q.logErrs++
	}
}

// acceptedRecord is the durable form of admission: it carries the
// encoded request, so it alone can resurrect the job.
func acceptedRecord(j *job) joblog.Record {
	return joblog.Record{
		Kind: joblog.KindAccepted, Seq: uint64(j.seq),
		Time: j.created.UnixNano(), ID: j.id, Payload: j.payload,
	}
}

func startedRecord(j *job) joblog.Record {
	return joblog.Record{
		Kind: joblog.KindStarted, Seq: uint64(j.seq),
		Time: j.started.UnixNano(), ID: j.id,
	}
}

// terminalRecord encodes the job's terminal transition; the caller
// holds q.mu and the job is terminal.
func terminalRecord(j *job) joblog.Record {
	kind := joblog.KindFinished
	if j.state == StateCancelled {
		kind = joblog.KindCancelled
	}
	return joblog.Record{
		Kind: kind, Seq: uint64(j.seq), Time: j.finished.UnixNano(),
		ID: j.id, State: string(j.state), Err: j.err,
	}
}

// maybeCompactLocked rewrites the log down to the live set once the
// log carries CompactFactor times more records than the live set
// needs (and at least CompactMinRecords). Runs under q.mu: by
// construction the live set is a small fraction of the log when this
// fires, so the rewrite is short. Compaction failure is fail-open —
// the old log stays authoritative and the next terminal transition
// retries.
func (q *Queue) maybeCompactLocked() {
	if q.log == nil {
		return
	}
	total := q.log.Records()
	if total < int64(q.cfg.Durable.CompactMinRecords) {
		return
	}
	live := q.liveRecordsLocked()
	if total < int64(q.cfg.Durable.CompactFactor)*int64(len(live)+1) {
		return
	}
	if err := q.log.Compact(live); err != nil {
		q.logErrs++
	}
}

// liveRecordsLocked rebuilds the minimal record set that reproduces
// the current non-terminal jobs, in admission order.
func (q *Queue) liveRecordsLocked() []joblog.Record {
	var live []*job
	//sabre:nondeterm-ok collected set is fully sorted by seq below
	for _, j := range q.jobs {
		if !j.state.Terminal() && j.payload != nil {
			live = append(live, j)
		}
	}
	sort.Slice(live, func(a, b int) bool { return live[a].seq < live[b].seq })
	recs := make([]joblog.Record, 0, 2*len(live))
	for _, j := range live {
		recs = append(recs, acceptedRecord(j))
		if j.state == StateRunning {
			recs = append(recs, startedRecord(j))
		}
	}
	return recs
}

// closeLog closes the job log after the workers drained (no appends
// can race it).
func (q *Queue) closeLog() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.log == nil {
		return
	}
	if err := q.log.Close(); err != nil {
		q.logErrs++
	}
}
