package jobqueue

import (
	"fmt"
	"testing"
	"time"
)

// TestListStableOrderOnCreatedTies is the map-order regression: List
// sorted by Created alone, so jobs admitted in the same clock tick
// kept whatever order the q.jobs map iteration produced that call —
// two consecutive GET /jobs could disagree. The admission sequence now
// breaks ties (later submission first), making the order total.
func TestListStableOrderOnCreatedTies(t *testing.T) {
	q := &Queue{jobs: make(map[string]*job)}
	now := time.Now()
	const burst = 12
	for i := 0; i < burst; i++ {
		id := fmt.Sprintf("job-%02d", i)
		q.jobs[id] = &job{id: id, seq: int64(i + 1), state: StateQueued, created: now}
	}
	// One genuinely older job: Created must still dominate the seq
	// tie-break, so it lists last despite the largest seq.
	q.jobs["job-old"] = &job{id: "job-old", seq: 99, state: StateQueued, created: now.Add(-time.Minute)}

	want := make([]string, 0, burst+1)
	for i := burst - 1; i >= 0; i-- {
		want = append(want, fmt.Sprintf("job-%02d", i))
	}
	want = append(want, "job-old")

	for round := 0; round < 8; round++ {
		got := q.List()
		if len(got) != len(want) {
			t.Fatalf("round %d: %d snapshots, want %d", round, len(got), len(want))
		}
		for i, s := range got {
			if s.ID != want[i] {
				t.Fatalf("round %d: position %d is %s, want %s (listing order must not depend on map iteration)", round, i, s.ID, want[i])
			}
		}
	}
}
