package jobqueue

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// defaultPayload is the webhook body when Config.Payload is nil: the
// terminal facts of the job plus summary routing metrics. The daemon
// overrides this with its full compile response so webhook consumers
// see exactly what a poller sees.
type defaultPayload struct {
	JobID    string `json:"job_id"`
	State    State  `json:"state"`
	Tag      string `json:"tag,omitempty"`
	Error    string `json:"error,omitempty"`
	Gates    int    `json:"gates,omitempty"`
	Depth    int    `json:"depth,omitempty"`
	AddedG   int    `json:"added_gates,omitempty"`
	Elapsed  int64  `json:"elapsed_ns,omitempty"`
	Finished string `json:"finished,omitempty"`
}

// buildPayload materializes the webhook body for one terminal job.
func (q *Queue) buildPayload(snap Snapshot) any {
	if q.cfg.Payload != nil {
		return q.cfg.Payload(snap)
	}
	p := defaultPayload{
		JobID:    snap.ID,
		State:    snap.State,
		Tag:      snap.Request.Job.Tag,
		Error:    snap.Err,
		Finished: snap.Finished.UTC().Format(time.RFC3339Nano),
	}
	if snap.Result != nil && snap.Result.Result != nil {
		p.Gates = snap.Result.Final.NumGates()
		p.Depth = snap.Result.Final.Depth()
		p.AddedG = snap.Result.AddedGates
		p.Elapsed = snap.Result.Elapsed.Nanoseconds()
	}
	return p
}

// deliver POSTs the completion payload to the job's webhook URL with
// bounded retries and exponential backoff. Any 2xx response settles
// delivery; after MaxAttempts non-2xx/transport failures the job's
// WebhookStatus records the exhaustion and the queue counts it. The
// queue's hook context aborts in-flight deliveries on drain deadline.
func (q *Queue) deliver(j *job, snap Snapshot) {
	defer q.hooks.Done()
	body, err := json.Marshal(q.buildPayload(snap))
	if err != nil {
		q.recordDelivery(j, 0, false, fmt.Sprintf("encode payload: %v", err))
		return
	}
	client := q.cfg.Webhook.Client
	if client == nil {
		client = http.DefaultClient
	}
	backoff := q.cfg.Webhook.Backoff
	var lastErr string
	for attempt := 1; attempt <= q.cfg.Webhook.MaxAttempts; attempt++ {
		if attempt > 1 {
			select {
			case <-time.After(backoff):
				backoff *= 2
			case <-q.hookCtx.Done():
				q.recordDelivery(j, attempt-1, false, "aborted by shutdown")
				return
			}
		}
		err := q.post(client, snap.Request.Webhook, body, snap.ID, attempt)
		if err == nil {
			q.recordDelivery(j, attempt, true, "")
			return
		}
		lastErr = err.Error()
		q.recordDelivery(j, attempt, false, lastErr)
	}
	q.mu.Lock()
	q.hooksFailed++
	q.mu.Unlock()
}

// post performs one delivery attempt.
func (q *Queue) post(client *http.Client, url string, body []byte, id string, attempt int) error {
	ctx, cancel := context.WithTimeout(q.hookCtx, q.cfg.Webhook.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Sabre-Job", id)
	req.Header.Set("X-Sabre-Attempt", strconv.Itoa(attempt))
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("webhook status %s", resp.Status)
	}
	return nil
}

// recordDelivery updates the job's webhook bookkeeping after one
// attempt (or final success).
func (q *Queue) recordDelivery(j *job, attempts int, delivered bool, lastErr string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if attempts > j.webhook.Attempts {
		j.webhook.Attempts = attempts
	}
	j.webhook.Delivered = delivered
	j.webhook.LastError = lastErr
	if delivered {
		q.hooksOK++
	}
}
