package jobqueue

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"time"
)

// defaultPayload is the webhook body when Config.Payload is nil: the
// terminal facts of the job plus summary routing metrics. The daemon
// overrides this with its full compile response so webhook consumers
// see exactly what a poller sees.
type defaultPayload struct {
	JobID    string `json:"job_id"`
	State    State  `json:"state"`
	Tag      string `json:"tag,omitempty"`
	Error    string `json:"error,omitempty"`
	Gates    int    `json:"gates,omitempty"`
	Depth    int    `json:"depth,omitempty"`
	AddedG   int    `json:"added_gates,omitempty"`
	Elapsed  int64  `json:"elapsed_ns,omitempty"`
	Chunks   int    `json:"chunks,omitempty"` // streaming jobs only
	Finished string `json:"finished,omitempty"`
}

// buildPayload materializes the webhook body for one terminal job.
func (q *Queue) buildPayload(snap Snapshot) any {
	if q.cfg.Payload != nil {
		return q.cfg.Payload(snap)
	}
	p := defaultPayload{
		JobID:    snap.ID,
		State:    snap.State,
		Tag:      snap.Request.Job.Tag,
		Error:    snap.Err,
		Finished: snap.Finished.UTC().Format(time.RFC3339Nano),
	}
	if snap.Result != nil && snap.Result.Result != nil {
		p.Gates = snap.Result.Final.NumGates()
		p.Depth = snap.Result.Final.Depth()
		p.AddedG = snap.Result.AddedGates
		p.Elapsed = snap.Result.Elapsed.Nanoseconds()
	}
	if snap.StreamResult != nil {
		p.Gates = int(snap.StreamResult.Stats.GatesOut)
		p.AddedG = snap.StreamResult.Stats.AddedGates
		p.Elapsed = snap.StreamResult.Stats.Elapsed.Nanoseconds()
		p.Chunks = snap.Chunks
	}
	return p
}

// deliver POSTs the completion payload to the job's webhook URL with
// bounded retries and capped, jittered exponential backoff. Any 2xx
// response settles delivery; a permanent 4xx (anything but 408/429)
// settles it as failed immediately — retrying a rejection is noise;
// other failures retry until MaxAttempts, after which the job's
// WebhookStatus records the exhaustion and the queue counts it. The
// queue's hook context aborts in-flight deliveries on drain deadline.
func (q *Queue) deliver(j *job, snap Snapshot) {
	defer q.hooks.Done()
	body, err := json.Marshal(q.buildPayload(snap))
	if err != nil {
		q.recordDelivery(j, 0, false, fmt.Sprintf("encode payload: %v", err))
		return
	}
	client := q.cfg.Webhook.Client
	if client == nil {
		client = http.DefaultClient
	}
	backoff := q.cfg.Webhook.Backoff
	for attempt := 1; attempt <= q.cfg.Webhook.MaxAttempts; attempt++ {
		if attempt > 1 {
			select {
			case <-time.After(retryDelay(backoff, snap.ID, attempt)):
				backoff *= 2
				if backoff > q.cfg.Webhook.MaxBackoff {
					backoff = q.cfg.Webhook.MaxBackoff
				}
			case <-q.hookCtx.Done():
				q.recordDelivery(j, attempt-1, false, "aborted by shutdown")
				return
			}
		}
		status, err := q.post(client, snap.Request.Webhook, body, snap.ID, attempt)
		if err == nil {
			q.recordDelivery(j, attempt, true, "")
			return
		}
		if permanentStatus(status) {
			q.recordDelivery(j, attempt, false, err.Error()+" (permanent; not retried)")
			break
		}
		q.recordDelivery(j, attempt, false, err.Error())
	}
	q.mu.Lock()
	q.hooksFailed++
	q.mu.Unlock()
}

// retryDelay jitters the backoff into [backoff/2, backoff) with a
// deterministic hash of (job ID, attempt): completions that finish
// together spread their retries without consulting a global PRNG, and
// a given job's retry schedule is reproducible.
func retryDelay(backoff time.Duration, id string, attempt int) time.Duration {
	half := backoff / 2
	if half <= 0 {
		return backoff
	}
	h := fnv.New64a()
	h.Write([]byte(id))
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(attempt))
	h.Write(b[:])
	frac := float64(h.Sum64()>>11) / float64(uint64(1)<<53)
	return half + time.Duration(frac*float64(half))
}

// permanentStatus reports whether an HTTP status can never be cured
// by retrying: any 4xx except 408 (request timeout) and 429 (rate
// limited). Transport errors and 5xx (status 0 or >= 500) remain
// retryable.
func permanentStatus(status int) bool {
	return status >= 400 && status < 500 &&
		status != http.StatusRequestTimeout && status != http.StatusTooManyRequests
}

// post performs one delivery attempt; it returns the response status
// (0 when no response arrived) alongside the failure, so deliver can
// classify permanence.
func (q *Queue) post(client *http.Client, url string, body []byte, id string, attempt int) (int, error) {
	ctx, cancel := context.WithTimeout(q.hookCtx, q.cfg.Webhook.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Sabre-Job", id)
	req.Header.Set("X-Sabre-Attempt", strconv.Itoa(attempt))
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	// Drain (bounded) before close so the transport can reuse the
	// connection for the next delivery instead of tearing it down.
	io.Copy(io.Discard, io.LimitReader(resp.Body, 256<<10))
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return resp.StatusCode, fmt.Errorf("webhook status %s", resp.Status)
	}
	return resp.StatusCode, nil
}

// recordDelivery updates the job's webhook bookkeeping after one
// attempt (or final success).
func (q *Queue) recordDelivery(j *job, attempts int, delivered bool, lastErr string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if attempts > j.webhook.Attempts {
		j.webhook.Attempts = attempts
	}
	j.webhook.Delivered = delivered
	j.webhook.LastError = lastErr
	if delivered {
		q.hooksOK++
	}
}
