package jobqueue

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/batch"
	"repro/internal/workloads"
)

// newTestQueue builds a small engine + queue pair and tears both down.
func newTestQueue(t *testing.T, cfg Config) (*Queue, *batch.Engine) {
	t.Helper()
	eng := batch.NewEngine(batch.Config{Workers: 2})
	t.Cleanup(eng.Close)
	q := New(eng, cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = q.Close(ctx)
	})
	return q, eng
}

func fastJob(tag string) batch.Job {
	return batch.Job{Circuit: workloads.GHZ(6), Device: arch.IBMQ20Tokyo(), Tag: tag}
}

// slowJob takes long enough (hundreds of ms) that tests can observe
// and interrupt the running state.
func slowJob(tag string) batch.Job {
	return batch.Job{
		Circuit: workloads.RandomCircuit("slow", 20, 8000, 0.9, 1),
		Device:  arch.IBMQ20Tokyo(),
		Trials:  40,
		Tag:     tag,
	}
}

// waitState polls until the job reaches a terminal state.
func waitState(t *testing.T, q *Queue, id string, want State) Snapshot {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		snap, err := q.Get(id)
		if err != nil {
			t.Fatalf("get %s: %v", id, err)
		}
		if snap.State == want {
			return snap
		}
		if snap.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job %s: state %s (err %q), want %s", id, snap.State, snap.Err, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestLifecycleAndResultParity: an async job completes and its result
// is byte-identical to the synchronous engine path for the same job —
// the queue adds delivery semantics, never a different compilation.
func TestLifecycleAndResultParity(t *testing.T) {
	q, eng := newTestQueue(t, Config{Workers: 2})

	snap, err := q.Submit(Request{Job: fastJob("ghz")})
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateQueued || snap.ID == "" {
		t.Fatalf("submit snapshot: %+v", snap)
	}

	got, err := q.Wait(context.Background(), snap.ID, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateDone || got.Result == nil {
		t.Fatalf("state %s err %q", got.State, got.Err)
	}
	if got.Finished.Before(got.Started) || got.Started.Before(got.Created) {
		t.Fatalf("timestamps out of order: %+v", got)
	}

	sync := <-eng.Submit(fastJob("ghz"))
	if sync.Err != nil {
		t.Fatal(sync.Err)
	}
	if !got.Result.Final.Equal(sync.Final) {
		t.Fatal("async result differs from synchronous result for the identical job")
	}
}

// TestCancelWhileQueued: with the lone worker occupied, a backlogged
// job cancels instantly and never runs.
func TestCancelWhileQueued(t *testing.T) {
	q, _ := newTestQueue(t, Config{Workers: 1})

	running, err := q.Submit(Request{Job: slowJob("hog")})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, running.ID, StateRunning)

	queued, err := q.Submit(Request{Job: fastJob("parked")})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := q.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateCancelled {
		t.Fatalf("cancel-while-queued state = %s", snap.State)
	}
	if !snap.Started.IsZero() {
		t.Fatal("cancelled-while-queued job has a start time — it ran")
	}
	if _, err := q.Cancel(running.ID); err != nil { // unblock the worker
		t.Fatal(err)
	}
	waitState(t, q, running.ID, StateCancelled)

	st := q.Stats()
	if st.Cancelled != 2 || st.Done != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestCancelWhileRunning: cancellation reaches the router's SWAP loop,
// so even a multi-second job settles promptly.
func TestCancelWhileRunning(t *testing.T) {
	q, _ := newTestQueue(t, Config{Workers: 1})
	snap, err := q.Submit(Request{Job: slowJob("doomed")})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, snap.ID, StateRunning)

	start := time.Now()
	if _, err := q.Cancel(snap.ID); err != nil {
		t.Fatal(err)
	}
	got := waitState(t, q, snap.ID, StateCancelled)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("running job took %v to honor cancellation", elapsed)
	}
	if got.Result != nil {
		t.Fatal("cancelled job carries a result")
	}
	// Cancelling a terminal job is a no-op.
	again, err := q.Cancel(snap.ID)
	if err != nil || again.State != StateCancelled {
		t.Fatalf("re-cancel: %v / %s", err, again.State)
	}
}

// TestTTLExpiry: terminal jobs outlive their TTL only until the
// reaper passes; live jobs are never collected.
func TestTTLExpiry(t *testing.T) {
	q, _ := newTestQueue(t, Config{Workers: 2, TTL: time.Hour})

	snap, err := q.Submit(Request{Job: fastJob("ephemeral")})
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, q, snap.ID, StateDone)

	if n := q.gc(done.Finished.Add(30 * time.Minute)); n != 0 {
		t.Fatalf("gc before TTL expired %d jobs", n)
	}
	if _, err := q.Get(snap.ID); err != nil {
		t.Fatalf("job reaped before TTL: %v", err)
	}
	if n := q.gc(done.Finished.Add(2 * time.Hour)); n != 1 {
		t.Fatalf("gc after TTL expired %d jobs, want 1", n)
	}
	if _, err := q.Get(snap.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expired job still retrievable: %v", err)
	}
	if st := q.Stats(); st.Expired != 1 || st.Held != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// waitWebhook polls the job's webhook status until delivery settles.
func waitWebhook(t *testing.T, q *Queue, id string, attempts int) Snapshot {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		snap, err := q.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Webhook.Delivered || snap.Webhook.Attempts >= attempts {
			return snap
		}
		if time.Now().After(deadline) {
			t.Fatalf("webhook never settled: %+v", snap.Webhook)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestWebhookDelivery: a completed job POSTs its payload once to the
// webhook URL.
func TestWebhookDelivery(t *testing.T) {
	var gotBody atomic.Value
	var hits atomic.Int64
	ws := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var m map[string]any
		if err := json.NewDecoder(r.Body).Decode(&m); err != nil {
			t.Errorf("webhook body: %v", err)
		}
		gotBody.Store(m)
		hits.Add(1)
	}))
	defer ws.Close()

	q, _ := newTestQueue(t, Config{Workers: 1})
	snap, err := q.Submit(Request{Job: fastJob("hooked"), Webhook: ws.URL})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, snap.ID, StateDone)
	got := waitWebhook(t, q, snap.ID, 1)
	if !got.Webhook.Delivered || got.Webhook.Attempts != 1 || got.Webhook.LastError != "" {
		t.Fatalf("webhook status = %+v", got.Webhook)
	}
	if hits.Load() != 1 {
		t.Fatalf("webhook hit %d times", hits.Load())
	}
	m := gotBody.Load().(map[string]any)
	if m["job_id"] != snap.ID || m["state"] != string(StateDone) {
		t.Fatalf("payload = %v", m)
	}
	if st := q.Stats(); st.WebhooksDelivered != 1 || st.WebhooksFailed != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestWebhookRetryThenSuccess: transient 5xx responses are retried
// with backoff until a 2xx lands.
func TestWebhookRetryThenSuccess(t *testing.T) {
	var hits atomic.Int64
	ws := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) < 3 {
			http.Error(w, "flaky", http.StatusBadGateway)
		}
	}))
	defer ws.Close()

	q, _ := newTestQueue(t, Config{
		Workers: 1,
		Webhook: WebhookConfig{MaxAttempts: 3, Backoff: time.Millisecond},
	})
	snap, err := q.Submit(Request{Job: fastJob("retry"), Webhook: ws.URL})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, snap.ID, StateDone)
	got := waitWebhook(t, q, snap.ID, 3)
	if !got.Webhook.Delivered || got.Webhook.Attempts != 3 {
		t.Fatalf("webhook status = %+v", got.Webhook)
	}
	if st := q.Stats(); st.WebhooksDelivered != 1 || st.WebhooksFailed != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestWebhookExhaustion: a webhook that never answers 2xx is retried
// exactly MaxAttempts times, the exhaustion is recorded on the job,
// and the queue counts the failure — the job itself still completes.
func TestWebhookExhaustion(t *testing.T) {
	var hits atomic.Int64
	ws := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer ws.Close()

	q, _ := newTestQueue(t, Config{
		Workers: 1,
		Webhook: WebhookConfig{MaxAttempts: 3, Backoff: time.Millisecond},
	})
	snap, err := q.Submit(Request{Job: fastJob("exhausted"), Webhook: ws.URL})
	if err != nil {
		t.Fatal(err)
	}
	if got := waitState(t, q, snap.ID, StateDone); got.Result == nil {
		t.Fatal("job result lost to webhook failure")
	}
	got := waitWebhook(t, q, snap.ID, 3)
	if got.Webhook.Delivered || got.Webhook.Attempts != 3 || got.Webhook.LastError == "" {
		t.Fatalf("webhook status = %+v", got.Webhook)
	}
	// Counter settles after the last attempt's bookkeeping.
	deadline := time.Now().Add(10 * time.Second)
	for q.Stats().WebhooksFailed != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("stats = %+v", q.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if hits.Load() != 3 {
		t.Fatalf("webhook hit %d times, want 3", hits.Load())
	}
}

// TestBackpressure: a full backlog rejects new work instead of
// growing without bound.
func TestBackpressure(t *testing.T) {
	q, _ := newTestQueue(t, Config{Workers: 1, QueueDepth: 1})

	hog, err := q.Submit(Request{Job: slowJob("hog")})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, hog.ID, StateRunning)

	if _, err := q.Submit(Request{Job: fastJob("fills-depth")}); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(Request{Job: fastJob("overflow")}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: %v, want ErrQueueFull", err)
	}
	if _, err := q.Cancel(hog.ID); err != nil {
		t.Fatal(err)
	}
}

// TestSubmitValidation: nil inputs and closed queues fail fast.
func TestSubmitValidation(t *testing.T) {
	eng := batch.NewEngine(batch.Config{Workers: 1})
	defer eng.Close()
	q := New(eng, Config{Workers: 1})
	if _, err := q.Submit(Request{}); err == nil {
		t.Fatal("nil-circuit submit accepted")
	}
	if err := q.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(Request{Job: fastJob("late")}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
	if err := q.Close(context.Background()); err != nil {
		t.Fatal("second close must be a no-op")
	}
}

// TestGracefulDrain: Close with headroom lets accepted jobs finish.
func TestGracefulDrain(t *testing.T) {
	eng := batch.NewEngine(batch.Config{Workers: 2})
	defer eng.Close()
	q := New(eng, Config{Workers: 2})

	var ids []string
	for i := 0; i < 4; i++ {
		snap, err := q.Submit(Request{Job: fastJob(fmt.Sprintf("drain-%d", i))})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, snap.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := q.Close(ctx); err != nil {
		t.Fatalf("graceful close: %v", err)
	}
	for _, id := range ids {
		snap, err := q.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if snap.State != StateDone {
			t.Fatalf("job %s drained to %s", id, snap.State)
		}
	}
}

// TestDrainDeadline: a Close deadline cancels outstanding work rather
// than hanging; the in-flight job settles as cancelled.
func TestDrainDeadline(t *testing.T) {
	eng := batch.NewEngine(batch.Config{Workers: 1})
	defer eng.Close()
	q := New(eng, Config{Workers: 1})

	snap, err := q.Submit(Request{Job: slowJob("immortal")})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, snap.ID, StateRunning)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = q.Close(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline close: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("deadline close took %v", elapsed)
	}
	got, err := q.Get(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCancelled {
		t.Fatalf("state after deadline drain = %s", got.State)
	}
}

// TestWaitLongPoll: Wait parks until the terminal transition instead
// of busy-polling, and times out to the current snapshot.
func TestWaitLongPoll(t *testing.T) {
	q, _ := newTestQueue(t, Config{Workers: 1})

	hog, err := q.Submit(Request{Job: slowJob("hog")})
	if err != nil {
		t.Fatal(err)
	}
	// Short wait on a busy job: returns non-terminal after the window.
	snap, err := q.Wait(context.Background(), hog.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State.Terminal() {
		t.Fatalf("short wait returned terminal state %s", snap.State)
	}
	if _, err := q.Cancel(hog.ID); err != nil {
		t.Fatal(err)
	}
	snap, err = q.Wait(context.Background(), hog.ID, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateCancelled {
		t.Fatalf("long wait state = %s", snap.State)
	}
	if _, err := q.Wait(context.Background(), "job-nope", time.Millisecond); !errors.Is(err, ErrNotFound) {
		t.Fatalf("wait on unknown job: %v", err)
	}
}

// TestListStatsConcurrent hammers submit/list/stats/cancel/get from
// many goroutines — the -race run of this test is the queue's
// thread-safety gate.
func TestListStatsConcurrent(t *testing.T) {
	q, _ := newTestQueue(t, Config{Workers: 4, QueueDepth: 4096})

	const perWorker = 8
	var wg sync.WaitGroup
	ids := make(chan string, 6*perWorker)
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				snap, err := q.Submit(Request{Job: fastJob(fmt.Sprintf("c%d-%d", w, i))})
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				ids <- snap.ID
				q.List()
				q.Stats()
				if i%3 == 0 {
					_, _ = q.Cancel(snap.ID)
				}
				_, _ = q.Get(snap.ID)
			}
		}(w)
	}
	wg.Wait()
	close(ids)

	for id := range ids {
		deadline := time.Now().Add(60 * time.Second)
		for {
			snap, err := q.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			if snap.State.Terminal() {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in %s", id, snap.State)
			}
			time.Sleep(time.Millisecond)
		}
	}
	st := q.Stats()
	if st.Submitted != 48 || st.Done+st.Failed+st.Cancelled != 48 {
		t.Fatalf("stats = %+v", st)
	}
	if got := len(q.List()); got != 48 {
		t.Fatalf("list returned %d jobs, want 48", got)
	}
}
