package jobqueue

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/joblog"
	"repro/internal/qasm"
	"repro/internal/workloads"
)

// newDurableQueue opens a queue with a job log in dir and tears it
// down with the engine.
func newDurableQueue(t *testing.T, cfg Config) (*Queue, *batch.Engine) {
	t.Helper()
	eng := batch.NewEngine(batch.Config{Workers: 2})
	t.Cleanup(eng.Close)
	q, err := Open(eng, cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = q.Close(ctx)
	})
	return q, eng
}

func durableCfg(dir string) DurabilityConfig {
	// FsyncNever keeps the unit tests off the fsync path; the joblog
	// package and the crash smoke cover the sync policies.
	return DurabilityConfig{Dir: dir, Fsync: joblog.FsyncNever}
}

func durableReq(tag string) Request {
	return Request{Job: fastJob(tag), DeviceSpec: "tokyo"}
}

func TestPersistRoundTrip(t *testing.T) {
	noise := &arch.NoiseModel{
		Default:   0.01,
		EdgeError: map[arch.Edge]float64{arch.NewEdge(0, 1): 0.05, arch.NewEdge(1, 6): 0.002},
	}
	req := Request{
		Job: batch.Job{
			Circuit: workloads.GHZ(5),
			Device:  arch.IBMQ20Tokyo(),
			Options: core.Options{
				Heuristic: core.HeuristicLookahead, Seed: 7, Trials: 2,
				UseBridge: true, Noise: noise, MaxEdgeError: 0.4,
				ExtendedSetSize: 10, ExtendedSetWeight: 0.3,
			},
			Trials:         3,
			Route:          "greedy",
			Passes:         []string{"peephole", "verify"},
			Tag:            "round-trip",
			UseCalibration: true,
		},
		Webhook:    "http://example.invalid/hook",
		DeviceSpec: "tokyo",
	}
	payload, err := encodeRequest(req)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, err := decodeRequest(payload, nil)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got, want := qasm.Format(dec.Job.Circuit), qasm.Format(req.Job.Circuit); got != want {
		t.Fatalf("circuit did not round-trip:\n got %q\nwant %q", got, want)
	}
	if dec.Job.Circuit.Name() != req.Job.Circuit.Name() {
		t.Fatalf("name %q, want %q", dec.Job.Circuit.Name(), req.Job.Circuit.Name())
	}
	if dec.Job.Device.NumQubits() != 20 {
		t.Fatalf("device has %d qubits, want tokyo's 20", dec.Job.Device.NumQubits())
	}
	if dec.DeviceSpec != "tokyo" || dec.Webhook != req.Webhook {
		t.Fatalf("spec/webhook: %q %q", dec.DeviceSpec, dec.Webhook)
	}
	if dec.Job.Trials != 3 || dec.Job.Route != "greedy" || dec.Job.Tag != "round-trip" ||
		!dec.Job.UseCalibration || len(dec.Job.Passes) != 2 {
		t.Fatalf("job fields did not round-trip: %+v", dec.Job)
	}
	o := dec.Job.Options
	if o.Heuristic != core.HeuristicLookahead || o.Seed != 7 || o.Trials != 2 ||
		!o.UseBridge || o.MaxEdgeError != 0.4 || o.ExtendedSetSize != 10 || o.ExtendedSetWeight != 0.3 {
		t.Fatalf("options did not round-trip: %+v", o)
	}
	if o.Noise == nil || o.Noise.Default != 0.01 ||
		o.Noise.EdgeError[arch.NewEdge(0, 1)] != 0.05 ||
		o.Noise.EdgeError[arch.NewEdge(1, 6)] != 0.002 {
		t.Fatalf("noise did not round-trip: %+v", o.Noise)
	}

	if _, err := encodeRequest(Request{Job: fastJob("nospec")}); err == nil ||
		!strings.Contains(err.Error(), "DeviceSpec") {
		t.Fatalf("encode without DeviceSpec = %v, want DeviceSpec error", err)
	}
}

// synthCrashLog writes a job log by hand — the residue of a process
// that was SIGKILLed with work in flight.
func synthCrashLog(t *testing.T, dir string, recs []joblog.Record) {
	t.Helper()
	l, _, err := joblog.Open(dir, joblog.Config{Fsync: joblog.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func mustPayload(t *testing.T, req Request) []byte {
	t.Helper()
	p, err := encodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestReplayOnBoot(t *testing.T) {
	dir := t.TempDir()
	synthCrashLog(t, dir, []joblog.Record{
		{Kind: joblog.KindAccepted, Seq: 1, Time: 100, ID: "job-crash-1", Payload: mustPayload(t, durableReq("one"))},
		{Kind: joblog.KindAccepted, Seq: 2, Time: 200, ID: "job-crash-2", Payload: mustPayload(t, durableReq("two"))},
		{Kind: joblog.KindStarted, Seq: 1, Time: 300, ID: "job-crash-1"},
		{Kind: joblog.KindAccepted, Seq: 3, Time: 400, ID: "job-crash-3", Payload: mustPayload(t, durableReq("three"))},
		// Job 4 finished before the crash: replay must leave it dead.
		{Kind: joblog.KindAccepted, Seq: 4, Time: 500, ID: "job-crash-4", Payload: mustPayload(t, durableReq("four"))},
		{Kind: joblog.KindStarted, Seq: 4, Time: 600, ID: "job-crash-4"},
		{Kind: joblog.KindFinished, Seq: 4, Time: 700, ID: "job-crash-4", State: "done"},
	})

	q, eng := newDurableQueue(t, Config{Workers: 1, Durable: durableCfg(dir)})
	st := q.Stats()
	if st.Recovery == nil {
		t.Fatal("durable queue has no recovery stats")
	}
	if st.Recovery.Replayed != 3 || st.Recovery.Queued != 2 || st.Recovery.Running != 1 || st.Recovery.Dropped != 0 {
		t.Fatalf("recovery = %+v", st.Recovery)
	}
	if _, err := q.Get("job-crash-4"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("terminal job resurrected: %v", err)
	}
	// All three replayed jobs — original IDs intact — run to done.
	for _, id := range []string{"job-crash-1", "job-crash-2", "job-crash-3"} {
		snap := waitState(t, q, id, StateDone)
		if snap.Result == nil {
			t.Fatalf("%s: done without result", id)
		}
	}
	// Replayed compilation is byte-identical to a fresh submission of
	// the same job (determinism is what makes re-running safe).
	fresh := <-eng.SubmitContext(context.Background(), durableReq("one").Job)
	if fresh.Err != nil {
		t.Fatal(fresh.Err)
	}
	got, _ := q.Get("job-crash-1")
	if qasm.Format(got.Result.Final) != qasm.Format(fresh.Final) {
		t.Fatal("replayed result differs from fresh compilation")
	}
	// New submissions continue the persisted sequence: no ID collision.
	snap, err := q.Submit(durableReq("post-recovery"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(snap.ID, "job-5-") {
		t.Fatalf("post-recovery ID %q, want seq 5 (log ended at 4)", snap.ID)
	}
	waitState(t, q, snap.ID, StateDone)
}

func TestCleanRestartReplaysNothing(t *testing.T) {
	dir := t.TempDir()
	eng := batch.NewEngine(batch.Config{Workers: 2})
	defer eng.Close()
	q, err := Open(eng, Config{Workers: 1, Durable: durableCfg(dir)})
	if err != nil {
		t.Fatal(err)
	}
	for _, tag := range []string{"a", "b"} {
		snap, err := q.Submit(durableReq(tag))
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, q, snap.ID, StateDone)
	}
	if err := q.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	q2, _ := newDurableQueue(t, Config{Workers: 1, Durable: durableCfg(dir)})
	st := q2.Stats()
	if st.Recovery.Replayed != 0 || st.Recovery.Dropped != 0 {
		t.Fatalf("clean restart recovered %+v", st.Recovery)
	}
	if st.Log == nil || st.Log.Records != 6 {
		t.Fatalf("log stats = %+v, want 6 records (2 jobs x 3 transitions)", st.Log)
	}
}

func TestReplayDropsUndecodablePayload(t *testing.T) {
	dir := t.TempDir()
	synthCrashLog(t, dir, []joblog.Record{
		{Kind: joblog.KindAccepted, Seq: 1, Time: 100, ID: "job-bad", Payload: []byte("corrupted beyond json")},
		{Kind: joblog.KindAccepted, Seq: 2, Time: 200, ID: "job-good", Payload: mustPayload(t, durableReq("good"))},
	})
	eng := batch.NewEngine(batch.Config{Workers: 2})
	defer eng.Close()
	q, err := Open(eng, Config{Workers: 1, Durable: durableCfg(dir)})
	if err != nil {
		t.Fatal(err)
	}
	st := q.Stats()
	if st.Recovery.Replayed != 2 || st.Recovery.Dropped != 1 || st.Recovery.Queued != 1 {
		t.Fatalf("recovery = %+v", st.Recovery)
	}
	// The dropped job is retained as failed so pollers learn its fate.
	snap, err := q.Get("job-bad")
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateFailed || !strings.Contains(snap.Err, "replay") {
		t.Fatalf("dropped job = %s (%q)", snap.State, snap.Err)
	}
	waitState(t, q, "job-good", StateDone)
	if err := q.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The drop was re-terminated in the log: the next boot is clean.
	q2, _ := newDurableQueue(t, Config{Workers: 1, Durable: durableCfg(dir)})
	if st := q2.Stats(); st.Recovery.Replayed != 0 || st.Recovery.Dropped != 0 {
		t.Fatalf("second boot recovered %+v", st.Recovery)
	}
}

func TestDurableSubmitRequiresDeviceSpec(t *testing.T) {
	q, _ := newDurableQueue(t, Config{Workers: 1, Durable: durableCfg(t.TempDir())})
	if _, err := q.Submit(Request{Job: fastJob("nospec")}); err == nil ||
		!strings.Contains(err.Error(), "DeviceSpec") {
		t.Fatalf("Submit without spec = %v", err)
	}
	if st := q.Stats(); st.Submitted != 0 || st.Held != 0 {
		t.Fatalf("failed submit leaked state: %+v", st)
	}
}

func TestDurableSubmitAcceptAppendFailure(t *testing.T) {
	inj := faults.NewInjector().FailAt(faults.OpWrite, 1)
	cfg := durableCfg(t.TempDir())
	cfg.Wrap = func(f joblog.File) joblog.File { return faults.NewFile(f, inj) }
	q, _ := newDurableQueue(t, Config{Workers: 1, Durable: cfg})

	// The first durable write is this submit's accepted record; its
	// failure must fail the submit — an unlogged job would silently
	// vanish on replay.
	if _, err := q.Submit(durableReq("doomed")); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("Submit under failing append = %v, want ErrInjected", err)
	}
	st := q.Stats()
	if st.Submitted != 0 || st.Held != 0 || st.LogErrors != 1 {
		t.Fatalf("after failed accept: %+v", st)
	}
	// The queue is not poisoned: the next submit lands and completes.
	snap, err := q.Submit(durableReq("survivor"))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, snap.ID, StateDone)
}

func TestCompactionEndToEnd(t *testing.T) {
	dir := t.TempDir()
	cfg := durableCfg(dir)
	cfg.CompactMinRecords = 6
	cfg.CompactFactor = 2
	eng := batch.NewEngine(batch.Config{Workers: 2})
	defer eng.Close()
	q, err := Open(eng, Config{Workers: 1, Durable: cfg})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		snap, err := q.Submit(durableReq("compact"))
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, q, snap.ID, StateDone)
	}
	st := q.Stats()
	if st.Log == nil || st.Log.Compactions < 1 {
		t.Fatalf("no compaction after 4 jobs x 3 records (min 6, factor 2): %+v", st.Log)
	}
	// Every held job is terminal, so the live set is empty and the
	// compacted log is (near-)empty — far below the 12 appends made.
	if st.Log.Records >= 12 {
		t.Fatalf("log still holds %d records", st.Log.Records)
	}
	if err := q.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	q2, _ := newDurableQueue(t, Config{Workers: 1, Durable: durableCfg(dir)})
	if st := q2.Stats(); st.Recovery.Replayed != 0 {
		t.Fatalf("compacted log replayed %+v", st.Recovery)
	}
}

func TestPanicIsolation(t *testing.T) {
	faults.RegisterPanicRouter()
	q, _ := newTestQueue(t, Config{Workers: 1})
	snap, err := q.Submit(Request{Job: batch.Job{
		Circuit: workloads.GHZ(6), Device: arch.IBMQ20Tokyo(), Route: "panic",
	}})
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, q, snap.ID, StateFailed)
	if !strings.Contains(got.Err, "panic") {
		t.Fatalf("panicking job error %q does not mention the panic", got.Err)
	}
	if !strings.Contains(got.Err, "goroutine") {
		t.Fatalf("panicking job error carries no stack:\n%s", got.Err)
	}
	// One poisoned job must not take the worker (or the process) down.
	after, err := q.Submit(Request{Job: fastJob("after-panic")})
	if err != nil {
		t.Fatal(err)
	}
	if s := waitState(t, q, after.ID, StateDone); s.Result == nil {
		t.Fatal("queue did not keep serving after a panicking job")
	}
}

func TestWebhookPermanent4xxNotRetried(t *testing.T) {
	ws := faults.NewWebhookServer(faults.StepNotFound)
	defer ws.Close()
	q, _ := newTestQueue(t, Config{
		Workers: 1,
		Webhook: WebhookConfig{MaxAttempts: 5, Backoff: time.Millisecond},
	})
	snap, err := q.Submit(Request{Job: fastJob("perm"), Webhook: ws.URL()})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, snap.ID, StateDone)
	got := waitWebhook(t, q, snap.ID, 1)
	if got.Webhook.Delivered || got.Webhook.Attempts != 1 ||
		!strings.Contains(got.Webhook.LastError, "permanent") {
		t.Fatalf("webhook status = %+v", got.Webhook)
	}
	deadline := time.Now().Add(10 * time.Second)
	for q.Stats().WebhooksFailed != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("stats = %+v", q.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if ws.Attempts() != 1 {
		t.Fatalf("404 was retried: %d attempts", ws.Attempts())
	}
}

func TestWebhookRetryable4xx(t *testing.T) {
	// 408 and 429 are the 4xx exceptions: the condition is transient.
	ws := faults.NewWebhookServer(
		faults.WebhookStep{Status: 408}, faults.StepTooMany, faults.StepOK)
	defer ws.Close()
	q, _ := newTestQueue(t, Config{
		Workers: 1,
		Webhook: WebhookConfig{MaxAttempts: 5, Backoff: time.Millisecond},
	})
	snap, err := q.Submit(Request{Job: fastJob("transient"), Webhook: ws.URL()})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, snap.ID, StateDone)
	got := waitWebhook(t, q, snap.ID, 3)
	if !got.Webhook.Delivered || got.Webhook.Attempts != 3 {
		t.Fatalf("webhook status = %+v", got.Webhook)
	}
}

func TestRetryDelayDeterministicAndBounded(t *testing.T) {
	backoff := 400 * time.Millisecond
	d1 := retryDelay(backoff, "job-7-abc", 2)
	d2 := retryDelay(backoff, "job-7-abc", 2)
	if d1 != d2 {
		t.Fatalf("retryDelay not deterministic: %v vs %v", d1, d2)
	}
	for attempt := 2; attempt <= 6; attempt++ {
		for _, id := range []string{"job-1-x", "job-2-y", "job-3-z"} {
			d := retryDelay(backoff, id, attempt)
			if d < backoff/2 || d >= backoff {
				t.Fatalf("retryDelay(%v, %q, %d) = %v outside [%v, %v)",
					backoff, id, attempt, d, backoff/2, backoff)
			}
		}
	}
	for status, want := range map[int]bool{
		0: false, 200: false, 400: true, 404: true, 410: true,
		408: false, 429: false, 500: false, 503: false,
	} {
		if got := permanentStatus(status); got != want {
			t.Fatalf("permanentStatus(%d) = %v, want %v", status, got, want)
		}
	}
}
