package jobqueue

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/qasm"
)

// persist.go is the durable wire form of a Request: what the job log
// stores in an accepted record's payload so a replayed job re-submits
// the exact compilation. The circuit travels as OpenQASM text (the
// repo's canonical circuit serialization), the device as its spec
// string (arch.FromSpec vocabulary — Device.Name is a display label
// and does NOT round-trip), and the noise model as an edge list
// (NoiseModel's map keys are structs, which encoding/json cannot use
// as object keys).
//
// Not persisted, by design:
//
//   - Fleet decisions: advisory routing metadata; the chosen device
//     spec is what matters and it IS persisted.
//   - CalVersion: a pinned snapshot version is meaningless across a
//     restart (snapshots are in-memory). UseCalibration replays and
//     re-resolves against the device's current snapshot — the same
//     thing a fresh submission would see.

// persistedJob is the JSON schema of an accepted record's payload.
// Version bumps happen at the joblog record layer (recordVersion), not
// here; unknown fields are ignored on decode, so additive evolution is
// free.
type persistedJob struct {
	QASM    string           `json:"qasm"`
	Name    string           `json:"name,omitempty"` // qasm.Format drops the circuit name
	Device  string           `json:"device"`
	Options persistedOptions `json:"options"`

	Trials         int      `json:"trials,omitempty"`
	Route          string   `json:"route,omitempty"`
	Passes         []string `json:"passes,omitempty"`
	Tag            string   `json:"tag,omitempty"`
	UseCalibration bool     `json:"use_calibration,omitempty"`

	Webhook string `json:"webhook,omitempty"`
}

// persistedOptions mirrors core.Options field for field, with the
// noise model in list form. A mirror (rather than marshalling
// core.Options directly) pins the wire schema: adding a field to
// core.Options cannot silently change what old logs decode to.
type persistedOptions struct {
	Heuristic          uint8           `json:"heuristic,omitempty"`
	ExtendedSetSize    int             `json:"extended_set_size,omitempty"`
	ExtendedSetWeight  float64         `json:"extended_set_weight,omitempty"`
	DecayDelta         float64         `json:"decay_delta,omitempty"`
	DecayResetInterval int             `json:"decay_reset_interval,omitempty"`
	Trials             int             `json:"trials,omitempty"`
	Traversals         int             `json:"traversals,omitempty"`
	Seed               int64           `json:"seed,omitempty"`
	MaxStall           int             `json:"max_stall,omitempty"`
	UseBridge          bool            `json:"use_bridge,omitempty"`
	Noise              *persistedNoise `json:"noise,omitempty"`
	MaxEdgeError       float64         `json:"max_edge_error,omitempty"`
	Scoring            uint8           `json:"scoring,omitempty"`
	ExhaustiveScoring  bool            `json:"exhaustive_scoring,omitempty"`
	ParallelTrials     bool            `json:"parallel_trials,omitempty"`
}

// persistedNoise is arch.NoiseModel with the edge map flattened to a
// sorted list (deterministic bytes for identical models).
type persistedNoise struct {
	Default float64          `json:"default,omitempty"`
	Edges   []persistedNoisy `json:"edges,omitempty"`
}

type persistedNoisy struct {
	A     int     `json:"a"`
	B     int     `json:"b"`
	Error float64 `json:"error"`
}

// encodeRequest serializes a Request for the job log. It fails when
// the request cannot survive a restart: a durable queue requires
// Request.DeviceSpec (Device.Name is not re-parseable).
func encodeRequest(req Request) ([]byte, error) {
	if req.DeviceSpec == "" {
		return nil, fmt.Errorf("jobqueue: durable submit needs Request.DeviceSpec (a spec arch.FromSpec can parse; Device.Name is a display label)")
	}
	p := persistedJob{
		QASM:           qasm.Format(req.Job.Circuit),
		Name:           req.Job.Circuit.Name(),
		Device:         req.DeviceSpec,
		Options:        encodeOptions(req.Job.Options),
		Trials:         req.Job.Trials,
		Route:          req.Job.Route,
		Passes:         req.Job.Passes,
		Tag:            req.Job.Tag,
		UseCalibration: req.Job.UseCalibration,
		Webhook:        req.Webhook,
	}
	return json.Marshal(p)
}

// decodeRequest rebuilds a Request from an accepted record's payload.
// device resolves the persisted spec (the daemon passes its memoized
// resolver so replayed jobs share calibratable device instances).
func decodeRequest(payload []byte, device func(spec string) (*arch.Device, error)) (Request, error) {
	var p persistedJob
	if err := json.Unmarshal(payload, &p); err != nil {
		return Request{}, fmt.Errorf("jobqueue: decode job payload: %w", err)
	}
	circ, err := qasm.Parse(p.QASM)
	if err != nil {
		return Request{}, fmt.Errorf("jobqueue: decode job circuit: %w", err)
	}
	if p.Name != "" {
		circ.SetName(p.Name)
	}
	if device == nil {
		device = arch.FromSpec
	}
	dev, err := device(p.Device)
	if err != nil {
		return Request{}, fmt.Errorf("jobqueue: decode job device %q: %w", p.Device, err)
	}
	return Request{
		Job: batch.Job{
			Circuit:        circ,
			Device:         dev,
			Options:        decodeOptions(p.Options),
			Trials:         p.Trials,
			Route:          p.Route,
			Passes:         p.Passes,
			Tag:            p.Tag,
			UseCalibration: p.UseCalibration,
		},
		Webhook:    p.Webhook,
		DeviceSpec: p.Device,
	}, nil
}

func encodeOptions(o core.Options) persistedOptions {
	return persistedOptions{
		Heuristic:          uint8(o.Heuristic),
		ExtendedSetSize:    o.ExtendedSetSize,
		ExtendedSetWeight:  o.ExtendedSetWeight,
		DecayDelta:         o.DecayDelta,
		DecayResetInterval: o.DecayResetInterval,
		Trials:             o.Trials,
		Traversals:         o.Traversals,
		Seed:               o.Seed,
		MaxStall:           o.MaxStall,
		UseBridge:          o.UseBridge,
		Noise:              encodeNoise(o.Noise),
		MaxEdgeError:       o.MaxEdgeError,
		Scoring:            uint8(o.Scoring),
		ExhaustiveScoring:  o.ExhaustiveScoring,
		ParallelTrials:     o.ParallelTrials,
	}
}

func decodeOptions(p persistedOptions) core.Options {
	return core.Options{
		Heuristic:          core.Heuristic(p.Heuristic),
		ExtendedSetSize:    p.ExtendedSetSize,
		ExtendedSetWeight:  p.ExtendedSetWeight,
		DecayDelta:         p.DecayDelta,
		DecayResetInterval: p.DecayResetInterval,
		Trials:             p.Trials,
		Traversals:         p.Traversals,
		Seed:               p.Seed,
		MaxStall:           p.MaxStall,
		UseBridge:          p.UseBridge,
		Noise:              decodeNoise(p.Noise),
		MaxEdgeError:       p.MaxEdgeError,
		Scoring:            core.Scoring(p.Scoring),
		ExhaustiveScoring:  p.ExhaustiveScoring,
		ParallelTrials:     p.ParallelTrials,
	}
}

func encodeNoise(m *arch.NoiseModel) *persistedNoise {
	if m == nil {
		return nil
	}
	out := &persistedNoise{Default: m.Default}
	if len(m.EdgeError) > 0 {
		out.Edges = make([]persistedNoisy, 0, len(m.EdgeError))
		//sabre:nondeterm-ok edge list is fully sorted below
		for e, v := range m.EdgeError {
			out.Edges = append(out.Edges, persistedNoisy{A: e.A, B: e.B, Error: v})
		}
		sort.Slice(out.Edges, func(i, j int) bool {
			if out.Edges[i].A != out.Edges[j].A {
				return out.Edges[i].A < out.Edges[j].A
			}
			return out.Edges[i].B < out.Edges[j].B
		})
	}
	return out
}

func decodeNoise(p *persistedNoise) *arch.NoiseModel {
	if p == nil {
		return nil
	}
	m := &arch.NoiseModel{Default: p.Default}
	if len(p.Edges) > 0 {
		m.EdgeError = make(map[arch.Edge]float64, len(p.Edges))
		for _, e := range p.Edges {
			m.EdgeError[arch.NewEdge(e.A, e.B)] = e.Error
		}
	}
	return m
}
