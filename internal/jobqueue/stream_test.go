package jobqueue

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/qasm"
	"repro/internal/workloads"
)

// chunkCollector is a webhook endpoint that records streamed QASM
// chunks and the terminal JSON delivery.
type chunkCollector struct {
	mu       sync.Mutex
	chunks   map[int][]byte
	terminal []byte
	fail     bool // reject chunk POSTs with 500
}

func (c *chunkCollector) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	body, _ := io.ReadAll(r.Body)
	c.mu.Lock()
	defer c.mu.Unlock()
	if h := r.Header.Get("X-Sabre-Chunk"); h != "" {
		if c.fail {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		n, _ := strconv.Atoi(h)
		if c.chunks == nil {
			c.chunks = make(map[int][]byte)
		}
		c.chunks[n] = append([]byte(nil), body...)
		w.WriteHeader(http.StatusOK)
		return
	}
	c.terminal = append([]byte(nil), body...)
	w.WriteHeader(http.StatusOK)
}

// concat joins the recorded chunks in X-Sabre-Chunk order.
func (c *chunkCollector) concat() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]int, 0, len(c.chunks))
	for id := range c.chunks {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var out bytes.Buffer
	for _, id := range ids {
		out.Write(c.chunks[id])
	}
	return out.Bytes()
}

func streamFixture(t *testing.T) (dev *arch.Device, src string) {
	t.Helper()
	dev = arch.IBMQ20Tokyo()
	circ := workloads.RandomCircuit("jobq-stream", 14, 1200, 0.55, 17)
	var buf bytes.Buffer
	if err := qasm.Write(&buf, circ); err != nil {
		t.Fatal(err)
	}
	return dev, buf.String()
}

// TestSubmitStreamDeliversChunkedProgram: the concatenated webhook
// chunks must be byte-identical to the synchronous streaming path's
// output, and the terminal delivery must carry the chunk count.
func TestSubmitStreamDeliversChunkedProgram(t *testing.T) {
	dev, src := streamFixture(t)
	eng := batch.NewEngine(batch.Config{Workers: 2})
	defer eng.Close()

	col := &chunkCollector{}
	srv := httptest.NewServer(col)
	defer srv.Close()

	q := New(eng, Config{Workers: 1})
	defer q.Close(context.Background())

	opts := core.DefaultOptions()
	sopts := core.StreamOptions{ChunkGates: 256}
	snap, err := q.SubmitStream(Request{
		Job:     batch.Job{Device: dev, Options: opts},
		Webhook: srv.URL,
	}, StreamSpec{QASM: src, Options: sopts})
	if err != nil {
		t.Fatal(err)
	}
	snap, err = q.Wait(context.Background(), snap.ID, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateDone {
		t.Fatalf("stream job state %s (err %q)", snap.State, snap.Err)
	}
	if snap.StreamResult == nil || snap.StreamResult.Stats.GatesOut == 0 {
		t.Fatalf("missing stream result: %+v", snap.StreamResult)
	}
	if snap.Chunks < 2 {
		t.Fatalf("expected multiple chunks, got %d", snap.Chunks)
	}

	// Synchronous oracle: same engine API, same options.
	var want bytes.Buffer
	_, err = eng.CompileQASMStream(context.Background(), bytes.NewReader([]byte(src)),
		batch.StreamJob{Device: dev, Options: opts, Stream: sopts}, &want, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := col.concat()
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("webhook chunk concatenation differs from synchronous stream (%d vs %d bytes)", len(got), want.Len())
	}
	if _, err := qasm.Parse(string(got)); err != nil {
		t.Fatalf("chunk concatenation does not parse: %v", err)
	}

	// Terminal delivery arrives async; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		col.mu.Lock()
		terminal := col.terminal
		col.mu.Unlock()
		if terminal != nil {
			var p map[string]any
			if err := json.Unmarshal(terminal, &p); err != nil {
				t.Fatalf("terminal payload: %v", err)
			}
			if p["state"] != string(StateDone) {
				t.Fatalf("terminal payload state %v", p["state"])
			}
			if int(p["chunks"].(float64)) != snap.Chunks {
				t.Fatalf("terminal payload chunks %v, want %d", p["chunks"], snap.Chunks)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("terminal webhook never delivered")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSubmitStreamChunkFailureFailsJob: a consumer rejecting a chunk
// aborts the stream and fails the job — chunks are ordered and never
// retried.
func TestSubmitStreamChunkFailureFailsJob(t *testing.T) {
	dev, src := streamFixture(t)
	eng := batch.NewEngine(batch.Config{Workers: 1})
	defer eng.Close()
	col := &chunkCollector{fail: true}
	srv := httptest.NewServer(col)
	defer srv.Close()
	q := New(eng, Config{Workers: 1})
	defer q.Close(context.Background())

	snap, err := q.SubmitStream(Request{
		Job:     batch.Job{Device: dev},
		Webhook: srv.URL,
	}, StreamSpec{QASM: src, Options: core.StreamOptions{ChunkGates: 64}})
	if err != nil {
		t.Fatal(err)
	}
	snap, err = q.Wait(context.Background(), snap.ID, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateFailed {
		t.Fatalf("job state %s, want failed", snap.State)
	}
}

func TestSubmitStreamValidation(t *testing.T) {
	dev, src := streamFixture(t)
	eng := batch.NewEngine(batch.Config{Workers: 1})
	defer eng.Close()
	q := New(eng, Config{Workers: 1})
	defer q.Close(context.Background())

	if _, err := q.SubmitStream(Request{Job: batch.Job{Device: dev}}, StreamSpec{QASM: src}); !errors.Is(err, errStreamNeedsWebhook) {
		t.Fatalf("webhook-less stream accepted: %v", err)
	}
	if _, err := q.SubmitStream(Request{Webhook: "http://x"}, StreamSpec{QASM: src}); err == nil {
		t.Fatal("device-less stream accepted")
	}
}

func TestSubmitStreamRejectedByDurableQueue(t *testing.T) {
	dev, src := streamFixture(t)
	eng := batch.NewEngine(batch.Config{Workers: 1})
	defer eng.Close()
	q, err := Open(eng, Config{Workers: 1, Durable: DurabilityConfig{Dir: t.TempDir()}})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close(context.Background())
	_, err = q.SubmitStream(Request{
		Job:     batch.Job{Device: dev},
		Webhook: "http://localhost:1/hook",
	}, StreamSpec{QASM: src})
	if !errors.Is(err, errStreamDurable) {
		t.Fatalf("durable queue accepted a stream job: %v", err)
	}
}

// TestSubmitStreamCancellation cancels the job mid-stream: already
// delivered chunks stay delivered, the job settles as cancelled.
func TestSubmitStreamCancellation(t *testing.T) {
	dev, src := streamFixture(t)
	eng := batch.NewEngine(batch.Config{Workers: 1})
	defer eng.Close()

	q := New(eng, Config{Workers: 1})
	defer q.Close(context.Background())

	idCh := make(chan string, 1)
	var once sync.Once
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		if r.Header.Get("X-Sabre-Chunk") == "0" {
			// First chunk landed: block this delivery until the job ID
			// is known, cancel the job, then acknowledge — by the time
			// the stream resumes, its context is dead.
			once.Do(func() { q.Cancel(<-idCh) })
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	snap, err := q.SubmitStream(Request{
		Job:     batch.Job{Device: dev},
		Webhook: srv.URL,
	}, StreamSpec{QASM: src, Options: core.StreamOptions{ChunkGates: 16}})
	if err != nil {
		t.Fatal(err)
	}
	idCh <- snap.ID

	snap, err = q.Wait(context.Background(), snap.ID, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateCancelled {
		t.Fatalf("job state %s, want cancelled (err %q)", snap.State, snap.Err)
	}
}
