package verify

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
)

func TestIdentityLinear(t *testing.T) {
	lf := NewIdentityLinear(70) // spans two words
	for i := 0; i < 70; i++ {
		for j := 0; j < 70; j++ {
			if lf.Bit(i, j) != (i == j) {
				t.Fatalf("identity bit (%d,%d) wrong", i, j)
			}
		}
	}
}

func TestApplyCNOT(t *testing.T) {
	lf := NewIdentityLinear(3)
	lf.ApplyCNOT(0, 2) // out2 = x2 ^ x0
	if !lf.Bit(2, 0) || !lf.Bit(2, 2) || lf.Bit(2, 1) {
		t.Fatalf("CNOT row wrong:\n%v", lf)
	}
	lf.ApplyCNOT(0, 2) // CNOT self-inverse
	if !lf.Equal(NewIdentityLinear(3)) {
		t.Fatal("CNOT twice != identity")
	}
}

func TestApplySwap(t *testing.T) {
	lf := NewIdentityLinear(3)
	lf.ApplySwap(0, 2)
	if !lf.Bit(0, 2) || !lf.Bit(2, 0) || lf.Bit(0, 0) {
		t.Fatal("swap rows wrong")
	}
}

func TestSwapEqualsThreeCNOTsGF2(t *testing.T) {
	a := NewIdentityLinear(4)
	a.ApplySwap(1, 3)
	b := NewIdentityLinear(4)
	b.ApplyCNOT(1, 3)
	b.ApplyCNOT(3, 1)
	b.ApplyCNOT(1, 3)
	if !a.Equal(b) {
		t.Fatal("SWAP != 3 CNOTs over GF(2)")
	}
}

func TestFromCircuitRejectsNonlinear(t *testing.T) {
	c := circuit.New(2)
	c.Append(circuit.G1(circuit.KindH, 0))
	if _, err := FromCircuit(c); err == nil {
		t.Fatal("H accepted as linear")
	}
	c2 := circuit.New(2)
	c2.Append(circuit.G1(circuit.KindBarrier, 0), circuit.G1(circuit.KindMeasure, 1), circuit.CX(0, 1))
	if _, err := FromCircuit(c2); err != nil {
		t.Fatalf("barrier/measure rejected: %v", err)
	}
}

func TestCheckRoutedIdentityLayouts(t *testing.T) {
	c := circuit.New(3)
	c.Append(circuit.CX(0, 1), circuit.CX(1, 2))
	id := []int{0, 1, 2}
	if err := CheckRouted(c, c.Clone(), id, id); err != nil {
		t.Fatalf("identical circuits flagged: %v", err)
	}
}

func TestCheckRoutedWithSwap(t *testing.T) {
	// Original: CX(0,1). Routed on a line where 0 and 1 start far:
	// initial layout q0->0, q1->2; SWAP(2,1) brings q1 to wire 1, then
	// CX(0,1). Final layout: q0->0, q1->1, q2->2.
	orig := circuit.New(3)
	orig.Append(circuit.CX(0, 1))
	routed := circuit.New(3)
	routed.Append(circuit.Swap(2, 1), circuit.CX(0, 1))
	init := []int{0, 2, 1} // q0->0, q1->2, q2->1
	final := []int{0, 1, 2}
	if err := CheckRouted(orig, routed, init, final); err != nil {
		t.Fatalf("valid routing rejected: %v", err)
	}
	// Wrong final layout must be rejected.
	if err := CheckRouted(orig, routed, init, init); err == nil {
		t.Fatal("wrong final layout accepted")
	}
}

func TestCheckRoutedDetectsWrongGate(t *testing.T) {
	orig := circuit.New(2)
	orig.Append(circuit.CX(0, 1))
	routed := circuit.New(2)
	routed.Append(circuit.CX(1, 0)) // reversed direction: different function
	id := []int{0, 1}
	if err := CheckRouted(orig, routed, id, id); err == nil {
		t.Fatal("wrong routed circuit accepted")
	}
}

func TestCheckRoutedWidening(t *testing.T) {
	orig := circuit.New(2)
	orig.Append(circuit.CX(0, 1))
	routed := circuit.New(4)
	routed.Append(circuit.CX(2, 3))
	init := []int{2, 3, 0, 1} // q0->2, q1->3
	final := []int{2, 3, 0, 1}
	if err := CheckRouted(orig, routed, init, final); err != nil {
		t.Fatalf("widened routing rejected: %v", err)
	}
}

// Property: a random CNOT circuit conjugated by random layouts via
// explicit SWAP networks verifies, and corrupting one gate breaks it.
func TestCheckRoutedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(5)
		orig := circuit.New(n)
		for i := 0; i < 15; i++ {
			a, b := twoDistinct(rng, n)
			orig.Append(circuit.CX(a, b))
		}
		// "Route" trivially: identity layouts plus interleaved SWAP pairs
		// that cancel (swap applied twice).
		routed := circuit.New(n)
		for _, g := range orig.Gates() {
			a, b := twoDistinct(rng, n)
			routed.Append(circuit.Swap(a, b), circuit.Swap(a, b), g)
		}
		id := make([]int, n)
		for i := range id {
			id[i] = i
		}
		if CheckRouted(orig, routed, id, id) != nil {
			return false
		}
		// Corrupt: drop last gate (a CX) — must fail.
		bad := circuit.New(n)
		gs := routed.Gates()
		bad.Append(gs[:len(gs)-1]...)
		return CheckRouted(orig, bad, id, id) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: GF(2) checker and state-vector checker agree on random
// routed instances.
func TestGF2AgreesWithSimulator(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(3)
		orig := circuit.New(n)
		for i := 0; i < 10; i++ {
			a, b := twoDistinct(rng, n)
			orig.Append(circuit.CX(a, b))
		}
		// Build a routed version: random initial layout realized by
		// relabelling gates, with tracking of the layout through random
		// inserted SWAPs.
		l2p := rng.Perm(n)
		cur := append([]int(nil), l2p...)
		routed := circuit.New(n)
		for _, g := range orig.Gates() {
			if rng.Intn(2) == 0 {
				a, b := twoDistinct(rng, n)
				routed.Append(circuit.Swap(a, b))
				// Track: physical wires a,b exchange logical contents.
				for q := range cur {
					if cur[q] == a {
						cur[q] = b
					} else if cur[q] == b {
						cur[q] = a
					}
				}
			}
			routed.Append(circuit.CX(cur[g.Q0], cur[g.Q1]))
		}
		gf2 := CheckRouted(orig, routed, l2p, cur) == nil
		simOK := EquivalentStates(orig, routed, l2p, cur, 2, rng) == nil
		return gf2 == simOK && gf2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestEquivalentStatesCatchesNonlinearDifferences(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	orig := circuit.New(2)
	orig.Append(circuit.G1(circuit.KindH, 0), circuit.CX(0, 1))
	// Equivalent routed version with explicit SWAP and relabelled gates.
	routed := circuit.New(2)
	routed.Append(circuit.Swap(0, 1), circuit.G1(circuit.KindH, 1), circuit.CX(1, 0))
	init := []int{1, 0} // q0->1 after... initial layout q0->1, q1->0; swap makes q0->0
	// After Swap(0,1): q0 on wire... track: init q0@1,q1@0; swap exchanges
	// wires 0,1 so q0@0, q1@1. Then H on wire 1 = H on q1? Original has H
	// on q0. So this should FAIL.
	if err := EquivalentStates(orig, routed, init, []int{0, 1}, 3, rng); err == nil {
		t.Fatal("wrong circuit accepted")
	}
	// Correct version: H on wire 0 (which hosts q0 after the swap).
	routed2 := circuit.New(2)
	routed2.Append(circuit.Swap(0, 1), circuit.G1(circuit.KindH, 0), circuit.CX(0, 1))
	if err := EquivalentStates(orig, routed2, init, []int{0, 1}, 3, rng); err != nil {
		t.Fatalf("correct circuit rejected: %v", err)
	}
}

// Property: row/column permutation round-trips.
func TestPermutationProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		lf := NewIdentityLinear(n)
		for i := 0; i < 20; i++ {
			a, b := twoDistinct(rng, n)
			lf.ApplyCNOT(a, b)
		}
		perm := rng.Perm(n)
		inv := make([]int, n)
		for i, p := range perm {
			inv[p] = i
		}
		// PermuteRows then inverse-permute restores the original.
		if !lf.PermuteRows(perm).PermuteRows(inv).Equal(lf) {
			return false
		}
		// Identity permutation is a no-op for both.
		id := make([]int, n)
		for i := range id {
			id[i] = i
		}
		return lf.PermuteRows(id).Equal(lf) && lf.PermuteCols(id).Equal(lf)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLinearFunctionClone(t *testing.T) {
	lf := NewIdentityLinear(3)
	c := lf.Clone()
	c.ApplyCNOT(0, 1)
	if !lf.Equal(NewIdentityLinear(3)) {
		t.Fatal("Clone shares storage")
	}
	if lf.String() == "" || lf.N() != 3 {
		t.Fatal("accessors broken")
	}
}

func TestHardwareCompliant(t *testing.T) {
	c := circuit.New(3)
	c.Append(circuit.CX(0, 1), circuit.G1(circuit.KindH, 2), circuit.CX(0, 2))
	line := func(a, b int) bool { d := a - b; return d == 1 || d == -1 }
	if err := HardwareCompliant(c, line); err == nil {
		t.Fatal("CX(0,2) on a line accepted")
	}
	c2 := circuit.New(3)
	c2.Append(circuit.CX(0, 1), circuit.CX(2, 1))
	if err := HardwareCompliant(c2, line); err != nil {
		t.Fatalf("compliant circuit rejected: %v", err)
	}
}

func TestEquivalentStatesTooWide(t *testing.T) {
	c := circuit.New(MaxSimQubits + 1)
	if err := EquivalentStates(c, c, nil, nil, 1, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("oversized simulation accepted")
	}
}

func twoDistinct(rng *rand.Rand, n int) (int, int) {
	a := rng.Intn(n)
	b := rng.Intn(n - 1)
	if b >= a {
		b++
	}
	return a, b
}
