// Package verify checks that a routed (hardware-compliant) circuit is
// functionally equivalent to the original circuit under its initial and
// final layouts.
//
// Two checkers are provided:
//
//   - LinearFunction: CNOT and SWAP gates implement linear reversible
//     functions over GF(2); a circuit of such gates is an invertible
//     boolean matrix, so equivalence is exact and scales to any size.
//     This is the workhorse for validating routers on the paper's
//     CNOT-structured benchmarks.
//   - Equivalent (equiv.go): full state-vector comparison for circuits
//     with arbitrary gates, limited to small qubit counts.
package verify

import (
	"fmt"

	"repro/internal/circuit"
)

// LinearFunction is an n×n invertible matrix over GF(2), row i giving
// the output bit i as a parity of input bits. Rows are stored as
// bitsets ([]uint64) so matrices stay compact up to hundreds of qubits.
type LinearFunction struct {
	n    int
	rows [][]uint64
}

// NewIdentityLinear returns the identity function on n bits.
func NewIdentityLinear(n int) *LinearFunction {
	words := (n + 63) / 64
	lf := &LinearFunction{n: n, rows: make([][]uint64, n)}
	for i := 0; i < n; i++ {
		lf.rows[i] = make([]uint64, words)
		lf.rows[i][i/64] = 1 << uint(i%64)
	}
	return lf
}

// N returns the bit width.
func (lf *LinearFunction) N() int { return lf.n }

// Bit returns entry (row, col).
func (lf *LinearFunction) Bit(row, col int) bool {
	return lf.rows[row][col/64]&(1<<uint(col%64)) != 0
}

// ApplyCNOT composes the function with CNOT(control, target):
// x[target] ^= x[control], i.e. row[target] ^= row[control].
func (lf *LinearFunction) ApplyCNOT(control, target int) {
	rc, rt := lf.rows[control], lf.rows[target]
	for w := range rt {
		rt[w] ^= rc[w]
	}
}

// ApplySwap composes with SWAP(a, b): exchange rows a and b.
func (lf *LinearFunction) ApplySwap(a, b int) {
	lf.rows[a], lf.rows[b] = lf.rows[b], lf.rows[a]
}

// ApplyGate composes with one gate. Only linear gates are accepted:
// CX and Swap. Barrier and measure are ignored (they do not change the
// tracked classical function). Any other gate returns an error.
func (lf *LinearFunction) ApplyGate(g circuit.Gate) error {
	switch g.Kind {
	case circuit.KindCX:
		lf.ApplyCNOT(g.Q0, g.Q1)
	case circuit.KindSwap:
		lf.ApplySwap(g.Q0, g.Q1)
	case circuit.KindBarrier, circuit.KindMeasure:
	default:
		return fmt.Errorf("verify: gate %v is not linear over GF(2)", g.Kind)
	}
	return nil
}

// FromCircuit builds the linear function of a CNOT/SWAP circuit.
func FromCircuit(c *circuit.Circuit) (*LinearFunction, error) {
	lf := NewIdentityLinear(c.NumQubits())
	for _, g := range c.Gates() {
		if err := lf.ApplyGate(g); err != nil {
			return nil, err
		}
	}
	return lf, nil
}

// Equal reports whether two linear functions are identical.
func (lf *LinearFunction) Equal(o *LinearFunction) bool {
	if lf.n != o.n {
		return false
	}
	for i := range lf.rows {
		for w := range lf.rows[i] {
			if lf.rows[i][w] != o.rows[i][w] {
				return false
			}
		}
	}
	return true
}

// Clone returns a deep copy.
func (lf *LinearFunction) Clone() *LinearFunction {
	c := &LinearFunction{n: lf.n, rows: make([][]uint64, lf.n)}
	for i := range lf.rows {
		c.rows[i] = make([]uint64, len(lf.rows[i]))
		copy(c.rows[i], lf.rows[i])
	}
	return c
}

// PermuteRows returns P∘lf where P relabels output wire i to perm[i].
// Row r of the result is row of the input that lands on wire r.
func (lf *LinearFunction) PermuteRows(perm []int) *LinearFunction {
	if len(perm) != lf.n {
		panic("verify: permutation size mismatch")
	}
	out := &LinearFunction{n: lf.n, rows: make([][]uint64, lf.n)}
	for i, p := range perm {
		row := make([]uint64, len(lf.rows[i]))
		copy(row, lf.rows[i])
		out.rows[p] = row
	}
	return out
}

// PermuteCols returns lf∘P⁻¹ where P relabels input wire i to perm[i]:
// column perm[j] of the result equals column j of the input.
func (lf *LinearFunction) PermuteCols(perm []int) *LinearFunction {
	if len(perm) != lf.n {
		panic("verify: permutation size mismatch")
	}
	words := (lf.n + 63) / 64
	out := &LinearFunction{n: lf.n, rows: make([][]uint64, lf.n)}
	for i := 0; i < lf.n; i++ {
		out.rows[i] = make([]uint64, words)
	}
	for i := 0; i < lf.n; i++ {
		for j := 0; j < lf.n; j++ {
			if lf.Bit(i, j) {
				p := perm[j]
				out.rows[i][p/64] |= 1 << uint(p%64)
			}
		}
	}
	return out
}

// CheckRouted verifies that a routed CNOT/SWAP circuit equals the
// original under the given layouts: for every input x, placing logical
// values onto physical wires via initLayout (wire π₀(q) carries q),
// running the routed circuit, and reading wire π_f(q) as logical q must
// reproduce original(x). Algebraically:
//
//	P_f⁻¹ · A_routed · P₀ == A_orig
//
// where (P₀ x)[π₀(q)] = x[q]. Returns nil when equivalent.
func CheckRouted(orig, routed *circuit.Circuit, initL2P, finalL2P []int) error {
	if routed.NumQubits() < orig.NumQubits() {
		return fmt.Errorf("verify: routed circuit narrower (%d) than original (%d)", routed.NumQubits(), orig.NumQubits())
	}
	n := routed.NumQubits()
	aOrig, err := FromCircuit(orig.Widen(n))
	if err != nil {
		return fmt.Errorf("verify: original circuit: %w", err)
	}
	aRouted, err := FromCircuit(routed)
	if err != nil {
		return fmt.Errorf("verify: routed circuit: %w", err)
	}
	if len(initL2P) != n || len(finalL2P) != n {
		return fmt.Errorf("verify: layout sizes (%d, %d) do not match width %d", len(initL2P), len(finalL2P), n)
	}
	// Conjugate: logical-frame function of the routed circuit is
	// P_f⁻¹ · A_routed · P₀. Column relabel by π₀ realizes ·P₀ (input
	// logical q enters on wire π₀(q) ⇒ column π₀(q) must align with
	// logical column q). Row relabel maps physical output row π_f(q)
	// back to logical row q.
	inv := make([]int, n)
	for q, p := range finalL2P {
		inv[p] = q
	}
	logical := aRouted.PermuteRows(inv).permuteColsInverse(initL2P)
	if !logical.Equal(aOrig) {
		return fmt.Errorf("verify: routed circuit is not equivalent to the original under the given layouts")
	}
	return nil
}

// permuteColsInverse relabels input wires: column p of the receiver is
// column q of the result where l2p[q] = p. I.e. result.Bit(i, q) ==
// lf.Bit(i, l2p[q]).
func (lf *LinearFunction) permuteColsInverse(l2p []int) *LinearFunction {
	words := (lf.n + 63) / 64
	out := &LinearFunction{n: lf.n, rows: make([][]uint64, lf.n)}
	for i := 0; i < lf.n; i++ {
		out.rows[i] = make([]uint64, words)
		for q := 0; q < lf.n; q++ {
			if lf.Bit(i, l2p[q]) {
				out.rows[i][q/64] |= 1 << uint(q%64)
			}
		}
	}
	return out
}

// String renders the matrix for debugging (rows top to bottom).
func (lf *LinearFunction) String() string {
	buf := make([]byte, 0, lf.n*(lf.n+1))
	for i := 0; i < lf.n; i++ {
		for j := 0; j < lf.n; j++ {
			if lf.Bit(i, j) {
				buf = append(buf, '1')
			} else {
				buf = append(buf, '0')
			}
		}
		buf = append(buf, '\n')
	}
	return string(buf)
}
