package verify

import (
	"fmt"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/sim"
)

// MaxSimQubits bounds the width of state-vector equivalence checks.
const MaxSimQubits = 16

// EquivalentStates verifies by simulation that the routed circuit
// implements the original circuit under the given layouts. For each of
// `trials` random states |ψ⟩ it checks that
//
//	Permute(π_f)⁻¹ · U_routed · Permute(π₀) |ψ⟩  ==  U_orig |ψ⟩
//
// up to global phase. Random-state agreement over several trials makes
// a false positive vanishingly unlikely. Only usable up to
// MaxSimQubits; CheckRouted covers arbitrary sizes for linear circuits.
func EquivalentStates(orig, routed *circuit.Circuit, initL2P, finalL2P []int, trials int, rng *rand.Rand) error {
	if routed.NumQubits() > MaxSimQubits {
		return fmt.Errorf("verify: %d qubits exceeds simulation limit %d", routed.NumQubits(), MaxSimQubits)
	}
	if routed.NumQubits() < orig.NumQubits() {
		return fmt.Errorf("verify: routed circuit narrower than original")
	}
	n := routed.NumQubits()
	wide := orig.Widen(n)
	if len(initL2P) != n || len(finalL2P) != n {
		return fmt.Errorf("verify: layout sizes do not match width %d", n)
	}
	if trials < 1 {
		trials = 1
	}
	for trial := 0; trial < trials; trial++ {
		psi := sim.NewRandomState(n, rng)

		want := psi.Clone()
		want.ApplyCircuit(wide)

		// Place logical qubit q on physical wire π₀(q), run, then read
		// logical q from physical wire π_f(q) by permuting back.
		got := psi.PermuteQubits(initL2P)
		got.ApplyCircuit(routed)
		inv := make([]int, n)
		for q, p := range finalL2P {
			inv[p] = q
		}
		got = got.PermuteQubits(inv)

		if !got.EqualUpToGlobalPhase(want, 1e-9) {
			return fmt.Errorf("verify: state mismatch on trial %d (fidelity %.6f)", trial, got.Fidelity(want))
		}
	}
	return nil
}

// HardwareCompliant reports whether every two-qubit gate of c acts on
// a coupled physical qubit pair, per the connectivity oracle. It is the
// final acceptance check a routed circuit must pass (paper §III
// definition: "satisfy all two-qubit constraints").
func HardwareCompliant(c *circuit.Circuit, connected func(a, b int) bool) error {
	for i, g := range c.Gates() {
		if !g.TwoQubit() {
			continue
		}
		if !connected(g.Q0, g.Q1) {
			return fmt.Errorf("verify: gate %d (%v) acts on uncoupled qubits %d,%d", i, g.Kind, g.Q0, g.Q1)
		}
	}
	return nil
}
