package transpile

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func TestLowerEachKindPreservesUnitary(t *testing.T) {
	gates := []circuit.Gate{
		circuit.G1(circuit.KindH, 0),
		circuit.G1(circuit.KindX, 0),
		circuit.G1(circuit.KindY, 1),
		circuit.G1(circuit.KindZ, 0),
		circuit.G1(circuit.KindS, 1),
		circuit.G1(circuit.KindSdg, 0),
		circuit.G1(circuit.KindT, 1),
		circuit.G1(circuit.KindTdg, 0),
		circuit.G1(circuit.KindRX, 0, 0.7),
		circuit.G1(circuit.KindRY, 1, 1.2),
		circuit.G1(circuit.KindRZ, 0, -0.4),
		circuit.CZ(0, 1),
		circuit.Swap(0, 1),
	}
	rng := rand.New(rand.NewSource(1))
	for _, g := range gates {
		c := circuit.New(2)
		c.Append(g)
		lowered := ToIBMBasis(c)
		if !InBasis(lowered) {
			t.Fatalf("%v: lowering left non-basis gates: %v", g, lowered.Gates())
		}
		for trial := 0; trial < 3; trial++ {
			psi := sim.NewRandomState(2, rng)
			a := psi.Clone()
			a.ApplyCircuit(c)
			b := psi.Clone()
			b.ApplyCircuit(lowered)
			if !a.EqualUpToGlobalPhase(b, 1e-9) {
				t.Fatalf("%v: lowering changed semantics (fidelity %g)", g, a.Fidelity(b))
			}
		}
	}
}

func TestBasisGatesPassThrough(t *testing.T) {
	c := circuit.New(2)
	c.Append(
		circuit.G1(circuit.KindU1, 0, 0.1),
		circuit.G1(circuit.KindU2, 0, 0.1, 0.2),
		circuit.G1(circuit.KindU3, 1, 0.1, 0.2, 0.3),
		circuit.CX(0, 1),
		circuit.G1(circuit.KindMeasure, 0),
		circuit.G1(circuit.KindBarrier, 1),
	)
	lowered := ToIBMBasis(c)
	if !lowered.Equal(c) {
		t.Fatal("basis gates were rewritten")
	}
	if !InBasis(c) || Count(c) != 0 {
		t.Fatal("InBasis/Count wrong on pure-basis circuit")
	}
}

func TestCount(t *testing.T) {
	c := circuit.New(2)
	c.Append(circuit.G1(circuit.KindH, 0), circuit.CX(0, 1), circuit.Swap(0, 1))
	if Count(c) != 2 {
		t.Fatalf("Count = %d, want 2", Count(c))
	}
	if InBasis(c) {
		t.Fatal("InBasis wrong")
	}
}

// Property: lowering preserves semantics on random mixed circuits.
func TestToIBMBasisProperty(t *testing.T) {
	f := func(seed int64) bool {
		c := workloads.RandomCircuit("basis", 4, 40, 0.4, seed)
		lowered := ToIBMBasis(c)
		if !InBasis(lowered) {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		psi := sim.NewRandomState(4, rng)
		a := psi.Clone()
		a.ApplyCircuit(c)
		b := psi.Clone()
		b.ApplyCircuit(lowered)
		return a.EqualUpToGlobalPhase(b, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQFTAlreadyInBasis(t *testing.T) {
	// QFT is generated in {H, u1, CX}; lowering only rewrites the Hs.
	c := workloads.QFT(5)
	lowered := ToIBMBasis(c)
	if lowered.NumGates() != c.NumGates() {
		t.Fatalf("QFT lowering changed gate count %d -> %d", c.NumGates(), lowered.NumGates())
	}
}
