// Package transpile lowers circuits to a device's native gate basis.
// The paper's evaluation platform (IBM) natively executes {u1, u2, u3,
// CX} (§II-A: "the elementary gate set directly supported by IBM
// quantum chips"); ToIBMBasis rewrites every other kind into that set
// so routed circuits can be emitted as directly-executable QASM.
//
// All rewrites are exact up to global phase (verified against the
// state-vector simulator in tests).
package transpile

import (
	"fmt"
	"math"

	"repro/internal/circuit"
)

// ToIBMBasis returns a copy of c with every gate expressed in the IBM
// elementary set {u1, u2, u3, CX} (+ measure/barrier, which pass
// through). SWAPs become 3 CNOTs, CZ becomes H-conjugated CX.
func ToIBMBasis(c *circuit.Circuit) *circuit.Circuit {
	out := circuit.NewNamed(c.Name(), c.NumQubits())
	for _, g := range c.Gates() {
		out.Append(lower(g)...)
	}
	return out
}

// InBasis reports whether every gate of c already lies in the IBM set.
func InBasis(c *circuit.Circuit) bool {
	for _, g := range c.Gates() {
		switch g.Kind {
		case circuit.KindU1, circuit.KindU2, circuit.KindU3,
			circuit.KindCX, circuit.KindMeasure, circuit.KindBarrier:
		default:
			return false
		}
	}
	return true
}

// lower rewrites one gate into the IBM basis.
func lower(g circuit.Gate) []circuit.Gate {
	u1 := func(q int, l float64) circuit.Gate { return circuit.G1(circuit.KindU1, q, l) }
	u2 := func(q int, p, l float64) circuit.Gate { return circuit.G1(circuit.KindU2, q, p, l) }
	u3 := func(q int, t, p, l float64) circuit.Gate { return circuit.G1(circuit.KindU3, q, t, p, l) }

	switch g.Kind {
	case circuit.KindU1, circuit.KindU2, circuit.KindU3,
		circuit.KindCX, circuit.KindMeasure, circuit.KindBarrier:
		return []circuit.Gate{g}
	case circuit.KindH:
		return []circuit.Gate{u2(g.Q0, 0, math.Pi)}
	case circuit.KindX:
		return []circuit.Gate{u3(g.Q0, math.Pi, 0, math.Pi)}
	case circuit.KindY:
		return []circuit.Gate{u3(g.Q0, math.Pi, math.Pi/2, math.Pi/2)}
	case circuit.KindZ:
		return []circuit.Gate{u1(g.Q0, math.Pi)}
	case circuit.KindS:
		return []circuit.Gate{u1(g.Q0, math.Pi/2)}
	case circuit.KindSdg:
		return []circuit.Gate{u1(g.Q0, -math.Pi/2)}
	case circuit.KindT:
		return []circuit.Gate{u1(g.Q0, math.Pi/4)}
	case circuit.KindTdg:
		return []circuit.Gate{u1(g.Q0, -math.Pi/4)}
	case circuit.KindRX:
		return []circuit.Gate{u3(g.Q0, g.Params[0], -math.Pi/2, math.Pi/2)}
	case circuit.KindRY:
		return []circuit.Gate{u3(g.Q0, g.Params[0], 0, 0)}
	case circuit.KindRZ:
		// rz(θ) == u1(θ) up to the global phase e^{-iθ/2}.
		return []circuit.Gate{u1(g.Q0, g.Params[0])}
	case circuit.KindCZ:
		return []circuit.Gate{
			u2(g.Q1, 0, math.Pi),
			circuit.CX(g.Q0, g.Q1),
			u2(g.Q1, 0, math.Pi),
		}
	case circuit.KindSwap:
		return []circuit.Gate{
			circuit.CX(g.Q0, g.Q1),
			circuit.CX(g.Q1, g.Q0),
			circuit.CX(g.Q0, g.Q1),
		}
	default:
		panic(fmt.Sprintf("transpile: no lowering for gate kind %v", g.Kind))
	}
}

// Count returns how many gates of c fall outside the IBM basis.
func Count(c *circuit.Circuit) int {
	n := 0
	for _, g := range c.Gates() {
		switch g.Kind {
		case circuit.KindU1, circuit.KindU2, circuit.KindU3,
			circuit.KindCX, circuit.KindMeasure, circuit.KindBarrier:
		default:
			n++
		}
	}
	return n
}
