package hotalloc_test

import (
	"testing"

	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/lint/linttest"
)

func TestHotalloc(t *testing.T) {
	linttest.Run(t, hotalloc.Analyzer, "hotalloc")
}
