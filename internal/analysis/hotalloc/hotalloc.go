// Package hotalloc implements the zero-alloc analyzer for the SWAP
// round: functions annotated //sabre:hotpath (the scoring round and
// everything it calls) must not contain allocation-inducing
// constructs. The dynamic guard (TestScoreRoundZeroAllocs) proves the
// steady state allocates nothing at run time; this analyzer proves it
// at compile time, catching the construct the moment it is written —
// including on paths the probe workload never exercises.
//
// Flagged inside a hotpath function:
//
//   - defer statements (defer records allocate, and a deferred call
//     delays buffer reuse past the round boundary)
//   - closure literals (captured variables escape to the heap)
//   - map and slice composite literals
//   - make and new calls
//   - append, unless in the self-append form `x = append(x, ...)` /
//     `x = append(x[:0], ...)` — the sanctioned reuse idiom for
//     pre-sized scratch buffers, amortized-zero once warm
//   - fmt.* calls (variadic any boxes every operand)
//   - interface boxing: explicit conversion to an interface type,
//     concrete arguments to interface parameters, concrete values
//     assigned or returned as interfaces
//
// Deliberate, amortized allocation sites (grow-once buffer resizing)
// are annotated //sabre:alloc-ok with a reason on the offending line
// or the line above.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/lint"
)

// Analyzer flags allocation-inducing constructs in //sabre:hotpath
// functions.
var Analyzer = &lint.Analyzer{
	Name: "hotalloc",
	Doc: "flags allocation-inducing constructs (append growth, closures, interface " +
		"boxing, fmt, map/slice literals, make/new, defer) in //sabre:hotpath functions; " +
		"deliberate grow-only sites are annotated //sabre:alloc-ok",
	Run: run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !lint.HasDirective(fn.Doc, "hotpath") {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *lint.Pass, fn *ast.FuncDecl) {
	report := func(pos token.Pos, format string, args ...any) {
		if !pass.Allowed(pos, "alloc-ok") {
			pass.Reportf(pos, format, args...)
		}
	}

	var results *types.Tuple
	if sig, ok := pass.TypesInfo.Defs[fn.Name].Type().(*types.Signature); ok {
		results = sig.Results()
	}

	// First pass: find appends in the sanctioned self-append position
	// `x = append(x, ...)` / `x = append(x[:0], ...)` — the reuse idiom
	// for pre-sized scratch buffers, exempt below.
	selfAppend := map[*ast.CallExpr]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != len(asg.Rhs) {
			return true
		}
		for i, rhs := range asg.Rhs {
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isBuiltin(pass, call, "append") && len(call.Args) > 0 {
				if sameRef(pass, baseOf(asg.Lhs[i]), baseOf(call.Args[0])) {
					selfAppend[call] = true
				}
			}
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			report(n.Pos(), "defer in hotpath %s allocates a defer record and delays buffer reuse", fn.Name.Name)

		case *ast.FuncLit:
			report(n.Pos(), "closure literal in hotpath %s: captured variables escape to the heap", fn.Name.Name)
			return false // the literal is the finding; don't double-report its body

		case *ast.CompositeLit:
			tv := pass.TypesInfo.Types[n]
			switch tv.Type.Underlying().(type) {
			case *types.Map:
				report(n.Pos(), "map literal allocates in hotpath %s", fn.Name.Name)
			case *types.Slice:
				report(n.Pos(), "slice literal allocates in hotpath %s", fn.Name.Name)
			}
			return false // elements of a flagged literal need no second finding

		case *ast.AssignStmt:
			if n.Tok == token.ASSIGN {
				for i, rhs := range n.Rhs {
					if len(n.Lhs) == len(n.Rhs) {
						if lt, ok := pass.TypesInfo.Types[n.Lhs[i]]; ok {
							checkBox(pass, report, fn, rhs, lt.Type, "assigned")
						}
					}
				}
			}

		case *ast.ValueSpec:
			if n.Type != nil {
				for _, v := range n.Values {
					checkBox(pass, report, fn, v, pass.TypesInfo.Types[n.Type].Type, "declared")
				}
			}

		case *ast.ReturnStmt:
			if results != nil && len(n.Results) == results.Len() {
				for i, v := range n.Results {
					checkBox(pass, report, fn, v, results.At(i).Type(), "returned")
				}
			}

		case *ast.CallExpr:
			checkCall(pass, report, fn, n, selfAppend[n])
		}
		return true
	})
}

func checkCall(pass *lint.Pass, report func(token.Pos, string, ...any), fn *ast.FuncDecl, call *ast.CallExpr, appendExempt bool) {
	// Conversion, not a call: T(x) boxing into an interface type.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && isIface(tv.Type) && !isIfaceOrNil(pass, call.Args[0]) {
			report(call.Pos(), "conversion to interface %s boxes a concrete value in hotpath %s",
				types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)), fn.Name.Name)
		}
		return
	}

	switch {
	case isBuiltin(pass, call, "append"):
		if !appendExempt {
			report(call.Pos(), "append outside the self-append reuse idiom `x = append(x, ...)` may grow a fresh backing array in hotpath %s", fn.Name.Name)
		}
		return
	case isBuiltin(pass, call, "make"):
		report(call.Pos(), "make allocates in hotpath %s; hoist the buffer into the Scratch", fn.Name.Name)
		return
	case isBuiltin(pass, call, "new"):
		report(call.Pos(), "new allocates in hotpath %s; hoist the value into the Scratch", fn.Name.Name)
		return
	}

	if obj := calleeFunc(pass, call); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
		report(call.Pos(), "fmt.%s in hotpath %s allocates (variadic any boxes every operand)", obj.Name(), fn.Name.Name)
		return
	}

	// Concrete arguments landing in interface parameters box.
	sig, ok := pass.TypesInfo.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type() // arg is already the slice
			} else if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		if pt != nil && isIface(pt) && !isIfaceOrNil(pass, arg) {
			report(arg.Pos(), "argument boxes a concrete value into interface parameter %s in hotpath %s",
				types.TypeString(pt, types.RelativeTo(pass.Pkg)), fn.Name.Name)
		}
	}
}

// checkBox reports v if it is a concrete (non-interface, non-nil)
// value flowing into an interface-typed slot.
func checkBox(pass *lint.Pass, report func(token.Pos, string, ...any), fn *ast.FuncDecl, v ast.Expr, dst types.Type, how string) {
	if dst == nil || !isIface(dst) || isIfaceOrNil(pass, v) {
		return
	}
	report(v.Pos(), "concrete value %s as interface %s boxes (allocates) in hotpath %s",
		how, types.TypeString(dst, types.RelativeTo(pass.Pkg)), fn.Name.Name)
}

// isIface is lint.IsInterface minus type parameters: a type
// parameter's underlying type is its constraint interface, but a
// generic hot function instantiated at int or float64 boxes nothing.
func isIface(t types.Type) bool {
	if _, ok := types.Unalias(t).(*types.TypeParam); ok {
		return false
	}
	return lint.IsInterface(t)
}

func isIfaceOrNil(pass *lint.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return true // be conservative on missing info
	}
	if b, ok := tv.Type.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return true
	}
	return isIface(tv.Type)
}

func isBuiltin(pass *lint.Pass, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

// calleeFunc resolves the called function object, unwrapping
// selectors (pkg.F, recv.M).
func calleeFunc(pass *lint.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// baseOf strips slicing and parens: append(x[:0], ...) reuses x.
func baseOf(e ast.Expr) ast.Expr {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.SliceExpr:
			e = v.X
		default:
			return ast.Unparen(e)
		}
	}
}

// sameRef reports whether two expressions statically denote the same
// storage location: identical identifiers (same object), selectors
// over the same base, or index expressions with the same base and
// identical index identifiers/literals.
func sameRef(pass *lint.Pass, a, b ast.Expr) bool {
	switch a := a.(type) {
	case *ast.Ident:
		b, ok := b.(*ast.Ident)
		if !ok {
			return false
		}
		ao := pass.TypesInfo.Uses[a]
		bo := pass.TypesInfo.Uses[b]
		if ao != nil && bo != nil {
			return ao == bo
		}
		return a.Name == b.Name
	case *ast.SelectorExpr:
		b, ok := b.(*ast.SelectorExpr)
		return ok && a.Sel.Name == b.Sel.Name && sameRef(pass, baseOf(a.X), baseOf(b.X))
	case *ast.IndexExpr:
		b, ok := b.(*ast.IndexExpr)
		return ok && sameRef(pass, baseOf(a.X), baseOf(b.X)) && sameIndex(pass, a.Index, b.Index)
	}
	return false
}

func sameIndex(pass *lint.Pass, a, b ast.Expr) bool {
	if ai, ok := a.(*ast.BasicLit); ok {
		bi, ok := b.(*ast.BasicLit)
		return ok && ai.Value == bi.Value
	}
	return sameRef(pass, a, b)
}
