// Package hotalloc is the analyzer's fixture: one function per
// allocation-inducing construct, annotated //sabre:hotpath, plus the
// sanctioned idioms that must stay silent.
package hotalloc

import "fmt"

type scratch struct {
	buf   []int
	marks []int32
	cells [][]int32
}

// deferred shows the defer finding.
//
//sabre:hotpath
func deferred(release func()) {
	defer release() // want `defer in hotpath deferred allocates`
}

// closes shows the closure finding.
//
//sabre:hotpath
func closes(n int) func() int {
	inc := func() int { // want `closure literal in hotpath closes`
		n++
		return n
	}
	return inc
}

// literals shows map and slice composite literals.
//
//sabre:hotpath
func literals(k string) int {
	m := map[string]int{k: 1} // want `map literal allocates in hotpath literals`
	s := []int{1, 2, 3}       // want `slice literal allocates in hotpath literals`
	return m[k] + s[0]
}

// growing appends to a fresh destination: flagged. The self-append
// reuse idiom and the annotated grow-path are not.
//
//sabre:hotpath
func growing(s *scratch, vals []int) []int {
	out := append(vals, 1) // want `append outside the self-append reuse idiom`
	s.buf = append(s.buf, 2)
	s.buf = append(s.buf[:0], vals...)
	s.cells[0] = append(s.cells[0], 3)
	if cap(s.marks) < len(vals) {
		//sabre:alloc-ok grow-only resize, amortized across rounds
		s.marks = make([]int32, len(vals))
	}
	return out
}

// making shows make/new findings.
//
//sabre:hotpath
func making(n int) *scratch {
	m := make(map[int]int, n) // want `make allocates in hotpath making`
	_ = m
	return new(scratch) // want `new allocates in hotpath making`
}

// printing shows the fmt finding.
//
//sabre:hotpath
func printing(x int) string {
	return fmt.Sprintf("x=%d", x) // want `fmt.Sprintf in hotpath printing allocates`
}

// boxing shows interface-boxing findings: conversion, argument,
// assignment, return.
//
//sabre:hotpath
func boxing(x int, sink func(any)) any {
	v := any(x) // want `conversion to interface any boxes a concrete value in hotpath boxing`
	sink(x)     // want `argument boxes a concrete value into interface parameter any in hotpath boxing`
	v = x       // want `concrete value assigned as interface any boxes \(allocates\) in hotpath boxing`
	_ = v
	return x // want `concrete value returned as interface any boxes \(allocates\) in hotpath boxing`
}

// generic is instantiated at int/float64 only: the type parameter's
// constraint interface is not boxing, and self-appends stay exempt.
//
//sabre:hotpath
func generic[D int | float64](dst []D, rows []D) []D {
	for _, v := range rows {
		dst = append(dst, v+1)
	}
	return dst
}

// cold has every construct above but no annotation: silent.
func cold(k string) any {
	defer func() {}()
	m := map[string]int{k: 1}
	return fmt.Sprint(m)
}
