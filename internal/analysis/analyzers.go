// Package analysis registers the repo's static-analysis suite: the
// five sabrelint analyzers plus the package-applicability policy that
// scopes each one to the layers whose invariants it proves. The
// cmd/sabrelint multichecker is the driver; the analyzers themselves
// live one package each under this directory, and the framework they
// are written against is internal/analysis/lint.
package analysis

import (
	"strings"

	"repro/internal/analysis/calatomic"
	"repro/internal/analysis/detrange"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/keyfields"
	"repro/internal/analysis/lint"
	"repro/internal/analysis/seedrand"
)

// Configured pairs an analyzer with the packages it applies to.
type Configured struct {
	Analyzer *lint.Analyzer

	// Applies reports whether the analyzer runs on the package. The
	// policy lives here, not in the analyzers, so each analyzer stays
	// a pure rule and fixtures can exercise it anywhere.
	Applies func(importPath string) bool
}

// deterministicPkgs are the packages whose outputs must be
// byte-identical across runs, worker counts, and engine versions:
// the routing core and everything that constructs its inputs or
// orders its outputs.
var deterministicPkgs = []string{
	"repro/internal/core",
	"repro/internal/route",
	"repro/internal/pipeline",
	"repro/internal/batch",
	"repro/internal/circuit",
	"repro/internal/mapping",
	"repro/internal/baseline",
}

// orderedOutputPkgs additionally surface ordered views to callers
// (job listings, stats tables) — map-order leaks there break API
// stability even where routing determinism is not at stake.
var orderedOutputPkgs = append([]string{
	"repro/internal/jobqueue",
	"repro/internal/joblog",
	"repro/internal/fleet",
	"repro/internal/arch",
	"repro/internal/workloads",
}, deterministicPkgs...)

// All returns the suite in reporting order.
func All() []Configured {
	return []Configured{
		{detrange.Analyzer, anyOf(orderedOutputPkgs...)},
		{hotalloc.Analyzer, everywhere},
		{seedrand.Analyzer, anyOf(deterministicPkgs...)},
		{calatomic.Analyzer, allBut("repro/internal/arch")},
		{keyfields.Analyzer, anyOf("repro/internal/batch")},
	}
}

// Analyzers returns just the analyzer list (for -list and tests).
func Analyzers() []*lint.Analyzer {
	all := All()
	out := make([]*lint.Analyzer, len(all))
	for i, c := range all {
		out[i] = c.Analyzer
	}
	return out
}

// inTestdata opts fixture packages into every analyzer: seeded-
// violation packages under testdata prove the suite fires end to end.
func inTestdata(path string) bool {
	return strings.Contains(path, "/testdata/") || strings.HasPrefix(path, "testdata/")
}

func everywhere(string) bool { return true }

func anyOf(pkgs ...string) func(string) bool {
	return func(path string) bool {
		if inTestdata(path) {
			return true
		}
		for _, p := range pkgs {
			if path == p {
				return true
			}
		}
		return false
	}
}

func allBut(pkgs ...string) func(string) bool {
	return func(path string) bool {
		for _, p := range pkgs {
			if path == p {
				return false
			}
		}
		return true
	}
}
