// Package seedrand is the analyzer's fixture: illegal entropy draws
// next to the sanctioned seeded forms.
package seedrand

import (
	crand "crypto/rand" // want `crypto/rand imported in a deterministic package`
	"math/rand"
	"time"
)

// globalDraws use the process-global source: every call flagged.
func globalDraws(n int) int {
	v := rand.Intn(n)                  // want `rand.Intn draws from the process-global source`
	rand.Shuffle(n, func(i, j int) {}) // want `rand.Shuffle draws from the process-global source`
	return v + int(rand.Int63())       // want `rand.Int63 draws from the process-global source`
}

// seeded is the legal form: constructors plus methods on the stream.
func seeded(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n) + rng.Perm(n)[0]
}

// clock braids wall time into a seed: flagged.
func clock() int64 {
	return time.Now().UnixNano() // want `time.Now in a deterministic package`
}

// timed is the annotated metrics-only form.
func timed(f func()) time.Duration {
	start := time.Now() //sabre:nondeterm-ok metrics only
	f()
	//sabre:nondeterm-ok metrics only
	return time.Since(start) - time.Until(time.Now())
}

// entropy reads crypto randomness; the import is the finding, the
// call site needs no second one.
func entropy(buf []byte) {
	_, _ = crand.Read(buf)
}
