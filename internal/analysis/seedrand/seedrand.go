// Package seedrand implements the determinism analyzer for entropy
// sources: in deterministic packages the only legal RNG is a seeded
// *rand.Rand threaded down from the trial seed — exactly what makes a
// routing trial reproducible under any worker count. Flagged:
//
//   - math/rand (and math/rand/v2) package-level functions
//     (rand.Intn, rand.Shuffle, ...): they draw from the global
//     source, which is seeded from OS entropy. The constructors
//     (rand.New, rand.NewSource, rand.NewZipf) are legal — they are
//     how seeds become streams.
//   - time.Now: wall-clock values braided into routing decisions are
//     the subtlest golden-suite killer. Pass timing (metrics only)
//     is annotated //sabre:nondeterm-ok.
//   - any use of crypto/rand: cryptographic entropy is never
//     deterministic; flagged at the import.
//
// This catches exactly the class of bug that would silently break the
// three-way golden scoring suite: an innocent rand.Intn tie-break or
// a time-derived seed routes differently on every run, and no fixture
// diff points at the cause.
package seedrand

import (
	"go/ast"
	"go/types"
	"strconv"

	"repro/internal/analysis/lint"
)

// Analyzer flags unseeded entropy sources in deterministic packages.
var Analyzer = &lint.Analyzer{
	Name: "seedrand",
	Doc: "forbids math/rand global functions, time.Now, and crypto/rand in " +
		"deterministic packages; the only legal RNG is a seeded *rand.Rand " +
		"threaded from trial seeds (annotate metrics-only timing //sabre:nondeterm-ok)",
	Run: run,
}

// constructors are the math/rand functions that build seeded streams
// rather than drawing from the global source.
var constructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if path == "crypto/rand" && !pass.Allowed(imp.Pos(), "nondeterm-ok") {
				pass.Reportf(imp.Pos(), "crypto/rand imported in a deterministic package; cryptographic entropy can never reproduce a trial")
			}
		}
	}
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		sig, _ := fn.Type().(*types.Signature)
		switch fn.Pkg().Path() {
		case "math/rand", "math/rand/v2":
			// Methods on *rand.Rand are the legal seeded form; only
			// package-level draws touch the global source.
			if sig != nil && sig.Recv() == nil && !constructors[fn.Name()] {
				if !pass.Allowed(call.Pos(), "nondeterm-ok") {
					pass.Reportf(call.Pos(), "rand.%s draws from the process-global source; thread a seeded *rand.Rand from the trial seed instead", fn.Name())
				}
			}
		case "time":
			if fn.Name() == "Now" && sig != nil && sig.Recv() == nil {
				if !pass.Allowed(call.Pos(), "nondeterm-ok") {
					pass.Reportf(call.Pos(), "time.Now in a deterministic package; wall-clock values must never feed routing decisions (annotate //sabre:nondeterm-ok if it only feeds metrics)")
				}
			}
		}
		return true
	})
	return nil
}
