package seedrand_test

import (
	"testing"

	"repro/internal/analysis/lint/linttest"
	"repro/internal/analysis/seedrand"
)

func TestSeedrand(t *testing.T) {
	linttest.Run(t, seedrand.Analyzer, "seedrand")
}
