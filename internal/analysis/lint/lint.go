// Package lint is the repo's static-analysis framework: a minimal,
// dependency-free reimplementation of the golang.org/x/tools
// go/analysis surface (Analyzer, Pass, Diagnostic) on top of the
// standard library's go/ast and go/types. The toolchain ships no
// network access and the module cache holds no x/tools, so the
// framework loads packages through `go list -export -deps -json` and
// type-checks targets from source against the build cache's export
// data (load.go) — the same data the compiler itself just produced,
// so a package that builds is a package that lints.
//
// Analyzers prove the repo's load-bearing invariants at compile time
// instead of test time: determinism (no map-order dependence, no
// unseeded randomness), zero-alloc hot paths, calibration-snapshot
// immutability, and cache-key completeness. Each analyzer lives in
// its own package under internal/analysis and is registered with its
// package-applicability policy in internal/analysis/analyzers.go; the
// cmd/sabrelint multichecker drives them all.
//
// Escape hatches are source directives, scanned from comments:
//
//	//sabre:hotpath          marks a function whose body must not allocate
//	//sabre:nondeterm-ok     allows a flagged nondeterministic construct
//	//sabre:alloc-ok         allows a flagged allocation in a hotpath
//	//sabre:nokey            exempts a batch.Job field from the cache key
//
// An allow-directive applies to the source line it sits on or the
// line directly below it (i.e. write it on the offending line or
// immediately above).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. Run inspects a single type-checked
// package through its Pass and reports findings via Pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -only filters.
	Name string

	// Doc is the one-paragraph description `sabrelint -list` prints.
	Doc string

	// Run executes the check over one package. Returning an error
	// aborts the whole lint run (reserved for internal failures, not
	// findings — findings are diagnostics).
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one package: the syntax trees,
// the type information, and the directive index.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags      *[]Diagnostic
	directives map[string]map[int][]string // filename -> line -> directive names
}

// Diagnostic is one finding, positioned and attributed.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Package  string         `json:"package"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Column   int            `json:"column"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Package:  p.Pkg.Path(),
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Column:   position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Allowed reports whether an allow-directive named name (e.g.
// "nondeterm-ok") annotates the line of pos: the directive comment
// sits on the same line or the line directly above.
func (p *Pass) Allowed(pos token.Pos, name string) bool {
	position := p.Fset.Position(pos)
	lines := p.directives[position.Filename]
	for _, l := range []int{position.Line, position.Line - 1} {
		for _, d := range lines[l] {
			if d == name {
				return true
			}
		}
	}
	return false
}

// HasDirective reports whether the comment group carries the
// directive //sabre:<name> (with or without a trailing reason).
// Directive comments are ordinary comment lines, so they survive in
// doc groups; this is how //sabre:hotpath marks a function.
func HasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	want := "//sabre:" + name
	for _, c := range doc.List {
		if c.Text == want || strings.HasPrefix(c.Text, want+" ") {
			return true
		}
	}
	return false
}

// directiveIndex scans every comment in the package for //sabre:
// directives and indexes them by file and line.
func directiveIndex(fset *token.FileSet, files []*ast.File) map[string]map[int][]string {
	idx := make(map[string]map[int][]string)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//sabre:")
				if !ok {
					continue
				}
				name, _, _ := strings.Cut(rest, " ")
				if name == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]string)
					idx[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], name)
			}
		}
	}
	return idx
}

// RunAnalyzer applies one analyzer to one loaded package and returns
// its findings sorted by position.
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:   a,
		Fset:       pkg.Fset,
		Files:      pkg.Files,
		Pkg:        pkg.Types,
		TypesInfo:  pkg.Info,
		diags:      &diags,
		directives: directiveIndex(pkg.Fset, pkg.Files),
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
	}
	SortDiagnostics(diags)
	return diags, nil
}

// SortDiagnostics orders findings by file, line, column, analyzer.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// Inspect walks every file in the pass in depth-first order, calling
// fn for each node; fn returning false prunes the subtree. A nil-safe
// convenience over ast.Inspect for multi-file packages.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// IsInterface reports whether t is a non-nil interface type after
// unwrapping named types and aliases.
func IsInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// IsMap reports whether t's underlying type is a map.
func IsMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// NamedFrom unwraps pointers and aliases and returns the *types.Named
// beneath t, or nil.
func NamedFrom(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := types.Unalias(t).(*types.Named)
	return n
}

// IsNamed reports whether t (possibly behind a pointer) is the named
// type pkgSuffix.typeName, where pkgSuffix matches the full package
// path or a trailing path segment ("arch" matches repro/internal/arch
// and any fixture package named arch).
func IsNamed(t types.Type, pkgSuffix, typeName string) bool {
	n := NamedFrom(t)
	if n == nil || n.Obj().Name() != typeName || n.Obj().Pkg() == nil {
		return false
	}
	path := n.Obj().Pkg().Path()
	return path == pkgSuffix || strings.HasSuffix(path, "/"+pkgSuffix) || n.Obj().Pkg().Name() == pkgSuffix
}
