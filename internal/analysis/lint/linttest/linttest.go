// Package linttest is the fixture harness for the repo's analyzers —
// the role analysistest plays for x/tools analyzers. A fixture is a
// small package under the analyzer's testdata/src/<name>/ directory;
// offending lines carry `// want "regexp"` comments declaring the
// diagnostics the analyzer must report there (several per line
// allowed). The harness type-checks the fixture (resolving fixture-
// local imports from testdata/src and everything else from the build
// cache's export data), runs the analyzer, and fails the test on any
// missing, surplus, or mispositioned diagnostic.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis/lint"
)

// Run loads each named fixture package from testdata/src relative to
// the test's working directory, applies the analyzer, and checks the
// diagnostics against the fixtures' `// want` expectations.
func Run(t *testing.T, a *lint.Analyzer, fixtures ...string) {
	t.Helper()
	for _, name := range fixtures {
		t.Run(name, func(t *testing.T) {
			t.Helper()
			root, err := filepath.Abs(filepath.Join("testdata", "src"))
			if err != nil {
				t.Fatal(err)
			}
			ld := &fixtureLoader{
				root:  root,
				fset:  token.NewFileSet(),
				local: make(map[string]*fixturePackage),
			}
			pkg, err := ld.load(name)
			if err != nil {
				t.Fatalf("loading fixture %s: %v", name, err)
			}
			diags, err := lint.RunAnalyzer(a, &lint.Package{
				ImportPath: name,
				Dir:        filepath.Join(root, name),
				Fset:       ld.fset,
				Files:      pkg.files,
				Types:      pkg.types,
				Info:       pkg.info,
			})
			if err != nil {
				t.Fatalf("running %s on %s: %v", a.Name, name, err)
			}
			checkExpectations(t, ld.fset, pkg.files, diags)
		})
	}
}

type fixturePackage struct {
	files []*ast.File
	types *types.Package
	info  *types.Info
}

// fixtureLoader resolves fixture packages and their imports: paths
// with a directory under testdata/src are fixture-local (loaded from
// source, so fixtures can exercise cross-package rules like calatomic
// against a stand-in arch package); everything else comes from the
// shared stdlib export-data importer.
type fixtureLoader struct {
	root  string
	fset  *token.FileSet
	local map[string]*fixturePackage
}

func (l *fixtureLoader) load(path string) (*fixturePackage, error) {
	if pkg, ok := l.local[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture %s: no Go files in %s", path, dir)
	}
	tpkg, info, err := lint.Check(l.fset, path, files, &fixtureImporter{loader: l})
	if err != nil {
		return nil, err
	}
	pkg := &fixturePackage{files: files, types: tpkg, info: info}
	l.local[path] = pkg
	return pkg, nil
}

type fixtureImporter struct{ loader *fixtureLoader }

func (i *fixtureImporter) Import(path string) (*types.Package, error) {
	if st, err := os.Stat(filepath.Join(i.loader.root, path)); err == nil && st.IsDir() {
		pkg, err := i.loader.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.types, nil
	}
	return stdImport(i.loader.fset, path)
}

// Shared stdlib importer state. Export-data files are discovered with
// `go list -export -deps` (one exec per new package root, results
// cached process-wide); the gc importers themselves are per-FileSet,
// since imported positions are interned into the fset.
var std struct {
	sync.Mutex
	exports   map[string]string
	importers map[*token.FileSet]types.Importer
}

func stdImport(fset *token.FileSet, path string) (*types.Package, error) {
	std.Lock()
	defer std.Unlock()
	if std.exports == nil {
		std.exports = make(map[string]string)
		std.importers = make(map[*token.FileSet]types.Importer)
	}
	if _, ok := std.exports[path]; !ok {
		out, err := exec.Command("go", "list", "-export", "-deps", "-f",
			"{{if .Export}}{{.ImportPath}}={{.Export}}{{end}}", "--", path).Output()
		if err != nil {
			return nil, fmt.Errorf("go list -export %s: %v", path, err)
		}
		for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
			if p, e, ok := strings.Cut(line, "="); ok {
				std.exports[p] = e
			}
		}
	}
	imp, ok := std.importers[fset]
	if !ok {
		imp = importer.ForCompiler(fset, "gc", func(p string) (io.ReadCloser, error) {
			file, ok := std.exports[p]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", p)
			}
			return os.Open(file)
		})
		std.importers[fset] = imp
	}
	return imp.Import(path)
}

// wantRE extracts the quoted regexps of a `// want "..." "..."`
// comment; both double-quoted and backquoted forms are accepted
// (backquotes spare regexps a double layer of escaping).
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, diags []lint.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				_, spec, ok := strings.Cut(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range wantRE.FindAllString(spec, -1) {
					raw, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, raw, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.File && w.line == d.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}
