package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load resolves patterns with the go tool (run in dir) and returns
// every matched package parsed and type-checked from source, with
// imports — including stdlib and sibling targets — satisfied by the
// build cache's export data. Test files are excluded: the invariants
// the analyzers prove are properties of shipped code, and test-only
// constructs (fixtures, fakes) would drown them in noise.
//
// `go list -export` compiles anything stale as a side effect, so Load
// fails fast, with the compiler's own errors, on code that does not
// build — the analyzers only ever see well-typed trees.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-export", "-deps", "-json", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	importMap := make(map[string]string)
	var targets []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		for from, to := range p.ImportMap {
			importMap[from] = to
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	pkgs := make([]*Package, 0, len(targets))
	for _, t := range targets {
		files := make([]*ast.File, 0, len(t.GoFiles))
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		pkg, info, err := Check(fset, t.ImportPath, files, imp)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: t.ImportPath,
			Dir:        t.Dir,
			Fset:       fset,
			Files:      files,
			Types:      pkg,
			Info:       info,
		})
	}
	return pkgs, nil
}

// Check type-checks one package's parsed files with full type
// recording, resolving imports through imp. Shared by the loader and
// the linttest fixture harness.
func Check(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}
