// Package keyfields_complete is the green-path fixture: every
// exported Job field hashed or annotated — no findings.
package keyfields_complete

import "hash/fnv"

// Job with full key coverage.
type Job struct {
	Circuit string
	Trials  int

	//sabre:nokey caller label, carried into the result untouched
	Tag string
}

// KeyOf hashes everything that matters.
func KeyOf(job Job) uint64 {
	h := fnv.New64a()
	h.Write([]byte(job.Circuit))
	h.Write([]byte{byte(job.Trials)})
	return h.Sum64()
}
