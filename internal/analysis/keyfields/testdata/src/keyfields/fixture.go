// Package keyfields is the analyzer's fixture: a miniature batch
// package whose key builder misses one knob.
package keyfields

import "hash/fnv"

// Job mirrors the real batch.Job shape: hashed fields, a helper-
// consumed field, annotated metadata, and one forgotten knob.
type Job struct {
	Circuit string
	Device  string
	Trials  int

	// Patience is the forgotten knob: it changes the result but KeyOf
	// never hashes it.
	Patience int // want `exported Job field Patience is not hashed into the canonical cache key`

	// UseLive is consumed by ResolveLive before hashing; the helper
	// read counts as coverage.
	UseLive bool

	// Tag is reporting metadata and never affects compilation.
	//sabre:nokey reporting metadata only
	Tag string

	// internal fields are invisible to the cache-key contract.
	scratch []byte
}

// ResolveLive consumes UseLive, the way the real engine pins
// calibration before hashing.
func (j Job) ResolveLive() Job {
	if j.UseLive {
		j.UseLive = false
		j.Device = j.Device + "@live"
	}
	return j
}

// KeyOf is the canonical key builder.
func KeyOf(job Job) uint64 {
	job = job.ResolveLive()
	h := fnv.New64a()
	h.Write([]byte(job.Circuit))
	h.Write([]byte(job.Device))
	h.Write([]byte{byte(job.Trials)})
	return h.Sum64()
}
