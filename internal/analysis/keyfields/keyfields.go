// Package keyfields implements the cache-key completeness analyzer
// for the batch engine. The canonical cache key (batch.KeyOf) must
// cover every exported batch.Job field that can change the compile
// result: a Job knob added without a key update makes two different
// compilations alias one cache entry — the worst kind of cache bug,
// wrong results served silently and deterministically.
//
// The analyzer compares the exported fields of the package's Job
// struct against the fields the key-builder function (KeyOf) actually
// reads — directly, or through one level of same-package helper calls
// (KeyOf pins calibration via Job.ResolveCalibration before hashing,
// so fields consumed there count as covered). Fields that genuinely
// do not affect output (reporting metadata, flags consumed before
// hashing) must be annotated //sabre:nokey with a reason; everything
// else unhashed is a build error.
package keyfields

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/lint"
)

// Analyzer asserts KeyOf hashes every result-affecting Job field.
var Analyzer = &lint.Analyzer{
	Name: "keyfields",
	Doc: "asserts every exported field of batch.Job is either hashed by the " +
		"canonical key builder (KeyOf) or annotated //sabre:nokey; adding a Job " +
		"knob without bumping the key becomes a lint failure",
	Run: run,
}

func run(pass *lint.Pass) error {
	jobSpec, jobStruct := findStruct(pass, "Job")
	keyOf := findFunc(pass, "KeyOf")
	if jobSpec == nil || keyOf == nil {
		// Not the key-construction package (or a fixture without the
		// pair); nothing to prove here.
		return nil
	}

	// Fields the key builder reads, transitively through one level of
	// same-package calls (ResolveCalibration, helpers).
	read := make(map[string]bool)
	collectJobFieldReads(pass, keyOf.Body, read)
	ast.Inspect(keyOf.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if callee := calleeDecl(pass, call); callee != nil && callee.Body != nil {
			collectJobFieldReads(pass, callee.Body, read)
		}
		return true
	})

	for i := 0; i < jobStruct.Fields.NumFields(); i++ {
		field := jobStruct.Fields.List[i]
		for _, name := range field.Names {
			if !name.IsExported() || read[name.Name] {
				continue
			}
			if lint.HasDirective(field.Doc, "nokey") || lint.HasDirective(field.Comment, "nokey") {
				continue
			}
			pass.Reportf(name.Pos(), "exported Job field %s is not hashed into the canonical cache key (KeyOf): jobs differing only in %s would alias one cache entry; hash it or annotate //sabre:nokey with why it cannot affect output", name.Name, name.Name)
		}
	}
	return nil
}

// collectJobFieldReads records every selector field read off a
// Job-typed value inside body.
func collectJobFieldReads(pass *lint.Pass, body *ast.BlockStmt, read map[string]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if tv, ok := pass.TypesInfo.Types[sel.X]; ok && lint.IsNamed(tv.Type, pass.Pkg.Path(), "Job") {
			read[sel.Sel.Name] = true
		}
		return true
	})
}

// findStruct locates the named struct type declared in this package.
func findStruct(pass *lint.Pass, name string) (*ast.TypeSpec, *ast.StructType) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != name {
					continue
				}
				if st, ok := ts.Type.(*ast.StructType); ok {
					return ts, st
				}
			}
		}
	}
	return nil, nil
}

// findFunc locates the named top-level function.
func findFunc(pass *lint.Pass, name string) *ast.FuncDecl {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == name && fd.Body != nil {
				return fd
			}
		}
	}
	return nil
}

// calleeDecl resolves a call to its same-package declaration
// (function or method), or nil for externals and builtins.
func calleeDecl(pass *lint.Pass, call *ast.CallExpr) *ast.FuncDecl {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pass.Pkg.Path() {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == fn.Name() {
				if pass.TypesInfo.Defs[fd.Name] == fn {
					return fd
				}
			}
		}
	}
	return nil
}
