package keyfields_test

import (
	"testing"

	"repro/internal/analysis/keyfields"
	"repro/internal/analysis/lint/linttest"
)

func TestKeyfields(t *testing.T) {
	linttest.Run(t, keyfields.Analyzer, "keyfields", "keyfields_complete")
}
