package analysis

// The hotpath-coverage meta-test closes the loop between the hotalloc
// analyzer and the runtime alloc guards: every function annotated
// //sabre:hotpath must live in a package whose tests actually measure
// it with testing.AllocsPerRun (TestScoreRoundZeroAllocs and
// siblings). hotalloc proves the *shape* of the code cannot allocate;
// the guard proves the compiled code does not; this test proves no
// annotated function silently escapes the second check.
//
// Coverage is established statically: the callees inside every
// AllocsPerRun closure in the package's tests are the roots of a
// same-package call-graph walk, and each annotated function must be
// reachable from some root. Name-based edges are precise enough here —
// the hot path has no same-name method pairs — and keep the test
// dependency-free.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis/lint"
)

func TestEveryHotpathFunctionHasAnAllocGuard(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not found at %s: %v", root, err)
	}

	pkgDirs := map[string]bool{}
	err = filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			name := info.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			pkgDirs[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	totalHot := 0
	for dir := range pkgDirs {
		hot, roots, calls := scanPackageDir(t, dir)
		if len(hot) == 0 {
			continue
		}
		totalHot += len(hot)
		rel, _ := filepath.Rel(root, dir)
		if len(roots) == 0 {
			t.Errorf("%s: %d //sabre:hotpath functions but no testing.AllocsPerRun guard in its tests", rel, len(hot))
			continue
		}
		covered := reachable(roots, calls)
		for _, name := range hot {
			if !covered[name] {
				t.Errorf("%s: //sabre:hotpath function %s is not reachable from any AllocsPerRun guard (roots: %v)", rel, name, roots)
			}
		}
	}
	if totalHot == 0 {
		t.Fatal("no //sabre:hotpath functions found anywhere — the annotations or this scan are broken")
	}
}

// scanPackageDir parses every .go file in dir and returns the
// hotpath-annotated function names, the guard roots (callees inside
// testing.AllocsPerRun closures in _test.go files), and the package's
// name-based call graph over non-test function declarations.
func scanPackageDir(t *testing.T, dir string) (hot, roots []string, calls map[string][]string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	calls = map[string][]string{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		isTest := strings.HasSuffix(e.Name(), "_test.go")
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isTest {
				roots = append(roots, allocsPerRunCallees(fd.Body)...)
				continue
			}
			if lint.HasDirective(fd.Doc, "hotpath") {
				hot = append(hot, fd.Name.Name)
			}
			calls[fd.Name.Name] = append(calls[fd.Name.Name], calleeNames(fd.Body)...)
		}
	}
	return hot, roots, calls
}

// allocsPerRunCallees returns the names called inside the closure
// argument of each testing.AllocsPerRun call in body.
func allocsPerRunCallees(body *ast.BlockStmt) []string {
	var out []string
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "AllocsPerRun" || len(call.Args) != 2 {
			return true
		}
		if fn, ok := call.Args[1].(*ast.FuncLit); ok {
			out = append(out, calleeNames(fn.Body)...)
		}
		return true
	})
	return out
}

// calleeNames lists every function or method name invoked in body
// (unqualified: same-package resolution is by name).
func calleeNames(body *ast.BlockStmt) []string {
	var out []string
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			out = append(out, fun.Name)
		case *ast.SelectorExpr:
			out = append(out, fun.Sel.Name)
		case *ast.IndexExpr: // generic instantiation f[T](...)
			if id, ok := fun.X.(*ast.Ident); ok {
				out = append(out, id.Name)
			}
		}
		return true
	})
	return out
}

// reachable walks the name-based call graph from the roots.
func reachable(roots []string, calls map[string][]string) map[string]bool {
	seen := map[string]bool{}
	stack := append([]string(nil), roots...)
	for len(stack) > 0 {
		name := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[name] {
			continue
		}
		seen[name] = true
		stack = append(stack, calls[name]...)
	}
	return seen
}
