package calatomic_test

import (
	"testing"

	"repro/internal/analysis/calatomic"
	"repro/internal/analysis/lint/linttest"
)

func TestCalatomic(t *testing.T) {
	linttest.Run(t, calatomic.Analyzer, "calatomic")
}
