// Package arch is the fixture stand-in for repro/internal/arch: just
// enough surface for the calatomic rules to bind against.
package arch

// NoiseModel mirrors the real package's error-rate model.
type NoiseModel struct {
	Default   float64
	EdgeError map[[2]int]float64
}

// CalSnapshot mirrors the real immutable calibration snapshot.
type CalSnapshot struct {
	Version uint64
	Model   *NoiseModel
}

// Device carries the atomically-published snapshot.
type Device struct {
	cal *CalSnapshot
}

// Calibration returns the live snapshot.
func (d *Device) Calibration() *CalSnapshot { return d.cal }
