// Package calatomic is the analyzer's fixture: every way a consumer
// can break snapshot immutability or pin a stale snapshot, plus the
// sanctioned read-at-point-of-use patterns.
package calatomic

import "arch"

// cachedSnap is the global-pin bug.
var cachedSnap *arch.CalSnapshot // want `package-level \*arch\.CalSnapshot cachedSnap`

type scheduler struct {
	snap *arch.CalSnapshot
	ver  uint64
}

// mutate breaks post-publish immutability at every depth.
func mutate(d *arch.Device) {
	snap := d.Calibration()
	snap.Version = 7                         // want `assignment through \*arch\.CalSnapshot`
	snap.Model.Default = 0.5                 // want `assignment through \*arch\.CalSnapshot`
	snap.Model.EdgeError[[2]int{0, 1}] = 0.1 // want `assignment through \*arch\.CalSnapshot`
	snap.Version++                           // want `assignment through \*arch\.CalSnapshot`
}

// cache parks the pointer where it outlives the round.
func cache(s *scheduler, d *arch.Device) {
	s.snap = d.Calibration()     // want `\*arch\.CalSnapshot stored into a field`
	cachedSnap = d.Calibration() // want `\*arch\.CalSnapshot stored into package variable cachedSnap`
	byName := map[string]*arch.CalSnapshot{}
	byName["tokyo"] = d.Calibration()    // want `\*arch\.CalSnapshot stored into a container`
	_ = scheduler{snap: d.Calibration()} // want `\*arch\.CalSnapshot embedded in a composite literal`
}

// legal reads the snapshot once per decision into locals and copies
// out the value parts — the batch.Job.ResolveCalibration pattern.
func legal(s *scheduler, d *arch.Device) float64 {
	if snap := d.Calibration(); snap != nil {
		s.ver = snap.Version // version is a value: pinning it is the sanctioned form
		return snap.Model.Default
	}
	local := d.Calibration()
	_ = local
	return 0
}
