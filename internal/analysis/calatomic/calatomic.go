// Package calatomic implements the calibration-snapshot analyzer.
// arch.Device publishes calibration as an atomically-swapped pointer
// to an immutable CalSnapshot; the whole concurrency story rests on
// two rules this analyzer enforces outside the arch package itself:
//
//  1. Post-publish immutability: no field reachable through a
//     CalSnapshot is ever assigned — not Version, not Model, not an
//     entry of Model's maps. A consumer mutating a snapshot would race
//     every concurrently-routing trial and corrupt the weighted-
//     distance memo keyed on the model's content.
//
//  2. No caching across round boundaries: a *CalSnapshot is read via
//     Device.Calibration() at point of use and may live in locals for
//     one coherent decision, but is never stored into struct fields,
//     package variables, or composite literals — a parked pointer
//     silently pins a stale calibration across recalibrations. (Pin a
//     job to a snapshot by copying Version and Model into the job,
//     the way batch.Job.ResolveCalibration does — versions are values
//     and models are immutable; the snapshot pointer itself is the
//     thing that must not be parked.)
//
// The arch package is exempt (it constructs snapshots pre-publish);
// the sabrelint driver encodes that policy.
package calatomic

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/lint"
)

// Analyzer enforces CalSnapshot immutability and no-caching.
var Analyzer = &lint.Analyzer{
	Name: "calatomic",
	Doc: "enforces that calibration snapshots are read via Device.Calibration() at " +
		"point of use, never mutated post-publish and never cached in fields or " +
		"globals across round boundaries",
	Run: run,
}

func run(pass *lint.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkMutation(pass, lhs)
			}
			if n.Tok == token.ASSIGN {
				for i, rhs := range n.Rhs {
					if len(n.Lhs) == len(n.Rhs) {
						checkCaching(pass, n.Lhs[i], rhs)
					}
				}
			}
		case *ast.IncDecStmt:
			checkMutation(pass, n.X)
		case *ast.CompositeLit:
			checkLiteralCaching(pass, n)
		case *ast.GenDecl:
			checkGlobalDecl(pass, n)
		}
		return true
	})
	return nil
}

// isSnapshot reports whether t is (a pointer to) arch.CalSnapshot.
func isSnapshot(t types.Type) bool {
	return lint.IsNamed(t, "arch", "CalSnapshot")
}

// checkMutation flags an assignment target whose access path passes
// through a CalSnapshot: snap.Version = v, snap.Model.Default = e,
// snap.Model.EdgeError[k] = e, ...
func checkMutation(pass *lint.Pass, lhs ast.Expr) {
	var through bool
	ast.Inspect(lhs, func(m ast.Node) bool {
		sel, ok := m.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if tv, ok := pass.TypesInfo.Types[sel.X]; ok && isSnapshot(tv.Type) {
			through = true
		}
		return true
	})
	if through {
		pass.Reportf(lhs.Pos(), "assignment through *arch.CalSnapshot: snapshots are immutable after publish; build a new model and ApplyCalibration it")
	}
}

// checkCaching flags storing a *CalSnapshot anywhere that outlives
// the current round: struct fields and package-level variables.
// Locals are legal — one coherent read per decision is the pattern.
func checkCaching(pass *lint.Pass, lhs, rhs ast.Expr) {
	tv, ok := pass.TypesInfo.Types[rhs]
	if !ok || !isSnapshot(tv.Type) {
		return
	}
	switch l := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		// Selector targets are fields (or captured state); either way
		// the pointer outlives the expression.
		pass.Reportf(lhs.Pos(), "*arch.CalSnapshot stored into a field: caching the snapshot pins a stale calibration across rounds; store Version/Model and re-read Calibration() at point of use")
	case *ast.Ident:
		if obj, ok := pass.TypesInfo.Uses[l].(*types.Var); ok && obj.Parent() == pass.Pkg.Scope() {
			pass.Reportf(lhs.Pos(), "*arch.CalSnapshot stored into package variable %s: caching the snapshot pins a stale calibration; re-read Calibration() at point of use", l.Name)
		}
	case *ast.IndexExpr:
		pass.Reportf(lhs.Pos(), "*arch.CalSnapshot stored into a container: caching the snapshot pins a stale calibration; re-read Calibration() at point of use")
	}
}

// checkLiteralCaching flags composite literals embedding a snapshot
// pointer (struct fields, slices, maps of snapshots).
func checkLiteralCaching(pass *lint.Pass, lit *ast.CompositeLit) {
	for _, el := range lit.Elts {
		v := el
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			v = kv.Value
		}
		if tv, ok := pass.TypesInfo.Types[v]; ok && isSnapshot(tv.Type) {
			pass.Reportf(v.Pos(), "*arch.CalSnapshot embedded in a composite literal: caching the snapshot pins a stale calibration; store Version/Model instead")
		}
	}
}

// checkGlobalDecl flags package-level variables declared with a
// snapshot value (var cached = dev.Calibration()).
func checkGlobalDecl(pass *lint.Pass, decl *ast.GenDecl) {
	if decl.Tok != token.VAR {
		return
	}
	for _, spec := range decl.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, name := range vs.Names {
			obj, ok := pass.TypesInfo.Defs[name].(*types.Var)
			if ok && obj.Parent() == pass.Pkg.Scope() && isSnapshot(obj.Type()) {
				pass.Reportf(name.Pos(), "package-level *arch.CalSnapshot %s: a global snapshot pins one calibration forever; read Calibration() at point of use", name.Name)
			}
		}
	}
}
