package detrange_test

import (
	"testing"

	"repro/internal/analysis/detrange"
	"repro/internal/analysis/lint/linttest"
)

func TestDetrange(t *testing.T) {
	linttest.Run(t, detrange.Analyzer, "detrange")
}
