// Package detrange is the analyzer's fixture: every way a map range
// can leak nondeterministic order, plus the sanctioned escapes.
package detrange

import "sort"

type registry struct {
	entries map[string]int
}

// Names leaks map order straight into a slice: the classic bug.
func (r *registry) Names() []string {
	out := make([]string, 0, len(r.entries))
	for name := range r.entries { // want `range over map r\.entries iterates in randomized order`
		out = append(out, name)
	}
	return out
}

// NamesSorted does the same walk but is annotated: the append feeds a
// sort, so the fold is order-insensitive.
func (r *registry) NamesSorted() []string {
	out := make([]string, 0, len(r.entries))
	//sabre:nondeterm-ok sorted below
	for name := range r.entries {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Count is order-insensitive but unannotated — still flagged: the
// analyzer cannot prove the fold commutes, the author must.
func Count(m map[int]bool) int {
	n := 0
	for range m { // want `range over map m iterates in randomized order`
		n++
	}
	return n
}

// CountOK is the annotated twin (same-line form).
func CountOK(m map[int]bool) int {
	n := 0
	for range m { //sabre:nondeterm-ok pure counter
		n++
	}
	return n
}

// Named map types and map-returning calls are still maps.
type loadMap map[string]int

func drain(f func() loadMap) {
	for k, v := range f() { // want `range over map f\(\.\.\.\) iterates in randomized order`
		_ = k
		_ = v
	}
}

// Slices, channels, and strings range deterministically: no findings.
func fine(s []int, ch chan int, str string) int {
	n := 0
	for _, v := range s {
		n += v
	}
	for v := range ch {
		n += v
	}
	for _, r := range str {
		n += int(r)
	}
	return n
}
