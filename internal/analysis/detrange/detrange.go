// Package detrange implements the determinism analyzer for map
// iteration: in determinism-critical packages (routing core, router
// registry, pipeline, batch key construction, jobqueue views), a
// `range` over a map is a latent nondeterminism bug — Go randomizes
// iteration order per run, so anything order-sensitive downstream
// (output accumulation, hashing, tie-breaking, JSON arrays) silently
// loses the byte-identical-results contract the golden suites pin.
//
// Order-insensitive folds (counting, summing, cancel-all) are legal
// but must say so: annotate the range statement with
// //sabre:nondeterm-ok and a reason, on the same line or the line
// above. Ranges that feed ordered output must sort instead.
package detrange

import (
	"go/ast"

	"repro/internal/analysis/lint"
)

// Analyzer flags range statements over map-typed expressions.
var Analyzer = &lint.Analyzer{
	Name: "detrange",
	Doc: "flags range over maps in determinism-critical packages; " +
		"map iteration order is randomized, so order-sensitive consumers break " +
		"byte-identical routing (annotate order-insensitive folds //sabre:nondeterm-ok)",
	Run: run,
}

func run(pass *lint.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok || !lint.IsMap(tv.Type) {
			return true
		}
		if pass.Allowed(rng.Pos(), "nondeterm-ok") {
			return true
		}
		pass.Reportf(rng.Pos(),
			"range over map %s iterates in randomized order; sort the keys (or annotate //sabre:nondeterm-ok if the fold is order-insensitive)",
			types(rng.X))
		return true
	})
	return nil
}

// types renders the ranged expression compactly for the message.
func types(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return types(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return types(e.Fun) + "(...)"
	default:
		return "expression"
	}
}
