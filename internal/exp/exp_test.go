package exp

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/workloads"
)

// quickConfig keeps harness tests fast: fewer trials, greedy only.
func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.SabreOpts.Trials = 2
	cfg.RunAStar = false
	return cfg
}

func TestRunTable2SmallClass(t *testing.T) {
	rows, err := RunTable2(workloads.ByClass(workloads.ClassSmall), quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.SabreAdded < 0 || r.SabreAdded%3 != 0 {
			t.Fatalf("%s: bad added gates %d", r.Bench.Name, r.SabreAdded)
		}
		if r.GreedyAdded < 0 {
			t.Fatalf("%s: greedy column missing", r.Bench.Name)
		}
		if r.Gori == 0 || r.DOri == 0 {
			t.Fatalf("%s: original metrics missing", r.Bench.Name)
		}
	}
}

func TestRunTable2WithAStar(t *testing.T) {
	cfg := quickConfig()
	cfg.RunAStar = true
	bench, _ := workloads.ByName("4mod5-v1_22")
	rows, err := RunTable2([]workloads.Benchmark{bench}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.BKAOOM {
		t.Fatal("tiny benchmark tripped the node budget")
	}
	if r.BKAAdded < 0 || r.BKANodes <= 0 {
		t.Fatalf("BKA columns missing: %+v", r)
	}
	// Headline result: SABRE must not be worse than BKA on small cases.
	if r.SabreAdded > r.BKAAdded {
		t.Fatalf("SABRE added %d > BKA %d on a small benchmark", r.SabreAdded, r.BKAAdded)
	}
	out := FormatTable2(rows)
	if !strings.Contains(out, "4mod5-v1_22") {
		t.Fatal("format lost the benchmark name")
	}
}

func TestFormatTable2OOMRendering(t *testing.T) {
	rows := []Table2Row{{Bench: workloads.Benchmark{Name: "x", Class: workloads.ClassQFT, N: 20}, BKAOOM: true, BKAAdded: -1}}
	if !strings.Contains(FormatTable2(rows), "OOM") {
		t.Fatal("OOM row not rendered")
	}
}

func TestRunFig8ProducesTradeoff(t *testing.T) {
	cfg := quickConfig()
	b, _ := workloads.ByName("qft_10")
	pts, err := RunFig8(b, []float64{0.001, 0.05}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if p.NormGates < 1 || p.NormDepth <= 0 {
			t.Fatalf("implausible point %+v", p)
		}
	}
	if out := FormatFig8("qft_10", pts); !strings.Contains(out, "qft_10") {
		t.Fatal("format broken")
	}
}

func TestRunScalingQFT(t *testing.T) {
	cfg := quickConfig()
	cfg.RunAStar = true
	cfg.AStarOpts.NodeBudget = 50000
	rows, err := RunScalingQFT([]int{4, 6}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].N != 4 {
		t.Fatalf("rows wrong: %+v", rows)
	}
	if out := FormatScaling(rows); !strings.Contains(out, "sabre_t") {
		t.Fatal("scaling format broken")
	}
}

func TestVerifyFlagCatchesNothingOnGoodRuns(t *testing.T) {
	cfg := quickConfig()
	cfg.Verify = true
	b, _ := workloads.ByName("ising_model_10")
	if _, err := RunTable2([]workloads.Benchmark{b}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestIsingRowIsOptimal(t *testing.T) {
	// §V-A1: ising rows should be solved with zero added gates.
	cfg := DefaultConfig()
	cfg.RunAStar = false
	cfg.RunGreedy = false
	b, _ := workloads.ByName("ising_model_10")
	rows, err := RunTable2([]workloads.Benchmark{b}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].SabreAdded != 0 {
		t.Fatalf("ising_model_10 added %d gates, want 0", rows[0].SabreAdded)
	}
}

func TestRunSearchSpace(t *testing.T) {
	cfg := quickConfig()
	rows, err := RunSearchSpace([]int{3, 4}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.AvgCandidates <= 0 || r.MaxCandidates > r.Edges {
			t.Fatalf("implausible row %+v", r)
		}
	}
	// The O(N) claim: candidates grow with N but stay bounded by |E|.
	if rows[1].AvgCandidates <= rows[0].AvgCandidates {
		t.Log("candidate count did not grow with N (acceptable, bound still holds)")
	}
	if out := FormatSearchSpace(rows); !strings.Contains(out, "avg_cand") {
		t.Fatal("format broken")
	}
}

func TestRunOptimalityGap(t *testing.T) {
	cfg := quickConfig()
	rows, err := RunOptimalityGap(150, []int64{1, 2}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		if r.SabreAdded < 0 || r.GreedyAdded < 0 {
			t.Fatalf("columns missing: %+v", r)
		}
		// SABRE's gap on known-optimal instances must be far below
		// greedy's (the construction guarantees optimum 0).
		if r.GreedyAdded > 0 && r.SabreAdded > r.GreedyAdded/2 {
			t.Fatalf("seed %d: sabre gap %d vs greedy %d", r.Seed, r.SabreAdded, r.GreedyAdded)
		}
	}
	if out := FormatOptimality(rows); !strings.Contains(out, "mean gap") {
		t.Fatal("format broken")
	}
}

func TestSabreOptionsPropagate(t *testing.T) {
	cfg := quickConfig()
	cfg.SabreOpts.Heuristic = core.HeuristicBasic
	b, _ := workloads.ByName("4mod5-v1_22")
	if _, err := RunTable2([]workloads.Benchmark{b}, cfg); err != nil {
		t.Fatal(err)
	}
}
