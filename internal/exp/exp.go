// Package exp is the experiment harness: it drives the SABRE core and
// the baselines over the Table II workload suite and renders the
// paper's tables and figure series (see DESIGN.md's per-experiment
// index). cmd/benchtab and bench_test.go are thin wrappers around this
// package.
package exp

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/arch"
	"repro/internal/baseline"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/verify"
	"repro/internal/workloads"
)

// Config selects the device and algorithm settings for a run.
type Config struct {
	Device    *arch.Device
	SabreOpts core.Options
	AStarOpts baseline.AStarOptions

	// RunAStar enables the BKA comparison columns (expensive on the
	// larger benchmarks; the budget turns blow-ups into OOM rows).
	RunAStar bool
	// RunGreedy enables the naive-router comparison column.
	RunGreedy bool
	// Verify re-checks every routed circuit for hardware compliance
	// (and GF(2) equivalence when the source circuit is linear).
	Verify bool
}

// DefaultConfig mirrors the paper's evaluation setup on the Q20 chip.
func DefaultConfig() Config {
	return Config{
		Device:    arch.IBMQ20Tokyo(),
		SabreOpts: core.DefaultOptions(),
		AStarOpts: baseline.DefaultAStarOptions(),
		RunAStar:  true,
		RunGreedy: true,
		Verify:    true,
	}
}

// Table2Row is one row of the reproduced Table II.
type Table2Row struct {
	Bench workloads.Benchmark
	Gori  int
	DOri  int

	BKAAdded int // g_add for BKA; -1 when OOM or disabled
	BKAOOM   bool
	BKATime  time.Duration
	BKANodes int

	GreedyAdded int // -1 when disabled

	SabreFirst int // g_la: after first traversal
	SabreAdded int // g_op: after reverse traversal(s)
	SabreTime  time.Duration
	SabreDepth int

	Speedup float64 // BKATime / SabreTime; 0 when unavailable
}

// RunTable2 executes the Table II experiment over the given benchmarks.
func RunTable2(benches []workloads.Benchmark, cfg Config) ([]Table2Row, error) {
	rows := make([]Table2Row, 0, len(benches))
	for _, b := range benches {
		row, err := runOne(b, cfg)
		if err != nil {
			return nil, fmt.Errorf("exp: %s: %w", b.Name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runOne(b workloads.Benchmark, cfg Config) (Table2Row, error) {
	circ := b.Build()
	orig := metrics.Measure(circ)
	row := Table2Row{
		Bench:       b,
		Gori:        orig.Gates,
		DOri:        orig.Depth,
		BKAAdded:    -1,
		GreedyAdded: -1,
	}

	res, err := core.Compile(circ, cfg.Device, cfg.SabreOpts)
	if err != nil {
		return row, err
	}
	if err := checkRouted(circ, res.Circuit, res.InitialLayout, res.FinalLayout, cfg); err != nil {
		return row, err
	}
	row.SabreFirst = res.FirstTraversalAdded
	row.SabreAdded = res.AddedGates
	row.SabreTime = res.Elapsed
	row.SabreDepth = res.Circuit.DecomposeSwaps().Depth()

	if cfg.RunGreedy {
		g, err := baseline.GreedyCompile(circ, cfg.Device)
		if err != nil {
			return row, err
		}
		if err := checkRouted(circ, g.Circuit, g.InitialLayout, g.FinalLayout, cfg); err != nil {
			return row, err
		}
		row.GreedyAdded = g.AddedGates
	}

	if cfg.RunAStar {
		a, err := baseline.AStarCompile(circ, cfg.Device, cfg.AStarOpts)
		switch {
		case errors.Is(err, baseline.ErrBudget):
			row.BKAOOM = true
		case err != nil:
			return row, err
		default:
			if err := checkRouted(circ, a.Circuit, a.InitialLayout, a.FinalLayout, cfg); err != nil {
				return row, err
			}
			row.BKAAdded = a.AddedGates
			row.BKATime = a.Elapsed
			row.BKANodes = a.NodesExpanded
			if row.SabreTime > 0 {
				row.Speedup = float64(row.BKATime) / float64(row.SabreTime)
			}
		}
	}
	return row, nil
}

func checkRouted(orig, routed *circuit.Circuit, init, final []int, cfg Config) error {
	if !cfg.Verify {
		return nil
	}
	if err := verify.HardwareCompliant(routed.DecomposeSwaps(), cfg.Device.Connected); err != nil {
		return err
	}
	for _, g := range orig.Gates() {
		if g.Kind != circuit.KindCX && g.Kind != circuit.KindSwap {
			return nil // non-linear circuit: compliance check only
		}
	}
	return verify.CheckRouted(orig, routed, init, final)
}

// FormatTable2 renders rows in the layout of the paper's Table II.
func FormatTable2(rows []Table2Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-6s %-15s %3s %7s | %8s %9s | %8s | %7s %7s %9s | %8s %6s\n",
		"type", "name", "n", "g_ori", "BKA_gadd", "BKA_t(s)", "greedy", "g_la", "g_op", "sabre_t(s)", "t_ratio", "dg")
	fmt.Fprintln(&sb, strings.Repeat("-", 120))
	for _, r := range rows {
		bka := "OOM"
		bkat := "-"
		if !r.BKAOOM && r.BKAAdded >= 0 {
			bka = fmt.Sprintf("%d", r.BKAAdded)
			bkat = fmt.Sprintf("%.3f", r.BKATime.Seconds())
		} else if !r.BKAOOM {
			bka = "-"
		}
		greedy := "-"
		if r.GreedyAdded >= 0 {
			greedy = fmt.Sprintf("%d", r.GreedyAdded)
		}
		ratio := "-"
		if r.Speedup > 0 {
			ratio = fmt.Sprintf("%.2f", r.Speedup)
		}
		dg := "-"
		if r.BKAAdded >= 0 {
			dg = fmt.Sprintf("%+d", r.BKAAdded-r.SabreAdded)
		}
		fmt.Fprintf(&sb, "%-6s %-15s %3d %7d | %8s %9s | %8s | %7d %7d %9.3f | %8s %6s\n",
			r.Bench.Class, r.Bench.Name, r.Bench.N, r.Gori,
			bka, bkat, greedy,
			r.SabreFirst, r.SabreAdded, r.SabreTime.Seconds(), ratio, dg)
	}
	return sb.String()
}

// Fig8Point is one (δ, normalized gates, normalized depth) sample of
// the Figure 8 trade-off series for one benchmark.
type Fig8Point struct {
	Delta     float64
	NormGates float64 // g_tot / g_ori
	NormDepth float64 // d_out / d_ori
	Gates     int
	Depth     int
}

// DefaultFig8Deltas spans the regime the paper sweeps (δ from 0.001 up;
// beyond ~0.1 both metrics degrade, §V-C).
func DefaultFig8Deltas() []float64 {
	return []float64{0.0001, 0.001, 0.003, 0.01, 0.03, 0.1}
}

// RunFig8 sweeps the decay parameter δ for one benchmark and returns
// the trade-off curve (Figure 8's series for that benchmark).
func RunFig8(b workloads.Benchmark, deltas []float64, cfg Config) ([]Fig8Point, error) {
	circ := b.Build()
	orig := metrics.Measure(circ)
	pts := make([]Fig8Point, 0, len(deltas))
	for _, d := range deltas {
		opts := cfg.SabreOpts
		opts.Heuristic = core.HeuristicDecay
		opts.DecayDelta = d
		res, err := core.Compile(circ, cfg.Device, opts)
		if err != nil {
			return nil, fmt.Errorf("exp: fig8 %s δ=%g: %w", b.Name, d, err)
		}
		m := metrics.Measure(res.Circuit)
		pts = append(pts, Fig8Point{
			Delta:     d,
			NormGates: float64(m.Gates) / float64(orig.Gates),
			NormDepth: float64(m.Depth) / float64(orig.Depth),
			Gates:     m.Gates,
			Depth:     m.Depth,
		})
	}
	return pts, nil
}

// FormatFig8 renders one benchmark's sweep.
func FormatFig8(name string, pts []Fig8Point) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: delta -> (gates g_tot/g_ori, depth d/d_ori)\n", name)
	for _, p := range pts {
		fmt.Fprintf(&sb, "  δ=%-7g g=%5d (%.3f)   d=%5d (%.3f)\n", p.Delta, p.Gates, p.NormGates, p.Depth, p.NormDepth)
	}
	return sb.String()
}

// SearchSpaceRow is one device-size point of the search-space
// experiment (E6): the paper's §IV-C1 complexity argument says SABRE
// scores O(N) SWAP candidates per step while mapping-based search
// explores O(exp(N)) states. We measure both directly.
type SearchSpaceRow struct {
	N             int     // device qubits
	Edges         int     // device couplers (the O(N) bound)
	AvgCandidates float64 // mean SWAP candidates scored per round
	MaxCandidates int
	MaxFront      int
	AStarMaxLayer int // largest per-layer node count for the baseline
	AStarOOM      bool
}

// RunSearchSpace routes a CNOT-dense random workload on square grids of
// growing size, recording the candidate-list statistics (and the A*
// baseline's node counts for contrast).
func RunSearchSpace(sides []int, cfg Config) ([]SearchSpaceRow, error) {
	rows := make([]SearchSpaceRow, 0, len(sides))
	for _, side := range sides {
		dev := arch.Grid(side, side)
		n := side * side
		circ := workloads.RandomCircuit(fmt.Sprintf("ss_%d", n), n, 30*n, 0.9, int64(side))
		opts := cfg.SabreOpts
		opts.Trials = 1
		res, err := core.Compile(circ, dev, opts)
		if err != nil {
			return nil, fmt.Errorf("exp: search space n=%d: %w", n, err)
		}
		row := SearchSpaceRow{
			N:             n,
			Edges:         len(dev.Edges()),
			AvgCandidates: res.Stats.AvgCandidates(),
			MaxCandidates: res.Stats.MaxCandidates,
			MaxFront:      res.Stats.MaxFront,
		}
		if cfg.RunAStar {
			a, err := baseline.AStarCompile(circ, dev, cfg.AStarOpts)
			switch {
			case errors.Is(err, baseline.ErrBudget):
				row.AStarOOM = true
			case err != nil:
				return nil, err
			default:
				row.AStarMaxLayer = a.MaxLayerNodes
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatSearchSpace renders the E6 table.
func FormatSearchSpace(rows []SearchSpaceRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%5s %6s | %10s %8s %8s | %14s\n",
		"N", "|E|", "avg_cand", "max_cand", "max_F", "astar_maxlayer")
	fmt.Fprintln(&sb, strings.Repeat("-", 65))
	for _, r := range rows {
		al := "-"
		if r.AStarOOM {
			al = "OOM"
		} else if r.AStarMaxLayer > 0 {
			al = fmt.Sprintf("%d", r.AStarMaxLayer)
		}
		fmt.Fprintf(&sb, "%5d %6d | %10.1f %8d %8d | %14s\n",
			r.N, r.Edges, r.AvgCandidates, r.MaxCandidates, r.MaxFront, al)
	}
	return sb.String()
}

// OptimalityRow is one sample of the optimality-gap experiment (E7):
// on QUEKO-style benchmarks a zero-SWAP solution exists by
// construction, so a mapper's added gates are pure optimality gap.
// This extends the paper's small-benchmark observation ("SABRE finds
// the optimal mapping for small benchmarks") to device-filling
// instances with a known optimum.
type OptimalityRow struct {
	Seed        int64
	Gates       int
	SabreAdded  int
	GreedyAdded int
}

// RunOptimalityGap measures SABRE (and greedy) on known-optimal
// instances over the configured device.
func RunOptimalityGap(gates int, seeds []int64, cfg Config) ([]OptimalityRow, error) {
	rows := make([]OptimalityRow, 0, len(seeds))
	for _, seed := range seeds {
		circ, _ := workloads.KnownOptimal(cfg.Device, gates, seed)
		opts := cfg.SabreOpts
		opts.Seed = seed
		res, err := core.Compile(circ, cfg.Device, opts)
		if err != nil {
			return nil, fmt.Errorf("exp: optimality seed %d: %w", seed, err)
		}
		if err := checkRouted(circ, res.Circuit, res.InitialLayout, res.FinalLayout, cfg); err != nil {
			return nil, err
		}
		row := OptimalityRow{Seed: seed, Gates: gates, SabreAdded: res.AddedGates, GreedyAdded: -1}
		if cfg.RunGreedy {
			g, err := baseline.GreedyCompile(circ, cfg.Device)
			if err != nil {
				return nil, err
			}
			row.GreedyAdded = g.AddedGates
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatOptimality renders the E7 table with the mean gap.
func FormatOptimality(rows []OptimalityRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%6s %7s | %11s %12s   (optimum is 0 by construction)\n",
		"seed", "g_ori", "sabre_gadd", "greedy_gadd")
	fmt.Fprintln(&sb, strings.Repeat("-", 70))
	var sumS, sumG, nG int
	for _, r := range rows {
		g := "-"
		if r.GreedyAdded >= 0 {
			g = fmt.Sprintf("%d", r.GreedyAdded)
			sumG += r.GreedyAdded
			nG++
		}
		fmt.Fprintf(&sb, "%6d %7d | %11d %12s\n", r.Seed, r.Gates, r.SabreAdded, g)
		sumS += r.SabreAdded
	}
	if len(rows) > 0 {
		fmt.Fprintf(&sb, "mean gap: sabre %.1f", float64(sumS)/float64(len(rows)))
		if nG > 0 {
			fmt.Fprintf(&sb, ", greedy %.1f", float64(sumG)/float64(nG))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ScalingRow is one size point of the scalability experiment (E3):
// SABRE runtime vs the A* baseline's runtime/search size on QFT.
type ScalingRow struct {
	N          int
	Gates      int
	SabreTime  time.Duration
	SabreAdded int
	AStarTime  time.Duration
	AStarNodes int
	AStarAdded int
	AStarOOM   bool
}

// RunScalingQFT runs qft_n for each n, comparing SABRE against A*.
func RunScalingQFT(sizes []int, cfg Config) ([]ScalingRow, error) {
	rows := make([]ScalingRow, 0, len(sizes))
	for _, n := range sizes {
		circ := workloads.QFT(n)
		row := ScalingRow{N: n, Gates: circ.NumGates()}
		res, err := core.Compile(circ, cfg.Device, cfg.SabreOpts)
		if err != nil {
			return nil, fmt.Errorf("exp: scaling qft_%d: %w", n, err)
		}
		row.SabreTime = res.Elapsed
		row.SabreAdded = res.AddedGates
		if cfg.RunAStar {
			a, err := baseline.AStarCompile(circ, cfg.Device, cfg.AStarOpts)
			switch {
			case errors.Is(err, baseline.ErrBudget):
				row.AStarOOM = true
			case err != nil:
				return nil, fmt.Errorf("exp: scaling qft_%d A*: %w", n, err)
			default:
				row.AStarTime = a.Elapsed
				row.AStarNodes = a.NodesExpanded
				row.AStarAdded = a.AddedGates
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatScaling renders the scalability table.
func FormatScaling(rows []ScalingRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%4s %7s | %10s %9s | %10s %10s %9s\n",
		"n", "g_ori", "sabre_t(s)", "s_gadd", "astar_t(s)", "nodes", "a_gadd")
	fmt.Fprintln(&sb, strings.Repeat("-", 75))
	for _, r := range rows {
		at, nodes, ag := "-", "-", "-"
		if r.AStarOOM {
			at, nodes, ag = "OOM", "OOM", "OOM"
		} else if r.AStarTime > 0 || r.AStarNodes > 0 {
			at = fmt.Sprintf("%.3f", r.AStarTime.Seconds())
			nodes = fmt.Sprintf("%d", r.AStarNodes)
			ag = fmt.Sprintf("%d", r.AStarAdded)
		}
		fmt.Fprintf(&sb, "%4d %7d | %10.3f %9d | %10s %10s %9s\n",
			r.N, r.Gates, r.SabreTime.Seconds(), r.SabreAdded, at, nodes, ag)
	}
	return sb.String()
}
