package route

import (
	"context"
	"math/rand"
	"sort"
	"time"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/mapping"
)

// TokenSwapRouter implements core.Router with token-swapping
// permutation routing: instead of scoring one SWAP at a time like
// SABRE, each round picks a target position (a coupling edge) for
// every blocked front-layer gate, then realizes the whole repositioning
// with an approximate token-swapping pass — greedy swaps that maximize
// the decrease of the summed distance-to-target potential, with
// untargeted qubits acting as free-moving blanks. This trades SABRE's
// fine-grained lookahead for whole-layer permutation moves, the
// approach used by permutation-based routers.
//
// Options.Trials independent restarts from random initial mappings run
// under seeds Seed..Seed+Trials-1 and the best routed circuit wins
// (fewest added gates, ties by decomposed depth, then lowest seed).
// The router is deterministic for a fixed Options.Seed and honors ctx
// cancellation at restart boundaries.
type TokenSwapRouter struct{}

// Name implements core.Router.
func (TokenSwapRouter) Name() string { return "tokenswap" }

// Route implements core.Router.
func (TokenSwapRouter) Route(ctx context.Context, circ *circuit.Circuit, dev *arch.Device, opts core.Options) (*core.Result, error) {
	//sabre:nondeterm-ok wall-clock elapsed metric; never feeds routing decisions
	start := time.Now()
	wide, dev, opts, err := widen(circ, dev, opts)
	if err != nil {
		return nil, err
	}

	var best trialBest
	for trial := 0; trial < opts.Trials; trial++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(opts.Seed + int64(trial)))
		pass := routeTokenSwap(wide, dev, mapping.Random(dev.NumQubits(), rng))
		best.consider(pass, addedGates(pass))
	}
	return best.result(opts.Trials, time.Since(start)), nil
}

// tokenRouter is the mutable state of one token-swapping traversal.
type tokenRouter struct {
	dev  *arch.Device
	circ *circuit.Circuit
	dag  *circuit.DAG

	layout mapping.Layout
	inDeg  []int
	ready  []int // dependencies met, executability unchecked
	front  []int // two-qubit gates blocked on connectivity
	out    []circuit.Gate
	swaps  int

	// tgt[q] is logical qubit q's target physical position for the
	// current token-swapping round, or -1 when q is a blank.
	tgt []int
}

// routeTokenSwap runs one full traversal from the given initial
// layout. circ must already be widened to the device's qubit count.
func routeTokenSwap(circ *circuit.Circuit, dev *arch.Device, init mapping.Layout) core.PassResult {
	tr := &tokenRouter{
		dev:    dev,
		circ:   circ,
		dag:    circuit.BuildDAG(circ),
		layout: init.Clone(),
		tgt:    make([]int, dev.NumQubits()),
	}
	tr.inDeg = tr.dag.InDegrees()
	for i, deg := range tr.inDeg {
		if deg == 0 {
			tr.ready = append(tr.ready, i)
		}
	}
	for {
		tr.drain()
		if len(tr.front) == 0 {
			break
		}
		tr.routeRound()
	}
	out := circuit.NewNamed(circ.Name(), dev.NumQubits())
	out.Append(tr.out...)
	return core.PassResult{
		Circuit:       out,
		InitialLayout: init.Clone(),
		FinalLayout:   tr.layout,
		SwapCount:     tr.swaps,
	}
}

// drain executes every gate whose dependencies are met and whose
// physical qubits (for two-qubit gates) are coupled, maintaining the
// blocked front layer.
func (tr *tokenRouter) drain() {
	for {
		progress := false
		for len(tr.ready) > 0 {
			g := tr.ready[len(tr.ready)-1]
			tr.ready = tr.ready[:len(tr.ready)-1]
			if tr.executable(g) {
				tr.execute(g)
				progress = true
			} else {
				tr.front = append(tr.front, g)
			}
		}
		keep := tr.front[:0]
		for _, g := range tr.front {
			if tr.executable(g) {
				tr.execute(g)
				progress = true
			} else {
				keep = append(keep, g)
			}
		}
		tr.front = keep
		if !progress {
			return
		}
	}
}

func (tr *tokenRouter) executable(g int) bool {
	gate := tr.circ.Gate(g)
	if !gate.TwoQubit() {
		return true
	}
	return tr.dev.Connected(tr.layout.Phys(gate.Q0), tr.layout.Phys(gate.Q1))
}

func (tr *tokenRouter) execute(g int) {
	gate := tr.circ.Gate(g)
	tr.out = append(tr.out, gate.Remap(tr.layout.Phys))
	for _, s := range tr.dag.Successors(g) {
		tr.inDeg[s]--
		if tr.inDeg[s] == 0 {
			tr.ready = append(tr.ready, s)
		}
	}
}

// routeRound assigns a destination edge to every blocked front gate it
// can reserve one for, then runs the token swapper to realize all the
// assignments at once. The first front gate always gets an edge, so
// each round unblocks at least one gate and the traversal terminates.
func (tr *tokenRouter) routeRound() {
	// Deterministic assignment order: gate index, i.e. circuit order.
	front := append([]int(nil), tr.front...)
	sort.Ints(front)

	for q := range tr.tgt {
		tr.tgt[q] = -1
	}
	reserved := make([]bool, tr.dev.NumQubits())
	assigned := 0
	for _, gi := range front {
		g := tr.circ.Gate(gi)
		pa, pb := tr.layout.Phys(g.Q0), tr.layout.Phys(g.Q1)
		bestEdge, bestCost, flip := arch.Edge{}, -1, false
		for _, e := range tr.dev.Edges() {
			if reserved[e.A] || reserved[e.B] {
				continue
			}
			straight := tr.dev.Distance(pa, e.A) + tr.dev.Distance(pb, e.B)
			crossed := tr.dev.Distance(pa, e.B) + tr.dev.Distance(pb, e.A)
			cost, crossedBetter := straight, false
			if crossed < straight {
				cost, crossedBetter = crossed, true
			}
			// Strict improvement keeps the earliest edge on ties:
			// Edges() order is canonical, so the choice is
			// deterministic.
			if bestCost < 0 || cost < bestCost {
				bestEdge, bestCost, flip = e, cost, crossedBetter
			}
		}
		if bestCost < 0 {
			continue // every remaining edge endpoint is reserved
		}
		reserved[bestEdge.A], reserved[bestEdge.B] = true, true
		if flip {
			tr.tgt[g.Q0], tr.tgt[g.Q1] = bestEdge.B, bestEdge.A
		} else {
			tr.tgt[g.Q0], tr.tgt[g.Q1] = bestEdge.A, bestEdge.B
		}
		assigned++
	}
	if assigned == 0 {
		// Unreachable (the first gate always finds a free edge), but
		// never loop silently if the invariant breaks.
		tr.forceOldest(front[0])
		return
	}
	tr.swapToTargets(front[0])
}

// potential is the summed distance of every targeted token to its
// destination — the objective the greedy swapper descends.
func (tr *tokenRouter) potential() int {
	sum := 0
	for q, t := range tr.tgt {
		if t >= 0 {
			sum += tr.dev.Distance(tr.layout.Phys(q), t)
		}
	}
	return sum
}

// swapDelta is the change in potential from swapping the tokens on
// physical qubits a and b.
func (tr *tokenRouter) swapDelta(a, b int) int {
	delta := 0
	if t := tr.tgt[tr.layout.Log(a)]; t >= 0 {
		delta += tr.dev.Distance(b, t) - tr.dev.Distance(a, t)
	}
	if t := tr.tgt[tr.layout.Log(b)]; t >= 0 {
		delta += tr.dev.Distance(a, t) - tr.dev.Distance(b, t)
	}
	return delta
}

// swapToTargets realizes the current target assignment with greedy
// token swapping: apply the edge swap with the most negative potential
// delta; when only zero-delta swaps remain, step the lowest misplaced
// token along a shortest path toward its target. A stall bound guards
// the (rare) oscillating local minima by falling back to deterministic
// shortest-path routing of the oldest blocked gate.
func (tr *tokenRouter) swapToTargets(oldest int) {
	stall, maxStall := 0, tr.dev.Diameter()+4
	// The potential is maintained incrementally: every change to it
	// goes through a swap whose exact delta is already in hand.
	for pot := tr.potential(); pot > 0; {
		bestEdge, bestDelta := arch.Edge{}, 1
		for _, e := range tr.dev.Edges() {
			if d := tr.swapDelta(e.A, e.B); d < bestDelta {
				bestEdge, bestDelta = e, d
			}
		}
		if bestDelta < 0 {
			tr.applySwap(bestEdge)
			pot += bestDelta
			stall = 0
			continue
		}
		// No strictly improving swap: walk the lowest misplaced token
		// one step along a shortest path (its own distance drops by 1;
		// the displaced token may pay it back, hence the stall bound).
		stepped := false
		for q, t := range tr.tgt {
			if t < 0 || tr.layout.Phys(q) == t {
				continue
			}
			path := tr.dev.ShortestPath(tr.layout.Phys(q), t)
			e := arch.NewEdge(path[0], path[1])
			pot += tr.swapDelta(e.A, e.B)
			tr.applySwap(e)
			stepped = true
			break
		}
		stall++
		if !stepped || stall > maxStall {
			tr.forceOldest(oldest)
			return
		}
	}
}

// forceOldest abandons the round's targets and routes the oldest
// blocked gate directly: swap its control along a shortest path until
// adjacent to its target. Bounded by the device diameter and always
// unblocks a gate.
func (tr *tokenRouter) forceOldest(g int) {
	gate := tr.circ.Gate(g)
	path := tr.dev.ShortestPath(tr.layout.Phys(gate.Q0), tr.layout.Phys(gate.Q1))
	for i := 0; i+2 < len(path); i++ {
		tr.applySwap(arch.NewEdge(path[i], path[i+1]))
	}
}

func (tr *tokenRouter) applySwap(e arch.Edge) {
	tr.out = append(tr.out, circuit.Swap(e.A, e.B))
	tr.layout.SwapPhysical(e.A, e.B)
	tr.swaps++
}
