package route

import (
	"context"
	"testing"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/verify"
	"repro/internal/workloads"
)

// newRouters returns the two heuristics this package contributes, with
// small search budgets so tests stay fast.
func newRouters() map[string]core.Router {
	return map[string]core.Router{
		"anneal":    AnnealRouter{Iterations: 16, Chains: 2},
		"tokenswap": TokenSwapRouter{},
	}
}

func testOptions() core.Options {
	opts := core.DefaultOptions()
	opts.Trials = 2
	opts.Seed = 7
	return opts
}

func TestRoutersProduceCompliantCircuits(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	for _, circ := range []*circuit.Circuit{workloads.QFT(8), workloads.GHZ(12)} {
		for name, r := range newRouters() {
			res, err := r.Route(context.Background(), circ, dev, testOptions())
			if err != nil {
				t.Fatalf("%s(%s): %v", name, circ.Name(), err)
			}
			if err := verify.HardwareCompliant(res.Circuit.DecomposeSwaps(), dev.Connected); err != nil {
				t.Fatalf("%s(%s) output not compliant: %v", name, circ.Name(), err)
			}
			if res.AddedGates != 3*(res.SwapCount+res.BridgeCount) {
				t.Fatalf("%s(%s): AddedGates %d != 3*(%d+%d)", name, circ.Name(), res.AddedGates, res.SwapCount, res.BridgeCount)
			}
			if res.TrialsRun != 2 {
				t.Fatalf("%s(%s): TrialsRun = %d, want 2", name, circ.Name(), res.TrialsRun)
			}
		}
	}
}

// TestRoutersPreserveLinearSemantics checks exact GF(2) equivalence of
// the routed output under the reported layouts — the strongest
// correctness check available for CNOT circuits, and the one the
// pipeline's verify pass will apply to these backends.
func TestRoutersPreserveLinearSemantics(t *testing.T) {
	dev := arch.Grid(3, 3)
	circ := circuit.New(6)
	circ.Append(
		circuit.CX(0, 5), circuit.CX(1, 4), circuit.CX(2, 3),
		circuit.CX(5, 1), circuit.CX(3, 0), circuit.CX(4, 2),
		circuit.CX(0, 4), circuit.CX(5, 2),
	)
	for name, r := range newRouters() {
		res, err := r.Route(context.Background(), circ, dev, testOptions())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := verify.CheckRouted(circ, res.Circuit, res.InitialLayout, res.FinalLayout); err != nil {
			t.Fatalf("%s routed circuit not equivalent: %v", name, err)
		}
	}
}

func TestRoutersDeterministicPerSeed(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	circ := workloads.QFT(6)
	for name, r := range newRouters() {
		a, err := r.Route(context.Background(), circ, dev, testOptions())
		if err != nil {
			t.Fatal(err)
		}
		b, err := r.Route(context.Background(), circ, dev, testOptions())
		if err != nil {
			t.Fatal(err)
		}
		if !a.Circuit.Equal(b.Circuit) {
			t.Fatalf("%s: same seed produced different circuits", name)
		}
		if a.AddedGates != b.AddedGates {
			t.Fatalf("%s: same seed produced different costs %d vs %d", name, a.AddedGates, b.AddedGates)
		}
	}
}

func TestRoutersHonorCancellation(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	circ := workloads.QFT(10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, r := range newRouters() {
		if _, err := r.Route(ctx, circ, dev, testOptions()); err != context.Canceled {
			t.Fatalf("%s: err = %v, want context.Canceled", name, err)
		}
	}
}

// TestRoutersHandleSingleQubitDevices is the regression test for the
// rng.Intn(0) panic: a 1-qubit device admits no transposition, and
// routing a 1-qubit circuit on it must succeed without SWAPs.
func TestRoutersHandleSingleQubitDevices(t *testing.T) {
	dev := arch.Line(1)
	circ := circuit.New(1)
	circ.Append(circuit.G1(circuit.KindH, 0))
	for name, r := range newRouters() {
		res, err := r.Route(context.Background(), circ, dev, testOptions())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.SwapCount != 0 {
			t.Fatalf("%s inserted %d SWAPs on a 1-qubit device", name, res.SwapCount)
		}
	}
}

// TestRoutersHonorEdgePruning is the regression test for the
// noise-constraint violation: with MaxEdgeError set, no backend may
// emit a two-qubit gate on an excluded coupler — the same contract the
// sabre backend honors via core's effectiveDevice.
func TestRoutersHonorEdgePruning(t *testing.T) {
	dev := arch.Ring(6)
	bad := arch.NewEdge(2, 3)
	noise := &arch.NoiseModel{Default: 0.01, EdgeError: map[arch.Edge]float64{bad: 0.5}}
	opts := testOptions()
	opts.Noise = noise
	opts.MaxEdgeError = 0.1
	circ := workloads.QFT(6)
	for name, r := range newRouters() {
		res, err := r.Route(context.Background(), circ, dev, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, g := range res.Circuit.DecomposeSwaps().Gates() {
			if g.TwoQubit() && arch.NewEdge(g.Q0, g.Q1) == bad {
				t.Fatalf("%s routed a gate across the excluded coupler %v", name, bad)
			}
		}
	}
}

func TestRoutersRejectOversizedCircuits(t *testing.T) {
	dev := arch.Line(3)
	circ := workloads.GHZ(5)
	for name, r := range newRouters() {
		if _, err := r.Route(context.Background(), circ, dev, testOptions()); err == nil {
			t.Fatalf("%s accepted a circuit wider than the device", name)
		}
	}
}
