package route

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestNamesListsBuiltins(t *testing.T) {
	names := Names()
	for _, want := range []string{"sabre", "greedy", "astar", "anneal", "tokenswap"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("Names() = %v, missing %q", names, want)
		}
	}
	if !sortedStrings(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
}

func sortedStrings(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			return false
		}
	}
	return true
}

func TestNewResolvesEveryRegisteredName(t *testing.T) {
	for _, name := range Names() {
		r, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if got := r.Name(); got != name {
			t.Fatalf("New(%q).Name() = %q", name, got)
		}
	}
}

func TestNewUnknownListsRegisteredRouters(t *testing.T) {
	_, err := New("quantum-annealer-9000")
	if err == nil {
		t.Fatal("unknown router accepted")
	}
	msg := err.Error()
	for _, want := range Names() {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q does not list registered router %q", msg, want)
		}
	}
}

func TestCanonicalAliasesAndDefault(t *testing.T) {
	cases := map[string]string{
		"":          "sabre",
		"sabre":     "sabre",
		"trials":    "sabre",
		"  SABRE  ": "sabre",
		"bka":       "astar",
		"astar":     "astar",
		"anneal":    "anneal",
		"tokenswap": "tokenswap",
	}
	for in, want := range cases {
		got, err := Canonical(in)
		if err != nil {
			t.Fatalf("Canonical(%q): %v", in, err)
		}
		if got != want {
			t.Fatalf("Canonical(%q) = %q, want %q", in, got, want)
		}
	}
	if _, err := Canonical("nope"); err == nil {
		t.Fatal("Canonical accepted an unknown name")
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("duplicate Register", func() {
		Register("sabre", func() core.Router { return nil })
	})
	mustPanic("empty Register", func() {
		Register("", func() core.Router { return nil })
	})
	mustPanic("alias shadowing router", func() {
		RegisterAlias("greedy", "sabre")
	})
	mustPanic("alias to unknown target", func() {
		RegisterAlias("fresh-alias", "not-registered")
	})
	mustPanic("duplicate alias", func() {
		RegisterAlias("bka", "greedy")
	})
	mustPanic("Register shadowing alias", func() {
		Register("bka", func() core.Router { return nil })
	})
}
