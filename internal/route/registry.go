// Package route hosts the router registry: every routing backend
// (core.Router implementation) registers under a short name, and every
// surface that accepts a `route:<name>` string — pipeline RoutePass,
// batch jobs and their cache keys, the sabred daemon's route
// parameter, the sabremap/benchtab flags, the facade — resolves it
// here. Registering a new heuristic makes it a drop-in backend
// everywhere at once.
//
// Built-in backends: sabre (the paper's multi-trial reverse-traversal
// search), greedy and astar (the comparison baselines), anneal
// (simulated annealing over initial mappings, this package), and
// tokenswap (token-swapping permutation routing, this package).
package route

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/baseline"
	"repro/internal/core"
)

// Factory constructs a fresh router instance with its default
// configuration.
type Factory func() core.Router

var (
	mu      sync.RWMutex
	entries = map[string]Factory{}
	aliases = map[string]string{}
)

func init() {
	Register("sabre", func() core.Router { return core.SabreRouter{} })
	Register("greedy", func() core.Router { return baseline.GreedyRouter{} })
	Register("astar", func() core.Router { return baseline.AStarRouter{} })
	Register("anneal", func() core.Router { return AnnealRouter{} })
	Register("tokenswap", func() core.Router { return TokenSwapRouter{} })
	RegisterAlias("trials", "sabre")
	RegisterAlias("bka", "astar")
}

// clean canonicalizes the spelling of a router name.
func clean(name string) string {
	return strings.ToLower(strings.TrimSpace(name))
}

// Register adds a routing backend under name. It panics on an empty
// name or a duplicate registration — both are programmer errors that
// must fail loudly at init time, not surface as resolution surprises
// later.
func Register(name string, factory Factory) {
	name = clean(name)
	if name == "" || factory == nil {
		panic("route: Register needs a non-empty name and a non-nil factory")
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := entries[name]; dup {
		panic(fmt.Sprintf("route: router %q registered twice", name))
	}
	if _, dup := aliases[name]; dup {
		panic(fmt.Sprintf("route: router %q shadows an alias", name))
	}
	entries[name] = factory
}

// RegisterAlias makes alias resolve to the already-registered target
// name. Aliases share the target's identity everywhere (including
// batch cache keys, which store the canonical name).
func RegisterAlias(alias, target string) {
	alias, target = clean(alias), clean(target)
	mu.Lock()
	defer mu.Unlock()
	if _, ok := entries[target]; !ok {
		panic(fmt.Sprintf("route: alias %q targets unregistered router %q", alias, target))
	}
	if _, dup := entries[alias]; dup {
		panic(fmt.Sprintf("route: alias %q shadows a router", alias))
	}
	if _, dup := aliases[alias]; dup {
		panic(fmt.Sprintf("route: alias %q registered twice", alias))
	}
	aliases[alias] = target
}

// Canonical resolves a (possibly aliased) router name to its canonical
// registered form. The empty name means the default backend and
// resolves to "sabre". Unknown names return an error listing every
// registered router.
func Canonical(name string) (string, error) {
	name = clean(name)
	if name == "" {
		return "sabre", nil
	}
	mu.RLock()
	defer mu.RUnlock()
	if target, ok := aliases[name]; ok {
		name = target
	}
	if _, ok := entries[name]; !ok {
		return "", unknownErr(name)
	}
	return name, nil
}

// New resolves name to a fresh router instance. The empty name yields
// the default sabre backend; unknown names return an error listing
// every registered router.
func New(name string) (core.Router, error) {
	canonical, err := Canonical(name)
	if err != nil {
		return nil, err
	}
	mu.RLock()
	factory := entries[canonical]
	mu.RUnlock()
	return factory(), nil
}

// Names returns the canonical registered router names, sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, 0, len(entries))
	//sabre:nondeterm-ok keys collected then sorted below
	for name := range entries {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// unknownErr is the resolution failure; it lists the registered
// routers so a typo in a flag or request is self-diagnosing.
// Called with mu held (read or write).
func unknownErr(name string) error {
	return fmt.Errorf("route: unknown router %q (registered: %s)", name, strings.Join(namesLocked(), "|"))
}
