package route

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/mapping"
)

// AnnealRouter implements core.Router with simulated annealing over
// the space SABRE's restarts only sample: candidate initial mappings,
// each scored by the SWAP-insertion cost of one deterministic routing
// traversal. Neighbouring states differ by one transposition of the
// layout; worse states are accepted with probability exp(-Δ/T) under a
// geometric cooling schedule, so the chain can climb out of the local
// minima a greedy restart is stuck with. Options.Trials independent
// chains run from distinct seeds and the best routed circuit wins
// (fewest added gates, ties by decomposed depth, then lowest seed).
//
// The router is deterministic for a fixed Options.Seed and honors ctx
// cancellation at every annealing step.
type AnnealRouter struct {
	// Iterations is the annealing step count per chain (0 = 64).
	Iterations int

	// Chains overrides Options.Trials as the number of independent
	// annealing chains (0 = Options.Trials).
	Chains int
}

// defaultAnnealIterations balances search quality against the cost of
// one full routing traversal per step.
const defaultAnnealIterations = 64

// Name implements core.Router.
func (AnnealRouter) Name() string { return "anneal" }

// Route implements core.Router.
func (r AnnealRouter) Route(ctx context.Context, circ *circuit.Circuit, dev *arch.Device, opts core.Options) (*core.Result, error) {
	//sabre:nondeterm-ok wall-clock elapsed metric; never feeds routing decisions
	start := time.Now()
	wide, dev, opts, err := widen(circ, dev, opts)
	if err != nil {
		return nil, err
	}
	iters := r.Iterations
	if iters <= 0 {
		iters = defaultAnnealIterations
	}
	chains := r.Chains
	if chains <= 0 {
		chains = opts.Trials
	}
	n := dev.NumQubits()

	// One prepared runner + scratch for the whole search: every
	// annealing step re-routes the same circuit, so the DAG is built
	// once here instead of once per step, and all step traversals
	// reuse the same warm buffers.
	runner := core.NewPassRunner(wide, dev, opts)
	scratch := core.NewScratch()

	var best trialBest
	for chain := 0; chain < chains; chain++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(opts.Seed + int64(chain)))
		cur := mapping.Random(n, rng)
		curPass, err := runner.RunContext(ctx, cur, rng, scratch)
		if err != nil {
			return nil, err
		}
		curCost := addedGates(curPass)
		best.consider(curPass, curCost)

		if n < 2 {
			// No transposition exists on a single-qubit device; the
			// chain is just its starting traversal.
			continue
		}
		// Temperature is scaled to the chain's starting cost so the
		// early acceptance rate is workload-independent; it then cools
		// geometrically to ~2% of the start.
		t0 := math.Max(1, float64(curCost)/3)
		cooling := math.Pow(0.02, 1/math.Max(1, float64(iters-1)))
		temp := t0
		for i := 0; i < iters; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			cand := cur.Clone()
			a := rng.Intn(n)
			b := rng.Intn(n - 1)
			if b >= a {
				b++
			}
			cand.SwapPhysical(a, b)
			candPass, err := runner.RunContext(ctx, cand, rng, scratch)
			if err != nil {
				return nil, err
			}
			candCost := addedGates(candPass)
			if candCost <= curCost || rng.Float64() < math.Exp(float64(curCost-candCost)/temp) {
				cur, curPass, curCost = cand, candPass, candCost
				best.consider(curPass, curCost)
			}
			temp *= cooling
		}
	}
	return best.result(chains, time.Since(start)), nil
}

// trialBest tracks the incumbent routed traversal across chains with
// the deterministic comparator (cost, then decomposed depth, then
// chain order). Depth is only computed on cost ties, keeping the hot
// path to one routing pass per step.
type trialBest struct {
	pass  core.PassResult
	cost  int
	depth int
	set   bool
}

func (b *trialBest) consider(pass core.PassResult, cost int) {
	if b.set && cost > b.cost {
		return
	}
	depth := pass.Circuit.DecomposeSwaps().Depth()
	// Cost tie: later finds only win on strictly smaller depth, so the
	// earliest chain keeps remaining ties (lowest-seed rule).
	if b.set && cost == b.cost && depth >= b.depth {
		return
	}
	b.pass = pass
	b.cost = cost
	b.depth = depth
	b.set = true
}

func (b *trialBest) result(trials int, elapsed time.Duration) *core.Result {
	return passToResult(b.pass, trials, elapsed)
}

// addedGates is the routing cost of one traversal: 3 gates per SWAP
// and per bridge.
func addedGates(p core.PassResult) int {
	return 3 * (p.SwapCount + p.BridgeCount)
}

// passToResult lifts a single traversal's PassResult to the Router
// result contract.
func passToResult(p core.PassResult, trials int, elapsed time.Duration) *core.Result {
	added := addedGates(p)
	return &core.Result{
		Circuit:             p.Circuit,
		InitialLayout:       p.InitialLayout.LogicalToPhysical(),
		FinalLayout:         p.FinalLayout.LogicalToPhysical(),
		SwapCount:           p.SwapCount,
		BridgeCount:         p.BridgeCount,
		AddedGates:          added,
		FirstTraversalAdded: added,
		TrialsRun:           trials,
		Stats:               p.Stats,
		Elapsed:             elapsed,
	}
}

// widen mirrors core.Prepare for routers that drive core.RoutePass
// directly: it applies the noise-driven edge pruning of
// Options.MaxEdgeError (so these backends honor the same
// excluded-coupler contract as sabre), validates circ against the
// effective device, and pads the circuit to the device width. It also
// resolves the Trials default this package reads itself (RoutePass
// normalizes the remaining knobs internally). Routing must happen on
// the returned device.
func widen(circ *circuit.Circuit, dev *arch.Device, opts core.Options) (*circuit.Circuit, *arch.Device, core.Options, error) {
	if opts.Noise != nil && opts.MaxEdgeError > 0 {
		dev = arch.PruneUnreliableEdges(dev, opts.Noise, opts.MaxEdgeError)
	}
	if circ.NumQubits() > dev.NumQubits() {
		return nil, nil, opts, fmt.Errorf("route: circuit needs %d qubits but device %s has %d",
			circ.NumQubits(), dev.Name(), dev.NumQubits())
	}
	if opts.Trials <= 0 {
		opts.Trials = core.DefaultOptions().Trials
	}
	if circ.NumQubits() < dev.NumQubits() {
		circ = circ.Widen(dev.NumQubits())
	}
	return circ, dev, opts, nil
}
