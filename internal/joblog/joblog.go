// Package joblog is the durability layer under the async job queue: an
// append-only, CRC32C-checked, length-prefixed record log of job
// lifecycle transitions. A sabred that crashes — SIGKILL, OOM, power —
// replays the log on the next boot and resumes every job it had
// accepted but not finished, so a worker's backlog survives its death
// (the property that makes fleet-scale shard failover cheap).
//
// Durability costs nothing on the SWAP hot path by construction: the
// log is written at lifecycle transitions only (accepted, started,
// finished, cancelled — a handful of appends per job), never inside a
// routing round. internal/core does not import this package, and a
// regression test pins that.
//
// # On-disk format
//
// One file, "job.log", in the configured directory:
//
//	header:  8 bytes  "SBRJLOG\x01"
//	frame:   u32 body length (big-endian)
//	         u32 CRC32C of body (Castagnoli)
//	         body
//	body:    u8  record version (currently 1)
//	         u8  kind (accepted/started/finished/cancelled)
//	         u64 seq        — the queue's admission sequence
//	         i64 unix nanos — transition wall-clock time
//	         u16 len + job ID
//	         u8  len + final state ("done"/"failed"; finished only)
//	         u32 len + error message (finished only)
//	         u32 len + payload (accepted only: the re-runnable job)
//
// # Failure semantics
//
// A torn tail — a final record cut short by a crash mid-write, or
// whose CRC fails and which extends to end of file — is dropped and
// the file truncated back to the last good record: losing the record
// being written when the machine died is the expected cost of a crash,
// not corruption. A CRC mismatch or malformed frame with valid data
// after it is real corruption and Open fails with the byte offset in
// the error, refusing to silently drop acknowledged work. A record
// version above the one this build writes also fails Open by offset:
// future versions may encode transitions this build would misreplay.
//
// # Compaction
//
// Finished jobs leave dead records behind. Once the live set is a
// small fraction of the log (see Config), the owner rewrites the log
// from the live records alone: Compact writes a fresh file beside the
// log, fsyncs it, and renames it over the old one — atomic on POSIX,
// so a crash at any point leaves either the old log or the new one,
// never a mix.
package joblog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is a lifecycle transition type.
type Kind uint8

// The four transitions a job's lifetime writes. Accepted carries the
// re-runnable payload; Finished carries the terminal state and error.
const (
	KindAccepted  Kind = 1
	KindStarted   Kind = 2
	KindFinished  Kind = 3
	KindCancelled Kind = 4
)

// String names the kind for errors and logs.
func (k Kind) String() string {
	switch k {
	case KindAccepted:
		return "accepted"
	case KindStarted:
		return "started"
	case KindFinished:
		return "finished"
	case KindCancelled:
		return "cancelled"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Record is one logged lifecycle transition.
type Record struct {
	Kind Kind
	// Seq is the queue's admission sequence number — replay re-enters
	// live jobs in Seq order, so the recovered backlog preserves
	// admission order no matter how appends interleaved in the file.
	Seq uint64
	// Time is the transition's wall-clock time in Unix nanoseconds
	// (informational; replay uses it to restore creation times).
	Time int64
	// ID is the job ID the record belongs to.
	ID string
	// State is the terminal state of a KindFinished record ("done" or
	// "failed"); empty otherwise.
	State string
	// Err is the failure message of a KindFinished record.
	Err string
	// Payload is the re-runnable job encoding of a KindAccepted
	// record (the queue's serialized request).
	Payload []byte
}

// FsyncPolicy selects when appends reach stable storage.
type FsyncPolicy int

const (
	// FsyncAlways fsyncs after every append: an acknowledged job is on
	// disk before the caller sees its ID. The default.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval fsyncs on a background timer (Config.Interval):
	// bounded data loss in exchange for amortized sync cost.
	FsyncInterval
	// FsyncNever never fsyncs: the OS flushes when it pleases. For
	// tests and throwaway deployments.
	FsyncNever
)

// String names the policy; it round-trips through ParseFsync.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	}
	return fmt.Sprintf("fsync(%d)", int(p))
}

// ParseFsync parses a policy name (always|interval|never) — the
// daemon's -fsync flag vocabulary.
func ParseFsync(s string) (FsyncPolicy, error) {
	switch s {
	case "always", "":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("joblog: unknown fsync policy %q (always|interval|never)", s)
}

// File is the writable handle the log appends through. *os.File
// implements it; tests substitute a fault-injecting wrapper
// (internal/faults) to fail the Nth write or sync.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// Config configures a Log; the zero value picks sensible defaults.
type Config struct {
	// Fsync selects the durability/throughput trade (default
	// FsyncAlways).
	Fsync FsyncPolicy

	// Interval is the FsyncInterval timer period (default 100ms).
	Interval time.Duration

	// Wrap, when non-nil, wraps the log's file handle — the
	// fault-injection seam. Production leaves it nil.
	Wrap func(File) File

	// Rename overrides the compaction rename (default os.Rename) —
	// the fault-injection seam for torn compactions.
	Rename func(oldpath, newpath string) error
}

// Stats is a snapshot of log counters.
type Stats struct {
	// Records currently in the file (live and dead).
	Records int64 `json:"records"`
	// Bytes is the current file size.
	Bytes int64 `json:"bytes"`
	// Appends since open (not reset by compaction).
	Appends int64 `json:"appends"`
	// Compactions since open.
	Compactions int64 `json:"compactions"`
	// SyncErrors counts failed background fsyncs (FsyncInterval only;
	// FsyncAlways surfaces sync errors on Append directly).
	SyncErrors int64 `json:"sync_errors,omitempty"`
	// TornTail reports that Open dropped a truncated or corrupt final
	// record — the expected residue of a crash mid-append.
	TornTail bool `json:"torn_tail,omitempty"`
}

// Recovered is what Open found in an existing log.
type Recovered struct {
	// Records holds every intact record in file order.
	Records []Record
	// TornTail reports that a truncated/corrupt final record was
	// dropped and the file truncated back to the last good frame.
	TornTail bool
	// TornBytes is how many trailing bytes the torn tail discarded.
	TornBytes int64
}

const (
	logFileName = "job.log"
	tmpFileName = "job.log.compact"

	recordVersion = 1
	frameHeader   = 8 // u32 length + u32 crc

	// maxRecordBytes bounds a single record. The daemon caps request
	// bodies at 16 MB; double that leaves headroom for encoding
	// overhead while keeping a corrupt length field from driving a
	// giant allocation.
	maxRecordBytes = 32 << 20
)

var magic = [8]byte{'S', 'B', 'R', 'J', 'L', 'O', 'G', 1}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// CorruptError reports unreadable log data that is not a torn tail:
// the log cannot be trusted and Open refuses to guess.
type CorruptError struct {
	Path   string
	Offset int64
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("joblog: corrupt record in %s at offset %d: %s", e.Path, e.Offset, e.Reason)
}

// Log is an open job log. Safe for concurrent use.
type Log struct {
	dir  string
	path string
	cfg  Config

	mu      sync.Mutex
	f       *os.File // the real file: truncate/rename/reopen
	w       File     // write path, possibly fault-wrapped
	size    int64
	records int64
	closed  bool

	appends     atomic.Int64
	compactions atomic.Int64
	syncErrs    atomic.Int64
	tornTail    bool

	stopSync chan struct{}
	syncDone chan struct{}
}

// Open opens (creating if absent) the log in dir and replays it. The
// returned Recovered holds every intact record; a torn tail is dropped
// and reported, mid-file corruption or an unknown future record
// version fails with the offending byte offset.
func Open(dir string, cfg Config) (*Log, Recovered, error) {
	if cfg.Interval <= 0 {
		cfg.Interval = 100 * time.Millisecond
	}
	if cfg.Rename == nil {
		cfg.Rename = os.Rename
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, Recovered{}, fmt.Errorf("joblog: %w", err)
	}
	// A leftover compaction temp means a crash mid-compact before the
	// rename; the old log is still authoritative.
	_ = os.Remove(filepath.Join(dir, tmpFileName))

	path := filepath.Join(dir, logFileName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, Recovered{}, fmt.Errorf("joblog: %w", err)
	}
	l := &Log{dir: dir, path: path, cfg: cfg, f: f}
	rec, err := l.replay()
	if err != nil {
		f.Close()
		return nil, Recovered{}, err
	}
	l.w = l.wrap(f)
	l.tornTail = rec.TornTail
	if cfg.Fsync == FsyncInterval {
		l.stopSync = make(chan struct{})
		l.syncDone = make(chan struct{})
		go l.syncLoop()
	}
	return l, rec, nil
}

func (l *Log) wrap(f File) File {
	if l.cfg.Wrap != nil {
		return l.cfg.Wrap(f)
	}
	return f
}

// replay reads the whole file, validating frames. On success the file
// offset is positioned at the end (after truncating any torn tail) and
// l.size/l.records reflect the intact contents.
func (l *Log) replay() (Recovered, error) {
	info, err := l.f.Stat()
	if err != nil {
		return Recovered{}, fmt.Errorf("joblog: %w", err)
	}
	size := info.Size()

	// Empty file: fresh log, write the header.
	if size == 0 {
		if _, err := l.f.Write(magic[:]); err != nil {
			return Recovered{}, fmt.Errorf("joblog: write header: %w", err)
		}
		l.size = int64(len(magic))
		return Recovered{}, nil
	}
	// A file shorter than the header is a crash during creation:
	// nothing was ever acknowledged from it, start over.
	if size < int64(len(magic)) {
		if err := l.reset(); err != nil {
			return Recovered{}, err
		}
		return Recovered{TornTail: true, TornBytes: size}, nil
	}
	var hdr [8]byte
	if _, err := io.ReadFull(l.f, hdr[:]); err != nil {
		return Recovered{}, fmt.Errorf("joblog: read header: %w", err)
	}
	if hdr != magic {
		return Recovered{}, &CorruptError{Path: l.path, Offset: 0, Reason: fmt.Sprintf("bad magic %q", hdr[:])}
	}

	data, err := io.ReadAll(l.f)
	if err != nil {
		return Recovered{}, fmt.Errorf("joblog: read: %w", err)
	}
	var out Recovered
	off := int64(len(magic)) // file offset of the frame being parsed
	i := 0
	for i < len(data) {
		rest := len(data) - i
		if rest < frameHeader {
			// Crash mid-frame-header: torn tail.
			break
		}
		length := binary.BigEndian.Uint32(data[i:])
		sum := binary.BigEndian.Uint32(data[i+4:])
		if int(length) > rest-frameHeader {
			// The declared body overruns EOF: torn tail.
			break
		}
		if length == 0 || length > maxRecordBytes {
			return Recovered{}, &CorruptError{Path: l.path, Offset: off, Reason: fmt.Sprintf("implausible record length %d", length)}
		}
		body := data[i+frameHeader : i+frameHeader+int(length)]
		if crc32.Checksum(body, castagnoli) != sum {
			if i+frameHeader+int(length) == len(data) {
				// The final record's CRC fails: a write the crash cut
				// short. Drop it.
				break
			}
			return Recovered{}, &CorruptError{Path: l.path, Offset: off, Reason: "CRC mismatch"}
		}
		rec, err := decodeRecord(body)
		if err != nil {
			// The body checksummed clean but does not parse — either a
			// future record version or an encoder bug. Refuse to guess.
			return Recovered{}, &CorruptError{Path: l.path, Offset: off, Reason: err.Error()}
		}
		out.Records = append(out.Records, rec)
		i += frameHeader + int(length)
		off += int64(frameHeader) + int64(length)
	}
	if i < len(data) {
		out.TornTail = true
		out.TornBytes = int64(len(data) - i)
		if err := l.f.Truncate(off); err != nil {
			return Recovered{}, fmt.Errorf("joblog: truncate torn tail: %w", err)
		}
		if _, err := l.f.Seek(off, io.SeekStart); err != nil {
			return Recovered{}, fmt.Errorf("joblog: %w", err)
		}
	}
	l.size = off
	l.records = int64(len(out.Records))
	return out, nil
}

// reset truncates the file to a fresh header (crash-during-creation
// recovery).
func (l *Log) reset() error {
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("joblog: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("joblog: %w", err)
	}
	if _, err := l.f.Write(magic[:]); err != nil {
		return fmt.Errorf("joblog: write header: %w", err)
	}
	l.size = int64(len(magic))
	return nil
}

// ErrClosed is reported by appends after Close.
var ErrClosed = errors.New("joblog: log closed")

// Append writes one record. Under FsyncAlways it returns only after
// the record is on stable storage. A failed or short write is rolled
// back (the file truncated to the last good frame) so a later append
// cannot land after garbage and turn a transient write error into
// permanent mid-file corruption.
func (l *Log) Append(r Record) error {
	frame := encodeFrame(r)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if _, err := l.w.Write(frame); err != nil {
		// Best-effort rollback to the last good frame; if even that
		// fails the next Open's torn-tail handling still recovers.
		_ = l.f.Truncate(l.size)
		_, _ = l.f.Seek(l.size, io.SeekStart)
		return fmt.Errorf("joblog: append %s %s: %w", r.Kind, r.ID, err)
	}
	l.size += int64(len(frame))
	l.records++
	l.appends.Add(1)
	if l.cfg.Fsync == FsyncAlways {
		if err := l.w.Sync(); err != nil {
			return fmt.Errorf("joblog: fsync after %s %s: %w", r.Kind, r.ID, err)
		}
	}
	return nil
}

// Records returns the number of records currently in the file (live
// and dead) — the compaction trigger input.
func (l *Log) Records() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records
}

// Stats returns a snapshot of the log counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	records, bytes := l.records, l.size
	l.mu.Unlock()
	return Stats{
		Records:     records,
		Bytes:       bytes,
		Appends:     l.appends.Load(),
		Compactions: l.compactions.Load(),
		SyncErrors:  l.syncErrs.Load(),
		TornTail:    l.tornTail,
	}
}

// Compact atomically replaces the log's contents with exactly the
// given records (the owner's live set): write a fresh file, fsync it,
// rename it over the log, fsync the directory. On any failure the old
// log is left untouched and remains authoritative.
func (l *Log) Compact(live []Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	tmpPath := filepath.Join(l.dir, tmpFileName)
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("joblog: compact: %w", err)
	}
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpPath)
	}
	w := l.wrap(tmp)
	size := int64(len(magic))
	if _, err := w.Write(magic[:]); err != nil {
		cleanup()
		return fmt.Errorf("joblog: compact: write header: %w", err)
	}
	for _, r := range live {
		frame := encodeFrame(r)
		if _, err := w.Write(frame); err != nil {
			cleanup()
			return fmt.Errorf("joblog: compact: %w", err)
		}
		size += int64(len(frame))
	}
	if err := w.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("joblog: compact: fsync: %w", err)
	}
	if err := l.cfg.Rename(tmpPath, l.path); err != nil {
		cleanup()
		return fmt.Errorf("joblog: compact: rename: %w", err)
	}
	// The rename is the commit point: the tmp handle now IS the log
	// file; keep writing through it and retire the old handle.
	syncDir(l.dir)
	l.f.Close()
	l.f = tmp
	l.w = w
	l.size = size
	l.records = int64(len(live))
	l.compactions.Add(1)
	return nil
}

// syncDir fsyncs a directory so a rename survives a crash (best
// effort: some filesystems reject directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// syncLoop is the FsyncInterval background flusher.
func (l *Log) syncLoop() {
	defer close(l.syncDone)
	tick := time.NewTicker(l.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			l.mu.Lock()
			if !l.closed {
				if err := l.w.Sync(); err != nil {
					l.syncErrs.Add(1)
				}
			}
			l.mu.Unlock()
		case <-l.stopSync:
			return
		}
	}
}

// Close flushes and closes the log. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	if l.stopSync != nil {
		close(l.stopSync)
		<-l.syncDone
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var errSync error
	if l.cfg.Fsync != FsyncNever {
		errSync = l.w.Sync()
	}
	if err := l.w.Close(); err != nil && errSync == nil {
		errSync = err
	}
	return errSync
}

// encodeFrame serializes a record with its length+CRC frame header.
func encodeFrame(r Record) []byte {
	bodyLen := 1 + 1 + 8 + 8 + 2 + len(r.ID) + 1 + len(r.State) + 4 + len(r.Err) + 4 + len(r.Payload)
	b := make([]byte, frameHeader, frameHeader+bodyLen)
	b = append(b, recordVersion, byte(r.Kind))
	b = binary.BigEndian.AppendUint64(b, r.Seq)
	b = binary.BigEndian.AppendUint64(b, uint64(r.Time))
	b = binary.BigEndian.AppendUint16(b, uint16(len(r.ID)))
	b = append(b, r.ID...)
	b = append(b, byte(len(r.State)))
	b = append(b, r.State...)
	b = binary.BigEndian.AppendUint32(b, uint32(len(r.Err)))
	b = append(b, r.Err...)
	b = binary.BigEndian.AppendUint32(b, uint32(len(r.Payload)))
	b = append(b, r.Payload...)
	body := b[frameHeader:]
	binary.BigEndian.PutUint32(b[0:], uint32(len(body)))
	binary.BigEndian.PutUint32(b[4:], crc32.Checksum(body, castagnoli))
	return b
}

// decodeRecord parses a CRC-validated body. Errors here mean a future
// record version or a malformed encoding — the caller wraps them with
// the file offset.
func decodeRecord(body []byte) (Record, error) {
	var r Record
	if len(body) < 18 {
		return r, fmt.Errorf("record body too short (%d bytes)", len(body))
	}
	if v := body[0]; v != recordVersion {
		return r, fmt.Errorf("unknown record version %d (this build writes %d)", v, recordVersion)
	}
	r.Kind = Kind(body[1])
	if r.Kind < KindAccepted || r.Kind > KindCancelled {
		return r, fmt.Errorf("unknown record kind %d", body[1])
	}
	r.Seq = binary.BigEndian.Uint64(body[2:])
	r.Time = int64(binary.BigEndian.Uint64(body[10:]))
	i := 18
	take := func(n int, what string) ([]byte, error) {
		if n < 0 || len(body)-i < n {
			return nil, fmt.Errorf("truncated %s field", what)
		}
		out := body[i : i+n]
		i += n
		return out, nil
	}
	if len(body)-i < 2 {
		return r, fmt.Errorf("truncated id length")
	}
	idLen := int(binary.BigEndian.Uint16(body[i:]))
	i += 2
	id, err := take(idLen, "id")
	if err != nil {
		return r, err
	}
	r.ID = string(id)
	if len(body)-i < 1 {
		return r, fmt.Errorf("truncated state length")
	}
	stateLen := int(body[i])
	i++
	state, err := take(stateLen, "state")
	if err != nil {
		return r, err
	}
	r.State = string(state)
	if len(body)-i < 4 {
		return r, fmt.Errorf("truncated error length")
	}
	errLen := int(binary.BigEndian.Uint32(body[i:]))
	i += 4
	msg, err := take(errLen, "error")
	if err != nil {
		return r, err
	}
	r.Err = string(msg)
	if len(body)-i < 4 {
		return r, fmt.Errorf("truncated payload length")
	}
	payLen := int(binary.BigEndian.Uint32(body[i:]))
	i += 4
	payload, err := take(payLen, "payload")
	if err != nil {
		return r, err
	}
	if payLen > 0 {
		r.Payload = append([]byte(nil), payload...)
	}
	if i != len(body) {
		return r, fmt.Errorf("%d trailing bytes after record", len(body)-i)
	}
	return r, nil
}
