package joblog

import (
	"os/exec"
	"strings"
	"testing"
)

// TestCoreDoesNotImportJoblog pins the package doc's claim: durability
// is wired at the job-lifecycle layer, never into the routing hot
// path. internal/core (and everything under it) must not depend on
// this package.
func TestCoreDoesNotImportJoblog(t *testing.T) {
	out, err := exec.Command("go", "list", "-deps", "repro/internal/core").CombinedOutput()
	if err != nil {
		t.Skipf("go list unavailable: %v (%s)", err, out)
	}
	for _, dep := range strings.Fields(string(out)) {
		if strings.Contains(dep, "joblog") {
			t.Fatalf("internal/core depends on %s — durability leaked onto the hot path", dep)
		}
	}
}
