package joblog

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faults"
)

func testRecords() []Record {
	return []Record{
		{Kind: KindAccepted, Seq: 1, Time: 1111, ID: "job-1", Payload: []byte(`{"qasm":"x"}`)},
		{Kind: KindStarted, Seq: 1, Time: 2222, ID: "job-1"},
		{Kind: KindAccepted, Seq: 2, Time: 3333, ID: "job-2", Payload: []byte(`{"qasm":"y"}`)},
		{Kind: KindFinished, Seq: 1, Time: 4444, ID: "job-1", State: "failed", Err: "router exploded"},
		{Kind: KindCancelled, Seq: 2, Time: 5555, ID: "job-2", Err: "cancelled by caller"},
	}
}

func mustOpen(t *testing.T, dir string, cfg Config) (*Log, Recovered) {
	t.Helper()
	l, rec, err := Open(dir, cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec
}

func appendAll(t *testing.T, l *Log, recs []Record) {
	t.Helper()
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatalf("Append(%s %s): %v", r.Kind, r.ID, err)
		}
	}
}

func recordsEqual(t *testing.T, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Kind != w.Kind || g.Seq != w.Seq || g.Time != w.Time ||
			g.ID != w.ID || g.State != w.State || g.Err != w.Err ||
			!bytes.Equal(g.Payload, w.Payload) {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, g, w)
		}
	}
}

func logPath(dir string) string { return filepath.Join(dir, logFileName) }

func TestEmptyLog(t *testing.T) {
	dir := t.TempDir()
	l, rec := mustOpen(t, dir, Config{})
	if len(rec.Records) != 0 || rec.TornTail {
		t.Fatalf("fresh log recovered %+v, want empty", rec)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Reopening the (header-only) file is still an empty, clean log.
	l, rec = mustOpen(t, dir, Config{})
	defer l.Close()
	if len(rec.Records) != 0 || rec.TornTail {
		t.Fatalf("reopened empty log recovered %+v, want empty", rec)
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := testRecords()
	l, _ := mustOpen(t, dir, Config{})
	appendAll(t, l, want)
	if n := l.Records(); n != int64(len(want)) {
		t.Fatalf("Records() = %d, want %d", n, len(want))
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l, rec := mustOpen(t, dir, Config{})
	defer l.Close()
	recordsEqual(t, rec.Records, want)
	if rec.TornTail {
		t.Fatal("clean log reported a torn tail")
	}
	st := l.Stats()
	if st.Records != int64(len(want)) || st.TornTail {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestTornTailTruncatedRecord(t *testing.T) {
	dir := t.TempDir()
	want := testRecords()
	l, _ := mustOpen(t, dir, Config{})
	appendAll(t, l, want)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Simulate a crash mid-append: half a frame of garbage at the tail.
	f, err := os.OpenFile(logPath(dir), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := []byte{0, 0, 0, 99, 1, 2, 3} // declares 99 bytes, delivers 3
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l, rec := mustOpen(t, dir, Config{})
	if !rec.TornTail || rec.TornBytes != int64(len(torn)) {
		t.Fatalf("TornTail=%v TornBytes=%d, want true/%d", rec.TornTail, rec.TornBytes, len(torn))
	}
	recordsEqual(t, rec.Records, want)
	// The log is usable after recovery: append and reopen cleanly.
	extra := Record{Kind: KindStarted, Seq: 2, Time: 6666, ID: "job-2"}
	if err := l.Append(extra); err != nil {
		t.Fatalf("Append after torn-tail recovery: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l, rec = mustOpen(t, dir, Config{})
	defer l.Close()
	recordsEqual(t, rec.Records, append(want, extra))
	if rec.TornTail {
		t.Fatal("second reopen still reports a torn tail")
	}
}

func TestTornTailCorruptFinalRecord(t *testing.T) {
	dir := t.TempDir()
	want := testRecords()
	l, _ := mustOpen(t, dir, Config{})
	appendAll(t, l, want)
	l.Close()
	// Flip a byte inside the FINAL record's body: CRC fails on a frame
	// that reaches EOF — indistinguishable from a cut-short write, so
	// it must be dropped, not fatal.
	data, err := os.ReadFile(logPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(logPath(dir), data, 0o644); err != nil {
		t.Fatal(err)
	}

	l, rec := mustOpen(t, dir, Config{})
	defer l.Close()
	if !rec.TornTail {
		t.Fatal("corrupt final record not reported as torn tail")
	}
	recordsEqual(t, rec.Records, want[:len(want)-1])
}

// frameEnd returns the file offset just past frame n (0-based) — i.e.
// the offset of frame n+1 — by walking the frame headers.
func frameEnd(t *testing.T, dir string, n int) int64 {
	t.Helper()
	data, err := os.ReadFile(logPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	off := int64(len(magic))
	for k := 0; k <= n; k++ {
		length := binary.BigEndian.Uint32(data[off:])
		off += int64(frameHeader) + int64(length)
	}
	return off
}

func TestCorruptionMidFileFailsWithOffset(t *testing.T) {
	dir := t.TempDir()
	want := testRecords()
	l, _ := mustOpen(t, dir, Config{})
	appendAll(t, l, want)
	l.Close()
	// Flip a byte inside record 1's body. Valid records follow, so this
	// is real corruption: Open must refuse, naming record 1's offset.
	rec1 := frameEnd(t, dir, 0)
	f, err := os.OpenFile(logPath(dir), os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xAA}, rec1+frameHeader+3); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, _, err = Open(dir, Config{})
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("Open = %v, want *CorruptError", err)
	}
	if ce.Offset != rec1 {
		t.Fatalf("CorruptError.Offset = %d, want %d", ce.Offset, rec1)
	}
	if ce.Reason != "CRC mismatch" {
		t.Fatalf("CorruptError.Reason = %q", ce.Reason)
	}
}

func TestUnknownFutureRecordVersion(t *testing.T) {
	dir := t.TempDir()
	want := testRecords()[:2]
	l, _ := mustOpen(t, dir, Config{})
	appendAll(t, l, want)
	l.Close()
	// Craft a well-framed record from "the future": version 99, valid
	// CRC. The bytes are intact — this is not a torn tail — but the
	// build cannot know what it means, so Open must fail by offset.
	future := encodeFrame(Record{Kind: KindAccepted, Seq: 9, Time: 7, ID: "job-9"})
	body := future[frameHeader:]
	body[0] = 99
	binary.BigEndian.PutUint32(future[4:], crc32.Checksum(body, castagnoli))
	off := frameEnd(t, dir, len(want)-1)
	f, err := os.OpenFile(logPath(dir), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(future); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, _, err = Open(dir, Config{})
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("Open = %v, want *CorruptError", err)
	}
	if ce.Offset != off {
		t.Fatalf("CorruptError.Offset = %d, want %d", ce.Offset, off)
	}
}

func TestFsyncFailureSurfacesOnAppend(t *testing.T) {
	dir := t.TempDir()
	inj := faults.NewInjector().FailAt(faults.OpSync, 1)
	l, _ := mustOpen(t, dir, Config{
		Fsync: FsyncAlways,
		Wrap:  func(f File) File { return faults.NewFile(f, inj) },
	})
	defer l.Close()
	err := l.Append(testRecords()[0])
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("Append under failing fsync = %v, want ErrInjected", err)
	}
	// The write itself landed; the next append (sync #2) succeeds.
	if err := l.Append(testRecords()[1]); err != nil {
		t.Fatalf("Append after fsync recovery: %v", err)
	}
}

func TestWriteFailureRollsBack(t *testing.T) {
	dir := t.TempDir()
	inj := faults.NewInjector().FailAt(faults.OpWrite, 1)
	l, _ := mustOpen(t, dir, Config{
		Fsync: FsyncNever,
		Wrap:  func(f File) File { return faults.NewFile(f, inj) },
	})
	recs := testRecords()
	if err := l.Append(recs[0]); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("Append = %v, want ErrInjected", err)
	}
	// The failed append rolled back; the survivor is the only record.
	if err := l.Append(recs[1]); err != nil {
		t.Fatalf("Append after rollback: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l, rec := mustOpen(t, dir, Config{})
	defer l.Close()
	recordsEqual(t, rec.Records, recs[1:2])
	if rec.TornTail {
		t.Fatal("rollback left a torn tail")
	}
}

func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Config{})
	appendAll(t, l, testRecords())
	live := []Record{
		{Kind: KindAccepted, Seq: 2, Time: 3333, ID: "job-2", Payload: []byte(`{"qasm":"y"}`)},
	}
	if err := l.Compact(live); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if n := l.Records(); n != 1 {
		t.Fatalf("Records after compact = %d, want 1", n)
	}
	if st := l.Stats(); st.Compactions != 1 {
		t.Fatalf("Compactions = %d, want 1", st.Compactions)
	}
	// The post-rename handle keeps working: appends land in the new
	// file and survive a reopen alongside the compacted live set.
	extra := Record{Kind: KindStarted, Seq: 2, Time: 9999, ID: "job-2"}
	if err := l.Append(extra); err != nil {
		t.Fatalf("Append after compact: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l, rec := mustOpen(t, dir, Config{})
	defer l.Close()
	recordsEqual(t, rec.Records, append(live, extra))
}

func TestCompactionRenameFailureKeepsOldLog(t *testing.T) {
	dir := t.TempDir()
	inj := faults.NewInjector().FailAt(faults.OpRename, 1)
	l, _ := mustOpen(t, dir, Config{Rename: inj.Rename(os.Rename)})
	want := testRecords()
	appendAll(t, l, want)
	if err := l.Compact(want[:1]); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("Compact = %v, want ErrInjected", err)
	}
	// The failed compaction left no temp file and the old log is
	// authoritative, still serving every record.
	if _, err := os.Stat(filepath.Join(dir, tmpFileName)); !os.IsNotExist(err) {
		t.Fatalf("compaction temp file survived a failed rename (stat err %v)", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l, rec := mustOpen(t, dir, Config{})
	defer l.Close()
	recordsEqual(t, rec.Records, want)
}

func TestLeftoverCompactionTempIsRemoved(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Config{})
	appendAll(t, l, testRecords()[:1])
	l.Close()
	// A crash between writing the temp and the rename leaves the temp
	// behind; the old log must stay authoritative on the next Open.
	tmp := filepath.Join(dir, tmpFileName)
	if err := os.WriteFile(tmp, []byte("half-written compaction"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, rec := mustOpen(t, dir, Config{})
	defer l.Close()
	recordsEqual(t, rec.Records, testRecords()[:1])
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("leftover temp not removed (stat err %v)", err)
	}
}

func TestCrashDuringCreation(t *testing.T) {
	dir := t.TempDir()
	// A file shorter than the header means the process died while
	// creating the log; nothing was ever acknowledged from it.
	if err := os.WriteFile(logPath(dir), []byte{'S', 'B', 'R'}, 0o644); err != nil {
		t.Fatal(err)
	}
	l, rec := mustOpen(t, dir, Config{})
	defer l.Close()
	if len(rec.Records) != 0 || !rec.TornTail || rec.TornBytes != 3 {
		t.Fatalf("recovered %+v, want empty with 3 torn bytes", rec)
	}
	if err := l.Append(testRecords()[0]); err != nil {
		t.Fatalf("Append after re-creation: %v", err)
	}
}

func TestBadMagicIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(logPath(dir), []byte("NOTALOG!extra"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(dir, Config{})
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Offset != 0 {
		t.Fatalf("Open = %v, want *CorruptError at offset 0", err)
	}
}

func TestAppendAfterClose(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Config{})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testRecords()[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestParseFsync(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FsyncPolicy
		ok   bool
	}{
		{"always", FsyncAlways, true},
		{"", FsyncAlways, true},
		{"interval", FsyncInterval, true},
		{"never", FsyncNever, true},
		{"sometimes", 0, false},
	} {
		got, err := ParseFsync(tc.in)
		if tc.ok != (err == nil) || (tc.ok && got != tc.want) {
			t.Fatalf("ParseFsync(%q) = %v, %v", tc.in, got, err)
		}
		if tc.ok && got.String() != tc.in && tc.in != "" {
			t.Fatalf("round-trip %q -> %q", tc.in, got)
		}
	}
}
