package circuit

import (
	"fmt"
)

// Circuit is an ordered list of gates over NumQubits wires. The zero
// value is an empty circuit on zero qubits; use New for a sized one.
type Circuit struct {
	numQubits int
	gates     []Gate
	name      string
}

// New returns an empty circuit over n qubits.
func New(n int) *Circuit {
	if n < 0 {
		panic("circuit: negative qubit count")
	}
	return &Circuit{numQubits: n}
}

// NewNamed returns an empty named circuit over n qubits. The name is
// carried through compilation for reporting.
func NewNamed(name string, n int) *Circuit {
	c := New(n)
	c.name = name
	return c
}

// Name returns the circuit's name ("" if unnamed).
func (c *Circuit) Name() string { return c.name }

// SetName sets the circuit's name.
func (c *Circuit) SetName(name string) { c.name = name }

// NumQubits returns the number of wires.
func (c *Circuit) NumQubits() int { return c.numQubits }

// NumGates returns the total gate count g.
func (c *Circuit) NumGates() int { return len(c.gates) }

// Gates returns the gate list. The returned slice must not be modified;
// use Append to extend a circuit.
func (c *Circuit) Gates() []Gate { return c.gates }

// Gate returns the i-th gate.
func (c *Circuit) Gate(i int) Gate { return c.gates[i] }

// Append adds gates to the end of the circuit, validating qubit ranges.
func (c *Circuit) Append(gs ...Gate) *Circuit {
	for _, g := range gs {
		c.mustValidate(g)
		c.gates = append(c.gates, g)
	}
	return c
}

// mustValidate panics when g references wires outside the circuit or a
// two-qubit gate with identical operands. Builder misuse is a
// programming error, hence panic rather than error (matching the
// stdlib convention for index violations).
func (c *Circuit) mustValidate(g Gate) {
	if g.Q0 < 0 || g.Q0 >= c.numQubits {
		panic(fmt.Sprintf("circuit: gate %v qubit %d out of range [0,%d)", g.Kind, g.Q0, c.numQubits))
	}
	if g.TwoQubit() {
		if g.Q1 < 0 || g.Q1 >= c.numQubits {
			panic(fmt.Sprintf("circuit: gate %v qubit %d out of range [0,%d)", g.Kind, g.Q1, c.numQubits))
		}
		if g.Q0 == g.Q1 {
			panic(fmt.Sprintf("circuit: two-qubit gate %v with identical operands q%d", g.Kind, g.Q0))
		}
	}
}

// AppendTrusted appends gates without re-validating qubit ranges. For
// hot paths whose gates are valid by construction — a router remapping
// an already-validated circuit through a qubit bijection — where
// re-validating tens of thousands of gates per traversal is
// measurable. Callers must guarantee every gate references wires
// inside the circuit.
func (c *Circuit) AppendTrusted(gs ...Gate) *Circuit {
	c.gates = append(c.gates, gs...)
	return c
}

// Clone returns a deep copy.
func (c *Circuit) Clone() *Circuit {
	out := &Circuit{numQubits: c.numQubits, name: c.name, gates: make([]Gate, len(c.gates))}
	copy(out.gates, c.gates)
	return out
}

// CountKind returns the number of gates of the given kind.
func (c *Circuit) CountKind(k Kind) int {
	n := 0
	for _, g := range c.gates {
		if g.Kind == k {
			n++
		}
	}
	return n
}

// CountTwoQubit returns the number of two-qubit gates.
func (c *Circuit) CountTwoQubit() int {
	n := 0
	for _, g := range c.gates {
		if g.TwoQubit() {
			n++
		}
	}
	return n
}

// Reverse returns the reverse circuit of paper Fig. 5: the same gates
// in reversed order. The reverse circuit has exactly the same two-qubit
// structure with dependencies mirrored, which is all the reverse
// traversal needs; gate inverses are intentionally not taken because
// routing is insensitive to the unitary details.
func (c *Circuit) Reverse() *Circuit {
	out := &Circuit{numQubits: c.numQubits, name: c.name + "_rev", gates: make([]Gate, len(c.gates))}
	for i, g := range c.gates {
		out.gates[len(c.gates)-1-i] = g
	}
	return out
}

// Depth returns the circuit depth d under ASAP scheduling: each gate
// starts as soon as all gates on its qubits before it have finished,
// every gate taking one time step.
func (c *Circuit) Depth() int {
	if c.numQubits == 0 {
		return 0
	}
	level := make([]int, c.numQubits)
	depth := 0
	for _, g := range c.gates {
		t := level[g.Q0]
		if g.TwoQubit() && level[g.Q1] > t {
			t = level[g.Q1]
		}
		t++
		level[g.Q0] = t
		if g.TwoQubit() {
			level[g.Q1] = t
		}
		if t > depth {
			depth = t
		}
	}
	return depth
}

// DecomposeSwaps returns a copy of the circuit with every SWAP expanded
// into 3 CNOTs (paper Fig. 3a): CX(a,b) CX(b,a) CX(a,b).
func (c *Circuit) DecomposeSwaps() *Circuit {
	out := &Circuit{numQubits: c.numQubits, name: c.name}
	for _, g := range c.gates {
		if g.Kind == KindSwap {
			out.gates = append(out.gates,
				CX(g.Q0, g.Q1), CX(g.Q1, g.Q0), CX(g.Q0, g.Q1))
		} else {
			out.gates = append(out.gates, g)
		}
	}
	return out
}

// InteractionPairs returns the set of distinct unordered logical-qubit
// pairs that share a two-qubit gate, with multiplicities. Used by
// initial-mapping heuristics and by tests that reason about
// embeddability.
func (c *Circuit) InteractionPairs() map[[2]int]int {
	out := make(map[[2]int]int)
	for _, g := range c.gates {
		if !g.TwoQubit() {
			continue
		}
		a, b := g.Q0, g.Q1
		if a > b {
			a, b = b, a
		}
		out[[2]int{a, b}]++
	}
	return out
}

// UsedQubits returns the sorted list of wires touched by at least one gate.
func (c *Circuit) UsedQubits() []int {
	used := make([]bool, c.numQubits)
	for _, g := range c.gates {
		used[g.Q0] = true
		if g.TwoQubit() {
			used[g.Q1] = true
		}
	}
	var out []int
	for q, u := range used {
		if u {
			out = append(out, q)
		}
	}
	return out
}

// Widen returns a copy of the circuit padded to n qubits (n must be at
// least NumQubits). Routing onto a device with N > n physical qubits
// widens the logical circuit with idle ancilla wires first.
func (c *Circuit) Widen(n int) *Circuit {
	if n < c.numQubits {
		panic(fmt.Sprintf("circuit: Widen(%d) below current size %d", n, c.numQubits))
	}
	out := c.Clone()
	out.numQubits = n
	return out
}

// Equal reports structural equality (same wires, same gate list).
func (c *Circuit) Equal(o *Circuit) bool {
	if c.numQubits != o.numQubits || len(c.gates) != len(o.gates) {
		return false
	}
	for i, g := range c.gates {
		h := o.gates[i]
		if g.Kind != h.Kind || g.Q0 != h.Q0 || g.Q1 != h.Q1 || len(g.Params) != len(h.Params) {
			return false
		}
		for j := range g.Params {
			if g.Params[j] != h.Params[j] {
				return false
			}
		}
	}
	return true
}

// String renders a short summary.
func (c *Circuit) String() string {
	return fmt.Sprintf("circuit(%s: n=%d, g=%d, d=%d)", c.name, c.numQubits, len(c.gates), c.Depth())
}
