package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKindTable(t *testing.T) {
	if KindCX.Arity() != 2 || KindH.Arity() != 1 {
		t.Fatal("arity table wrong")
	}
	if KindU3.NumParams() != 3 || KindU2.NumParams() != 2 || KindRZ.NumParams() != 1 || KindCX.NumParams() != 0 {
		t.Fatal("param table wrong")
	}
	if !KindSwap.TwoQubit() || KindMeasure.TwoQubit() {
		t.Fatal("two-qubit table wrong")
	}
	if KindCX.String() != "cx" || KindTdg.String() != "tdg" {
		t.Fatal("names wrong")
	}
}

func TestKindByName(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		got, ok := KindByName(k.String())
		if !ok || got != k {
			t.Fatalf("KindByName(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := KindByName("toffoli"); ok {
		t.Fatal("unknown name accepted")
	}
}

func TestGateConstructors(t *testing.T) {
	g := CX(1, 2)
	if g.Q0 != 1 || g.Q1 != 2 || !g.TwoQubit() {
		t.Fatal("CX constructor wrong")
	}
	h := G1(KindH, 3)
	if h.Q0 != 3 || h.Q1 != -1 || h.TwoQubit() {
		t.Fatal("G1 constructor wrong")
	}
	rz := G1(KindRZ, 0, 1.5)
	if len(rz.Params) != 1 || rz.Params[0] != 1.5 {
		t.Fatal("params wrong")
	}
}

func TestG1Panics(t *testing.T) {
	mustPanic(t, func() { G1(KindCX, 0) })
	mustPanic(t, func() { G1(KindRZ, 0) })     // missing param
	mustPanic(t, func() { G1(KindH, 0, 1.0) }) // extra param
}

func TestGateOnAndQubits(t *testing.T) {
	g := CX(1, 2)
	if !g.On(1) || !g.On(2) || g.On(0) {
		t.Fatal("On wrong")
	}
	if q := g.Qubits(); len(q) != 2 || q[0] != 1 || q[1] != 2 {
		t.Fatal("Qubits wrong")
	}
	h := G1(KindH, 4)
	if q := h.Qubits(); len(q) != 1 || q[0] != 4 {
		t.Fatal("single Qubits wrong")
	}
}

func TestGateRemap(t *testing.T) {
	g := CX(0, 1).Remap(func(q int) int { return q + 10 })
	if g.Q0 != 10 || g.Q1 != 11 {
		t.Fatal("Remap wrong")
	}
	s := G1(KindH, 2).Remap(func(q int) int { return 5 })
	if s.Q0 != 5 || s.Q1 != -1 {
		t.Fatal("Remap single wrong")
	}
}

func TestGateString(t *testing.T) {
	if got := CX(0, 1).String(); got != "cx q[0],q[1]" {
		t.Fatalf("got %q", got)
	}
	if got := G1(KindRZ, 2, 0.5).String(); got != "rz(0.5) q[2]" {
		t.Fatalf("got %q", got)
	}
}

func TestAppendValidation(t *testing.T) {
	c := New(2)
	mustPanic(t, func() { c.Append(CX(0, 2)) })
	mustPanic(t, func() { c.Append(CX(1, 1)) })
	mustPanic(t, func() { c.Append(G1(KindH, -1)) })
	c.Append(CX(0, 1), G1(KindH, 0))
	if c.NumGates() != 2 {
		t.Fatal("append failed")
	}
}

func TestDepth(t *testing.T) {
	// Fig. 3(c): six CNOTs on 4 qubits has depth 5.
	c := New(4)
	c.Append(CX(0, 1), CX(2, 3), CX(1, 3), CX(1, 2), CX(2, 3), CX(0, 3))
	if d := c.Depth(); d != 5 {
		t.Fatalf("Fig 3(c) depth = %d, want 5", d)
	}
	// Fig. 3(d): with the SWAP (as 3 gates...) — paper counts SWAP as
	// one step unit in its d=8 figure using decomposed gates; verify
	// our decomposed version grows depth.
	d2 := New(4)
	d2.Append(CX(0, 1), CX(2, 3), CX(1, 3), Swap(0, 1), CX(1, 2), CX(2, 3), CX(0, 3))
	if d2.DecomposeSwaps().Depth() != 8 {
		t.Fatalf("Fig 3(d) decomposed depth = %d, want 8", d2.DecomposeSwaps().Depth())
	}
	if New(3).Depth() != 0 {
		t.Fatal("empty circuit depth")
	}
	if New(0).Depth() != 0 {
		t.Fatal("zero-qubit circuit depth")
	}
}

func TestParallelGatesDepthOne(t *testing.T) {
	c := New(4)
	c.Append(CX(0, 1), CX(2, 3))
	if c.Depth() != 1 {
		t.Fatalf("disjoint CNOTs depth = %d", c.Depth())
	}
}

func TestReverse(t *testing.T) {
	c := New(3)
	c.Append(CX(0, 1), G1(KindH, 2), CX(1, 2))
	r := c.Reverse()
	if r.Gate(0).Kind != KindCX || r.Gate(0).Q0 != 1 || r.Gate(0).Q1 != 2 {
		t.Fatal("reverse order wrong")
	}
	if !r.Reverse().Equal(c) {
		t.Fatal("double reverse != original")
	}
}

// Property: reverse is an involution and preserves counts/depth.
func TestReverseProperties(t *testing.T) {
	f := func(seed int64) bool {
		c := randomCircuit(seed, 8, 60)
		r := c.Reverse()
		return r.Reverse().Equal(c) &&
			r.NumGates() == c.NumGates() &&
			r.CountTwoQubit() == c.CountTwoQubit() &&
			r.Depth() == c.Depth()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposeSwaps(t *testing.T) {
	c := New(3)
	c.Append(Swap(0, 2), G1(KindH, 1))
	d := c.DecomposeSwaps()
	if d.NumGates() != 4 {
		t.Fatalf("got %d gates", d.NumGates())
	}
	want := []Gate{CX(0, 2), CX(2, 0), CX(0, 2)}
	for i, w := range want {
		if d.Gate(i).Kind != w.Kind || d.Gate(i).Q0 != w.Q0 || d.Gate(i).Q1 != w.Q1 {
			t.Fatalf("gate %d = %v, want %v", i, d.Gate(i), w)
		}
	}
	if c.NumGates() != 2 {
		t.Fatal("DecomposeSwaps mutated receiver")
	}
}

func TestInteractionPairs(t *testing.T) {
	c := New(4)
	c.Append(CX(0, 1), CX(1, 0), CX(2, 3), G1(KindH, 0))
	pairs := c.InteractionPairs()
	if pairs[[2]int{0, 1}] != 2 || pairs[[2]int{2, 3}] != 1 || len(pairs) != 2 {
		t.Fatalf("pairs = %v", pairs)
	}
}

func TestUsedQubitsAndWiden(t *testing.T) {
	c := New(5)
	c.Append(CX(0, 3))
	u := c.UsedQubits()
	if len(u) != 2 || u[0] != 0 || u[1] != 3 {
		t.Fatalf("used = %v", u)
	}
	w := c.Widen(8)
	if w.NumQubits() != 8 || w.NumGates() != 1 {
		t.Fatal("widen wrong")
	}
	mustPanic(t, func() { c.Widen(3) })
}

func TestCounts(t *testing.T) {
	c := New(3)
	c.Append(CX(0, 1), G1(KindH, 0), G1(KindH, 1), Swap(1, 2))
	if c.CountKind(KindH) != 2 || c.CountKind(KindCX) != 1 || c.CountTwoQubit() != 2 {
		t.Fatal("counts wrong")
	}
}

func TestCloneIndependence(t *testing.T) {
	c := New(2)
	c.Append(CX(0, 1))
	cl := c.Clone()
	cl.Append(CX(1, 0))
	if c.NumGates() != 1 {
		t.Fatal("clone shares gate storage")
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

// randomCircuit builds a seeded random circuit used by property tests
// in this package.
func randomCircuit(seed int64, n, g int) *Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := New(n)
	for i := 0; i < g; i++ {
		if rng.Intn(2) == 0 {
			c.Append(G1(KindH, rng.Intn(n)))
		} else {
			a := rng.Intn(n)
			b := rng.Intn(n - 1)
			if b >= a {
				b++
			}
			c.Append(CX(a, b))
		}
	}
	return c
}
