package circuit

import "testing"

// Structural tests for the decomposition library; unitary correctness
// is covered by internal/sim's tests (Toffoli) and internal/qasm's
// qelib1 tests, which simulate against reference truth tables.

func TestToffoliDecompositionShape(t *testing.T) {
	gs := ToffoliDecomposition(0, 1, 2)
	if len(gs) != 15 {
		t.Fatalf("toffoli has %d gates", len(gs))
	}
	cx := 0
	for _, g := range gs {
		if g.Kind == KindCX {
			cx++
		}
	}
	if cx != 6 {
		t.Fatalf("toffoli has %d CNOTs, want 6", cx)
	}
}

func TestDecompositionArities(t *testing.T) {
	cases := []struct {
		name  string
		gates []Gate
		cx    int
	}{
		{"cu1", CU1Decomposition(0.5, 0, 1), 2},
		{"cy", CYDecomposition(0, 1), 1},
		{"ch", CHDecomposition(0, 1), 2},
		{"crz", CRZDecomposition(0.7, 0, 1), 2},
		{"cu3", CU3Decomposition(0.1, 0.2, 0.3, 0, 1), 2},
		{"rzz", RZZDecomposition(0.4, 0, 1), 2},
	}
	for _, tc := range cases {
		cx := 0
		for _, g := range tc.gates {
			if g.Kind == KindCX {
				cx++
			}
			if g.TwoQubit() && g.Q0 == g.Q1 {
				t.Fatalf("%s: degenerate two-qubit gate", tc.name)
			}
		}
		if cx != tc.cx {
			t.Fatalf("%s: %d CNOTs, want %d", tc.name, cx, tc.cx)
		}
	}
	if got := len(CSwapDecomposition(0, 1, 2)); got != 17 {
		t.Fatalf("cswap has %d gates", got)
	}
}

func TestDecompositionsOnlyTouchOperands(t *testing.T) {
	all := [][]Gate{
		ToffoliDecomposition(3, 5, 7),
		CU1Decomposition(1, 3, 5),
		CYDecomposition(3, 5),
		CHDecomposition(3, 5),
		CRZDecomposition(1, 3, 5),
		CU3Decomposition(1, 2, 3, 3, 5),
		RZZDecomposition(1, 3, 5),
	}
	allowed := map[int]bool{3: true, 5: true, 7: true}
	for _, gs := range all {
		for _, g := range gs {
			for _, q := range g.Qubits() {
				if !allowed[q] {
					t.Fatalf("decomposition leaked to qubit %d: %v", q, g)
				}
			}
		}
	}
}
