package circuit

// DAG is the gate-dependency graph of paper Fig. 4, built over every
// gate in the circuit (single-qubit gates are kept as nodes so routers
// can stream them to the output in order; only two-qubit nodes
// constrain the mapping). Gate i depends on gate j when j is the most
// recent earlier gate sharing a qubit with i.
type DAG struct {
	circ  *Circuit
	succs [][]int // successor gate indices
	preds [][]int // predecessor gate indices
	inDeg []int   // initial indegrees
}

// BuildDAG constructs the dependency DAG in O(g) (paper §IV-A).
func BuildDAG(c *Circuit) *DAG {
	g := c.NumGates()
	d := &DAG{
		circ:  c,
		succs: make([][]int, g),
		preds: make([][]int, g),
		inDeg: make([]int, g),
	}
	last := make([]int, c.NumQubits()) // last gate index seen per qubit
	for i := range last {
		last[i] = -1
	}
	for i, gate := range c.Gates() {
		for _, q := range gate.Qubits() {
			if p := last[q]; p >= 0 {
				d.succs[p] = append(d.succs[p], i)
				d.preds[i] = append(d.preds[i], p)
				d.inDeg[i]++
			}
			last[q] = i
		}
	}
	return d
}

// Circuit returns the circuit the DAG was built from.
func (d *DAG) Circuit() *Circuit { return d.circ }

// NumNodes returns the number of gate nodes.
func (d *DAG) NumNodes() int { return len(d.succs) }

// Successors returns the gates that directly depend on gate i.
// The returned slice must not be modified.
func (d *DAG) Successors(i int) []int { return d.succs[i] }

// Predecessors returns the gates that gate i directly depends on.
// The returned slice must not be modified.
func (d *DAG) Predecessors(i int) []int { return d.preds[i] }

// InDegrees returns a fresh copy of the initial indegree array, ready
// to be consumed by a scheduling traversal.
func (d *DAG) InDegrees() []int {
	out := make([]int, len(d.inDeg))
	copy(out, d.inDeg)
	return out
}

// FrontLayer returns the initial front layer F: indices of the
// two-qubit gates with no unexecuted predecessors (paper §IV-A), plus
// the single-qubit gates that precede nothing (they are immediately
// executable and are returned separately).
func (d *DAG) FrontLayer() (twoQubit, singleQubit []int) {
	for i, deg := range d.inDeg {
		if deg != 0 {
			continue
		}
		if d.circ.Gate(i).TwoQubit() {
			twoQubit = append(twoQubit, i)
		} else {
			singleQubit = append(singleQubit, i)
		}
	}
	return twoQubit, singleQubit
}

// TopologicalOrder returns one topological ordering of the gates.
// Because BuildDAG scans gates in program order, 0..g-1 is already
// topological; this method exists for validation and testing.
func (d *DAG) TopologicalOrder() []int {
	deg := d.InDegrees()
	var order []int
	var ready []int
	for i, dg := range deg {
		if dg == 0 {
			ready = append(ready, i)
		}
	}
	for len(ready) > 0 {
		i := ready[0]
		ready = ready[1:]
		order = append(order, i)
		for _, s := range d.succs[i] {
			deg[s]--
			if deg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	return order
}

// Layers partitions the two-qubit gates into dependency layers: layer k
// contains two-qubit gates whose two-qubit depth is k. Gates within a
// layer act on disjoint qubits. This is the layer decomposition used
// by the IBM/Zulehner baselines (paper §VII).
func (d *DAG) Layers() [][]int {
	c := d.circ
	level := make([]int, c.NumQubits())
	var layers [][]int
	for i, g := range c.Gates() {
		if !g.TwoQubit() {
			continue
		}
		t := level[g.Q0]
		if level[g.Q1] > t {
			t = level[g.Q1]
		}
		if t == len(layers) {
			layers = append(layers, nil)
		}
		layers[t] = append(layers[t], i)
		level[g.Q0] = t + 1
		level[g.Q1] = t + 1
	}
	return layers
}
