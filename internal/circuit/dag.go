package circuit

// DAG is the gate-dependency graph of paper Fig. 4, built over every
// gate in the circuit (single-qubit gates are kept as nodes so routers
// can stream them to the output in order; only two-qubit nodes
// constrain the mapping). Gate i depends on gate j when j is the most
// recent earlier gate sharing a qubit with i.
//
// Adjacency is stored in CSR form — one flat edge array plus an offset
// array per direction — so a whole traversal touches two contiguous
// allocations instead of one slice header and backing array per node.
// Successors/Predecessors return subslices of the flat arrays.
type DAG struct {
	circ    *Circuit
	succOff []int32 // succOff[i]:succOff[i+1] bounds node i's successors in succ
	succ    []int   // flat successor gate indices, grouped by node
	predOff []int32 // predOff[i]:predOff[i+1] bounds node i's predecessors in pred
	pred    []int   // flat predecessor gate indices, grouped by node
	inDeg   []int   // initial indegrees
}

// BuildDAG constructs the dependency DAG in O(g) (paper §IV-A): one
// counting pass sizes the CSR arrays exactly, one fill pass populates
// them.
func BuildDAG(c *Circuit) *DAG {
	g := c.NumGates()
	d := &DAG{
		circ:    c,
		succOff: make([]int32, g+1),
		predOff: make([]int32, g+1),
		inDeg:   make([]int, g),
	}
	last := make([]int, c.NumQubits()) // last gate index seen per qubit
	for i := range last {
		last[i] = -1
	}
	// Pass 1: count edges per node. An edge p→i exists per qubit of i
	// whose previous gate is p; both endpoint counts grow together.
	edges := 0
	for i, gate := range c.Gates() {
		for _, q := range gate.Qubits() {
			if p := last[q]; p >= 0 {
				d.succOff[p+1]++
				d.predOff[i+1]++
				d.inDeg[i]++
				edges++
			}
			last[q] = i
		}
	}
	for i := 0; i < g; i++ {
		d.succOff[i+1] += d.succOff[i]
		d.predOff[i+1] += d.predOff[i]
	}
	// Pass 2: fill. Cursors walk each node's CSR range; because gates
	// are scanned in program order, every node's successor (and
	// predecessor) list comes out sorted ascending, matching the order
	// the per-node append construction produced.
	d.succ = make([]int, edges)
	d.pred = make([]int, edges)
	succCur := make([]int32, g)
	predCur := make([]int32, g)
	copy(succCur, d.succOff[:g])
	copy(predCur, d.predOff[:g])
	for i := range last {
		last[i] = -1
	}
	for i, gate := range c.Gates() {
		for _, q := range gate.Qubits() {
			if p := last[q]; p >= 0 {
				d.succ[succCur[p]] = i
				succCur[p]++
				d.pred[predCur[i]] = p
				predCur[i]++
			}
			last[q] = i
		}
	}
	return d
}

// Circuit returns the circuit the DAG was built from.
func (d *DAG) Circuit() *Circuit { return d.circ }

// NumNodes returns the number of gate nodes.
func (d *DAG) NumNodes() int { return len(d.inDeg) }

// Successors returns the gates that directly depend on gate i, as a
// view into the flat CSR edge array. The returned slice must not be
// modified.
func (d *DAG) Successors(i int) []int { return d.succ[d.succOff[i]:d.succOff[i+1]] }

// Predecessors returns the gates that gate i directly depends on, as a
// view into the flat CSR edge array. The returned slice must not be
// modified.
func (d *DAG) Predecessors(i int) []int { return d.pred[d.predOff[i]:d.predOff[i+1]] }

// InDegrees returns a fresh copy of the initial indegree array, ready
// to be consumed by a scheduling traversal.
func (d *DAG) InDegrees() []int {
	out := make([]int, len(d.inDeg))
	copy(out, d.inDeg)
	return out
}

// InDegreesInto copies the initial indegree array into dst, growing it
// only when its capacity is short, and returns the sized slice. Reusing
// one buffer across traversals keeps repeated routing passes off the
// allocator.
func (d *DAG) InDegreesInto(dst []int) []int {
	if cap(dst) < len(d.inDeg) {
		dst = make([]int, len(d.inDeg))
	}
	dst = dst[:len(d.inDeg)]
	copy(dst, d.inDeg)
	return dst
}

// FrontLayer returns the initial front layer F: indices of the
// two-qubit gates with no unexecuted predecessors (paper §IV-A), plus
// the single-qubit gates that precede nothing (they are immediately
// executable and are returned separately).
func (d *DAG) FrontLayer() (twoQubit, singleQubit []int) {
	for i, deg := range d.inDeg {
		if deg != 0 {
			continue
		}
		if d.circ.Gate(i).TwoQubit() {
			twoQubit = append(twoQubit, i)
		} else {
			singleQubit = append(singleQubit, i)
		}
	}
	return twoQubit, singleQubit
}

// TopologicalOrder returns one topological ordering of the gates.
// Because BuildDAG scans gates in program order, 0..g-1 is already
// topological; this method exists for validation and testing.
func (d *DAG) TopologicalOrder() []int {
	deg := d.InDegrees()
	var order []int
	var ready []int
	for i, dg := range deg {
		if dg == 0 {
			ready = append(ready, i)
		}
	}
	for len(ready) > 0 {
		i := ready[0]
		ready = ready[1:]
		order = append(order, i)
		for _, s := range d.Successors(i) {
			deg[s]--
			if deg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	return order
}

// Layers partitions the two-qubit gates into dependency layers: layer k
// contains two-qubit gates whose two-qubit depth is k. Gates within a
// layer act on disjoint qubits. This is the layer decomposition used
// by the IBM/Zulehner baselines (paper §VII).
func (d *DAG) Layers() [][]int {
	c := d.circ
	level := make([]int, c.NumQubits())
	var layers [][]int
	for i, g := range c.Gates() {
		if !g.TwoQubit() {
			continue
		}
		t := level[g.Q0]
		if level[g.Q1] > t {
			t = level[g.Q1]
		}
		if t == len(layers) {
			layers = append(layers, nil)
		}
		layers[t] = append(layers[t], i)
		level[g.Q0] = t + 1
		level[g.Q1] = t + 1
	}
	return layers
}
