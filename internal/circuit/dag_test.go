package circuit

import (
	"testing"
	"testing/quick"
)

// fig4Circuit reproduces the dependency structure of paper Fig. 4:
// g1..g8 over q1..q6 (0-indexed here), single-qubit gates interleaved.
func fig4Circuit() *Circuit {
	c := New(6)
	c.Append(
		G1(KindH, 0), // 0
		CX(1, 2),     // 1: g1 on q2,q3
		CX(3, 5),     // 2: g2 on q4,q6
		G1(KindH, 4), // 3
		CX(1, 3),     // 4: g3 on q2,q4
		CX(2, 3),     // 5: g4 on q3,q4
		CX(0, 1),     // 6: g5 on q1,q2
		CX(3, 4),     // 7: g6 on q4,q5
	)
	return c
}

func TestBuildDAGDependencies(t *testing.T) {
	c := fig4Circuit()
	d := BuildDAG(c)
	// g3 (index 4, on q1&q3) depends on g1 (index 1) via q1 and on g2
	// (index 2) via q3.
	preds := d.Predecessors(4)
	if len(preds) != 2 || !containsInt(preds, 1) || !containsInt(preds, 2) {
		t.Fatalf("g3 preds = %v", preds)
	}
	// g1 has no predecessors among gates... gate 1 acts on q1,q2 (fresh).
	if len(d.Predecessors(1)) != 0 {
		t.Fatalf("g1 preds = %v", d.Predecessors(1))
	}
	// Successor symmetry.
	for i := 0; i < d.NumNodes(); i++ {
		for _, s := range d.Successors(i) {
			if !containsInt(d.Predecessors(s), i) {
				t.Fatalf("succ/pred asymmetry %d->%d", i, s)
			}
		}
	}
}

func TestFrontLayer(t *testing.T) {
	c := fig4Circuit()
	two, single := BuildDAG(c).FrontLayer()
	// Initial F = {g1, g2} (paper Fig. 4); indices 1 and 2.
	if len(two) != 2 || !containsInt(two, 1) || !containsInt(two, 2) {
		t.Fatalf("front layer = %v", two)
	}
	// The two H gates (0 and 3) are immediately executable.
	if len(single) != 2 || !containsInt(single, 0) || !containsInt(single, 3) {
		t.Fatalf("single front = %v", single)
	}
}

func TestTopologicalOrderIsValid(t *testing.T) {
	c := fig4Circuit()
	d := BuildDAG(c)
	order := d.TopologicalOrder()
	if len(order) != c.NumGates() {
		t.Fatalf("topological order covers %d of %d gates", len(order), c.NumGates())
	}
	pos := make([]int, len(order))
	for idx, g := range order {
		pos[g] = idx
	}
	for i := 0; i < d.NumNodes(); i++ {
		for _, s := range d.Successors(i) {
			if pos[i] >= pos[s] {
				t.Fatalf("order violates edge %d->%d", i, s)
			}
		}
	}
}

func TestInDegreesCopy(t *testing.T) {
	d := BuildDAG(fig4Circuit())
	a := d.InDegrees()
	a[0] = 99
	if d.InDegrees()[0] == 99 {
		t.Fatal("InDegrees exposes internal state")
	}
}

func TestLayersDisjointAndOrdered(t *testing.T) {
	c := fig4Circuit()
	layers := BuildDAG(c).Layers()
	// Layer 0 must be {g1, g2}; they act on disjoint qubits.
	if len(layers[0]) != 2 {
		t.Fatalf("layer0 = %v", layers[0])
	}
	seenAt := make(map[int]int)
	for li, layer := range layers {
		occupied := map[int]bool{}
		for _, gi := range layer {
			g := c.Gate(gi)
			if occupied[g.Q0] || occupied[g.Q1] {
				t.Fatalf("layer %d has overlapping gates", li)
			}
			occupied[g.Q0], occupied[g.Q1] = true, true
			seenAt[gi] = li
		}
	}
	// Dependencies must not be within or behind their predecessors' layer.
	d := BuildDAG(c)
	for gi, li := range seenAt {
		for _, p := range d.Predecessors(gi) {
			if c.Gate(p).TwoQubit() && seenAt[p] >= li {
				t.Fatalf("gate %d in layer %d not after predecessor %d in layer %d", gi, li, p, seenAt[p])
			}
		}
	}
}

// Property: on random circuits the DAG is acyclic with a complete
// topological order, and the front layer is exactly the 0-indegree set.
func TestDAGProperties(t *testing.T) {
	f := func(seed int64) bool {
		c := randomCircuit(seed, 7, 50)
		d := BuildDAG(c)
		if len(d.TopologicalOrder()) != c.NumGates() {
			return false
		}
		two, single := d.FrontLayer()
		count := 0
		for i, deg := range d.InDegrees() {
			if deg == 0 {
				count++
				if c.Gate(i).TwoQubit() != containsInt(two, i) {
					return false
				}
				if !c.Gate(i).TwoQubit() && !containsInt(single, i) {
					return false
				}
			}
		}
		return count == len(two)+len(single)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: every two-qubit gate appears in exactly one layer.
func TestLayersPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		c := randomCircuit(seed, 6, 40)
		total := 0
		for _, l := range BuildDAG(c).Layers() {
			total += len(l)
		}
		return total == c.CountTwoQubit()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyCircuitDAG(t *testing.T) {
	d := BuildDAG(New(3))
	if d.NumNodes() != 0 {
		t.Fatal("empty DAG has nodes")
	}
	two, single := d.FrontLayer()
	if len(two) != 0 || len(single) != 0 {
		t.Fatal("empty DAG has front layer")
	}
	if len(d.Layers()) != 0 {
		t.Fatal("empty DAG has layers")
	}
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
