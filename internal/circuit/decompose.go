package circuit

// ToffoliDecomposition returns the standard 15-gate decomposition of a
// Toffoli (CCX) gate into {H, T, T†, CX} — paper Fig. 1. RevLib
// arithmetic benchmarks are Toffoli networks, so this decomposition
// fixes their elementary-gate shape.
func ToffoliDecomposition(c1, c2, target int) []Gate {
	return []Gate{
		G1(KindH, target),
		CX(c2, target),
		G1(KindTdg, target),
		CX(c1, target),
		G1(KindT, target),
		CX(c2, target),
		G1(KindTdg, target),
		CX(c1, target),
		G1(KindT, c2),
		G1(KindT, target),
		G1(KindH, target),
		CX(c1, c2),
		G1(KindT, c1),
		G1(KindTdg, c2),
		CX(c1, c2),
	}
}

// CU1Decomposition returns the textbook decomposition of a controlled
// phase gate cu1(λ) into {u1, CX}: the form QFT benchmarks take on
// IBM's elementary gate set.
func CU1Decomposition(lambda float64, control, target int) []Gate {
	return []Gate{
		G1(KindU1, control, lambda/2),
		CX(control, target),
		G1(KindU1, target, -lambda/2),
		CX(control, target),
		G1(KindU1, target, lambda/2),
	}
}

// CYDecomposition returns controlled-Y as {S†, CX, S} (qelib1's cy).
func CYDecomposition(control, target int) []Gate {
	return []Gate{
		G1(KindSdg, target),
		CX(control, target),
		G1(KindS, target),
	}
}

// CHDecomposition returns controlled-H per the qelib1 definition.
func CHDecomposition(control, target int) []Gate {
	return []Gate{
		G1(KindH, target),
		G1(KindSdg, target),
		CX(control, target),
		G1(KindH, target),
		G1(KindT, target),
		CX(control, target),
		G1(KindT, target),
		G1(KindH, target),
		G1(KindS, target),
		G1(KindX, target),
		G1(KindS, control),
	}
}

// CRZDecomposition returns controlled-RZ(λ) as {RZ, CX} (qelib1's crz).
func CRZDecomposition(lambda float64, control, target int) []Gate {
	return []Gate{
		G1(KindRZ, target, lambda/2),
		CX(control, target),
		G1(KindRZ, target, -lambda/2),
		CX(control, target),
	}
}

// CU3Decomposition returns controlled-U3(θ,φ,λ) per qelib1.
func CU3Decomposition(theta, phi, lambda float64, control, target int) []Gate {
	return []Gate{
		G1(KindU1, control, (lambda+phi)/2),
		G1(KindU1, target, (lambda-phi)/2),
		CX(control, target),
		G1(KindU3, target, -theta/2, 0, -(phi+lambda)/2),
		CX(control, target),
		G1(KindU3, target, theta/2, phi, 0),
	}
}

// CSwapDecomposition returns a Fredkin gate as {CX, Toffoli, CX}.
func CSwapDecomposition(control, a, b int) []Gate {
	out := []Gate{CX(b, a)}
	out = append(out, ToffoliDecomposition(control, a, b)...)
	return append(out, CX(b, a))
}

// RZZDecomposition returns the two-qubit ZZ interaction exp(-iθZZ/2)
// as {CX, U1, CX} (qelib1's rzz) — the building block of the Ising
// benchmarks.
func RZZDecomposition(theta float64, a, b int) []Gate {
	return []Gate{
		CX(a, b),
		G1(KindU1, b, theta),
		CX(a, b),
	}
}
