// Package circuit provides the quantum-circuit intermediate
// representation used throughout the library: gates, circuits, the
// dependency DAG (paper Fig. 4), front-layer extraction, ASAP depth
// scheduling, circuit reversal (Fig. 5) and SWAP decomposition
// (Fig. 3a).
//
// Following the paper (§II-A), circuits are built from the IBM
// elementary gate set: arbitrary single-qubit gates plus CNOT. SWAP is
// carried as a first-class gate so routers can insert it symbolically
// and decompose it into 3 CNOTs late (DecomposeSwaps).
package circuit

import (
	"fmt"
	"strings"
)

// Kind enumerates the gate kinds the IR understands. Single-qubit
// kinds act on Gate.Q0 only; two-qubit kinds act on Q0 (control) and
// Q1 (target).
type Kind uint8

const (
	// Single-qubit gates.
	KindH Kind = iota
	KindX
	KindY
	KindZ
	KindS
	KindSdg
	KindT
	KindTdg
	KindRX // one parameter
	KindRY // one parameter
	KindRZ // one parameter
	KindU1 // one parameter (phase)
	KindU2 // two parameters
	KindU3 // three parameters
	KindMeasure
	KindBarrier // scheduling fence; acts on one qubit in this IR

	// Two-qubit gates.
	KindCX
	KindCZ
	KindSwap

	numKinds
)

var kindNames = [numKinds]string{
	"h", "x", "y", "z", "s", "sdg", "t", "tdg",
	"rx", "ry", "rz", "u1", "u2", "u3", "measure", "barrier",
	"cx", "cz", "swap",
}

var kindArity = [numKinds]int{
	1, 1, 1, 1, 1, 1, 1, 1,
	1, 1, 1, 1, 1, 1, 1, 1,
	2, 2, 2,
}

var kindParams = [numKinds]int{
	0, 0, 0, 0, 0, 0, 0, 0,
	1, 1, 1, 1, 2, 3, 0, 0,
	0, 0, 0,
}

// String returns the lowercase QASM-style mnemonic for the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Arity returns the number of qubits the kind acts on (1 or 2).
func (k Kind) Arity() int { return kindArity[k] }

// NumParams returns the number of real parameters the kind takes.
func (k Kind) NumParams() int { return kindParams[k] }

// TwoQubit reports whether the kind acts on two qubits. Only two-qubit
// gates constrain the mapping problem (§IV-A: single-qubit gates
// "can always be executed locally").
func (k Kind) TwoQubit() bool { return kindArity[k] == 2 }

// KindByName maps a QASM mnemonic ("cx", "u3", ...) to its Kind.
func KindByName(name string) (Kind, bool) {
	for k, n := range kindNames {
		if n == name {
			return Kind(k), true
		}
	}
	return 0, false
}

// Gate is one operation in a circuit. For single-qubit kinds Q1 is -1.
// Params holds rotation angles in radians (length Kind.NumParams()).
type Gate struct {
	Kind   Kind
	Q0, Q1 int
	Params []float64
}

// G1 constructs a single-qubit gate.
func G1(k Kind, q int, params ...float64) Gate {
	if k.Arity() != 1 {
		panic(fmt.Sprintf("circuit: %v is not a single-qubit gate", k))
	}
	if len(params) != k.NumParams() {
		panic(fmt.Sprintf("circuit: %v takes %d params, got %d", k, k.NumParams(), len(params)))
	}
	return Gate{Kind: k, Q0: q, Q1: -1, Params: params}
}

// CX constructs a CNOT with the given control and target.
func CX(control, target int) Gate {
	return Gate{Kind: KindCX, Q0: control, Q1: target}
}

// CZ constructs a controlled-Z gate.
func CZ(a, b int) Gate {
	return Gate{Kind: KindCZ, Q0: a, Q1: b}
}

// Swap constructs a SWAP gate.
func Swap(a, b int) Gate {
	return Gate{Kind: KindSwap, Q0: a, Q1: b}
}

// TwoQubit reports whether the gate acts on two qubits.
func (g Gate) TwoQubit() bool { return g.Kind.TwoQubit() }

// Qubits returns the qubits the gate acts on (1 or 2 entries).
func (g Gate) Qubits() []int {
	if g.TwoQubit() {
		return []int{g.Q0, g.Q1}
	}
	return []int{g.Q0}
}

// On reports whether the gate touches qubit q.
func (g Gate) On(q int) bool {
	return g.Q0 == q || (g.TwoQubit() && g.Q1 == q)
}

// Remap returns a copy of the gate with qubits translated through f
// (e.g. a logical→physical layout).
func (g Gate) Remap(f func(int) int) Gate {
	out := g
	out.Q0 = f(g.Q0)
	if g.TwoQubit() {
		out.Q1 = f(g.Q1)
	}
	return out
}

// String renders the gate in QASM-like syntax for debugging.
func (g Gate) String() string {
	var sb strings.Builder
	sb.WriteString(g.Kind.String())
	if len(g.Params) > 0 {
		sb.WriteByte('(')
		for i, p := range g.Params {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%g", p)
		}
		sb.WriteByte(')')
	}
	fmt.Fprintf(&sb, " q[%d]", g.Q0)
	if g.TwoQubit() {
		fmt.Fprintf(&sb, ",q[%d]", g.Q1)
	}
	return sb.String()
}
