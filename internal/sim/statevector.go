// Package sim is a dense state-vector quantum simulator. It exists as
// a verification substrate: compiled (routed) circuits must implement
// the same unitary as the input circuit up to the initial and final
// qubit permutations, and for small circuits we check that directly by
// simulating both sides (see internal/verify for the large-circuit
// GF(2) checker).
//
// Convention: qubit 0 is the least significant bit of the basis-state
// index, so |q2 q1 q0⟩ = |b⟩ with b = q0 + 2·q1 + 4·q2.
package sim

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"repro/internal/circuit"
)

// State is an n-qubit pure state: 2^n complex amplitudes.
type State struct {
	n   int
	amp []complex128
}

// NewState returns |0...0⟩ on n qubits. n is capped at 24 to keep the
// allocation sane (16M amplitudes); verification uses far fewer.
func NewState(n int) *State {
	if n < 0 || n > 24 {
		panic(fmt.Sprintf("sim: unsupported qubit count %d", n))
	}
	s := &State{n: n, amp: make([]complex128, 1<<uint(n))}
	s.amp[0] = 1
	return s
}

// NewBasisState returns the computational basis state |b⟩.
func NewBasisState(n int, b uint64) *State {
	s := NewState(n)
	if b >= 1<<uint(n) {
		panic(fmt.Sprintf("sim: basis state %d out of range for %d qubits", b, n))
	}
	s.amp[0] = 0
	s.amp[b] = 1
	return s
}

// NewRandomState returns a Haar-ish random normalized state (i.i.d.
// complex Gaussians, normalized), useful for equivalence testing: two
// unitaries agreeing on a random state almost surely agree everywhere
// when combined with a handful of basis states.
func NewRandomState(n int, rng *rand.Rand) *State {
	s := NewState(n)
	var norm float64
	for i := range s.amp {
		re, im := rng.NormFloat64(), rng.NormFloat64()
		s.amp[i] = complex(re, im)
		norm += re*re + im*im
	}
	scale := complex(1/math.Sqrt(norm), 0)
	for i := range s.amp {
		s.amp[i] *= scale
	}
	return s
}

// NumQubits returns n.
func (s *State) NumQubits() int { return s.n }

// Amplitude returns the amplitude of basis state b.
func (s *State) Amplitude(b uint64) complex128 { return s.amp[b] }

// Clone returns a deep copy.
func (s *State) Clone() *State {
	c := &State{n: s.n, amp: make([]complex128, len(s.amp))}
	copy(c.amp, s.amp)
	return c
}

// Norm returns the 2-norm of the state (1.0 for a valid state).
func (s *State) Norm() float64 {
	var sum float64
	for _, a := range s.amp {
		sum += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(sum)
}

// Fidelity returns |⟨s|o⟩|², the overlap probability with o.
func (s *State) Fidelity(o *State) float64 {
	if s.n != o.n {
		panic("sim: fidelity of states with different sizes")
	}
	var dot complex128
	for i := range s.amp {
		dot += cmplx.Conj(s.amp[i]) * o.amp[i]
	}
	return real(dot)*real(dot) + imag(dot)*imag(dot)
}

// EqualUpToGlobalPhase reports whether the two states differ only by a
// global phase, within tolerance eps on fidelity.
func (s *State) EqualUpToGlobalPhase(o *State, eps float64) bool {
	return math.Abs(1-s.Fidelity(o)) < eps
}

// Probability returns the probability of measuring qubit q as 1.
func (s *State) Probability(q int) float64 {
	mask := uint64(1) << uint(q)
	var p float64
	for b, a := range s.amp {
		if uint64(b)&mask != 0 {
			p += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	return p
}

// ApplyGate applies one gate in place. Measure gates require a source
// of randomness; use Measure explicitly for that — ApplyGate treats
// KindMeasure and KindBarrier as no-ops so whole compiled circuits can
// be replayed deterministically.
func (s *State) ApplyGate(g circuit.Gate) {
	switch g.Kind {
	case circuit.KindMeasure, circuit.KindBarrier:
		return
	case circuit.KindCX:
		s.applyCX(g.Q0, g.Q1)
	case circuit.KindCZ:
		s.applyCZ(g.Q0, g.Q1)
	case circuit.KindSwap:
		s.applySwap(g.Q0, g.Q1)
	default:
		m := Matrix1Q(g)
		s.apply1Q(g.Q0, m)
	}
}

// ApplyCircuit applies every gate of c in order. The circuit must have
// the same qubit count as the state.
func (s *State) ApplyCircuit(c *circuit.Circuit) {
	if c.NumQubits() != s.n {
		panic(fmt.Sprintf("sim: circuit on %d qubits applied to %d-qubit state", c.NumQubits(), s.n))
	}
	for _, g := range c.Gates() {
		s.ApplyGate(g)
	}
}

// PermuteQubits returns a new state with qubits relabelled through perm:
// logical qubit q of the input occupies wire perm[q] of the output.
// This realizes a layout π as a state transformation.
func (s *State) PermuteQubits(perm []int) *State {
	if len(perm) != s.n {
		panic("sim: permutation size mismatch")
	}
	out := &State{n: s.n, amp: make([]complex128, len(s.amp))}
	for b := range s.amp {
		var nb uint64
		for q := 0; q < s.n; q++ {
			if uint64(b)&(1<<uint(q)) != 0 {
				nb |= 1 << uint(perm[q])
			}
		}
		out.amp[nb] = s.amp[b]
	}
	return out
}

// Measure performs a projective measurement of qubit q, collapsing the
// state, and returns the outcome (0 or 1).
func (s *State) Measure(q int, rng *rand.Rand) int {
	p1 := s.Probability(q)
	outcome := 0
	if rng.Float64() < p1 {
		outcome = 1
	}
	mask := uint64(1) << uint(q)
	var norm float64
	for b := range s.amp {
		bit := 0
		if uint64(b)&mask != 0 {
			bit = 1
		}
		if bit != outcome {
			s.amp[b] = 0
		} else {
			a := s.amp[b]
			norm += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	scale := complex(1/math.Sqrt(norm), 0)
	for b := range s.amp {
		s.amp[b] *= scale
	}
	return outcome
}

// SampleCircuit runs c from |0...0⟩ and draws `shots` full-register
// measurement samples from the final distribution, returning counts
// keyed by basis-state index. Measure/barrier gates inside c are
// no-ops during evolution (terminal measurement is implied), matching
// how compiled benchmark circuits end.
func SampleCircuit(c *circuit.Circuit, shots int, rng *rand.Rand) map[uint64]int {
	s := NewState(c.NumQubits())
	s.ApplyCircuit(c)
	// Cumulative distribution over basis states.
	probs := make([]float64, len(s.amp))
	var acc float64
	for b, a := range s.amp {
		acc += real(a)*real(a) + imag(a)*imag(a)
		probs[b] = acc
	}
	counts := make(map[uint64]int)
	for i := 0; i < shots; i++ {
		r := rng.Float64() * acc
		// Binary search the CDF.
		lo, hi := 0, len(probs)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if probs[mid] < r {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		counts[uint64(lo)]++
	}
	return counts
}

// apply1Q applies the 2×2 matrix m to qubit q.
func (s *State) apply1Q(q int, m [2][2]complex128) {
	mask := uint64(1) << uint(q)
	for b := uint64(0); b < uint64(len(s.amp)); b++ {
		if b&mask != 0 {
			continue
		}
		b1 := b | mask
		a0, a1 := s.amp[b], s.amp[b1]
		s.amp[b] = m[0][0]*a0 + m[0][1]*a1
		s.amp[b1] = m[1][0]*a0 + m[1][1]*a1
	}
}

func (s *State) applyCX(control, target int) {
	cm := uint64(1) << uint(control)
	tm := uint64(1) << uint(target)
	for b := uint64(0); b < uint64(len(s.amp)); b++ {
		if b&cm != 0 && b&tm == 0 {
			s.amp[b], s.amp[b|tm] = s.amp[b|tm], s.amp[b]
		}
	}
}

func (s *State) applyCZ(a, b int) {
	am := uint64(1) << uint(a)
	bm := uint64(1) << uint(b)
	for i := uint64(0); i < uint64(len(s.amp)); i++ {
		if i&am != 0 && i&bm != 0 {
			s.amp[i] = -s.amp[i]
		}
	}
}

func (s *State) applySwap(a, b int) {
	am := uint64(1) << uint(a)
	bm := uint64(1) << uint(b)
	for i := uint64(0); i < uint64(len(s.amp)); i++ {
		if i&am != 0 && i&bm == 0 {
			j := (i &^ am) | bm
			s.amp[i], s.amp[j] = s.amp[j], s.amp[i]
		}
	}
}

// Matrix1Q returns the 2×2 unitary of a single-qubit gate.
func Matrix1Q(g circuit.Gate) [2][2]complex128 {
	isq := complex(1/math.Sqrt2, 0)
	switch g.Kind {
	case circuit.KindH:
		return [2][2]complex128{{isq, isq}, {isq, -isq}}
	case circuit.KindX:
		return [2][2]complex128{{0, 1}, {1, 0}}
	case circuit.KindY:
		return [2][2]complex128{{0, -1i}, {1i, 0}}
	case circuit.KindZ:
		return [2][2]complex128{{1, 0}, {0, -1}}
	case circuit.KindS:
		return [2][2]complex128{{1, 0}, {0, 1i}}
	case circuit.KindSdg:
		return [2][2]complex128{{1, 0}, {0, -1i}}
	case circuit.KindT:
		return [2][2]complex128{{1, 0}, {0, cmplx.Exp(1i * math.Pi / 4)}}
	case circuit.KindTdg:
		return [2][2]complex128{{1, 0}, {0, cmplx.Exp(-1i * math.Pi / 4)}}
	case circuit.KindRX:
		t := g.Params[0] / 2
		c, s := complex(math.Cos(t), 0), complex(math.Sin(t), 0)
		return [2][2]complex128{{c, -1i * s}, {-1i * s, c}}
	case circuit.KindRY:
		t := g.Params[0] / 2
		c, s := complex(math.Cos(t), 0), complex(math.Sin(t), 0)
		return [2][2]complex128{{c, -s}, {s, c}}
	case circuit.KindRZ:
		t := g.Params[0] / 2
		return [2][2]complex128{{cmplx.Exp(complex(0, -g.Params[0]/2)), 0}, {0, cmplx.Exp(complex(0, t))}}
	case circuit.KindU1:
		return [2][2]complex128{{1, 0}, {0, cmplx.Exp(complex(0, g.Params[0]))}}
	case circuit.KindU2:
		phi, lam := g.Params[0], g.Params[1]
		return [2][2]complex128{
			{isq, -isq * cmplx.Exp(complex(0, lam))},
			{isq * cmplx.Exp(complex(0, phi)), isq * cmplx.Exp(complex(0, phi+lam))},
		}
	case circuit.KindU3:
		th, phi, lam := g.Params[0], g.Params[1], g.Params[2]
		c := complex(math.Cos(th/2), 0)
		s := complex(math.Sin(th/2), 0)
		return [2][2]complex128{
			{c, -s * cmplx.Exp(complex(0, lam))},
			{s * cmplx.Exp(complex(0, phi)), c * cmplx.Exp(complex(0, phi+lam))},
		}
	default:
		panic(fmt.Sprintf("sim: no matrix for gate kind %v", g.Kind))
	}
}
