package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
)

const eps = 1e-10

func TestNewStateIsZeroKet(t *testing.T) {
	s := NewState(3)
	if s.Amplitude(0) != 1 {
		t.Fatal("|000> amplitude wrong")
	}
	if math.Abs(s.Norm()-1) > eps {
		t.Fatal("norm wrong")
	}
}

func TestNewStatePanics(t *testing.T) {
	for _, n := range []int{-1, 25} {
		func() {
			defer func() { recover() }()
			NewState(n)
			t.Fatalf("NewState(%d) did not panic", n)
		}()
	}
}

func TestBasisState(t *testing.T) {
	s := NewBasisState(3, 5)
	if s.Amplitude(5) != 1 || s.Amplitude(0) != 0 {
		t.Fatal("basis state wrong")
	}
}

func TestHadamardSuperposition(t *testing.T) {
	s := NewState(1)
	s.ApplyGate(circuit.G1(circuit.KindH, 0))
	want := 1 / math.Sqrt2
	if math.Abs(real(s.Amplitude(0))-want) > eps || math.Abs(real(s.Amplitude(1))-want) > eps {
		t.Fatalf("H|0> = (%v, %v)", s.Amplitude(0), s.Amplitude(1))
	}
	// H is self-inverse.
	s.ApplyGate(circuit.G1(circuit.KindH, 0))
	if math.Abs(real(s.Amplitude(0))-1) > eps {
		t.Fatal("HH != I")
	}
}

func TestXFlip(t *testing.T) {
	s := NewState(2)
	s.ApplyGate(circuit.G1(circuit.KindX, 1))
	if s.Amplitude(2) != 1 {
		t.Fatal("X on qubit 1 should give |10>")
	}
}

func TestCXTruthTable(t *testing.T) {
	// CX(control=0, target=1): |q1 q0>: 00->00, 01->11, 10->10, 11->01.
	cases := map[uint64]uint64{0: 0, 1: 3, 2: 2, 3: 1}
	for in, want := range cases {
		s := NewBasisState(2, in)
		s.ApplyGate(circuit.CX(0, 1))
		if s.Amplitude(want) != 1 {
			t.Fatalf("CX|%02b> != |%02b>", in, want)
		}
	}
}

func TestBellState(t *testing.T) {
	s := NewState(2)
	s.ApplyGate(circuit.G1(circuit.KindH, 0))
	s.ApplyGate(circuit.CX(0, 1))
	want := 1 / math.Sqrt2
	if math.Abs(real(s.Amplitude(0))-want) > eps || math.Abs(real(s.Amplitude(3))-want) > eps {
		t.Fatal("Bell state wrong")
	}
	if p := s.Probability(0); math.Abs(p-0.5) > eps {
		t.Fatalf("P(q0=1) = %g", p)
	}
}

func TestSwapGate(t *testing.T) {
	s := NewBasisState(2, 1) // |01>
	s.ApplyGate(circuit.Swap(0, 1))
	if s.Amplitude(2) != 1 {
		t.Fatal("SWAP|01> != |10>")
	}
}

func TestSwapEqualsThreeCNOTs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s1 := NewRandomState(3, rng)
	s2 := s1.Clone()
	s1.ApplyGate(circuit.Swap(0, 2))
	for _, g := range []circuit.Gate{circuit.CX(0, 2), circuit.CX(2, 0), circuit.CX(0, 2)} {
		s2.ApplyGate(g)
	}
	if !s1.EqualUpToGlobalPhase(s2, eps) {
		t.Fatal("SWAP != CX CX CX")
	}
}

func TestCZSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s1 := NewRandomState(2, rng)
	s2 := s1.Clone()
	s1.ApplyGate(circuit.CZ(0, 1))
	s2.ApplyGate(circuit.CZ(1, 0))
	if !s1.EqualUpToGlobalPhase(s2, eps) {
		t.Fatal("CZ not symmetric")
	}
}

func TestSelfInverses(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pairs := [][2]circuit.Gate{
		{circuit.G1(circuit.KindS, 0), circuit.G1(circuit.KindSdg, 0)},
		{circuit.G1(circuit.KindT, 1), circuit.G1(circuit.KindTdg, 1)},
		{circuit.G1(circuit.KindRX, 0, 0.7), circuit.G1(circuit.KindRX, 0, -0.7)},
		{circuit.G1(circuit.KindRY, 1, 1.3), circuit.G1(circuit.KindRY, 1, -1.3)},
		{circuit.G1(circuit.KindRZ, 0, 2.1), circuit.G1(circuit.KindRZ, 0, -2.1)},
		{circuit.G1(circuit.KindU1, 1, 0.9), circuit.G1(circuit.KindU1, 1, -0.9)},
	}
	for _, p := range pairs {
		s := NewRandomState(2, rng)
		orig := s.Clone()
		s.ApplyGate(p[0])
		s.ApplyGate(p[1])
		if !s.EqualUpToGlobalPhase(orig, eps) {
			t.Fatalf("%v then %v is not identity", p[0], p[1])
		}
	}
}

func TestToffoliDecompositionIsToffoli(t *testing.T) {
	// The 15-gate network from paper Fig. 1 must act as CCX on every
	// basis state: flip target (bit 2) iff both controls set.
	for b := uint64(0); b < 8; b++ {
		s := NewBasisState(3, b)
		for _, g := range toffoliGates(0, 1, 2) {
			s.ApplyGate(g)
		}
		want := b
		if b&1 != 0 && b&2 != 0 {
			want = b ^ 4
		}
		got := NewBasisState(3, want)
		if !s.EqualUpToGlobalPhase(got, eps) {
			t.Fatalf("toffoli on |%03b>: fidelity %g with |%03b>", b, s.Fidelity(got), want)
		}
	}
}

// toffoliGates mirrors qasm.ToffoliDecomposition without importing it
// (avoids a package cycle in tests; the sequence is the paper's Fig 1).
func toffoliGates(c1, c2, tg int) []circuit.Gate {
	return []circuit.Gate{
		circuit.G1(circuit.KindH, tg),
		circuit.CX(c2, tg),
		circuit.G1(circuit.KindTdg, tg),
		circuit.CX(c1, tg),
		circuit.G1(circuit.KindT, tg),
		circuit.CX(c2, tg),
		circuit.G1(circuit.KindTdg, tg),
		circuit.CX(c1, tg),
		circuit.G1(circuit.KindT, c2),
		circuit.G1(circuit.KindT, tg),
		circuit.G1(circuit.KindH, tg),
		circuit.CX(c1, c2),
		circuit.G1(circuit.KindT, c1),
		circuit.G1(circuit.KindTdg, c2),
		circuit.CX(c1, c2),
	}
}

func TestPermuteQubits(t *testing.T) {
	// |q1 q0> = |01> permuted by q0->q1, q1->q0 gives |10>.
	s := NewBasisState(2, 1)
	p := s.PermuteQubits([]int{1, 0})
	if p.Amplitude(2) != 1 {
		t.Fatal("permutation wrong")
	}
	// Identity permutation is a no-op.
	id := s.PermuteQubits([]int{0, 1})
	if id.Amplitude(1) != 1 {
		t.Fatal("identity permutation wrong")
	}
}

// Property: unitarity — every gate preserves the norm.
func TestGatesPreserveNorm(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		s := NewRandomState(n, rng)
		for i := 0; i < 25; i++ {
			switch rng.Intn(4) {
			case 0:
				s.ApplyGate(circuit.G1(circuit.KindH, rng.Intn(n)))
			case 1:
				s.ApplyGate(circuit.G1(circuit.KindU3, rng.Intn(n), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()))
			case 2:
				a, b := twoDistinct(rng, n)
				s.ApplyGate(circuit.CX(a, b))
			default:
				a, b := twoDistinct(rng, n)
				s.ApplyGate(circuit.Swap(a, b))
			}
		}
		return math.Abs(s.Norm()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: measuring a basis state is deterministic.
func TestMeasureBasisState(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewBasisState(3, 5) // |101>
	if s.Measure(0, rng) != 1 || s.Measure(1, rng) != 0 || s.Measure(2, rng) != 1 {
		t.Fatal("measurement of basis state wrong")
	}
	if math.Abs(s.Norm()-1) > eps {
		t.Fatal("state not normalized after measurement")
	}
}

func TestMeasureCollapsesBell(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		s := NewState(2)
		s.ApplyGate(circuit.G1(circuit.KindH, 0))
		s.ApplyGate(circuit.CX(0, 1))
		m0 := s.Measure(0, rng)
		m1 := s.Measure(1, rng)
		if m0 != m1 {
			t.Fatal("Bell state measurements disagree")
		}
	}
}

func TestApplyCircuitSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewState(2).ApplyCircuit(circuit.New(3))
}

func TestMeasureBarrierNoOps(t *testing.T) {
	s := NewState(1)
	s.ApplyGate(circuit.G1(circuit.KindH, 0))
	before := s.Clone()
	s.ApplyGate(circuit.G1(circuit.KindBarrier, 0))
	s.ApplyGate(circuit.G1(circuit.KindMeasure, 0))
	if !s.EqualUpToGlobalPhase(before, eps) {
		t.Fatal("barrier/measure mutated state in ApplyGate")
	}
}

func TestSampleCircuitDeterministicCircuit(t *testing.T) {
	// X on both qubits: every shot must read |11⟩.
	c := circuit.New(2)
	c.Append(circuit.G1(circuit.KindX, 0), circuit.G1(circuit.KindX, 1))
	counts := SampleCircuit(c, 100, rand.New(rand.NewSource(1)))
	if counts[3] != 100 || len(counts) != 1 {
		t.Fatalf("counts %v", counts)
	}
}

func TestSampleCircuitBellStatistics(t *testing.T) {
	c := circuit.New(2)
	c.Append(circuit.G1(circuit.KindH, 0), circuit.CX(0, 1))
	counts := SampleCircuit(c, 4000, rand.New(rand.NewSource(2)))
	if counts[1] != 0 || counts[2] != 0 {
		t.Fatalf("bell state produced odd-parity outcomes: %v", counts)
	}
	frac := float64(counts[0]) / 4000
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("|00> fraction %.3f far from 0.5", frac)
	}
	if counts[0]+counts[3] != 4000 {
		t.Fatalf("shots lost: %v", counts)
	}
}

func twoDistinct(rng *rand.Rand, n int) (int, int) {
	a := rng.Intn(n)
	b := rng.Intn(n - 1)
	if b >= a {
		b++
	}
	return a, b
}
