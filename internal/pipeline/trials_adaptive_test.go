package pipeline

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/workloads"
)

func adaptiveOptions() core.Options {
	opts := core.DefaultOptions()
	opts.Seed = 11
	return opts
}

// TestAdaptiveDeterministicAtAnyWorkerCount is the load-bearing
// property: the early-exit population and the selected winner are pure
// functions of the per-trial results, never of scheduling.
func TestAdaptiveDeterministicAtAnyWorkerCount(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	circ := workloads.QFT(8)
	opts := adaptiveOptions()

	ref, err := TrialRunner{Trials: 16, Patience: 3, Workers: 1}.Route(context.Background(), circ, dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ref.TrialsRun >= 16 {
		t.Logf("adaptive rule never fired (TrialsRun = %d); property still checked", ref.TrialsRun)
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := TrialRunner{Trials: 16, Patience: 3, Workers: workers}.Route(context.Background(), circ, dev, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got.TrialsRun != ref.TrialsRun {
			t.Fatalf("workers=%d: TrialsRun %d != %d", workers, got.TrialsRun, ref.TrialsRun)
		}
		if !got.Circuit.Equal(ref.Circuit) {
			t.Fatalf("workers=%d: selected a different circuit", workers)
		}
		if got.AddedGates != ref.AddedGates {
			t.Fatalf("workers=%d: AddedGates %d != %d", workers, got.AddedGates, ref.AddedGates)
		}
	}
}

// TestAdaptiveMatchesExhaustivePrefix asserts the acceptance property:
// adaptive selection never picks a different winner than exhaustive
// selection over the same completed prefix.
func TestAdaptiveMatchesExhaustivePrefix(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	circ := workloads.QFT(7)
	opts := adaptiveOptions()

	aResults, aDepths, err := TrialRunner{Trials: 20, Patience: 2, Workers: 4}.RunTrials(context.Background(), circ, dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	pop := len(aResults)
	if pop == 0 || pop > 20 {
		t.Fatalf("adaptive population = %d", pop)
	}
	adaptiveBest, err := core.SelectBest(aResults, aDepths)
	if err != nil {
		t.Fatal(err)
	}

	eResults, eDepths, err := TrialRunner{Trials: 20, Workers: 4}.RunTrials(context.Background(), circ, dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	exhaustiveBest, err := core.SelectBest(eResults[:pop], eDepths[:pop])
	if err != nil {
		t.Fatal(err)
	}
	if !adaptiveBest.Circuit.Equal(exhaustiveBest.Circuit) {
		t.Fatal("adaptive winner differs from exhaustive selection over the same prefix")
	}
	// And the trial results themselves agree index by index: the same
	// seeds ran in both modes.
	for i := 0; i < pop; i++ {
		if aResults[i].AddedGates != eResults[i].AddedGates {
			t.Fatalf("trial %d: adaptive cost %d != exhaustive cost %d", i, aResults[i].AddedGates, eResults[i].AddedGates)
		}
	}
}

func TestAdaptiveReportsActualTrialCount(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	circ := workloads.QFT(6)
	opts := adaptiveOptions()

	res, err := TrialRunner{Trials: 32, Patience: 1, Workers: 1}.Route(context.Background(), circ, dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Patience 1 stops at the first non-improving trial; with 32 seeds
	// on a small circuit it is (deterministically) far below the cap.
	if res.TrialsRun >= 32 {
		t.Fatalf("TrialsRun = %d, expected early exit below the 32-trial cap", res.TrialsRun)
	}
	if res.TrialsRun < 2 {
		t.Fatalf("TrialsRun = %d, the rule needs at least two trials to fire", res.TrialsRun)
	}
}

// TestRunTrialsCancelMidFeed is the regression test for the nil-hole
// panic: cancelling while trials are still being fed must return a
// clean ctx.Err(), not panic on a partially-filled results slice.
func TestRunTrialsCancelMidFeed(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	circ := workloads.QFT(16) // big enough that trials outlive the cancel
	opts := adaptiveOptions()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	// 512 trials on 2 workers keeps the feed loop alive for hundreds
	// of milliseconds, so the cancel always lands mid-feed even when a
	// loaded machine delays the timer goroutine.
	tr := TrialRunner{Trials: 512, Workers: 2}
	results, depths, err := tr.RunTrials(ctx, circ, dev, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if results != nil || depths != nil {
		t.Fatalf("cancelled run returned partial slices (len %d, %d)", len(results), len(depths))
	}

	// The Route wrapper must surface the same clean error.
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := tr.Route(ctx2, circ, dev, opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("Route err = %v, want context.Canceled", err)
	}
}

// TestAdaptiveRouteViaPassName exercises the Patience plumbing through
// RoutePass and asserts exhaustive-vs-adaptive consistency end to end.
func TestAdaptivePassRuns(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	circ := workloads.GHZ(10)
	pm := New(RoutePass{Trials: 12, Patience: 2}, VerifyPass{})
	pc, err := pm.Compile(context.Background(), circ, dev, adaptiveOptions())
	if err != nil {
		t.Fatal(err)
	}
	if pc.Result.TrialsRun < 1 || pc.Result.TrialsRun > 12 {
		t.Fatalf("TrialsRun = %d", pc.Result.TrialsRun)
	}
}
