package pipeline

import (
	"errors"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/opt"
	"repro/internal/qasm"
	"repro/internal/sched"
	"repro/internal/transpile"
	"repro/internal/verify"
)

// ParsePass turns pc.Source (OpenQASM 2.0) into pc.Circuit.
type ParsePass struct{}

// Name implements Pass.
func (ParsePass) Name() string { return "parse" }

// Run implements Pass.
func (ParsePass) Run(pc *Ctx) error {
	if pc.Source == "" {
		return errors.New("no QASM source in context")
	}
	c, err := qasm.Parse(pc.Source)
	if err != nil {
		return err
	}
	pc.Circuit = c
	return nil
}

// CalibratePass pins the pipeline to the device's live calibration
// snapshot: when the device has one, the snapshot's noise model
// replaces pc.Options.Noise for every later pass (layout and routing
// become reliability-weighted automatically) and pc.CalVersion records
// the version. Devices without a calibration make it a no-op, so the
// pass is safe to include unconditionally ahead of layout/route.
type CalibratePass struct{}

// Name implements Pass.
func (CalibratePass) Name() string { return "calibrate" }

// Run implements Pass.
func (CalibratePass) Run(pc *Ctx) error {
	if pc.Device == nil {
		return errors.New("no device in context")
	}
	if snap := pc.Device.Calibration(); snap != nil {
		pc.Options.Noise = snap.Model
		pc.CalVersion = snap.Version
	}
	return nil
}

// LayoutPass runs SABRE's reverse-traversal initial-mapping search
// (the role SabreLayout plays in production compilers) and records the
// improved layout in pc.Layout for a subsequent RoutePass.
type LayoutPass struct{}

// Name implements Pass.
func (LayoutPass) Name() string { return "layout" }

// Run implements Pass.
func (LayoutPass) Run(pc *Ctx) error {
	if pc.Circuit == nil {
		return errors.New("no circuit in context")
	}
	l, err := core.InitialMapping(pc.Circuit, pc.Device, pc.Options)
	if err != nil {
		return err
	}
	pc.Layout = l
	return nil
}

// RoutePass maps the working circuit onto the device. With pc.Layout
// set (a preceding LayoutPass), it routes a single forward traversal
// from that layout; otherwise it delegates to Router — by default the
// bounded-pool TrialRunner running the paper's best-of-N protocol.
type RoutePass struct {
	// Router overrides the routing backend (nil = TrialRunner with
	// this pass's Trials/Workers/Patience). Any backend from the
	// router registry (internal/route) drops in here.
	Router core.Router
	// Trials overrides Options.Trials for the default TrialRunner.
	Trials int
	// Workers bounds the default TrialRunner's pool.
	Workers int
	// Patience enables the default TrialRunner's adaptive early exit
	// (stop after this many consecutive non-improving trials; 0 =
	// exhaustive).
	Patience int
}

// Name implements Pass.
func (p RoutePass) Name() string {
	if p.Router != nil {
		return "route:" + p.Router.Name()
	}
	return "route"
}

// Run implements Pass.
func (p RoutePass) Run(pc *Ctx) error {
	if pc.Circuit == nil {
		return errors.New("no circuit in context")
	}
	pc.Original = pc.Circuit
	var (
		res *core.Result
		err error
	)
	switch {
	case p.Router != nil:
		res, err = p.Router.Route(pc.Context(), pc.Circuit, pc.Device, pc.Options)
	case pc.Layout.Size() > 0:
		res, err = core.CompileWithLayout(pc.Circuit, pc.Device, pc.Layout, pc.Options)
	default:
		tr := TrialRunner{Trials: p.Trials, Workers: p.Workers, Patience: p.Patience}
		res, err = tr.Route(pc.Context(), pc.Circuit, pc.Device, pc.Options)
	}
	if err != nil {
		return err
	}
	pc.Result = res
	pc.Circuit = res.Circuit
	return nil
}

// BasisPass lowers the working circuit to the IBM native gate set
// {u1, u2, u3, CX} (SWAPs become 3 CNOTs), so the output QASM is
// directly executable.
type BasisPass struct{}

// Name implements Pass.
func (BasisPass) Name() string { return "basis" }

// Run implements Pass.
func (BasisPass) Run(pc *Ctx) error {
	if pc.Circuit == nil {
		return errors.New("no circuit in context")
	}
	pc.Circuit = transpile.ToIBMBasis(pc.Circuit)
	return nil
}

// PeepholePass applies semantics-preserving local rewrites (cancel
// self-inverse pairs, merge rotations) until fixpoint, reclaiming
// gates the mechanical SWAP insertion left on the table.
type PeepholePass struct {
	// Options configures the optimizer; the zero value selects
	// opt.DefaultOptions.
	Options opt.Options
}

// Name implements Pass.
func (PeepholePass) Name() string { return "peephole" }

// Run implements Pass.
func (p PeepholePass) Run(pc *Ctx) error {
	if pc.Circuit == nil {
		return errors.New("no circuit in context")
	}
	opts := p.Options
	if opts == (opt.Options{}) {
		opts = opt.DefaultOptions()
	}
	r := opt.Optimize(pc.Circuit, opts)
	pc.Opt = &r
	pc.Circuit = r.Circuit
	return nil
}

// SchedulePass computes the time-step (moments) view of the working
// circuit and stores it in pc.Schedule.
type SchedulePass struct {
	// ALAP selects as-late-as-possible scheduling (default ASAP).
	ALAP bool
}

// Name implements Pass.
func (SchedulePass) Name() string { return "schedule" }

// Run implements Pass.
func (p SchedulePass) Run(pc *Ctx) error {
	if pc.Circuit == nil {
		return errors.New("no circuit in context")
	}
	if p.ALAP {
		pc.Schedule = sched.ALAP(pc.Circuit)
	} else {
		pc.Schedule = sched.ASAP(pc.Circuit)
	}
	return pc.Schedule.Valid()
}

// VerifyPass checks the working circuit: hardware compliance against
// the device always, and exact GF(2) equivalence to the pre-routing
// circuit under the recorded layouts whenever both are linear (CX/SWAP
// only). A failure aborts the pipeline — routing-validity errors never
// reach the caller silently.
type VerifyPass struct{}

// Name implements Pass.
func (VerifyPass) Name() string { return "verify" }

// Run implements Pass.
func (VerifyPass) Run(pc *Ctx) error {
	if pc.Circuit == nil {
		return errors.New("no circuit in context")
	}
	if pc.Device != nil {
		if err := verify.HardwareCompliant(pc.Circuit.DecomposeSwaps(), pc.Device.Connected); err != nil {
			return err
		}
	}
	if pc.Result == nil || pc.Original == nil {
		return nil
	}
	// Exact equivalence is decidable over GF(2) for linear circuits.
	// Prefer the current working circuit (verifying what later passes
	// actually produced); fall back to the router's raw output when a
	// pass (basis lowering) left the linear fragment.
	routed := pc.Circuit
	if !linear(routed) {
		routed = pc.Result.Circuit
	}
	if linear(pc.Original) && linear(routed) {
		return verify.CheckRouted(pc.Original, routed, pc.Result.InitialLayout, pc.Result.FinalLayout)
	}
	return nil
}

// linear reports whether c consists solely of CX and SWAP gates.
func linear(c *circuit.Circuit) bool {
	for _, g := range c.Gates() {
		if g.Kind != circuit.KindCX && g.Kind != circuit.KindSwap {
			return false
		}
	}
	return true
}
