package pipeline

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/core"
)

// verifySink is the streaming analogue of VerifyPass: it checks every
// chunk's two-qubit gates for hardware compliance as they flow past,
// then forwards the chunk to the wrapped sink. The whole-circuit
// GF(2) equivalence check has no streaming form (it needs both full
// circuits), so the streaming contract is coupling compliance plus
// the router's own byte-parity guarantee against the materialized
// path.
type verifySink struct {
	inner core.StreamSink
	dev   *arch.Device
	seen  int64
}

// NewVerifySink wraps inner so every emitted chunk is verified
// against dev's coupling graph before delivery: a two-qubit gate
// (SWAPs included — they decompose to CNOTs on the same pair) on
// uncoupled physical qubits aborts the stream with a positioned
// error. Cost is one Connected probe per two-qubit gate, no
// allocation, so it is safe to leave on in production streams.
func NewVerifySink(inner core.StreamSink, dev *arch.Device) core.StreamSink {
	return &verifySink{inner: inner, dev: dev}
}

// Emit implements core.StreamSink.
func (v *verifySink) Emit(gates []circuit.Gate) error {
	for i, g := range gates {
		if g.TwoQubit() && !v.dev.Connected(g.Q0, g.Q1) {
			return fmt.Errorf("pipeline: streamed gate %d (%v %d,%d) acts on uncoupled physical qubits",
				v.seen+int64(i), g.Kind, g.Q0, g.Q1)
		}
	}
	v.seen += int64(len(gates))
	return v.inner.Emit(gates)
}
