package pipeline

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/core"
)

// cxStorm builds a CX-heavy random circuit big enough that trials are
// reliably in flight when the cancel lands.
func cxStorm(n, gates int, seed int64) *circuit.Circuit {
	c := circuit.New(n)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < gates; i++ {
		a := rng.Intn(n)
		b := rng.Intn(n - 1)
		if b >= a {
			b++
		}
		c.Append(circuit.CX(a, b))
	}
	return c
}

// TestTrialRunnerCancelMidRun is the regression test for the
// cancelled-trial completion bug: a worker whose RunTrialCtx was
// cancelled leaves results[trial] nil, and reporting that trial as
// completed made the prefix watcher dereference the nil result
// (panic: core.BetterTrial on a nil *Result). The runner must instead
// return ctx.Err() cleanly — this test panicked deterministically
// before the fix. Patience > 0 keeps the adaptive watcher active;
// the plain watcher path is covered by the same cancel.
func TestTrialRunnerCancelMidRun(t *testing.T) {
	circ := cxStorm(20, 6000, 3)
	dev := arch.IBMQ20Tokyo()
	opts := core.DefaultOptions()

	for _, patience := range []int{0, 2} {
		ctx, cancel := context.WithCancel(context.Background())
		tr := TrialRunner{Trials: 8, Workers: 2, Patience: patience}
		done := make(chan error, 1)
		go func() {
			_, err := tr.Route(ctx, circ, dev, opts)
			done <- err
		}()
		time.Sleep(5 * time.Millisecond) // let trials get in flight
		cancel()
		select {
		case err := <-done:
			if err != context.Canceled {
				t.Fatalf("patience=%d: err = %v, want context.Canceled", patience, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("patience=%d: cancelled run never returned", patience)
		}
	}
}
