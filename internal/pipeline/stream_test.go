package pipeline

import (
	"context"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/workloads"
)

type countSink struct{ gates int }

func (c *countSink) Emit(chunk []circuit.Gate) error {
	c.gates += len(chunk)
	return nil
}

// TestVerifySinkPassesCompliantStream routes a real workload through
// the streaming router with the verify sink in the chain: every chunk
// must clear the coupling check and arrive at the inner sink intact.
func TestVerifySinkPassesCompliantStream(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	circ := workloads.RandomCircuit("verify-sink", 14, 1500, 0.6, 21)
	inner := &countSink{}
	res, err := core.RouteStream(context.Background(), core.NewCircuitSource(circ), dev,
		core.DefaultOptions(), core.StreamOptions{}, NewVerifySink(inner, dev), nil)
	if err != nil {
		t.Fatal(err)
	}
	if int64(inner.gates) != res.Stats.GatesOut {
		t.Fatalf("inner sink saw %d gates, stats say %d", inner.gates, res.Stats.GatesOut)
	}
}

// TestVerifySinkCatchesViolation feeds a hand-built non-compliant
// chunk straight into the sink: the error must name the offending
// absolute gate position and the inner sink must not receive the bad
// chunk.
func TestVerifySinkCatchesViolation(t *testing.T) {
	dev := arch.Line(4) // couples only (0,1),(1,2),(2,3)
	inner := &countSink{}
	sink := NewVerifySink(inner, dev)
	if err := sink.Emit([]circuit.Gate{circuit.CX(0, 1), circuit.G1(circuit.KindH, 2)}); err != nil {
		t.Fatal(err)
	}
	err := sink.Emit([]circuit.Gate{circuit.G1(circuit.KindH, 0), circuit.CX(0, 3)})
	if err == nil {
		t.Fatal("uncoupled CX passed the verify sink")
	}
	if !strings.Contains(err.Error(), "gate 3") {
		t.Fatalf("error does not name absolute gate position: %v", err)
	}
	if inner.gates != 2 {
		t.Fatalf("inner sink received %d gates, want only the compliant chunk's 2", inner.gates)
	}
}

// TestVerifySinkCatchesUncoupledSwap: SWAPs decompose to CNOTs on the
// same pair, so an uncoupled SWAP is a violation too.
func TestVerifySinkCatchesUncoupledSwap(t *testing.T) {
	dev := arch.Line(4)
	sink := NewVerifySink(&countSink{}, dev)
	if err := sink.Emit([]circuit.Gate{circuit.Swap(0, 2)}); err == nil {
		t.Fatal("uncoupled SWAP passed the verify sink")
	}
}
