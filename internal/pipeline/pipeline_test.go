package pipeline

import (
	"context"
	"testing"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/qasm"
	"repro/internal/verify"
	"repro/internal/workloads"
)

// cxCircuit returns a seeded CX-only circuit, the linear fragment over
// which routing equivalence is exactly decidable.
func cxCircuit(n, gates int, seed int64) *circuit.Circuit {
	c := workloads.RandomCircuit("cxonly", n, gates, 1.0, seed)
	out := circuit.NewNamed(c.Name(), c.NumQubits())
	for _, g := range c.Gates() {
		if g.Kind == circuit.KindCX {
			out.Append(g)
		}
	}
	return out
}

func TestTrialRunnerDeterministicAcrossWorkerCounts(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	circ := cxCircuit(16, 120, 11)
	opts := core.DefaultOptions()
	opts.Seed = 42

	var ref string
	for _, workers := range []int{1, 2, 3, 8} {
		tr := TrialRunner{Trials: 8, Workers: workers}
		res, err := tr.Route(context.Background(), circ, dev, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := qasm.Format(res.Circuit)
		if ref == "" {
			ref = got
		} else if got != ref {
			t.Fatalf("workers=%d produced different routed QASM than workers=1", workers)
		}
	}
}

func TestEveryTrialOutputVerifies(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	circ := cxCircuit(14, 90, 5)
	opts := core.DefaultOptions()
	opts.Seed = 7

	tr := TrialRunner{Trials: 6, Workers: 3}
	results, depths, err := tr.RunTrials(context.Background(), circ, dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 || len(depths) != 6 {
		t.Fatalf("expected 6 trial results, got %d/%d", len(results), len(depths))
	}
	for trial, res := range results {
		if err := verify.CheckRouted(circ, res.Circuit, res.InitialLayout, res.FinalLayout); err != nil {
			t.Errorf("trial %d output failed GF(2) verification: %v", trial, err)
		}
		if err := verify.HardwareCompliant(res.Circuit.DecomposeSwaps(), dev.Connected); err != nil {
			t.Errorf("trial %d output not hardware compliant: %v", trial, err)
		}
	}
}

func TestBestOfNNoWorseThanSingleTrial(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	opts := core.DefaultOptions()
	opts.Seed = 1

	queko, _ := workloads.KnownOptimal(dev, 300, 3)
	for name, circ := range map[string]*circuit.Circuit{
		"queko_tokyo": queko,
		"qft_16":      workloads.QFT(16),
	} {
		single := TrialRunner{Trials: 1}
		one, err := single.Route(context.Background(), circ, dev, opts)
		if err != nil {
			t.Fatalf("%s single: %v", name, err)
		}
		multi := TrialRunner{Trials: 8, Workers: 4}
		eight, err := multi.Route(context.Background(), circ, dev, opts)
		if err != nil {
			t.Fatalf("%s multi: %v", name, err)
		}
		if eight.AddedGates > one.AddedGates {
			t.Errorf("%s: best-of-8 added %d gates, single trial added %d",
				name, eight.AddedGates, one.AddedGates)
		}
	}
}

func TestTrialRunnerMatchesCoreCompile(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	circ := workloads.QFT(12)
	opts := core.DefaultOptions()
	opts.Seed = 9

	want, err := core.Compile(circ, dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	tr := TrialRunner{Workers: 4} // Trials taken from opts
	got, err := tr.Route(context.Background(), circ, dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	if qasm.Format(got.Circuit) != qasm.Format(want.Circuit) {
		t.Fatal("TrialRunner result diverged from core.Compile for identical options")
	}
	if got.AddedGates != want.AddedGates || got.SwapCount != want.SwapCount {
		t.Fatalf("accounting diverged: runner %d/%d vs compile %d/%d",
			got.AddedGates, got.SwapCount, want.AddedGates, want.SwapCount)
	}
}

func TestTrialRunnerCancellation(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	circ := workloads.QFT(16)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tr := TrialRunner{Trials: 4}
	if _, err := tr.Route(ctx, circ, dev, core.DefaultOptions()); err == nil {
		t.Fatal("expected cancellation error")
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	m, err := Build("route", "peephole", "basis", "schedule", "verify")
	if err != nil {
		t.Fatal(err)
	}
	dev := arch.IBMQ20Tokyo()
	opts := core.DefaultOptions()
	opts.Seed = 3
	pc, err := m.Compile(context.Background(), workloads.QFT(10), dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	if pc.Result == nil {
		t.Fatal("route pass did not record a result")
	}
	if pc.Schedule == nil || pc.Opt == nil {
		t.Fatal("schedule/peephole passes did not record outputs")
	}
	want := []string{"route", "peephole", "basis", "schedule", "verify"}
	if len(pc.Metrics) != len(want) {
		t.Fatalf("expected %d pass metrics, got %d", len(want), len(pc.Metrics))
	}
	for i, met := range pc.Metrics {
		if met.Pass != want[i] {
			t.Errorf("metric %d: pass %q, want %q", i, met.Pass, want[i])
		}
		if met.Gates <= 0 || met.Depth <= 0 {
			t.Errorf("metric %d (%s): empty snapshot %+v", i, met.Pass, met)
		}
	}
	if err := verify.HardwareCompliant(pc.Circuit.DecomposeSwaps(), dev.Connected); err != nil {
		t.Fatalf("pipeline output not compliant: %v", err)
	}
}

func TestParsePassAndSource(t *testing.T) {
	const src = `OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
cx q[0], q[1];
cx q[1], q[2];
cx q[0], q[2];
`
	m, err := Build("parse", "route", "verify")
	if err != nil {
		t.Fatal(err)
	}
	pc := &Ctx{Source: src, Device: arch.Line(3), Options: core.DefaultOptions()}
	if err := m.Run(pc); err != nil {
		t.Fatal(err)
	}
	if pc.Original == nil || pc.Original.NumGates() != 3 {
		t.Fatalf("parse pass did not produce the 3-gate circuit")
	}
}

func TestLayoutThenRouteUsesLayout(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	circ := workloads.QFT(8)
	opts := core.DefaultOptions()
	opts.Seed = 5

	m, err := Build("layout", "route", "verify")
	if err != nil {
		t.Fatal(err)
	}
	pc, err := m.Compile(context.Background(), circ, dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	if pc.Layout.Size() != dev.NumQubits() {
		t.Fatalf("layout pass produced size-%d layout", pc.Layout.Size())
	}
	for q, p := range pc.Layout.LogicalToPhysical() {
		if pc.Result.InitialLayout[q] != p {
			t.Fatalf("route pass ignored the layout pass output at logical %d", q)
		}
	}
}

func TestBaselineRoutersDropIn(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	circ := cxCircuit(10, 60, 2)
	for _, name := range []string{"route:greedy", "route:astar"} {
		m, err := Build(name, "verify")
		if err != nil {
			t.Fatal(err)
		}
		pc, err := m.Compile(context.Background(), circ, dev, core.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if pc.Metrics[0].Pass != name {
			t.Fatalf("%s: metric named %q", name, pc.Metrics[0].Pass)
		}
	}
}

func TestBuildRejectsUnknownPass(t *testing.T) {
	if _, err := Build("route", "nonsense"); err == nil {
		t.Fatal("expected error for unknown pass")
	}
	if _, err := Build("route:quantum-annealer"); err == nil {
		t.Fatal("expected error for unknown router")
	}
	if err := PostRouting([]string{"peephole", "verify"}); err != nil {
		t.Fatal(err)
	}
	if err := PostRouting([]string{"route"}); err == nil {
		t.Fatal("route must not be accepted as a post-routing pass")
	}
}

func TestCalibratePassPinsSnapshot(t *testing.T) {
	dev := arch.Ring(4)
	circ := cxCircuit(4, 12, 3)

	// Uncalibrated device: the pass is a no-op.
	m, err := Build("calibrate", "route", "verify")
	if err != nil {
		t.Fatal(err)
	}
	pc, err := m.Compile(context.Background(), circ, dev, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if pc.CalVersion != 0 || pc.Options.Noise != nil {
		t.Fatal("calibrate pass must be a no-op on an uncalibrated device")
	}

	snap, err := dev.ApplyCalibration(arch.UniformNoise(0.02))
	if err != nil {
		t.Fatal(err)
	}
	pc, err = m.Compile(context.Background(), circ, dev, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if pc.CalVersion != snap.Version {
		t.Fatalf("CalVersion = %d, want %d", pc.CalVersion, snap.Version)
	}
	if pc.Options.Noise != snap.Model {
		t.Fatal("calibrate pass did not substitute the snapshot's noise model")
	}
	if pc.Metrics[0].Pass != "calibrate" {
		t.Fatalf("first metric is %q, want calibrate", pc.Metrics[0].Pass)
	}
}
