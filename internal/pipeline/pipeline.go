// Package pipeline structures compilation as an explicit sequence of
// passes over a shared context — the staged-pipeline architecture that
// lets layout search, routing, basis transpilation, peephole
// optimization, scheduling and verification be composed, instrumented
// and parallelised independently instead of hiding behind one
// monolithic Compile call.
//
// A Pass transforms the shared Ctx; a Manager composes passes with
// per-pass timing/metrics, deterministic seeding and cancellation.
// TrialRunner fans the paper's best-of-N random-restart protocol out
// over a bounded worker pool sharing the device's precomputed distance
// matrices, and selects the winner deterministically, so results are
// byte-identical at any worker count.
package pipeline

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/mapping"
	"repro/internal/opt"
	"repro/internal/route"
	"repro/internal/sched"
)

// Ctx is the shared compilation context a pipeline of passes operates
// on. Passes read and write its fields; the Manager owns the metrics
// and cancellation plumbing. A Ctx is used by one pipeline run at a
// time and is not safe for concurrent mutation (parallelism lives
// inside passes, e.g. TrialRunner's worker pool).
type Ctx struct {
	// Source is OpenQASM 2.0 input for ParsePass; ignored when the
	// Circuit is constructed directly.
	Source string

	// Circuit is the current working circuit: logical before routing,
	// physical after. Each transforming pass replaces it.
	Circuit *circuit.Circuit

	// Original is the last pre-routing circuit, captured by RoutePass
	// for verification and overhead reporting.
	Original *circuit.Circuit

	// Device is the compilation target.
	Device *arch.Device

	// Options carries the SABRE configuration shared by layout and
	// routing passes; Options.Seed is the pipeline's deterministic
	// seed root.
	Options core.Options

	// CalVersion records the device calibration snapshot version a
	// preceding CalibratePass pinned (zero = no calibration pinned).
	CalVersion uint64

	// Layout, when set (Size > 0), is the initial layout routing must
	// start from (produced by LayoutPass or supplied by the caller).
	Layout mapping.Layout

	// Result is the routing outcome, set by RoutePass. Result.Circuit
	// stays the router's raw output even after later passes rewrite
	// Circuit.
	Result *core.Result

	// Schedule is set by SchedulePass.
	Schedule *sched.Schedule

	// Opt is set by PeepholePass.
	Opt *opt.Result

	// RNG is the pipeline's deterministic random source, seeded by the
	// Manager from Options.Seed for passes that need randomness beyond
	// the router's own seeding.
	RNG *rand.Rand

	// Metrics accumulates one entry per executed pass, in order.
	Metrics []PassMetric

	ctx context.Context
}

// Context returns the cancellation context of the running pipeline
// (context.Background outside a run).
func (pc *Ctx) Context() context.Context {
	if pc.ctx == nil {
		return context.Background()
	}
	return pc.ctx
}

// Err reports the pipeline's cancellation state.
func (pc *Ctx) Err() error { return pc.Context().Err() }

// PassMetric instruments one executed pass: its wall-clock time and a
// snapshot of the working circuit after it ran.
type PassMetric struct {
	Pass    string        `json:"pass"`
	Elapsed time.Duration `json:"elapsed_ns"`
	Gates   int           `json:"gates"`
	Depth   int           `json:"depth"`
}

// Pass is one stage of the compilation pipeline. Run mutates the
// shared context and returns an error to abort the pipeline.
type Pass interface {
	Name() string
	Run(pc *Ctx) error
}

// Manager composes passes and executes them in order with per-pass
// timing, deterministic seeding, and cancellation between passes. A
// Manager is immutable once built and safe to share across goroutines;
// each Run gets its own Ctx.
type Manager struct {
	passes []Pass
}

// New builds a Manager over the given passes.
func New(passes ...Pass) *Manager {
	return &Manager{passes: append([]Pass(nil), passes...)}
}

// Passes returns the composed pass names in execution order.
func (m *Manager) Passes() []string {
	names := make([]string, len(m.passes))
	for i, p := range m.passes {
		names[i] = p.Name()
	}
	return names
}

// Run executes the pipeline on pc without external cancellation.
func (m *Manager) Run(pc *Ctx) error {
	return m.RunContext(context.Background(), pc)
}

// RunContext executes the pipeline on pc, checking ctx before each
// pass (long passes additionally honor it internally, e.g. the trial
// runner at trial boundaries). The first pass error aborts the run;
// pc.Metrics records every pass that completed.
func (m *Manager) RunContext(ctx context.Context, pc *Ctx) error {
	if ctx == nil {
		ctx = context.Background()
	}
	pc.ctx = ctx
	defer func() { pc.ctx = nil }()
	if pc.RNG == nil {
		pc.RNG = rand.New(rand.NewSource(pc.Options.Seed))
	}
	for _, p := range m.passes {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("pipeline: cancelled before pass %s: %w", p.Name(), err)
		}
		//sabre:nondeterm-ok wall-clock elapsed metric; never feeds routing decisions
		start := time.Now()
		if err := p.Run(pc); err != nil {
			return fmt.Errorf("pipeline: pass %s: %w", p.Name(), err)
		}
		met := PassMetric{Pass: p.Name(), Elapsed: time.Since(start)}
		if pc.Circuit != nil {
			met.Gates = pc.Circuit.NumGates()
			met.Depth = pc.Circuit.Depth()
		}
		pc.Metrics = append(pc.Metrics, met)
	}
	return nil
}

// Compile is the one-call convenience: it builds a Ctx for the inputs,
// runs the pipeline under ctx, and returns the finished context.
func (m *Manager) Compile(ctx context.Context, circ *circuit.Circuit, dev *arch.Device, opts core.Options) (*Ctx, error) {
	pc := &Ctx{Circuit: circ, Device: dev, Options: opts}
	if err := m.RunContext(ctx, pc); err != nil {
		return pc, err
	}
	return pc, nil
}

// Build composes a Manager from pass names — the form the -passes
// flags and the daemon's JSON accept. Recognized names: parse,
// calibrate, layout, route (optionally route:<name> for any backend in
// the router registry — sabre, greedy, astar, anneal, tokenswap, plus
// anything registered at runtime), basis, peephole, schedule, verify.
// Names are case-insensitive; empty names (from trailing commas) are
// skipped.
func Build(names ...string) (*Manager, error) {
	var passes []Pass
	for _, name := range names {
		p, err := ByName(name)
		if err != nil {
			return nil, err
		}
		if p != nil {
			passes = append(passes, p)
		}
	}
	return New(passes...), nil
}

// ByName resolves one pass name (nil for an empty name).
func ByName(name string) (Pass, error) {
	name = strings.ToLower(strings.TrimSpace(name))
	if name == "" {
		return nil, nil
	}
	kind, arg, _ := strings.Cut(name, ":")
	switch kind {
	case "parse":
		return ParsePass{}, nil
	case "calibrate":
		return CalibratePass{}, nil
	case "layout":
		return LayoutPass{}, nil
	case "route":
		switch arg {
		case "", "sabre", "trials":
			// The default backend is the bounded-pool TrialRunner, not
			// the registry's sequential SabreRouter; both compute the
			// identical result, but the pool parallelises the trials.
			return RoutePass{}, nil
		default:
			r, err := route.New(arg)
			if err != nil {
				return nil, err
			}
			return RoutePass{Router: r}, nil
		}
	case "basis":
		return BasisPass{}, nil
	case "peephole", "opt":
		return PeepholePass{}, nil
	case "schedule", "sched":
		return SchedulePass{}, nil
	case "verify":
		return VerifyPass{}, nil
	}
	return nil, fmt.Errorf("pipeline: unknown pass %q (parse|calibrate|layout|route[:<router>]|basis|peephole|schedule|verify)", name)
}

// PostRouting reports whether every name designates a pass that is
// valid after routing (basis, peephole, schedule, verify) — the subset
// batch jobs may request on top of the engine's own route stage.
func PostRouting(names []string) error {
	for _, name := range names {
		switch strings.ToLower(strings.TrimSpace(name)) {
		case "", "basis", "peephole", "opt", "schedule", "sched", "verify":
		default:
			return fmt.Errorf("pipeline: pass %q is not a post-routing pass (basis|peephole|schedule|verify)", name)
		}
	}
	return nil
}
