package pipeline

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/core"
)

// runTrialRecover runs one trial with a panic fence: a panicking trial
// is recorded (first panic wins, with the panicking goroutine's stack)
// and reported as a failed trial so the worker keeps draining the feed
// — with every worker parked behind an unrecovered panic the feeder
// would deadlock. RunTrials re-raises the captured panic once the pool
// drains.
func runTrialRecover(once *sync.Once, pv *atomic.Value, p *core.Prepared, ctx context.Context, trial int, scratch *core.Scratch) (res *core.Result, depth int, err error) {
	defer func() {
		if r := recover(); r != nil {
			once.Do(func() {
				pv.Store(fmt.Sprintf("pipeline: trial %d panic: %v\n%s", trial, r, debug.Stack()))
			})
			res, depth, err = nil, 0, fmt.Errorf("pipeline: trial %d panicked", trial)
		}
	}()
	return p.RunTrialCtx(ctx, trial, scratch)
}

// TrialRunner executes the paper's best-of-N protocol — N independent
// routing trials, each a full reverse-traversal restart from a
// different random initial mapping — across a bounded worker pool.
//
// All trials share one core.Prepared (widened/reversed circuits and
// the device's cached distance matrices) read-only; nothing is locked
// on the routing hot path. Trial t always uses seed Options.Seed+t and
// results are collected by trial index, then the winner is selected by
// fewest added gates, ties broken by decomposed depth, then by lowest
// seed — so the outcome is byte-identical at any worker count.
//
// With Patience > 0 the runner is adaptive: it stops fanning out new
// seeds once Patience consecutive trials (in seed order) have failed
// to improve the incumbent best. The surviving population is the
// shortest prefix of the trial sequence satisfying the stop rule — a
// pure function of per-trial results, never of scheduling — so the
// selected winner is still byte-identical at any worker count, and
// equals what exhaustive selection over that same prefix would pick.
// Result.TrialsRun reports the population actually selected over.
//
// TrialRunner implements core.Router and is the default routing
// backend of RoutePass.
type TrialRunner struct {
	// Trials is the number of independent seeds (0 = Options.Trials,
	// which defaults to the paper's 5). In adaptive mode it is the
	// upper bound on the population.
	Trials int

	// Workers bounds the pool (0 = min(Trials, GOMAXPROCS)).
	Workers int

	// Patience, when positive, enables adaptive early exit: feeding
	// stops after Patience consecutive non-improving trials. Workers
	// already past the stop point may finish extra trials; those are
	// excluded from selection to keep the outcome deterministic.
	Patience int
}

// Name implements core.Router.
func (TrialRunner) Name() string { return "sabre" }

// Route implements core.Router: it runs the trials and returns the
// deterministic winner. Cancellation is honored at trial boundaries
// and inside each trial's SWAP loop at round granularity; a cancelled
// run returns ctx.Err().
func (tr TrialRunner) Route(ctx context.Context, circ *circuit.Circuit, dev *arch.Device, opts core.Options) (*core.Result, error) {
	//sabre:nondeterm-ok wall-clock elapsed metric; never feeds routing decisions
	start := time.Now()
	results, depths, err := tr.RunTrials(ctx, circ, dev, opts)
	if err != nil {
		return nil, err
	}
	best, err := core.SelectBest(results, depths)
	if err != nil {
		return nil, err
	}
	best.TrialsRun = len(results)
	best.Elapsed = time.Since(start)
	return best, nil
}

// RunTrials runs the trials and returns all surviving results indexed
// by trial (seed offset), with their decomposed depths. In adaptive
// mode (Patience > 0) the slices are truncated to the deterministic
// early-exit population; otherwise their length is the full trial
// count. Exposed so studies and tests can inspect the whole trial
// population, not just the winner.
func (tr TrialRunner) RunTrials(ctx context.Context, circ *circuit.Circuit, dev *arch.Device, opts core.Options) ([]*core.Result, []int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	p, err := core.Prepare(circ, dev, opts)
	if err != nil {
		return nil, nil, err
	}
	n := tr.Trials
	if n <= 0 {
		n = p.Options().Trials
	}
	workers := tr.Workers
	if workers <= 0 || workers > n {
		workers = n
	}
	if max := runtime.GOMAXPROCS(0); tr.Workers <= 0 && workers > max {
		workers = max
	}

	results := make([]*core.Result, n)
	depths := make([]int, n)
	// A panic in a trial worker must not unwind its goroutine — that
	// would kill the whole process, not just this job. The first panic
	// is captured (with the panicking goroutine's stack) and re-raised
	// on the caller's goroutine after the pool drains, where the batch
	// engine's recover turns it into a failed job.
	var (
		panicOnce sync.Once
		panicVal  atomic.Value
	)
	trials := make(chan int)
	// completions is buffered to n so workers never block reporting;
	// the feeder drains it opportunistically to learn the early-exit
	// point.
	completions := make(chan int, n)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			// One Scratch per worker: every trial this worker runs
			// reuses the same warm buffers, and no mutable state is
			// shared across the pool (the shared Prepared is read-only).
			scratch := core.NewScratch()
			for trial := range trials {
				// RunTrialCtx polls ctx inside the SWAP loop at round
				// granularity, so cancellation kills even one enormous
				// in-flight trial promptly — the run as a whole then
				// fails with ctx.Err() after the pool drains. A
				// cancelled trial must NOT report completion: its
				// results slot is nil, and the prefix watcher walking
				// a "completed" nil entry would dereference it. The
				// feeder still terminates via its ctx.Done case.
				res, depth, err := runTrialRecover(&panicOnce, &panicVal, p, ctx, trial, scratch)
				if err != nil {
					continue
				}
				results[trial], depths[trial] = res, depth
				completions <- trial
			}
		}()
	}

	// stop is the known population bound: n until the adaptive rule
	// fires on the contiguous completed prefix, then the deterministic
	// early-exit point. Feeding never stops before every trial below
	// the final stop point has been fed (the rule can only fire once
	// they completed), so the surviving prefix is always fully present.
	stop := n
	completed := make([]bool, n)
	prefix := newPrefixWatcher(results, depths, tr.Patience)
	onCompletion := func(trial int) {
		completed[trial] = true
		if s, ok := prefix.advance(completed); ok && s < stop {
			stop = s
		}
	}

feed:
	for trial := 0; trial < n && trial < stop; trial++ {
		for {
			select {
			case trials <- trial:
				continue feed
			case t := <-completions:
				onCompletion(t)
				if trial >= stop {
					break feed
				}
			case <-ctx.Done():
				break feed
			}
		}
	}
	close(trials)
	wg.Wait()
	if pv := panicVal.Load(); pv != nil {
		// Re-raise the captured trial panic on this goroutine: the
		// batch engine's recover converts it into a failed job while
		// the daemon keeps serving. Re-panicking (rather than
		// returning an error) keeps panic semantics for direct
		// library callers, with the original stack in the value.
		panic(pv)
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	// Recompute the stop point over the final population. Workers may
	// have finished trials past it; truncating to the recomputed point
	// keeps the result a pure function of per-trial outcomes.
	if tr.Patience > 0 {
		final := newPrefixWatcher(results, depths, tr.Patience)
		pop := n
		if s, ok := final.advanceAll(); ok {
			pop = s
		}
		results, depths = results[:pop], depths[:pop]
	}
	return results, depths, nil
}

// prefixWatcher evaluates the adaptive stop rule incrementally over
// the contiguous completed prefix of a trial population, in strict
// trial order: track the incumbent best (per core.BetterTrial) and
// stop after `patience` consecutive trials that failed to improve it.
type prefixWatcher struct {
	results  []*core.Result
	depths   []int
	patience int

	next     int // first trial not yet evaluated
	best     int // incumbent trial index (-1 before any)
	sinceImp int // consecutive non-improving trials
}

func newPrefixWatcher(results []*core.Result, depths []int, patience int) *prefixWatcher {
	return &prefixWatcher{results: results, depths: depths, patience: patience, best: -1}
}

// step evaluates one completed trial; it returns the population size
// (trial+1) and true when the stop rule fires at that trial.
func (w *prefixWatcher) step(trial int) (int, bool) {
	if w.best < 0 || core.BetterTrial(w.results[trial], w.depths[trial], trial,
		w.results[w.best], w.depths[w.best], w.best) {
		w.best = trial
		w.sinceImp = 0
	} else {
		w.sinceImp++
	}
	if w.patience > 0 && w.sinceImp >= w.patience {
		return trial + 1, true
	}
	return trial + 1, false
}

// advance consumes newly completed trials in order and reports the
// stop point once the rule fires on the contiguous prefix.
func (w *prefixWatcher) advance(completed []bool) (int, bool) {
	for w.next < len(completed) && completed[w.next] {
		pop, fired := w.step(w.next)
		w.next++
		if fired {
			return pop, true
		}
	}
	return 0, false
}

// advanceAll walks the full non-nil prefix (used after the pool
// drained, when every fed trial has completed).
func (w *prefixWatcher) advanceAll() (int, bool) {
	for w.next < len(w.results) && w.results[w.next] != nil {
		pop, fired := w.step(w.next)
		w.next++
		if fired {
			return pop, true
		}
	}
	return 0, false
}
