package pipeline

import (
	"context"
	"runtime"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/core"
)

// TrialRunner executes the paper's best-of-N protocol — N independent
// routing trials, each a full reverse-traversal restart from a
// different random initial mapping — across a bounded worker pool.
//
// All trials share one core.Prepared (widened/reversed circuits and
// the device's cached distance matrices) read-only; nothing is locked
// on the routing hot path. Trial t always uses seed Options.Seed+t and
// results are collected by trial index, then the winner is selected by
// fewest added gates, ties broken by decomposed depth, then by lowest
// seed — so the outcome is byte-identical at any worker count.
//
// TrialRunner implements core.Router and is the default routing
// backend of RoutePass.
type TrialRunner struct {
	// Trials is the number of independent seeds (0 = Options.Trials,
	// which defaults to the paper's 5).
	Trials int

	// Workers bounds the pool (0 = min(Trials, GOMAXPROCS)).
	Workers int
}

// Name implements core.Router.
func (TrialRunner) Name() string { return "sabre" }

// Route implements core.Router: it runs the trials and returns the
// deterministic winner. Cancellation is honored at trial boundaries;
// a cancelled run returns ctx.Err().
func (tr TrialRunner) Route(ctx context.Context, circ *circuit.Circuit, dev *arch.Device, opts core.Options) (*core.Result, error) {
	start := time.Now()
	results, depths, err := tr.RunTrials(ctx, circ, dev, opts)
	if err != nil {
		return nil, err
	}
	best := core.SelectBest(results, depths)
	best.TrialsRun = len(results)
	best.Elapsed = time.Since(start)
	return best, nil
}

// RunTrials runs every trial and returns all results indexed by trial
// (seed offset), with their decomposed depths. Exposed so studies and
// tests can inspect the full trial population, not just the winner.
func (tr TrialRunner) RunTrials(ctx context.Context, circ *circuit.Circuit, dev *arch.Device, opts core.Options) ([]*core.Result, []int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	p, err := core.Prepare(circ, dev, opts)
	if err != nil {
		return nil, nil, err
	}
	n := tr.Trials
	if n <= 0 {
		n = p.Options().Trials
	}
	workers := tr.Workers
	if workers <= 0 || workers > n {
		workers = n
	}
	if max := runtime.GOMAXPROCS(0); tr.Workers <= 0 && workers > max {
		workers = max
	}

	results := make([]*core.Result, n)
	depths := make([]int, n)
	trials := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for trial := range trials {
				results[trial], depths[trial] = p.RunTrial(trial)
			}
		}()
	}
feed:
	for trial := 0; trial < n; trial++ {
		select {
		case trials <- trial:
		case <-ctx.Done():
			break feed
		}
	}
	close(trials)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	return results, depths, nil
}
