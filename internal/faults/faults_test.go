package faults

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// sink is an in-memory WriteSyncer.
type sink struct {
	buf    bytes.Buffer
	syncs  int
	closed bool
}

func (s *sink) Write(p []byte) (int, error) { return s.buf.Write(p) }
func (s *sink) Sync() error                 { s.syncs++; return nil }
func (s *sink) Close() error                { s.closed = true; return nil }

func TestInjectorOrdinals(t *testing.T) {
	inj := NewInjector().FailAt(OpWrite, 2).FailAt(OpWrite, 4).FailAt(OpSync, 1)
	s := &sink{}
	f := NewFile(s, inj)
	for i, wantErr := range []bool{false, true, false, true, false} {
		_, err := f.Write([]byte("x"))
		if wantErr != (err != nil) {
			t.Fatalf("write #%d: err = %v, want failure=%v", i+1, err, wantErr)
		}
		if err != nil && !errors.Is(err, ErrInjected) {
			t.Fatalf("write #%d: %v is not ErrInjected", i+1, err)
		}
	}
	if got := s.buf.String(); got != "xxx" {
		t.Fatalf("inner saw %q, want xxx (failed writes must write nothing)", got)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync #1 = %v, want ErrInjected", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync #2 = %v", err)
	}
	if s.syncs != 1 {
		t.Fatalf("inner syncs = %d, want 1", s.syncs)
	}
	if n := inj.Count(OpWrite); n != 5 {
		t.Fatalf("Count(write) = %d, want 5", n)
	}
	if err := f.Close(); err != nil || !s.closed {
		t.Fatalf("close: err=%v closed=%v", err, s.closed)
	}
}

func TestInjectorRename(t *testing.T) {
	inj := NewInjector().FailAt(OpRename, 1)
	var got [][2]string
	rename := inj.Rename(func(o, n string) error {
		got = append(got, [2]string{o, n})
		return nil
	})
	if err := rename("a", "b"); !errors.Is(err, ErrInjected) {
		t.Fatalf("rename #1 = %v, want ErrInjected", err)
	}
	if len(got) != 0 {
		t.Fatal("failed rename reached the delegate")
	}
	if err := rename("a", "b"); err != nil {
		t.Fatalf("rename #2 = %v", err)
	}
	if len(got) != 1 || got[0] != [2]string{"a", "b"} {
		t.Fatalf("delegate saw %v", got)
	}
}

func TestWebhookServerScript(t *testing.T) {
	ws := NewWebhookServer(StepServerError, StepNotFound, StepOK)
	defer ws.Close()

	post := func() (*http.Response, error) {
		return http.Post(ws.URL(), "application/json", strings.NewReader(`{"n":1}`))
	}
	wantStatus := []int{500, 404, 200, 200} // beyond the script: 200
	for i, want := range wantStatus {
		resp, err := post()
		if err != nil {
			t.Fatalf("attempt %d: %v", i+1, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("attempt %d: status %d, want %d", i+1, resp.StatusCode, want)
		}
	}
	if ws.Attempts() != len(wantStatus) {
		t.Fatalf("Attempts = %d, want %d", ws.Attempts(), len(wantStatus))
	}
	for i, d := range ws.Deliveries() {
		if string(d.Body) != `{"n":1}` {
			t.Fatalf("delivery %d body = %q", i, d.Body)
		}
	}
}

func TestWebhookServerReset(t *testing.T) {
	ws := NewWebhookServer(StepReset, StepOK)
	defer ws.Close()
	_, err := http.Post(ws.URL(), "application/json", strings.NewReader("{}"))
	if err == nil {
		t.Fatal("reset step produced a response, want transport error")
	}
	resp, err := http.Post(ws.URL(), "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatalf("attempt 2: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("attempt 2 status %d", resp.StatusCode)
	}
}

func TestWebhookServerDelayTimesOut(t *testing.T) {
	// Short delay: httptest.Close waits for the handler's sleep.
	ws := NewWebhookServer(StepDelay(300*time.Millisecond, 200))
	defer ws.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ws.URL(), strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := http.DefaultClient.Do(req); err == nil {
		t.Fatal("delayed response beat a 50ms client timeout")
	}
}
