package faults

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"
)

// WebhookStep is one scripted behavior of the misbehaving webhook
// server — what the server does to the next delivery attempt.
type WebhookStep struct {
	// Status is the HTTP status to answer with (0 behaves as 200).
	Status int
	// Delay sleeps before answering — longer than the client's
	// timeout, it manifests as a delivery timeout.
	Delay time.Duration
	// Reset hangs up the TCP connection without writing a response:
	// the client sees a connection reset / unexpected EOF.
	Reset bool
}

// Common steps.
var (
	// StepOK answers 200.
	StepOK = WebhookStep{Status: http.StatusOK}
	// StepServerError answers 500 — the retryable failure.
	StepServerError = WebhookStep{Status: http.StatusInternalServerError}
	// StepNotFound answers 404 — a permanent client error that must
	// not be retried.
	StepNotFound = WebhookStep{Status: http.StatusNotFound}
	// StepTooMany answers 429 — the retryable client error.
	StepTooMany = WebhookStep{Status: http.StatusTooManyRequests}
	// StepReset drops the connection mid-request.
	StepReset = WebhookStep{Reset: true}
)

// StepDelay answers status after sleeping d.
func StepDelay(d time.Duration, status int) WebhookStep {
	return WebhookStep{Status: status, Delay: d}
}

// Delivery records one request the webhook server received.
type Delivery struct {
	Body    []byte
	Headers http.Header
}

// WebhookServer is an HTTP test server that misbehaves on a script:
// attempt i gets script[i]'s treatment; attempts beyond the script
// succeed with 200. It records every request body it managed to read,
// including ones it then failed — exactly what a flaky real consumer
// does.
type WebhookServer struct {
	srv    *httptest.Server
	script []WebhookStep

	mu         sync.Mutex
	deliveries []Delivery
}

// NewWebhookServer starts the server with the given script. Close it
// when done.
func NewWebhookServer(script ...WebhookStep) *WebhookServer {
	ws := &WebhookServer{script: script}
	ws.srv = httptest.NewServer(http.HandlerFunc(ws.handle))
	return ws
}

// URL is the server's base URL — the value under test hands to the
// queue as the job's webhook.
func (ws *WebhookServer) URL() string { return ws.srv.URL }

// Close shuts the server down.
func (ws *WebhookServer) Close() { ws.srv.Close() }

// Deliveries returns a copy of every recorded request, in arrival
// order.
func (ws *WebhookServer) Deliveries() []Delivery {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return append([]Delivery(nil), ws.deliveries...)
}

// Attempts reports how many requests arrived.
func (ws *WebhookServer) Attempts() int {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return len(ws.deliveries)
}

func (ws *WebhookServer) handle(w http.ResponseWriter, r *http.Request) {
	body, _ := io.ReadAll(r.Body)
	ws.mu.Lock()
	n := len(ws.deliveries)
	ws.deliveries = append(ws.deliveries, Delivery{Body: body, Headers: r.Header.Clone()})
	step := StepOK
	if n < len(ws.script) {
		step = ws.script[n]
	}
	ws.mu.Unlock()

	if step.Delay > 0 {
		time.Sleep(step.Delay)
	}
	if step.Reset {
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
				return
			}
		}
		// No hijack support: fall through to a 500, still a failure.
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	status := step.Status
	if status == 0 {
		status = http.StatusOK
	}
	w.WriteHeader(status)
}
