// Package faults is the repo's fault-injection toolkit: a scripted
// injector that fails the Nth occurrence of an operation, a file
// wrapper that feeds joblog with failing writes/fsyncs, a rename
// breaker for torn compactions, a misbehaving webhook test server
// (500s, timeouts, connection resets on a script), and a router that
// panics mid-job. It exists so the durability and isolation claims in
// internal/joblog, internal/jobqueue and cmd/sabred are proven against
// actual failures, not assumed.
//
// Everything here is deterministic: a script says exactly which
// operation fails, so a test that passes once passes always.
package faults

import (
	"errors"
	"fmt"
	"io"
	"sync"
)

// Op names an injectable operation.
type Op string

// The operations the injector scripts.
const (
	OpWrite  Op = "write"
	OpSync   Op = "sync"
	OpClose  Op = "close"
	OpRename Op = "rename"
)

// ErrInjected is the failure the injector returns (wrapped with the
// operation and its ordinal), so tests can errors.Is for it.
var ErrInjected = errors.New("faults: injected failure")

// Injector counts operations and fails the scripted ones. The zero
// value injects nothing; safe for concurrent use.
type Injector struct {
	mu     sync.Mutex
	counts map[Op]int
	failAt map[Op]map[int]bool // op -> 1-based ordinals that fail
}

// NewInjector returns an empty injector (all operations succeed until
// scripted otherwise).
func NewInjector() *Injector { return &Injector{} }

// FailAt makes the nth (1-based) occurrence of op fail. Multiple
// ordinals may be scripted per op.
func (in *Injector) FailAt(op Op, n int) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.failAt == nil {
		in.failAt = make(map[Op]map[int]bool)
	}
	if in.failAt[op] == nil {
		in.failAt[op] = make(map[int]bool)
	}
	in.failAt[op][n] = true
	return in
}

// Count reports how many times op has been attempted.
func (in *Injector) Count(op Op) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts[op]
}

// check records one attempt of op and returns the injected error if
// this ordinal is scripted to fail.
func (in *Injector) check(op Op) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.counts == nil {
		in.counts = make(map[Op]int)
	}
	in.counts[op]++
	if in.failAt[op][in.counts[op]] {
		return fmt.Errorf("%w: %s #%d", ErrInjected, op, in.counts[op])
	}
	return nil
}

// Rename returns an os.Rename-shaped function that consults the
// injector before delegating to next — joblog's compaction rename
// seam.
func (in *Injector) Rename(next func(oldpath, newpath string) error) func(oldpath, newpath string) error {
	return func(oldpath, newpath string) error {
		if err := in.check(OpRename); err != nil {
			return err
		}
		return next(oldpath, newpath)
	}
}

// WriteSyncer is the file shape the wrapper intercepts — structurally
// identical to joblog.File and satisfied by *os.File, so the wrapper
// drops into joblog.Config.Wrap without an import edge.
type WriteSyncer interface {
	io.Writer
	Sync() error
	Close() error
}

// File wraps a WriteSyncer, failing the scripted writes/syncs/closes.
type File struct {
	inner WriteSyncer
	inj   *Injector
}

// NewFile wraps f with the injector's script.
func NewFile(f WriteSyncer, inj *Injector) *File { return &File{inner: f, inj: inj} }

// Write implements io.Writer; a scripted failure writes nothing.
func (f *File) Write(p []byte) (int, error) {
	if err := f.inj.check(OpWrite); err != nil {
		return 0, err
	}
	return f.inner.Write(p)
}

// Sync implements WriteSyncer.
func (f *File) Sync() error {
	if err := f.inj.check(OpSync); err != nil {
		return err
	}
	return f.inner.Sync()
}

// Close implements WriteSyncer.
func (f *File) Close() error {
	if err := f.inj.check(OpClose); err != nil {
		return err
	}
	return f.inner.Close()
}
