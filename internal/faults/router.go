package faults

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/route"
)

// PanicRouter is a core.Router that panics partway through routing —
// the poisoned-circuit stand-in that proves one bad job cannot take
// the daemon down. The batch engine must recover it into a failed
// job (batch.PanicError, stack recorded) while every other job keeps
// compiling.
type PanicRouter struct{}

// Name implements core.Router.
func (PanicRouter) Name() string { return "panic" }

// Route implements core.Router by panicking.
func (PanicRouter) Route(ctx context.Context, circ *circuit.Circuit, dev *arch.Device, opts core.Options) (*core.Result, error) {
	panic(fmt.Sprintf("faults: scripted router panic (circuit %q, %d gates)", circ.Name(), circ.NumGates()))
}

var registerOnce sync.Once

// RegisterPanicRouter registers PanicRouter as route:panic in the
// global router registry. Idempotent. Only test drivers and sabred's
// -fault-routes flag call this — production registries never carry it.
func RegisterPanicRouter() {
	registerOnce.Do(func() {
		route.Register("panic", func() core.Router { return PanicRouter{} })
	})
}
