package core

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/mapping"
	"repro/internal/workloads"
)

// BenchmarkRoutePass measures one full routing traversal over real
// Table II workloads (largest rows included), under each scoring
// engine: the branch-free bitset default, the delta oracle, and the
// exhaustive reference. All share the prepared DAG and warm scratch,
// so the gaps are purely the per-round scoring machinery; allocs/op ≈
// a handful per pass (output circuit + layout clones), none of them
// per-round.
func BenchmarkRoutePass(b *testing.B) {
	dev := arch.IBMQ20Tokyo()
	for _, name := range []string{"qft_16", "qft_20", "rd84_253", "9symml_195"} {
		bench, ok := workloads.ByName(name)
		if !ok {
			b.Fatalf("unknown benchmark %s", name)
		}
		circ := bench.Build().Widen(dev.NumQubits())
		for _, mode := range []struct {
			name    string
			scoring Scoring
		}{{"bitset", ScoringBitset}, {"delta", ScoringDelta}, {"exhaustive", ScoringExhaustive}} {
			opts := DefaultOptions()
			opts.Scoring = mode.scoring
			pr := NewPassRunner(circ, dev, opts)
			b.Run(name+"/"+mode.name, func(b *testing.B) {
				scratch := NewScratch()
				rng := rand.New(rand.NewSource(1))
				init := mapping.Random(dev.NumQubits(), rng)
				pr.Run(init, rng, scratch) // warm the scratch
				b.ReportAllocs()
				b.ResetTimer()
				var swaps int
				for i := 0; i < b.N; i++ {
					res := pr.Run(init, rand.New(rand.NewSource(1)), scratch)
					swaps = res.SwapCount
				}
				b.ReportMetric(float64(swaps), "swaps")
			})
		}
	}
}
