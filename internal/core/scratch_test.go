package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/mapping"
	"repro/internal/workloads"
)

// TestGateEpochOverflowReset pins the epoch-overflow contract of the
// gate-mark buffer: when the int32 epoch wraps, every mark is zeroed —
// across the buffer's full capacity, not just the slice a smaller
// circuit is currently using — and the epoch restarts at 1, so no
// stale mark can ever equal a live epoch again. (The edge-candidate
// buffer once had its own epoch scheme; it was superseded by the
// consume-to-zero bitset, leaving the gate marks as the only
// epoch-stamped state.)
func TestGateEpochOverflowReset(t *testing.T) {
	s := NewScratch()
	s.reset(4, 8, 4)
	// Stamp every mark, including what will become the hidden tail
	// after shrinking to a 4-gate circuit.
	full := s.gateMark[:cap(s.gateMark)]
	for i := range full {
		full[i] = math.MaxInt32
	}
	s.reset(4, 4, 4)
	s.gateEpoch = math.MaxInt32

	if e := s.nextGateEpoch(); e != 1 {
		t.Fatalf("epoch after overflow = %d, want 1", e)
	}
	if s.gateEpoch != 1 {
		t.Fatalf("stored epoch after overflow = %d, want 1", s.gateEpoch)
	}
	for i, m := range s.gateMark[:cap(s.gateMark)] {
		if m != 0 {
			t.Fatalf("gateMark[%d] = %d after overflow, want 0 (stale marks in the hidden tail would corrupt a later, larger circuit)", i, m)
		}
	}
	// The next epoch is 2: strictly above every (zeroed) mark.
	if e := s.nextGateEpoch(); e != 2 {
		t.Fatalf("epoch after reset advances to %d, want 2", e)
	}
}

// TestEpochWrapMidRouting routes a real circuit with the epoch one
// step from overflow and checks the result is byte-identical to a
// fresh scratch: the wrap must be invisible to the search.
func TestEpochWrapMidRouting(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	circ := workloads.QFT(10).Widen(dev.NumQubits())
	opts := DefaultOptions()
	pr := NewPassRunner(circ, dev, opts)

	fresh := pr.Run(mapping.Identity(dev.NumQubits()), rand.New(rand.NewSource(7)), nil)

	s := NewScratch()
	s.reset(dev.NumQubits(), circ.NumGates(), len(dev.Edges()))
	s.gateEpoch = math.MaxInt32 - 1
	wrapped := pr.Run(mapping.Identity(dev.NumQubits()), rand.New(rand.NewSource(7)), s)

	if fresh.SwapCount != wrapped.SwapCount ||
		fresh.Circuit.NumGates() != wrapped.Circuit.NumGates() {
		t.Fatalf("epoch wrap changed the route: fresh %d swaps/%d gates, wrapped %d swaps/%d gates",
			fresh.SwapCount, fresh.Circuit.NumGates(), wrapped.SwapCount, wrapped.Circuit.NumGates())
	}
	for i, g := range fresh.Circuit.Gates() {
		if g.String() != wrapped.Circuit.Gates()[i].String() {
			t.Fatalf("epoch wrap changed gate %d: %v vs %v", i, g, wrapped.Circuit.Gates()[i])
		}
	}
}

// TestCandWordsAllZeroAcrossDevices pins the candidate bitset's
// consume-to-zero invariant across a device downsize: after routing on
// a multi-word device (Grid(8,8): 112 edges, two words), every word —
// across the buffer's full capacity — is zero, so a later, smaller
// device (one word) starts clean with no epoch bookkeeping at all.
func TestCandWordsAllZeroAcrossDevices(t *testing.T) {
	s := NewScratch()
	big := arch.Grid(8, 8)
	if got := (len(big.Edges()) + 63) / 64; got < 2 {
		t.Fatalf("Grid(8,8) spans %d candidate words, need ≥2 for this test", got)
	}
	circ := workloads.QFT(12).Widen(big.NumQubits())
	pr := NewPassRunner(circ, big, DefaultOptions())
	pr.Run(mapping.Identity(big.NumQubits()), rand.New(rand.NewSource(3)), s)
	for i, w := range s.candWords[:cap(s.candWords)] {
		if w != 0 {
			t.Fatalf("candWords[%d] = %#x after traversal, want 0 (consume-to-zero invariant)", i, w)
		}
	}

	small := arch.IBMQ20Tokyo()
	circ2 := workloads.QFT(8).Widen(small.NumQubits())
	pr2 := NewPassRunner(circ2, small, DefaultOptions())
	res := pr2.Run(mapping.Identity(small.NumQubits()), rand.New(rand.NewSource(3)), s)
	ref := pr2.Run(mapping.Identity(small.NumQubits()), rand.New(rand.NewSource(3)), nil)
	if res.SwapCount != ref.SwapCount {
		t.Fatalf("reused scratch altered routing on the smaller device: %d swaps vs %d", res.SwapCount, ref.SwapCount)
	}
}
