// Package core implements SABRE, the SWAP-based BidiREctional heuristic
// search algorithm for the qubit mapping problem (paper §IV): the
// preprocessing pipeline (§IV-A), the SWAP-based heuristic search of
// Algorithm 1 (§IV-B), the heuristic cost functions of Eq. 1 and Eq. 2
// (§IV-D) with look-ahead and decay, and the reverse-traversal initial
// mapping technique (§IV-C2).
package core

import (
	"fmt"
	"time"

	"repro/internal/arch"
	"repro/internal/circuit"
)

// Heuristic selects the cost function used to score candidate SWAPs.
type Heuristic uint8

const (
	// HeuristicBasic is Eq. 1: the summed nearest-neighbour distance of
	// the front-layer qubit pairs.
	HeuristicBasic Heuristic = iota
	// HeuristicLookahead is Eq. 2 with δ=0: size-normalized front-layer
	// term plus W-weighted extended-set term.
	HeuristicLookahead
	// HeuristicDecay is the full Eq. 2 including the decay factor that
	// steers the search toward non-overlapping (parallel) SWAPs.
	HeuristicDecay
)

// String implements fmt.Stringer.
func (h Heuristic) String() string {
	switch h {
	case HeuristicBasic:
		return "basic"
	case HeuristicLookahead:
		return "lookahead"
	case HeuristicDecay:
		return "decay"
	default:
		return fmt.Sprintf("heuristic(%d)", uint8(h))
	}
}

// Scoring selects the engine that evaluates candidate SWAPs each
// round. All engines share candidate collection (ascending dense edge
// id) and winner selection (one reservoir-sampled tie break over the
// same score sequence), so for any circuit and seed they produce
// byte-identical routed output: bitset vs delta is bit-identical by
// construction (same additions in the same order), and exhaustive is
// the from-scratch oracle the golden suite pins both against.
type Scoring uint8

const (
	// ScoringBitset is the default production engine: candidates are
	// gathered by OR-ing per-qubit incident-edge bitsets and iterated
	// with bits.TrailingZeros64; per-qubit round state is a flat CSR
	// index over physical partners, so the per-candidate loop is a
	// straight-line gather with no membership branch.
	ScoringBitset Scoring = iota
	// ScoringDelta is the PR-4 incremental scorer (per-qubit gate lists
	// with sign-encoded membership). Kept as the mid-level oracle:
	// bit-identical to ScoringBitset, structurally independent of it.
	ScoringDelta
	// ScoringExhaustive rescores every front/extended gate from scratch
	// per candidate — the reference behavior. See ExhaustiveScoring for
	// its float-associativity caveat under noise models.
	ScoringExhaustive
)

// String implements fmt.Stringer.
func (s Scoring) String() string {
	switch s {
	case ScoringBitset:
		return "bitset"
	case ScoringDelta:
		return "delta"
	case ScoringExhaustive:
		return "exhaustive"
	default:
		return fmt.Sprintf("scoring(%d)", uint8(s))
	}
}

// Options configures SABRE. The zero value is not meaningful; start
// from DefaultOptions, which mirrors the paper's §V "Algorithm
// Configuration".
type Options struct {
	// Heuristic picks the cost function (default HeuristicDecay).
	Heuristic Heuristic

	// ExtendedSetSize is |E|, the number of look-ahead two-qubit gates
	// beyond the front layer (paper uses 20).
	ExtendedSetSize int

	// ExtendedSetWeight is W in Eq. 2, 0 ≤ W < 1 (paper uses 0.5).
	ExtendedSetWeight float64

	// DecayDelta is δ: the decay increment applied to a qubit's decay
	// parameter each time it participates in a selected SWAP (paper
	// uses 0.001). Larger δ pushes the search toward non-overlapping
	// SWAPs, trading gate count for depth (paper §IV-C3, Fig. 8).
	DecayDelta float64

	// DecayResetInterval resets all decay parameters after this many
	// consecutive SWAP selections (paper resets every 5 search steps;
	// decay is also reset whenever a CNOT is executed).
	DecayResetInterval int

	// Trials is the number of independent random initial mappings; the
	// best result is kept (paper uses 5).
	Trials int

	// Traversals is the number of forward/backward passes per trial
	// (paper uses 3: forward-backward-forward). Must be odd so the
	// final pass runs the original circuit; Compile rounds up.
	Traversals int

	// Seed makes runs reproducible. Trials t uses Seed+t.
	Seed int64

	// MaxStall bounds consecutive SWAP insertions without executing a
	// gate before the router falls back to deterministic shortest-path
	// routing of the oldest front gate (a termination safeguard; 0
	// selects 4·diameter+16). See DESIGN.md "Algorithm notes".
	MaxStall int

	// UseBridge enables the 4-CNOT bridge transformation for distance-2
	// CNOTs whose qubit pair does not recur in the extended set: same
	// 3-gate overhead as a SWAP, but the mapping is left untouched
	// (§VI's circuit-transformation extension).
	UseBridge bool

	// Noise, when non-nil, makes the heuristic route over
	// reliability-weighted distances (-ln(1-err) per edge) instead of
	// hop counts — the variability-aware extension of §VI. The distance
	// matrix is recomputed per traversal from the model.
	Noise *arch.NoiseModel

	// MaxEdgeError, with Noise set, excludes couplers whose error rate
	// exceeds it from routing entirely (near-dead couplers). Edges are
	// restored best-first if pruning would disconnect the chip. 0
	// disables pruning.
	MaxEdgeError float64

	// Scoring selects the round-scoring engine (default ScoringBitset).
	// All engines route identically — see the Scoring type — so, like
	// ParallelTrials, this field is excluded from batch cache keys.
	Scoring Scoring

	// ExhaustiveScoring disables incremental scoring and rescores
	// every front/extended gate from scratch for every candidate SWAP —
	// the pre-optimization reference behavior. It is the legacy spelling
	// of Scoring: ScoringExhaustive (an explicit non-default Scoring
	// wins over this flag). With hop-count distances (Noise == nil, the
	// paper's configuration) the scorers are provably bit-identical —
	// sums are exact int64 — so routed outputs match byte for byte.
	// Under a NoiseModel the float sums agree only to ~1 ulp (base+Δ
	// re-associates the accumulation), which could in principle flip a
	// score that lands within ~1e-16 of the 1e-12 tie band; the golden
	// determinism suite verifies byte-identical outputs on the real
	// noise configurations. This knob exists for validation and for
	// benchmarking the incremental scorers against their oracle. Leave
	// false in production.
	ExhaustiveScoring bool

	// ParallelTrials runs the random restarts on separate goroutines.
	// Results are bit-identical to the sequential path (each trial owns
	// its PRNG and the winner is selected in trial order); only
	// wall-clock time changes.
	ParallelTrials bool
}

// DefaultOptions returns the paper's evaluation configuration:
// |E|=20, W=0.5, δ=0.001 with reset interval 5, 5 trials, 3 traversals.
func DefaultOptions() Options {
	return Options{
		Heuristic:          HeuristicDecay,
		ExtendedSetSize:    20,
		ExtendedSetWeight:  0.5,
		DecayDelta:         0.001,
		DecayResetInterval: 5,
		Trials:             5,
		Traversals:         3,
		Seed:               1,
	}
}

// normalized fills zero fields with defaults and repairs out-of-range
// values so the router never has to re-validate.
func (o Options) normalized() Options {
	d := DefaultOptions()
	if o.ExtendedSetSize <= 0 {
		o.ExtendedSetSize = d.ExtendedSetSize
	}
	if o.ExtendedSetWeight <= 0 || o.ExtendedSetWeight >= 1 {
		// W=0 is expressible via HeuristicBasic; treat 0 as unset.
		o.ExtendedSetWeight = d.ExtendedSetWeight
	}
	if o.DecayDelta < 0 {
		o.DecayDelta = d.DecayDelta
	}
	if o.DecayResetInterval <= 0 {
		o.DecayResetInterval = d.DecayResetInterval
	}
	if o.Trials <= 0 {
		o.Trials = d.Trials
	}
	if o.Traversals <= 0 {
		o.Traversals = d.Traversals
	}
	if o.Traversals%2 == 0 {
		o.Traversals++
	}
	if o.ExhaustiveScoring && o.Scoring == ScoringBitset {
		o.Scoring = ScoringExhaustive
	}
	return o
}

// Result is the outcome of Compile: the hardware-compliant physical
// circuit and its accounting, mirroring the paper's Table II columns.
type Result struct {
	// Circuit is the routed circuit over the device's physical qubits,
	// with inserted SWAPs kept symbolic (use DecomposeSwaps for the
	// pure {1q, CX} form whose counts Table II reports).
	Circuit *circuit.Circuit

	// InitialLayout and FinalLayout are logical→physical assignments
	// before the first and after the last output gate.
	InitialLayout []int
	FinalLayout   []int

	// SwapCount and BridgeCount are the inserted SWAPs and bridges;
	// AddedGates = 3·SwapCount + 3·BridgeCount (a SWAP decomposes into
	// 3 CNOTs; a bridge realizes one CNOT with 4).
	SwapCount   int
	BridgeCount int
	AddedGates  int

	// FirstTraversalAdded is g_la: added gates after the first forward
	// traversal of the winning trial, before reverse-traversal
	// improvement (Table II's g_la column).
	FirstTraversalAdded int

	// TrialsRun counts the random restarts performed.
	TrialsRun int

	// Stats instruments the winning trial's final traversal.
	Stats PassStats

	// Elapsed is the wall-clock compile time (Table II's t_op).
	Elapsed time.Duration
}
