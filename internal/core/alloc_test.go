package core

import (
	"fmt"
	"testing"
)

// steadyStateRouter returns a router parked at its first SWAP-selection
// round of the probe workload (see ScoreRoundProbe): front layer
// populated, nothing executable, buffers warm. Used by the alloc guard
// and BenchmarkScoreRound.
func steadyStateRouter(tb testing.TB, scoring Scoring) *router {
	tb.Helper()
	return NewScoreRoundProbe(scoring).r
}

// TestScoreRoundZeroAllocs is the hot-loop allocation guard: once the
// scratch is warm, a steady-state SWAP-selection round — candidate
// collection, extended-set lookup, index + base-sum rebuild, and
// scoring every candidate — must not touch the heap at all, under any
// of the three scoring engines. If an allocation creeps back into the
// round (a map, a fresh slice, a closure capture), this fails loudly.
func TestScoreRoundZeroAllocs(t *testing.T) {
	for _, scoring := range []Scoring{ScoringBitset, ScoringDelta, ScoringExhaustive} {
		t.Run(scoring.String(), func(t *testing.T) {
			r := steadyStateRouter(t, scoring)
			allocs := testing.AllocsPerRun(200, func() {
				_ = r.scoreRound()
			})
			if allocs != 0 {
				t.Fatalf("steady-state %s SWAP round performs %v allocs/round, want 0", scoring, allocs)
			}
		})
	}
}

// TestApplySwapZeroAllocs guards the apply side of a round: emitting
// the winning SWAP, updating the layout, and the decay bookkeeping
// must stay off the heap once the output buffer is warm. Applying the
// same edge twice restores the layout (SWAP is an involution), so the
// round-trip measures steady state without drifting the router.
func TestApplySwapZeroAllocs(t *testing.T) {
	r := steadyStateRouter(t, ScoringBitset)
	e := r.candidate(0)
	n := len(r.s.out)
	r.applySwap(e)
	r.applySwap(e) // warm the output buffer past the append growth
	r.s.out = r.s.out[:n]
	allocs := testing.AllocsPerRun(200, func() {
		r.applySwap(e)
		r.applySwap(e)
		if r.hop(e.A, e.B) != 1 {
			t.Fatal("candidate edge is not a coupler")
		}
		r.s.out = r.s.out[:n]
	})
	if allocs != 0 {
		t.Fatalf("steady-state SWAP application performs %v allocs, want 0", allocs)
	}
}

// The bitset engine is the default: a zero-value Scoring (or
// DefaultOptions) must resolve to it, and the legacy ExhaustiveScoring
// flag must still select the exhaustive oracle after normalization.
func TestScoringModeResolution(t *testing.T) {
	if got := DefaultOptions().normalized().Scoring; got != ScoringBitset {
		t.Fatalf("default scoring = %v, want bitset", got)
	}
	o := DefaultOptions()
	o.ExhaustiveScoring = true
	if got := o.normalized().Scoring; got != ScoringExhaustive {
		t.Fatalf("ExhaustiveScoring normalized to %v, want exhaustive", got)
	}
	o = DefaultOptions()
	o.ExhaustiveScoring = true
	o.Scoring = ScoringDelta
	if got := o.normalized().Scoring; got != ScoringDelta {
		t.Fatalf("explicit Scoring lost to legacy flag: got %v, want delta", got)
	}
}

// BenchmarkScoreRound measures one SWAP-selection round in isolation
// under each engine: branch-free bitset gather (the default), delta
// scoring (base + O(deg) per candidate), and the exhaustive reference
// (O(|F|+|E|) per candidate). Same state, same winner.
func BenchmarkScoreRound(b *testing.B) {
	for _, scoring := range []Scoring{ScoringBitset, ScoringDelta, ScoringExhaustive} {
		b.Run(fmt.Sprint(scoring), func(b *testing.B) {
			r := steadyStateRouter(b, scoring)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = r.scoreRound()
			}
		})
	}
}
