package core

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/mapping"
)

// steadyStateRouter routes a hard random workload on the Tokyo chip up
// to its first SWAP-selection round and returns the router parked
// there: front layer populated, nothing executable, buffers warm. Used
// by the alloc guard and BenchmarkScoreRound.
func steadyStateRouter(tb testing.TB, exhaustive bool) *router {
	tb.Helper()
	dev := arch.IBMQ20Tokyo()
	mix := rand.New(rand.NewSource(17))
	c := circuit.New(20)
	for i := 0; i < 400; i++ {
		a := mix.Intn(20)
		b := mix.Intn(19)
		if b >= a {
			b++
		}
		c.Append(circuit.CX(a, b))
	}
	opts := DefaultOptions()
	opts.ExhaustiveScoring = exhaustive
	pr := NewPassRunner(c, dev, opts)
	s := NewScratch()
	s.reset(dev.NumQubits(), c.NumGates(), len(dev.Edges()))
	r := &router{
		dev:    dev,
		n:      dev.NumQubits(),
		opts:   pr.opts,
		rng:    rand.New(rand.NewSource(1)),
		circ:   c,
		dag:    pr.dag,
		layout: mapping.Identity(20),
		s:      s,
		dist:   dev.Distances(),
		extGen: -1,
	}
	s.inDeg = r.dag.InDegreesInto(s.inDeg)
	for i, deg := range s.inDeg {
		if deg == 0 {
			s.ready = append(s.ready, i)
		}
	}
	r.drain()
	if len(s.front) == 0 {
		tb.Fatal("workload drained completely; no SWAP round to measure")
	}
	return r
}

// TestScoreRoundZeroAllocs is the hot-loop allocation guard: once the
// scratch is warm, a steady-state SWAP-selection round — candidate
// collection, extended-set lookup, index + base-sum rebuild, and
// delta-scoring every candidate — must not touch the heap at all. If
// an allocation creeps back into the round (a map, a fresh slice, a
// closure capture), this fails loudly.
func TestScoreRoundZeroAllocs(t *testing.T) {
	r := steadyStateRouter(t, false)
	// Warm every buffer: one full round grows candidates/extended/
	// qGates to their steady sizes.
	_ = r.scoreRound()
	allocs := testing.AllocsPerRun(200, func() {
		_ = r.scoreRound()
	})
	if allocs != 0 {
		t.Fatalf("steady-state SWAP round performs %v allocs/round, want 0", allocs)
	}
}

// BenchmarkScoreRound measures one SWAP-selection round in isolation:
// delta scoring (base + O(deg) per candidate) against the exhaustive
// reference (O(|F|+|E|) per candidate), same state, same winner.
func BenchmarkScoreRound(b *testing.B) {
	for _, mode := range []struct {
		name       string
		exhaustive bool
	}{{"delta", false}, {"exhaustive", true}} {
		b.Run(mode.name, func(b *testing.B) {
			r := steadyStateRouter(b, mode.exhaustive)
			_ = r.scoreRound()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = r.scoreRound()
			}
		})
	}
}
