package core

import (
	"repro/internal/arch"
	"repro/internal/circuit"
)

// Scratch owns every reusable buffer a routing traversal mutates, so a
// worker that routes many passes (a trial worker, an annealing chain)
// performs zero steady-state heap allocations inside the SWAP loop:
// all per-round state lives here and is re-sliced, never reallocated,
// once warm. A Scratch is single-goroutine state — per-worker, shared
// with nobody — which is exactly the share-nothing discipline that
// keeps parallel trials off each other's cache lines. The zero value
// is not usable; construct with NewScratch. Passing nil where a
// *Scratch is accepted makes the callee allocate a private one.
//
// Buffer-clearing convention: buffers indexed by gate or edge are
// epoch-stamped ([]int32 marks compared against a monotonically
// increasing epoch) so "clearing" a mark set is one integer increment,
// not an O(n) wipe. On the rare epoch overflow the marks are zeroed
// and the epoch restarts at 1.
type Scratch struct {
	// Traversal state, sized per pass.
	inDeg []int           // working indegree copy, len = gate count
	front []int           // front layer F
	ready []int           // dependency-released, executability unchecked
	out   []circuit.Gate  // routed output accumulator
	decay []float64       // per logical qubit decay, len = device size

	// SWAP-candidate collection: dense edge ids + epoch stamps replace
	// the old map[arch.Edge]bool.
	candidates []arch.Edge
	edgeMark   []int32 // len = device edge count
	edgeEpoch  int32

	// Extended-set BFS: gate epoch stamps replace the old visited map,
	// bfsQueue the old throwaway queue slice. (Delta scoring needs no
	// marks: its only shared gate, the one touching both swapped
	// qubits, is deduplicated by a partner-qubit skip.)
	extended  []int
	gateMark  []int32 // len = gate count; BFS visited set
	gateEpoch int32
	bfsQueue  []int

	// Per-round delta-scoring index: for each logical qubit, the front
	// and extended gates touching it (front gate gi encoded as gi+1,
	// extended as -(gi+1)). qTouched lists the qubits with non-empty
	// entries so resetting is O(touched), not O(n).
	qGates   [][]int32
	qTouched []int
}

// NewScratch returns an empty scratch. Buffers grow to the sizes of
// whatever passes it serves and are then reused; keep one per worker.
func NewScratch() *Scratch { return &Scratch{} }

// reset sizes the scratch for one traversal: n device qubits, gates
// DAG nodes, edges coupling edges. Buffers are grown only when a
// larger circuit or device arrives; otherwise they are re-sliced.
func (s *Scratch) reset(n, gates, edges int) {
	if cap(s.decay) < n {
		s.decay = make([]float64, n)
	}
	s.decay = s.decay[:n]
	for i := range s.decay {
		s.decay[i] = 1
	}
	if cap(s.edgeMark) < edges {
		s.edgeMark = make([]int32, edges)
		s.edgeEpoch = 0
	}
	s.edgeMark = s.edgeMark[:edges]
	if cap(s.gateMark) < gates {
		s.gateMark = make([]int32, gates)
		s.gateEpoch = 0
	}
	s.gateMark = s.gateMark[:gates]
	if len(s.qGates) < n {
		old := s.qGates
		s.qGates = make([][]int32, n)
		copy(s.qGates, old)
	}
	for _, q := range s.qTouched {
		s.qGates[q] = s.qGates[q][:0]
	}
	s.qTouched = s.qTouched[:0]
	s.front = s.front[:0]
	s.ready = s.ready[:0]
	s.out = s.out[:0]
	s.extended = s.extended[:0]
	s.candidates = s.candidates[:0]
	s.bfsQueue = s.bfsQueue[:0]
}

// nextEdgeEpoch advances the edge epoch, wiping the marks on overflow.
// The wipe covers the full capacity, not just the current slice: a
// smaller device may be in service when the epoch wraps, and the
// hidden tail must not hold marks a later, larger device would read.
func (s *Scratch) nextEdgeEpoch() int32 {
	s.edgeEpoch++
	if s.edgeEpoch < 0 {
		full := s.edgeMark[:cap(s.edgeMark)]
		for i := range full {
			full[i] = 0
		}
		s.edgeEpoch = 1
	}
	return s.edgeEpoch
}

// nextGateEpoch advances the gate epoch, wiping the marks (full
// capacity, see nextEdgeEpoch) on overflow.
func (s *Scratch) nextGateEpoch() int32 {
	s.gateEpoch++
	if s.gateEpoch < 0 {
		full := s.gateMark[:cap(s.gateMark)]
		for i := range full {
			full[i] = 0
		}
		s.gateEpoch = 1
	}
	return s.gateEpoch
}
