package core

import (
	"repro/internal/circuit"
)

// Scratch owns every reusable buffer a routing traversal mutates, so a
// worker that routes many passes (a trial worker, an annealing chain)
// performs zero steady-state heap allocations inside the SWAP loop:
// all per-round state lives here and is re-sliced, never reallocated,
// once warm. A Scratch is single-goroutine state — per-worker, shared
// with nobody — which is exactly the share-nothing discipline that
// keeps parallel trials off each other's cache lines. The zero value
// is not usable; construct with NewScratch. Passing nil where a
// *Scratch is accepted makes the callee allocate a private one.
//
// Buffer-clearing convention: gate-indexed mark buffers are
// epoch-stamped ([]int32 marks compared against a monotonically
// increasing epoch) so "clearing" a mark set is one integer increment,
// not an O(n) wipe; on the rare epoch overflow the marks are zeroed
// and the epoch restarts at 1. The candidate bitset uses the stronger
// consume-to-zero convention instead: extraction zeroes every word it
// reads, so the buffer is all-zero (across its full capacity) between
// rounds and needs no epoch at all.
type Scratch struct {
	// Traversal state, sized per pass.
	inDeg []int          // working indegree copy, len = gate count
	front []int          // front layer F
	ready []int          // dependency-released, executability unchecked
	out   []circuit.Gate // routed output accumulator
	decay []float64      // per logical qubit decay, len = device size

	// SWAP-candidate collection: a bitset over the dense edge-id space
	// (len = arch.Device.EdgeWords), filled by OR-ing the incident-edge
	// rows of the front-layer qubits and drained in ascending edge id
	// by trailing-zero iteration. Invariant: all-zero between rounds,
	// across the slice's full capacity — extraction consumes the words
	// it touched back to zero, and words beyond a small device's length
	// were never set, so a later, larger device starts clean.
	// candIDs is the drained list of dense edge ids, in ascending
	// order — the canonical candidate order every scoring engine and
	// the tie-break RNG stream depend on. It stays ids (4 bytes, one
	// store per candidate) rather than materialized edges; consumers
	// resolve endpoints through the device's edge-endpoint table
	// (router.candidate), which the scorers load anyway.
	candWords []uint64
	candIDs   []int32

	// scores holds the per-candidate heuristic scores of one round,
	// filled by the configured scoring engine and consumed by one
	// shared selection loop — which is what keeps the RNG stream of the
	// reservoir tie-break identical across engines.
	scores []float64

	// Extended-set BFS: gate epoch stamps replace the old visited map,
	// bfsQueue the old throwaway queue slice. (Delta scoring needs no
	// marks: its only shared gate, the one touching both swapped
	// qubits, is deduplicated by a partner-qubit skip.)
	extended  []int
	gateMark  []int32 // len = gate count; BFS visited set
	gateEpoch int32
	bfsQueue  []int

	// Per-round delta-scoring index: for each logical qubit, the front
	// and extended gates touching it (front gate gi encoded as gi+1,
	// extended as -(gi+1)). qTouched lists the qubits with non-empty
	// entries so resetting is O(touched), not O(n). Used only by the
	// ScoringDelta oracle; the bitset engine uses the CSR index below.
	qGates   [][]int32
	qTouched []int

	// Per-round bitset-scoring index. Front-layer gates are
	// vertex-disjoint (two gates sharing a qubit are DAG-ordered, so at
	// most one can be in F), which collapses the front index to a single
	// slot per qubit: fpart[q] is the *physical* qubit of q's front
	// partner, or -1. The extended set is not disjoint, so it keeps a
	// CSR layout: qubit q's extended partners (again physical,
	// pre-resolved so the scoring loop is a pure gather) live in
	// extPhys[extOff[q]:extOff[q+1]]; extCnt is the counting pass's
	// buffer, reused as the fill cursor.
	fpart   []int32 // len n, -1 = no front partner
	extCnt  []int32
	extOff  []int32 // len n+1
	extPhys []int32

	// stream owns the streaming router's window state (RouteStream).
	// It replaces every gate-indexed buffer above with slot-arena
	// variants sized by the live window, so a streaming traversal's
	// memory is O(device + window) however long the gate stream runs.
	stream streamScratch
}

// streamScratch is the streaming router's reusable state: the handle
// stacks of the drain loop, the compact per-round scoring view, and
// the slot arena that stands in for the materialized DAG.
//
// The arena is a free-list slot store, not a FIFO ring: a slot is
// recycled the moment its gate retires, so long-lived blocked gates
// never pin the slots of the pass-through traffic admitted after them
// (a position-indexed ring would — its span is unbounded on streams
// that execute out of admission order). Per-qubit dependency chains
// replace the DAG: chainTail remembers the last gate admitted on each
// wire, and a tail whose slot was since recycled is detected by
// comparing the remembered gid against the slot's current one
// (slotGid is set to -1 on free and to a fresh, strictly increasing
// gid on reuse, so a stale tail can never alias a live slot).
type streamScratch struct {
	// Drain-loop state, holding slot handles (ring path) or gate
	// indices (materialized oracle path).
	front []int64
	ready []int64 // LIFO stack, same discipline as router.drain
	ext   []int64 // extended set of the current round
	bfsQ  []int64 // lookahead BFS queue

	// cq2 is the per-round compact qubit-pair table the embedded
	// scoring round reads instead of the PassRunner's gate-indexed
	// q2: entry i is the i-th front gate, entries after the front are
	// the extended set, in BFS order.
	cq2 []int32

	// Slot arena, all indexed by slot id; slotQ2 and slotSucc hold two
	// entries per slot. slotSucc[2s] is the slot depending on s
	// through s's Q0 wire (-1 none), slotSucc[2s+1] through Q1.
	slotGate  []circuit.Gate
	slotGid   []int64 // admission gid, -1 = slot free
	slotQ2    []int32
	slotInDeg []int32
	slotSucc  []int32
	slotMark  []int32 // BFS visited stamps vs slotEpoch
	slotEpoch int32
	free      []int32 // free slot ids, popped from the tail

	// Per-qubit dependency chain tails (device-sized).
	chainTailSlot []int32
	chainTailGid  []int64
}

// resetStream readies the streaming state for one traversal on an
// n-qubit device: chain tails cleared, every arena slot freed, drain
// stacks truncated. Arena capacity is kept — a warm Scratch replays a
// new stream without touching the allocator.
func (z *streamScratch) resetStream(n int) {
	if cap(z.chainTailSlot) < n {
		z.chainTailSlot = make([]int32, n)
		z.chainTailGid = make([]int64, n)
	}
	z.chainTailSlot = z.chainTailSlot[:n]
	z.chainTailGid = z.chainTailGid[:n]
	for i := range z.chainTailSlot {
		z.chainTailSlot[i] = -1
		z.chainTailGid[i] = -1
	}
	z.front = z.front[:0]
	z.ready = z.ready[:0]
	z.ext = z.ext[:0]
	z.bfsQ = z.bfsQ[:0]
	z.free = z.free[:0]
	for i := len(z.slotGid) - 1; i >= 0; i-- {
		z.slotGate[i] = circuit.Gate{}
		z.slotGid[i] = -1
		z.free = append(z.free, int32(i))
	}
	for i := range z.slotMark {
		z.slotMark[i] = 0
	}
	z.slotEpoch = 0
}

// growArena grows the slot arena to hold target slots, pushing the new
// slot ids onto the free list highest-first so the lowest index is
// recycled next (keeps the hot window cache-compact). Slot ids are
// stable across growth: the arrays only ever extend.
func (z *streamScratch) growArena(target int) {
	old := len(z.slotGid)
	if target <= old {
		return
	}
	slotGate := make([]circuit.Gate, target)
	copy(slotGate, z.slotGate)
	z.slotGate = slotGate
	slotGid := make([]int64, target)
	copy(slotGid, z.slotGid)
	z.slotGid = slotGid
	slotQ2 := make([]int32, 2*target)
	copy(slotQ2, z.slotQ2)
	z.slotQ2 = slotQ2
	slotInDeg := make([]int32, target)
	copy(slotInDeg, z.slotInDeg)
	z.slotInDeg = slotInDeg
	slotSucc := make([]int32, 2*target)
	copy(slotSucc, z.slotSucc)
	z.slotSucc = slotSucc
	slotMark := make([]int32, target)
	copy(slotMark, z.slotMark)
	z.slotMark = slotMark
	for i := target - 1; i >= old; i-- {
		z.slotGid[i] = -1
		z.free = append(z.free, int32(i))
	}
}

// NewScratch returns an empty scratch. Buffers grow to the sizes of
// whatever passes it serves and are then reused; keep one per worker.
func NewScratch() *Scratch { return &Scratch{} }

// reset sizes the scratch for one traversal: n device qubits, gates
// DAG nodes, edges coupling edges. Buffers are grown only when a
// larger circuit or device arrives; otherwise they are re-sliced.
// Growing candWords allocates a zeroed buffer and shrinking merely
// re-slices, so the all-zero-across-capacity invariant survives any
// sequence of devices.
func (s *Scratch) reset(n, gates, edges int) {
	if cap(s.decay) < n {
		s.decay = make([]float64, n)
	}
	s.decay = s.decay[:n]
	for i := range s.decay {
		s.decay[i] = 1
	}
	words := (edges + 63) / 64
	if cap(s.candWords) < words {
		s.candWords = make([]uint64, words)
	}
	s.candWords = s.candWords[:words]
	if cap(s.gateMark) < gates {
		s.gateMark = make([]int32, gates)
		s.gateEpoch = 0
	}
	s.gateMark = s.gateMark[:gates]
	if len(s.qGates) < n {
		old := s.qGates
		s.qGates = make([][]int32, n)
		copy(s.qGates, old)
	}
	for _, q := range s.qTouched {
		s.qGates[q] = s.qGates[q][:0]
	}
	s.qTouched = s.qTouched[:0]
	if cap(s.fpart) < n {
		s.fpart = make([]int32, n)
		s.extCnt = make([]int32, n)
		s.extOff = make([]int32, n+1)
	}
	s.fpart = s.fpart[:n]
	s.extCnt = s.extCnt[:n]
	s.extOff = s.extOff[:n+1]
	s.front = s.front[:0]
	s.ready = s.ready[:0]
	s.out = s.out[:0]
	s.extended = s.extended[:0]
	s.candIDs = s.candIDs[:0]
	s.bfsQueue = s.bfsQueue[:0]
}

// nextGateEpoch advances the gate epoch, wiping the marks on overflow.
// The wipe covers the full capacity, not just the current slice: a
// smaller circuit may be in service when the epoch wraps, and the
// hidden tail must not hold marks a later, larger circuit would read.
func (s *Scratch) nextGateEpoch() int32 {
	s.gateEpoch++
	if s.gateEpoch < 0 {
		full := s.gateMark[:cap(s.gateMark)]
		for i := range full {
			full[i] = 0
		}
		s.gateEpoch = 1
	}
	return s.gateEpoch
}
