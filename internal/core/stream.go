package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"
	"unsafe"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/mapping"
)

// Streaming compilation: route an unbounded gate stream with memory
// O(device + window), independent of circuit length.
//
// The materialized pipeline (Compile and friends) builds the whole
// circuit and its DAG before the first SWAP is chosen, so peak memory
// scales with gate count. But Algorithm 1 itself only ever consults a
// bounded neighborhood of the execution frontier: the front layer F,
// the extended set E, and the decay state — all device-sized. The
// streaming mode below exploits that: gates are admitted from a
// GateSource one at a time into a slot-arena window, dependencies are
// tracked with per-qubit chains instead of a DAG, and routed gates
// leave through a StreamSink in bounded chunks. The scoring round —
// candidate collection, Eq. 1/Eq. 2 evaluation, decay, tie-break RNG —
// is the exact bitset engine of the materialized path, fed through a
// per-round compact view, so the streaming mode inherits every scoring
// property (and its zero-alloc guarantee) without duplicating it.
//
// Streaming semantics are pinned, deterministic, and intentionally
// simpler than Compile's default search: one trial, one forward
// traversal, seeded random initial layout (the layout trial 0 of
// Compile would draw), bitset scoring. Multi-trial restart search is
// meaningless when the input cannot be replayed. Consequently the
// parity contract is between the two *streaming* paths: RouteStream
// (windowed, O(window) memory) and RouteStreamMaterialized (same
// pinned semantics executed over a fully materialized circuit and its
// BuildDAG) emit byte-identical gate streams for every circuit, seed,
// and worker count. The two implementations share no dependency
// bookkeeping — slot arena + qubit chains vs. CSR DAG — which makes
// each the independent oracle for the other, the same discipline the
// scoring engines use (bitset vs. delta vs. exhaustive).
//
// Window admission policy (identical in both paths, so it is part of
// the pinned semantics): after every drain the router tops the window
// up until the lookahead beyond the front layer holds ExtendedSetSize
// two-qubit gates — exactly what one scoring round can consume — or
// StreamOptions.Lookahead gates are pending behind the front,
// whichever comes first. The second bound caps the window on streams
// of blocked single-qubit gates, which never count toward the first.
// Window occupancy is therefore O(|F| + Lookahead), and |F| ≤ n/2
// (front gates are vertex-disjoint), giving the O(device + window)
// bound regardless of stream length.

// GateSource is the pull side of a gate stream: Next returns the next
// gate and ok=true, ok=false at end of stream, or a terminal error.
// qasm.GateScanner satisfies it structurally; NewCircuitSource adapts
// an in-memory circuit.
type GateSource interface {
	Next() (g circuit.Gate, ok bool, err error)
}

// StreamSink receives routed physical gates in chunks. Emit is called
// with a reused buffer: implementations that retain gates past the
// call must copy. A non-nil error aborts the stream and is returned
// from RouteStream.
type StreamSink interface {
	Emit(gates []circuit.Gate) error
}

// StreamOptions tunes the streaming mode. The zero value means
// defaults (see DefaultStreamOptions). None of these knobs affect the
// routed output — Window is a capacity hint and ChunkGates only
// changes emission granularity — except Lookahead, which bounds the
// admission window and is part of the deterministic semantics.
type StreamOptions struct {
	// Window is the initial slot-arena capacity in gates. The arena
	// grows by doubling if the live window outruns it, so this is a
	// pre-sizing hint, not a limit.
	Window int

	// Lookahead caps the gates admitted beyond the front layer. It is
	// the streaming analogue of the extended-set size and the only
	// StreamOptions field that changes routing decisions: a larger
	// window can surface later two-qubit gates to the lookahead
	// heuristic. Default 256.
	Lookahead int

	// ChunkGates is the emission granularity: the output buffer is
	// flushed to the sink once it holds at least this many gates.
	ChunkGates int
}

// DefaultStreamOptions returns the streaming defaults: a 4096-slot
// window hint, 256-gate lookahead, 1024-gate chunks.
func DefaultStreamOptions() StreamOptions {
	return StreamOptions{Window: 4096, Lookahead: 256, ChunkGates: 1024}
}

// normalized fills zero fields with defaults.
func (o StreamOptions) normalized() StreamOptions {
	d := DefaultStreamOptions()
	if o.Window <= 0 {
		o.Window = d.Window
	}
	if o.Lookahead <= 0 {
		o.Lookahead = d.Lookahead
	}
	if o.ChunkGates <= 0 {
		o.ChunkGates = d.ChunkGates
	}
	return o
}

// StreamStats instruments one streaming traversal. The JSON names
// match the daemon's snake_case API surface (it embeds this struct in
// streaming job views).
type StreamStats struct {
	GatesIn  int64 `json:"gates_in"`  // gates admitted from the source
	GatesOut int64 `json:"gates_out"` // gates emitted to the sink

	SwapCount    int `json:"swaps"`
	BridgeCount  int `json:"bridges"`
	AddedGates   int `json:"added_gates"` // 3 per SWAP and per bridge, like Result
	SwapRounds   int `json:"swap_rounds"`
	ForcedRoutes int `json:"forced_routes"`

	// MaxFront and MaxWindow are the high-water front-layer size and
	// live-window occupancy; WindowBytes the arena's final footprint.
	// Flat MaxWindow/WindowBytes across a 10× longer stream is the
	// O(device + window) memory claim, measured.
	MaxFront    int   `json:"max_front"`
	MaxWindow   int   `json:"max_window"`
	WindowBytes int64 `json:"window_bytes"`

	Chunks      int           `json:"chunks"`
	Elapsed     time.Duration `json:"elapsed_ns"`
	GatesPerSec float64       `json:"gates_per_sec"` // GatesOut / Elapsed
}

// StreamResult is the summary of a completed streaming compilation.
// The routed gates themselves went to the sink.
type StreamResult struct {
	InitialLayout []int
	FinalLayout   []int
	NumQubits     int
	Stats         StreamStats
}

// streamDeps is the dependency store behind the streaming router: the
// windowed slot arena (ringDeps) or the materialized-DAG oracle
// (flatDeps). Handles are slot ids or gate indices respectively; gid
// is the admission sequence number, the tie-break order every
// handle-ordering decision uses so both stores release and visit
// gates identically.
type streamDeps interface {
	// admit enters g into the window and reports its handle and
	// whether it is dependency-free.
	admit(g circuit.Gate) (h int64, ready bool)
	gate(h int64) circuit.Gate
	// pair returns the logical qubit pair of a two-qubit gate, or
	// (-1, -1) for single-qubit gates.
	pair(h int64) (q0, q1 int32)
	gid(h int64) int64
	// finish retires h and returns the newly dependency-free
	// successors in ascending gid order, -1-padded.
	finish(h int64) (r0, r1 int64)
	// succs returns h's admitted successors in ascending gid order,
	// -1-padded, duplicates preserved (a successor sharing both
	// qubits appears twice, mirroring BuildDAG's duplicate edges).
	succs(h int64) (s0, s1 int64)
	bfsReset()
	bfsSeen(h int64) bool
	maxLive() int
	memBytes() int64
}

// ringDeps is the windowed dependency store: a free-list slot arena
// plus per-qubit chain tails, all living in the streamScratch. See the
// streamScratch doc for the recycling and stale-tail invariants.
type ringDeps struct {
	z       *streamScratch
	nextGid int64
	live    int
	peak    int
}

//sabre:hotpath
func (d *ringDeps) admit(g circuit.Gate) (int64, bool) {
	z := d.z
	if len(z.free) == 0 {
		d.grow()
	}
	s := z.free[len(z.free)-1]
	z.free = z.free[:len(z.free)-1]
	gid := d.nextGid
	d.nextGid++
	i2 := 2 * int(s)
	z.slotGate[s] = g
	z.slotGid[s] = gid
	if g.TwoQubit() {
		z.slotQ2[i2] = int32(g.Q0)
		z.slotQ2[i2+1] = int32(g.Q1)
	} else {
		z.slotQ2[i2] = -1
		z.slotQ2[i2+1] = -1
	}
	z.slotInDeg[s] = 0
	z.slotSucc[i2] = -1
	z.slotSucc[i2+1] = -1
	z.slotMark[s] = 0
	d.link(g.Q0, s)
	if g.TwoQubit() {
		d.link(g.Q1, s)
	}
	z.chainTailSlot[g.Q0] = s
	z.chainTailGid[g.Q0] = gid
	if g.TwoQubit() {
		z.chainTailSlot[g.Q1] = s
		z.chainTailGid[g.Q1] = gid
	}
	d.live++
	if d.live > d.peak {
		d.peak = d.live
	}
	return int64(s), z.slotInDeg[s] == 0
}

// link adds the dependency edge chainTail[w] → s, if that tail is
// still live (gid match; a recycled slot fails it and means the chain
// head already executed).
//
//sabre:hotpath
func (d *ringDeps) link(w int, s int32) {
	z := d.z
	t := z.chainTailSlot[w]
	if t < 0 || z.slotGid[t] != z.chainTailGid[w] {
		return
	}
	z.slotInDeg[s]++
	if int(z.slotGate[t].Q0) == w {
		z.slotSucc[2*t] = s
	} else {
		z.slotSucc[2*t+1] = s
	}
}

// grow doubles the arena. Amortized: once the window's high-water mark
// is reached the free list never empties again.
func (d *ringDeps) grow() {
	target := 2 * len(d.z.slotGid)
	if target < 64 {
		target = 64
	}
	d.z.growArena(target)
}

//sabre:hotpath
func (d *ringDeps) gate(h int64) circuit.Gate { return d.z.slotGate[h] }

//sabre:hotpath
func (d *ringDeps) pair(h int64) (int32, int32) {
	i2 := 2 * int(h)
	return d.z.slotQ2[i2], d.z.slotQ2[i2+1]
}

//sabre:hotpath
func (d *ringDeps) gid(h int64) int64 { return d.z.slotGid[h] }

//sabre:hotpath
func (d *ringDeps) finish(h int64) (int64, int64) {
	z := d.z
	s := int32(h)
	i2 := 2 * int(s)
	a, b := z.slotSucc[i2], z.slotSucc[i2+1]
	if a >= 0 && b >= 0 {
		if z.slotGid[b] < z.slotGid[a] {
			a, b = b, a
		}
	} else if a < 0 {
		a, b = b, a
	}
	r0, r1 := int64(-1), int64(-1)
	if a >= 0 {
		z.slotInDeg[a]--
		if z.slotInDeg[a] == 0 {
			r0 = int64(a)
		}
	}
	if b >= 0 {
		z.slotInDeg[b]--
		if z.slotInDeg[b] == 0 {
			if r0 < 0 {
				r0 = int64(b)
			} else {
				r1 = int64(b)
			}
		}
	}
	z.slotGate[s] = circuit.Gate{}
	z.slotGid[s] = -1
	z.free = append(z.free, s)
	d.live--
	return r0, r1
}

//sabre:hotpath
func (d *ringDeps) succs(h int64) (int64, int64) {
	z := d.z
	i2 := 2 * int(h)
	a, b := z.slotSucc[i2], z.slotSucc[i2+1]
	if a >= 0 && b >= 0 {
		if z.slotGid[b] < z.slotGid[a] {
			a, b = b, a
		}
	} else if a < 0 {
		a, b = b, a
	}
	return int64(a), int64(b)
}

func (d *ringDeps) bfsReset() {
	z := d.z
	z.slotEpoch++
	if z.slotEpoch < 0 {
		full := z.slotMark[:cap(z.slotMark)]
		for i := range full {
			full[i] = 0
		}
		z.slotEpoch = 1
	}
}

//sabre:hotpath
func (d *ringDeps) bfsSeen(h int64) bool {
	z := d.z
	if z.slotMark[h] == z.slotEpoch {
		return true
	}
	z.slotMark[h] = z.slotEpoch
	return false
}

func (d *ringDeps) maxLive() int { return d.peak }

func (d *ringDeps) memBytes() int64 {
	z := d.z
	b := int64(cap(z.slotGate)) * int64(unsafe.Sizeof(circuit.Gate{}))
	b += int64(cap(z.slotGid)+cap(z.chainTailGid)) * 8
	b += int64(cap(z.slotQ2)+cap(z.slotInDeg)+cap(z.slotSucc)+cap(z.slotMark)+cap(z.free)+cap(z.chainTailSlot)) * 4
	b += int64(cap(z.front)+cap(z.ready)+cap(z.ext)+cap(z.bfsQ)) * 8
	b += int64(cap(z.cq2)) * 4
	return b
}

// flatDeps is the materialized oracle: the same streamDeps contract
// served from a whole circuit and its BuildDAG. Admission is a cursor
// walk in program order; a gate's working indegree counts only its
// not-yet-executed predecessors at admission time, and successor
// release is clipped to the admitted prefix — so release order and
// readiness transitions match ringDeps decision for decision while the
// bookkeeping shares nothing with it.
type flatDeps struct {
	circ     *circuit.Circuit
	dag      *circuit.DAG
	inDeg    []int32
	done     []bool
	mark     []int32
	epoch    int32
	admitted int
	live     int
	peak     int
}

func newFlatDeps(c *circuit.Circuit) *flatDeps {
	g := c.NumGates()
	return &flatDeps{
		circ:  c,
		dag:   circuit.BuildDAG(c),
		inDeg: make([]int32, g),
		done:  make([]bool, g),
		mark:  make([]int32, g),
	}
}

func (d *flatDeps) admit(circuit.Gate) (int64, bool) {
	h := d.admitted
	d.admitted++
	deg := int32(0)
	for _, p := range d.dag.Predecessors(h) {
		if !d.done[p] {
			deg++
		}
	}
	d.inDeg[h] = deg
	d.live++
	if d.live > d.peak {
		d.peak = d.live
	}
	return int64(h), deg == 0
}

func (d *flatDeps) gate(h int64) circuit.Gate { return d.circ.Gate(int(h)) }

func (d *flatDeps) pair(h int64) (int32, int32) {
	g := d.circ.Gate(int(h))
	if g.TwoQubit() {
		return int32(g.Q0), int32(g.Q1)
	}
	return -1, -1
}

func (d *flatDeps) gid(h int64) int64 { return h }

func (d *flatDeps) finish(h int64) (int64, int64) {
	g := int(h)
	d.done[g] = true
	d.live--
	r0, r1 := int64(-1), int64(-1)
	for _, succ := range d.dag.Successors(g) {
		if succ >= d.admitted {
			break // ascending: the rest are unadmitted too
		}
		d.inDeg[succ]--
		if d.inDeg[succ] == 0 {
			if r0 < 0 {
				r0 = int64(succ)
			} else {
				r1 = int64(succ)
			}
		}
	}
	return r0, r1
}

func (d *flatDeps) succs(h int64) (int64, int64) {
	s0, s1 := int64(-1), int64(-1)
	for _, succ := range d.dag.Successors(int(h)) {
		if succ >= d.admitted {
			break
		}
		if s0 < 0 {
			s0 = int64(succ)
		} else {
			s1 = int64(succ)
		}
	}
	return s0, s1
}

func (d *flatDeps) bfsReset() {
	d.epoch++
	if d.epoch < 0 {
		full := d.mark[:cap(d.mark)]
		for i := range full {
			full[i] = 0
		}
		d.epoch = 1
	}
}

func (d *flatDeps) bfsSeen(h int64) bool {
	if d.mark[h] == d.epoch {
		return true
	}
	d.mark[h] = d.epoch
	return false
}

func (d *flatDeps) maxLive() int { return d.peak }

// memBytes understates the true footprint — the circuit and CSR DAG
// dominate — which is the point: the materialized path is O(gates) by
// construction and makes no windowed-memory claim.
func (d *flatDeps) memBytes() int64 {
	return int64(cap(d.inDeg))*4 + int64(cap(d.done)) + int64(cap(d.mark))*4
}

// circuitSource adapts an in-memory circuit to the GateSource shape.
type circuitSource struct {
	c *circuit.Circuit
	i int
}

// NewCircuitSource returns a GateSource yielding c's gates in order.
func NewCircuitSource(c *circuit.Circuit) GateSource { return &circuitSource{c: c} }

//sabre:hotpath
func (cs *circuitSource) Next() (circuit.Gate, bool, error) {
	if cs.i >= cs.c.NumGates() {
		return circuit.Gate{}, false, nil
	}
	g := cs.c.Gate(cs.i)
	cs.i++
	return g, true, nil
}

// streamRouter drives one streaming traversal: the pinned drain /
// admit / refill / score loop around an embedded materialized router
// whose scoring round is fed through a per-round compact view.
type streamRouter struct {
	rt    *router
	deps  streamDeps
	src   GateSource
	sink  StreamSink
	z     *streamScratch
	sopts StreamOptions

	eof     bool
	aborted bool
	err     error

	admitted int64
	executed int64
	emitted  int64
	unexec2q int // admitted, unexecuted two-qubit gates
	chunks   int
	maxFront int

	// viewGen is the front generation the compact scoring view was
	// built for; the view is a pure function of the front layer plus
	// the admitted window, and the window only changes alongside a
	// frontGen bump (refill runs admissions through drain).
	viewGen  int
	maxStall int
}

// newStreamRouter wires a traversal: the embedded router gets no
// circuit or DAG (the deps store replaces both), gates=0 scratch
// sizing, and scoring pinned to the bitset engine, whose round state
// is all device-sized and reads gates only through r.q2 — which the
// compact view swaps out per round.
func newStreamRouter(dev *arch.Device, opts Options, sopts StreamOptions, deps streamDeps, src GateSource, sink StreamSink, s *Scratch, cancelled <-chan struct{}) *streamRouter {
	n := dev.NumQubits()
	s.reset(n, 0, len(dev.Edges()))
	s.stream.resetStream(n)
	rng := rand.New(rand.NewSource(opts.Seed))
	layout := mapping.Random(n, rng)
	rt := &router{
		dev:       dev,
		n:         n,
		opts:      opts,
		rng:       rng,
		layout:    layout,
		s:         s,
		dist:      dev.Distances(),
		ends:      dev.EdgeEndpoints(),
		inc:       dev.IncidentEdgeWords(),
		incW:      dev.EdgeWords(),
		extGen:    -1,
		idxGen:    -1,
		cancelled: cancelled,
	}
	if opts.Noise != nil {
		rt.wdist = dev.WeightedDistancesFor(opts.Noise)
	}
	maxStall := opts.MaxStall
	if maxStall <= 0 {
		maxStall = 4*dev.Diameter() + 16
	}
	return &streamRouter{
		rt:       rt,
		deps:     deps,
		src:      src,
		sink:     sink,
		z:        &s.stream,
		sopts:    sopts,
		viewGen:  -1,
		maxStall: maxStall,
	}
}

// step runs one iteration of the streaming loop — drain, admit until
// the front is non-empty, top up the lookahead, then resolve one
// blocked round (forced route, bridge, or SWAP). Returns true when the
// traversal is over: clean EOF, error, or cancellation.
//
//sabre:hotpath
func (sr *streamRouter) step() bool {
	sr.drain()
	sr.maybeFlush()
	for len(sr.z.front) == 0 {
		if sr.err != nil || sr.eof {
			return true
		}
		select {
		case <-sr.rt.cancelled:
			sr.aborted = true
			return true
		default:
		}
		sr.admitOne()
		sr.drain()
		sr.maybeFlush()
	}
	sr.refill()
	if sr.err != nil {
		return true
	}
	if mf := len(sr.z.front); mf > sr.maxFront {
		sr.maxFront = mf
	}
	select {
	case <-sr.rt.cancelled:
		sr.aborted = true
		return true
	default:
	}
	rt := sr.rt
	if rt.stall >= sr.maxStall {
		sr.forceRouteStream()
		return false
	}
	sr.buildView()
	if rt.opts.UseBridge && sr.tryBridgeStream() {
		sr.maybeFlush()
		return false
	}
	rt.applySwap(rt.scoreRound())
	sr.maybeFlush()
	return false
}

// drain mirrors router.drain over handles: execute every ready or
// front gate whose physical qubits are coupled, to fixpoint, bumping
// frontGen when the front layer's contents changed.
//
//sabre:hotpath
func (sr *streamRouter) drain() {
	z := sr.z
	changed := false
	for {
		progress := false
		for len(z.ready) > 0 {
			h := z.ready[len(z.ready)-1]
			z.ready = z.ready[:len(z.ready)-1]
			if sr.executable(h) {
				sr.execute(h)
				progress = true
			} else {
				z.front = append(z.front, h)
				changed = true
			}
		}
		keep := z.front[:0]
		for _, h := range z.front {
			if sr.executable(h) {
				sr.execute(h)
				progress = true
				changed = true
			} else {
				keep = append(keep, h)
			}
		}
		z.front = keep
		if !progress {
			if changed {
				sr.rt.frontGen++
			}
			return
		}
	}
}

//sabre:hotpath
func (sr *streamRouter) executable(h int64) bool {
	q0, q1 := sr.deps.pair(h)
	if q0 < 0 {
		return true
	}
	rt := sr.rt
	return rt.dev.Connected(rt.layout.Phys(int(q0)), rt.layout.Phys(int(q1)))
}

// execute emits h remapped to physical qubits (Remap inlined: a method
// value would escape) and releases its successors.
//
//sabre:hotpath
func (sr *streamRouter) execute(h int64) {
	rt := sr.rt
	g := sr.deps.gate(h)
	g.Q0 = rt.layout.Phys(g.Q0)
	if g.TwoQubit() {
		g.Q1 = rt.layout.Phys(g.Q1)
		rt.resetDecay()
		rt.stall = 0
		sr.unexec2q--
	}
	rt.s.out = append(rt.s.out, g)
	sr.executed++
	r0, r1 := sr.deps.finish(h)
	z := sr.z
	if r0 >= 0 {
		z.ready = append(z.ready, r0)
	}
	if r1 >= 0 {
		z.ready = append(z.ready, r1)
	}
}

// admitOne pulls, validates and admits the next source gate; on EOF or
// error it latches eof so the loop can wind down.
//
//sabre:hotpath
func (sr *streamRouter) admitOne() {
	g, ok, err := sr.src.Next()
	if err != nil {
		sr.err = err
		sr.eof = true
		return
	}
	if !ok {
		sr.eof = true
		return
	}
	n := sr.rt.n
	if g.Q0 < 0 || g.Q0 >= n || (g.TwoQubit() && (g.Q1 < 0 || g.Q1 >= n || g.Q1 == g.Q0)) {
		sr.failGate(g)
		return
	}
	h, ready := sr.deps.admit(g)
	sr.admitted++
	if g.TwoQubit() {
		sr.unexec2q++
	}
	if ready {
		sr.z.ready = append(sr.z.ready, h)
	}
}

// failGate records a validation error (out of hotpath: fmt allocates).
func (sr *streamRouter) failGate(g circuit.Gate) {
	sr.err = fmt.Errorf("core: stream gate %d (%v) targets a qubit outside the %d-qubit device (or repeats one)",
		sr.admitted, g.Kind, sr.rt.n)
	sr.eof = true
}

// refill tops the window up after a drain: admit until the lookahead
// beyond the front holds ExtendedSetSize two-qubit gates (what one
// scoring round consumes) or Lookahead gates are pending behind the
// front. Part of the pinned semantics — both dependency stores see
// identical admission points.
//
//sabre:hotpath
func (sr *streamRouter) refill() {
	target := sr.rt.opts.ExtendedSetSize
	lookahead := int64(sr.sopts.Lookahead)
	for !sr.eof && sr.err == nil {
		if sr.unexec2q-len(sr.z.front) >= target {
			return
		}
		if sr.admitted-sr.executed-int64(len(sr.z.front)) >= lookahead {
			return
		}
		sr.admitOne()
		sr.drain()
		sr.maybeFlush()
	}
}

// buildView refreshes the embedded router's per-round compact scoring
// view: front gates become indices 0..|F| and extended gates
// |F|..|F|+|E| into a dense qubit-pair table that stands in for the
// materialized q2. extGen is stamped so ensureExtended (which would
// walk the absent DAG) serves the view from cache; the idxGen half of
// the bitset round index stays coherent because the view only changes
// alongside frontGen.
//
//sabre:hotpath
func (sr *streamRouter) buildView() {
	rt := sr.rt
	if sr.viewGen == rt.frontGen {
		return
	}
	sr.viewGen = rt.frontGen
	sr.extendBFS()
	z := sr.z
	nf := len(z.front)
	need := 2 * (nf + len(z.ext))
	if cap(z.cq2) < need {
		z.cq2 = make([]int32, need) //sabre:alloc-ok amortized: grows to the high-water front+extended size, then reused
	}
	z.cq2 = z.cq2[:need]
	s := rt.s
	s.front = s.front[:0]
	for i, h := range z.front {
		q0, q1 := sr.deps.pair(h)
		z.cq2[2*i] = q0
		z.cq2[2*i+1] = q1
		s.front = append(s.front, i)
	}
	s.extended = s.extended[:0]
	for j, h := range z.ext {
		k := nf + j
		q0, q1 := sr.deps.pair(h)
		z.cq2[2*k] = q0
		z.cq2[2*k+1] = q1
		s.extended = append(s.extended, k)
	}
	rt.q2 = z.cq2
	rt.extGen = rt.frontGen
	rt.stats.ExtendedRebuilds++
}

// extendBFS recomputes the extended set over the admitted window,
// mirroring router.ensureExtended's walk exactly: breadth-first from
// the front layer, first ExtendedSetSize two-qubit gates, and the gate
// that hits the limit is not queued.
//
//sabre:hotpath
func (sr *streamRouter) extendBFS() {
	z := sr.z
	z.ext = z.ext[:0]
	rt := sr.rt
	if rt.opts.Heuristic == HeuristicBasic {
		return
	}
	limit := rt.opts.ExtendedSetSize
	sr.deps.bfsReset()
	q := z.bfsQ[:0]
	for _, h := range z.front {
		sr.deps.bfsSeen(h)
		q = append(q, h)
	}
	for head := 0; head < len(q) && len(z.ext) < limit; head++ {
		s0, s1 := sr.deps.succs(q[head])
		full := false
		for k := 0; k < 2; k++ {
			h := s0
			if k == 1 {
				h = s1
			}
			if h < 0 || sr.deps.bfsSeen(h) {
				continue
			}
			if p0, _ := sr.deps.pair(h); p0 >= 0 {
				z.ext = append(z.ext, h)
				if len(z.ext) >= limit {
					full = true
					break
				}
			}
			q = append(q, h)
		}
		if full {
			break
		}
	}
	z.bfsQ = q
}

// forceRouteStream is router.forceRoute over handles: walk the
// oldest front gate's control to its target along a shortest path.
func (sr *streamRouter) forceRouteStream() {
	z := sr.z
	best := z.front[0]
	bg := sr.deps.gid(best)
	for _, h := range z.front[1:] {
		if g := sr.deps.gid(h); g < bg {
			best, bg = h, g
		}
	}
	q0, q1 := sr.deps.pair(best)
	rt := sr.rt
	cur, pb := rt.layout.Phys(int(q0)), rt.layout.Phys(int(q1))
	for rt.hop(cur, pb) > 1 {
		next := -1
		for _, nb := range rt.dev.Neighbors(cur) {
			if rt.hop(nb, pb) == rt.hop(cur, pb)-1 {
				next = nb
				break
			}
		}
		rt.applySwap(arch.NewEdge(cur, next))
		cur = next
	}
	rt.stall = 0
	rt.stats.ForcedRoutes++
}

// tryBridgeStream is router.tryBridge over handles; buildView has run,
// so z.ext is the current round's extended set.
func (sr *streamRouter) tryBridgeStream() bool {
	rt := sr.rt
	z := sr.z
	for fi, h := range z.front {
		g := sr.deps.gate(h)
		if g.Kind != circuit.KindCX {
			continue
		}
		pa, pb := rt.layout.Phys(g.Q0), rt.layout.Phys(g.Q1)
		if rt.hop(pa, pb) != 2 {
			continue
		}
		if sr.pairRecursStream(g.Q0, g.Q1) {
			continue
		}
		m := -1
		for _, nb := range rt.dev.Neighbors(pa) {
			if rt.hop(nb, pb) == 1 {
				m = nb
				break
			}
		}
		rt.s.out = append(rt.s.out,
			circuit.CX(pa, m), circuit.CX(m, pb),
			circuit.CX(pa, m), circuit.CX(m, pb),
		)
		rt.bridges++
		rt.stall = 0
		rt.resetDecay()
		z.front = append(z.front[:fi], z.front[fi+1:]...)
		rt.frontGen++
		sr.executed++
		sr.unexec2q--
		r0, r1 := sr.deps.finish(h)
		if r0 >= 0 {
			z.ready = append(z.ready, r0)
		}
		if r1 >= 0 {
			z.ready = append(z.ready, r1)
		}
		return true
	}
	return false
}

// pairRecursStream reports whether the unordered logical pair recurs
// in the extended set (bridge profitability test).
func (sr *streamRouter) pairRecursStream(a, b int) bool {
	if a > b {
		a, b = b, a
	}
	for _, h := range sr.z.ext {
		q0, q1 := sr.deps.pair(h)
		ga, gb := int(q0), int(q1)
		if ga > gb {
			ga, gb = gb, ga
		}
		if ga == a && gb == b {
			return true
		}
	}
	return false
}

// maybeFlush hands the output buffer to the sink once a chunk's worth
// of gates accumulated.
//
//sabre:hotpath
func (sr *streamRouter) maybeFlush() {
	if len(sr.rt.s.out) >= sr.sopts.ChunkGates {
		sr.flushChunk()
	}
}

func (sr *streamRouter) flushChunk() {
	out := sr.rt.s.out
	if len(out) == 0 || sr.err != nil {
		return
	}
	if err := sr.sink.Emit(out); err != nil {
		sr.err = err
		sr.eof = true
		return
	}
	sr.emitted += int64(len(out))
	sr.chunks++
	sr.rt.s.out = out[:0]
}

// run drives step to completion and flushes the tail chunk.
func (sr *streamRouter) run(ctx context.Context) error {
	for !sr.step() {
	}
	if sr.err != nil {
		return sr.err
	}
	if sr.aborted {
		if err := ctx.Err(); err != nil {
			return err
		}
		return context.Canceled
	}
	sr.flushChunk()
	return sr.err
}

func (sr *streamRouter) result(elapsed time.Duration, init mapping.Layout) *StreamResult {
	rt := sr.rt
	stats := StreamStats{
		GatesIn:      sr.admitted,
		GatesOut:     sr.emitted,
		SwapCount:    rt.swaps,
		BridgeCount:  rt.bridges,
		AddedGates:   3 * (rt.swaps + rt.bridges),
		SwapRounds:   rt.stats.SwapRounds,
		ForcedRoutes: rt.stats.ForcedRoutes,
		MaxFront:     sr.maxFront,
		MaxWindow:    sr.deps.maxLive(),
		WindowBytes:  sr.deps.memBytes(),
		Chunks:       sr.chunks,
		Elapsed:      elapsed,
	}
	if sec := elapsed.Seconds(); sec > 0 {
		stats.GatesPerSec = float64(stats.GatesOut) / sec
	}
	return &StreamResult{
		InitialLayout: init.LogicalToPhysical(),
		FinalLayout:   rt.layout.LogicalToPhysical(),
		NumQubits:     rt.n,
		Stats:         stats,
	}
}

// pinStreamOptions normalizes opts and pins the streaming-incompatible
// knobs: bitset scoring (the delta and exhaustive oracles read the
// materialized circuit) and no legacy exhaustive override.
func pinStreamOptions(opts Options) Options {
	opts = opts.normalized()
	opts.Scoring = ScoringBitset
	opts.ExhaustiveScoring = false
	return opts
}

// RouteStream routes the gate stream src onto dev and emits the routed
// physical gates through sink in chunks, holding only a bounded window
// of the stream in memory: steady state is O(device + window) however
// long the stream runs. Semantics are the pinned streaming traversal
// (single trial, seeded random initial layout, bitset scoring); output
// is deterministic in (stream, dev, opts, sopts.Lookahead) and
// byte-identical to RouteStreamMaterialized on the same input. A nil
// scratch allocates a private one; passing a warm per-worker Scratch
// makes repeated streams allocation-free outside arena high-water
// growth. On error or cancellation the sink keeps whatever chunks were
// already emitted; the partial tail is dropped and an error returned
// (ctx.Err for cancellation).
func RouteStream(ctx context.Context, src GateSource, dev *arch.Device, opts Options, sopts StreamOptions, sink StreamSink, s *Scratch) (*StreamResult, error) {
	if src == nil {
		return nil, errors.New("core: RouteStream needs a gate source")
	}
	if sink == nil {
		return nil, errors.New("core: RouteStream needs a sink")
	}
	if dev == nil {
		return nil, errors.New("core: RouteStream needs a device")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	opts = pinStreamOptions(opts)
	dev = effectiveDevice(dev, opts)
	sopts = sopts.normalized()
	if s == nil {
		s = NewScratch()
	}
	deps := &ringDeps{z: &s.stream}
	return routeStream(ctx, src, dev, opts, sopts, sink, s, deps)
}

// RouteStreamMaterialized runs the identical pinned streaming
// semantics over a fully materialized circuit and its dependency DAG.
// It is the independent oracle for RouteStream — same traversal, zero
// shared dependency bookkeeping — and the reference the golden parity
// suite holds the windowed path to. Memory is O(gates); use
// RouteStream for anything large.
func RouteStreamMaterialized(ctx context.Context, circ *circuit.Circuit, dev *arch.Device, opts Options, sopts StreamOptions, sink StreamSink) (*StreamResult, error) {
	if circ == nil {
		return nil, errors.New("core: RouteStreamMaterialized needs a circuit")
	}
	if sink == nil {
		return nil, errors.New("core: RouteStreamMaterialized needs a sink")
	}
	if dev == nil {
		return nil, errors.New("core: RouteStreamMaterialized needs a device")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	opts = pinStreamOptions(opts)
	dev = effectiveDevice(dev, opts)
	if circ.NumQubits() > dev.NumQubits() {
		return nil, fmt.Errorf("core: circuit needs %d qubits but device %s has %d",
			circ.NumQubits(), dev.Name(), dev.NumQubits())
	}
	sopts = sopts.normalized()
	return routeStream(ctx, NewCircuitSource(circ), dev, opts, sopts, sink, NewScratch(), newFlatDeps(circ))
}

func routeStream(ctx context.Context, src GateSource, dev *arch.Device, opts Options, sopts StreamOptions, sink StreamSink, s *Scratch, deps streamDeps) (*StreamResult, error) {
	//sabre:nondeterm-ok wall-clock elapsed metric; never feeds routing decisions
	start := time.Now()
	s.stream.growArena(sopts.Window)
	sr := newStreamRouter(dev, opts, sopts, deps, src, sink, s, ctx.Done())
	init := sr.rt.layout.Clone()
	if err := sr.run(ctx); err != nil {
		return nil, err
	}
	return sr.result(time.Since(start), init), nil
}

// StreamProbe pins a warm streaming router mid-flight over an endless
// deterministic CNOT stream on the 20-qubit Tokyo device, so tests and
// benchmarks can measure a steady-state streaming step in isolation —
// the streaming counterpart of ScoreRoundProbe. Step performs one full
// loop iteration (drain, admission, refill, and a forced-route,
// bridge, or SWAP round) against a no-op sink; after the warmup in
// NewStreamProbe it performs zero heap allocations.
type StreamProbe struct {
	sr *streamRouter
}

// cycleSource yields a fixed gate sequence forever.
type cycleSource struct {
	gates []circuit.Gate
	i     int
}

//sabre:hotpath
func (c *cycleSource) Next() (circuit.Gate, bool, error) {
	g := c.gates[c.i]
	c.i++
	if c.i == len(c.gates) {
		c.i = 0
	}
	return g, true, nil
}

// discardSink drops every chunk.
type discardSink struct{}

func (discardSink) Emit([]circuit.Gate) error { return nil }

// NewStreamProbe builds the probe and warms it past every amortized
// growth: arena at its high-water mark, output buffer at chunk
// capacity, scoring buffers sized.
func NewStreamProbe() *StreamProbe {
	dev := arch.IBMQ20Tokyo()
	n := dev.NumQubits()
	rng := rand.New(rand.NewSource(17))
	gates := make([]circuit.Gate, 0, 512)
	for len(gates) < 512 {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		gates = append(gates, circuit.CX(a, b))
	}
	opts := pinStreamOptions(DefaultOptions())
	sopts := DefaultStreamOptions().normalized()
	s := NewScratch()
	s.stream.growArena(sopts.Window)
	deps := &ringDeps{z: &s.stream}
	sr := newStreamRouter(dev, opts, sopts, deps, &cycleSource{gates: gates}, discardSink{}, s, nil)
	for i := 0; i < 4096; i++ {
		sr.step()
	}
	return &StreamProbe{sr: sr}
}

// Step runs one steady-state streaming loop iteration.
func (p *StreamProbe) Step() {
	p.sr.step()
}
