package core

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/mapping"
)

// newWhiteboxRouter builds a router mid-flight for white-box tests,
// through the same PassRunner setup real traversals use (the ready
// list comes seeded with the DAG sources).
func newWhiteboxRouter(t *testing.T, dev *arch.Device, c *circuit.Circuit, layout mapping.Layout) *router {
	t.Helper()
	pr := NewPassRunner(c, dev, DefaultOptions())
	return pr.newRouter(layout, rand.New(rand.NewSource(1)), nil, nil)
}

// refreshExtended forces an extended-set recomputation regardless of
// the front-generation cache (tests mutate router state in ways the
// cache cannot see).
func (r *router) refreshExtended() {
	r.frontGen++
	r.ensureExtended()
}

// prepareRound refreshes everything scoreSwap's delta path relies on:
// the extended set, the per-qubit gate index and the base sums.
func (r *router) prepareRound() {
	r.refreshExtended()
	r.buildRoundIndex()
}

// newTestRouter builds the Fig. 6 scenario — a 3×3 grid, front layer
// {CX(q0,q6), CX(q2,q7)}, identity layout.
func newTestRouter(t *testing.T) *router {
	t.Helper()
	dev := arch.Grid(3, 3)
	c := circuit.New(9)
	c.Append(
		circuit.CX(0, 6), // front (distance 2)
		circuit.CX(2, 7), // front (distance 2)
		circuit.CX(1, 6), // successor, shares q6
	)
	r := newWhiteboxRouter(t, dev, c, mapping.Identity(9))
	r.s.front = append(r.s.front, 0, 1)
	return r
}

func TestCollectCandidatesOnlyFrontAdjacent(t *testing.T) {
	r := newTestRouter(t)
	r.collectCandidates()
	if len(r.s.candIDs) == 0 {
		t.Fatal("no candidates")
	}
	frontPhys := map[int]bool{0: true, 6: true, 2: true, 7: true}
	for i := range r.s.candIDs {
		e := r.candidate(i)
		if !frontPhys[e.A] && !frontPhys[e.B] {
			t.Fatalf("candidate %v touches no front qubit (paper Fig. 6: low-priority SWAPs are pruned)", e)
		}
	}
	// No duplicates.
	seen := map[arch.Edge]bool{}
	for i := range r.s.candIDs {
		e := r.candidate(i)
		if seen[e] {
			t.Fatalf("duplicate candidate %v", e)
		}
		seen[e] = true
	}
}

func TestCollectExtendedSet(t *testing.T) {
	r := newTestRouter(t)
	r.refreshExtended()
	// Gate 2 (CX(1,6)) is the lone successor.
	if len(r.s.extended) != 1 || r.s.extended[0] != 2 {
		t.Fatalf("extended = %v, want [2]", r.s.extended)
	}
	// Basic heuristic skips the extended set entirely.
	r.opts.Heuristic = HeuristicBasic
	r.refreshExtended()
	if len(r.s.extended) != 0 {
		t.Fatal("basic heuristic should not build an extended set")
	}
}

func TestExtendedSetCachedWhileFrontUnchanged(t *testing.T) {
	r := newTestRouter(t)
	r.refreshExtended()
	rebuilds := r.stats.ExtendedRebuilds
	// Same front generation: served from cache, no recomputation —
	// this is what spares tryBridge+insertBestSwap the double walk.
	r.ensureExtended()
	r.ensureExtended()
	if r.stats.ExtendedRebuilds != rebuilds {
		t.Fatalf("extended set recomputed %d times for an unchanged front",
			r.stats.ExtendedRebuilds-rebuilds)
	}
	if len(r.s.extended) != 1 || r.s.extended[0] != 2 {
		t.Fatalf("cached extended = %v, want [2]", r.s.extended)
	}
	// Front change invalidates.
	r.frontGen++
	r.ensureExtended()
	if r.stats.ExtendedRebuilds != rebuilds+1 {
		t.Fatal("front change did not trigger a rebuild")
	}
}

func TestExtendedSetRespectsLimit(t *testing.T) {
	dev := arch.Line(4)
	c := circuit.New(4)
	for i := 0; i < 30; i++ {
		c.Append(circuit.CX(0, 1))
	}
	r := newWhiteboxRouter(t, dev, c, mapping.Identity(4))
	r.opts.ExtendedSetSize = 5
	r.s.front = append(r.s.front, 0)
	r.refreshExtended()
	if len(r.s.extended) > 5 {
		t.Fatalf("extended set %d exceeds limit 5", len(r.s.extended))
	}
}

func TestFrontDistanceSumEq1(t *testing.T) {
	r := newTestRouter(t)
	// Identity layout on the 3×3 grid (row-major): dist(0,6)=2 and
	// dist(2,7)=3, so Eq. 1 sums to 5.
	if got := r.frontDistanceSum(); got != 5 {
		t.Fatalf("H_basic = %g, want 5", got)
	}
}

func TestScoreSwapRestoresLayout(t *testing.T) {
	for _, exhaustive := range []bool{false, true} {
		r := newTestRouter(t)
		r.opts.ExhaustiveScoring = exhaustive
		before := r.layout.Clone()
		for _, h := range []Heuristic{HeuristicBasic, HeuristicLookahead, HeuristicDecay} {
			r.opts.Heuristic = h
			r.prepareRound()
			_ = r.scoreSwap(arch.NewEdge(0, 3))
			if !r.layout.Equal(before) {
				t.Fatalf("%v (exhaustive=%v): scoreSwap mutated the layout", h, exhaustive)
			}
		}
	}
}

func TestScoreSwapPrefersHelpfulSwap(t *testing.T) {
	r := newTestRouter(t)
	r.opts.Heuristic = HeuristicBasic
	r.prepareRound()
	// Swapping 0↔3 moves q0 one step toward q6: front sum 4 → 3.
	helpful := r.scoreSwap(arch.NewEdge(0, 3))
	// Swapping 0↔1 leaves both distances at best unchanged.
	neutral := r.scoreSwap(arch.NewEdge(0, 1))
	if helpful >= neutral {
		t.Fatalf("helpful swap scored %g, neutral %g", helpful, neutral)
	}
}

// TestDeltaScoringMatchesExhaustive checks the core scoring invariant
// candidate-by-candidate at several points mid-routing, for every
// candidate edge and heuristic. With hop-count distances base+Δ must
// equal the from-scratch sum bit-for-bit (int64-exact sums). Under a
// noise model the delta re-associates the float accumulation, so the
// contract is ~1 ulp agreement per score plus an identical best
// candidate per round.
func TestDeltaScoringMatchesExhaustive(t *testing.T) {
	dev := arch.Grid(3, 3)
	rng := rand.New(rand.NewSource(42))
	c := circuit.New(9)
	for i := 0; i < 40; i++ {
		a := rng.Intn(9)
		b := rng.Intn(8)
		if b >= a {
			b++
		}
		c.Append(circuit.CX(a, b))
	}
	noise := arch.RandomNoise(dev, 1e-3, 1e-1, rand.New(rand.NewSource(5)))
	for _, weighted := range []bool{false, true} {
		for _, h := range []Heuristic{HeuristicBasic, HeuristicLookahead, HeuristicDecay} {
			r := newWhiteboxRouter(t, dev, c, mapping.Identity(9))
			r.opts.Heuristic = h
			if weighted {
				r.opts.Noise = noise
				r.wdist = dev.WeightedDistancesFor(noise)
			}
			for rounds := 0; rounds < 12; rounds++ {
				r.drain()
				if len(r.s.front) == 0 {
					break
				}
				r.collectCandidates()
				r.ensureExtended()
				r.buildRoundIndex()
				bestD, bestE := 0, 0
				for ci := range r.s.candIDs {
					e := r.candidate(ci)
					delta := r.scoreSwap(e)
					exhaustive := r.scoreSwapExhaustive(e)
					if !weighted && delta != exhaustive {
						t.Fatalf("%v round %d cand %v: delta %v != exhaustive %v",
							h, rounds, e, delta, exhaustive)
					}
					if weighted {
						if diff := delta - exhaustive; diff > 1e-12 || diff < -1e-12 {
							t.Fatalf("%v round %d cand %v: weighted delta %v vs exhaustive %v",
								h, rounds, e, delta, exhaustive)
						}
					}
					if delta < r.scoreSwap(r.candidate(bestD)) {
						bestD = ci
					}
					if exhaustive < r.scoreSwapExhaustive(r.candidate(bestE)) {
						bestE = ci
					}
				}
				if bestD != bestE {
					t.Fatalf("%v round %d: scorers disagree on the best candidate (%d vs %d)",
						h, rounds, bestD, bestE)
				}
				r.applySwap(r.candidate(0))
			}
		}
	}
}

func TestDecayBiasesAgainstReusedQubits(t *testing.T) {
	r := newTestRouter(t)
	r.opts.Heuristic = HeuristicDecay
	r.prepareRound()
	base := r.scoreSwap(arch.NewEdge(0, 3))
	// Mark logical q0 (on phys 0) as recently swapped.
	r.s.decay[0] = 1.5
	biased := r.scoreSwap(arch.NewEdge(0, 3))
	if biased <= base {
		t.Fatalf("decay did not raise the score: %g vs %g", biased, base)
	}
	// An edge not touching q0 is unaffected.
	r.prepareRound()
	other := r.scoreSwap(arch.NewEdge(7, 8))
	r.s.decay[0] = 1
	otherBase := r.scoreSwap(arch.NewEdge(7, 8))
	if other != otherBase {
		t.Fatalf("decay leaked to unrelated swap: %g vs %g", other, otherBase)
	}
}

func TestApplySwapUpdatesEverything(t *testing.T) {
	r := newTestRouter(t)
	r.applySwap(arch.NewEdge(0, 3))
	if r.swaps != 1 || len(r.s.out) != 1 || r.s.out[0].Kind != circuit.KindSwap {
		t.Fatal("swap not recorded")
	}
	if r.layout.Phys(0) != 3 || r.layout.Phys(3) != 0 {
		t.Fatal("layout not updated")
	}
	if r.s.decay[0] != 1+r.opts.DecayDelta || r.s.decay[3] != 1+r.opts.DecayDelta {
		t.Fatal("decay not incremented for swapped logical qubits")
	}
}

func TestDecayResetAfterInterval(t *testing.T) {
	r := newTestRouter(t)
	r.opts.DecayResetInterval = 2
	r.applySwap(arch.NewEdge(0, 3))
	if r.s.decay[0] == 1 {
		t.Fatal("decay should be raised after first swap")
	}
	r.applySwap(arch.NewEdge(0, 3)) // second swap hits the interval
	for q, d := range r.s.decay {
		if d != 1 {
			t.Fatalf("decay[%d] = %g after reset interval", q, d)
		}
	}
}

func TestExecuteResetsDecayOnCNOT(t *testing.T) {
	dev := arch.Line(2)
	c := circuit.New(2)
	c.Append(circuit.CX(0, 1))
	r := newWhiteboxRouter(t, dev, c, mapping.Identity(2))
	r.s.decay[0], r.s.decay[1] = 1.5, 1.5
	r.decaySteps = 3
	r.execute(0)
	if r.s.decay[0] != 1 || r.s.decay[1] != 1 {
		t.Fatal("executing a CNOT must reset decay (paper §V)")
	}
}

func TestRoutePassDoesNotMutateInputLayout(t *testing.T) {
	dev := arch.Line(4)
	c := circuit.New(4)
	c.Append(circuit.CX(0, 3))
	init := mapping.Identity(4)
	before := init.Clone()
	RoutePass(c, dev, init, DefaultOptions(), rand.New(rand.NewSource(1)))
	if !init.Equal(before) {
		t.Fatal("RoutePass mutated the caller's layout")
	}
}

func TestForceRouteExecutesFrontGate(t *testing.T) {
	dev := arch.Line(5)
	c := circuit.New(5)
	c.Append(circuit.CX(0, 4))
	r := newWhiteboxRouter(t, dev, c, mapping.Identity(5))
	r.s.front = append(r.s.front, 0)
	r.forceRoute()
	// dist(0,4)=4 on a line → 3 swaps bring them adjacent.
	if r.swaps != 3 {
		t.Fatalf("force route used %d swaps, want 3", r.swaps)
	}
	if !r.executable(0) {
		t.Fatal("gate still not executable after force route")
	}
}

// TestScratchReuseAcrossPasses routes two different circuits through
// one Scratch and checks the results match fresh-scratch routing —
// stale buffer contents must never leak between passes.
func TestScratchReuseAcrossPasses(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	rng1 := rand.New(rand.NewSource(9))
	rng2 := rand.New(rand.NewSource(9))
	shared := NewScratch()
	for _, gates := range []int{60, 25, 90} {
		c := circuit.New(20)
		mix := rand.New(rand.NewSource(int64(gates)))
		for i := 0; i < gates; i++ {
			a := mix.Intn(20)
			b := mix.Intn(19)
			if b >= a {
				b++
			}
			c.Append(circuit.CX(a, b))
		}
		pr := NewPassRunner(c, dev, DefaultOptions())
		got := pr.Run(mapping.Identity(20), rng1, shared)
		want := pr.Run(mapping.Identity(20), rng2, nil)
		if !got.Circuit.Equal(want.Circuit) || got.SwapCount != want.SwapCount {
			t.Fatalf("gates=%d: shared-scratch pass diverged from fresh-scratch pass", gates)
		}
	}
}
