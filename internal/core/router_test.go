package core

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/mapping"
)

// newTestRouter builds a router mid-flight for white-box tests: the
// Fig. 6 scenario — a 3×3 grid, front layer {CX(q0,q6), CX(q2,q7)},
// identity layout.
func newTestRouter(t *testing.T) *router {
	t.Helper()
	dev := arch.Grid(3, 3)
	c := circuit.New(9)
	c.Append(
		circuit.CX(0, 6), // front (distance 2)
		circuit.CX(2, 7), // front (distance 2)
		circuit.CX(1, 6), // successor, shares q6
	)
	r := &router{
		dev:      dev,
		opts:     DefaultOptions().normalized(),
		rng:      rand.New(rand.NewSource(1)),
		circ:     c,
		dag:      circuit.BuildDAG(c),
		layout:   mapping.Identity(9),
		decay:    make([]float64, 9),
		candSeen: make(map[arch.Edge]bool),
	}
	for i := range r.decay {
		r.decay[i] = 1
	}
	r.inDeg = r.dag.InDegrees()
	r.front = []int{0, 1}
	return r
}

func TestCollectCandidatesOnlyFrontAdjacent(t *testing.T) {
	r := newTestRouter(t)
	r.collectCandidates()
	if len(r.candidates) == 0 {
		t.Fatal("no candidates")
	}
	frontPhys := map[int]bool{0: true, 6: true, 2: true, 7: true}
	for _, e := range r.candidates {
		if !frontPhys[e.A] && !frontPhys[e.B] {
			t.Fatalf("candidate %v touches no front qubit (paper Fig. 6: low-priority SWAPs are pruned)", e)
		}
	}
	// No duplicates.
	seen := map[arch.Edge]bool{}
	for _, e := range r.candidates {
		if seen[e] {
			t.Fatalf("duplicate candidate %v", e)
		}
		seen[e] = true
	}
}

func TestCollectExtendedSet(t *testing.T) {
	r := newTestRouter(t)
	r.collectExtendedSet()
	// Gate 2 (CX(1,6)) is the lone successor.
	if len(r.extended) != 1 || r.extended[0] != 2 {
		t.Fatalf("extended = %v, want [2]", r.extended)
	}
	// Basic heuristic skips the extended set entirely.
	r.opts.Heuristic = HeuristicBasic
	r.collectExtendedSet()
	if len(r.extended) != 0 {
		t.Fatal("basic heuristic should not build an extended set")
	}
}

func TestExtendedSetRespectsLimit(t *testing.T) {
	dev := arch.Line(4)
	c := circuit.New(4)
	for i := 0; i < 30; i++ {
		c.Append(circuit.CX(0, 1))
	}
	r := &router{
		dev: dev, opts: DefaultOptions().normalized(), rng: rand.New(rand.NewSource(1)),
		circ: c, dag: circuit.BuildDAG(c), layout: mapping.Identity(4),
		decay: []float64{1, 1, 1, 1}, candSeen: map[arch.Edge]bool{},
	}
	r.opts.ExtendedSetSize = 5
	r.inDeg = r.dag.InDegrees()
	r.front = []int{0}
	r.collectExtendedSet()
	if len(r.extended) > 5 {
		t.Fatalf("extended set %d exceeds limit 5", len(r.extended))
	}
}

func TestFrontDistanceSumEq1(t *testing.T) {
	r := newTestRouter(t)
	// Identity layout on the 3×3 grid (row-major): dist(0,6)=2 and
	// dist(2,7)=3, so Eq. 1 sums to 5.
	if got := r.frontDistanceSum(); got != 5 {
		t.Fatalf("H_basic = %g, want 5", got)
	}
}

func TestScoreSwapRestoresLayout(t *testing.T) {
	r := newTestRouter(t)
	before := r.layout.Clone()
	for _, h := range []Heuristic{HeuristicBasic, HeuristicLookahead, HeuristicDecay} {
		r.opts.Heuristic = h
		r.collectExtendedSet()
		_ = r.scoreSwap(arch.NewEdge(0, 3))
		if !r.layout.Equal(before) {
			t.Fatalf("%v: scoreSwap mutated the layout", h)
		}
	}
}

func TestScoreSwapPrefersHelpfulSwap(t *testing.T) {
	r := newTestRouter(t)
	r.opts.Heuristic = HeuristicBasic
	// Swapping 0↔3 moves q0 one step toward q6: front sum 4 → 3.
	helpful := r.scoreSwap(arch.NewEdge(0, 3))
	// Swapping 0↔1 leaves both distances at best unchanged.
	neutral := r.scoreSwap(arch.NewEdge(0, 1))
	if helpful >= neutral {
		t.Fatalf("helpful swap scored %g, neutral %g", helpful, neutral)
	}
}

func TestDecayBiasesAgainstReusedQubits(t *testing.T) {
	r := newTestRouter(t)
	r.opts.Heuristic = HeuristicDecay
	r.collectExtendedSet()
	base := r.scoreSwap(arch.NewEdge(0, 3))
	// Mark logical q0 (on phys 0) as recently swapped.
	r.decay[0] = 1.5
	biased := r.scoreSwap(arch.NewEdge(0, 3))
	if biased <= base {
		t.Fatalf("decay did not raise the score: %g vs %g", biased, base)
	}
	// An edge not touching q0 is unaffected.
	r.collectExtendedSet()
	other := r.scoreSwap(arch.NewEdge(7, 8))
	r.decay[0] = 1
	otherBase := r.scoreSwap(arch.NewEdge(7, 8))
	if other != otherBase {
		t.Fatalf("decay leaked to unrelated swap: %g vs %g", other, otherBase)
	}
}

func TestApplySwapUpdatesEverything(t *testing.T) {
	r := newTestRouter(t)
	r.applySwap(arch.NewEdge(0, 3))
	if r.swaps != 1 || len(r.out) != 1 || r.out[0].Kind != circuit.KindSwap {
		t.Fatal("swap not recorded")
	}
	if r.layout.Phys(0) != 3 || r.layout.Phys(3) != 0 {
		t.Fatal("layout not updated")
	}
	if r.decay[0] != 1+r.opts.DecayDelta || r.decay[3] != 1+r.opts.DecayDelta {
		t.Fatal("decay not incremented for swapped logical qubits")
	}
}

func TestDecayResetAfterInterval(t *testing.T) {
	r := newTestRouter(t)
	r.opts.DecayResetInterval = 2
	r.applySwap(arch.NewEdge(0, 3))
	if r.decay[0] == 1 {
		t.Fatal("decay should be raised after first swap")
	}
	r.applySwap(arch.NewEdge(0, 3)) // second swap hits the interval
	for q, d := range r.decay {
		if d != 1 {
			t.Fatalf("decay[%d] = %g after reset interval", q, d)
		}
	}
}

func TestExecuteResetsDecayOnCNOT(t *testing.T) {
	dev := arch.Line(2)
	c := circuit.New(2)
	c.Append(circuit.CX(0, 1))
	r := &router{
		dev: dev, opts: DefaultOptions().normalized(), rng: rand.New(rand.NewSource(1)),
		circ: c, dag: circuit.BuildDAG(c), layout: mapping.Identity(2),
		decay: []float64{1.5, 1.5}, candSeen: map[arch.Edge]bool{},
	}
	r.decaySteps = 3
	r.inDeg = r.dag.InDegrees()
	r.execute(0)
	if r.decay[0] != 1 || r.decay[1] != 1 {
		t.Fatal("executing a CNOT must reset decay (paper §V)")
	}
}

func TestRoutePassDoesNotMutateInputLayout(t *testing.T) {
	dev := arch.Line(4)
	c := circuit.New(4)
	c.Append(circuit.CX(0, 3))
	init := mapping.Identity(4)
	before := init.Clone()
	RoutePass(c, dev, init, DefaultOptions(), rand.New(rand.NewSource(1)))
	if !init.Equal(before) {
		t.Fatal("RoutePass mutated the caller's layout")
	}
}

func TestForceRouteExecutesFrontGate(t *testing.T) {
	dev := arch.Line(5)
	c := circuit.New(5)
	c.Append(circuit.CX(0, 4))
	r := &router{
		dev: dev, opts: DefaultOptions().normalized(), rng: rand.New(rand.NewSource(1)),
		circ: c, dag: circuit.BuildDAG(c), layout: mapping.Identity(5),
		decay: []float64{1, 1, 1, 1, 1}, candSeen: map[arch.Edge]bool{},
	}
	r.inDeg = r.dag.InDegrees()
	r.front = []int{0}
	r.forceRoute()
	// dist(0,4)=4 on a line → 3 swaps bring them adjacent.
	if r.swaps != 3 {
		t.Fatalf("force route used %d swaps, want 3", r.swaps)
	}
	if !r.executable(0) {
		t.Fatal("gate still not executable after force route")
	}
}
