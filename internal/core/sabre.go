package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/mapping"
)

// Prepared holds the trial-invariant inputs of a multi-trial compile:
// the normalized options, the effective (possibly noise-pruned)
// device, and the widened forward/reversed circuits. Preparing once
// and fanning RunTrial out over many seeds is how the trial runner in
// internal/pipeline shares the precomputed state — circuits, DAG
// inputs, and the device's cached distance matrices — read-only across
// a worker pool.
type Prepared struct {
	dev  *arch.Device
	opts Options

	// fwd and rev hold the prepared (DAG-carrying) pass runners for the
	// widened forward and reversed circuits. Both DAGs are
	// trial-invariant; before they moved here, every traversal of every
	// trial rebuilt them from scratch.
	fwd *PassRunner
	rev *PassRunner
}

// Prepare validates circ against dev and precomputes the shared
// read-only state every trial needs: the widened forward and reversed
// circuits, their dependency DAGs, and the device's (possibly
// noise-weighted) distance matrices. The returned value is safe for
// concurrent RunTrial calls.
func Prepare(circ *circuit.Circuit, dev *arch.Device, opts Options) (*Prepared, error) {
	opts = opts.normalized()
	dev = effectiveDevice(dev, opts)
	if circ.NumQubits() > dev.NumQubits() {
		return nil, fmt.Errorf("core: circuit needs %d qubits but device %s has %d",
			circ.NumQubits(), dev.Name(), dev.NumQubits())
	}
	wide := circ
	if circ.NumQubits() < dev.NumQubits() {
		wide = circ.Widen(dev.NumQubits())
	}
	if opts.Noise != nil {
		// Publish the weighted distance matrix before trials fan out so
		// concurrent traversals only ever read the memo.
		dev.WeightedDistancesFor(opts.Noise)
	}
	return &Prepared{
		dev:  dev,
		opts: opts,
		fwd:  NewPassRunner(wide, dev, opts),
		rev:  NewPassRunner(wide.Reverse(), dev, opts),
	}, nil
}

// Options returns the normalized options the trials run under.
func (p *Prepared) Options() Options { return p.opts }

// Device returns the effective device trials route on (the input
// device, or its noise-pruned subdevice).
func (p *Prepared) Device() *arch.Device { return p.dev }

// RunTrial executes one random restart: Traversals alternating
// forward/backward passes seeded by Seed+trial (the reverse-traversal
// technique of §IV-C2), returning the final forward pass's result and
// its decomposed depth (the deterministic tie-break key). Safe to call
// concurrently for distinct trials. It allocates a private Scratch;
// workers that run many trials should hold one Scratch each and use
// RunTrialWith.
func (p *Prepared) RunTrial(trial int) (*Result, int) {
	return p.RunTrialWith(trial, nil)
}

// RunTrialWith is RunTrial routing through the caller's scratch
// buffers. The scratch must not be shared between concurrent calls;
// the per-worker ownership discipline (one Scratch per goroutine,
// nothing mutable shared across the pool) is what keeps parallel
// trials allocation- and contention-free.
func (p *Prepared) RunTrialWith(trial int, s *Scratch) (*Result, int) {
	res, depth, _ := p.RunTrialCtx(context.Background(), trial, s)
	return res, depth
}

// RunTrialCtx is RunTrialWith with intra-trial cancellation: every
// traversal's SWAP loop polls ctx at round granularity, so even one
// enormous trial dies within a round of the signal instead of routing
// its whole gate list first. A cancelled trial returns ctx.Err() and a
// nil Result.
func (p *Prepared) RunTrialCtx(ctx context.Context, trial int, s *Scratch) (*Result, int, error) {
	if s == nil {
		s = NewScratch() // shared by this trial's traversals at least
	}
	opts := p.opts
	rng := rand.New(rand.NewSource(opts.Seed + int64(trial)))
	layout := mapping.Random(p.dev.NumQubits(), rng)

	var final PassResult
	firstAdded := -1
	for t := 0; t < opts.Traversals; t++ {
		runner := p.fwd
		if t%2 == 1 {
			runner = p.rev
		}
		var err error
		final, err = runner.RunContext(ctx, layout, rng, s)
		if err != nil {
			return nil, 0, err
		}
		layout = final.FinalLayout
		if t == 0 {
			firstAdded = 3 * (final.SwapCount + final.BridgeCount)
		}
	}
	res := &Result{
		Circuit:             final.Circuit,
		InitialLayout:       final.InitialLayout.LogicalToPhysical(),
		FinalLayout:         final.FinalLayout.LogicalToPhysical(),
		SwapCount:           final.SwapCount,
		BridgeCount:         final.BridgeCount,
		AddedGates:          3 * (final.SwapCount + final.BridgeCount),
		FirstTraversalAdded: firstAdded,
		TrialsRun:           trial + 1,
		Stats:               final.Stats,
	}
	return res, final.Circuit.DecomposeSwaps().Depth(), nil
}

// ErrNoTrials is returned by SelectBest when the trial population is
// empty or contains no completed results to select from.
var ErrNoTrials = errors.New("core: no completed trial results to select from")

// BetterTrial reports whether trial a strictly beats trial b under the
// deterministic selection order: fewest added gates, ties broken by
// decomposed depth, remaining ties by lowest trial index (= lowest
// seed, since trial t runs under Seed+t). The index tie-break is
// explicit — not an artifact of iteration order — so selection over
// any subset of a trial population (an adaptive early-exit prefix, a
// cancellation-truncated slice) picks the same winner as selection
// over the full population restricted to that subset.
func BetterTrial(a *Result, aDepth, aTrial int, b *Result, bDepth, bTrial int) bool {
	if a.AddedGates != b.AddedGates {
		return a.AddedGates < b.AddedGates
	}
	if aDepth != bDepth {
		return aDepth < bDepth
	}
	return aTrial < bTrial
}

// SelectBest picks the winning trial deterministically per BetterTrial.
// Nil entries (holes left by cancellation or adaptive early exit) are
// skipped; an empty or all-nil population returns ErrNoTrials instead
// of panicking, so dynamic trial counts degrade to an error the caller
// can handle.
func SelectBest(results []*Result, depths []int) (*Result, error) {
	best := -1
	for trial, res := range results {
		if res == nil {
			continue
		}
		if best < 0 || BetterTrial(res, depths[trial], trial, results[best], depths[best], best) {
			best = trial
		}
	}
	if best < 0 {
		return nil, ErrNoTrials
	}
	return results[best], nil
}

// Compile maps circ onto dev with SABRE: for each of Options.Trials
// random initial mappings it performs Options.Traversals alternating
// forward/backward traversals (the reverse-traversal technique of
// §IV-C2), letting each traversal's final mapping seed the next as an
// ever-better initial mapping; the last forward traversal produces the
// output circuit. The best trial by added gates (ties: output depth)
// wins.
//
// The returned circuit acts on the device's physical qubits and
// contains symbolic SWAPs; Result documents the accounting.
func Compile(circ *circuit.Circuit, dev *arch.Device, opts Options) (*Result, error) {
	return CompileContext(context.Background(), circ, dev, opts)
}

// CompileContext is Compile with cancellation, honored between trials
// and — via RunTrialCtx — inside each trial's SWAP loop at round
// granularity, so a cancelled caller (a dropped HTTP request, say)
// stops burning CPU within one round even mid-way through a huge
// single trial. Returns ctx.Err() when cancelled before a winner
// exists.
func CompileContext(ctx context.Context, circ *circuit.Circuit, dev *arch.Device, opts Options) (*Result, error) {
	//sabre:nondeterm-ok wall-clock elapsed metric; never feeds routing decisions
	start := time.Now()
	p, err := Prepare(circ, dev, opts)
	if err != nil {
		return nil, err
	}
	opts = p.opts

	results := make([]*Result, opts.Trials)
	depths := make([]int, opts.Trials)
	if opts.ParallelTrials && opts.Trials > 1 {
		// Bounded worker pool: GOMAXPROCS goroutines, each owning one
		// Scratch for its whole share of the trials. One goroutine per
		// trial would both oversubscribe the scheduler on large trial
		// counts and waste a scratch warm-up per trial.
		workers := runtime.GOMAXPROCS(0)
		if workers > opts.Trials {
			workers = opts.Trials
		}
		trials := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				s := NewScratch()
				for trial := range trials {
					// Cancellation is honored both here (a trial not yet
					// started when ctx dies is skipped) and inside the
					// trial's SWAP loop at round granularity, so the run
					// as a whole fails below within one round.
					res, depth, err := p.RunTrialCtx(ctx, trial, s)
					if err != nil {
						continue
					}
					results[trial], depths[trial] = res, depth
				}
			}()
		}
	feed:
		for trial := 0; trial < opts.Trials; trial++ {
			select {
			case trials <- trial:
			case <-ctx.Done():
				break feed
			}
		}
		close(trials)
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	} else {
		s := NewScratch()
		for trial := 0; trial < opts.Trials; trial++ {
			res, depth, err := p.RunTrialCtx(ctx, trial, s)
			if err != nil {
				return nil, err
			}
			results[trial], depths[trial] = res, depth
		}
	}

	best, err := SelectBest(results, depths)
	if err != nil {
		return nil, err
	}
	best.TrialsRun = opts.Trials
	best.Elapsed = time.Since(start)
	return best, nil
}

// CompileWithLayout routes circ starting from a caller-chosen initial
// layout, skipping the random restarts and reverse traversals. Useful
// when a good initial mapping is already known (e.g. produced by a
// previous Compile on a related circuit).
func CompileWithLayout(circ *circuit.Circuit, dev *arch.Device, init mapping.Layout, opts Options) (*Result, error) {
	//sabre:nondeterm-ok wall-clock elapsed metric; never feeds routing decisions
	start := time.Now()
	opts = opts.normalized()
	dev = effectiveDevice(dev, opts)
	if circ.NumQubits() > dev.NumQubits() {
		return nil, fmt.Errorf("core: circuit needs %d qubits but device %s has %d",
			circ.NumQubits(), dev.Name(), dev.NumQubits())
	}
	if init.Size() != dev.NumQubits() {
		return nil, fmt.Errorf("core: layout size %d does not match device size %d", init.Size(), dev.NumQubits())
	}
	wide := circ
	if circ.NumQubits() < dev.NumQubits() {
		wide = circ.Widen(dev.NumQubits())
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	pass := RoutePass(wide, dev, init, opts, rng)
	return &Result{
		Circuit:             pass.Circuit,
		InitialLayout:       pass.InitialLayout.LogicalToPhysical(),
		FinalLayout:         pass.FinalLayout.LogicalToPhysical(),
		SwapCount:           pass.SwapCount,
		BridgeCount:         pass.BridgeCount,
		AddedGates:          3 * (pass.SwapCount + pass.BridgeCount),
		FirstTraversalAdded: 3 * (pass.SwapCount + pass.BridgeCount),
		TrialsRun:           1,
		Stats:               pass.Stats,
		Elapsed:             time.Since(start),
	}, nil
}

// effectiveDevice applies noise-driven edge pruning when configured:
// routing then happens on the subdevice without near-dead couplers, so
// the output never touches them (it stays compliant with the full
// device, whose edge set is a superset).
func effectiveDevice(dev *arch.Device, opts Options) *arch.Device {
	if opts.Noise == nil || opts.MaxEdgeError <= 0 {
		return dev
	}
	return arch.PruneUnreliableEdges(dev, opts.Noise, opts.MaxEdgeError)
}

// InitialMapping runs the forward-backward prefix of SABRE and returns
// the improved initial layout without producing a routed circuit. This
// exposes the reverse-traversal technique as a standalone layout pass
// (the role SabreLayout plays in production compilers).
func InitialMapping(circ *circuit.Circuit, dev *arch.Device, opts Options) (mapping.Layout, error) {
	opts = opts.normalized()
	dev = effectiveDevice(dev, opts)
	if circ.NumQubits() > dev.NumQubits() {
		return mapping.Layout{}, fmt.Errorf("core: circuit needs %d qubits but device %s has %d",
			circ.NumQubits(), dev.Name(), dev.NumQubits())
	}
	wide := circ
	if circ.NumQubits() < dev.NumQubits() {
		wide = circ.Widen(dev.NumQubits())
	}
	reversed := wide.Reverse()
	fwd := NewPassRunner(wide, dev, opts)
	rev := NewPassRunner(reversed, dev, opts)
	scratch := NewScratch()

	bestSwaps := -1
	var bestLayout mapping.Layout
	for trial := 0; trial < opts.Trials; trial++ {
		rng := rand.New(rand.NewSource(opts.Seed + int64(trial)))
		layout := mapping.Random(dev.NumQubits(), rng)
		// Forward then backward: the backward pass's final mapping is
		// the improved initial mapping for the original circuit.
		f := fwd.Run(layout, rng, scratch)
		b := rev.Run(f.FinalLayout, rng, scratch)
		// Score the candidate by one evaluation pass.
		probe := fwd.Run(b.FinalLayout, rng, scratch)
		if bestSwaps < 0 || probe.SwapCount < bestSwaps {
			bestSwaps = probe.SwapCount
			bestLayout = b.FinalLayout
		}
	}
	return bestLayout, nil
}
