package core

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/mapping"
)

// Compile maps circ onto dev with SABRE: for each of Options.Trials
// random initial mappings it performs Options.Traversals alternating
// forward/backward traversals (the reverse-traversal technique of
// §IV-C2), letting each traversal's final mapping seed the next as an
// ever-better initial mapping; the last forward traversal produces the
// output circuit. The best trial by added gates (ties: output depth)
// wins.
//
// The returned circuit acts on the device's physical qubits and
// contains symbolic SWAPs; Result documents the accounting.
func Compile(circ *circuit.Circuit, dev *arch.Device, opts Options) (*Result, error) {
	start := time.Now()
	opts = opts.normalized()
	dev = effectiveDevice(dev, opts)
	if circ.NumQubits() > dev.NumQubits() {
		return nil, fmt.Errorf("core: circuit needs %d qubits but device %s has %d",
			circ.NumQubits(), dev.Name(), dev.NumQubits())
	}
	wide := circ
	if circ.NumQubits() < dev.NumQubits() {
		wide = circ.Widen(dev.NumQubits())
	}
	reversed := wide.Reverse()

	results := make([]*Result, opts.Trials)
	depths := make([]int, opts.Trials)
	if opts.ParallelTrials && opts.Trials > 1 {
		var wg sync.WaitGroup
		for trial := 0; trial < opts.Trials; trial++ {
			wg.Add(1)
			go func(trial int) {
				defer wg.Done()
				results[trial], depths[trial] = runTrial(wide, reversed, dev, opts, trial)
			}(trial)
		}
		wg.Wait()
	} else {
		for trial := 0; trial < opts.Trials; trial++ {
			results[trial], depths[trial] = runTrial(wide, reversed, dev, opts, trial)
		}
	}

	// Select the winner in trial order (strict improvement), so the
	// parallel and sequential paths return identical results.
	best, bestDepth := results[0], depths[0]
	for trial := 1; trial < opts.Trials; trial++ {
		res, depth := results[trial], depths[trial]
		if res.AddedGates < best.AddedGates ||
			(res.AddedGates == best.AddedGates && depth < bestDepth) {
			best = res
			bestDepth = depth
		}
	}
	best.TrialsRun = opts.Trials
	best.Elapsed = time.Since(start)
	return best, nil
}

// runTrial executes one random restart: Traversals alternating passes
// seeded by Seed+trial, returning the final forward pass's result and
// its decomposed depth.
func runTrial(wide, reversed *circuit.Circuit, dev *arch.Device, opts Options, trial int) (*Result, int) {
	rng := rand.New(rand.NewSource(opts.Seed + int64(trial)))
	layout := mapping.Random(dev.NumQubits(), rng)

	var final PassResult
	firstAdded := -1
	for t := 0; t < opts.Traversals; t++ {
		in := wide
		if t%2 == 1 {
			in = reversed
		}
		final = RoutePass(in, dev, layout, opts, rng)
		layout = final.FinalLayout
		if t == 0 {
			firstAdded = 3 * (final.SwapCount + final.BridgeCount)
		}
	}
	res := &Result{
		Circuit:             final.Circuit,
		InitialLayout:       final.InitialLayout.LogicalToPhysical(),
		FinalLayout:         final.FinalLayout.LogicalToPhysical(),
		SwapCount:           final.SwapCount,
		BridgeCount:         final.BridgeCount,
		AddedGates:          3 * (final.SwapCount + final.BridgeCount),
		FirstTraversalAdded: firstAdded,
		TrialsRun:           trial + 1,
		Stats:               final.Stats,
	}
	return res, final.Circuit.DecomposeSwaps().Depth()
}

// CompileWithLayout routes circ starting from a caller-chosen initial
// layout, skipping the random restarts and reverse traversals. Useful
// when a good initial mapping is already known (e.g. produced by a
// previous Compile on a related circuit).
func CompileWithLayout(circ *circuit.Circuit, dev *arch.Device, init mapping.Layout, opts Options) (*Result, error) {
	start := time.Now()
	opts = opts.normalized()
	dev = effectiveDevice(dev, opts)
	if circ.NumQubits() > dev.NumQubits() {
		return nil, fmt.Errorf("core: circuit needs %d qubits but device %s has %d",
			circ.NumQubits(), dev.Name(), dev.NumQubits())
	}
	if init.Size() != dev.NumQubits() {
		return nil, fmt.Errorf("core: layout size %d does not match device size %d", init.Size(), dev.NumQubits())
	}
	wide := circ
	if circ.NumQubits() < dev.NumQubits() {
		wide = circ.Widen(dev.NumQubits())
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	pass := RoutePass(wide, dev, init, opts, rng)
	return &Result{
		Circuit:             pass.Circuit,
		InitialLayout:       pass.InitialLayout.LogicalToPhysical(),
		FinalLayout:         pass.FinalLayout.LogicalToPhysical(),
		SwapCount:           pass.SwapCount,
		BridgeCount:         pass.BridgeCount,
		AddedGates:          3 * (pass.SwapCount + pass.BridgeCount),
		FirstTraversalAdded: 3 * (pass.SwapCount + pass.BridgeCount),
		TrialsRun:           1,
		Stats:               pass.Stats,
		Elapsed:             time.Since(start),
	}, nil
}

// effectiveDevice applies noise-driven edge pruning when configured:
// routing then happens on the subdevice without near-dead couplers, so
// the output never touches them (it stays compliant with the full
// device, whose edge set is a superset).
func effectiveDevice(dev *arch.Device, opts Options) *arch.Device {
	if opts.Noise == nil || opts.MaxEdgeError <= 0 {
		return dev
	}
	return arch.PruneUnreliableEdges(dev, opts.Noise, opts.MaxEdgeError)
}

// InitialMapping runs the forward-backward prefix of SABRE and returns
// the improved initial layout without producing a routed circuit. This
// exposes the reverse-traversal technique as a standalone layout pass
// (the role SabreLayout plays in production compilers).
func InitialMapping(circ *circuit.Circuit, dev *arch.Device, opts Options) (mapping.Layout, error) {
	opts = opts.normalized()
	dev = effectiveDevice(dev, opts)
	if circ.NumQubits() > dev.NumQubits() {
		return mapping.Layout{}, fmt.Errorf("core: circuit needs %d qubits but device %s has %d",
			circ.NumQubits(), dev.Name(), dev.NumQubits())
	}
	wide := circ
	if circ.NumQubits() < dev.NumQubits() {
		wide = circ.Widen(dev.NumQubits())
	}
	reversed := wide.Reverse()

	bestSwaps := -1
	var bestLayout mapping.Layout
	for trial := 0; trial < opts.Trials; trial++ {
		rng := rand.New(rand.NewSource(opts.Seed + int64(trial)))
		layout := mapping.Random(dev.NumQubits(), rng)
		// Forward then backward: the backward pass's final mapping is
		// the improved initial mapping for the original circuit.
		f := RoutePass(wide, dev, layout, opts, rng)
		b := RoutePass(reversed, dev, f.FinalLayout, opts, rng)
		// Score the candidate by one evaluation pass.
		probe := RoutePass(wide, dev, b.FinalLayout, opts, rng)
		if bestSwaps < 0 || probe.SwapCount < bestSwaps {
			bestSwaps = probe.SwapCount
			bestLayout = b.FinalLayout
		}
	}
	return bestLayout, nil
}
