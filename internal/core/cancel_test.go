package core

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/mapping"
)

// bigRandomCX builds a CX-heavy random circuit — large enough that a
// full trial takes many SWAP rounds, so the tests below can observe
// the difference between round-granular and trial-granular
// cancellation.
func bigRandomCX(n, gates int, seed int64) *circuit.Circuit {
	c := circuit.New(n)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < gates; i++ {
		a := rng.Intn(n)
		b := rng.Intn(n - 1)
		if b >= a {
			b++
		}
		c.Append(circuit.CX(a, b))
	}
	return c
}

// TestRunContextCancelledBeforeStart: a pre-cancelled context kills the
// traversal at its first round; no partial circuit escapes.
func TestRunContextCancelledBeforeStart(t *testing.T) {
	dev := arch.Grid(4, 5)
	circ := bigRandomCX(20, 10_000, 7)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	pr := NewPassRunner(circ, dev, DefaultOptions())
	res, err := pr.RunContext(ctx, mapping.Identity(20), rand.New(rand.NewSource(1)), nil)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Circuit != nil {
		t.Fatal("cancelled traversal leaked a partial circuit")
	}
}

// TestTrialCancellationRoundGranularity is the intra-trial-cancellation
// regression test: a 10k-gate single trial on a sparse device takes a
// long sequence of SWAP rounds (hundreds of milliseconds), but once
// cancelled mid-flight it must return within one round — microseconds,
// asserted here with a generous CI-safe bound that a trial-boundary-
// only check (which would first finish the whole traversal) cannot
// meet.
func TestTrialCancellationRoundGranularity(t *testing.T) {
	dev := arch.Grid(4, 5)
	circ := bigRandomCX(20, 10_000, 7)
	p, err := Prepare(circ, dev, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	// Calibrate: one uncancelled trial, to prove the workload is slow
	// enough for the race below to be meaningful.
	start := time.Now()
	if res, _, err := p.RunTrialCtx(context.Background(), 0, nil); err != nil || res == nil {
		t.Fatalf("uncancelled trial failed: %v", err)
	}
	full := time.Since(start)
	if full < 20*time.Millisecond {
		t.Skipf("workload too fast (%v) to observe mid-trial cancellation", full)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := p.RunTrialCtx(ctx, 0, nil)
		done <- err
	}()
	time.Sleep(full / 4) // let the trial get well into its SWAP loop
	cancel()
	cancelled := time.Now()

	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled trial never returned")
	}
	// One SWAP round on this workload is microseconds; even a heavily
	// loaded CI machine finishes the in-flight round well inside this
	// bound, while completing the remaining ~3/4 of the traversal (plus
	// two more traversals of the trial) would blow far past it.
	if lag := time.Since(cancelled); lag > full/2+50*time.Millisecond {
		t.Fatalf("cancelled trial took %v to stop (full trial %v); cancellation is not round-granular", lag, full)
	}
}
