package core

import (
	"context"

	"repro/internal/arch"
	"repro/internal/circuit"
)

// Router abstracts a qubit-mapping backend: anything that can take a
// logical circuit and produce a hardware-compliant physical circuit
// with layout accounting. SABRE (SabreRouter, or the bounded-pool
// trial runner in internal/pipeline) is the production implementation;
// the greedy and A* baselines in internal/baseline satisfy it too, so
// comparison studies can swap routers into the same pass pipeline.
//
// Implementations must be safe for concurrent Route calls and must be
// deterministic for a fixed Options.Seed.
type Router interface {
	// Name identifies the router in metrics and logs.
	Name() string
	// Route maps circ onto dev. It should honor ctx cancellation at
	// whatever granularity it can (trial boundaries at minimum) and
	// return ctx.Err() when cancelled before a result exists.
	Route(ctx context.Context, circ *circuit.Circuit, dev *arch.Device, opts Options) (*Result, error)
}

// SabreRouter is the Router over CompileContext: the paper's full
// multi-trial, reverse-traversal search. The zero value is ready to
// use.
type SabreRouter struct{}

// Name implements Router.
func (SabreRouter) Name() string { return "sabre" }

// Route implements Router.
func (SabreRouter) Route(ctx context.Context, circ *circuit.Circuit, dev *arch.Device, opts Options) (*Result, error) {
	return CompileContext(ctx, circ, dev, opts)
}
