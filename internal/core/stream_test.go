package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/circuit"
)

// sameGate is structural gate equality (the comparison Circuit.Equal
// performs per element).
func sameGate(a, b circuit.Gate) bool {
	if a.Kind != b.Kind || a.Q0 != b.Q0 || a.Q1 != b.Q1 || len(a.Params) != len(b.Params) {
		return false
	}
	for i := range a.Params {
		if a.Params[i] != b.Params[i] {
			return false
		}
	}
	return true
}

// collectSink accumulates emitted chunks (copying, per the sink
// contract) and can run a callback after each chunk.
type collectSink struct {
	gates   []circuit.Gate
	chunks  int
	onChunk func(chunk int) error
}

func (c *collectSink) Emit(gates []circuit.Gate) error {
	c.chunks++
	c.gates = append(c.gates, gates...)
	if c.onChunk != nil {
		return c.onChunk(c.chunks)
	}
	return nil
}

// randomStreamCircuit builds a deterministic mixed circuit: two-qubit
// CNOTs, single-qubit rotations riding the dependency chains, and a
// sprinkle of measurements — the gate population the streaming parser
// feeds the router.
func randomStreamCircuit(t *testing.T, n, gates int, seed int64) *circuit.Circuit {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New(n)
	for c.NumGates() < gates {
		switch rng.Intn(10) {
		case 0, 1, 2:
			c.Append(circuit.G1(circuit.KindH, rng.Intn(n)))
		case 3:
			c.Append(circuit.G1(circuit.KindRZ, rng.Intn(n), rng.Float64()))
		case 4:
			c.Append(circuit.Gate{Kind: circuit.KindMeasure, Q0: rng.Intn(n), Q1: rng.Intn(n)})
		default:
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			c.Append(circuit.CX(a, b))
		}
	}
	return c
}

func assertStreamParity(t *testing.T, label string, circ *circuit.Circuit, dev *arch.Device, opts Options, sopts StreamOptions) (*StreamResult, []circuit.Gate) {
	t.Helper()
	ring := &collectSink{}
	rres, err := RouteStream(context.Background(), NewCircuitSource(circ), dev, opts, sopts, ring, nil)
	if err != nil {
		t.Fatalf("%s: RouteStream: %v", label, err)
	}
	flat := &collectSink{}
	fres, err := RouteStreamMaterialized(context.Background(), circ, dev, opts, sopts, flat)
	if err != nil {
		t.Fatalf("%s: RouteStreamMaterialized: %v", label, err)
	}
	if len(ring.gates) != len(flat.gates) {
		t.Fatalf("%s: windowed path emitted %d gates, materialized %d", label, len(ring.gates), len(flat.gates))
	}
	for i := range ring.gates {
		if !sameGate(ring.gates[i], flat.gates[i]) {
			t.Fatalf("%s: outputs diverge at gate %d: %v vs %v", label, i, ring.gates[i], flat.gates[i])
		}
	}
	for q := range rres.InitialLayout {
		if rres.InitialLayout[q] != fres.InitialLayout[q] || rres.FinalLayout[q] != fres.FinalLayout[q] {
			t.Fatalf("%s: layouts diverge at qubit %d", label, q)
		}
	}
	if rres.Stats.SwapCount != fres.Stats.SwapCount || rres.Stats.BridgeCount != fres.Stats.BridgeCount ||
		rres.Stats.SwapRounds != fres.Stats.SwapRounds || rres.Stats.ForcedRoutes != fres.Stats.ForcedRoutes ||
		rres.Stats.GatesIn != fres.Stats.GatesIn || rres.Stats.GatesOut != fres.Stats.GatesOut {
		t.Fatalf("%s: stats diverge: windowed %+v vs materialized %+v", label, rres.Stats, fres.Stats)
	}
	if rres.Stats.GatesIn != int64(circ.NumGates()) {
		t.Fatalf("%s: admitted %d gates, circuit has %d", label, rres.Stats.GatesIn, circ.NumGates())
	}
	return rres, ring.gates
}

// TestStreamParityWindowedVsMaterialized is the core determinism
// claim: the windowed slot-arena path and the materialized-DAG oracle
// emit byte-identical streams across circuit shapes, seeds, options,
// and window tunings.
func TestStreamParityWindowedVsMaterialized(t *testing.T) {
	tokyo := arch.IBMQ20Tokyo()
	for _, tc := range []struct {
		name  string
		gates int
		seed  int64
		opts  Options
		sopts StreamOptions
	}{
		{name: "small", gates: 200, seed: 1, opts: Options{Seed: 1}},
		{name: "medium", gates: 5000, seed: 2, opts: Options{Seed: 7}},
		{name: "bridge", gates: 3000, seed: 3, opts: Options{Seed: 3, UseBridge: true}},
		{name: "basic-heuristic", gates: 2000, seed: 4, opts: Options{Seed: 4, Heuristic: HeuristicBasic}},
		{name: "lookahead-heuristic", gates: 2000, seed: 5, opts: Options{Seed: 5, Heuristic: HeuristicLookahead}},
		{name: "tiny-window", gates: 3000, seed: 6, opts: Options{Seed: 6}, sopts: StreamOptions{Window: 2}},
		{name: "tiny-chunks", gates: 3000, seed: 7, opts: Options{Seed: 7}, sopts: StreamOptions{ChunkGates: 3}},
		{name: "short-lookahead", gates: 3000, seed: 8, opts: Options{Seed: 8}, sopts: StreamOptions{Lookahead: 5}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			circ := randomStreamCircuit(t, tokyo.NumQubits(), tc.gates, tc.seed)
			assertStreamParity(t, tc.name, circ, tokyo, tc.opts, tc.sopts)
		})
	}
}

// TestStreamParityWithNoise covers the float-weighted distance path.
func TestStreamParityWithNoise(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	noise := arch.UniformNoise(0.01)
	circ := randomStreamCircuit(t, dev.NumQubits(), 2000, 11)
	assertStreamParity(t, "noise", circ, dev, Options{Seed: 11, Noise: noise}, StreamOptions{})
}

// TestStreamOutputInvariants: tuning knobs that must not change the
// routed stream (Window is a capacity hint, ChunkGates a flush
// granularity) don't, and the knob that legitimately does (Lookahead)
// is exercised by the parity suite at several values.
func TestStreamOutputInvariants(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	circ := randomStreamCircuit(t, dev.NumQubits(), 4000, 21)
	opts := Options{Seed: 21}
	var ref []circuit.Gate
	for i, sopts := range []StreamOptions{
		{},
		{Window: 1},
		{Window: 1 << 16},
		{ChunkGates: 1},
		{ChunkGates: 1 << 20},
	} {
		sink := &collectSink{}
		if _, err := RouteStream(context.Background(), NewCircuitSource(circ), dev, opts, sopts, sink, nil); err != nil {
			t.Fatalf("sopts %+v: %v", sopts, err)
		}
		if i == 0 {
			ref = append([]circuit.Gate(nil), sink.gates...)
			continue
		}
		if len(sink.gates) != len(ref) {
			t.Fatalf("sopts %+v: %d gates vs reference %d", sopts, len(sink.gates), len(ref))
		}
		for j := range ref {
			if !sameGate(sink.gates[j], ref[j]) {
				t.Fatalf("sopts %+v: output diverges at gate %d", sopts, j)
			}
		}
	}
}

// TestStreamScratchReuse: a warm per-worker Scratch replays different
// streams back to back and still matches a cold run.
func TestStreamScratchReuse(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	s := NewScratch()
	for seed := int64(1); seed <= 3; seed++ {
		circ := randomStreamCircuit(t, dev.NumQubits(), 1500, seed)
		warm := &collectSink{}
		if _, err := RouteStream(context.Background(), NewCircuitSource(circ), dev, Options{Seed: seed}, StreamOptions{}, warm, s); err != nil {
			t.Fatalf("warm seed %d: %v", seed, err)
		}
		cold := &collectSink{}
		if _, err := RouteStream(context.Background(), NewCircuitSource(circ), dev, Options{Seed: seed}, StreamOptions{}, cold, nil); err != nil {
			t.Fatalf("cold seed %d: %v", seed, err)
		}
		if len(warm.gates) != len(cold.gates) {
			t.Fatalf("seed %d: warm scratch emitted %d gates, cold %d", seed, len(warm.gates), len(cold.gates))
		}
		for i := range cold.gates {
			if !sameGate(warm.gates[i], cold.gates[i]) {
				t.Fatalf("seed %d: warm/cold outputs diverge at gate %d", seed, i)
			}
		}
	}
}

// TestStreamArenaWraparound drives a Window-2 arena through thousands
// of admissions so every slot is freed and recycled many times over,
// and cross-checks the recycling bookkeeping against the materialized
// oracle (which has no arena at all).
func TestStreamArenaWraparound(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	circ := randomStreamCircuit(t, dev.NumQubits(), 6000, 31)
	res, _ := assertStreamParity(t, "wraparound", circ, dev, Options{Seed: 31}, StreamOptions{Window: 2, Lookahead: 64})
	if res.Stats.MaxWindow > 64+dev.NumQubits() {
		t.Fatalf("live window %d exceeds lookahead+front bound", res.Stats.MaxWindow)
	}
}

// TestStreamWindowBoundaryStall: a two-qubit gate parked at maximal
// distance while a long single-qubit chain on its own wires floods the
// stream. The chained gates depend on the blocked gate, so nothing
// drains; refill must stall at the Lookahead bound (not admit the
// whole stream), and the router must resolve the stall by swapping the
// pair together. This is the dependency-spans-window-boundary case.
func TestStreamWindowBoundaryStall(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	n := dev.NumQubits()
	c := circuit.New(n)
	c.Append(circuit.CX(0, n-1))
	for i := 0; i < 5000; i++ {
		c.Append(circuit.G1(circuit.KindH, 0))
		c.Append(circuit.G1(circuit.KindH, n-1))
	}
	c.Append(circuit.CX(0, n-1))
	sopts := StreamOptions{Lookahead: 16}
	res, gates := assertStreamParity(t, "boundary-stall", c, dev, Options{Seed: 5}, sopts)
	if res.Stats.MaxWindow > 16+n {
		t.Fatalf("stalled window grew to %d slots; lookahead bound is 16", res.Stats.MaxWindow)
	}
	if res.Stats.GatesOut != int64(len(gates)) || len(gates) < c.NumGates() {
		t.Fatalf("emitted %d gates for a %d-gate circuit", len(gates), c.NumGates())
	}
}

// TestStreamCancellation cancels the context from inside the sink
// after the first chunk: RouteStream must return ctx.Err(), keep the
// already-delivered chunks untouched, and drop the partial tail.
func TestStreamCancellation(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	circ := randomStreamCircuit(t, dev.NumQubits(), 20000, 41)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sink := &collectSink{onChunk: func(chunk int) error {
		if chunk == 1 {
			cancel()
		}
		return nil
	}}
	res, err := RouteStream(ctx, NewCircuitSource(circ), dev, Options{Seed: 41}, StreamOptions{ChunkGates: 64}, sink, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled stream returned (%v, %v); want context.Canceled", res, err)
	}
	if sink.chunks == 0 || len(sink.gates) >= circ.NumGates() {
		t.Fatalf("partial emission wrong: %d chunks, %d gates of %d", sink.chunks, len(sink.gates), circ.NumGates())
	}
}

// TestStreamSinkError: a failing sink aborts the stream with its
// error.
func TestStreamSinkError(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	circ := randomStreamCircuit(t, dev.NumQubits(), 20000, 43)
	boom := errors.New("downstream full")
	sink := &collectSink{onChunk: func(chunk int) error {
		if chunk >= 3 {
			return boom
		}
		return nil
	}}
	if _, err := RouteStream(context.Background(), NewCircuitSource(circ), dev, Options{Seed: 43}, StreamOptions{ChunkGates: 64}, sink, nil); !errors.Is(err, boom) {
		t.Fatalf("sink error not propagated: %v", err)
	}
}

// TestStreamRejectsBadGates: out-of-range qubits fail with a named
// error, not a panic deep in the router.
func TestStreamRejectsBadGates(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	n := dev.NumQubits()
	for _, bad := range []circuit.Gate{
		{Kind: circuit.KindCX, Q0: 0, Q1: n},
		{Kind: circuit.KindCX, Q0: -1, Q1: 1},
		{Kind: circuit.KindCX, Q0: 3, Q1: 3},
		{Kind: circuit.KindH, Q0: n + 5, Q1: -1},
	} {
		c := circuit.New(n) // empty; feed the bad gate straight from a source
		src := &stubSource{gates: []circuit.Gate{bad}}
		if _, err := RouteStream(context.Background(), src, dev, Options{Seed: 1}, StreamOptions{}, &collectSink{}, nil); err == nil {
			t.Fatalf("gate %+v admitted without error", bad)
		}
		_ = c
	}
}

type stubSource struct {
	gates []circuit.Gate
	i     int
}

func (s *stubSource) Next() (circuit.Gate, bool, error) {
	if s.i >= len(s.gates) {
		return circuit.Gate{}, false, nil
	}
	g := s.gates[s.i]
	s.i++
	return g, true, nil
}

// nnStreamSource synthesizes an endless-ish deterministic stream of
// mostly coupled-edge CNOTs (pass-through traffic) with a periodic
// random long-range CNOT to force SWAP rounds — cheap enough to run a
// million gates through under the race detector.
type nnStreamSource struct {
	edges     []arch.Edge
	n         int
	rng       *rand.Rand
	remaining int
}

func (s *nnStreamSource) Next() (circuit.Gate, bool, error) {
	if s.remaining <= 0 {
		return circuit.Gate{}, false, nil
	}
	s.remaining--
	if s.remaining%64 == 0 {
		for {
			a, b := s.rng.Intn(s.n), s.rng.Intn(s.n)
			if a != b {
				return circuit.CX(a, b), true, nil
			}
		}
	}
	e := s.edges[s.rng.Intn(len(s.edges))]
	return circuit.CX(e.A, e.B), true, nil
}

// TestStreamMemoryFlatAcross10x is the O(device + window) claim,
// measured: the same synthetic stream at 100k and 1M gates must end
// with the identical live-window high-water mark and arena footprint —
// memory does not grow with stream length.
func TestStreamMemoryFlatAcross10x(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	run := func(gates int) *StreamResult {
		src := &nnStreamSource{edges: dev.Edges(), n: dev.NumQubits(), rng: rand.New(rand.NewSource(9)), remaining: gates}
		res, err := RouteStream(context.Background(), src, dev, Options{Seed: 9}, StreamOptions{}, discardSink{}, nil)
		if err != nil {
			t.Fatalf("%d gates: %v", gates, err)
		}
		if res.Stats.GatesOut < int64(gates) {
			t.Fatalf("%d gates in, only %d out", gates, res.Stats.GatesOut)
		}
		return res
	}
	small := run(100_000)
	big := run(1_000_000)
	// The high-water mark is a max statistic over different stream
	// tails, so it may wiggle by a slot or two — but it must not scale
	// with length. A length-proportional window would differ by ~9e5
	// slots here; assert flat within a constant.
	if big.Stats.MaxWindow > small.Stats.MaxWindow+8 {
		t.Fatalf("live-window high-water grew with stream length: %d at 100k vs %d at 1M gates",
			small.Stats.MaxWindow, big.Stats.MaxWindow)
	}
	if big.Stats.WindowBytes > small.Stats.WindowBytes+1024 {
		t.Fatalf("arena footprint grew with stream length: %d B at 100k vs %d B at 1M gates",
			small.Stats.WindowBytes, big.Stats.WindowBytes)
	}
	lookahead := DefaultStreamOptions().Lookahead
	if max := lookahead + dev.NumQubits(); big.Stats.MaxWindow > max {
		t.Fatalf("live window %d exceeds the lookahead+front bound %d", big.Stats.MaxWindow, max)
	}
	if big.Stats.MaxWindow <= 0 || big.Stats.WindowBytes <= 0 {
		t.Fatalf("instrumentation missing: %+v", big.Stats)
	}
}

// TestStreamStepZeroAllocs is the runtime half of the hotalloc
// contract for the streaming loop: once warm, a full streaming step —
// drain, admission, refill, scoring round, chunk flush — performs zero
// heap allocations. The probe's source cycles forever, so every branch
// of the loop keeps executing across the measured runs.
func TestStreamStepZeroAllocs(t *testing.T) {
	p := NewStreamProbe()
	if allocs := testing.AllocsPerRun(2000, func() {
		p.Step()
	}); allocs != 0 {
		t.Fatalf("streaming step allocates %.1f times per iteration; want 0", allocs)
	}
}

func BenchmarkStreamStep(b *testing.B) {
	p := NewStreamProbe()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
}
