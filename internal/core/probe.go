package core

import (
	"math/rand"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/mapping"
)

// ScoreRoundProbe is a router parked at a steady-state SWAP-selection
// round of a fixed hard workload: 400 random CNOTs (seed 17) on the
// IBM Q20 Tokyo chip under the identity layout, drained to its first
// non-executable front layer, with every scratch buffer warmed by one
// scored round. Calling ScoreRound repeatedly then measures exactly
// one round — candidate collection, extended-set lookup, round-index
// rebuild, scoring, winner selection — with no allocation and no
// state drift (the winning SWAP is never applied). It exists so the
// benchmark table (cmd/benchtab) and the CI bench guard can gate the
// round's ns/op and allocs/op per PR with the same fixture the
// in-package alloc guard and BenchmarkScoreRound use.
type ScoreRoundProbe struct {
	r *router
}

// NewScoreRoundProbe builds the probe with the given scoring engine.
func NewScoreRoundProbe(scoring Scoring) *ScoreRoundProbe {
	dev := arch.IBMQ20Tokyo()
	mix := rand.New(rand.NewSource(17))
	c := circuit.New(20)
	for i := 0; i < 400; i++ {
		a := mix.Intn(20)
		b := mix.Intn(19)
		if b >= a {
			b++
		}
		c.Append(circuit.CX(a, b))
	}
	opts := DefaultOptions()
	opts.Scoring = scoring
	pr := NewPassRunner(c, dev, opts)
	r := pr.newRouter(mapping.Identity(20), rand.New(rand.NewSource(1)), nil, nil)
	r.drain()
	if len(r.s.front) == 0 {
		// Unreachable for this fixed workload (the dense random circuit
		// always blocks on Tokyo); a panic here means the fixture broke.
		panic("core: score-round probe workload drained completely")
	}
	_ = r.scoreRound()
	return &ScoreRoundProbe{r: r}
}

// ScoreRound runs one steady-state SWAP-selection round.
func (p *ScoreRoundProbe) ScoreRound() {
	p.r.scoreRound()
}
