package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/mapping"
	"repro/internal/verify"
	"repro/internal/workloads"
)

// --- Bridge transformation (§VI extension) ---

func TestBridgeIdentityOverGF2(t *testing.T) {
	// CX(c,m) CX(m,t) CX(c,m) CX(m,t) == CX(c,t) with m restored.
	bridge := circuit.New(3)
	bridge.Append(circuit.CX(0, 1), circuit.CX(1, 2), circuit.CX(0, 1), circuit.CX(1, 2))
	direct := circuit.New(3)
	direct.Append(circuit.CX(0, 2))
	a, err := verify.FromCircuit(bridge)
	if err != nil {
		t.Fatal(err)
	}
	b, err := verify.FromCircuit(direct)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatalf("bridge != CNOT:\n%v\nvs\n%v", a, b)
	}
}

func TestBridgeUsedForNonRecurringDistance2CNOT(t *testing.T) {
	// Line of 3: CX(0,2) at distance 2, never repeated → bridge, not SWAP.
	dev := arch.Line(3)
	c := circuit.New(3)
	c.Append(circuit.CX(0, 1), circuit.CX(1, 2), circuit.CX(0, 2))
	opts := DefaultOptions()
	opts.UseBridge = true
	res, err := CompileWithLayout(c, dev, mapping.Identity(3), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.BridgeCount != 1 || res.SwapCount != 0 {
		t.Fatalf("bridges=%d swaps=%d, want 1 bridge 0 swaps", res.BridgeCount, res.SwapCount)
	}
	if res.AddedGates != 3 {
		t.Fatalf("added = %d, want 3", res.AddedGates)
	}
	// Mapping unchanged: a bridge does not move qubits.
	for q := 0; q < 3; q++ {
		if res.FinalLayout[q] != q {
			t.Fatalf("bridge moved qubits: %v", res.FinalLayout)
		}
	}
	if err := verify.CheckRouted(c, res.Circuit, res.InitialLayout, res.FinalLayout); err != nil {
		t.Fatal(err)
	}
}

func TestBridgeAvoidedForRecurringPair(t *testing.T) {
	// The same distant pair repeated many times: bridging every CNOT
	// would cost 3 gates each, so the router should move the qubits
	// together (SWAP) instead.
	dev := arch.Line(3)
	c := circuit.New(3)
	for i := 0; i < 8; i++ {
		c.Append(circuit.CX(0, 2))
	}
	opts := DefaultOptions()
	opts.UseBridge = true
	res, err := CompileWithLayout(c, dev, mapping.Identity(3), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.BridgeCount != 0 {
		t.Fatalf("bridged a recurring pair %d times", res.BridgeCount)
	}
	if err := verify.CheckRouted(c, res.Circuit, res.InitialLayout, res.FinalLayout); err != nil {
		t.Fatal(err)
	}
}

// Property: bridge-enabled routing stays correct on random circuits.
func TestBridgeEquivalenceProperty(t *testing.T) {
	dev := arch.Grid(3, 3)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := circuit.New(9)
		for i := 0; i < 40; i++ {
			a := rng.Intn(9)
			b := rng.Intn(8)
			if b >= a {
				b++
			}
			c.Append(circuit.CX(a, b))
		}
		opts := DefaultOptions()
		opts.Trials = 1
		opts.Seed = seed
		opts.UseBridge = true
		res, err := Compile(c, dev, opts)
		if err != nil {
			return false
		}
		if verify.HardwareCompliant(res.Circuit.DecomposeSwaps(), dev.Connected) != nil {
			return false
		}
		return verify.CheckRouted(c, res.Circuit, res.InitialLayout, res.FinalLayout) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBridgeAccounting(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	c := workloads.QFT(10)
	opts := DefaultOptions()
	opts.UseBridge = true
	res, err := Compile(c, dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.AddedGates != 3*(res.SwapCount+res.BridgeCount) {
		t.Fatalf("accounting: %d != 3*(%d+%d)", res.AddedGates, res.SwapCount, res.BridgeCount)
	}
	// The output circuit's gate count must agree with the accounting:
	// g_out = g_ori + 3·swaps + 3·bridges after SWAP decomposition.
	out := res.Circuit.DecomposeSwaps().NumGates()
	if out != c.NumGates()+res.AddedGates {
		t.Fatalf("gate total %d != %d + %d", out, c.NumGates(), res.AddedGates)
	}
}

// --- Noise-aware routing (§VI extension) ---

func TestNoiseAwareAvoidsBadEdge(t *testing.T) {
	// Ring of 4 with one catastrophic edge. A repeated CNOT between
	// qubits placed across the ring must be routed around the bad edge.
	dev := arch.Ring(4)
	noise := &arch.NoiseModel{
		EdgeError: map[arch.Edge]float64{
			arch.NewEdge(0, 1): 0.4,
			arch.NewEdge(1, 2): 0.001,
			arch.NewEdge(2, 3): 0.001,
			arch.NewEdge(0, 3): 0.001,
		},
	}
	c := circuit.New(4)
	for i := 0; i < 6; i++ {
		c.Append(circuit.CX(0, 2))
	}
	opts := DefaultOptions()
	opts.Noise = noise
	res, err := Compile(c, dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range res.Circuit.DecomposeSwaps().Gates() {
		if g.TwoQubit() && arch.NewEdge(g.Q0, g.Q1) == arch.NewEdge(0, 1) {
			t.Fatalf("noise-aware routing used the bad edge: %v", g)
		}
	}
	if err := verify.CheckRouted(c, res.Circuit, res.InitialLayout, res.FinalLayout); err != nil {
		t.Fatal(err)
	}
}

func TestNoiseAwareImprovesExpectedFidelity(t *testing.T) {
	// On a Q20 with a 10× spread of edge errors, noise-aware routing
	// must place the circuit's own gates on more reliable couplers than
	// hop-count routing — on every workload, by a clear margin. The
	// comparison deliberately excludes inserted SWAPs: the weighted
	// router trades extra movement for reliable execution edges (longer
	// paths through good couplers look short in weighted distance), so
	// whole-circuit product fidelity under a mild spread is a noisy
	// coin flip per seed, while the mapping quality the weighted matrix
	// actually optimizes — where the original gates execute — wins
	// robustly (~35-45% lower log-cost on every seed tried).
	dev := arch.IBMQ20Tokyo()
	rng := rand.New(rand.NewSource(11))
	noise := arch.RandomNoise(dev, 0.005, 0.05, rng)
	var plain, aware float64
	for seed := int64(0); seed < 3; seed++ {
		c := workloads.RandomCircuit("noise", 12, 150, 0.7, seed)
		op := DefaultOptions()
		op.Trials = 3
		op.Seed = seed
		rp, err := Compile(c, dev, op)
		if err != nil {
			t.Fatal(err)
		}
		oa := op
		oa.Noise = noise
		ra, err := Compile(c, dev, oa)
		if err != nil {
			t.Fatal(err)
		}
		p := originalGateCost(rp.Circuit, noise)
		a := originalGateCost(ra.Circuit, noise)
		if a >= p {
			t.Errorf("seed %d: noise-aware original-gate log-cost %.3f not below plain %.3f", seed, a, p)
		}
		plain += p
		aware += a
	}
	if aware > plain*0.9 {
		t.Fatalf("noise-aware aggregate log-cost %.3f not clearly below plain %.3f", aware, plain)
	}
}

// originalGateCost sums -ln(1-err) over the circuit's own two-qubit
// gates (inserted SWAPs excluded): the log-domain expected-error cost
// of where routing chose to execute them. Lower is more reliable.
func originalGateCost(c *circuit.Circuit, m *arch.NoiseModel) float64 {
	cost := 0.0
	for _, g := range c.Gates() {
		if g.TwoQubit() && g.Kind != circuit.KindSwap {
			cost += -math.Log(1 - m.Error(arch.NewEdge(g.Q0, g.Q1)))
		}
	}
	return cost
}

func TestEdgePruningAvoidsDeadCouplers(t *testing.T) {
	// Four near-dead central couplers on the Q20: with MaxEdgeError set
	// the router must never touch them, and must still verify.
	dev := arch.IBMQ20Tokyo()
	bad := []arch.Edge{
		arch.NewEdge(6, 7), arch.NewEdge(7, 12),
		arch.NewEdge(11, 12), arch.NewEdge(12, 13),
	}
	noise := arch.UniformNoise(0.005)
	noise.EdgeError = map[arch.Edge]float64{}
	for _, e := range bad {
		noise.EdgeError[e] = 0.25
	}
	c := circuit.New(12)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 120; i++ {
		a := rng.Intn(12)
		b := rng.Intn(11)
		if b >= a {
			b++
		}
		c.Append(circuit.CX(a, b))
	}
	opts := DefaultOptions()
	opts.Noise = noise
	opts.MaxEdgeError = 0.1
	res, err := Compile(c, dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range res.Circuit.DecomposeSwaps().Gates() {
		if !g.TwoQubit() {
			continue
		}
		e := arch.NewEdge(g.Q0, g.Q1)
		for _, be := range bad {
			if e == be {
				t.Fatalf("gate on pruned coupler %v", e)
			}
		}
	}
	// Output is still compliant with the FULL device.
	if err := verify.HardwareCompliant(res.Circuit.DecomposeSwaps(), dev.Connected); err != nil {
		t.Fatal(err)
	}
	if err := verify.CheckRouted(c, res.Circuit, res.InitialLayout, res.FinalLayout); err != nil {
		t.Fatal(err)
	}
}

func TestNoiseAwareStillCompliant(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	noise := arch.RandomNoise(dev, 0.005, 0.05, rand.New(rand.NewSource(5)))
	c := workloads.QFT(10)
	opts := DefaultOptions()
	opts.Trials = 2
	opts.Noise = noise
	res, err := Compile(c, dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.HardwareCompliant(res.Circuit.DecomposeSwaps(), dev.Connected); err != nil {
		t.Fatal(err)
	}
}

// --- Instrumentation (§IV-C1 complexity claim) ---

func TestStatsCollected(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	c := workloads.QFT(12)
	res, err := Compile(c, dev, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.SwapRounds == 0 || s.TotalCandidates == 0 {
		t.Fatalf("no stats collected: %+v", s)
	}
	if s.MaxCandidates > 2*len(dev.Edges()) {
		t.Fatalf("candidate list %d larger than edge set %d", s.MaxCandidates, len(dev.Edges()))
	}
	if s.AvgCandidates() <= 0 {
		t.Fatal("avg candidates wrong")
	}
}

// The §IV-C1 claim: the candidate list is O(N) — bounded by the edge
// count, which is O(N) on degree-bounded NISQ topologies — versus the
// mapping space O(exp N). Check the bound holds across grid sizes.
func TestCandidateListLinearInDeviceSize(t *testing.T) {
	for _, side := range []int{3, 4, 5, 6} {
		dev := arch.Grid(side, side)
		n := side * side
		c := workloads.RandomCircuit("cand", n, 40*n, 0.8, int64(side))
		opts := DefaultOptions()
		opts.Trials = 1
		res, err := Compile(c, dev, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.MaxCandidates > len(dev.Edges()) {
			t.Fatalf("side %d: candidates %d exceed |E|=%d", side, res.Stats.MaxCandidates, len(dev.Edges()))
		}
	}
}

// --- Known-optimal (QUEKO-style) instances ---

func TestKnownOptimalZeroGap(t *testing.T) {
	// A zero-SWAP mapping exists by construction; SABRE's random-restart
	// + reverse-traversal pipeline should find it on the Q20 (cf. the
	// paper's small-benchmark claim, extended to 20 qubits).
	dev := arch.IBMQ20Tokyo()
	totalGap := 0
	for seed := int64(1); seed <= 3; seed++ {
		c, hidden := workloads.KnownOptimal(dev, 300, seed)
		opts := DefaultOptions()
		opts.Seed = seed
		res, err := Compile(c, dev, opts)
		if err != nil {
			t.Fatal(err)
		}
		totalGap += res.AddedGates
		if err := verify.CheckRouted(c, res.Circuit, res.InitialLayout, res.FinalLayout); err != nil {
			t.Fatal(err)
		}
		// Sanity: the hidden witness really is a 0-swap layout.
		wl, err := mapping.FromLogicalToPhysical(hidden)
		if err != nil {
			t.Fatal(err)
		}
		wres, err := CompileWithLayout(c, dev, wl, opts)
		if err != nil {
			t.Fatal(err)
		}
		if wres.SwapCount != 0 {
			t.Fatalf("hidden witness not zero-swap (seed %d)", seed)
		}
	}
	if totalGap > 18 {
		t.Fatalf("optimality gap %d over 3 instances; expected near zero", totalGap)
	}
}

// --- Parallel trials ---

func TestParallelTrialsBitIdentical(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	for _, name := range []string{"qft_10", "rd84_142"} {
		b, _ := workloads.ByName(name)
		c := b.Build()
		serial := DefaultOptions()
		parallel := DefaultOptions()
		parallel.ParallelTrials = true
		rs, err := Compile(c, dev, serial)
		if err != nil {
			t.Fatal(err)
		}
		rp, err := Compile(c, dev, parallel)
		if err != nil {
			t.Fatal(err)
		}
		if !rs.Circuit.Equal(rp.Circuit) {
			t.Fatalf("%s: parallel result differs from sequential", name)
		}
		if rs.AddedGates != rp.AddedGates || rs.FirstTraversalAdded != rp.FirstTraversalAdded {
			t.Fatalf("%s: accounting differs", name)
		}
		for i := range rs.InitialLayout {
			if rs.InitialLayout[i] != rp.InitialLayout[i] {
				t.Fatalf("%s: layouts differ", name)
			}
		}
	}
}

func TestPassStatsZeroRounds(t *testing.T) {
	var s PassStats
	if s.AvgCandidates() != 0 {
		t.Fatal("zero-round average should be 0")
	}
}
