package core

import (
	"math/rand"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/mapping"
)

// PassResult is the outcome of one traversal (RoutePass): the routed
// physical circuit, the layouts bracketing it, and the SWAP count.
type PassResult struct {
	Circuit       *circuit.Circuit
	InitialLayout mapping.Layout
	FinalLayout   mapping.Layout
	SwapCount     int
	BridgeCount   int
	Stats         PassStats
}

// PassStats instruments one traversal; it quantifies the §IV-C1
// complexity claim (the SWAP candidate list is O(N), not O(exp(N))).
type PassStats struct {
	// SwapRounds counts SWAP-selection rounds (Algorithm 1's else
	// branch); TotalCandidates across them gives the average candidate
	// list size the heuristic scored per round.
	SwapRounds      int
	TotalCandidates int
	MaxCandidates   int
	MaxFront        int
	ForcedRoutes    int
}

// AvgCandidates returns the mean SWAP-candidate count per round.
func (s PassStats) AvgCandidates() float64 {
	if s.SwapRounds == 0 {
		return 0
	}
	return float64(s.TotalCandidates) / float64(s.SwapRounds)
}

// router holds the mutable state of one traversal of Algorithm 1.
type router struct {
	dev  *arch.Device
	opts Options
	rng  *rand.Rand

	circ *circuit.Circuit // logical circuit, width == device size
	dag  *circuit.DAG

	layout mapping.Layout
	inDeg  []int
	front  []int // two-qubit gate indices: dependencies met, not yet executable
	ready  []int // gate indices with dependencies met, executability unchecked
	done   int   // executed gate count

	out     []circuit.Gate
	swaps   int
	bridges int
	stats   PassStats

	// wdist is the noise-weighted distance matrix (nil when routing by
	// hop count); see Options.Noise.
	wdist [][]float64

	decay      []float64 // per logical qubit, 1.0 at rest
	decaySteps int       // SWAP selections since last decay reset
	stall      int       // consecutive SWAPs without executing a gate

	// scratch buffers reused across SWAP-selection rounds.
	extended   []int
	candidates []arch.Edge
	candSeen   map[arch.Edge]bool
}

// RoutePass runs one traversal of SABRE's SWAP-based heuristic search
// (Algorithm 1) over circ starting from the given layout. circ must
// already be widened to the device's qubit count. The input layout is
// not mutated.
func RoutePass(circ *circuit.Circuit, dev *arch.Device, init mapping.Layout, opts Options, rng *rand.Rand) PassResult {
	opts = opts.normalized()
	r := &router{
		dev:      dev,
		opts:     opts,
		rng:      rng,
		circ:     circ,
		dag:      circuit.BuildDAG(circ),
		layout:   init.Clone(),
		decay:    make([]float64, dev.NumQubits()),
		candSeen: make(map[arch.Edge]bool),
	}
	for i := range r.decay {
		r.decay[i] = 1
	}
	if opts.Noise != nil {
		// Memoized on the device: every traversal of every trial shares
		// one read-only matrix instead of rerunning Floyd–Warshall.
		r.wdist = dev.WeightedDistancesFor(opts.Noise)
	}
	r.inDeg = r.dag.InDegrees()
	for i, deg := range r.inDeg {
		if deg == 0 {
			r.ready = append(r.ready, i)
		}
	}
	r.run()
	out := circuit.NewNamed(circ.Name(), dev.NumQubits())
	out.Append(r.out...)
	return PassResult{
		Circuit:       out,
		InitialLayout: init.Clone(),
		FinalLayout:   r.layout,
		SwapCount:     r.swaps,
		BridgeCount:   r.bridges,
		Stats:         r.stats,
	}
}

// dist returns the routing distance between physical qubits a and b:
// coupling-graph hops by default, or the noise-weighted most-reliable-
// path cost when a NoiseModel is configured.
func (r *router) dist(a, b int) float64 {
	if r.wdist != nil {
		return r.wdist[a][b]
	}
	return float64(r.dev.Distance(a, b))
}

// run is the main loop of Algorithm 1.
func (r *router) run() {
	maxStall := r.opts.MaxStall
	if maxStall <= 0 {
		maxStall = 4*r.dev.Diameter() + 16
	}
	for {
		r.drain()
		if len(r.front) == 0 {
			return
		}
		if r.stall >= maxStall {
			r.forceRoute()
			continue
		}
		if r.opts.UseBridge && r.tryBridge() {
			continue
		}
		r.insertBestSwap()
	}
}

// tryBridge looks for a front-layer CNOT whose qubits sit at distance
// exactly 2 and whose logical pair does not recur in the extended set,
// and executes it through a 4-CNOT bridge instead of moving qubits:
//
//	CX(c,m) CX(m,t) CX(c,m) CX(m,t)  ==  CX(c,t)   (m restored)
//
// A bridge costs the same 3 extra gates as one SWAP but leaves the
// mapping unchanged, which wins exactly when the pair will not
// interact again soon (§VI's circuit-transformation direction; the
// transformation the paper cites from Siraichi et al.).
func (r *router) tryBridge() bool {
	r.collectExtendedSet()
	recurring := make(map[[2]int]bool, len(r.extended))
	for _, gi := range r.extended {
		g := r.circ.Gate(gi)
		a, b := g.Q0, g.Q1
		if a > b {
			a, b = b, a
		}
		recurring[[2]int{a, b}] = true
	}
	for fi, gi := range r.front {
		g := r.circ.Gate(gi)
		if g.Kind != circuit.KindCX {
			continue
		}
		pa, pb := r.layout.Phys(g.Q0), r.layout.Phys(g.Q1)
		if r.dev.Distance(pa, pb) != 2 {
			continue
		}
		a, b := g.Q0, g.Q1
		if a > b {
			a, b = b, a
		}
		if recurring[[2]int{a, b}] {
			continue
		}
		// Middle qubit on a shortest path.
		path := r.dev.ShortestPath(pa, pb)
		m := path[1]
		r.out = append(r.out,
			circuit.CX(pa, m), circuit.CX(m, pb),
			circuit.CX(pa, m), circuit.CX(m, pb),
		)
		r.bridges++
		r.stall = 0
		r.resetDecay()
		// Retire the gate without the usual execute() remap (the bridge
		// already realized it on physical wires).
		r.front = append(r.front[:fi], r.front[fi+1:]...)
		r.done++
		for _, s := range r.dag.Successors(gi) {
			r.inDeg[s]--
			if r.inDeg[s] == 0 {
				r.ready = append(r.ready, s)
			}
		}
		return true
	}
	return false
}

// drain executes every gate whose dependencies are met and whose
// physical qubits (for two-qubit gates) are coupled, looping until no
// further progress. It maintains the front layer F.
func (r *router) drain() {
	for {
		progress := false
		// Newly-ready gates: execute or park in the front layer.
		for len(r.ready) > 0 {
			g := r.ready[len(r.ready)-1]
			r.ready = r.ready[:len(r.ready)-1]
			if r.executable(g) {
				r.execute(g)
				progress = true
			} else {
				r.front = append(r.front, g)
			}
		}
		// Front-layer gates that a SWAP (or an executed gate) unlocked.
		keep := r.front[:0]
		for _, g := range r.front {
			if r.executable(g) {
				r.execute(g)
				progress = true
			} else {
				keep = append(keep, g)
			}
		}
		r.front = keep
		if !progress {
			return
		}
	}
}

// executable reports whether gate g can run right now under the current
// layout: single-qubit gates always can; two-qubit gates need their
// physical qubits coupled.
func (r *router) executable(g int) bool {
	gate := r.circ.Gate(g)
	if !gate.TwoQubit() {
		return true
	}
	return r.dev.Connected(r.layout.Phys(gate.Q0), r.layout.Phys(gate.Q1))
}

// execute emits gate g remapped to physical qubits, retires it in the
// DAG and releases its successors.
func (r *router) execute(g int) {
	gate := r.circ.Gate(g)
	r.out = append(r.out, gate.Remap(r.layout.Phys))
	r.done++
	if gate.TwoQubit() {
		// Paper §V: decay resets whenever a CNOT is executed.
		r.resetDecay()
		r.stall = 0
	}
	for _, s := range r.dag.Successors(g) {
		r.inDeg[s]--
		if r.inDeg[s] == 0 {
			r.ready = append(r.ready, s)
		}
	}
}

// insertBestSwap scores the candidate SWAPs (edges touching a front-
// layer qubit, §IV-C1) with the configured heuristic and applies the
// best one.
func (r *router) insertBestSwap() {
	r.collectCandidates()
	r.collectExtendedSet()
	r.stats.SwapRounds++
	r.stats.TotalCandidates += len(r.candidates)
	if len(r.candidates) > r.stats.MaxCandidates {
		r.stats.MaxCandidates = len(r.candidates)
	}
	if len(r.front) > r.stats.MaxFront {
		r.stats.MaxFront = len(r.front)
	}

	best := r.candidates[0]
	bestScore := r.scoreSwap(best)
	ties := 1
	for _, e := range r.candidates[1:] {
		s := r.scoreSwap(e)
		switch {
		case s < bestScore-1e-12:
			best, bestScore, ties = e, s, 1
		case s <= bestScore+1e-12:
			// Reservoir-sample among ties so the seeded search explores
			// the plateau uniformly (the authors' artifact randomizes
			// tie order the same way).
			ties++
			if r.rng.Intn(ties) == 0 {
				best = e
			}
		}
	}
	r.applySwap(best)
}

// collectCandidates gathers the SWAP candidate list: every coupling
// edge with at least one endpoint hosting a logical qubit of a front-
// layer gate. SWAPs entirely between low-priority qubits cannot help
// (paper Fig. 6) and are pruned.
func (r *router) collectCandidates() {
	r.candidates = r.candidates[:0]
	for e := range r.candSeen {
		delete(r.candSeen, e)
	}
	for _, g := range r.front {
		gate := r.circ.Gate(g)
		for _, q := range [2]int{gate.Q0, gate.Q1} {
			p := r.layout.Phys(q)
			for _, nb := range r.dev.Neighbors(p) {
				e := arch.NewEdge(p, nb)
				if !r.candSeen[e] {
					r.candSeen[e] = true
					r.candidates = append(r.candidates, e)
				}
			}
		}
	}
}

// collectExtendedSet fills r.extended with up to ExtendedSetSize
// two-qubit gates that follow the front layer in the DAG (BFS order),
// giving the heuristic its look-ahead window (§IV-D).
func (r *router) collectExtendedSet() {
	r.extended = r.extended[:0]
	if r.opts.Heuristic == HeuristicBasic {
		return
	}
	limit := r.opts.ExtendedSetSize
	// BFS from the front layer through the DAG. Decremented indegree
	// bookkeeping is not needed for an estimate: we walk successors
	// breadth-first and take the first `limit` two-qubit gates.
	queue := append([]int(nil), r.front...)
	visited := make(map[int]bool, 4*limit)
	for _, g := range queue {
		visited[g] = true
	}
	for len(queue) > 0 && len(r.extended) < limit {
		g := queue[0]
		queue = queue[1:]
		for _, s := range r.dag.Successors(g) {
			if visited[s] {
				continue
			}
			visited[s] = true
			if r.circ.Gate(s).TwoQubit() {
				r.extended = append(r.extended, s)
				if len(r.extended) >= limit {
					break
				}
			}
			queue = append(queue, s)
		}
	}
}

// applySwap emits a SWAP on the physical edge, updates the layout and
// the decay bookkeeping.
func (r *router) applySwap(e arch.Edge) {
	r.out = append(r.out, circuit.Swap(e.A, e.B))
	qa, qb := r.layout.Log(e.A), r.layout.Log(e.B)
	r.layout.SwapPhysical(e.A, e.B)
	r.swaps++
	r.stall++

	r.decay[qa] += r.opts.DecayDelta
	r.decay[qb] += r.opts.DecayDelta
	r.decaySteps++
	if r.decaySteps >= r.opts.DecayResetInterval {
		r.resetDecay()
	}
}

func (r *router) resetDecay() {
	if r.decaySteps == 0 {
		return
	}
	for i := range r.decay {
		r.decay[i] = 1
	}
	r.decaySteps = 0
}

// forceRoute deterministically routes the oldest front-layer gate by
// swapping its control along a shortest path to its target. It is the
// termination safeguard: bounded by the device diameter, it always
// executes at least one gate.
func (r *router) forceRoute() {
	g := r.front[0]
	for _, fg := range r.front {
		if fg < g {
			g = fg
		}
	}
	gate := r.circ.Gate(g)
	pa, pb := r.layout.Phys(gate.Q0), r.layout.Phys(gate.Q1)
	path := r.dev.ShortestPath(pa, pb)
	// Swap the control forward until adjacent to the target.
	for i := 0; i+2 < len(path); i++ {
		r.applySwap(arch.NewEdge(path[i], path[i+1]))
	}
	r.stall = 0
	r.stats.ForcedRoutes++
}
