package core

import (
	"context"
	"math/bits"
	"math/rand"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/mapping"
)

// PassResult is the outcome of one traversal (RoutePass): the routed
// physical circuit, the layouts bracketing it, and the SWAP count.
type PassResult struct {
	Circuit       *circuit.Circuit
	InitialLayout mapping.Layout
	FinalLayout   mapping.Layout
	SwapCount     int
	BridgeCount   int
	Stats         PassStats
}

// PassStats instruments one traversal; it quantifies the §IV-C1
// complexity claim (the SWAP candidate list is O(N), not O(exp(N))).
type PassStats struct {
	// SwapRounds counts SWAP-selection rounds (Algorithm 1's else
	// branch); TotalCandidates across them gives the average candidate
	// list size the heuristic scored per round.
	SwapRounds      int
	TotalCandidates int
	MaxCandidates   int
	MaxFront        int
	ForcedRoutes    int

	// ExtendedRebuilds counts how often the extended set was actually
	// recomputed. The set only depends on the front layer, so across
	// consecutive non-executing SWAP rounds (and between a bridge probe
	// and the SWAP selection of the same round) it is served from
	// cache; this stays well below the number of rounds that consult
	// it.
	ExtendedRebuilds int
}

// AvgCandidates returns the mean SWAP-candidate count per round.
func (s PassStats) AvgCandidates() float64 {
	if s.SwapRounds == 0 {
		return 0
	}
	return float64(s.TotalCandidates) / float64(s.SwapRounds)
}

// PassRunner binds one (circuit, device, options) triple to the
// trial-invariant state a traversal needs: the dependency DAG of the
// circuit and the (possibly noise-weighted) flat distance matrix.
// Construct once, then Run many times with different layouts and
// seeds — restart trials, annealing chains and reverse traversals all
// re-route the same circuit, and rebuilding the DAG per traversal was
// pure waste. A PassRunner is immutable after construction and safe
// for concurrent Run calls (each Run's mutable state lives in its
// Scratch).
type PassRunner struct {
	circ  *circuit.Circuit
	dag   *circuit.DAG
	dev   *arch.Device
	opts  Options
	wdist []float64 // flat noise-weighted matrix, nil for hop counts

	// q2 is the flat per-gate qubit-pair table: entries 2*gi and
	// 2*gi+1 are gate gi's logical qubits (-1, -1 for single-qubit
	// gates, which never reach the round loops — drain executes them
	// unconditionally). The round hot paths read pairs from here with
	// two int32 loads instead of copying a circuit.Gate (whose Params
	// slice header alone is wider than both entries).
	q2 []int32
}

// NewPassRunner prepares circ (already widened to the device size) for
// repeated traversals on dev under opts.
func NewPassRunner(circ *circuit.Circuit, dev *arch.Device, opts Options) *PassRunner {
	opts = opts.normalized()
	pr := &PassRunner{
		circ: circ,
		dag:  circuit.BuildDAG(circ),
		dev:  dev,
		opts: opts,
		q2:   make([]int32, 2*circ.NumGates()),
	}
	for gi := 0; gi < circ.NumGates(); gi++ {
		g := circ.Gate(gi)
		if g.TwoQubit() {
			pr.q2[2*gi] = int32(g.Q0)
			pr.q2[2*gi+1] = int32(g.Q1)
		} else {
			pr.q2[2*gi] = -1
			pr.q2[2*gi+1] = -1
		}
	}
	if opts.Noise != nil {
		// Memoized on the device: every traversal of every trial shares
		// one read-only matrix instead of rerunning Floyd–Warshall.
		pr.wdist = dev.WeightedDistancesFor(opts.Noise)
	}
	return pr
}

// Run performs one traversal of SABRE's SWAP-based heuristic search
// (Algorithm 1) starting from init, using s for every mutable buffer
// (nil allocates a private scratch). The input layout is not mutated.
func (pr *PassRunner) Run(init mapping.Layout, rng *rand.Rand, s *Scratch) PassResult {
	res, _ := pr.RunContext(context.Background(), init, rng, s)
	return res
}

// RunContext is Run with intra-traversal cancellation: the SWAP loop
// checks ctx between rounds, so even a single huge trial dies within
// one round of cancellation instead of routing its whole gate list.
// A cancelled traversal returns ctx.Err() and a zero PassResult — its
// partial output is never observable. The check is a select-default on
// ctx.Done() (no allocation, no lock), so the steady-state SWAP round
// stays zero-alloc.
func (pr *PassRunner) RunContext(ctx context.Context, init mapping.Layout, rng *rand.Rand, s *Scratch) (PassResult, error) {
	r := pr.newRouter(init, rng, s, ctx.Done())
	if !r.run() {
		return PassResult{}, ctx.Err()
	}
	out := circuit.NewNamed(pr.circ.Name(), r.n)
	// Trusted: every emitted gate is a remap of a validated gate
	// through the layout bijection, or a SWAP/CX on device edges.
	out.AppendTrusted(r.s.out...)
	return PassResult{
		Circuit:       out,
		InitialLayout: init.Clone(),
		FinalLayout:   r.layout,
		SwapCount:     r.swaps,
		BridgeCount:   r.bridges,
		Stats:         r.stats,
	}, nil
}

// newRouter resets s (allocating a private scratch for nil) and wires
// up the mutable state of one traversal: the cloned layout, the ready
// list seeded from the DAG sources, and the flat read-only tables the
// round hot loops gather from (distance matrices, per-gate qubit
// pairs, dense edge endpoints, incident-edge bitsets).
func (pr *PassRunner) newRouter(init mapping.Layout, rng *rand.Rand, s *Scratch, cancelled <-chan struct{}) *router {
	if s == nil {
		s = NewScratch()
	}
	n := pr.dev.NumQubits()
	s.reset(n, pr.circ.NumGates(), len(pr.dev.Edges()))
	r := &router{
		dev:    pr.dev,
		n:      n,
		opts:   pr.opts,
		rng:    rng,
		circ:   pr.circ,
		dag:    pr.dag,
		layout: init.Clone(),
		s:      s,
		dist:   pr.dev.Distances(),
		wdist:  pr.wdist,
		q2:     pr.q2,
		ends:   pr.dev.EdgeEndpoints(),
		inc:    pr.dev.IncidentEdgeWords(),
		incW:   pr.dev.EdgeWords(),
		extGen: -1,
		idxGen: -1,

		cancelled: cancelled,
	}
	s.inDeg = r.dag.InDegreesInto(s.inDeg)
	for i, deg := range s.inDeg {
		if deg == 0 {
			s.ready = append(s.ready, i)
		}
	}
	return r
}

// RoutePass runs one traversal of SABRE's SWAP-based heuristic search
// (Algorithm 1) over circ starting from the given layout. circ must
// already be widened to the device's qubit count. The input layout is
// not mutated. Callers that route the same circuit repeatedly should
// construct a PassRunner once and reuse it (plus a Scratch) instead.
func RoutePass(circ *circuit.Circuit, dev *arch.Device, init mapping.Layout, opts Options, rng *rand.Rand) PassResult {
	return NewPassRunner(circ, dev, opts).Run(init, rng, nil)
}

// router holds the mutable state of one traversal of Algorithm 1.
// Every slice it appends to lives in the Scratch so steady-state SWAP
// rounds never touch the allocator.
type router struct {
	dev  *arch.Device
	n    int // device qubit count = row stride of the flat matrices
	opts Options
	rng  *rand.Rand

	circ *circuit.Circuit // logical circuit, width == device size
	dag  *circuit.DAG

	layout mapping.Layout
	done   int // executed gate count

	s *Scratch

	swaps   int
	bridges int
	stats   PassStats

	// dist is the device's flat hop-count matrix; wdist the flat
	// noise-weighted matrix (nil when routing by hop count, see
	// Options.Noise). Indexed a*n+b.
	dist  []int
	wdist []float64

	// Flat read-only gather tables for the round hot loops: q2 is the
	// PassRunner's per-gate qubit-pair table; ends the device's dense
	// edge-id→endpoints table; inc its per-qubit incident-edge bitsets
	// with row stride incW.
	q2   []int32
	ends []int32
	inc  []uint64
	incW int

	decaySteps int // SWAP selections since last decay reset
	stall      int // consecutive SWAPs without executing a gate

	// cancelled is the cancellation signal of the owning context (nil
	// when the traversal is uncancellable); run polls it once per SWAP
	// round.
	cancelled <-chan struct{}

	// frontGen increments whenever the front layer's contents change;
	// extGen records the generation the extended set was computed at.
	// The extended set is a pure function of the front layer (a DAG
	// walk), so while the front is unchanged — consecutive
	// non-executing SWAP rounds, or a bridge probe followed by SWAP
	// selection in the same round — the cached set is served as-is.
	// idxGen plays the same role for the layout-independent half of
	// the bitset round index (extOff and the fpart occupancy pattern,
	// see buildRoundIndexBitset).
	frontGen int
	extGen   int
	idxGen   int

	// Per-round base sums of the scoring round's front/extended
	// distances under the current layout (integer hops or weighted),
	// computed once per round by buildRoundIndex; candidate scores are
	// base + delta over the few gates touching the swapped qubits.
	frontSumI int64
	extSumI   int64
	frontSumF float64
	extSumF   float64

	// Per-round reciprocals of Eq. 2's size normalizations, set by
	// setRoundScale: invF = 1/|F| and invE = W/|E| (0 when the extended
	// set is empty). combine multiplies by these instead of dividing
	// per candidate; every scoring engine shares them, so the rounding
	// is engine-independent.
	invF float64
	invE float64
}

// setRoundScale recomputes the per-round combine reciprocals from the
// current front/extended sets. Called once per scoring round (and from
// buildRoundIndex, so white-box tests that drive the scorers directly
// get consistent scales).
//
//sabre:hotpath
func (r *router) setRoundScale() {
	r.invF = 1 / float64(len(r.s.front))
	if len(r.s.extended) > 0 {
		r.invE = r.opts.ExtendedSetWeight / float64(len(r.s.extended))
	} else {
		r.invE = 0
	}
}

// hop returns the hop-count distance between physical qubits a and b.
//
//sabre:hotpath
func (r *router) hop(a, b int) int { return r.dist[a*r.n+b] }

// distAt returns the routing distance between physical qubits a and b:
// coupling-graph hops by default, or the noise-weighted most-reliable-
// path cost when a NoiseModel is configured.
//
//sabre:hotpath
func (r *router) distAt(a, b int) float64 {
	if r.wdist != nil {
		return r.wdist[a*r.n+b]
	}
	return float64(r.dist[a*r.n+b])
}

// run is the main loop of Algorithm 1. It reports false when the
// traversal was cut short by cancellation — checked once per round, so
// an abandoned trial stops within one SWAP selection of the signal.
func (r *router) run() bool {
	maxStall := r.opts.MaxStall
	if maxStall <= 0 {
		maxStall = 4*r.dev.Diameter() + 16
	}
	for {
		r.drain()
		if len(r.s.front) == 0 {
			return true
		}
		select {
		case <-r.cancelled:
			return false
		default:
		}
		if r.stall >= maxStall {
			r.forceRoute()
			continue
		}
		if r.opts.UseBridge && r.tryBridge() {
			continue
		}
		r.insertBestSwap()
	}
}

// tryBridge looks for a front-layer CNOT whose qubits sit at distance
// exactly 2 and whose logical pair does not recur in the extended set,
// and executes it through a 4-CNOT bridge instead of moving qubits:
//
//	CX(c,m) CX(m,t) CX(c,m) CX(m,t)  ==  CX(c,t)   (m restored)
//
// A bridge costs the same 3 extra gates as one SWAP but leaves the
// mapping unchanged, which wins exactly when the pair will not
// interact again soon (§VI's circuit-transformation direction; the
// transformation the paper cites from Siraichi et al.).
func (r *router) tryBridge() bool {
	r.ensureExtended()
	s := r.s
	for fi, gi := range s.front {
		g := r.circ.Gate(gi)
		if g.Kind != circuit.KindCX {
			continue
		}
		pa, pb := r.layout.Phys(g.Q0), r.layout.Phys(g.Q1)
		if r.hop(pa, pb) != 2 {
			continue
		}
		if r.pairRecurs(g.Q0, g.Q1) {
			continue
		}
		// Middle qubit on a shortest path: the first neighbour of pa
		// adjacent to pb in sorted order — the same qubit the greedy
		// shortest-path walk picks.
		m := -1
		for _, nb := range r.dev.Neighbors(pa) {
			if r.hop(nb, pb) == 1 {
				m = nb
				break
			}
		}
		s.out = append(s.out,
			circuit.CX(pa, m), circuit.CX(m, pb),
			circuit.CX(pa, m), circuit.CX(m, pb),
		)
		r.bridges++
		r.stall = 0
		r.resetDecay()
		// Retire the gate without the usual execute() remap (the bridge
		// already realized it on physical wires).
		s.front = append(s.front[:fi], s.front[fi+1:]...)
		r.frontGen++
		r.done++
		for _, succ := range r.dag.Successors(gi) {
			s.inDeg[succ]--
			if s.inDeg[succ] == 0 {
				s.ready = append(s.ready, succ)
			}
		}
		return true
	}
	return false
}

// pairRecurs reports whether the unordered logical pair {a, b} appears
// among the extended-set gates. The extended set holds at most
// ExtendedSetSize gates, so a linear scan beats building a set per
// round (and allocates nothing).
func (r *router) pairRecurs(a, b int) bool {
	if a > b {
		a, b = b, a
	}
	for _, gi := range r.s.extended {
		g := r.circ.Gate(gi)
		ga, gb := g.Q0, g.Q1
		if ga > gb {
			ga, gb = gb, ga
		}
		if ga == a && gb == b {
			return true
		}
	}
	return false
}

// drain executes every gate whose dependencies are met and whose
// physical qubits (for two-qubit gates) are coupled, looping until no
// further progress. It maintains the front layer F and bumps frontGen
// whenever F's contents change (which invalidates the extended-set
// cache).
func (r *router) drain() {
	s := r.s
	changed := false
	for {
		progress := false
		// Newly-ready gates: execute or park in the front layer.
		for len(s.ready) > 0 {
			g := s.ready[len(s.ready)-1]
			s.ready = s.ready[:len(s.ready)-1]
			if r.executable(g) {
				r.execute(g)
				progress = true
			} else {
				s.front = append(s.front, g)
				changed = true
			}
		}
		// Front-layer gates that a SWAP (or an executed gate) unlocked.
		keep := s.front[:0]
		for _, g := range s.front {
			if r.executable(g) {
				r.execute(g)
				progress = true
				changed = true
			} else {
				keep = append(keep, g)
			}
		}
		s.front = keep
		if !progress {
			if changed {
				r.frontGen++
			}
			return
		}
	}
}

// executable reports whether gate g can run right now under the current
// layout: single-qubit gates always can; two-qubit gates need their
// physical qubits coupled.
func (r *router) executable(g int) bool {
	gate := r.circ.Gate(g)
	if !gate.TwoQubit() {
		return true
	}
	return r.dev.Connected(r.layout.Phys(gate.Q0), r.layout.Phys(gate.Q1))
}

// execute emits gate g remapped to physical qubits, retires it in the
// DAG and releases its successors.
func (r *router) execute(g int) {
	gate := r.circ.Gate(g)
	r.s.out = append(r.s.out, gate.Remap(r.layout.Phys))
	r.done++
	if gate.TwoQubit() {
		// Paper §V: decay resets whenever a CNOT is executed.
		r.resetDecay()
		r.stall = 0
	}
	for _, succ := range r.dag.Successors(g) {
		r.s.inDeg[succ]--
		if r.s.inDeg[succ] == 0 {
			r.s.ready = append(r.s.ready, succ)
		}
	}
}

// insertBestSwap scores the candidate SWAPs (edges touching a front-
// layer qubit, §IV-C1) with the configured heuristic and applies the
// best one.
func (r *router) insertBestSwap() {
	best := r.scoreRound()
	r.applySwap(best)
}

// scoreRound runs one SWAP-selection round up to (but excluding) the
// mutation: collect candidates, refresh the extended set, fill the
// per-candidate score buffer with the configured engine, and return
// the best-scoring candidate edge with ties broken by reservoir
// sampling. All engines see the same candidate order (ascending dense
// edge id) and feed the same selection loop, so the tie-break RNG
// stream — and therefore the routed output — is engine-independent.
// Split from insertBestSwap so tests and benchmarks can measure a
// steady-state round in isolation.
//
//sabre:hotpath
func (r *router) scoreRound() arch.Edge {
	r.collectCandidates()
	r.ensureExtended()
	r.setRoundScale()
	s := r.s
	r.stats.SwapRounds++
	r.stats.TotalCandidates += len(s.candIDs)
	if len(s.candIDs) > r.stats.MaxCandidates {
		r.stats.MaxCandidates = len(s.candIDs)
	}
	if len(s.front) > r.stats.MaxFront {
		r.stats.MaxFront = len(s.front)
	}

	mode := r.scoringMode()
	if mode == ScoringBitset {
		// The bitset engine fuses winner selection into its scoring
		// pass (same comparisons and RNG draws as selectBest, see
		// scoreBitset), so it skips the score buffer entirely.
		r.buildRoundIndexBitset()
		return r.candidate(r.scoreCandidatesBitset())
	}
	if cap(s.scores) < len(s.candIDs) {
		//sabre:alloc-ok amortized Scratch grow; steady-state rounds reuse the buffer
		s.scores = make([]float64, len(s.candIDs))
	}
	s.scores = s.scores[:len(s.candIDs)]
	if mode == ScoringDelta {
		r.buildRoundIndex()
		for i := range s.candIDs {
			s.scores[i] = r.scoreSwap(r.candidate(i))
		}
	} else { // ScoringExhaustive
		for i := range s.candIDs {
			s.scores[i] = r.scoreSwapExhaustive(r.candidate(i))
		}
	}
	return r.selectBest()
}

// scoringMode resolves the effective scoring engine, honoring the
// legacy ExhaustiveScoring flag even when toggled after construction
// (white-box tests flip it on a live router).
func (r *router) scoringMode() Scoring {
	if r.opts.ExhaustiveScoring && r.opts.Scoring == ScoringBitset {
		return ScoringExhaustive
	}
	return r.opts.Scoring
}

// selectBest scans the filled score buffer and returns the lowest-
// scoring candidate, reservoir-sampling among ties (within a 1e-12
// band) so the seeded search explores plateaus uniformly — the
// authors' artifact randomizes tie order the same way. This loop is
// the only RNG consumer in a round; the oracle engines share it, and
// the bitset engine fuses the identical comparison/draw sequence into
// its scoring pass (scoreBitset), so every engine consumes the same
// RNG stream and routes byte-identically.
//
//sabre:hotpath
func (r *router) selectBest() arch.Edge {
	s := r.s
	best := 0
	bestScore := s.scores[0]
	ties := 1
	for i := 1; i < len(s.scores); i++ {
		sc := s.scores[i]
		switch {
		case sc < bestScore-1e-12:
			best, bestScore, ties = i, sc, 1
		case sc <= bestScore+1e-12:
			ties++
			if r.rng.Intn(ties) == 0 {
				best = i
			}
		}
	}
	return r.candidate(best)
}

// collectCandidates gathers the SWAP candidate list: every coupling
// edge with at least one endpoint hosting a logical qubit of a front-
// layer gate. SWAPs entirely between low-priority qubits cannot help
// (paper Fig. 6) and are pruned. The list is built branch-free: the
// incident-edge bitset rows of every front qubit are OR-ed into one
// accumulator (duplicates cost nothing — OR is idempotent, which is
// the whole dedup), then drained in ascending dense edge id by
// trailing-zero iteration. Draining zeroes each word after reading
// it, restoring the Scratch's all-zero invariant for the next round.
// Ascending edge id is the canonical candidate order every scoring
// engine and the tie-break RNG stream depend on.
//
//sabre:hotpath
func (r *router) collectCandidates() {
	s := r.s
	w := s.candWords
	stride := r.incW
	for _, g := range s.front {
		pa := r.layout.Phys(int(r.q2[2*g]))
		pb := r.layout.Phys(int(r.q2[2*g+1]))
		ra := r.inc[pa*stride : (pa+1)*stride]
		rb := r.inc[pb*stride : (pb+1)*stride]
		for i := range w {
			w[i] |= ra[i] | rb[i]
		}
	}
	cands := s.candIDs[:0]
	for wi, word := range w {
		if word == 0 {
			continue
		}
		w[wi] = 0
		base := int32(wi * 64)
		for ; word != 0; word &= word - 1 {
			cands = append(cands, base+int32(bits.TrailingZeros64(word)))
		}
	}
	s.candIDs = cands
}

// candidate materializes candidate i as a physical edge through the
// device's dense edge-endpoint table.
//
//sabre:hotpath
func (r *router) candidate(i int) arch.Edge {
	id := r.s.candIDs[i]
	return arch.Edge{A: int(r.ends[2*id]), B: int(r.ends[2*id+1])}
}

// ensureExtended refreshes r.s.extended — up to ExtendedSetSize
// two-qubit gates that follow the front layer in the DAG (BFS order),
// the heuristic's look-ahead window (§IV-D) — unless the cached set is
// still valid. The set is a pure function of the front layer, so it is
// recomputed only when frontGen moved; bridge probe and SWAP scoring
// within one round, and consecutive non-executing rounds, all share
// one computation.
//
//sabre:hotpath
func (r *router) ensureExtended() {
	if r.extGen == r.frontGen {
		return
	}
	r.extGen = r.frontGen
	r.stats.ExtendedRebuilds++
	s := r.s
	s.extended = s.extended[:0]
	if r.opts.Heuristic == HeuristicBasic {
		return
	}
	limit := r.opts.ExtendedSetSize
	// BFS from the front layer through the DAG. Decremented indegree
	// bookkeeping is not needed for an estimate: we walk successors
	// breadth-first and take the first `limit` two-qubit gates.
	// Visited tracking is an epoch stamp per gate; the queue is a
	// reused buffer walked by index (no pop-front copying).
	epoch := s.nextGateEpoch()
	queue := s.bfsQueue[:0]
	queue = append(queue, s.front...)
	for _, g := range queue {
		s.gateMark[g] = epoch
	}
	for head := 0; head < len(queue) && len(s.extended) < limit; head++ {
		g := queue[head]
		for _, succ := range r.dag.Successors(g) {
			if s.gateMark[succ] == epoch {
				continue
			}
			s.gateMark[succ] = epoch
			if r.circ.Gate(succ).TwoQubit() {
				s.extended = append(s.extended, succ)
				if len(s.extended) >= limit {
					break
				}
			}
			queue = append(queue, succ)
		}
	}
	s.bfsQueue = queue
}

// applySwap emits a SWAP on the physical edge, updates the layout and
// the decay bookkeeping.
//
//sabre:hotpath
func (r *router) applySwap(e arch.Edge) {
	s := r.s
	s.out = append(s.out, circuit.Swap(e.A, e.B))
	qa, qb := r.layout.Log(e.A), r.layout.Log(e.B)
	r.layout.SwapPhysical(e.A, e.B)
	r.swaps++
	r.stall++

	s.decay[qa] += r.opts.DecayDelta
	s.decay[qb] += r.opts.DecayDelta
	r.decaySteps++
	if r.decaySteps >= r.opts.DecayResetInterval {
		r.resetDecay()
	}
}

func (r *router) resetDecay() {
	if r.decaySteps == 0 {
		return
	}
	for i := range r.s.decay {
		r.s.decay[i] = 1
	}
	r.decaySteps = 0
}

// forceRoute deterministically routes the oldest front-layer gate by
// swapping its control along a shortest path to its target. It is the
// termination safeguard: bounded by the device diameter, it always
// executes at least one gate. The path is walked greedily downhill in
// the distance matrix (the same walk ShortestPath performs) without
// materializing it.
func (r *router) forceRoute() {
	g := r.s.front[0]
	for _, fg := range r.s.front {
		if fg < g {
			g = fg
		}
	}
	gate := r.circ.Gate(g)
	cur, pb := r.layout.Phys(gate.Q0), r.layout.Phys(gate.Q1)
	// Swap the control forward until adjacent to the target.
	for r.hop(cur, pb) > 1 {
		next := -1
		for _, nb := range r.dev.Neighbors(cur) {
			if r.hop(nb, pb) == r.hop(cur, pb)-1 {
				next = nb
				break
			}
		}
		r.applySwap(arch.NewEdge(cur, next))
		cur = next
	}
	r.stall = 0
	r.stats.ForcedRoutes++
}
