package core

import (
	"repro/internal/arch"
)

// scoreSwap evaluates the heuristic cost function H for one candidate
// SWAP under a temporarily-updated mapping π_temp (Algorithm 1 lines
// 20-23). The layout is mutated and restored in place — cheaper than
// cloning per candidate and equivalent to the paper's π.update(SWAP).
func (r *router) scoreSwap(e arch.Edge) float64 {
	// Decay factor belongs to the logical qubits being swapped
	// (Eq. 2: max(decay(SWAP.q1), decay(SWAP.q2))).
	qa, qb := r.layout.Log(e.A), r.layout.Log(e.B)

	r.layout.SwapPhysical(e.A, e.B)
	var score float64
	switch r.opts.Heuristic {
	case HeuristicBasic:
		score = r.frontDistanceSum()
	case HeuristicLookahead:
		score = r.lookaheadScore()
	case HeuristicDecay:
		d := r.decay[qa]
		if r.decay[qb] > d {
			d = r.decay[qb]
		}
		score = d * r.lookaheadScore()
	}
	r.layout.SwapPhysical(e.A, e.B)
	return score
}

// frontDistanceSum is Eq. 1: Σ_{gate∈F} D[π(q1)][π(q2)], with D the
// hop-count matrix or, under a noise model, the reliability-weighted
// matrix (§VI extension).
func (r *router) frontDistanceSum() float64 {
	sum := 0.0
	for _, g := range r.front {
		gate := r.circ.Gate(g)
		sum += r.dist(r.layout.Phys(gate.Q0), r.layout.Phys(gate.Q1))
	}
	return sum
}

// lookaheadScore is Eq. 2 without the decay factor: the size-normalized
// front-layer distance sum plus the W-weighted extended-set term.
func (r *router) lookaheadScore() float64 {
	score := r.frontDistanceSum() / float64(len(r.front))
	if len(r.extended) > 0 {
		extSum := 0.0
		for _, g := range r.extended {
			gate := r.circ.Gate(g)
			extSum += r.dist(r.layout.Phys(gate.Q0), r.layout.Phys(gate.Q1))
		}
		score += r.opts.ExtendedSetWeight * extSum / float64(len(r.extended))
	}
	return score
}
