package core

import (
	"math"

	"repro/internal/arch"
	"repro/internal/mapping"
)

// This file implements the heuristic cost function H (Eq. 1 and Eq. 2)
// with incremental delta scoring. The paper's §IV-C1 point is that the
// candidate list is O(N); the remaining per-round cost was our own:
// re-summing the whole front layer and extended set for every
// candidate made a round O(|cand|·(|F|+|E|)). Instead, the base sums
//
//	Σ_{g∈F} D[π(q1)][π(q2)]   and   Σ_{g∈E} D[π(q1)][π(q2)]
//
// are computed once per round (buildRoundIndex), and a candidate SWAP
// on edge (A, B) rescores as base + Δ, where Δ ranges only over the
// gates touching the two swapped logical qubits — O(deg) per
// candidate, found through a per-qubit gate index built in the same
// pass as the sums.
//
// Determinism contract: with hop-count distances (the default and the
// paper's configuration) every sum is an integer, accumulated in
// int64 and converted to float64 only at the end, so base+Δ is
// bit-identical to the from-scratch sum no matter the accumulation
// order. The weighted (noise-model) sums accumulate in float64 in
// front/extended order for the base, exactly as the exhaustive scorer
// does, so bases match bit-for-bit; the delta then adds the (few)
// changed terms at the end, which re-associates the accumulation and
// can differ from the from-scratch sum by ~1 ulp (see
// Options.ExhaustiveScoring for the resulting contract).
// Options.ExhaustiveScoring keeps the O(|F|+|E|)-per-candidate
// reference scorer selectable for validation; the golden determinism
// suite asserts both scorers route the entire workload suite
// byte-identically, including the noise configurations.

// buildRoundIndex computes the front/extended base distance sums under
// the current layout and (re)builds the per-logical-qubit index of
// which front/extended gates touch each qubit. Each index entry stores
// the gate's *other* logical qubit (encoded partner+1 for front gates,
// -(partner+1) for extended), which is all the delta needs: the
// distance change of gate (q, partner) is a two-row matrix lookup, no
// gate fetch. Called once per SWAP round; everything it writes lives
// in the Scratch.
//
//sabre:hotpath
func (r *router) buildRoundIndex() {
	s := r.s
	r.setRoundScale()
	for _, q := range s.qTouched {
		s.qGates[q] = s.qGates[q][:0]
	}
	s.qTouched = s.qTouched[:0]

	r.frontSumI, r.extSumI = 0, 0
	r.frontSumF, r.extSumF = 0, 0
	weighted := r.wdist != nil
	for _, gi := range s.front {
		g := r.circ.Gate(gi)
		pa, pb := r.layout.Phys(g.Q0), r.layout.Phys(g.Q1)
		if weighted {
			r.frontSumF += r.wdist[pa*r.n+pb]
		} else {
			r.frontSumI += int64(r.dist[pa*r.n+pb])
		}
		r.indexGate(g.Q0, g.Q1, false)
	}
	if r.opts.Heuristic == HeuristicBasic {
		return
	}
	for _, gi := range s.extended {
		g := r.circ.Gate(gi)
		pa, pb := r.layout.Phys(g.Q0), r.layout.Phys(g.Q1)
		if weighted {
			r.extSumF += r.wdist[pa*r.n+pb]
		} else {
			r.extSumI += int64(r.dist[pa*r.n+pb])
		}
		r.indexGate(g.Q0, g.Q1, true)
	}
}

// indexGate records the gate under both of its logical qubits, each
// entry encoding the opposite endpoint and the front/extended flag.
//
//sabre:hotpath
func (r *router) indexGate(q0, q1 int, extended bool) {
	s := r.s
	c0, c1 := int32(q1+1), int32(q0+1)
	if extended {
		c0, c1 = -c0, -c1
	}
	if len(s.qGates[q0]) == 0 {
		s.qTouched = append(s.qTouched, q0)
	}
	s.qGates[q0] = append(s.qGates[q0], c0)
	if len(s.qGates[q1]) == 0 {
		s.qTouched = append(s.qTouched, q1)
	}
	s.qGates[q1] = append(s.qGates[q1], c1)
}

// buildRoundIndexBitset computes the same front/extended base sums as
// buildRoundIndex but builds the per-qubit index in two flat
// structures instead of per-qubit slices. Front gates are
// vertex-disjoint (two gates sharing a qubit are DAG-ordered, so at
// most one is ever in F), which collapses the front index to one slot
// per qubit: fpart[q] = the physical qubit of q's front partner, or
// -1. The extended set is not disjoint, so it gets a CSR array — one
// counting pass, a prefix-sum, then a fill pass that resolves each
// gate's *other* endpoint to its physical qubit and writes it into
// the qubit's segment. Segments are filled in extended-list order —
// the same order indexGate appends — which is what keeps the weighted
// float accumulation of the bitset scorer bit-identical to the delta
// scorer's.
//
//sabre:hotpath
func (r *router) buildRoundIndexBitset() {
	s := r.s
	n := r.n
	q2 := r.q2
	fpart, cnt, off := s.fpart, s.extCnt, s.extOff
	if r.idxGen != r.frontGen {
		// Layout-independent half, recomputed only when the front layer
		// (and with it the extended set) changed: wipe fpart — the
		// occupied slots of the previous front are unknown, so clear
		// all n — and rebuild extOff by counting + prefix-summing the
		// extended gates' qubit occurrences. While the front is stable
		// (consecutive non-executing rounds) both survive as-is; only
		// the cursors and the partner/sum fill below run per round.
		r.idxGen = r.frontGen
		for i := 0; i < n; i++ {
			fpart[i] = -1
			cnt[i] = 0
		}
		for _, gi := range s.extended {
			cnt[q2[2*gi]]++
			cnt[q2[2*gi+1]]++
		}
		total := int32(0)
		for q := 0; q < n; q++ {
			off[q] = total
			total += cnt[q]
		}
		off[n] = total
		if cap(s.extPhys) < int(total) {
			//sabre:alloc-ok amortized Scratch grow; steady-state rounds reuse the buffer
			s.extPhys = make([]int32, total)
		}
		s.extPhys = s.extPhys[:total]
	}
	// Per-round: reset the fill cursors to the segment starts, then
	// resolve every partner endpoint under the *current* layout and
	// accumulate the base sums (both change on every applied SWAP).
	copy(cnt, off[:n])
	phys := s.extPhys

	r.frontSumI, r.extSumI = 0, 0
	r.frontSumF, r.extSumF = 0, 0
	weighted := r.wdist != nil
	for _, gi := range s.front {
		q0, q1 := q2[2*gi], q2[2*gi+1]
		pa, pb := r.layout.Phys(int(q0)), r.layout.Phys(int(q1))
		if weighted {
			r.frontSumF += r.wdist[pa*n+pb]
		} else {
			r.frontSumI += int64(r.dist[pa*n+pb])
		}
		fpart[q0] = int32(pb)
		fpart[q1] = int32(pa)
	}
	for _, gi := range s.extended {
		q0, q1 := q2[2*gi], q2[2*gi+1]
		pa, pb := r.layout.Phys(int(q0)), r.layout.Phys(int(q1))
		if weighted {
			r.extSumF += r.wdist[pa*n+pb]
		} else {
			r.extSumI += int64(r.dist[pa*n+pb])
		}
		phys[cnt[q0]] = int32(pb)
		cnt[q0]++
		phys[cnt[q1]] = int32(pa)
		cnt[q1]++
	}
}

// scoreCandidatesBitset scores every candidate from the bitset round
// index and returns the winning candidate's index, dispatching once
// per round (not per candidate) on the distance-matrix type.
//
//sabre:hotpath
func (r *router) scoreCandidatesBitset() int {
	if r.wdist != nil {
		return scoreBitset(r, r.wdist, r.frontSumF, r.extSumF)
	}
	return scoreBitset(r, r.dist, int(r.frontSumI), int(r.extSumI))
}

// scoreBitset is the branch-free candidate scoring loop. For each
// candidate edge (A, B) it reads the two swapped logical qubits' front
// partners from the single-slot fpart index and their extended
// partners from the CSR segments, accumulating rowB[p]-rowA[p]
// (negated for qb's terms) over pre-resolved partner physical qubits:
// no gate fetch, no membership decode, no layout lookup inside the
// loop. The only data-dependent branch left is the pair-gate skip
// (partner == other swapped qubit), whose distance term D[A][B] →
// D[B][A] is zero by symmetry and must not be accumulated — on the
// weighted path adding-then-subtracting it would still perturb the
// float stream. The accumulation visits exactly the entries the delta
// scorer visits, in the same order per accumulator (qa's front term
// then qb's into dF; qa's extended then qb's into dE), so weighted
// scores are bit-identical to ScoringDelta's, and integer scores are
// exact.
//
// Winner selection is fused into the same pass instead of a second
// sweep over a score buffer: the reservoir tie-break below performs
// exactly the comparisons, in exactly the order, of selectBest — the
// same strict-improvement threshold, the same 1e-12 tie band, the
// same rng.Intn(ties) draw per tie — so the RNG stream, and with it
// the routed output, stays byte-identical to the oracle engines
// (asserted by the golden three-way suite). Returns the winning
// candidate's index.
//
//sabre:hotpath
func scoreBitset[D int | float64](r *router, dist []D, baseF, baseE D) int {
	s := r.s
	n := r.n
	fpart, off, phys := s.fpart, s.extOff, s.extPhys
	decay := s.decay
	ends := r.ends
	invF, invE := r.invF, r.invE
	heur := r.opts.Heuristic
	rng := r.rng
	// +Inf sentinel: the first candidate takes the strict-improvement
	// branch (score < Inf), initializing best/ties without an RNG draw —
	// exactly what selectBest's explicit first-element init does.
	best, bestScore, ties := 0, math.Inf(1), 0
	for ci, id := range s.candIDs {
		A, B := int(ends[2*id]), int(ends[2*id+1])
		rowA := dist[A*n : A*n+n]
		rowB := dist[B*n : B*n+n]
		qa, qb := r.layout.Log(A), r.layout.Log(B)

		var dF, dE D
		if pp := fpart[qa]; pp >= 0 && int(pp) != B {
			dF += rowB[pp] - rowA[pp]
		}
		if pp := fpart[qb]; pp >= 0 && int(pp) != A {
			dF += rowA[pp] - rowB[pp]
		}
		for _, pp := range phys[off[qa]:off[qa+1]] {
			if int(pp) == B {
				continue
			}
			dE += rowB[pp] - rowA[pp]
		}
		for _, pp := range phys[off[qb]:off[qb+1]] {
			if int(pp) == A {
				continue
			}
			dE += rowA[pp] - rowB[pp]
		}

		front := float64(baseF + dF)
		var score float64
		switch heur {
		case HeuristicBasic:
			score = front
		case HeuristicLookahead:
			score = front*invF + float64(baseE+dE)*invE
		default: // HeuristicDecay
			d := decay[qa]
			if decay[qb] > d {
				d = decay[qb]
			}
			score = d * (front*invF + float64(baseE+dE)*invE)
		}

		switch {
		case score < bestScore-1e-12:
			best, bestScore, ties = ci, score, 1
		case score <= bestScore+1e-12:
			ties++
			if rng.Intn(ties) == 0 {
				best = ci
			}
		}
	}
	return best
}

// scoreSwap evaluates the heuristic cost function H for one candidate
// SWAP (Algorithm 1 lines 20-23) as base + Δ under the hypothetical
// mapping π·SWAP, without mutating the layout.
//
//sabre:hotpath
func (r *router) scoreSwap(e arch.Edge) float64 {
	if r.opts.ExhaustiveScoring {
		return r.scoreSwapExhaustive(e)
	}
	// Decay factor belongs to the logical qubits being swapped
	// (Eq. 2: max(decay(SWAP.q1), decay(SWAP.q2))).
	qa, qb := r.layout.Log(e.A), r.layout.Log(e.B)

	var front, ext float64
	if r.wdist != nil {
		dF, dE := r.deltasWeighted(qa, qb, e.A, e.B)
		front, ext = r.frontSumF+dF, r.extSumF+dE
	} else {
		dF, dE := r.deltasHops(qa, qb, e.A, e.B)
		front, ext = float64(r.frontSumI+dF), float64(r.extSumI+dE)
	}

	switch r.opts.Heuristic {
	case HeuristicBasic:
		return front
	case HeuristicLookahead:
		return r.combine(front, ext)
	default: // HeuristicDecay
		d := r.s.decay[qa]
		if r.s.decay[qb] > d {
			d = r.s.decay[qb]
		}
		return d * r.combine(front, ext)
	}
}

// combine is Eq. 2 without the decay factor: the size-normalized
// front-layer term plus the W-weighted extended-set term, computed as
// multiplications by the per-round reciprocals (setRoundScale). Every
// scoring engine funnels through this formula — the bitset scorer
// inlines the identical expression — so the floating-point rounding,
// and therefore the tie-break stream, is engine-independent.
//
//sabre:hotpath
func (r *router) combine(front, ext float64) float64 {
	return front*r.invF + ext*r.invE
}

// deltasHops sums, in int64 hop units, the distance change of every
// front (dF) and extended (dE) gate touching logical qubits qa or qb
// when physical qubits A = π(qa) and B = π(qb) swap.
//
// A gate (qa, p) with p ≠ qb moves from D[A][π(p)] to D[B][π(p)]; a
// gate (qb, p) with p ≠ qa moves from D[B][π(p)] to D[A][π(p)]. The
// gate (qa, qb) itself moves from D[A][B] to D[B][A] — zero by
// symmetry — so it is processed once (from qa's list) and skipped in
// qb's, which also deduplicates it without any mark bookkeeping. The
// iteration order (qa's gates, then qb's unshared gates) matches the
// order the previous mark-based dedup produced, keeping weighted
// accumulation bit-stable.
//
//sabre:hotpath
func (r *router) deltasHops(qa, qb, A, B int) (dF, dE int64) {
	f, e := deltas(r.s, r.layout, r.dist[A*r.n:A*r.n+r.n], r.dist[B*r.n:B*r.n+r.n], qa, qb)
	return int64(f), int64(e)
}

// deltasWeighted is deltasHops over the noise-weighted matrix.
//
//sabre:hotpath
func (r *router) deltasWeighted(qa, qb, A, B int) (dF, dE float64) {
	return deltas(r.s, r.layout, r.wdist[A*r.n:A*r.n+r.n], r.wdist[B*r.n:B*r.n+r.n], qa, qb)
}

// deltas is the shared delta walk over the distance rows of the two
// swapped physical qubits (rowA = D[π(qa)][·], rowB = D[π(qb)][·]),
// generic over the matrix element type so the hop-count and weighted
// paths compile to separate full-speed instantiations (int and
// float64 have distinct underlying types, so gcshape stenciling does
// not merge them). Hop deltas stay exact: they are small-integer
// differences accumulated in int (well under overflow) and widened by
// the caller.
//
//sabre:hotpath
func deltas[D int | float64](s *Scratch, layout mapping.Layout, rowA, rowB []D, qa, qb int) (dF, dE D) {
	for _, code := range s.qGates[qa] {
		p := code
		if p < 0 {
			p = -p
		}
		partner := int(p) - 1
		if partner == qb {
			continue // D[A][B] → D[B][A]: no change
		}
		pp := layout.Phys(partner)
		d := rowB[pp] - rowA[pp]
		if code > 0 {
			dF += d
		} else {
			dE += d
		}
	}
	for _, code := range s.qGates[qb] {
		p := code
		if p < 0 {
			p = -p
		}
		partner := int(p) - 1
		if partner == qa {
			continue // counted (as zero) from qa's side
		}
		pp := layout.Phys(partner)
		d := rowA[pp] - rowB[pp]
		if code > 0 {
			dF += d
		} else {
			dE += d
		}
	}
	return dF, dE
}

// scoreSwapExhaustive is the reference scorer: apply the SWAP to the
// layout, re-sum every front/extended gate from scratch, undo the
// SWAP. O(|F|+|E|) per candidate where the delta scorer is O(deg).
// Kept selectable (Options.ExhaustiveScoring) as the oracle the golden
// determinism suite compares delta scoring against.
//
//sabre:hotpath
func (r *router) scoreSwapExhaustive(e arch.Edge) float64 {
	qa, qb := r.layout.Log(e.A), r.layout.Log(e.B)

	r.layout.SwapPhysical(e.A, e.B)
	var score float64
	switch r.opts.Heuristic {
	case HeuristicBasic:
		score = r.frontDistanceSum()
	case HeuristicLookahead:
		score = r.lookaheadScore()
	case HeuristicDecay:
		d := r.s.decay[qa]
		if r.s.decay[qb] > d {
			d = r.s.decay[qb]
		}
		score = d * r.lookaheadScore()
	}
	r.layout.SwapPhysical(e.A, e.B)
	return score
}

// frontDistanceSum is Eq. 1: Σ_{gate∈F} D[π(q1)][π(q2)], with D the
// hop-count matrix or, under a noise model, the reliability-weighted
// matrix (§VI extension).
//
//sabre:hotpath
func (r *router) frontDistanceSum() float64 {
	sum := 0.0
	for _, g := range r.s.front {
		gate := r.circ.Gate(g)
		sum += r.distAt(r.layout.Phys(gate.Q0), r.layout.Phys(gate.Q1))
	}
	return sum
}

// lookaheadScore is Eq. 2 without the decay factor: the size-normalized
// front-layer distance sum plus the W-weighted extended-set term,
// combined with the same per-round reciprocals as every other engine.
//
//sabre:hotpath
func (r *router) lookaheadScore() float64 {
	extSum := 0.0
	for _, g := range r.s.extended {
		gate := r.circ.Gate(g)
		extSum += r.distAt(r.layout.Phys(gate.Q0), r.layout.Phys(gate.Q1))
	}
	return r.combine(r.frontDistanceSum(), extSum)
}
