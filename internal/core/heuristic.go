package core

import (
	"repro/internal/arch"
	"repro/internal/mapping"
)

// This file implements the heuristic cost function H (Eq. 1 and Eq. 2)
// with incremental delta scoring. The paper's §IV-C1 point is that the
// candidate list is O(N); the remaining per-round cost was our own:
// re-summing the whole front layer and extended set for every
// candidate made a round O(|cand|·(|F|+|E|)). Instead, the base sums
//
//	Σ_{g∈F} D[π(q1)][π(q2)]   and   Σ_{g∈E} D[π(q1)][π(q2)]
//
// are computed once per round (buildRoundIndex), and a candidate SWAP
// on edge (A, B) rescores as base + Δ, where Δ ranges only over the
// gates touching the two swapped logical qubits — O(deg) per
// candidate, found through a per-qubit gate index built in the same
// pass as the sums.
//
// Determinism contract: with hop-count distances (the default and the
// paper's configuration) every sum is an integer, accumulated in
// int64 and converted to float64 only at the end, so base+Δ is
// bit-identical to the from-scratch sum no matter the accumulation
// order. The weighted (noise-model) sums accumulate in float64 in
// front/extended order for the base, exactly as the exhaustive scorer
// does, so bases match bit-for-bit; the delta then adds the (few)
// changed terms at the end, which re-associates the accumulation and
// can differ from the from-scratch sum by ~1 ulp (see
// Options.ExhaustiveScoring for the resulting contract).
// Options.ExhaustiveScoring keeps the O(|F|+|E|)-per-candidate
// reference scorer selectable for validation; the golden determinism
// suite asserts both scorers route the entire workload suite
// byte-identically, including the noise configurations.

// buildRoundIndex computes the front/extended base distance sums under
// the current layout and (re)builds the per-logical-qubit index of
// which front/extended gates touch each qubit. Each index entry stores
// the gate's *other* logical qubit (encoded partner+1 for front gates,
// -(partner+1) for extended), which is all the delta needs: the
// distance change of gate (q, partner) is a two-row matrix lookup, no
// gate fetch. Called once per SWAP round; everything it writes lives
// in the Scratch.
func (r *router) buildRoundIndex() {
	s := r.s
	for _, q := range s.qTouched {
		s.qGates[q] = s.qGates[q][:0]
	}
	s.qTouched = s.qTouched[:0]

	r.frontSumI, r.extSumI = 0, 0
	r.frontSumF, r.extSumF = 0, 0
	weighted := r.wdist != nil
	for _, gi := range s.front {
		g := r.circ.Gate(gi)
		pa, pb := r.layout.Phys(g.Q0), r.layout.Phys(g.Q1)
		if weighted {
			r.frontSumF += r.wdist[pa*r.n+pb]
		} else {
			r.frontSumI += int64(r.dist[pa*r.n+pb])
		}
		r.indexGate(g.Q0, g.Q1, false)
	}
	if r.opts.Heuristic == HeuristicBasic {
		return
	}
	for _, gi := range s.extended {
		g := r.circ.Gate(gi)
		pa, pb := r.layout.Phys(g.Q0), r.layout.Phys(g.Q1)
		if weighted {
			r.extSumF += r.wdist[pa*r.n+pb]
		} else {
			r.extSumI += int64(r.dist[pa*r.n+pb])
		}
		r.indexGate(g.Q0, g.Q1, true)
	}
}

// indexGate records the gate under both of its logical qubits, each
// entry encoding the opposite endpoint and the front/extended flag.
func (r *router) indexGate(q0, q1 int, extended bool) {
	s := r.s
	c0, c1 := int32(q1+1), int32(q0+1)
	if extended {
		c0, c1 = -c0, -c1
	}
	if len(s.qGates[q0]) == 0 {
		s.qTouched = append(s.qTouched, q0)
	}
	s.qGates[q0] = append(s.qGates[q0], c0)
	if len(s.qGates[q1]) == 0 {
		s.qTouched = append(s.qTouched, q1)
	}
	s.qGates[q1] = append(s.qGates[q1], c1)
}

// scoreSwap evaluates the heuristic cost function H for one candidate
// SWAP (Algorithm 1 lines 20-23) as base + Δ under the hypothetical
// mapping π·SWAP, without mutating the layout.
func (r *router) scoreSwap(e arch.Edge) float64 {
	if r.opts.ExhaustiveScoring {
		return r.scoreSwapExhaustive(e)
	}
	// Decay factor belongs to the logical qubits being swapped
	// (Eq. 2: max(decay(SWAP.q1), decay(SWAP.q2))).
	qa, qb := r.layout.Log(e.A), r.layout.Log(e.B)

	var front, ext float64
	if r.wdist != nil {
		dF, dE := r.deltasWeighted(qa, qb, e.A, e.B)
		front, ext = r.frontSumF+dF, r.extSumF+dE
	} else {
		dF, dE := r.deltasHops(qa, qb, e.A, e.B)
		front, ext = float64(r.frontSumI+dF), float64(r.extSumI+dE)
	}

	switch r.opts.Heuristic {
	case HeuristicBasic:
		return front
	case HeuristicLookahead:
		return r.combine(front, ext)
	default: // HeuristicDecay
		d := r.s.decay[qa]
		if r.s.decay[qb] > d {
			d = r.s.decay[qb]
		}
		return d * r.combine(front, ext)
	}
}

// combine is Eq. 2 without the decay factor: the size-normalized
// front-layer term plus the W-weighted extended-set term. The operation
// order mirrors the exhaustive scorer exactly so results stay
// bit-identical.
func (r *router) combine(front, ext float64) float64 {
	score := front / float64(len(r.s.front))
	if len(r.s.extended) > 0 {
		score += r.opts.ExtendedSetWeight * ext / float64(len(r.s.extended))
	}
	return score
}

// deltasHops sums, in int64 hop units, the distance change of every
// front (dF) and extended (dE) gate touching logical qubits qa or qb
// when physical qubits A = π(qa) and B = π(qb) swap.
//
// A gate (qa, p) with p ≠ qb moves from D[A][π(p)] to D[B][π(p)]; a
// gate (qb, p) with p ≠ qa moves from D[B][π(p)] to D[A][π(p)]. The
// gate (qa, qb) itself moves from D[A][B] to D[B][A] — zero by
// symmetry — so it is processed once (from qa's list) and skipped in
// qb's, which also deduplicates it without any mark bookkeeping. The
// iteration order (qa's gates, then qb's unshared gates) matches the
// order the previous mark-based dedup produced, keeping weighted
// accumulation bit-stable.
func (r *router) deltasHops(qa, qb, A, B int) (dF, dE int64) {
	f, e := deltas(r.s, r.layout, r.dist[A*r.n:A*r.n+r.n], r.dist[B*r.n:B*r.n+r.n], qa, qb)
	return int64(f), int64(e)
}

// deltasWeighted is deltasHops over the noise-weighted matrix.
func (r *router) deltasWeighted(qa, qb, A, B int) (dF, dE float64) {
	return deltas(r.s, r.layout, r.wdist[A*r.n:A*r.n+r.n], r.wdist[B*r.n:B*r.n+r.n], qa, qb)
}

// deltas is the shared delta walk over the distance rows of the two
// swapped physical qubits (rowA = D[π(qa)][·], rowB = D[π(qb)][·]),
// generic over the matrix element type so the hop-count and weighted
// paths compile to separate full-speed instantiations (int and
// float64 have distinct underlying types, so gcshape stenciling does
// not merge them). Hop deltas stay exact: they are small-integer
// differences accumulated in int (well under overflow) and widened by
// the caller.
func deltas[D int | float64](s *Scratch, layout mapping.Layout, rowA, rowB []D, qa, qb int) (dF, dE D) {
	for _, code := range s.qGates[qa] {
		p := code
		if p < 0 {
			p = -p
		}
		partner := int(p) - 1
		if partner == qb {
			continue // D[A][B] → D[B][A]: no change
		}
		pp := layout.Phys(partner)
		d := rowB[pp] - rowA[pp]
		if code > 0 {
			dF += d
		} else {
			dE += d
		}
	}
	for _, code := range s.qGates[qb] {
		p := code
		if p < 0 {
			p = -p
		}
		partner := int(p) - 1
		if partner == qa {
			continue // counted (as zero) from qa's side
		}
		pp := layout.Phys(partner)
		d := rowA[pp] - rowB[pp]
		if code > 0 {
			dF += d
		} else {
			dE += d
		}
	}
	return dF, dE
}

// scoreSwapExhaustive is the reference scorer: apply the SWAP to the
// layout, re-sum every front/extended gate from scratch, undo the
// SWAP. O(|F|+|E|) per candidate where the delta scorer is O(deg).
// Kept selectable (Options.ExhaustiveScoring) as the oracle the golden
// determinism suite compares delta scoring against.
func (r *router) scoreSwapExhaustive(e arch.Edge) float64 {
	qa, qb := r.layout.Log(e.A), r.layout.Log(e.B)

	r.layout.SwapPhysical(e.A, e.B)
	var score float64
	switch r.opts.Heuristic {
	case HeuristicBasic:
		score = r.frontDistanceSum()
	case HeuristicLookahead:
		score = r.lookaheadScore()
	case HeuristicDecay:
		d := r.s.decay[qa]
		if r.s.decay[qb] > d {
			d = r.s.decay[qb]
		}
		score = d * r.lookaheadScore()
	}
	r.layout.SwapPhysical(e.A, e.B)
	return score
}

// frontDistanceSum is Eq. 1: Σ_{gate∈F} D[π(q1)][π(q2)], with D the
// hop-count matrix or, under a noise model, the reliability-weighted
// matrix (§VI extension).
func (r *router) frontDistanceSum() float64 {
	sum := 0.0
	for _, g := range r.s.front {
		gate := r.circ.Gate(g)
		sum += r.distAt(r.layout.Phys(gate.Q0), r.layout.Phys(gate.Q1))
	}
	return sum
}

// lookaheadScore is Eq. 2 without the decay factor: the size-normalized
// front-layer distance sum plus the W-weighted extended-set term.
func (r *router) lookaheadScore() float64 {
	score := r.frontDistanceSum() / float64(len(r.s.front))
	if len(r.s.extended) > 0 {
		extSum := 0.0
		for _, g := range r.s.extended {
			gate := r.circ.Gate(g)
			extSum += r.distAt(r.layout.Phys(gate.Q0), r.layout.Phys(gate.Q1))
		}
		score += r.opts.ExtendedSetWeight * extSum / float64(len(r.s.extended))
	}
	return score
}
