package core

import (
	"errors"
	"testing"
)

func res(added int) *Result { return &Result{AddedGates: added} }

func TestSelectBestEmptyAndAllNil(t *testing.T) {
	if _, err := SelectBest(nil, nil); !errors.Is(err, ErrNoTrials) {
		t.Fatalf("empty slice: err = %v, want ErrNoTrials", err)
	}
	if _, err := SelectBest([]*Result{nil, nil, nil}, []int{0, 0, 0}); !errors.Is(err, ErrNoTrials) {
		t.Fatalf("all-nil slice: err = %v, want ErrNoTrials", err)
	}
}

func TestSelectBestSkipsNilHoles(t *testing.T) {
	results := []*Result{nil, res(9), nil, res(6), nil}
	depths := []int{0, 4, 0, 8, 0}
	best, err := SelectBest(results, depths)
	if err != nil {
		t.Fatal(err)
	}
	if best != results[3] {
		t.Fatalf("best = %+v, want the AddedGates=6 trial", best)
	}
}

func TestSelectBestTieBreaks(t *testing.T) {
	// Equal gates: smaller depth wins regardless of position.
	results := []*Result{res(6), res(6)}
	best, err := SelectBest(results, []int{9, 5})
	if err != nil {
		t.Fatal(err)
	}
	if best != results[1] {
		t.Fatal("depth tie-break did not pick the shallower trial")
	}
	// Equal gates and depth: the lowest trial index (lowest seed) wins.
	results = []*Result{res(6), res(6), res(6)}
	best, err = SelectBest(results, []int{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if best != results[0] {
		t.Fatal("full tie did not pick the lowest trial index")
	}
	// The lowest-seed rule must hold even when the equal trials are
	// separated by nil holes (an adaptive population with gaps).
	results = []*Result{nil, res(6), nil, res(6)}
	best, err = SelectBest(results, []int{0, 5, 0, 5})
	if err != nil {
		t.Fatal(err)
	}
	if best != results[1] {
		t.Fatal("tie across nil holes did not pick the lowest trial index")
	}
}

func TestBetterTrialIsStrictTotalOrder(t *testing.T) {
	a, b := res(6), res(6)
	if BetterTrial(a, 5, 1, b, 5, 0) {
		t.Fatal("higher index won a full tie")
	}
	if !BetterTrial(a, 5, 0, b, 5, 1) {
		t.Fatal("lower index lost a full tie")
	}
	if BetterTrial(a, 5, 0, a, 5, 0) {
		t.Fatal("a trial beat itself")
	}
	if !BetterTrial(res(3), 99, 9, res(6), 1, 0) {
		t.Fatal("added gates must dominate depth and index")
	}
}
