package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/mapping"
	"repro/internal/verify"
	"repro/internal/workloads"
)

// compileAndVerify routes circ onto dev and fails the test unless the
// output is hardware-compliant and (for linear circuits) functionally
// equivalent under the reported layouts.
func compileAndVerify(t *testing.T, c *circuit.Circuit, dev *arch.Device, opts Options) *Result {
	t.Helper()
	res, err := Compile(c, dev, opts)
	if err != nil {
		t.Fatalf("Compile(%s on %s): %v", c.Name(), dev.Name(), err)
	}
	decomposed := res.Circuit.DecomposeSwaps()
	if err := verify.HardwareCompliant(decomposed, dev.Connected); err != nil {
		t.Fatalf("%s on %s: %v", c.Name(), dev.Name(), err)
	}
	if res.AddedGates != 3*res.SwapCount {
		t.Fatalf("gate accounting wrong: %d != 3*%d", res.AddedGates, res.SwapCount)
	}
	onlyLinear := true
	for _, g := range c.Gates() {
		if g.Kind != circuit.KindCX && g.Kind != circuit.KindSwap {
			onlyLinear = false
			break
		}
	}
	if onlyLinear {
		if err := verify.CheckRouted(c, res.Circuit, res.InitialLayout, res.FinalLayout); err != nil {
			t.Fatalf("%s on %s: %v", c.Name(), dev.Name(), err)
		}
	}
	return res
}

func fastOpts() Options {
	o := DefaultOptions()
	o.Trials = 2
	return o
}

func TestCompileEmptyCircuit(t *testing.T) {
	res := compileAndVerify(t, circuit.New(3), arch.Line(5), fastOpts())
	if res.SwapCount != 0 || res.Circuit.NumGates() != 0 {
		t.Fatalf("empty circuit produced %d swaps, %d gates", res.SwapCount, res.Circuit.NumGates())
	}
}

func TestCompileSingleQubitOnly(t *testing.T) {
	c := circuit.New(3)
	c.Append(circuit.G1(circuit.KindH, 0), circuit.G1(circuit.KindT, 2))
	res := compileAndVerify(t, c, arch.Line(4), fastOpts())
	if res.SwapCount != 0 || res.Circuit.NumGates() != 2 {
		t.Fatal("single-qubit circuit should route with no swaps")
	}
}

func TestCompileTooWide(t *testing.T) {
	if _, err := Compile(circuit.New(6), arch.Line(4), fastOpts()); err == nil {
		t.Fatal("oversized circuit accepted")
	}
}

func TestCompileAdjacentCNOT(t *testing.T) {
	c := circuit.New(2)
	c.Append(circuit.CX(0, 1))
	res := compileAndVerify(t, c, arch.Line(2), fastOpts())
	if res.SwapCount != 0 {
		t.Fatalf("adjacent CNOT needed %d swaps", res.SwapCount)
	}
}

func TestCompileDistantCNOTOnLine(t *testing.T) {
	// One CNOT between ends of a 4-line: a good initial mapping places
	// them adjacent, so zero SWAPs.
	c := circuit.New(4)
	c.Append(circuit.CX(0, 3))
	res := compileAndVerify(t, c, arch.Line(4), fastOpts())
	if res.SwapCount != 0 {
		t.Fatalf("trivially-embeddable CNOT needed %d swaps", res.SwapCount)
	}
}

func TestFig3Example(t *testing.T) {
	// The paper's worked example (§III-A): 4-qubit device, ring coupling
	// Q1-Q2-Q4-Q3-Q1; 6 CNOTs. With the paper's fixed identity layout
	// one SWAP suffices; SABRE with free initial mapping should need at
	// most one SWAP (the interaction graph K4 minus nothing... contains
	// a 4-cycle + chords, not embeddable with 0 swaps on C4).
	dev := arch.MustNew("fig3", 4, []arch.Edge{arch.NewEdge(0, 1), arch.NewEdge(1, 3), arch.NewEdge(2, 3), arch.NewEdge(0, 2)})
	c := circuit.NewNamed("fig3", 4)
	c.Append(
		circuit.CX(0, 1), circuit.CX(2, 3), circuit.CX(1, 3),
		circuit.CX(1, 2), circuit.CX(2, 3), circuit.CX(0, 3),
	)
	res := compileAndVerify(t, c, dev, DefaultOptions())
	if res.SwapCount > 1 {
		t.Fatalf("Fig. 3 example needed %d swaps, paper needs 1", res.SwapCount)
	}
}

func TestCompileWithIdentityLayoutFig3(t *testing.T) {
	// With the paper's fixed initial mapping {qi -> Qi} the circuit
	// needs exactly one SWAP (Fig. 3d).
	dev := arch.MustNew("fig3", 4, []arch.Edge{arch.NewEdge(0, 1), arch.NewEdge(1, 3), arch.NewEdge(2, 3), arch.NewEdge(0, 2)})
	c := circuit.New(4)
	c.Append(
		circuit.CX(0, 1), circuit.CX(2, 3), circuit.CX(1, 3),
		circuit.CX(1, 2), circuit.CX(2, 3), circuit.CX(0, 3),
	)
	res, err := CompileWithLayout(c, dev, mapping.Identity(4), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.HardwareCompliant(res.Circuit.DecomposeSwaps(), dev.Connected); err != nil {
		t.Fatal(err)
	}
	if err := verify.CheckRouted(c, res.Circuit, res.InitialLayout, res.FinalLayout); err != nil {
		t.Fatal(err)
	}
	if res.SwapCount != 1 {
		t.Fatalf("identity-layout Fig. 3 used %d swaps, want 1", res.SwapCount)
	}
}

func TestGHZZeroSwapsOnLine(t *testing.T) {
	// A CNOT ladder embeds perfectly in a line.
	c := workloads.GHZ(8)
	res := compileAndVerify(t, c, arch.Line(8), DefaultOptions())
	if res.SwapCount != 0 {
		t.Fatalf("GHZ ladder needed %d swaps on a line", res.SwapCount)
	}
}

func TestIsingZeroSwapsOnQ20(t *testing.T) {
	// §V-A1: the ising benchmarks admit a trivially optimal (0-SWAP)
	// solution on Q20; SABRE finds it.
	c := workloads.Ising(10, 3)
	res := compileAndVerify(t, c, arch.IBMQ20Tokyo(), DefaultOptions())
	if res.SwapCount != 0 {
		t.Fatalf("ising(10) needed %d swaps on Q20", res.SwapCount)
	}
}

func TestSmallBenchmarksNearZeroOnQ20(t *testing.T) {
	// §V-A1: SABRE finds perfect or near-perfect initial mappings for
	// the small suite (paper: 0 added gates on 4 of 5, 3 CNOTs on 1).
	dev := arch.IBMQ20Tokyo()
	total := 0
	for _, b := range workloads.ByClass(workloads.ClassSmall) {
		res := compileAndVerify(t, b.Build(), dev, DefaultOptions())
		total += res.AddedGates
	}
	if total > 9 {
		t.Fatalf("small suite added %d gates total, want near zero", total)
	}
}

func TestQFTOnQ20RoutesAndVerifies(t *testing.T) {
	c := workloads.QFT(10)
	res := compileAndVerify(t, c, arch.IBMQ20Tokyo(), fastOpts())
	if res.SwapCount == 0 {
		t.Fatal("qft_10 cannot embed in Q20 with zero swaps (K10 interaction graph)")
	}
}

func TestReverseTraversalImproves(t *testing.T) {
	// On aggregate over the qft benchmarks, 3 traversals must not be
	// worse than 1 traversal (the paper's g_op <= g_la on average).
	dev := arch.IBMQ20Tokyo()
	var one, three int
	for _, n := range []int{10, 13} {
		c := workloads.QFT(n)
		o1 := DefaultOptions()
		o1.Trials, o1.Traversals = 3, 1
		r1, err := Compile(c, dev, o1)
		if err != nil {
			t.Fatal(err)
		}
		o3 := DefaultOptions()
		o3.Trials, o3.Traversals = 3, 3
		r3, err := Compile(c, dev, o3)
		if err != nil {
			t.Fatal(err)
		}
		one += r1.AddedGates
		three += r3.AddedGates
	}
	if three > one {
		t.Fatalf("reverse traversal hurt: 3-traversal added %d vs 1-traversal %d", three, one)
	}
}

func TestDecayReducesDepth(t *testing.T) {
	// §IV-C3 / Fig. 8: larger δ should trade gates for depth. We check
	// the mechanism's direction statistically on QFT: depth with decay
	// enabled (δ=0.01) must not exceed depth with δ≈0 by more than
	// noise, and gate counts respond to δ. The strong assertion —
	// average normalized depth decreases — is exercised in the Fig. 8
	// bench harness; here we just require both configurations route
	// correctly and differ.
	dev := arch.IBMQ20Tokyo()
	c := workloads.QFT(13)
	lo := DefaultOptions()
	lo.Trials, lo.DecayDelta = 2, 0.0001
	hi := DefaultOptions()
	hi.Trials, hi.DecayDelta = 2, 0.05
	rlo, err := Compile(c, dev, lo)
	if err != nil {
		t.Fatal(err)
	}
	rhi, err := Compile(c, dev, hi)
	if err != nil {
		t.Fatal(err)
	}
	if rlo.Circuit.Equal(rhi.Circuit) {
		t.Fatal("decay parameter had no effect on output")
	}
}

func TestHeuristicVariants(t *testing.T) {
	dev := arch.Grid(3, 3)
	c := workloads.RandomCircuit("h", 9, 120, 0.5, 11)
	for _, h := range []Heuristic{HeuristicBasic, HeuristicLookahead, HeuristicDecay} {
		o := fastOpts()
		o.Heuristic = h
		res, err := Compile(c, dev, o)
		if err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		if err := verify.HardwareCompliant(res.Circuit.DecomposeSwaps(), dev.Connected); err != nil {
			t.Fatalf("%v: %v", h, err)
		}
	}
}

func TestLookaheadBeatsBasicOnAverage(t *testing.T) {
	// The extended set exists because it reduces added gates (§IV-D).
	dev := arch.Grid(4, 4)
	var basic, look int
	for seed := int64(0); seed < 4; seed++ {
		c := workloads.RandomCircuit("cmp", 16, 200, 0.6, seed)
		ob := fastOpts()
		ob.Heuristic = HeuristicBasic
		ol := fastOpts()
		ol.Heuristic = HeuristicLookahead
		rb, err := Compile(c, dev, ob)
		if err != nil {
			t.Fatal(err)
		}
		rl, err := Compile(c, dev, ol)
		if err != nil {
			t.Fatal(err)
		}
		basic += rb.AddedGates
		look += rl.AddedGates
	}
	if look > basic*11/10 {
		t.Fatalf("lookahead (%d added) much worse than basic (%d added)", look, basic)
	}
}

func TestDeterminismPerSeed(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	c := workloads.QFT(8)
	o := fastOpts()
	r1, err := Compile(c, dev, o)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Compile(c, dev, o)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Circuit.Equal(r2.Circuit) {
		t.Fatal("same seed produced different circuits")
	}
	o2 := o
	o2.Seed = 999
	r3, err := Compile(c, dev, o2)
	if err != nil {
		t.Fatal(err)
	}
	// Different seed will usually differ; only check it still verifies.
	if err := verify.HardwareCompliant(r3.Circuit.DecomposeSwaps(), dev.Connected); err != nil {
		t.Fatal(err)
	}
}

func TestSingleQubitGatesPreservedAndRemapped(t *testing.T) {
	dev := arch.Line(3)
	c := circuit.New(3)
	c.Append(
		circuit.G1(circuit.KindH, 0),
		circuit.CX(0, 2),
		circuit.G1(circuit.KindT, 2),
		circuit.G1(circuit.KindMeasure, 0),
	)
	res, err := Compile(c, dev, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	var h, tg, m int
	for _, g := range res.Circuit.Gates() {
		switch g.Kind {
		case circuit.KindH:
			h++
		case circuit.KindT:
			tg++
		case circuit.KindMeasure:
			m++
		}
	}
	if h != 1 || tg != 1 || m != 1 {
		t.Fatalf("single-qubit gates lost: h=%d t=%d m=%d", h, tg, m)
	}
}

func TestInitialMappingStandalone(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	c := workloads.Ising(10, 3)
	l, err := InitialMapping(c, dev, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !l.Valid() || l.Size() != 20 {
		t.Fatal("invalid layout")
	}
	// The improved layout should route ising with zero swaps.
	res, err := CompileWithLayout(c, dev, l, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapCount != 0 {
		t.Fatalf("reverse-traversal layout still needs %d swaps on ising", res.SwapCount)
	}
}

func TestInitialMappingTooWide(t *testing.T) {
	if _, err := InitialMapping(circuit.New(10), arch.Line(4), fastOpts()); err == nil {
		t.Fatal("oversized circuit accepted")
	}
}

func TestCompileWithLayoutValidation(t *testing.T) {
	if _, err := CompileWithLayout(circuit.New(10), arch.Line(4), mapping.Identity(4), fastOpts()); err == nil {
		t.Fatal("oversized circuit accepted")
	}
	if _, err := CompileWithLayout(circuit.New(3), arch.Line(4), mapping.Identity(3), fastOpts()); err == nil {
		t.Fatal("undersized layout accepted")
	}
}

func TestOptionsNormalization(t *testing.T) {
	var o Options
	n := o.normalized()
	if n.ExtendedSetSize != 20 || n.ExtendedSetWeight != 0.5 || n.Trials != 5 || n.Traversals != 3 {
		t.Fatalf("zero options not defaulted: %+v", n)
	}
	o.Traversals = 2
	if o.normalized().Traversals != 3 {
		t.Fatal("even traversals not rounded up")
	}
	o.ExtendedSetWeight = 1.5
	if o.normalized().ExtendedSetWeight != 0.5 {
		t.Fatal("invalid W not repaired")
	}
}

func TestHeuristicStrings(t *testing.T) {
	if HeuristicBasic.String() != "basic" || HeuristicDecay.String() != "decay" {
		t.Fatal("heuristic names wrong")
	}
}

// Property: every routed random CNOT circuit on every topology is
// hardware-compliant and GF(2)-equivalent to its source.
func TestCompileEquivalenceProperty(t *testing.T) {
	devices := []*arch.Device{
		arch.Line(6), arch.Ring(7), arch.Grid(3, 3), arch.Star(6), arch.IBMQX5(),
	}
	f := func(seed int64, devIdx uint8) bool {
		dev := devices[int(devIdx)%len(devices)]
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(dev.NumQubits()-1)
		c := circuit.New(n)
		for i := 0; i < 40; i++ {
			a := rng.Intn(n)
			b := rng.Intn(n - 1)
			if b >= a {
				b++
			}
			c.Append(circuit.CX(a, b))
		}
		o := DefaultOptions()
		o.Trials = 1
		o.Seed = seed
		res, err := Compile(c, dev, o)
		if err != nil {
			return false
		}
		if verify.HardwareCompliant(res.Circuit.DecomposeSwaps(), dev.Connected) != nil {
			return false
		}
		return verify.CheckRouted(c, res.Circuit, res.InitialLayout, res.FinalLayout) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: routed circuits preserve full quantum semantics (state
// vector), including single-qubit gates, on small devices.
func TestCompileStateEquivalenceProperty(t *testing.T) {
	dev := arch.Grid(2, 3)
	f := func(seed int64) bool {
		c := workloads.RandomCircuit("sv", 5, 40, 0.5, seed)
		o := DefaultOptions()
		o.Trials = 1
		o.Seed = seed
		res, err := Compile(c, dev, o)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		return verify.EquivalentStates(c, res.Circuit, res.InitialLayout, res.FinalLayout, 2, rng) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: swap count reported matches SWAPs in the output circuit.
func TestSwapAccountingProperty(t *testing.T) {
	dev := arch.Ring(8)
	f := func(seed int64) bool {
		c := workloads.RandomCircuit("acct", 8, 60, 0.7, seed)
		o := DefaultOptions()
		o.Trials = 1
		o.Seed = seed
		res, err := Compile(c, dev, o)
		if err != nil {
			return false
		}
		return res.Circuit.CountKind(circuit.KindSwap) == res.SwapCount
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestForceRouteTermination(t *testing.T) {
	// With MaxStall=1 the router falls back to shortest-path routing
	// almost immediately; it must still terminate and verify.
	dev := arch.Line(10)
	c := workloads.RandomCircuit("stall", 10, 100, 1.0, 3)
	o := DefaultOptions()
	o.Trials = 1
	o.MaxStall = 1
	res, err := Compile(c, dev, o)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.CheckRouted(c, res.Circuit, res.InitialLayout, res.FinalLayout); err != nil {
		t.Fatal(err)
	}
}

func TestStarTopologyRouting(t *testing.T) {
	// Star graphs are adversarial: every route passes through the hub.
	c := workloads.RandomCircuit("star", 5, 40, 1.0, 7)
	res := compileAndVerify(t, c, arch.Star(5), fastOpts())
	if res.SwapCount == 0 {
		t.Log("star routed with zero swaps (possible for sparse interaction)")
	}
}

func TestFirstTraversalRecorded(t *testing.T) {
	res, err := Compile(workloads.QFT(8), arch.IBMQ20Tokyo(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstTraversalAdded < 0 {
		t.Fatal("g_la not recorded")
	}
	if res.Elapsed <= 0 {
		t.Fatal("elapsed not recorded")
	}
}
