// Package fleet schedules compilation jobs across a heterogeneous
// fleet of devices under live calibration. Real installations expose
// several chips with different topologies and hourly-refreshed noise
// data; picking the device and the mapping together is the natural
// extension of the paper's variability-aware routing (§VI): a
// reliability-weighted router is only as good as the chip it was
// pointed at.
//
// Schedule is the pure scoring core: given a circuit and K candidate
// devices with their current calibration snapshots and queue loads, it
// predicts per-device error and depth from the same weighted-distance
// matrices the router uses, folds in the load, and picks the winner
// deterministically. Scheduler wraps it with live load tracking and
// dispatch through a batch.Engine; the daemon instead feeds Schedule
// its own job-queue loads.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/arch"
	"repro/internal/batch"
	"repro/internal/circuit"
)

// DefaultErrorRate is the uniform per-CNOT error assumed for a device
// with no calibration snapshot, so calibrated and uncalibrated
// candidates stay comparable (a chip that never published noise data
// is assumed mediocre, not perfect).
const DefaultErrorRate = 0.005

// Candidate is one device offered to the scheduler.
type Candidate struct {
	// Device is the candidate chip; its current calibration snapshot
	// is read at scoring time.
	Device *arch.Device
	// Load is the number of jobs already bound to the device (queued
	// plus running) — the congestion signal.
	Load int
}

// Weights tunes the scheduler's scoring terms. Zero fields select the
// defaults; a negative weight disables its term.
type Weights struct {
	// Error scales the predicted-error term (default 1).
	Error float64
	// Depth scales the predicted-depth term (default 0.01 — depth is
	// a tie-breaker between chips of comparable fidelity, not the
	// headline).
	Depth float64
	// Load scales the queue-load term (default 0.25 per queued job).
	Load float64
}

func (w Weights) normalized() Weights {
	if w.Error == 0 {
		w.Error = 1
	}
	if w.Depth == 0 {
		w.Depth = 0.01
	}
	if w.Load == 0 {
		w.Load = 0.25
	}
	if w.Error < 0 {
		w.Error = 0
	}
	if w.Depth < 0 {
		w.Depth = 0
	}
	if w.Load < 0 {
		w.Load = 0
	}
	return w
}

// Score is one candidate's scoring row — serialized as-is into daemon
// responses and benchtab tables.
type Score struct {
	// Device is the candidate's name.
	Device string `json:"device"`
	// Qubits is the candidate's size.
	Qubits int `json:"qubits"`
	// Fits reports whether the circuit fits on the device at all;
	// when false the prediction fields are zero and the candidate is
	// out of the running.
	Fits bool `json:"fits"`
	// CalVersion is the calibration snapshot version the row was
	// scored under (zero = uncalibrated).
	CalVersion uint64 `json:"cal_version"`
	// PredictedError is the expected routing cost in -ln(success)
	// units: two-qubit gate count × mean pairwise weighted distance.
	PredictedError float64 `json:"predicted_error"`
	// PredictedDepth estimates the routed depth: logical depth plus 3
	// CNOTs per expected SWAP of communication overhead.
	PredictedDepth float64 `json:"predicted_depth"`
	// Load echoes the candidate's queue load.
	Load int `json:"load"`
	// Total is the weighted sum the winner minimizes.
	Total float64 `json:"total"`
}

// Decision is the outcome of one scheduling pass.
type Decision struct {
	// Device is the winner.
	Device *arch.Device `json:"-"`
	// Winner is the winning score row.
	Winner Score `json:"winner"`
	// Scores holds every candidate's row, in input order.
	Scores []Score `json:"scores"`
}

// Schedule scores every candidate for the circuit and returns the
// decision. Candidates too small for the circuit are kept in the score
// table (Fits=false) but never win; an error is returned when no
// candidate fits. The choice is deterministic: lowest Total, ties
// broken by device name, then input order.
func Schedule(circ *circuit.Circuit, cands []Candidate, w Weights) (*Decision, error) {
	if circ == nil {
		return nil, errors.New("fleet: nil circuit")
	}
	if len(cands) == 0 {
		return nil, errors.New("fleet: no candidate devices")
	}
	w = w.normalized()
	g2 := 0
	for _, g := range circ.Gates() {
		if g.TwoQubit() {
			g2++
		}
	}
	depth := circ.Depth()

	dec := &Decision{Scores: make([]Score, 0, len(cands))}
	best := -1
	for i, c := range cands {
		if c.Device == nil {
			return nil, fmt.Errorf("fleet: candidate %d has a nil device", i)
		}
		s := Score{Device: c.Device.Name(), Qubits: c.Device.NumQubits(), Load: c.Load}
		if circ.NumQubits() > c.Device.NumQubits() {
			dec.Scores = append(dec.Scores, s)
			continue
		}
		s.Fits = true
		snap := c.Device.Calibration()
		if snap != nil {
			s.CalVersion = snap.Version
		}
		meanW, meanHop := pairMeans(c.Device, snap)
		s.PredictedError = float64(g2) * meanW
		s.PredictedDepth = float64(depth) + 3*float64(g2)*math.Max(0, meanHop-1)
		s.Total = w.Error*s.PredictedError + w.Depth*s.PredictedDepth + w.Load*float64(c.Load)
		dec.Scores = append(dec.Scores, s)
		if best < 0 || less(s, dec.Scores[best]) {
			best = len(dec.Scores) - 1
			dec.Device = c.Device
		}
	}
	if best < 0 {
		return nil, fmt.Errorf("fleet: no candidate fits %d qubits", circ.NumQubits())
	}
	dec.Winner = dec.Scores[best]
	return dec, nil
}

// less orders score rows: lower Total wins, ties break by device name
// and finally by input order (a strictly-earlier row wins a full tie,
// so less is false then).
func less(a, b Score) bool {
	if a.Total != b.Total {
		return a.Total < b.Total
	}
	return a.Device < b.Device
}

// pairMeans returns the mean pairwise (i≠j) weighted distance and hop
// distance of the device. Uncalibrated devices get the hop matrix
// scaled by the uniform DefaultErrorRate edge weight, so weighted
// means stay comparable across the fleet.
func pairMeans(d *arch.Device, snap *arch.CalSnapshot) (meanW, meanHop float64) {
	n := d.NumQubits()
	pairs := n * (n - 1)
	if pairs == 0 {
		return 0, 0
	}
	var hops float64
	for _, v := range d.Distances() {
		hops += float64(v)
	}
	meanHop = hops / float64(pairs)
	if snap == nil {
		uniform := -math.Log(1 - DefaultErrorRate)
		return meanHop * uniform, meanHop
	}
	var sum float64
	for _, v := range d.WeightedDistancesFor(snap.Model) {
		sum += v
	}
	return sum / float64(pairs), meanHop
}

// Scheduler tracks a fixed fleet and its in-flight load and dispatches
// jobs through a batch engine: each Compile schedules against live
// loads and calibration snapshots, routes on the winner under its
// snapshot, and releases the load when the job settles.
type Scheduler struct {
	eng *batch.Engine
	w   Weights

	mu   sync.Mutex
	devs []*arch.Device
	load map[*arch.Device]int
}

// NewScheduler builds a scheduler over the fleet. The engine is shared,
// not owned: closing it is the caller's business.
func NewScheduler(eng *batch.Engine, devs []*arch.Device, w Weights) (*Scheduler, error) {
	if eng == nil {
		return nil, errors.New("fleet: nil engine")
	}
	if len(devs) == 0 {
		return nil, errors.New("fleet: empty fleet")
	}
	for i, d := range devs {
		if d == nil {
			return nil, fmt.Errorf("fleet: fleet device %d is nil", i)
		}
	}
	return &Scheduler{
		eng:  eng,
		w:    w,
		devs: append([]*arch.Device(nil), devs...),
		load: make(map[*arch.Device]int),
	}, nil
}

// Candidates returns the fleet with its current loads.
func (s *Scheduler) Candidates() []Candidate {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Candidate, len(s.devs))
	for i, d := range s.devs {
		out[i] = Candidate{Device: d, Load: s.load[d]}
	}
	return out
}

// Schedule scores the fleet for circ under current loads without
// dispatching.
func (s *Scheduler) Schedule(circ *circuit.Circuit) (*Decision, error) {
	return Schedule(circ, s.Candidates(), s.w)
}

// Compile schedules job.Circuit onto the fleet and compiles it on the
// winner under the winner's live calibration snapshot (job.Device is
// overridden). The winner's load is held for the duration of the
// compile, so concurrent Compiles spread across the fleet.
func (s *Scheduler) Compile(ctx context.Context, job batch.Job) (batch.Result, *Decision, error) {
	dec, err := s.Schedule(job.Circuit)
	if err != nil {
		return batch.Result{Err: err}, nil, err
	}
	job.Device = dec.Device
	job.UseCalibration = true

	s.mu.Lock()
	s.load[dec.Device]++
	s.mu.Unlock()
	res := <-s.eng.SubmitContext(ctx, job)
	s.mu.Lock()
	s.load[dec.Device]--
	s.mu.Unlock()

	return res, dec, res.Err
}
