package fleet

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/batch"
	"repro/internal/circuit"
)

func bell(n int) *circuit.Circuit {
	c := circuit.New(n)
	for i := 0; i+1 < n; i++ {
		c.Append(circuit.CX(i, i+1))
	}
	return c
}

func TestSchedulePrefersReliableDevice(t *testing.T) {
	good := arch.Grid(2, 3)
	bad := arch.Grid(2, 3)
	if _, err := good.ApplyCalibration(arch.UniformNoise(0.001)); err != nil {
		t.Fatal(err)
	}
	if _, err := bad.ApplyCalibration(arch.UniformNoise(0.2)); err != nil {
		t.Fatal(err)
	}
	dec, err := Schedule(bell(4), []Candidate{{Device: bad}, {Device: good}}, Weights{})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Device != good {
		t.Fatalf("scheduler picked the noisy device (scores %+v)", dec.Scores)
	}
	if dec.Winner.CalVersion != 1 || !dec.Winner.Fits {
		t.Fatalf("winner row malformed: %+v", dec.Winner)
	}
	if len(dec.Scores) != 2 {
		t.Fatalf("want a score row per candidate, got %d", len(dec.Scores))
	}
}

func TestScheduleSkipsTooSmallDevices(t *testing.T) {
	small := arch.Line(2)
	big := arch.Line(8)
	dec, err := Schedule(bell(5), []Candidate{{Device: small}, {Device: big}}, Weights{})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Device != big {
		t.Fatal("only the big device fits")
	}
	if dec.Scores[0].Fits {
		t.Fatal("2-qubit device cannot fit a 5-qubit circuit")
	}
	if _, err := Schedule(bell(5), []Candidate{{Device: small}}, Weights{}); err == nil {
		t.Fatal("no fitting candidate must be an error")
	} else if !strings.Contains(err.Error(), "no candidate fits") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestScheduleLoadBreaksSymmetry(t *testing.T) {
	// Two identical calibrated chips: the idle one must win, with the
	// name tie-break deciding a full tie deterministically.
	a := arch.Ring(5)
	b := arch.Ring(5)
	for _, d := range []*arch.Device{a, b} {
		if _, err := d.ApplyCalibration(arch.UniformNoise(0.01)); err != nil {
			t.Fatal(err)
		}
	}
	dec, err := Schedule(bell(4), []Candidate{{Device: a, Load: 3}, {Device: b, Load: 0}}, Weights{})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Device != b {
		t.Fatalf("loaded device won: %+v", dec.Scores)
	}
	// Full tie: equal loads, equal devices — deterministic winner.
	d1, err := Schedule(bell(4), []Candidate{{Device: a}, {Device: b}}, Weights{})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Schedule(bell(4), []Candidate{{Device: a}, {Device: b}}, Weights{})
	if err != nil {
		t.Fatal(err)
	}
	if d1.Device != d2.Device {
		t.Fatal("tie-break is not deterministic")
	}
}

func TestScheduleInputValidation(t *testing.T) {
	if _, err := Schedule(nil, []Candidate{{Device: arch.Line(2)}}, Weights{}); err == nil {
		t.Fatal("nil circuit accepted")
	}
	if _, err := Schedule(bell(2), nil, Weights{}); err == nil {
		t.Fatal("empty fleet accepted")
	}
	if _, err := Schedule(bell(2), []Candidate{{}}, Weights{}); err == nil {
		t.Fatal("nil device accepted")
	}
}

func TestSchedulerCompile(t *testing.T) {
	eng := batch.NewEngine(batch.Config{Workers: 2, BaseSeed: 7})
	defer eng.Close()
	good := arch.Grid(2, 3)
	bad := arch.Grid(2, 3)
	snapGood, err := good.ApplyCalibration(arch.UniformNoise(0.001))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bad.ApplyCalibration(arch.UniformNoise(0.3)); err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(eng, []*arch.Device{bad, good}, Weights{})
	if err != nil {
		t.Fatal(err)
	}

	res, dec, err := s.Compile(context.Background(), batch.Job{Circuit: bell(4)})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if dec.Device != good {
		t.Fatal("dispatch did not pick the reliable device")
	}
	if res.CalVersion != snapGood.Version {
		t.Fatalf("job routed under calibration v%d, want v%d", res.CalVersion, snapGood.Version)
	}
	if res.Final == nil || res.Final.NumGates() == 0 {
		t.Fatal("empty result")
	}

	// Loads drain back to zero after dispatch.
	for _, c := range s.Candidates() {
		if c.Load != 0 {
			t.Fatalf("leaked load on %s: %d", c.Device.Name(), c.Load)
		}
	}

	// Concurrent dispatches are safe (run with -race).
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := s.Compile(context.Background(), batch.Job{Circuit: bell(4)}); err != nil {
				t.Errorf("concurrent Compile: %v", err)
			}
		}()
	}
	wg.Wait()
}

func TestNewSchedulerValidation(t *testing.T) {
	eng := batch.NewEngine(batch.Config{Workers: 1})
	defer eng.Close()
	if _, err := NewScheduler(nil, []*arch.Device{arch.Line(2)}, Weights{}); err == nil {
		t.Fatal("nil engine accepted")
	}
	if _, err := NewScheduler(eng, nil, Weights{}); err == nil {
		t.Fatal("empty fleet accepted")
	}
	if _, err := NewScheduler(eng, []*arch.Device{nil}, Weights{}); err == nil {
		t.Fatal("nil device accepted")
	}
}
