// Example asyncjobs: decouple long compilations from the caller with
// the async job queue — submit returns a job ID immediately, results
// arrive by long-poll or webhook, and in-flight jobs cancel promptly
// (the signal reaches the router's SWAP loop at round granularity).
//
// This is the in-process form of cmd/sabred's v2 /jobs API; run the
// daemon and `curl -X POST localhost:8037/jobs` for the HTTP form.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	sabre "repro"
)

func main() {
	dev := sabre.IBMQ20Tokyo()

	// A webhook receiver, standing in for the caller's own service.
	delivered := make(chan map[string]any, 8)
	sink := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var payload map[string]any
		if err := json.NewDecoder(r.Body).Decode(&payload); err != nil {
			log.Fatalf("webhook payload: %v", err)
		}
		delivered <- payload
	}))
	defer sink.Close()

	ae := sabre.NewAsyncEngine(sabre.BatchConfig{Workers: 2}, sabre.JobQueueConfig{Workers: 2})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		_ = ae.Close(ctx) // graceful drain: accepted jobs finish first
	}()

	// Submit returns immediately — the compile runs in the background.
	snap, err := ae.SubmitAsync(sabre.BatchJob{Circuit: sabre.QFT(16), Device: dev, Tag: "qft16"}, sink.URL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted %s (state %s)\n", snap.ID, snap.State)

	// Long-poll until terminal (a webhook will fire too).
	snap, err = ae.WaitJob(context.Background(), snap.ID, time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	if snap.State != sabre.JobDone {
		log.Fatalf("job finished as %s: %s", snap.State, snap.Err)
	}
	rep := sabre.CompareCircuits(snap.Request.Job.Circuit, snap.Result.Final)
	fmt.Printf("done: g_add=%d depth=%d in %v\n", snap.Result.AddedGates, rep.Depth, snap.Result.Elapsed.Round(time.Millisecond))

	hook := <-delivered
	fmt.Printf("webhook: job %v -> %v\n", hook["job_id"], hook["state"])

	// Cancellation: park a heavy job, then kill it mid-flight.
	heavy := sabre.BatchJob{
		Circuit: sabre.RandomCircuit("heavy", 20, 8000, 0.9, 1),
		Device:  dev, Trials: 40, Tag: "heavy",
	}
	snap, err = ae.SubmitAsync(heavy, "")
	if err != nil {
		log.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let it start
	if _, err := ae.CancelJob(snap.ID); err != nil {
		log.Fatal(err)
	}
	snap, err = ae.WaitJob(context.Background(), snap.ID, time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cancel: job %s -> %s after %v\n", snap.ID, snap.State,
		snap.Finished.Sub(snap.Created).Round(time.Millisecond))

	st := ae.JobStats()
	fmt.Printf("queue: %d submitted, %d done, %d cancelled, %d webhooks delivered\n",
		st.Submitted, st.Done, st.Cancelled, st.WebhooksDelivered)
}
