// Depth/gate-count trade-off via the decay parameter δ (paper §IV-C3,
// Fig. 7 and Fig. 8).
//
// Inserting SWAPs that overlap on a qubit serializes them (fewer gates,
// more depth); inserting disjoint SWAPs parallelizes them (more gates,
// less depth). SABRE's decay effect penalizes recently-swapped qubits,
// and δ tunes how strongly — this example sweeps δ on qft_13 and prints
// the resulting (gates, depth) frontier, the Figure 8 series.
//
// Run: go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"

	sabre "repro"
)

func main() {
	dev := sabre.IBMQ20Tokyo()
	circ := sabre.QFT(13)
	orig := sabre.MeasureCircuit(circ)
	fmt.Printf("workload %s: gates=%d depth=%d\n\n", circ.Name(), orig.Gates, orig.Depth)
	fmt.Printf("%-10s %8s %12s %8s %12s\n", "delta", "gates", "g/g_ori", "depth", "d/d_ori")

	for _, delta := range []float64{0.0001, 0.001, 0.003, 0.01, 0.03, 0.1} {
		opts := sabre.DefaultOptions()
		opts.DecayDelta = delta
		res, err := sabre.Compile(circ, dev, opts)
		if err != nil {
			log.Fatal(err)
		}
		m := sabre.MeasureCircuit(res.Circuit)
		fmt.Printf("%-10g %8d %12.3f %8d %12.3f\n",
			delta, m.Gates, float64(m.Gates)/float64(orig.Gates),
			m.Depth, float64(m.Depth)/float64(orig.Depth))
	}

	fmt.Println("\nlarger δ favours non-overlapping (parallel) SWAPs: depth falls")
	fmt.Println("as gate count rises, until δ is so large the search wanders (§V-C).")
}
