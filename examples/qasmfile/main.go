// QASM file workflow: write a program, parse it, compile it for two
// different devices, and emit hardware-compliant QASM — the end-to-end
// path a compiler toolchain user takes.
//
// Run: go run ./examples/qasmfile
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	sabre "repro"
)

const program = `OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
creg c[5];
// 3-qubit majority vote with a Toffoli, then fan-out.
ccx q[0],q[1],q[2];
cx q[2],q[3];
cx q[2],q[4];
h q[0];
measure q[2] -> c[2];
`

func main() {
	dir, err := os.MkdirTemp("", "sabre-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "majority.qasm")
	if err := os.WriteFile(path, []byte(program), 0o644); err != nil {
		log.Fatal(err)
	}

	circ, err := sabre.ParseQASMFile(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %s: n=%d gates=%d (ccx inlined to the 15-gate decomposition)\n\n",
		circ.Name(), circ.NumQubits(), circ.NumGates())

	for _, dev := range []*sabre.Device{sabre.LineDevice(5), sabre.IBMQ20Tokyo()} {
		res, err := sabre.Compile(circ, dev, sabre.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		if err := sabre.VerifyCompliant(res.Circuit, dev); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("on %-22s: %d SWAPs inserted, compile time %s\n", dev, res.SwapCount, res.Elapsed)
		out := filepath.Join(dir, fmt.Sprintf("majority_%s.qasm", dev.Name()))
		f, err := os.Create(out)
		if err != nil {
			log.Fatal(err)
		}
		if err := sabre.WriteQASM(f, res.Circuit.DecomposeSwaps()); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("  wrote %s\n", out)
	}
}
