// Variability-aware routing (paper §VI, "More Precise Hardware
// Modeling").
//
// Real chips do not have one CNOT error rate: calibration data
// routinely shows a handful of couplers an order of magnitude worse
// than the rest (sometimes effectively dead). A router that counts
// SWAPs uniformly pushes traffic across those couplers. This example
// degrades four Q20 couplers to a 25% CNOT error (0.5% elsewhere),
// routes the same workload with hop-count SABRE and with the
// noise-aware extension (Options.Noise), and compares how many gates
// each router executes on the bad couplers and the resulting expected
// success probability.
//
// Run: go run ./examples/noiseaware
package main

import (
	"fmt"
	"log"

	sabre "repro"
)

func main() {
	dev := sabre.IBMQ20Tokyo()

	// Four degraded couplers near the chip centre — the worst place,
	// since centre edges carry the most routed traffic.
	bad := []sabre.Edge{
		sabre.CouplingEdge(6, 7),
		sabre.CouplingEdge(7, 12),
		sabre.CouplingEdge(11, 12),
		sabre.CouplingEdge(12, 13),
	}
	noise := sabre.UniformNoise(0.005)
	noise.EdgeError = map[sabre.Edge]float64{}
	for _, e := range bad {
		noise.EdgeError[e] = 0.25
	}

	circ := sabre.RandomCircuit("workload", 12, 200, 0.7, 7)
	fmt.Printf("workload: n=%d gates=%d; 4 degraded couplers at 25%% CNOT error (0.5%% elsewhere)\n\n",
		circ.NumQubits(), circ.NumGates())

	plain, err := sabre.Compile(circ, dev, sabre.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	awareOpts := sabre.DefaultOptions()
	awareOpts.Noise = noise
	awareOpts.MaxEdgeError = 0.1 // treat ≥10%-error couplers as unusable
	aware, err := sabre.Compile(circ, dev, awareOpts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-12s %7s %7s %16s %16s\n", "router", "swaps", "added", "CNOTs on bad", "exp. success")
	report("hop-count", plain, bad, noise)
	report("noise-aware", aware, bad, noise)
	fmt.Println("\nthe noise-aware router detours around the degraded couplers,")
	fmt.Println("trading a few extra SWAPs for a far higher success probability.")
}

func report(name string, res *sabre.Result, bad []sabre.Edge, noise *sabre.NoiseModel) {
	onBad := 0
	p := 1.0
	for _, g := range res.Circuit.DecomposeSwaps().Gates() {
		if !g.TwoQubit() {
			continue
		}
		e := sabre.CouplingEdge(g.Q0, g.Q1)
		p *= 1 - noise.Error(e)
		for _, be := range bad {
			if e == be {
				onBad++
			}
		}
	}
	fmt.Printf("%-12s %7d %7d %16d %15.3f%%\n", name, res.SwapCount, res.AddedGates, onBad, 100*p)
}
