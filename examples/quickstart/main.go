// Quickstart: the paper's Fig. 3 worked example.
//
// A 4-qubit device couples {Q0,Q1}, {Q1,Q3}, {Q3,Q2}, {Q2,Q0} (a ring);
// the circuit's fourth and sixth CNOTs act on uncoupled pairs under the
// identity mapping. SABRE finds a mapping and inserts the single SWAP
// the paper derives by hand (Fig. 3d) — or better, a 0-SWAP initial
// mapping when it is free to choose one.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	sabre "repro"
)

func main() {
	dev, err := sabre.NewDevice("fig3", 4, []sabre.Edge{
		sabre.CouplingEdge(0, 1), sabre.CouplingEdge(1, 3),
		sabre.CouplingEdge(3, 2), sabre.CouplingEdge(2, 0),
	})
	if err != nil {
		log.Fatal(err)
	}

	circ := sabre.NewNamedCircuit("fig3", 4)
	circ.Append(
		sabre.CX(0, 1), // q1,q2 in the paper's 1-based labels
		sabre.CX(2, 3),
		sabre.CX(1, 3),
		sabre.CX(1, 2), // not executable under the identity mapping
		sabre.CX(2, 3),
		sabre.CX(0, 3), // not executable under the identity mapping
	)

	fmt.Println("--- original circuit ---")
	_ = sabre.WriteQASM(os.Stdout, circ)

	// First: the paper's setting — fixed identity initial mapping.
	fixed, err := sabre.CompileWithLayout(circ, dev, sabre.IdentityLayout(4), sabre.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith the paper's identity mapping: %d SWAP(s) inserted (Fig. 3d uses 1)\n", fixed.SwapCount)

	// Then: full SABRE with free initial mapping.
	res, err := sabre.Compile(circ, dev, sabre.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with SABRE's initial mapping:      %d SWAP(s) inserted\n", res.SwapCount)
	fmt.Printf("initial layout (logical->physical): %v\n\n", res.InitialLayout)

	fmt.Println("--- hardware-compliant circuit ---")
	_ = sabre.WriteQASM(os.Stdout, res.Circuit)

	if err := sabre.VerifyRouted(circ, res); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nverified: output is GF(2)-equivalent to the input under its layouts")

	rep := sabre.CompareCircuits(circ, res.Circuit)
	fmt.Printf("gates %d -> %d, depth %d -> %d\n", rep.RefGates, rep.Gates, rep.RefDepth, rep.Depth)
}
