// QFT on the IBM Q20 Tokyo: the paper's stress workload.
//
// The quantum Fourier transform entangles every qubit pair, so its
// interaction graph is complete and no perfect mapping exists on a
// sparse device. This example compiles qft_16 onto the Q20 chip with
// SABRE and with the greedy baseline, comparing added gates, depth,
// estimated fidelity and compile time — the quantities Table II tracks.
//
// Run: go run ./examples/qft
package main

import (
	"fmt"
	"log"

	sabre "repro"
)

func main() {
	dev := sabre.IBMQ20Tokyo()
	em := sabre.Q20ErrorModel()
	circ := sabre.QFT(16)
	orig := sabre.MeasureCircuit(circ)
	fmt.Printf("workload %s: n=%d gates=%d depth=%d (complete interaction graph)\n\n",
		circ.Name(), circ.NumQubits(), orig.Gates, orig.Depth)

	res, err := sabre.Compile(circ, dev, sabre.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	if err := sabre.VerifyCompliant(res.Circuit, dev); err != nil {
		log.Fatal(err)
	}
	s := sabre.CompareCircuits(circ, res.Circuit)
	fmt.Printf("SABRE : +%4d gates (g_la %d before reverse traversal), depth %4d, fidelity %.3g, %s\n",
		s.AddedGates, res.FirstTraversalAdded, s.Depth, sabre.EstimateFidelity(res.Circuit, em), res.Elapsed)

	g, err := sabre.GreedyCompile(circ, dev)
	if err != nil {
		log.Fatal(err)
	}
	if err := sabre.VerifyCompliant(g.Circuit, dev); err != nil {
		log.Fatal(err)
	}
	gr := sabre.CompareCircuits(circ, g.Circuit)
	fmt.Printf("greedy: +%4d gates, depth %4d, fidelity %.3g, %s\n",
		gr.AddedGates, gr.Depth, sabre.EstimateFidelity(g.Circuit, em), g.Elapsed)

	if s.AddedGates < gr.AddedGates {
		fmt.Printf("\nSABRE inserted %.1f%% fewer gates than the greedy router.\n",
			100*(1-float64(s.AddedGates)/float64(gr.AddedGates)))
	}
}
