// Ising-model simulation on the IBM Q20 Tokyo: the perfect-mapping case.
//
// A Trotterized 1-D Ising evolution only couples nearest neighbours
// along a chain, and the Q20 coupling graph contains a Hamiltonian
// path, so a 0-SWAP mapping exists (paper §V-A1: "the optimal solution
// is trivial... SABRE can still find the optimal solution"). This
// example shows SABRE's reverse-traversal initial mapping discovering
// that embedding, while the greedy baseline pays for its myopic one.
//
// Run: go run ./examples/ising
package main

import (
	"fmt"
	"log"

	sabre "repro"
)

func main() {
	dev := sabre.IBMQ20Tokyo()
	circ := sabre.Ising(16, 5)
	orig := sabre.MeasureCircuit(circ)
	fmt.Printf("workload %s: n=%d gates=%d depth=%d (nearest-neighbour chain)\n\n",
		circ.Name(), circ.NumQubits(), orig.Gates, orig.Depth)

	res, err := sabre.Compile(circ, dev, sabre.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	if err := sabre.VerifyCompliant(res.Circuit, dev); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SABRE inserted %d SWAPs (paper: 0 — the mapping is perfect)\n", res.SwapCount)
	fmt.Println("initial layout found (logical chain -> physical qubits):")
	for q := 0; q < circ.NumQubits(); q++ {
		fmt.Printf("  q%-2d -> Q%d\n", q, res.InitialLayout[q])
	}

	g, err := sabre.GreedyCompile(circ, dev)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngreedy baseline inserted %d SWAPs with its degree-matched mapping\n", g.SwapCount)

	// The standalone layout pass is also exposed:
	layout, err := sabre.FindInitialMapping(circ, dev, sabre.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	again, err := sabre.CompileWithLayout(circ, dev, layout, sabre.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reusing FindInitialMapping's layout: %d SWAPs\n", again.SwapCount)
}
